// Package fusion is the public API of the fusion-based fault-tolerance
// library, a reproduction of Ogale, Balasubramanian and Garg, "A
// Fusion-based Approach for Tolerating Faults in Finite State Machines"
// (IPPS 2009).
//
// Given n deterministic finite state machines driven by a common event
// stream, the library generates m backup machines — an (f,m)-fusion — such
// that the system of n+m machines tolerates f crash faults or ⌊f/2⌋
// Byzantine faults, usually with far fewer backup states than the
// traditional n·f-replica approach:
//
//	sys, _ := fusion.NewSystem([]*fusion.Machine{a, b})
//	backups, _ := fusion.Generate(sys, 2)           // Algorithm 2
//	ms, _ := sys.FusionMachines(backups, "F")       // runnable DFSMs
//	...
//	state, _, _ := sys.RecoverStates(reports)       // Algorithm 3
//
// The facade re-exports the stable surface of the internal packages; see
// the package documentation of internal/core for the theory mapping.
//
// # Performance
//
// The Algorithm 2 hot path is allocation-light end to end: the fault graph
// keeps a per-weight edge-bucket index so both Dmin and WeakestEdges are
// answered from the weakest bucket (O(1) and O(|weakest|) per outer
// iteration) instead of O(N²) rescans; partitions carry a precomputed
// 64-bit hash so candidate dedup never materializes string keys; and the
// reachable-cross-product BFS dedups tuples under a mixed-radix uint64
// encoding instead of formatted strings. On the paper's Table 1 suites
// this is a 47–73% wall-clock reduction and an ~90% allocation reduction
// versus the straightforward implementation (see benchmarks/README.md for
// the measured before/after and the baseline-regression workflow under
// scripts/bench.sh).
//
// On top of that, Algorithm 2's candidate closures are shared at three
// tiers, each exact (bit-identical results to the cold path, pinned by
// equivalence suites) and each firing at a different scope:
//
//   - Within a descent level, a pair-implication memo: the closure
//     cascade of candidate pair p is forced to unite other candidate
//     pairs' blocks, and along every such implication edge the closures
//     nest, so a cascade touching an already-published pair either aborts
//     (the implied pair violated the level constraint), returns the
//     published closure outright (mutual implication — the published
//     closure re-unites p, so the two are equal), or absorbs it wholesale
//     and skips its entire transition-table walk. Fires between the
//     ~B²/2 candidates of a single level, which is where the big-row
//     work lives: on Table 1 Row 4's 176-state top, 15,356 of the
//     15,400 level-0 closures resolve by implication, a 33× wall-clock
//     reduction for the row (437ms → 13ms).
//
//   - Across the levels of one descent, a DescentState: pairs whose
//     closure lost a weakest edge are pruned for the rest of the descent
//     (the violation only deepens as the partition coarsens), and
//     surviving candidates re-evaluate as cheap union-find joins of
//     their remembered closure with the new level's partition instead of
//     cold cascades.
//
//   - Across the descents of one generation, a ⊤-closure cache: level-0
//     closures from ⊤ are constraint-independent, so when f demands
//     several machines, every descent after the first replaces its
//     level-0 fan-out with a filter over the first descent's cache.
//
// All three report through process-wide counters (GenerationCounters,
// fusegen -descent-stats, fusiond /metrics and /healthz); the within-
// level tier's implied/seeded/cold split always sums to the cold-closure
// count, so sharing effectiveness is inspectable in production.
//
// All parallelism flows through one execution engine (see Engine): a
// persistent worker pool, sized to GOMAXPROCS by default, whose workers
// shard tasks through an atomic cursor and keep per-worker scratch
// (union-find forests, propagation stacks) alive across calls. The
// closure fan-out of Algorithm 2, the event broadcast of simulated
// clusters, and the sensor-network replay all run on it, so concurrent
// fusion-generation and simulation requests share a bounded goroutine set
// instead of spawning their own per call. Worker count never affects
// results: candidates are dedup'd in deterministic task order and
// simulations are reproducible per seed. Construct a dedicated Engine
// with EngineOptions{Workers: n} to isolate capacity, e.g. per tenant.
//
// Services put admission control in front of the pool: EngineOptions
// also carries MaxInFlight/QueueDepth/QueueTimeout limits enforced by
// Engine.Acquire/Release, so overload turns into bounded FIFO queueing
// and fast ErrQueueFull rejections, and Engine.Close drains in-flight
// work before tearing the pool down. The fusiond daemon (cmd/fusiond,
// internal/server) exposes generation, simulated deployments with fault
// injection, and recovery as HTTP/JSON endpoints on exactly this
// surface.
//
// Repeated generation is served from a content-addressed fusion cache
// (EngineOptions.Cache, internal/fcache). Algorithm 2 is a pure function
// of the machine set, f, and the semantics-affecting options, so a
// request is keyed by a versioned SHA-256 digest of exactly those inputs
// — transition tables included, tenant identity excluded — and a repeat
// is answered with the bit-identical partition list in microseconds
// instead of a fresh descent (BenchmarkGenerateCacheHit vs the cold
// BenchmarkTable1Row1). The cache is a size-bounded LRU with
// singleflight coalescing: N concurrent identical requests run one
// descent, and only the flight leader occupies an engine admission
// slot. With a store attached, entries persist under a .fcache
// namespace (atomic-rename, digest-verified on load), so a restarted
// daemon serves warm hits without recomputation; fusiond enables the
// cache by default (-fusion-cache), pre-warms the built-in zoo catalog
// at boot (-prewarm-zoo), and labels every generate response with an
// X-Fusion-Cache: hit|miss|coalesced|bypass header.
package fusion

import (
	"io"

	"repro/internal/core"
	"repro/internal/dfsm"
	"repro/internal/lattice"
	"repro/internal/machines"
	"repro/internal/partition"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/trace"
)

// Machine is a deterministic finite state machine (Definition 1 of the
// paper). Machines are immutable once built.
type Machine = dfsm.Machine

// Builder constructs machines transition by transition.
type Builder = dfsm.Builder

// Product is a reachable cross product R(A) with per-component projections.
type Product = dfsm.Product

// System is a set of machines together with their reachable cross product
// and the derived closed partitions; all fusion operations start here.
type System = core.System

// Partition is a closed partition of the top machine's state set — the
// internal representation of every machine ≤ ⊤.
type Partition = partition.P

// FaultGraph is the weighted distinguishability graph of Definition 3.
type FaultGraph = core.FaultGraph

// Report is one machine's contribution to recovery (its current state's
// set representation).
type Report = core.Report

// RecoverResult is the outcome of Algorithm 3.
type RecoverResult = core.RecoverResult

// GenerateOptions tunes Algorithm 2; the zero value is the paper's
// algorithm.
type GenerateOptions = core.GenerateOptions

// GenerationStats is a point-in-time snapshot of the process-wide
// Algorithm 2 counters: how many generation runs, descents, and levels
// this process has executed, and how much of the candidate-closure work
// the descent engine's sharing tiers absorbed (see the Performance
// section). All fields are monotonic.
type GenerationStats = core.GenerationStats

// GenerationCounters snapshots the process-wide generation counters.
// Subtracting two snapshots brackets the work of the calls in between;
// cmd/fusegen's -descent-stats flag and fusiond's /metrics endpoint are
// both built on it.
func GenerationCounters() GenerationStats { return core.GenerationCounters() }

// Cluster is the simulated distributed deployment (servers + fusion
// backups + fault injection + recovery).
type Cluster = sim.Cluster

// ClusterSpec is the durable, JSON-serializable record a Cluster can be
// rebuilt from (machine definitions, fault capacity, seed).
type ClusterSpec = sim.ClusterSpec

// Store is the durable backend behind a store-backed cluster registry;
// internal/store provides the in-memory and file implementations.
type Store = sim.Store

// Fault describes an injected failure.
type Fault = trace.Fault

// FaultKind selects crash or Byzantine behaviour.
type FaultKind = trace.FaultKind

// Crash and Byzantine are the paper's two fault models.
const (
	Crash     = trace.Crash
	Byzantine = trace.Byzantine
)

// Lattice is the enumerated closed-partition lattice (Fig. 3).
type Lattice = lattice.Lattice

// NewMachine builds a machine from explicit state/event/transition tables.
func NewMachine(name string, states, events []string, delta [][]int, initial int) (*Machine, error) {
	return dfsm.NewMachine(name, states, events, delta, initial)
}

// NewBuilder starts an incremental machine definition.
func NewBuilder(name string) *Builder { return dfsm.NewBuilder(name) }

// NewSystem computes the reachable cross product of the machines and
// prepares them for fusion generation and recovery.
func NewSystem(ms []*Machine) (*System, error) { return core.NewSystem(ms) }

// Generate runs Algorithm 2: the minimal set of backup machines making the
// system tolerate f crash faults (⌊f/2⌋ Byzantine faults). It runs on the
// default engine's worker pool.
func Generate(sys *System, f int) ([]Partition, error) {
	return DefaultEngine().Generate(sys, f)
}

// GenerateWithOptions is Generate with explicit options, on the default
// engine unless opts.Pool says otherwise.
func GenerateWithOptions(sys *System, f int, opts GenerateOptions) ([]Partition, error) {
	return core.GenerateFusion(sys, f, opts)
}

// Recover runs Algorithm 3 over the reports and returns the winning
// ⊤-state with liar identification.
func Recover(n int, reports []Report) (*RecoverResult, error) {
	return core.Recover(n, reports)
}

// DetectionResult is the outcome of DetectFaults.
type DetectionResult = core.DetectionResult

// DetectFaults checks a report set for corruption without guessing: with
// distance d the system detects up to d−1 corrupted states even when it
// can only correct ⌊(d−1)/2⌋ of them (an extension mirroring classical
// coding theory; see internal/core/detect.go).
func DetectFaults(n int, reports []Report) (*DetectionResult, error) {
	return core.DetectFaults(n, reports)
}

// SetRepresentation runs Algorithm 1: expresses each state of a (a ≤ top)
// as the set of top states mapping onto it.
func SetRepresentation(top, a *Machine) ([][]int, error) {
	return core.SetRepresentation(top, a)
}

// BuildFaultGraph constructs the fault graph over n top states for a
// machine set given as partitions.
func BuildFaultGraph(n int, parts []Partition) *FaultGraph {
	return core.BuildFaultGraph(n, parts)
}

// ReachableCrossProduct computes R(machines) with projections.
func ReachableCrossProduct(ms []*Machine) (*Product, error) {
	return dfsm.ReachableCrossProduct(ms)
}

// NewCluster builds a simulated deployment tolerating f crash faults, on
// the default engine's worker pool.
func NewCluster(ms []*Machine, f int, seed int64) (*Cluster, error) {
	return DefaultEngine().NewCluster(ms, f, seed)
}

// BuildLattice enumerates the closed-partition lattice of a machine
// (small tops only; maxNodes 0 means 4096).
func BuildLattice(top *Machine, maxNodes int) (*Lattice, error) {
	return lattice.Build(top, maxNodes)
}

// ParseSpec reads machines in the .fsm text format.
func ParseSpec(r io.Reader) ([]*Machine, error) { return spec.Parse(r) }

// FormatSpec renders machines in the .fsm text format.
func FormatSpec(ms []*Machine) string { return spec.Format(ms) }

// ZooMachine returns a machine from the built-in model zoo by name (MESI,
// TCP, 0-Counter, ...); ZooNames lists the options.
func ZooMachine(name string) (*Machine, error) { return machines.Get(name) }

// ZooNames lists the built-in model zoo.
func ZooNames() []string { return machines.Names() }

// ReplicationStateSpace returns (Π|Mi|)^f — the backup state space the
// replication baseline needs for f crash faults (Section 6's comparison
// metric).
func ReplicationStateSpace(ms []*Machine, f int) uint64 {
	return replication.CrashStateSpace(ms, f)
}

// Plan is a capacity-planning summary: backup counts, sizes and state
// spaces for fusion vs replication.
type Plan = core.Plan

// PlanFusion generates the fusion for f crash faults and summarizes its
// cost against replication.
func PlanFusion(sys *System, f int) (*Plan, error) { return core.PlanFusion(sys, f) }
