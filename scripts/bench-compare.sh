#!/usr/bin/env bash
# Compares benchmarks/latest.txt against benchmarks/baseline.txt and fails
# when any benchmark's ns/op regressed by more than BENCH_MAX_REGRESSION_PCT
# percent (default 5). Skips cleanly when no baseline has been promoted yet.
#
# The comparison is name-keyed on the "BenchmarkX-N  iters  ns/op" lines, so
# it needs no external tooling (benchstat) — suitable for hermetic CI.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="benchmarks/baseline.txt"
LATEST="benchmarks/latest.txt"
THRESHOLD="${BENCH_MAX_REGRESSION_PCT:-5}"

if [ ! -f "$BASELINE" ] || ! grep -q '^Benchmark' "$BASELINE"; then
  echo "baseline missing or empty; skipping compare"
  exit 0
fi
if [ ! -f "$LATEST" ]; then
  echo "benchmarks/latest.txt not found; run scripts/bench.sh first" >&2
  exit 1
fi

# ns/op baselines are machine-specific: comparing a laptop baseline against
# a shared CI runner measures the hardware, not the change. When the cpu
# lines differ, print the deltas for information but don't gate on them.
BASE_CPU="$(grep -m1 '^cpu:' "$BASELINE" || true)"
LATEST_CPU="$(grep -m1 '^cpu:' "$LATEST" || true)"
GATE=1
if [ "$BASE_CPU" != "$LATEST_CPU" ]; then
  echo "baseline cpu (${BASE_CPU#cpu: }) differs from this machine (${LATEST_CPU#cpu: });"
  echo "reporting deltas without gating — promote a local baseline with scripts/bench-update.sh to enable gating"
  GATE=0
fi

awk -v thr="$THRESHOLD" -v gate="$GATE" '
  # Benchmark result lines look like:
  #   BenchmarkClosure-8   24681   48496 ns/op   25080 B/op   28 allocs/op
  # Names are compared verbatim, GOMAXPROCS suffix included: a -cpu sweep
  # (CI smoke runs 1,4) produces distinct rows per cpu count, and a row
  # only gates against a baseline row measured at the same parallelism.
  /^Benchmark/ {
    name = $1
    for (i = 2; i < NF; i++) {
      if ($(i + 1) == "ns/op") { ns = $i + 0; break }
    }
    if (FNR == NR) { base[name] = ns }
    else           { latest[name] = ns; order[++n] = name }
  }
  END {
    fail = 0
    matched = 0
    for (k = 1; k <= n; k++) {
      name = order[k]
      if (!(name in base)) { printf("NEW      %-50s %12.1f ns/op\n", name, latest[name]); continue }
      matched++
      delta = (latest[name] - base[name]) * 100.0 / base[name]
      printf("%-8s %-50s %12.1f -> %12.1f ns/op  (%+.1f%%)\n",
             delta > thr ? "REGRESS" : "ok", name, base[name], latest[name], delta)
      if (delta > thr) fail = 1
    }
    # A gate that compared nothing is a broken gate, not a pass: verbatim
    # names mean a GOMAXPROCS mismatch (different -cpu / machine procs)
    # yields zero overlap, and silently exiting 0 would let any regression
    # through. Re-promote a baseline at the current parallelism instead.
    if (n > 0 && matched == 0) {
      printf("no baseline rows match the current benchmark names (GOMAXPROCS suffix mismatch?)\n") > "/dev/stderr"
      if (gate) {
        printf("gating is enabled on this machine but nothing was compared; run scripts/bench-update.sh to promote a baseline at this parallelism\n") > "/dev/stderr"
        exit 1
      }
    }
    if (fail && gate) {
      printf("benchmark regression above %s%% threshold\n", thr) > "/dev/stderr"
      exit 1
    }
  }
' "$BASELINE" "$LATEST"
