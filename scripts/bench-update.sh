#!/usr/bin/env bash
# Promotes benchmarks/latest.txt to benchmarks/baseline.txt after review.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ ! -f benchmarks/latest.txt ]; then
  echo "benchmarks/latest.txt not found; run scripts/bench.sh first" >&2
  exit 1
fi

cp benchmarks/latest.txt benchmarks/baseline.txt
echo "promoted benchmarks/latest.txt -> benchmarks/baseline.txt"
