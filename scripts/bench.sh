#!/usr/bin/env bash
# Runs the regression-tracked benchmark set and writes benchmarks/latest.txt.
#
# Environment:
#   BENCH_PATTERN  go test -bench regexp   (default: the tracked hot-path set)
#   BENCH_TIME     go test -benchtime      (default: 1s; CI smoke uses 0.2s)
#   BENCH_COUNT    go test -count          (default: 1)
#   BENCH_CPU      go test -cpu list       (default: unset = current GOMAXPROCS;
#                  CI smoke uses "1,4" to catch worker-pool scaling regressions)
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN="${BENCH_PATTERN:-^(BenchmarkFig1ModCounters|BenchmarkTable1Row[1-5]|BenchmarkTable1Row1NoIncremental|BenchmarkTable1Row4LevelSharing|BenchmarkCrossProductLarge|BenchmarkClosure|BenchmarkSensorNetworkScale|BenchmarkApplyAll|BenchmarkWeakestEdges|BenchmarkServerGenerate|BenchmarkServerGenerateNoObsv|BenchmarkGenerateCacheHit|BenchmarkServerGenerateCached|BenchmarkHandleUpdateDurable)$}"
TIME="${BENCH_TIME:-1s}"
COUNT="${BENCH_COUNT:-1}"
CPU="${BENCH_CPU:-}"

mkdir -p benchmarks
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$TIME" -count "$COUNT" ${CPU:+-cpu "$CPU"} . | tee benchmarks/latest.txt
