#!/usr/bin/env bash
# Runs the regression-tracked benchmark set and writes benchmarks/latest.txt.
#
# Environment:
#   BENCH_PATTERN  go test -bench regexp   (default: the tracked hot-path set)
#   BENCH_TIME     go test -benchtime      (default: 1s; CI smoke uses 0.2s)
#   BENCH_COUNT    go test -count          (default: 1)
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN="${BENCH_PATTERN:-^(BenchmarkFig1ModCounters|BenchmarkTable1Row[1-5]|BenchmarkCrossProductLarge|BenchmarkClosure|BenchmarkSensorNetworkScale)$}"
TIME="${BENCH_TIME:-1s}"
COUNT="${BENCH_COUNT:-1}"

mkdir -p benchmarks
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$TIME" -count "$COUNT" . | tee benchmarks/latest.txt
