#!/usr/bin/env bash
# Regression gate for the Algorithm 2 hot path: runs the Table 1 rows (and
# the NoIncremental ablation row) at a reduced benchtime and fails when any
# row's ns/op regressed more than BENCH_MAX_REGRESSION_PCT (default 15 —
# looser than bench-compare's 5 because reduced benchtimes are noisier)
# against benchmarks/baseline.txt. The default was 0.3s until the PR 9
# pair-implication memo made the big rows 2.4–33× faster: at 0.3s the
# fast rows get too few iterations to settle (Row 4 spreads ±45%), so 1s
# is the new floor for a meaningful gate. Reuses bench.sh for the run and
# bench-compare.sh for the comparison; like bench-compare, it only gates
# when the baseline was measured on this machine's CPU.
#
# The short-benchtime result is restored out of benchmarks/latest.txt
# afterwards so a gate run can never be promoted as a baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

saved=""
if [ -f benchmarks/latest.txt ]; then
  saved="$(mktemp)"
  cp benchmarks/latest.txt "$saved"
fi
restore() {
  if [ -n "$saved" ]; then
    mv "$saved" benchmarks/latest.txt
  else
    rm -f benchmarks/latest.txt # no pre-run latest: don't leave gate noise promotable
  fi
}
trap restore EXIT

BENCH_PATTERN='^(BenchmarkTable1Row[1-5]|BenchmarkTable1Row1NoIncremental)$' \
BENCH_TIME="${BENCH_TIME:-1s}" \
  scripts/bench.sh

BENCH_MAX_REGRESSION_PCT="${BENCH_MAX_REGRESSION_PCT:-15}" scripts/bench-compare.sh
