// Protocols: fusion over real protocol machines — the paper's fourth table
// row (MESI cache coherency + RFC 793 TCP + the Fig. 2 machines). Shows
// generation on a 176-state top, the state-space comparison, and a full
// crash/recovery round on the simulated cluster.
package main

import (
	"fmt"
	"log"

	fusion "repro"
)

func main() {
	var ms []*fusion.Machine
	for _, name := range []string{"MESI", "TCP", "A", "B"} {
		m, err := fusion.ZooMachine(name)
		if err != nil {
			log.Fatal(err)
		}
		ms = append(ms, m)
	}

	sys, err := fusion.NewSystem(ms)
	if err != nil {
		log.Fatal(err)
	}
	backups, err := fusion.Generate(sys, 1)
	if err != nil {
		log.Fatal(err)
	}
	space := uint64(1)
	for _, p := range backups {
		space *= uint64(p.NumBlocks())
	}
	fmt.Printf("MESI+TCP+A+B: |top| = %d\n", sys.N())
	fmt.Printf("fusion backups: %d machine(s), state space %d; replication: %d\n",
		len(backups), space, fusion.ReplicationStateSpace(ms, 1))

	// Simulated deployment: crash the TCP server mid-run and recover it.
	cluster, err := fusion.NewCluster(ms, 1, 7)
	if err != nil {
		log.Fatal(err)
	}
	events := []string{
		"open_active", "PrRd", "0", "recv_synack", "PrWr",
		"1", "close", "BusRd", "recv_finack", "0", "timeout",
	}
	cluster.ApplyAll(events)
	if err := cluster.Inject(fusion.Fault{Server: "TCP", Kind: fusion.Crash}); err != nil {
		log.Fatal(err)
	}
	out, err := cluster.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TCP server crashed after %d events; recovery restored %v; consistent: %v\n",
		len(events), out.Restored, len(cluster.Verify()) == 0)
}
