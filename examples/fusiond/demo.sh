#!/usr/bin/env bash
# Replays the README transcript non-interactively: starts a fusiond on an
# ephemeral port, runs generate → cluster → inject-fault → recover, and
# shuts the daemon down cleanly. Run from the repository root:
#
#   examples/fusiond/demo.sh
set -euo pipefail
cd "$(dirname "$0")/../.."

ADDR="127.0.0.1:${FUSIOND_PORT:-8123}"
BIN="$(mktemp -d)/fusiond"
go build -o "$BIN" ./cmd/fusiond

"$BIN" -addr "$ADDR" -max-inflight 4 -queue-depth 8 -queue-timeout 2s &
FUSIOND=$!
trap 'kill -TERM "$FUSIOND" 2>/dev/null || true; wait "$FUSIOND" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done

step() { printf '\n== %s\n' "$*"; }

step "generate: two mod-3 counters, f=1 (Fig. 1)"
curl -fsS "http://$ADDR/v1/generate" -d '{"zoo":["0-Counter","1-Counter"],"f":1}'

step "create cluster"
curl -fsS "http://$ADDR/v1/clusters" -d '{"zoo":["0-Counter","1-Counter"],"f":1,"seed":42}'

step "broadcast 20 events, crash the backup at the cut"
curl -fsS "http://$ADDR/v1/clusters/c1/events" \
  -d '{"random":{"count":20,"seed":7},"faults":[{"server":"F1","kind":"crash"}]}'

step "recover (Algorithm 3)"
RECOVERY="$(curl -fsS -X POST "http://$ADDR/v1/clusters/c1/recover")"
printf '%s\n' "$RECOVERY"
printf '%s' "$RECOVERY" | grep -q '"consistent": true'

step "engine stats"
curl -fsS "http://$ADDR/healthz"

step "SIGTERM: clean drain"
kill -TERM "$FUSIOND"
wait "$FUSIOND"
trap - EXIT
echo "fusiond exited cleanly"
