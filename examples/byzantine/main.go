// Byzantine: tolerating lying machines (Theorem 2). A fusion generated for
// f = 2 crash faults tolerates one Byzantine fault: the cluster detects
// which machine lied, proves the liar's report inconsistent with the
// majority, and restores the correct state — without 2·n·f replicas.
package main

import (
	"fmt"
	"log"

	fusion "repro"
)

func main() {
	var ms []*fusion.Machine
	for _, name := range []string{"EvenParity", "OddParity", "ShiftRegister"} {
		m, err := fusion.ZooMachine(name)
		if err != nil {
			log.Fatal(err)
		}
		ms = append(ms, m)
	}

	// dmin must exceed 2f_byz: generate for f = 2 crash ⇒ 1 Byzantine.
	cluster, err := fusion.NewCluster(ms, 2, 99)
	if err != nil {
		log.Fatal(err)
	}
	sys := cluster.System()
	fmt.Printf("system of %d machines, |top| = %d; fusion sizes:", len(ms), sys.N())
	for _, m := range cluster.FusionMachines() {
		fmt.Printf(" %d", m.NumStates())
	}
	fmt.Println()

	events := []string{"1", "0", "1", "1", "0", "0", "1", "0"}
	cluster.ApplyAll(events)

	// The shift register silently corrupts its state (a Byzantine fault —
	// it will *lie* during recovery).
	if err := cluster.Inject(fusion.Fault{Server: "ShiftRegister", Kind: fusion.Byzantine}); err != nil {
		log.Fatal(err)
	}
	out, err := cluster.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery identified liars %v and restored %v\n", out.Liars, out.Restored)
	fmt.Printf("cluster consistent with fault-free oracle: %v\n", len(cluster.Verify()) == 0)

	// Two liars would exceed the bound: recovery must refuse rather than
	// return a wrong state.
	cluster.ApplyAll(events)
	cluster.Inject(fusion.Fault{Server: "EvenParity", Kind: fusion.Byzantine})
	cluster.Inject(fusion.Fault{Server: "OddParity", Kind: fusion.Byzantine})
	if _, err := cluster.Recover(); err != nil {
		fmt.Printf("two liars beyond the bound: recovery correctly refused (%v)\n", err)
	} else {
		// With two lies the vote can also happen to stay unambiguous but
		// wrong states are then detectable via Verify; report either way.
		fmt.Printf("two liars: recovery returned; consistent=%v (bound is f/2=1)\n",
			len(cluster.Verify()) == 0)
	}
}
