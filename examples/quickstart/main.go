// Quickstart: the paper's motivating example (Fig. 1). Two mod-3 counters
// count the 0s and 1s in a shared event stream; a single generated 3-state
// backup machine lets the system recover from one crash — where replication
// would need a full copy of each counter.
package main

import (
	"fmt"
	"log"

	fusion "repro"
)

func main() {
	// Machine A counts events "0" modulo 3; machine B counts "1"s.
	a, err := fusion.NewMachine("A",
		[]string{"a0", "a1", "a2"}, []string{"0"},
		[][]int{{1}, {2}, {0}}, 0)
	if err != nil {
		log.Fatal(err)
	}
	b, err := fusion.NewMachine("B",
		[]string{"b0", "b1", "b2"}, []string{"1"},
		[][]int{{1}, {2}, {0}}, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Build the system: reachable cross product + closed partitions.
	sys, err := fusion.NewSystem([]*fusion.Machine{a, b})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top machine has %d states; dmin = %d (no faults tolerated alone)\n",
		sys.N(), sys.Dmin())

	// Algorithm 2: generate the minimal backup set for one crash fault.
	backups, err := fusion.Generate(sys, 1)
	if err != nil {
		log.Fatal(err)
	}
	fms, err := sys.FusionMachines(backups, "F")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d backup machine(s); F1 has %d states (the paper's (n0+n1) mod 3)\n",
		len(fms), fms[0].NumStates())
	fmt.Println(fms[0].Table())

	// Drive all machines with the same event stream.
	events := []string{"0", "1", "1", "0", "0", "0", "1"}
	stateA, stateB, stateF := a.Run(events), b.Run(events), fms[0].Run(events)
	fmt.Printf("after %v: A=%s B=%s F1=%s\n",
		events, a.StateName(stateA), b.StateName(stateB), fms[0].StateName(stateF))

	// Machine A crashes. Recover its state from B and F1 (Algorithm 3).
	reportB, err := sys.ReportFor(1, stateB)
	if err != nil {
		log.Fatal(err)
	}
	reportF := fusion.Report{Machine: "F1", TopStates: backups[0].Blocks()[stateF]}
	res, err := fusion.Recover(sys.N(), []fusion.Report{reportB, reportF})
	if err != nil {
		log.Fatal(err)
	}
	recoveredA := sys.Product.Proj[res.TopState][0]
	fmt.Printf("A crashed; recovered state: %s (truth: %s) — %v\n",
		a.StateName(recoveredA), a.StateName(stateA), recoveredA == stateA)
}
