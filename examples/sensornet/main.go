// Sensornet: the sensor-network scenario from the paper's introduction and
// conclusion. One hundred sensors each run a mod-3 counter over their own
// event; replication would need 100 backup sensors to survive one crash,
// fusion needs a single 3-state machine. The conclusion's larger claim —
// 5 faults over 1000 machines with 5 backups — is exercised too.
package main

import (
	"fmt"
	"log"

	fusion "repro"
	"repro/internal/experiments"
)

func main() {
	// Sensor construction and stream replay run on the shared execution
	// engine's worker pool (see fusion.Engine); on a multicore host the
	// 1000-sensor sweep shards across all workers.
	fmt.Printf("execution engine: %d worker(s)\n\n", fusion.DefaultEngine().Workers())

	// 100 sensors, one crash fault: one 3-state backup.
	small, err := experiments.Sensor(100, 3, 1, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatSensor(small))

	// 1000 sensors, five crash faults: five 7-state backups (the weighted
	// mod-counter construction; 7 is prime so any 5 erasures solve).
	big, err := experiments.Sensor(1000, 7, 5, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatSensor(big))

	fmt.Println("\nreplication would have needed",
		small.ReplicationBackups, "and", big.ReplicationBackups,
		"backup sensors respectively; fusion used",
		small.FusionMachines, "and", big.FusionMachines)
}
