package fusion

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fcache"
	"repro/internal/sim"
)

// EngineOptions configures an Engine.
type EngineOptions struct {
	// Workers is the size of the engine's persistent worker pool. 0 means
	// "follow runtime.GOMAXPROCS".
	Workers int

	// Dedicated forces a distinct engine — its own admission state,
	// in-flight statistics and Close lifecycle — even when Workers is 0
	// and no admission limit is set. Without it, NewEngine with a zero
	// options value returns the process-wide default engine — historical
	// aliasing that callers wanting isolation must opt out of. A
	// dedicated engine still runs on the shared process-wide pool unless
	// Workers > 0 asks for a private one. See NewEngine.
	Dedicated bool

	// MaxInFlight bounds the number of concurrently admitted requests
	// (Acquire callers). 0 disables admission control: Acquire always
	// succeeds immediately and only the in-flight count is tracked.
	MaxInFlight int

	// QueueDepth is how many Acquire callers may wait in FIFO order once
	// MaxInFlight is reached; beyond that Acquire fails fast with
	// ErrQueueFull. Meaningless without MaxInFlight > 0 (admission is
	// disabled, so nothing ever queues).
	QueueDepth int

	// QueueTimeout bounds how long a queued Acquire waits before giving up
	// with ErrQueueTimeout. 0 means queued callers wait until their
	// context is cancelled. Meaningless without MaxInFlight > 0.
	QueueTimeout time.Duration

	// Cache attaches a content-addressed fusion cache (internal/fcache):
	// Generate calls whose options are cacheable (no NoCache, no ablation
	// knobs) are keyed by core.RequestDigest and served from it, with
	// concurrent identical requests coalescing onto one Algorithm 2 run.
	// nil (the default, including for DefaultEngine) means every call
	// computes — benchmarks and library users keep measuring the real
	// generation path unless they opt in. The cache may be shared between
	// engines; fusiond shares one across all tenants, since fusion output
	// is a pure function of the input machines.
	Cache *fcache.Cache
}

// Engine is the execution engine behind fusion generation and cluster
// simulation: a persistent, sharded worker pool (see internal/exec) that
// the closure fan-out of Algorithm 2, the event broadcast of simulated
// clusters, and the sensor-network replay all draw their parallelism
// from. Workers live for the lifetime of the engine and keep per-worker
// scratch alive across calls, so services generating many fusions or
// driving many clusters concurrently pay the goroutine fan-out once, not
// per call.
//
// Engines only redistribute work — they never change results: Generate
// returns the same machines and a Cluster the same simulation outcome for
// a given seed regardless of worker count.
//
// In front of the pool sits an admission layer (MaxInFlight, QueueDepth,
// QueueTimeout): services bracket each request with Acquire/Release so a
// flood of calls degrades into bounded queueing and fast ErrQueueFull
// rejections instead of piling unbounded goroutines onto the shared pool.
// Close drains admitted work and tears the dedicated pool down; fusiond
// (internal/server) uses exactly this surface for graceful shutdown.
//
// The package-level Generate, GenerateWithOptions and NewCluster are thin
// wrappers over DefaultEngine; construct a dedicated Engine when a
// service wants capacity isolated from the shared pool.
type Engine struct {
	pool     *exec.Pool
	ownsPool bool // false for the shared default pool, which Close must not stop
	admit    *admission
	cache    *fcache.Cache
}

var defaultEngine = &Engine{pool: exec.Default(), admit: newAdmission(0, 0, 0)}

// DefaultEngine returns the process-wide engine, whose pool follows
// GOMAXPROCS.
func DefaultEngine() *Engine { return defaultEngine }

// NewEngine returns an engine with the given pool size and admission
// limits. Engines are meant to be long-lived (one per service or tenant,
// not one per request): workers spawn lazily on first parallel use and
// live until Close.
//
// Aliasing rule: with a zero options value NewEngine returns the shared
// default engine rather than allocating fresh state — callers that want
// isolation despite default settings must set Dedicated. Setting any
// field (including a queue option whose limit is absent) forces a
// distinct engine, so admission state can never be shared accidentally.
// Distinct engines run on the shared default pool unless Workers > 0
// asks for a private one, so per-tenant engines still draw from one
// bounded goroutine set by default.
func NewEngine(opts EngineOptions) *Engine {
	if opts == (EngineOptions{}) {
		return defaultEngine
	}
	e := &Engine{
		pool:  exec.Default(),
		admit: newAdmission(opts.MaxInFlight, opts.QueueDepth, opts.QueueTimeout),
		cache: opts.Cache,
	}
	if opts.Workers > 0 {
		e.pool = exec.New(opts.Workers)
		e.ownsPool = true
	}
	return e
}

// Workers returns the engine pool's current worker target.
func (e *Engine) Workers() int { return e.pool.Workers() }

// Acquire admits one request under the engine's admission limits,
// blocking in FIFO order while the engine is saturated. A nil return
// means the caller holds an in-flight slot and must Release exactly once
// when its work is done. Non-nil returns are ErrQueueFull (shed now),
// ErrQueueTimeout (waited too long), ErrEngineClosed (draining), or the
// ctx error if the caller's context cancelled the wait. ctx may be nil.
func (e *Engine) Acquire(ctx context.Context) error { return e.admit.Acquire(ctx) }

// Release returns the slot taken by a successful Acquire, handing it to
// the longest-queued waiter if any.
func (e *Engine) Release() { e.admit.Release() }

// InFlight returns the number of admitted, unreleased requests.
func (e *Engine) InFlight() int { return e.admit.InFlight() }

// Queued returns the number of requests waiting for admission.
func (e *Engine) Queued() int { return e.admit.Queued() }

// Close drains the engine: queued Acquires fail with ErrEngineClosed, new
// Acquires are refused, Close blocks until every admitted request has
// Released, and then the engine's dedicated worker pool (if it owns one)
// is torn down. Close is idempotent, and work submitted to a closed
// engine still completes — serially, on the caller.
//
// The shared default engine is process-wide: one component closing it
// would poison every other user's Acquire, so Close on it is a no-op.
func (e *Engine) Close() {
	if e == defaultEngine {
		return
	}
	e.admit.Close()
	if e.ownsPool {
		e.pool.Close()
	}
}

// Generate runs Algorithm 2 on this engine's pool; see the package-level
// Generate.
func (e *Engine) Generate(sys *System, f int) ([]Partition, error) {
	return e.GenerateWithOptions(sys, f, GenerateOptions{})
}

// GenerateWithOptions is Generate with explicit options. The engine
// supplies the worker pool, overriding any opts.Pool. With a cache
// attached (EngineOptions.Cache) and cacheable options, the call is
// served by content address — an exact repeat of (machines, f, options)
// returns the cached partitions without running Algorithm 2, and
// concurrent identical calls share one run.
func (e *Engine) GenerateWithOptions(sys *System, f int, opts GenerateOptions) ([]Partition, error) {
	opts.Pool = e.pool
	if e.cache == nil || !opts.Cacheable() || f < 0 {
		return core.GenerateFusion(sys, f, opts)
	}
	key := core.RequestDigest(sys.Machines, f, opts)
	ent, _, err := e.cache.Do(key, func() (fcache.Entry, error) {
		parts, err := core.GenerateFusion(sys, f, opts)
		if err != nil {
			return fcache.Entry{}, err
		}
		return fcache.Entry{Key: key, N: sys.N(), Parts: parts}, nil
	})
	if err != nil {
		return nil, err
	}
	if ent.N != sys.N() {
		// Hash-collision paranoia: a cached entry must describe this
		// system's ⊤ exactly; anything else computes cold rather than
		// serve a foreign fusion.
		return core.GenerateFusion(sys, f, opts)
	}
	// The cached Parts slice is shared with every other caller; hand out
	// a private header so callers may append/reorder freely (the P values
	// themselves are immutable).
	return append([]Partition(nil), ent.Parts...), nil
}

// NewCluster builds a simulated deployment tolerating f crash faults,
// with fusion generation and event broadcast running on this engine's
// pool; see the package-level NewCluster.
func (e *Engine) NewCluster(ms []*Machine, f int, seed int64) (*Cluster, error) {
	return sim.NewClusterOn(e.pool, ms, f, seed)
}

// LoadRegistry rebuilds a store-backed cluster registry from its durable
// state, re-generating every recovered cluster on this engine's pool:
// specs become live clusters, the latest snapshots are restored, and WAL
// tails are replayed (see sim.LoadRegistry). With a nil store it returns
// an empty in-memory registry. fusiond calls this at boot so a restarted
// daemon serves the same tenants, handle ids, and per-server states it
// was killed with.
func (e *Engine) LoadRegistry(capacity int, st sim.Store, compactEvery int) (*sim.Registry, error) {
	return sim.LoadRegistry(e.pool, capacity, st, compactEvery)
}

// IsLocallyMinimalFusion verifies that F is a locally minimal (f,·)-
// fusion of sys — no single machine can be replaced by a lower-cover
// element without losing f-fault tolerance — with the cover fan-outs on
// this engine's pool rather than the shared default (the cover fan-out
// previously always ran on the default pool, bypassing dedicated engine
// capacity).
func (e *Engine) IsLocallyMinimalFusion(sys *System, F []Partition, f int) (bool, error) {
	return core.IsLocallyMinimalFusionOn(e.pool, sys, F, f)
}
