package fusion

import (
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/sim"
)

// EngineOptions configures an Engine.
type EngineOptions struct {
	// Workers is the size of the engine's persistent worker pool. 0 means
	// "follow runtime.GOMAXPROCS", which also makes NewEngine return the
	// process-wide default engine instead of allocating a second pool.
	Workers int
}

// Engine is the execution engine behind fusion generation and cluster
// simulation: a persistent, sharded worker pool (see internal/exec) that
// the closure fan-out of Algorithm 2, the event broadcast of simulated
// clusters, and the sensor-network replay all draw their parallelism
// from. Workers live for the lifetime of the engine and keep per-worker
// scratch alive across calls, so services generating many fusions or
// driving many clusters concurrently pay the goroutine fan-out once, not
// per call.
//
// Engines only redistribute work — they never change results: Generate
// returns the same machines and a Cluster the same simulation outcome for
// a given seed regardless of worker count.
//
// The package-level Generate, GenerateWithOptions and NewCluster are thin
// wrappers over DefaultEngine; construct a dedicated Engine when a
// service wants capacity isolated from the shared pool.
type Engine struct {
	pool *exec.Pool
}

var defaultEngine = &Engine{pool: exec.Default()}

// DefaultEngine returns the process-wide engine, whose pool follows
// GOMAXPROCS.
func DefaultEngine() *Engine { return defaultEngine }

// NewEngine returns an engine with a dedicated worker pool of the given
// size; with Workers == 0 it returns the shared default engine.
//
// Engines are meant to be long-lived (one per service or tenant, not one
// per request): workers spawn lazily on first parallel use and are never
// torn down.
func NewEngine(opts EngineOptions) *Engine {
	if opts.Workers <= 0 {
		return defaultEngine
	}
	return &Engine{pool: exec.New(opts.Workers)}
}

// Workers returns the engine pool's current worker target.
func (e *Engine) Workers() int { return e.pool.Workers() }

// Generate runs Algorithm 2 on this engine's pool; see the package-level
// Generate.
func (e *Engine) Generate(sys *System, f int) ([]Partition, error) {
	return e.GenerateWithOptions(sys, f, GenerateOptions{})
}

// GenerateWithOptions is Generate with explicit options. The engine
// supplies the worker pool, overriding any opts.Pool.
func (e *Engine) GenerateWithOptions(sys *System, f int, opts GenerateOptions) ([]Partition, error) {
	opts.Pool = e.pool
	return core.GenerateFusion(sys, f, opts)
}

// NewCluster builds a simulated deployment tolerating f crash faults,
// with fusion generation and event broadcast running on this engine's
// pool; see the package-level NewCluster.
func (e *Engine) NewCluster(ms []*Machine, f int, seed int64) (*Cluster, error) {
	return sim.NewClusterOn(e.pool, ms, f, seed)
}
