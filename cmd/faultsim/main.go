// Command faultsim runs the distributed-system simulation of the paper's
// model: servers execute the chosen machines against a common event
// stream, faults strike mid-run, and the recovery coordinator restores the
// lost or corrupted states via the generated fusion (Algorithm 3).
//
// Usage:
//
//	faultsim -zoo 0-Counter,1-Counter -f 2 -events 100 -crash 2
//	faultsim -zoo MESI,TCP,A,B -f 2 -byzantine 1 -seed 7 -rounds 5
//	faultsim -zoo MESI,TCP,A,B -f 2 -events 5000 -workers 8
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	fusion "repro"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	var (
		zoo     = fs.String("zoo", "0-Counter,1-Counter", "comma-separated zoo machine names")
		f       = fs.Int("f", 1, "crash-fault budget used to size the fusion")
		events  = fs.Int("events", 50, "events per round")
		crash   = fs.Int("crash", 0, "crash faults to inject per round")
		byz     = fs.Int("byzantine", 0, "Byzantine faults to inject per round")
		rounds  = fs.Int("rounds", 1, "rounds to run")
		seed    = fs.Int64("seed", 1, "random seed")
		replay  = fs.String("replay", "", "read the event stream from this file instead of generating it")
		record  = fs.String("record", "", "save each round's generated event stream to this file")
		workers = fs.Int("workers", 0, "worker-pool size for generation and event broadcast (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *crash == 0 && *byz == 0 {
		*crash = *f
	}

	var ms []*fusion.Machine
	for _, name := range strings.Split(*zoo, ",") {
		m, err := fusion.ZooMachine(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		ms = append(ms, m)
	}
	engine := fusion.NewEngine(fusion.EngineOptions{Workers: *workers})
	cluster, err := engine.NewCluster(ms, *f, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "cluster: %d servers (%s), |top| = %d, fusion backups: %d\n",
		len(cluster.ServerNames()), strings.Join(cluster.ServerNames(), ", "),
		cluster.System().N(), len(cluster.Fusion()))

	var replayed []string
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		replayed, err = trace.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		if len(replayed) == 0 {
			return fmt.Errorf("replay file %s has no events", *replay)
		}
	}

	rng := rand.New(rand.NewSource(*seed + 1))
	gen := trace.NewGenerator(*seed+2, ms)
	for round := 1; round <= *rounds; round++ {
		stream := replayed
		if stream == nil {
			stream = gen.Take(*events)
		}
		if *record != "" {
			f, err := os.Create(*record)
			if err != nil {
				return err
			}
			if err := trace.Save(f, stream); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		var faults []trace.Fault
		names := cluster.ServerNames()
		perm := rng.Perm(len(names))
		for i := 0; i < *crash && i < len(names); i++ {
			faults = append(faults, trace.Fault{Server: names[perm[i]], Kind: trace.Crash})
		}
		for i := 0; i < *byz && *crash+i < len(names); i++ {
			faults = append(faults, trace.Fault{Server: names[perm[*crash+i]], Kind: trace.Byzantine})
		}
		sched := trace.Schedule{AtStep: 1 + rng.Intn(len(stream)), Faults: faults}

		res, err := cluster.Run(stream, sched)
		if err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		var desc []string
		for _, ft := range res.Injected {
			desc = append(desc, fmt.Sprintf("%s(%s)", ft.Server, ft.Kind))
		}
		fmt.Fprintf(out, "round %d: %d events, faults at step %d: [%s]\n",
			round, res.Events, sched.AtStep, strings.Join(desc, " "))
		fmt.Fprintf(out, "  recovered ⊤-state %d; restored %v; liars %v; consistent: %v\n",
			res.Outcome.TopState, res.Outcome.Restored, res.Outcome.Liars, res.Consistent)
		if !res.Consistent {
			return fmt.Errorf("round %d left the cluster inconsistent", round)
		}
	}
	return nil
}
