package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestDefaultRun(t *testing.T) {
	out, err := runCapture(t, "-events", "20", "-seed", "3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cluster:", "round 1:", "consistent: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCrashRounds(t *testing.T) {
	out, err := runCapture(t, "-zoo", "EvenParity,OddParity,ShiftRegister",
		"-f", "2", "-crash", "2", "-rounds", "3", "-events", "30", "-seed", "11")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "consistent: true") != 3 {
		t.Errorf("expected 3 consistent rounds:\n%s", out)
	}
}

func TestByzantineRound(t *testing.T) {
	out, err := runCapture(t, "-zoo", "0-Counter,1-Counter",
		"-f", "2", "-byzantine", "1", "-crash", "0", "-rounds", "2", "-seed", "5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "byzantine") {
		t.Errorf("no byzantine fault injected:\n%s", out)
	}
	if strings.Count(out, "consistent: true") != 2 {
		t.Errorf("expected 2 consistent rounds:\n%s", out)
	}
}

func TestRecordAndReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.events")
	// Record a run.
	if _, err := runCapture(t, "-events", "15", "-seed", "8", "-record", path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Fields(string(data))) != 15 {
		t.Fatalf("recorded %d events, want 15", len(strings.Fields(string(data))))
	}
	// Replay it.
	out, err := runCapture(t, "-seed", "8", "-replay", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "15 events") {
		t.Errorf("replay did not use the recorded stream:\n%s", out)
	}
	// Missing replay file.
	if _, err := runCapture(t, "-replay", "/no/such/file"); err == nil {
		t.Error("missing replay file accepted")
	}
}

func TestErrors(t *testing.T) {
	if _, err := runCapture(t, "-zoo", "NoSuch"); err == nil {
		t.Error("unknown machine accepted")
	}
	if _, err := runCapture(t, "-badflag"); err == nil {
		t.Error("bad flag accepted")
	}
	// More crashes than the fusion tolerates: recovery must fail loudly.
	if _, err := runCapture(t, "-zoo", "0-Counter,1-Counter", "-f", "1", "-crash", "3", "-seed", "2"); err == nil {
		t.Error("over-budget crash round succeeded")
	}
}

func TestWorkersFlagDeterministic(t *testing.T) {
	want, err := runCapture(t, "-zoo", "0-Counter,1-Counter", "-f", "1", "-events", "40", "-crash", "1", "-seed", "9")
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"1", "3"} {
		got, err := runCapture(t, "-zoo", "0-Counter,1-Counter", "-f", "1", "-events", "40", "-crash", "1", "-seed", "9", "-workers", w)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("-workers %s changed the simulation:\n%s\nvs\n%s", w, got, want)
		}
	}
}
