package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/signal"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	fusion "repro"
	"repro/internal/exec"
)

// syncBuffer lets the test read fusiond's output while run() writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRe = regexp.MustCompile(`listening on (\S+)`)

// startDaemon runs fusiond on an ephemeral port and returns its base URL
// plus a channel carrying run's error on exit.
func startDaemon(t *testing.T, ctx context.Context, out *syncBuffer, extraArgs ...string) (string, chan error) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, args, out) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], errc
		}
		select {
		case err := <-errc:
			t.Fatalf("fusiond exited before listening: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("fusiond never announced its address:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestServeAndGracefulShutdown: the daemon serves the full workload over
// real HTTP and drains cleanly when its context is cancelled.
func TestServeAndGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	base, errc := startDaemon(t, ctx, &out)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	code, body := post(t, base+"/v1/clusters", `{"zoo":["0-Counter","1-Counter"],"f":1,"seed":5}`)
	if code != http.StatusCreated {
		t.Fatalf("create cluster: %d %s", code, body)
	}
	code, body = post(t, base+"/v1/clusters/c1/events",
		`{"random":{"count":25,"seed":3},"faults":[{"server":"F1","kind":"crash"}]}`)
	if code != http.StatusOK {
		t.Fatalf("events: %d %s", code, body)
	}
	code, body = post(t, base+"/v1/clusters/c1/recover", ``)
	if code != http.StatusOK || !strings.Contains(body, `"consistent": true`) {
		t.Fatalf("recover: %d %s", code, body)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("fusiond did not shut down:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained") {
		t.Fatalf("no drain message:\n%s", out.String())
	}
}

// TestSIGTERMFloodAcceptance is the PR's acceptance criterion end to end:
// with -max-inflight=2 -queue-depth=2, 8 concurrent POST /v1/generate
// produce at least one 429, every accepted request succeeds with results
// bit-identical to fusion.Generate, and the daemon exits cleanly on a
// real SIGTERM with its engines drained and no goroutines leaked.
func TestSIGTERMFloodAcceptance(t *testing.T) {
	// Warm the process-wide shared pool to its full worker complement and
	// compute the library reference first: those lazily spawned workers
	// persist by design (handlers touch the shared pool via NewSystem
	// even when tenants have dedicated pools) and must not be misread as
	// daemon leakage below. The daemon's own per-tenant pools (-workers)
	// are what Close must reap.
	exec.Default().Run(4*runtime.GOMAXPROCS(0), func(*exec.Ctx, int) {})
	ms := make([]*fusion.Machine, 0, 2)
	for _, n := range []string{"MESI", "TCP"} {
		m, err := fusion.ZooMachine(n)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	sys, err := fusion.NewSystem(ms)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := fusion.Generate(sys, 2)
	if err != nil {
		t.Fatal(err)
	}

	// The baseline comes after NotifyContext: the first signal.Notify in a
	// process starts the permanent os/signal.loop runtime goroutine, which
	// never exits and is not the daemon's.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	before := runtime.NumGoroutine()
	var out syncBuffer
	// The fusion cache is off here on purpose: this test measures the raw
	// admission path (blockers pinning slots, floods shedding 429), and the
	// cache's singleflight would coalesce the identical requests instead of
	// queueing them.
	base, errc := startDaemon(t, ctx, &out, "-max-inflight", "2", "-queue-depth", "2", "-workers", "2", "-fusion-cache", "0")
	genBody := `{"zoo":["MESI","TCP"],"f":2}`

	// Occupy both in-flight slots with generations heavy enough (seconds
	// even with the pair-implication memo sharing cascades) that the flood
	// below deterministically overlaps them, and wait until /healthz
	// confirms both are admitted and running.
	blockBody := `{"zoo":["MESI","TCP","A","B","SumMod3"],"f":2}`
	blockers := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			code, _ := post(t, base+"/v1/generate", blockBody)
			blockers <- code
		}()
	}
	waitDeadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h struct {
			Tenants map[string]struct {
				InFlight int `json:"inFlight"`
			} `json:"tenants"`
		}
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if h.Tenants["default"].InFlight == 2 {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatalf("blockers never occupied both slots: %+v", h)
		}
		time.Sleep(2 * time.Millisecond)
	}

	const flood = 8
	codes := make([]int, flood)
	bodies := make([]string, flood)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < flood; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			codes[i], bodies[i] = post(t, base+"/v1/generate", genBody)
		}()
	}
	close(start)
	wg.Wait()
	for i := 0; i < 2; i++ {
		if code := <-blockers; code != http.StatusOK {
			t.Fatalf("blocker request failed with %d", code)
		}
	}

	ok, shed := 0, 0
	var accepted []string
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
			accepted = append(accepted, bodies[i])
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("request %d: unexpected status %d: %s", i, c, bodies[i])
		}
	}
	if ok+shed != flood || shed < 1 || ok < 1 {
		t.Fatalf("flood outcome: %d ok + %d shed of %d; want everything accounted, both outcomes present", ok, shed, flood)
	}
	t.Logf("flood: %d accepted, %d shed with 429", ok, shed)

	// Bit-identical to the library: decode each accepted body and compare
	// the partitions against the in-process fusion.Generate reference.
	type backup struct {
		States int     `json:"states"`
		Blocks [][]int `json:"blocks"`
	}
	var wantJSON []string
	for _, p := range parts {
		b, err := json.Marshal(backup{States: p.NumBlocks(), Blocks: p.Blocks()})
		if err != nil {
			t.Fatal(err)
		}
		wantJSON = append(wantJSON, string(b))
	}
	for i, body := range accepted {
		var resp struct {
			Backups []backup `json:"backups"`
		}
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("accepted body %d: %v", i, err)
		}
		if len(resp.Backups) != len(parts) {
			t.Fatalf("accepted body %d: %d backups, want %d", i, len(resp.Backups), len(parts))
		}
		for j, bk := range resp.Backups {
			got, err := json.Marshal(bk)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != wantJSON[j] {
				t.Fatalf("accepted body %d backup %d diverges from fusion.Generate:\n%s\nvs\n%s",
					i, j, got, wantJSON[j])
			}
		}
	}

	// Real SIGTERM to our own process: signal.NotifyContext (the exact
	// wiring main uses) must turn it into a clean drain.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM\n%s", err, out.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("fusiond did not exit on SIGTERM:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained") {
		t.Fatalf("no drain message after SIGTERM:\n%s", out.String())
	}

	// After shutdown the daemon must not have leaked goroutines (worker
	// pools torn down, admission queues empty, HTTP exchanges reaped).
	// The test's own client keep-alives and signal watcher are not the
	// daemon's: drop them before counting.
	stop()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		http.DefaultClient.CloseIdleConnections()
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutines leaked across daemon lifecycle: started with %d, left with %d\n%s", before, got, buf[:n])
	}
	// Shut-down daemon refuses connections.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("daemon still serving after SIGTERM drain")
	}
}

// TestDataDirPersistence: a daemon restarted over the same -data-dir
// serves the same cluster — id, step, and per-server states — that the
// previous incarnation was driven to.
func TestDataDirPersistence(t *testing.T) {
	dataDir := t.TempDir()

	ctx1, cancel1 := context.WithCancel(context.Background())
	var out1 syncBuffer
	base, errc := startDaemon(t, ctx1, &out1, "-data-dir", dataDir)
	code, body := post(t, base+"/v1/clusters", `{"zoo":["0-Counter","1-Counter"],"f":1,"seed":11}`)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	code, _ = post(t, base+"/v1/clusters/c1/events",
		`{"random":{"count":17,"seed":4},"faults":[{"server":"F1","kind":"crash"}]}`)
	if code != http.StatusOK {
		t.Fatalf("events: %d", code)
	}
	resp, err := http.Get(base + "/v1/clusters/c1")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	cancel1()
	if err := <-errc; err != nil {
		t.Fatalf("first daemon: %v\n%s", err, out1.String())
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var out2 syncBuffer
	base2, errc2 := startDaemon(t, ctx2, &out2, "-data-dir", dataDir)
	resp, err = http.Get(base2 + "/v1/clusters/c1")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted GET: %d %s", resp.StatusCode, got)
	}
	if string(got) != string(want) {
		t.Fatalf("cluster state diverged across restart:\n%s\nvs\n%s", got, want)
	}
	cancel2()
	if err := <-errc2; err != nil {
		t.Fatalf("second daemon: %v\n%s", err, out2.String())
	}
}

// TestFlagAndListenErrors: flag errors and unbindable addresses fail run.
func TestFlagAndListenErrors(t *testing.T) {
	var out syncBuffer
	if err := run(context.Background(), []string{"-badflag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:99999"}, &out); err == nil {
		t.Error("unbindable address accepted")
	}
	// Queue flags without an in-flight limit would silently disable
	// admission; refuse them loudly instead.
	if err := run(context.Background(), []string{"-queue-depth", "4"}, &out); err == nil {
		t.Error("-queue-depth without -max-inflight accepted")
	}
	if err := run(context.Background(), []string{"-queue-timeout", "1s"}, &out); err == nil {
		t.Error("-queue-timeout without -max-inflight accepted")
	}
	// Same for a compaction threshold without a data dir.
	if err := run(context.Background(), []string{"-compact-every", "8"}, &out); err == nil {
		t.Error("-compact-every without -data-dir accepted")
	}
	// A negative cache size is a mistake, not a disable request.
	if err := run(context.Background(), []string{"-fusion-cache", "-1"}, &out); err == nil {
		t.Error("-fusion-cache -1 accepted")
	}
	// Batch tuning without the batcher (or without a disk) is a no-op the
	// operator should hear about.
	if err := run(context.Background(), []string{"-group-batch-bytes", "4096"}, &out); err == nil {
		t.Error("-group-batch-bytes without -data-dir accepted")
	}
	if err := run(context.Background(), []string{
		"-data-dir", t.TempDir(), "-group-commit=false", "-group-batch-delay", "1ms",
	}, &out); err == nil {
		t.Error("-group-batch-delay with -group-commit=false accepted")
	}
	if err := run(context.Background(), []string{
		"-data-dir", t.TempDir(), "-group-batch-delay", "-1ms",
	}, &out); err == nil {
		t.Error("negative -group-batch-delay accepted")
	}
}

// TestFusionCacheAcrossRestart: the daemon default serves an exact repeat
// of a generate request from the cache, and a -data-dir daemon still does
// after a restart — without recomputing.
func TestFusionCacheAcrossRestart(t *testing.T) {
	dataDir := t.TempDir()
	args := []string{"-data-dir", dataDir, "-prewarm-zoo=false"}

	ctx1, cancel1 := context.WithCancel(context.Background())
	var out1 syncBuffer
	base, errc := startDaemon(t, ctx1, &out1, args...)
	genBody := `{"zoo":["0-Counter","1-Counter"],"f":1}`
	code, want := post(t, base+"/v1/generate", genBody)
	if code != http.StatusOK {
		t.Fatalf("cold generate: %d %s", code, want)
	}
	code, repeat := post(t, base+"/v1/generate", genBody)
	if code != http.StatusOK || repeat != want {
		t.Fatalf("warm generate: %d, body match=%v", code, repeat == want)
	}
	cancel1()
	if err := <-errc; err != nil {
		t.Fatalf("first daemon: %v\n%s", err, out1.String())
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var out2 syncBuffer
	base2, errc2 := startDaemon(t, ctx2, &out2, args...)
	resp, err := http.Post(base2+"/v1/generate", "application/json", strings.NewReader(genBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body) //nolint:errcheck // checked via compare
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != want {
		t.Fatalf("post-restart generate: %d, body match=%v", resp.StatusCode, string(body) == want)
	}
	if got := resp.Header.Get("X-Fusion-Cache"); got != "hit" {
		t.Fatalf("post-restart X-Fusion-Cache = %q, want hit (rehydrated from -data-dir)", got)
	}
	cancel2()
	if err := <-errc2; err != nil {
		t.Fatalf("second daemon: %v\n%s", err, out2.String())
	}
}

// TestWorkersFlagDeterministic: the service answer is independent of the
// per-tenant pool size, matching the engine contract.
func TestWorkersFlagDeterministic(t *testing.T) {
	var want string
	for _, workers := range []string{"1", "3"} {
		ctx, cancel := context.WithCancel(context.Background())
		var out syncBuffer
		base, errc := startDaemon(t, ctx, &out, "-workers", workers)
		code, body := post(t, base+"/v1/generate", `{"zoo":["0-Counter","1-Counter"],"f":1}`)
		if code != http.StatusOK {
			t.Fatalf("workers=%s: status %d", workers, code)
		}
		cancel()
		if err := <-errc; err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
		if want == "" {
			want = body
		} else if body != want {
			t.Fatalf("-workers %s changed the generate answer:\n%s\nvs\n%s", workers, body, want)
		}
	}
}
