// Command fusiond is the long-running HTTP/JSON service front-end over
// fusion.Engine: fusion generation (Algorithm 2), simulated deployments
// with event broadcast and fault injection, and fused-state recovery
// (Algorithm 3) as endpoints, with per-tenant engines and engine-level
// admission control so a flood of requests degrades into bounded queueing
// and fast 429s instead of unbounded goroutines on the worker pool.
//
// Usage:
//
//	fusiond -addr :8080
//	fusiond -addr :8080 -workers 8 -max-inflight 4 -queue-depth 16 -queue-timeout 2s
//
// Replicated (leader ships every durable mutation to followers; kill the
// leader, promote a follower, keep serving — see examples/fusiond):
//
//	fusiond -addr :8080 -data-dir /var/lib/fusiond -role leader -replicas http://backup:8081
//	fusiond -addr :8081 -data-dir /var/lib/fusiond-b -role follower -leader-url http://primary:8080
//	fusiond -promote -addr :8081    # failover: make the follower the leader
//
// Probe it:
//
//	curl localhost:8080/healthz
//	curl -X POST localhost:8080/v1/generate -d '{"zoo":["0-Counter","1-Counter"],"f":1}'
//
// See examples/fusiond for a full generate → cluster → inject-fault →
// recover transcript. SIGINT/SIGTERM shut the daemon down gracefully:
// in-flight requests finish, queued ones are refused, engines drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

// runPromote is the -promote one-shot client: it asks the daemon at addr
// (a follower) to promote itself and prints the resulting role/epoch.
// Split from serving so failover needs no second binary — the operator
// (or the failover script) reuses fusiond itself.
func runPromote(out io.Writer, addr string) error {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + strings.TrimPrefix(url, ":")
		if strings.HasPrefix(addr, ":") {
			url = "http://localhost" + addr
		}
	}
	url = strings.TrimRight(url, "/") + "/repl/promote"
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Post(url, "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20)) //nolint:errcheck // best-effort detail
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("promote: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	fmt.Fprintf(out, "fusiond: promoted: %s\n", strings.TrimSpace(string(body)))
	return nil
}

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fusiond:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fusiond", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "per-tenant worker-pool size (0 = share the process-wide pool)")
		maxInflight  = fs.Int("max-inflight", 0, "per-tenant concurrent request limit (0 = unlimited)")
		queueDepth   = fs.Int("queue-depth", 0, "per-tenant admission queue length beyond max-inflight")
		queueTimeout = fs.Duration("queue-timeout", 0, "how long a queued request waits before 429 (0 = until client disconnect)")
		maxClusters  = fs.Int("max-clusters", 64, "live clusters per tenant (-1 = unbounded)")
		maxTenants   = fs.Int("max-tenants", 64, "distinct tenants served before shedding new names (-1 = unbounded)")
		tenantHeader = fs.String("tenant-header", "X-Fusion-Tenant", "header naming the tenant")
		grace        = fs.Duration("grace", 10*time.Second, "shutdown grace period for in-flight HTTP exchanges")
		dataDir      = fs.String("data-dir", "", "persist cluster registries here and recover them at boot (empty = in-memory)")
		compactEvery = fs.Int("compact-every", 0, "WAL records per cluster between snapshot compactions (0 = default)")
		groupCommit  = fs.Bool("group-commit", true, "batch concurrent WAL appends into shared preallocated segments, one fsync per commit tick (durability unchanged; needs -data-dir)")
		batchBytes   = fs.Int("group-batch-bytes", 0, "flush a pending group-commit batch early at this size (0 = default 1MiB)")
		batchDelay   = fs.Duration("group-batch-delay", 0, "extra linger before each group-commit flush so batches fill (0 = flush as soon as the disk is free)")
		role         = fs.String("role", "", "replication role: \"leader\" or \"follower\" (empty = no replication)")
		leaderURL    = fs.String("leader-url", "", "follower: the leader's base URL, advertised when shedding writes")
		replicas     = fs.String("replicas", "", "leader: comma-separated follower base URLs to ship the op feed to")
		ack          = fs.String("ack", "leader", "write acknowledgement mode: \"leader\" (locally durable) or \"quorum\" (majority of the replication group)")
		ackTimeout   = fs.Duration("ack-timeout", 2*time.Second, "per-request bound on the quorum-ack wait")
		lagThreshold = fs.Uint64("lag-threshold", 0, "follower: feed lag (records) past which /readyz reports 503 (0 = default)")
		fusionCache  = fs.Int("fusion-cache", 4096, "content-addressed fusion cache entries; repeats of a generate request are served without recomputation (0 = disable)")
		prewarmZoo   = fs.Bool("prewarm-zoo", true, "pre-generate the built-in machine-zoo catalog into the fusion cache after boot")
		pprof        = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (exposes heap contents; opt-in)")
		accessLog    = fs.Int("access-log", 0, "in-memory access-log ring size served at GET /debug/log (0 = default 1024, -1 = disable)")
		slowRequest  = fs.Duration("slow-request", 0, "log requests slower than this and count them in fusiond_http_slow_requests_total (0 = off)")
		promote      = fs.Bool("promote", false, "one-shot client: ask the follower at -addr to promote itself to leader, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *promote {
		return runPromote(out, *addr)
	}
	if (*queueDepth > 0 || *queueTimeout > 0) && *maxInflight <= 0 {
		return fmt.Errorf("-queue-depth/-queue-timeout do nothing without -max-inflight")
	}
	if *compactEvery > 0 && *dataDir == "" {
		return fmt.Errorf("-compact-every does nothing without -data-dir")
	}
	if (*batchBytes > 0 || *batchDelay > 0) && !(*groupCommit && *dataDir != "") {
		return fmt.Errorf("-group-batch-bytes/-group-batch-delay do nothing without -group-commit and -data-dir")
	}
	if *batchBytes < 0 || *batchDelay < 0 {
		return fmt.Errorf("-group-batch-bytes/-group-batch-delay must be >= 0")
	}
	if *fusionCache < 0 {
		return fmt.Errorf("-fusion-cache must be >= 0 (0 disables the cache)")
	}
	var replicaList []string
	if *replicas != "" {
		for _, u := range strings.Split(*replicas, ",") {
			if u = strings.TrimSpace(u); u != "" {
				replicaList = append(replicaList, strings.TrimRight(u, "/"))
			}
		}
	}
	switch *role {
	case "":
		if len(replicaList) > 0 {
			return fmt.Errorf("-replicas requires -role leader")
		}
		if *leaderURL != "" {
			return fmt.Errorf("-leader-url requires -role follower")
		}
	case server.RoleLeader:
		if *dataDir == "" {
			return fmt.Errorf("-role leader requires -data-dir (replication epochs must survive restarts)")
		}
	case server.RoleFollower:
		if *dataDir == "" {
			return fmt.Errorf("-role follower requires -data-dir")
		}
		if len(replicaList) > 0 {
			return fmt.Errorf("-replicas is a leader flag; a follower ships nothing until promoted")
		}
	default:
		return fmt.Errorf("-role %q: use \"leader\" or \"follower\"", *role)
	}
	var quorum bool
	switch *ack {
	case "leader":
	case "quorum":
		if len(replicaList) == 0 {
			return fmt.Errorf("-ack quorum does nothing without -replicas")
		}
		quorum = true
	default:
		return fmt.Errorf("-ack %q: use \"leader\" or \"quorum\"", *ack)
	}

	srv, err := server.New(server.Options{
		TenantHeader:    *tenantHeader,
		Workers:         *workers,
		MaxInFlight:     *maxInflight,
		QueueDepth:      *queueDepth,
		QueueTimeout:    *queueTimeout,
		MaxClusters:     *maxClusters,
		MaxTenants:      *maxTenants,
		DataDir:         *dataDir,
		CompactEvery:    *compactEvery,
		GroupCommit:     *groupCommit && *dataDir != "",
		GroupBatchBytes: *batchBytes,
		GroupBatchDelay: *batchDelay,
		Role:            *role,
		Replicas:        replicaList,
		LeaderURL:       strings.TrimRight(*leaderURL, "/"),
		QuorumAck:       quorum,
		AckTimeout:      *ackTimeout,
		LagThreshold:    *lagThreshold,
		FusionCache:     *fusionCache,
		PrewarmZoo:      *prewarmZoo && *fusionCache > 0,
		Pprof:           *pprof,
		AccessLog:       *accessLog,
		SlowRequest:     *slowRequest,
	})
	if err != nil {
		return err
	}
	if *role != "" {
		fmt.Fprintf(out, "fusiond: replication role %s\n", *role)
	}
	if *dataDir != "" {
		fmt.Fprintf(out, "fusiond: recovered durable state from %s\n", *dataDir)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	fmt.Fprintf(out, "fusiond: listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		srv.Close()
		return fmt.Errorf("serve: %w", err)
	case <-sigCtx.Done():
	}
	// Unregister the handler right away: a second SIGTERM/SIGINT during a
	// long drain gets default treatment (kill) instead of being swallowed.
	stop()

	// Drain the engines first: new requests are refused with 503, queued
	// admissions fail over, and Close returns once every admitted request
	// has finished — handlers complete and answer on their still-open
	// connections — and, with -data-dir, every cluster journal is
	// compacted into a final snapshot. Only then close the listener and
	// reap idle exchanges. The drain itself is bounded by the grace
	// period: a request that will not finish must not make the daemon
	// unkillable by SIGTERM (a skipped final snapshot only means the next
	// boot replays WAL tails instead).
	fmt.Fprintln(out, "fusiond: shutting down")
	drained := make(chan struct{})
	go func() {
		if err := srv.Close(); err != nil {
			fmt.Fprintf(out, "fusiond: drain snapshot: %v\n", err)
		}
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(*grace):
		fmt.Fprintln(out, "fusiond: drain grace expired; exiting with requests in flight")
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(out, "fusiond: shutdown: %v\n", err)
	}
	fmt.Fprintln(out, "fusiond: drained")
	return nil
}
