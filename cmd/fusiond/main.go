// Command fusiond is the long-running HTTP/JSON service front-end over
// fusion.Engine: fusion generation (Algorithm 2), simulated deployments
// with event broadcast and fault injection, and fused-state recovery
// (Algorithm 3) as endpoints, with per-tenant engines and engine-level
// admission control so a flood of requests degrades into bounded queueing
// and fast 429s instead of unbounded goroutines on the worker pool.
//
// Usage:
//
//	fusiond -addr :8080
//	fusiond -addr :8080 -workers 8 -max-inflight 4 -queue-depth 16 -queue-timeout 2s
//
// Probe it:
//
//	curl localhost:8080/healthz
//	curl -X POST localhost:8080/v1/generate -d '{"zoo":["0-Counter","1-Counter"],"f":1}'
//
// See examples/fusiond for a full generate → cluster → inject-fault →
// recover transcript. SIGINT/SIGTERM shut the daemon down gracefully:
// in-flight requests finish, queued ones are refused, engines drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fusiond:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fusiond", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "per-tenant worker-pool size (0 = share the process-wide pool)")
		maxInflight  = fs.Int("max-inflight", 0, "per-tenant concurrent request limit (0 = unlimited)")
		queueDepth   = fs.Int("queue-depth", 0, "per-tenant admission queue length beyond max-inflight")
		queueTimeout = fs.Duration("queue-timeout", 0, "how long a queued request waits before 429 (0 = until client disconnect)")
		maxClusters  = fs.Int("max-clusters", 64, "live clusters per tenant (-1 = unbounded)")
		maxTenants   = fs.Int("max-tenants", 64, "distinct tenants served before shedding new names (-1 = unbounded)")
		tenantHeader = fs.String("tenant-header", "X-Fusion-Tenant", "header naming the tenant")
		grace        = fs.Duration("grace", 10*time.Second, "shutdown grace period for in-flight HTTP exchanges")
		dataDir      = fs.String("data-dir", "", "persist cluster registries here and recover them at boot (empty = in-memory)")
		compactEvery = fs.Int("compact-every", 0, "WAL records per cluster between snapshot compactions (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*queueDepth > 0 || *queueTimeout > 0) && *maxInflight <= 0 {
		return fmt.Errorf("-queue-depth/-queue-timeout do nothing without -max-inflight")
	}
	if *compactEvery > 0 && *dataDir == "" {
		return fmt.Errorf("-compact-every does nothing without -data-dir")
	}

	srv, err := server.New(server.Options{
		TenantHeader: *tenantHeader,
		Workers:      *workers,
		MaxInFlight:  *maxInflight,
		QueueDepth:   *queueDepth,
		QueueTimeout: *queueTimeout,
		MaxClusters:  *maxClusters,
		MaxTenants:   *maxTenants,
		DataDir:      *dataDir,
		CompactEvery: *compactEvery,
	})
	if err != nil {
		return err
	}
	if *dataDir != "" {
		fmt.Fprintf(out, "fusiond: recovered durable state from %s\n", *dataDir)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	fmt.Fprintf(out, "fusiond: listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		srv.Close()
		return fmt.Errorf("serve: %w", err)
	case <-sigCtx.Done():
	}
	// Unregister the handler right away: a second SIGTERM/SIGINT during a
	// long drain gets default treatment (kill) instead of being swallowed.
	stop()

	// Drain the engines first: new requests are refused with 503, queued
	// admissions fail over, and Close returns once every admitted request
	// has finished — handlers complete and answer on their still-open
	// connections — and, with -data-dir, every cluster journal is
	// compacted into a final snapshot. Only then close the listener and
	// reap idle exchanges. The drain itself is bounded by the grace
	// period: a request that will not finish must not make the daemon
	// unkillable by SIGTERM (a skipped final snapshot only means the next
	// boot replays WAL tails instead).
	fmt.Fprintln(out, "fusiond: shutting down")
	drained := make(chan struct{})
	go func() {
		if err := srv.Close(); err != nil {
			fmt.Fprintf(out, "fusiond: drain snapshot: %v\n", err)
		}
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(*grace):
		fmt.Fprintln(out, "fusiond: drain grace expired; exiting with requests in flight")
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(out, "fusiond: shutdown: %v\n", err)
	}
	fmt.Fprintln(out, "fusiond: drained")
	return nil
}
