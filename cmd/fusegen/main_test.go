package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestListZoo(t *testing.T) {
	out, err := runCapture(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MESI", "TCP", "0-Counter"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing %s", want)
		}
	}
}

func TestZooGeneration(t *testing.T) {
	out, err := runCapture(t, "-zoo", "0-Counter,1-Counter", "-f", "1", "-table", "-spec-out")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"|top| = 9", "1 backup machine(s)", "sizes [3]", "machine F1", "strict"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDescentStatsFlag(t *testing.T) {
	// MESI,TCP has a 36-state top — above the descent engine's gate, so
	// the generation runs memoized and the cascade split is populated.
	out, err := runCapture(t, "-zoo", "MESI,TCP", "-f", "2", "-descent-stats")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "descent stats:") {
		t.Fatalf("-descent-stats output missing stats block:\n%s", out)
	}
	var descents, levels, implied, seeded, cold, closures int
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "descent stats:") {
			if _, err := fmt.Sscanf(line, "descent stats: descents=%d levels=%d", &descents, &levels); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
		}
		if strings.HasPrefix(line, "cascades:") {
			if _, err := fmt.Sscanf(line, "cascades: implied=%d seeded=%d cold=%d (of %d closures)", &implied, &seeded, &cold, &closures); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
		}
	}
	if descents != 2 {
		t.Errorf("descents = %d, want 2 (f=2 from dmin=1)", descents)
	}
	if levels == 0 || closures == 0 {
		t.Errorf("levels = %d, closures = %d; want both > 0", levels, closures)
	}
	if implied+seeded+cold != closures {
		t.Errorf("cascade split %d+%d+%d != %d closures", implied, seeded, cold, closures)
	}
	if implied == 0 {
		t.Errorf("implied = 0; the pair-implication memo should fire on a 36-state top")
	}
}

func TestSpecFileGeneration(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.fsm")
	src := `
machine X
initial x0
x0 a -> x1
x1 a -> x0

machine Y
initial y0
y0 b -> y1
y1 b -> y0
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCapture(t, "-spec", path, "-f", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "|top| = 4") {
		t.Errorf("output: %s", out)
	}
}

func TestDOTOutputFile(t *testing.T) {
	dir := t.TempDir()
	dot := filepath.Join(dir, "out.dot")
	if _, err := runCapture(t, "-zoo", "A,B", "-f", "1", "-dot", dot); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Error("dot file has no digraph")
	}
}

func TestPlanMode(t *testing.T) {
	out, err := runCapture(t, "-zoo", "0-Counter,1-Counter", "-f", "2", "-plan")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"plan for f=2", "savings", "replication: 4 machine(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan output missing %q:\n%s", want, out)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := runCapture(t); err == nil {
		t.Error("no machines: expected error")
	}
	if _, err := runCapture(t, "-zoo", "NoSuchMachine"); err == nil {
		t.Error("unknown zoo machine accepted")
	}
	if _, err := runCapture(t, "-spec", "/nonexistent/file.fsm"); err == nil {
		t.Error("missing spec file accepted")
	}
	if _, err := runCapture(t, "-zoo", "0-Counter,1-Counter", "-f", "5", "-max-machines", "1"); err == nil {
		t.Error("max-machines guard did not trip")
	}
	if _, err := runCapture(t, "-bogus-flag"); err == nil {
		t.Error("bogus flag accepted")
	}
}

func TestMultiFlag(t *testing.T) {
	var m multiFlag
	m.Set("a")
	m.Set("b")
	if m.String() != "a,b" || len(m) != 2 {
		t.Errorf("multiFlag = %v", m)
	}
}

func TestWorkersFlagDeterministic(t *testing.T) {
	want, err := runCapture(t, "-zoo", "0-Counter,1-Counter", "-f", "1", "-table")
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"1", "2", "4"} {
		got, err := runCapture(t, "-zoo", "0-Counter,1-Counter", "-f", "1", "-table", "-workers", w)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("-workers %s changed the generated machines:\n%s\nvs\n%s", w, got, want)
		}
	}
}
