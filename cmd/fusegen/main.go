// Command fusegen generates fusion backup machines for a set of DFSMs.
//
// Input machines come either from .fsm spec files (-spec, repeatable) or
// from the built-in model zoo (-zoo, comma-separated names). The tool
// computes the reachable cross product, runs Algorithm 2 for the requested
// fault budget, and prints the backup machines along with the
// fusion-vs-replication state-space comparison of the paper's Section 6.
//
// Usage:
//
//	fusegen -zoo MESI,TCP,A,B -f 1
//	fusegen -spec mymachines.fsm -f 2 -dot out.dot -table
//	fusegen -zoo MESI,TCP,A,B -f 2 -workers 8
//	fusegen -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	fusion "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fusegen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fusegen", flag.ContinueOnError)
	var (
		specs   multiFlag
		zoo     = fs.String("zoo", "", "comma-separated zoo machine names (see -list)")
		f       = fs.Int("f", 1, "number of crash faults to tolerate (Byzantine: f/2)")
		list    = fs.Bool("list", false, "list the built-in model zoo and exit")
		dot     = fs.String("dot", "", "write the generated machines as Graphviz dot to this file")
		table   = fs.Bool("table", false, "print the transition tables of the backups")
		maxM    = fs.Int("max-machines", 0, "abort if more than this many backups are needed (0 = unlimited)")
		specOut = fs.Bool("spec-out", false, "print the backups in .fsm spec format")
		plan    = fs.Bool("plan", false, "print the capacity plan (fusion vs replication) instead of the machines")
		workers = fs.Int("workers", 0, "worker-pool size for candidate evaluation (0 = GOMAXPROCS)")
		dstats  = fs.Bool("descent-stats", false, "print descent-engine sharing counters (implied/seeded/cold cascades) for this generation")
	)
	fs.Var(&specs, "spec", "machine spec file (.fsm); repeatable")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprintln(out, strings.Join(fusion.ZooNames(), "\n"))
		return nil
	}

	var ms []*fusion.Machine
	for _, path := range specs {
		file, err := os.Open(path)
		if err != nil {
			return err
		}
		parsed, err := fusion.ParseSpec(file)
		file.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		ms = append(ms, parsed...)
	}
	if *zoo != "" {
		for _, name := range strings.Split(*zoo, ",") {
			m, err := fusion.ZooMachine(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			ms = append(ms, m)
		}
	}
	if len(ms) == 0 {
		return fmt.Errorf("no machines given; use -spec or -zoo (or -list)")
	}

	sys, err := fusion.NewSystem(ms)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "system: %d machines, |top| = %d, dmin = %d (tolerates %d crash faults unaided)\n",
		len(ms), sys.N(), sys.Dmin(), sys.CrashFaultsTolerated())

	if *plan {
		p, err := fusion.PlanFusion(sys, *f)
		if err != nil {
			return err
		}
		fmt.Fprint(out, p.String())
		return nil
	}

	engine := fusion.NewEngine(fusion.EngineOptions{Workers: *workers})
	before := fusion.GenerationCounters()
	F, err := engine.GenerateWithOptions(sys, *f, fusion.GenerateOptions{MaxMachines: *maxM})
	if err != nil {
		return err
	}
	if *dstats {
		printDescentStats(out, before, fusion.GenerationCounters())
	}
	backups, err := sys.FusionMachines(F, "F")
	if err != nil {
		return err
	}

	fusionSpace := uint64(1)
	var sizes []string
	for _, b := range backups {
		fusionSpace *= uint64(b.NumStates())
		sizes = append(sizes, fmt.Sprintf("%d", b.NumStates()))
	}
	repl := fusion.ReplicationStateSpace(ms, *f)
	fmt.Fprintf(out, "fusion: %d backup machine(s), sizes [%s]\n", len(backups), strings.Join(sizes, " "))
	fmt.Fprintf(out, "state space: fusion %d vs replication %d (%.1fx smaller)\n",
		fusionSpace, repl, ratio(repl, fusionSpace))

	if *table {
		for _, b := range backups {
			fmt.Fprintln(out)
			fmt.Fprint(out, b.Table())
		}
	}
	if *specOut {
		fmt.Fprintln(out)
		fmt.Fprint(out, fusion.FormatSpec(backups))
	}
	if *dot != "" {
		var sb strings.Builder
		for _, b := range backups {
			sb.WriteString(b.DOT())
		}
		if err := os.WriteFile(*dot, []byte(sb.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *dot)
	}
	return nil
}

// printDescentStats prints the delta of the process-wide generation
// counters around this run's generation: how many descents and levels it
// took, and how each candidate closure was resolved — the within-level
// pair-implication split (implied / seeded-absorb / cold cascade) plus
// the cross-level reuses (seeded joins, pruned skips, ⊤-cache hits).
// Counters are process-wide, but fusegen runs exactly one generation, so
// the delta is that generation's work. Small systems (below the descent
// engine's gate) report all closures as cold cascades.
func printDescentStats(out io.Writer, before, after fusion.GenerationStats) {
	fmt.Fprintf(out, "descent stats: descents=%d levels=%d\n",
		after.Descents-before.Descents, after.Levels-before.Levels)
	fmt.Fprintf(out, "  cascades: implied=%d seeded=%d cold=%d (of %d closures)\n",
		after.ImpliedCascades-before.ImpliedCascades,
		after.SeededCascades-before.SeededCascades,
		after.ColdCascades-before.ColdCascades,
		after.ColdClosures-before.ColdClosures)
	fmt.Fprintf(out, "  cross-level: seeded-joins=%d pruned-skips=%d top-cache-hits=%d\n",
		after.SeededJoins-before.SeededJoins,
		after.PrunedSkips-before.PrunedSkips,
		after.TopCacheHits-before.TopCacheHits)
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// multiFlag collects repeated -spec flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }
