// Command fsmtool inspects and transforms DFSMs: print transition tables,
// export Graphviz/JSON, compute reachable cross products, check
// isomorphism, and enumerate closed-partition lattices. It works on the
// built-in zoo and on .fsm spec files, complementing fusegen (generation)
// and faultsim (simulation).
//
// Usage:
//
//	fsmtool -zoo TCP -table
//	fsmtool -spec machines.fsm -product -lattice
//	fsmtool -zoo A,B -iso
//	fsmtool -zoo MESI -dot -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	fusion "repro"
	"repro/internal/dfsm"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fsmtool:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fsmtool", flag.ContinueOnError)
	var (
		zoo      = fs.String("zoo", "", "comma-separated zoo machine names")
		specPath = fs.String("spec", "", "machine spec file (.fsm)")
		table    = fs.Bool("table", false, "print transition tables")
		dot      = fs.Bool("dot", false, "print Graphviz dot")
		asJSON   = fs.Bool("json", false, "print JSON")
		asSpec   = fs.Bool("fsm", false, "print .fsm spec format")
		product  = fs.Bool("product", false, "compute the reachable cross product of all machines")
		latt     = fs.Bool("lattice", false, "enumerate the closed-partition lattice of the (product) machine")
		iso      = fs.Bool("iso", false, "check whether the (exactly two) machines are isomorphic")
		stats    = fs.Bool("stats", false, "print structural statistics (SCCs, recurrent states, eccentricity)")
		maxNodes = fs.Int("max-lattice", 4096, "lattice enumeration bound")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ms, err := loadMachines(*zoo, *specPath)
	if err != nil {
		return err
	}

	for _, m := range ms {
		fmt.Fprintf(out, "%s: %d states, %d events, initial %s\n",
			m.Name(), m.NumStates(), m.NumEvents(), m.StateName(m.Initial()))
		if *table {
			fmt.Fprint(out, m.Table())
		}
		if *dot {
			fmt.Fprint(out, m.DOT())
		}
		if *asJSON {
			data, err := json.MarshalIndent(m, "", "  ")
			if err != nil {
				return err
			}
			fmt.Fprintln(out, string(data))
		}
		if *stats {
			fmt.Fprint(out, m.Stats())
		}
	}
	if *asSpec {
		fmt.Fprint(out, fusion.FormatSpec(ms))
	}

	if *iso {
		if len(ms) != 2 {
			return fmt.Errorf("-iso needs exactly 2 machines, got %d", len(ms))
		}
		fmt.Fprintf(out, "isomorphic: %v\n", dfsm.Isomorphic(ms[0], ms[1]))
	}

	target := ms[0]
	if *product || len(ms) > 1 && *latt {
		p, err := fusion.ReachableCrossProduct(ms)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: %d reachable states (unpruned product: %d)\n",
			p.Top.Name(), p.Top.NumStates(), p.StateSpace())
		if *table && *product {
			fmt.Fprint(out, p.Top.Table())
		}
		target = p.Top
	}

	if *latt {
		l, err := fusion.BuildLattice(target, *maxNodes)
		if err != nil {
			return err
		}
		fmt.Fprint(out, l.Summary())
		if *dot {
			fmt.Fprint(out, l.DOT())
		}
	}
	return nil
}

func loadMachines(zoo, specPath string) ([]*fusion.Machine, error) {
	var ms []*fusion.Machine
	if specPath != "" {
		f, err := os.Open(specPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		parsed, err := fusion.ParseSpec(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", specPath, err)
		}
		ms = append(ms, parsed...)
	}
	if zoo != "" {
		for _, name := range strings.Split(zoo, ",") {
			m, err := fusion.ZooMachine(strings.TrimSpace(name))
			if err != nil {
				return nil, err
			}
			ms = append(ms, m)
		}
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("no machines given; use -zoo or -spec")
	}
	return ms, nil
}
