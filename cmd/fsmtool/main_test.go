package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestTableAndDot(t *testing.T) {
	out, err := runCapture(t, "-zoo", "MESI", "-table", "-dot")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MESI: 4 states", "machine MESI", "digraph"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestJSONAndSpec(t *testing.T) {
	out, err := runCapture(t, "-zoo", "Toggle", "-json", "-fsm")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"name": "Toggle"`) || !strings.Contains(out, "machine Toggle") {
		t.Errorf("output:\n%s", out)
	}
}

func TestProductAndLattice(t *testing.T) {
	out, err := runCapture(t, "-zoo", "A,B", "-product", "-lattice")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "4 reachable states") {
		t.Errorf("product missing:\n%s", out)
	}
	if !strings.Contains(out, "closed-partition lattice") {
		t.Errorf("lattice missing:\n%s", out)
	}
}

func TestIso(t *testing.T) {
	out, err := runCapture(t, "-zoo", "0-Counter,1-Counter", "-iso")
	if err != nil {
		t.Fatal(err)
	}
	// Different alphabets: not isomorphic.
	if !strings.Contains(out, "isomorphic: false") {
		t.Errorf("output:\n%s", out)
	}
	if _, err := runCapture(t, "-zoo", "MESI", "-iso"); err == nil {
		t.Error("-iso with one machine accepted")
	}
}

func TestStats(t *testing.T) {
	out, err := runCapture(t, "-zoo", "TCP", "-stats")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "recurrent:") || !strings.Contains(out, "SCCs") {
		t.Errorf("stats missing:\n%s", out)
	}
	// TCP's CLOSED state must be recurrent (connections can always be
	// reopened and closed again).
	if !strings.Contains(out, "CLOSED") {
		t.Errorf("TCP CLOSED not recurrent:\n%s", out)
	}
}

func TestSpecInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.fsm")
	os.WriteFile(path, []byte("machine M\ninitial a\na e -> b\nb e -> a\n"), 0o644)
	out, err := runCapture(t, "-spec", path, "-table")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "M: 2 states") {
		t.Errorf("output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	if _, err := runCapture(t); err == nil {
		t.Error("no machines accepted")
	}
	if _, err := runCapture(t, "-zoo", "Ghost"); err == nil {
		t.Error("unknown zoo machine accepted")
	}
	if _, err := runCapture(t, "-spec", "/does/not/exist"); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := runCapture(t, "-zoo", "0-Counter,1-Counter", "-lattice", "-max-lattice", "2"); err == nil {
		t.Error("lattice bound not enforced")
	}
}
