package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestFigureExperiments(t *testing.T) {
	cases := map[string][]string{
		"fig1": {"Fig. 1", "(1,1)-fusion: true", "Byzantine fault: true"},
		"fig2": {"Fig. 2", "|R({A,B})| = 4"},
		"fig3": {"Fig. 3", "lattice"},
		"fig4": {"Fig. 4", "dmin = 3"},
		"fig5": {"Fig. 5", "Algorithm 1"},
	}
	for exp, wants := range cases {
		out, err := runCapture(t, "-experiment", exp)
		if err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		for _, w := range wants {
			if !strings.Contains(out, w) {
				t.Errorf("%s output missing %q", exp, w)
			}
		}
	}
}

func TestFig3DOT(t *testing.T) {
	out, err := runCapture(t, "-experiment", "fig3", "-dot")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph lattice") {
		t.Error("missing Hasse diagram")
	}
}

func TestSensorExperiment(t *testing.T) {
	out, err := runCapture(t, "-experiment", "sensor")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "verified: true") {
		t.Errorf("sensor recovery not verified:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := runCapture(t, "-experiment", "nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := runCapture(t, "-badflag"); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestTable1AndRecovery runs the heavy experiments; skipped in -short.
func TestTable1AndRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiments skipped in -short mode")
	}
	out, err := runCapture(t, "-experiment", "table1")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "tab1.") != 5 {
		t.Errorf("table has wrong row count:\n%s", out)
	}
	out, err = runCapture(t, "-experiment", "recovery", "-rounds", "1")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "true") < 5 {
		t.Errorf("recovery rows missing:\n%s", out)
	}
}
