package main

import (
	"fmt"
	"io"

	"repro/internal/experiments"
)

func runFig1(out io.Writer) error {
	r, err := experiments.Fig1()
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(out, experiments.FormatFig1(r))
	return err
}

func runFig2(out io.Writer) error {
	r, err := experiments.Fig2()
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(out, experiments.FormatFig2(r))
	return err
}

func runFig3(out io.Writer, dot bool) error {
	r, err := experiments.Fig3()
	if err != nil {
		return err
	}
	if _, err := fmt.Fprint(out, experiments.FormatFig3(r)); err != nil {
		return err
	}
	if dot {
		_, err = fmt.Fprint(out, r.DOT)
	}
	return err
}

func runFig4(out io.Writer) error {
	r, err := experiments.Fig4()
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(out, experiments.FormatFig4(r))
	return err
}

func runFig5(out io.Writer) error {
	r, err := experiments.Fig5()
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(out, experiments.FormatFig5(r))
	return err
}

func runTable1(out io.Writer) error {
	rows, err := experiments.Table1()
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(out, "Table 1 — fusion vs replication (Section 6)"); err != nil {
		return err
	}
	_, err = fmt.Fprint(out, experiments.FormatTable(rows))
	return err
}

func runSensor(out io.Writer, seed int64) error {
	if _, err := fmt.Fprintln(out, "Sensor network (introduction / conclusion)"); err != nil {
		return err
	}
	for _, cfg := range []struct{ n, k, f int }{
		{100, 3, 1},  // the paper's 100-sensor example
		{1000, 7, 5}, // the conclusion's 1000 machines / 5 faults claim
	} {
		r, err := experiments.Sensor(cfg.n, cfg.k, cfg.f, seed)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprint(out, experiments.FormatSensor(r)); err != nil {
			return err
		}
	}
	return nil
}

func runScaling(out io.Writer) error {
	pts, err := experiments.Scaling(experiments.DefaultScalingConfig())
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(out, "Scaling (extension) — random machine systems, Algorithm 2"); err != nil {
		return err
	}
	if _, err := fmt.Fprint(out, experiments.FormatScaling(pts)); err != nil {
		return err
	}
	row, err := experiments.ExtendedSuite(1)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(out, "extended zoo suite (Turnstile,Thermostat,Vending,TokenBucket): |top|=%d backups=%v fusion=%d repl=%d\n",
		row.TopSize, row.BackupSizes, row.Fusion, row.Replication)
	return err
}

func runTheorems(out io.Writer) error {
	checks, err := experiments.Theorems()
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(out, "Theorems 1–5 + detection extension — exhaustive operational verification"); err != nil {
		return err
	}
	_, err = fmt.Fprint(out, experiments.FormatTheorems(checks))
	return err
}

func runRecovery(out io.Writer, rounds int, seed int64) error {
	rs, err := experiments.RecoveryAll(rounds, seed)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(out, "Recovery (Section 5.2) — simulated cluster, oracle-verified"); err != nil {
		return err
	}
	_, err = fmt.Fprint(out, experiments.FormatRecovery(rs))
	return err
}
