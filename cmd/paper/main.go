// Command paper regenerates every table and figure of the IPPS 2009
// fusion paper's evaluation from this reproduction (see DESIGN.md §4 for
// the experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	paper                      # run everything
//	paper -experiment table1   # one artifact: fig1..fig5, table1, sensor, recovery
//	paper -experiment fig3 -dot  # include the Hasse diagram DOT
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("paper", flag.ContinueOnError)
	var (
		exp    = fs.String("experiment", "all", "fig1|fig2|fig3|fig4|fig5|table1|sensor|recovery|scaling|theorems|all")
		dot    = fs.Bool("dot", false, "with fig3: print the lattice Hasse diagram (Graphviz)")
		rounds = fs.Int("rounds", 3, "recovery rounds per suite")
		seed   = fs.Int64("seed", 2009, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	runners := map[string]func() error{
		"fig1":     func() error { return runFig1(out) },
		"fig2":     func() error { return runFig2(out) },
		"fig3":     func() error { return runFig3(out, *dot) },
		"fig4":     func() error { return runFig4(out) },
		"fig5":     func() error { return runFig5(out) },
		"table1":   func() error { return runTable1(out) },
		"sensor":   func() error { return runSensor(out, *seed) },
		"recovery": func() error { return runRecovery(out, *rounds, *seed) },
		"scaling":  func() error { return runScaling(out) },
		"theorems": func() error { return runTheorems(out) },
	}
	if *exp == "all" {
		for _, name := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "table1", "sensor", "recovery", "scaling", "theorems"} {
			if err := runners[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Fprintln(out)
		}
		return nil
	}
	r, ok := runners[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return r()
}
