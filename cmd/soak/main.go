// Command soak is fusiond's sustained-load harness: it drives a live
// daemon (or spawns one) with the mixed production workload — generate
// floods that alternate cache hits and cold computes, deployment churn
// (create → events/faults → recover → delete), health probes, and
// optionally follower reads — at fixed concurrency for a configurable
// duration, then scrapes /metrics and prints a per-route
// p50/p95/p99 report alongside the daemon's goroutine/RSS gauges.
//
// Latency is measured client-side into the same mergeable histograms
// the daemon uses (internal/obsv), so the numbers survive a daemon
// kill/restart mid-run; the final /metrics scrape must parse under the
// strict exposition parser, so a malformed page fails the run, not
// just a unit test.
//
// Usage:
//
//	soak -addr localhost:8080 -duration 30s -concurrency 8
//	soak -fusiond ./fusiond -duration 30s -kill          # spawn, kill -9 at half time, restart
//	soak -fusiond ./fusiond -replicate                   # leader + follower; reads hit the follower
//
// Ceilings (-max-p99, -max-goroutines, -max-rss-mb) turn the report
// into a gate: any breach exits nonzero, which is how the CI
// soak-smoke job holds the daemon to its latency and leak budgets.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/obsv"
	"repro/internal/server"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		os.Exit(1)
	}
}

// config is the parsed flag set.
type config struct {
	addr        string
	fusiond     string
	dataDir     string
	duration    time.Duration
	concurrency int
	kill        bool
	replicate   bool
	eventsFrac  float64
	reqTimeout  time.Duration
	maxP99      time.Duration
	maxGoro     int
	maxRSSMB    int
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("soak", flag.ContinueOnError)
	var c config
	fs.StringVar(&c.addr, "addr", "", "drive an existing daemon at this address (host:port or URL)")
	fs.StringVar(&c.fusiond, "fusiond", "", "spawn this fusiond binary instead of targeting -addr")
	fs.StringVar(&c.dataDir, "data-dir", "", "data dir for the spawned daemon (default: a temp dir, removed afterwards)")
	fs.DurationVar(&c.duration, "duration", 30*time.Second, "how long to sustain the load")
	fs.IntVar(&c.concurrency, "concurrency", 8, "concurrent workers")
	fs.BoolVar(&c.kill, "kill", false, "kill -9 the spawned daemon at half duration and restart it (requires -fusiond)")
	fs.BoolVar(&c.replicate, "replicate", false, "spawn a follower too and send reads to it (requires -fusiond)")
	fs.Float64Var(&c.eventsFrac, "events-frac", 0, "write-heavy mode: this fraction of each worker's ops becomes extra event appends to a persistent per-worker cluster, flooding the WAL (0..1)")
	fs.DurationVar(&c.reqTimeout, "req-timeout", 30*time.Second, "per-request client timeout")
	fs.DurationVar(&c.maxP99, "max-p99", 0, "fail when any route's client-observed p99 exceeds this (0 = no ceiling)")
	fs.IntVar(&c.maxGoro, "max-goroutines", 0, "fail when the daemon's final goroutine count exceeds this (0 = no ceiling)")
	fs.IntVar(&c.maxRSSMB, "max-rss-mb", 0, "fail when the daemon's final RSS exceeds this many MiB (0 = no ceiling)")
	if err := fs.Parse(args); err != nil {
		return c, err
	}
	switch {
	case c.addr == "" && c.fusiond == "":
		return c, fmt.Errorf("set -addr (existing daemon) or -fusiond (spawn one)")
	case c.addr != "" && c.fusiond != "":
		return c, fmt.Errorf("-addr and -fusiond are mutually exclusive")
	case (c.kill || c.replicate) && c.fusiond == "":
		return c, fmt.Errorf("-kill/-replicate require -fusiond (soak must own the process)")
	case c.concurrency < 1:
		return c, fmt.Errorf("-concurrency must be >= 1")
	case c.duration <= 0:
		return c, fmt.Errorf("-duration must be > 0")
	case c.eventsFrac < 0 || c.eventsFrac > 1:
		return c, fmt.Errorf("-events-frac must be in [0, 1]")
	}
	return c, nil
}

// baseURL normalizes an address flag to a URL.
func baseURL(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimRight(addr, "/")
	}
	if strings.HasPrefix(addr, ":") {
		addr = "localhost" + addr
	}
	return "http://" + addr
}

func run(ctx context.Context, args []string, out io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}

	s := &soaker{
		cfg:    cfg,
		out:    out,
		client: &http.Client{Timeout: cfg.reqTimeout},
	}

	// Spawn mode: soak owns the daemon's lifecycle (and, with -kill,
	// its death).
	var leader, follower *daemon
	if cfg.fusiond != "" {
		dir := cfg.dataDir
		if dir == "" {
			dir, err = os.MkdirTemp("", "soak-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir) //nolint:errcheck // best-effort scratch cleanup
		}
		addr, err := freeAddr()
		if err != nil {
			return err
		}
		largs := []string{"-addr", addr, "-access-log", "512",
			"-max-inflight", "64", "-queue-depth", "128", "-queue-timeout", "5s"}
		if cfg.replicate {
			faddr, err := freeAddr()
			if err != nil {
				return err
			}
			largs = append(largs, "-role", "leader", "-data-dir", dir+"/leader",
				"-replicas", baseURL(faddr))
			follower = &daemon{path: cfg.fusiond, args: []string{
				"-addr", faddr, "-role", "follower",
				"-data-dir", dir + "/follower", "-leader-url", baseURL(addr),
			}, url: baseURL(faddr)}
			if err := follower.start(); err != nil {
				return err
			}
			defer follower.stop(out)
		} else {
			largs = append(largs, "-data-dir", dir)
		}
		leader = &daemon{path: cfg.fusiond, args: largs, url: baseURL(addr)}
		if err := leader.start(); err != nil {
			return err
		}
		defer leader.stop(out)
		if err := s.waitReady(ctx, leader.url, 15*time.Second); err != nil {
			return fmt.Errorf("spawned daemon never became healthy: %w\n%s", err, leader.tail())
		}
		if follower != nil {
			if err := s.waitReady(ctx, follower.url, 15*time.Second); err != nil {
				return fmt.Errorf("spawned follower never became healthy: %w\n%s", err, follower.tail())
			}
		}
		s.base = leader.url
		fmt.Fprintf(out, "soak: spawned fusiond at %s (data dir %s)\n", leader.url, dir)
	} else {
		s.base = baseURL(cfg.addr)
	}
	s.readBase = s.base
	if follower != nil {
		s.readBase = follower.url
	}

	// The workload window.
	loadCtx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()

	// Half-time kill -9 + restart: the harness's crash-recovery leg.
	killErr := make(chan error, 1)
	if cfg.kill {
		go func() {
			select {
			case <-time.After(cfg.duration / 2):
			case <-loadCtx.Done():
				killErr <- nil
				return
			}
			fmt.Fprintf(out, "soak: kill -9 at half duration\n")
			down := time.Now()
			if err := leader.kill9(); err != nil {
				killErr <- fmt.Errorf("kill -9: %w", err)
				return
			}
			if err := leader.start(); err != nil {
				killErr <- fmt.Errorf("restart after kill: %w", err)
				return
			}
			if err := s.waitReady(ctx, leader.url, 15*time.Second); err != nil {
				killErr <- fmt.Errorf("daemon never recovered from kill -9: %w\n%s", err, leader.tail())
				return
			}
			fmt.Fprintf(out, "soak: daemon restarted and healthy after %s\n", time.Since(down).Round(time.Millisecond))
			killErr <- nil
		}()
	} else {
		killErr <- nil
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s.worker(loadCtx, w)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := <-killErr; err != nil {
		return err
	}

	return s.report(out, elapsed)
}

// --- the load --------------------------------------------------------------

// soaker holds the workload state shared by all workers: one histogram
// per logical route (client-observed, so they survive daemon
// restarts) and the outcome counters.
type soaker struct {
	cfg      config
	out      io.Writer
	client   *http.Client
	base     string // writes and the final scrape
	readBase string // reads; the follower's URL under -replicate

	hists sync.Map // route string -> *obsv.Histogram
	ok2xx, shed429, shed503,
	other, transport atomic.Int64
}

func (s *soaker) hist(route string) *obsv.Histogram {
	if h, ok := s.hists.Load(route); ok {
		return h.(*obsv.Histogram)
	}
	h, _ := s.hists.LoadOrStore(route, &obsv.Histogram{})
	return h.(*obsv.Histogram)
}

// request runs one HTTP exchange, records its latency under the route
// label, and returns the status (0 on transport error). The body is
// drained in full so connections are reused.
func (s *soaker) request(ctx context.Context, base, method, path, route, tenant, body string) (int, []byte) {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		s.transport.Add(1)
		return 0, nil
	}
	if tenant != "" {
		req.Header.Set("X-Fusion-Tenant", tenant)
	}
	start := time.Now()
	resp, err := s.client.Do(req)
	if err != nil {
		// Expected during the kill window: the daemon is gone. Back off
		// briefly so the blackout doesn't spin the error counter.
		s.transport.Add(1)
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
		}
		return 0, nil
	}
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20)) //nolint:errcheck // best-effort body
	resp.Body.Close()                                    //nolint:errcheck // drained above
	s.hist(route).Record(time.Since(start))
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		s.ok2xx.Add(1)
	case resp.StatusCode == http.StatusTooManyRequests:
		s.shed429.Add(1)
	case resp.StatusCode == http.StatusServiceUnavailable:
		s.shed503.Add(1)
	default:
		s.other.Add(1)
	}
	return resp.StatusCode, b
}

// zooCombos rotate through the generate flood: the first is the
// fixed-point the cache serves hot, the rest force cold computes.
var zooCombos = []string{
	`{"zoo":["0-Counter","1-Counter"],"f":1}`,
	`{"zoo":["MESI","1-Counter"],"f":1}`,
	`{"zoo":["0-Counter","1-Counter","MESI"],"f":1}`,
	`{"zoo":["1-Counter","2-Counter"],"f":1}`,
}

// worker runs the mixed workload until the context expires. The mix per
// 8-op cycle: 3 hot generates (cache hits), 1 cold/bypass generate, 1
// full deployment-churn pass, 2 reads (healthz + metrics-adjacent), 1
// rotating-zoo generate. With -events-frac set, that fraction of ops is
// replaced by event appends to a persistent per-worker cluster — the
// write-heavy mode that keeps many workers inside POST /events at once,
// which is what exercises WAL group commit.
func (s *soaker) worker(ctx context.Context, id int) {
	tenant := fmt.Sprintf("soak-w%d", id)
	fl := &flooder{s: s, tenant: tenant}
	var acc float64
	for i := 0; ctx.Err() == nil; i++ {
		if acc += s.cfg.eventsFrac; acc >= 1 {
			acc--
			fl.flood(ctx, int64(i))
			continue
		}
		switch i % 8 {
		case 0, 1, 2:
			s.request(ctx, s.base, "POST", "/v1/generate", "/v1/generate", tenant, zooCombos[0])
		case 3:
			// noCache bypasses the fusion cache: a guaranteed compute.
			s.request(ctx, s.base, "POST", "/v1/generate", "/v1/generate", tenant,
				`{"zoo":["0-Counter","1-Counter"],"f":1,"noCache":true}`)
		case 4:
			s.churn(ctx, tenant, int64(i))
		case 5:
			s.request(ctx, s.readBase, "GET", "/healthz", "/healthz", "", "")
		case 6:
			s.request(ctx, s.readBase, "POST", "/v1/generate", "/v1/generate", tenant, zooCombos[i/8%len(zooCombos)])
		case 7:
			s.request(ctx, s.base, "GET", "/debug/log?n=5", "/debug/log", "", "")
		}
	}
}

// flooder is one worker's write-heavy arm: a persistent cluster it
// keeps appending event batches to, so concurrent workers' appends are
// simultaneously in flight against distinct clusters of the same tenant
// store — the coalescing case group commit exists for. The cluster is
// (re)created lazily: a 404 (daemon restarted by the kill phase onto a
// different data dir, or the id swept) just re-creates it.
type flooder struct {
	s      *soaker
	tenant string
	id     string
}

func (f *flooder) flood(ctx context.Context, seed int64) {
	s := f.s
	if f.id == "" {
		code, body := s.request(ctx, s.base, "POST", "/v1/clusters", "/v1/clusters", f.tenant,
			`{"zoo":["0-Counter","1-Counter"],"f":1,"seed":`+fmt.Sprint(seed)+`}`)
		if code != http.StatusCreated {
			return
		}
		var cl server.ClusterResponse
		if err := json.Unmarshal(body, &cl); err != nil || cl.ID == "" {
			return
		}
		f.id = cl.ID
	}
	code, _ := s.request(ctx, s.base, "POST", "/v1/clusters/"+f.id+"/events", "/v1/clusters/{id}/events", f.tenant,
		fmt.Sprintf(`{"random":{"count":4,"seed":%d}}`, seed))
	if code == http.StatusNotFound {
		f.id = "" // cluster gone (restart or sweep): re-create on the next flood
	}
}

// churn is one deployment lifecycle: create a cluster, broadcast a
// seeded event stream and crash a backup, run a recovery round, read
// it back (possibly from the follower), and delete it.
func (s *soaker) churn(ctx context.Context, tenant string, seed int64) {
	code, body := s.request(ctx, s.base, "POST", "/v1/clusters", "/v1/clusters", tenant,
		`{"zoo":["0-Counter","1-Counter"],"f":1,"seed":`+fmt.Sprint(seed)+`}`)
	if code != http.StatusCreated {
		return
	}
	var cl server.ClusterResponse
	if err := json.Unmarshal(body, &cl); err != nil || cl.ID == "" || len(cl.Servers) == 0 {
		return
	}
	victim := cl.Servers[len(cl.Servers)-1]
	s.request(ctx, s.base, "POST", "/v1/clusters/"+cl.ID+"/events", "/v1/clusters/{id}/events", tenant,
		fmt.Sprintf(`{"random":{"count":8,"seed":%d},"faults":[{"server":%q,"kind":"crash"}]}`, seed, victim))
	s.request(ctx, s.base, "POST", "/v1/clusters/"+cl.ID+"/recover", "/v1/clusters/{id}/recover", tenant, `{}`)
	s.request(ctx, s.readBase, "GET", "/v1/clusters/"+cl.ID, "/v1/clusters/{id}", tenant, "")
	s.request(ctx, s.base, "DELETE", "/v1/clusters/"+cl.ID, "/v1/clusters/{id}", tenant, "")
}

// waitReady polls /healthz until the daemon answers 200.
func (s *soaker) waitReady(ctx context.Context, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: time.Second}
	for time.Now().Before(deadline) && ctx.Err() == nil {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for reuse
			resp.Body.Close()              //nolint:errcheck // drained
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return fmt.Errorf("no healthy response within %s", timeout)
}

// --- the report ------------------------------------------------------------

// report prints the client-observed per-route quantiles and the
// daemon's own /metrics view, then enforces the ceilings.
func (s *soaker) report(out io.Writer, elapsed time.Duration) error {
	total := s.ok2xx.Load() + s.shed429.Load() + s.shed503.Load() + s.other.Load()
	fmt.Fprintf(out, "soak: %d responses in %s (%.1f req/s): %d 2xx, %d 429, %d 503, %d other, %d transport errors\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(),
		s.ok2xx.Load(), s.shed429.Load(), s.shed503.Load(), s.other.Load(), s.transport.Load())
	if s.ok2xx.Load() == 0 {
		return fmt.Errorf("workload never succeeded: 0 2xx responses (%d transport errors)", s.transport.Load())
	}

	type row struct {
		route string
		snap  obsv.Snapshot
	}
	var rows []row
	s.hists.Range(func(k, v any) bool {
		rows = append(rows, row{k.(string), v.(*obsv.Histogram).Snapshot()})
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].route < rows[j].route })
	fmt.Fprintf(out, "\nclient-observed latency (survives daemon restarts):\n")
	fmt.Fprintf(out, "%-28s %9s %10s %10s %10s\n", "route", "count", "p50", "p95", "p99")
	for _, r := range rows {
		fmt.Fprintf(out, "%-28s %9d %10s %10s %10s\n", r.route, r.snap.Count,
			fmtSecs(r.snap.Quantile(0.50)), fmtSecs(r.snap.Quantile(0.95)), fmtSecs(r.snap.Quantile(0.99)))
	}

	// The daemon's own view: scrape /metrics and hold it to the strict
	// parser — a malformed exposition fails the soak run.
	var breaches []string
	resp, err := s.client.Get(s.base + "/metrics")
	if err != nil {
		return fmt.Errorf("final /metrics scrape: %w", err)
	}
	defer resp.Body.Close() //nolint:errcheck // read to EOF below
	exp, err := obsv.ParseText(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return fmt.Errorf("final /metrics page is malformed: %w", err)
	}
	if hf := exp.Family(obsv.MetricRequestDuration); hf == nil {
		return fmt.Errorf("final /metrics page lacks %s", obsv.MetricRequestDuration)
	} else if p99s, err := hf.QuantileBy("route", 0.99); err == nil && len(p99s) > 0 {
		routes := make([]string, 0, len(p99s))
		for r := range p99s {
			routes = append(routes, r)
		}
		sort.Strings(routes)
		fmt.Fprintf(out, "\nserver-side p99 since last daemon start:\n")
		for _, r := range routes {
			fmt.Fprintf(out, "%-28s %10s\n", r, fmtSecs(p99s[r]))
		}
	}
	gauge := func(name string) (float64, bool) {
		f := exp.Family(name)
		if f == nil || len(f.Samples) == 0 {
			return 0, false
		}
		return f.Samples[0].Value, true
	}
	goro, _ := gauge(obsv.MetricGoroutines)
	rss, _ := gauge("fusiond_process_rss_bytes")
	uptime, _ := gauge("fusiond_process_uptime_seconds")
	fmt.Fprintf(out, "\ndaemon: goroutines=%.0f rss=%.1fMiB uptime=%.1fs\n", goro, rss/(1<<20), uptime)

	if s.cfg.maxP99 > 0 {
		for _, r := range rows {
			if p99 := r.snap.Quantile(0.99); p99 > s.cfg.maxP99.Seconds() {
				breaches = append(breaches, fmt.Sprintf("route %s p99 %s > ceiling %s", r.route, fmtSecs(p99), s.cfg.maxP99))
			}
		}
	}
	if s.cfg.maxGoro > 0 && goro > float64(s.cfg.maxGoro) {
		breaches = append(breaches, fmt.Sprintf("goroutines %.0f > ceiling %d", goro, s.cfg.maxGoro))
	}
	if s.cfg.maxRSSMB > 0 && rss > float64(s.cfg.maxRSSMB)*(1<<20) {
		breaches = append(breaches, fmt.Sprintf("rss %.1fMiB > ceiling %dMiB", rss/(1<<20), s.cfg.maxRSSMB))
	}
	if len(breaches) > 0 {
		return fmt.Errorf("ceilings breached: %s", strings.Join(breaches, "; "))
	}
	fmt.Fprintln(out, "soak: all ceilings respected")
	return nil
}

func fmtSecs(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}

// --- spawned daemon --------------------------------------------------------

// daemon is one spawned fusiond process. start may be called again
// after kill9 — same binary, same args, same data dir — which is
// exactly the crash-recovery shape the harness tests.
type daemon struct {
	path string
	args []string
	url  string

	mu  sync.Mutex
	cmd *exec.Cmd
	log *prefixBuffer
}

func (d *daemon) start() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.log = &prefixBuffer{}
	cmd := exec.Command(d.path, d.args...)
	cmd.Stdout = d.log
	cmd.Stderr = d.log
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", d.path, err)
	}
	d.cmd = cmd
	return nil
}

// kill9 delivers SIGKILL — no drain, no goodbye — and reaps the
// process.
func (d *daemon) kill9() error {
	d.mu.Lock()
	cmd := d.cmd
	d.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("daemon not running")
	}
	if err := cmd.Process.Kill(); err != nil {
		return err
	}
	cmd.Wait() //nolint:errcheck // killed: the error is the point
	return nil
}

// stop shuts the daemon down politely (SIGTERM, bounded wait), falling
// back to SIGKILL.
func (d *daemon) stop(out io.Writer) {
	d.mu.Lock()
	cmd := d.cmd
	d.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return // already gone
	}
	done := make(chan struct{})
	go func() { cmd.Wait(); close(done) }() //nolint:errcheck // exit status irrelevant on the way out
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		fmt.Fprintln(out, "soak: daemon ignored SIGTERM; killing")
		cmd.Process.Kill() //nolint:errcheck // already escalating
		<-done
	}
}

// tail returns the daemon's recent combined output for error messages.
func (d *daemon) tail() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.log == nil {
		return ""
	}
	return d.log.tail()
}

// prefixBuffer keeps the last few KiB of process output under a lock.
type prefixBuffer struct {
	mu  sync.Mutex
	buf []byte
}

func (b *prefixBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, p...)
	if len(b.buf) > 8<<10 {
		b.buf = b.buf[len(b.buf)-8<<10:]
	}
	return len(p), nil
}

func (b *prefixBuffer) tail() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return string(b.buf)
}

// freeAddr reserves an ephemeral localhost port and releases it for the
// daemon to bind.
func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close() //nolint:errcheck // releasing the reservation
	return addr, nil
}
