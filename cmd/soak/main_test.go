package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/server"
)

// inProcessDaemon serves a real server.Server over httptest — the
// -addr path without process management.
func inProcessDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := server.New(server.Options{FusionCache: 64, AccessLog: 128})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close() //nolint:errcheck // test teardown
	})
	return ts
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{},                                  // neither target
		{"-addr", "x", "-fusiond", "y"},     // both targets
		{"-addr", "x", "-kill"},             // kill needs a spawned daemon
		{"-addr", "x", "-replicate"},        // so does replicate
		{"-addr", "x", "-concurrency", "0"}, // no workers
		{"-addr", "x", "-duration", "0s"},   // no window
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v: expected a flag error", args)
		}
	}
}

// TestSoakAgainstLiveDaemon runs the mixed workload briefly against an
// in-process daemon and checks the report covers the route mix.
func TestSoakAgainstLiveDaemon(t *testing.T) {
	ts := inProcessDaemon(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-addr", ts.URL, "-duration", "2s", "-concurrency", "4",
		"-max-goroutines", "10000",
	}, &out)
	if err != nil {
		t.Fatalf("soak run failed: %v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{
		"/v1/generate", "/v1/clusters", "/v1/clusters/{id}/events",
		"/v1/clusters/{id}/recover", "/healthz",
		"server-side p99", "goroutines=", "all ceilings respected",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report lacks %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "0 2xx") {
		t.Fatalf("no successful requests:\n%s", report)
	}
}

// TestSoakCeilingBreach: an absurd p99 ceiling must fail the run.
func TestSoakCeilingBreach(t *testing.T) {
	ts := inProcessDaemon(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-addr", ts.URL, "-duration", "1s", "-concurrency", "2", "-max-p99", "1ns",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "ceilings breached") {
		t.Fatalf("err = %v, want ceiling breach", err)
	}
}

// TestSoakSpawnKillRestart is the full harness: soak builds and spawns
// a real fusiond, kills it with SIGKILL at half duration, restarts it,
// and the run still completes with successful traffic on both sides of
// the crash.
func TestSoakSpawnKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills a real daemon")
	}
	bin := filepath.Join(t.TempDir(), "fusiond")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/fusiond")
	build.Env = os.Environ()
	if outb, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building fusiond: %v\n%s", err, outb)
	}
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-fusiond", bin, "-duration", "4s", "-concurrency", "4", "-kill",
		"-max-goroutines", "10000",
	}, &out)
	if err != nil {
		t.Fatalf("spawn+kill soak failed: %v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"kill -9 at half duration", "daemon restarted and healthy", "all ceilings respected"} {
		if !strings.Contains(report, want) {
			t.Errorf("report lacks %q:\n%s", want, report)
		}
	}
}
