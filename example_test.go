package fusion_test

import (
	"fmt"
	"log"

	fusion "repro"
)

// ExampleGenerate reproduces the paper's motivating example: one 3-state
// backup machine makes two mod-3 counters tolerate a crash fault.
func ExampleGenerate() {
	a, _ := fusion.ZooMachine("0-Counter")
	b, _ := fusion.ZooMachine("1-Counter")
	sys, err := fusion.NewSystem([]*fusion.Machine{a, b})
	if err != nil {
		log.Fatal(err)
	}
	backups, err := fusion.Generate(sys, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("backups:", len(backups))
	fmt.Println("states:", backups[0].NumBlocks())
	// Output:
	// backups: 1
	// states: 3
}

// ExampleRecover shows Algorithm 3: machine A crashed, B and the fusion
// machine vote on the top state.
func ExampleRecover() {
	a, _ := fusion.ZooMachine("0-Counter")
	b, _ := fusion.ZooMachine("1-Counter")
	sys, _ := fusion.NewSystem([]*fusion.Machine{a, b})
	backups, _ := fusion.Generate(sys, 1)
	fms, _ := sys.FusionMachines(backups, "F")

	events := []string{"0", "0", "1"} // n0 = 2, n1 = 1
	rb, _ := sys.ReportFor(1, b.Run(events))
	rf := fusion.Report{Machine: "F1", TopStates: backups[0].Blocks()[fms[0].Run(events)]}

	res, err := fusion.Recover(sys.N(), []fusion.Report{rb, rf})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("A's recovered state:", sys.Product.Proj[res.TopState][0])
	// Output:
	// A's recovered state: 2
}

// ExampleNewCluster drives the simulated deployment end to end.
func ExampleNewCluster() {
	a, _ := fusion.ZooMachine("0-Counter")
	b, _ := fusion.ZooMachine("1-Counter")
	cluster, _ := fusion.NewCluster([]*fusion.Machine{a, b}, 1, 42)
	cluster.ApplyAll([]string{"0", "1", "0"})
	cluster.Inject(fusion.Fault{Server: "0-Counter", Kind: fusion.Crash})
	out, _ := cluster.Recover()
	fmt.Println("restored:", out.Restored)
	fmt.Println("consistent:", len(cluster.Verify()) == 0)
	// Output:
	// restored: [0-Counter]
	// consistent: true
}

// ExampleNewBuilder defines a machine incrementally and prints its spec.
func ExampleNewBuilder() {
	m := fusion.NewBuilder("door").Initial("closed").
		Transition("closed", "open", "opened").
		Transition("opened", "close", "closed").
		MustBuild(true)
	fmt.Print(fusion.FormatSpec([]*fusion.Machine{m}))
	// Output:
	// machine door
	// initial closed
	// strict
	// closed open -> opened
	// closed close -> closed
	// opened open -> opened
	// opened close -> closed
}

// ExampleSystem_FusionExists checks Theorem 4 before generating anything.
func ExampleSystem_FusionExists() {
	a, _ := fusion.ZooMachine("A")
	b, _ := fusion.ZooMachine("B")
	sys, _ := fusion.NewSystem([]*fusion.Machine{a, b})
	// dmin({A,B}) = 1: a (2,1)-fusion cannot exist (the paper's worked
	// example), a (2,2)-fusion can.
	fmt.Println(sys.FusionExists(2, 1), sys.FusionExists(2, 2))
	// Output:
	// false true
}
