package fusion_test

import (
	"strings"
	"testing"

	fusion "repro"
)

// TestFacadeEndToEnd drives the whole public API: build machines, make a
// system, generate a fusion, run everything, crash a machine, recover.
func TestFacadeEndToEnd(t *testing.T) {
	a, err := fusion.NewMachine("A", []string{"a0", "a1", "a2"}, []string{"0"},
		[][]int{{1}, {2}, {0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fusion.NewMachine("B", []string{"b0", "b1", "b2"}, []string{"1"},
		[][]int{{1}, {2}, {0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := fusion.NewSystem([]*fusion.Machine{a, b})
	if err != nil {
		t.Fatal(err)
	}
	F, err := fusion.Generate(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(F) != 1 || F[0].NumBlocks() != 3 {
		t.Fatalf("fusion = %v", F)
	}
	fms, err := sys.FusionMachines(F, "F")
	if err != nil {
		t.Fatal(err)
	}

	events := []string{"0", "1", "0", "0"}
	// B crashes; A and F1 report.
	ra, err := sys.ReportFor(0, a.Run(events))
	if err != nil {
		t.Fatal(err)
	}
	rf := fusion.Report{Machine: "F1", TopStates: F[0].Blocks()[fms[0].Run(events)]}
	res, err := fusion.Recover(sys.N(), []fusion.Report{ra, rf})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Product.Proj[res.TopState][1]; got != b.Run(events) {
		t.Fatalf("recovered B state %d, want %d", got, b.Run(events))
	}
}

func TestFacadeBuilderAndSpec(t *testing.T) {
	m := fusion.NewBuilder("light").Initial("red").
		Transition("red", "go", "green").
		Transition("green", "stop", "red").
		MustBuild(true)
	out := fusion.FormatSpec([]*fusion.Machine{m})
	back, err := fusion.ParseSpec(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].NumStates() != 2 {
		t.Fatalf("round trip: %v", back)
	}
}

func TestFacadeZoo(t *testing.T) {
	names := fusion.ZooNames()
	if len(names) < 10 {
		t.Fatalf("zoo too small: %v", names)
	}
	m, err := fusion.ZooMachine("TCP")
	if err != nil || m.NumStates() != 11 {
		t.Fatalf("TCP: %v %v", m, err)
	}
}

func TestFacadeCluster(t *testing.T) {
	a, _ := fusion.ZooMachine("0-Counter")
	b, _ := fusion.ZooMachine("1-Counter")
	c, err := fusion.NewCluster([]*fusion.Machine{a, b}, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	c.ApplyAll([]string{"0", "1", "1"})
	if err := c.Inject(fusion.Fault{Server: "0-Counter", Kind: fusion.Crash}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	if bad := c.Verify(); len(bad) != 0 {
		t.Fatalf("divergent: %v", bad)
	}
}

func TestFacadeLatticeAndGraph(t *testing.T) {
	a, _ := fusion.ZooMachine("A")
	b, _ := fusion.ZooMachine("B")
	sys, err := fusion.NewSystem([]*fusion.Machine{a, b})
	if err != nil {
		t.Fatal(err)
	}
	l, err := fusion.BuildLattice(sys.Top, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Contains(sys.Parts[0]) {
		t.Error("lattice missing machine A")
	}
	g := fusion.BuildFaultGraph(sys.N(), sys.Parts)
	if g.Dmin() != 1 {
		t.Errorf("dmin = %d", g.Dmin())
	}
	if fusion.ReplicationStateSpace(sys.Machines, 2) != 81 {
		t.Error("replication metric wrong")
	}
	p, err := fusion.ReachableCrossProduct(sys.Machines)
	if err != nil || p.Top.NumStates() != sys.N() {
		t.Error("cross product facade broken")
	}
	sets, err := fusion.SetRepresentation(sys.Top, a)
	if err != nil || len(sets) != 3 {
		t.Error("set representation facade broken")
	}
	if _, err := fusion.GenerateWithOptions(sys, 1, fusion.GenerateOptions{MaxMachines: 5}); err != nil {
		t.Error(err)
	}
}
