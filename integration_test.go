package fusion_test

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	fusion "repro"
	"repro/internal/core"
	"repro/internal/machines"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestIntegrationMatrix drives every subsystem together across the paper
// suites: generate a fusion, serialize the backups through the .fsm format
// and back, deploy on the simulated cluster, checkpoint, run mixed
// workloads with crash and Byzantine faults via both recovery paths
// (direct and message protocol), detect injected corruption, and verify
// against the oracle at every step.
func TestIntegrationMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("integration matrix skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(2009))
	suites := []machines.Suite{
		{Name: "counters", Machines: []string{"0-Counter", "1-Counter"}, F: 2},
		{Name: "bits", Machines: []string{"EvenParity", "OddParity", "ShiftRegister"}, F: 2},
		{Name: "figs", Machines: []string{"A", "B"}, F: 2},
	}
	for _, suite := range suites {
		suite := suite
		t.Run(suite.Name, func(t *testing.T) {
			ms, err := machines.SuiteMachines(suite)
			if err != nil {
				t.Fatal(err)
			}

			// 1. Generate and spec-round-trip the backups.
			sys, err := fusion.NewSystem(ms)
			if err != nil {
				t.Fatal(err)
			}
			F, err := fusion.Generate(sys, suite.F)
			if err != nil {
				t.Fatal(err)
			}
			fms, err := sys.FusionMachines(F, "F")
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := fusion.ParseSpec(strings.NewReader(fusion.FormatSpec(fms)))
			if err != nil {
				t.Fatalf("fusion machines do not survive the spec format: %v", err)
			}
			for i := range fms {
				back, err := sys.PartitionOf(parsed[i])
				if err != nil {
					t.Fatalf("re-parsed fusion machine %d is not ≤ ⊤: %v", i, err)
				}
				if !back.Equal(F[i]) {
					t.Fatalf("fusion machine %d changed partition through the spec format", i)
				}
			}

			// 2. Deploy, checkpoint, and run mixed fault rounds.
			cluster, err := sim.NewCluster(ms, suite.F, rng.Int63())
			if err != nil {
				t.Fatal(err)
			}
			gen := trace.NewGenerator(rng.Int63(), ms)
			journal := sim.NewJournal(cluster.Snapshot())

			for round := 0; round < 6; round++ {
				events := gen.Take(10 + rng.Intn(30))
				cluster.ApplyAllJournaled(journal, events)

				names := cluster.ServerNames()
				victim := names[rng.Intn(len(names))]
				kind := trace.Crash
				if round%2 == 1 {
					kind = trace.Byzantine
				}
				if err := cluster.Inject(trace.Fault{Server: victim, Kind: kind}); err != nil {
					t.Fatal(err)
				}

				// 3. Detection sees Byzantine corruption before recovery.
				if kind == trace.Byzantine {
					reports := collectReports(t, cluster)
					det, err := fusion.DetectFaults(cluster.System().N(), reports)
					if err != nil {
						t.Fatal(err)
					}
					if !det.Faulty {
						t.Fatalf("round %d: corruption of %s undetected", round, victim)
					}
				}

				// 4. Recover — alternate direct and protocol paths.
				if round%2 == 0 {
					if _, err := cluster.Recover(); err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
				} else {
					if _, err := cluster.RecoverViaProtocol(2 * time.Second); err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
				}
				if bad := cluster.Verify(); len(bad) != 0 {
					t.Fatalf("round %d: divergent after recovery: %v", round, bad)
				}

				// 5. Replay recovery agrees with the live state.
				replayed, err := cluster.ReplayRecover(journal, names[0])
				if err != nil {
					t.Fatal(err)
				}
				if got := cluster.States()[0]; got != replayed {
					t.Fatalf("round %d: journal replay %d != live state %d", round, replayed, got)
				}
			}

			// 6. Metrics reflect the activity.
			m := cluster.Metrics().Snapshot()
			if m.Recoveries != 6 || m.FaultsInjected != 6 {
				t.Errorf("metrics: %+v", m)
			}
		})
	}
}

// collectReports gathers reports from all live servers of the cluster for
// detection, including lying ones (that is the point).
func collectReports(t *testing.T, cluster *sim.Cluster) []fusion.Report {
	t.Helper()
	sys := cluster.System()
	F := cluster.Fusion()
	names := cluster.ServerNames()
	states := cluster.States()
	var reports []fusion.Report
	for i, name := range names {
		if states[i] < 0 {
			continue // crashed
		}
		var r core.Report
		var err error
		if i < len(sys.Machines) {
			r, err = sys.ReportFor(i, states[i])
		} else {
			r, err = core.ReportForPartition(name, F[i-len(sys.Machines)], states[i])
		}
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, r)
	}
	return reports
}
