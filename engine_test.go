package fusion_test

import (
	"context"
	"errors"
	"testing"
	"time"

	fusion "repro"
	"repro/internal/core"
)

// TestEngineGenerateMatchesDefault: worker count is a throughput knob,
// never a semantic one — engines of every size return the exact fusion
// the default path returns.
func TestEngineGenerateMatchesDefault(t *testing.T) {
	ms := []*fusion.Machine{mustZoo(t, "MESI"), mustZoo(t, "1-Counter"), mustZoo(t, "0-Counter")}
	sys, err := fusion.NewSystem(ms)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fusion.Generate(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 5} {
		e := fusion.NewEngine(fusion.EngineOptions{Workers: workers})
		if e.Workers() != workers {
			t.Fatalf("engine has %d workers, want %d", e.Workers(), workers)
		}
		got, err := e.Generate(sys, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d machines, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("workers=%d: machine %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestEngineClusterReproducible: the same seed yields the same simulation
// outcome on engines of different sizes.
func TestEngineClusterReproducible(t *testing.T) {
	ms := []*fusion.Machine{mustZoo(t, "0-Counter"), mustZoo(t, "1-Counter")}
	events := []string{"e0", "e1", "e0", "e0", "e1"}
	var first []int
	for _, workers := range []int{1, 3} {
		c, err := fusion.NewEngine(fusion.EngineOptions{Workers: workers}).NewCluster(ms, 1, 42)
		if err != nil {
			t.Fatal(err)
		}
		c.ApplyAll(events)
		states := c.States()
		if first == nil {
			first = states
			continue
		}
		for i := range states {
			if states[i] != first[i] {
				t.Fatalf("workers=%d: server %d state %d, want %d", workers, i, states[i], first[i])
			}
		}
	}
}

// TestDefaultEngineShared pins the aliasing rule down explicitly: a fully
// zero options value returns the process-wide engine (a convenience for
// "just run it" callers), while Dedicated or any admission limit yields a
// distinct engine — the escape hatch for callers that want isolation with
// default sizing.
func TestDefaultEngineShared(t *testing.T) {
	if fusion.NewEngine(fusion.EngineOptions{}) != fusion.DefaultEngine() {
		t.Fatal("NewEngine{} should return the default engine")
	}
	if fusion.DefaultEngine().Workers() < 1 {
		t.Fatal("default engine has no workers")
	}
	ded := fusion.NewEngine(fusion.EngineOptions{Dedicated: true})
	if ded == fusion.DefaultEngine() {
		t.Fatal("Dedicated engine aliases the default engine")
	}
	if ded.Workers() < 1 {
		t.Fatal("dedicated engine with Workers=0 should follow the shared pool's GOMAXPROCS sizing")
	}
	ded.Close()
	// Admission limits also force a distinct engine: per-tenant admission
	// state must never be shared through the aliasing shortcut.
	adm := fusion.NewEngine(fusion.EngineOptions{MaxInFlight: 1})
	if adm == fusion.DefaultEngine() {
		t.Fatal("engine with admission limits aliases the default engine")
	}
	adm.Close()
	// Even a queue option whose MaxInFlight is absent (and therefore
	// inert) yields a distinct engine rather than silently handing back
	// shared state with the option dropped.
	q := fusion.NewEngine(fusion.EngineOptions{QueueDepth: 8})
	if q == fusion.DefaultEngine() {
		t.Fatal("engine with queue options aliases the default engine")
	}
	q.Close()
}

// TestEngineAdmission drives the semaphore+queue state machine
// deterministically: maxInFlight slots admit immediately, queueDepth more
// wait in FIFO order, the next caller is shed with ErrQueueFull, and
// Release hands slots to waiters in arrival order.
func TestEngineAdmission(t *testing.T) {
	e := fusion.NewEngine(fusion.EngineOptions{Workers: 1, MaxInFlight: 2, QueueDepth: 2})
	for i := 0; i < 2; i++ {
		if err := e.Acquire(context.Background()); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if got := e.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}

	// Two callers fit in the queue; their grant order must match arrival.
	type result struct {
		id  int
		err error
	}
	grants := make(chan result, 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() { grants <- result{i, e.Acquire(context.Background())} }()
		// Wait until this caller is visibly queued before starting the
		// next, so arrival order is deterministic.
		waitFor(t, func() bool { return e.Queued() == i+1 })
	}

	// Queue is full: the fifth caller is shed immediately.
	if err := e.Acquire(context.Background()); !errors.Is(err, fusion.ErrQueueFull) {
		t.Fatalf("over-queue acquire = %v, want ErrQueueFull", err)
	}

	// Releases grant the queued callers in FIFO order.
	e.Release()
	first := <-grants
	if first.err != nil || first.id != 0 {
		t.Fatalf("first grant = {%d %v}, want caller 0", first.id, first.err)
	}
	e.Release()
	second := <-grants
	if second.err != nil || second.id != 1 {
		t.Fatalf("second grant = {%d %v}, want caller 1", second.id, second.err)
	}

	// Drain and shut down.
	e.Release()
	e.Release()
	done := make(chan struct{})
	go func() { e.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return with zero in-flight")
	}
	if err := e.Acquire(context.Background()); !errors.Is(err, fusion.ErrEngineClosed) {
		t.Fatalf("acquire after Close = %v, want ErrEngineClosed", err)
	}
}

// TestEngineAdmissionQueueTimeout: a queued caller gives up with
// ErrQueueTimeout once QueueTimeout elapses, and the abandoned queue slot
// becomes available again.
func TestEngineAdmissionQueueTimeout(t *testing.T) {
	e := fusion.NewEngine(fusion.EngineOptions{
		Workers: 1, MaxInFlight: 1, QueueDepth: 1, QueueTimeout: 20 * time.Millisecond,
	})
	defer e.Close()
	if err := e.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Acquire(nil); !errors.Is(err, fusion.ErrQueueTimeout) {
		t.Fatalf("queued acquire = %v, want ErrQueueTimeout", err)
	}
	if got := e.Queued(); got != 0 {
		t.Fatalf("Queued = %d after timeout, want 0", got)
	}
	e.Release()
}

// TestEngineAdmissionContextCancel: a queued caller unblocks with the
// context error when its request is cancelled.
func TestEngineAdmissionContextCancel(t *testing.T) {
	e := fusion.NewEngine(fusion.EngineOptions{Workers: 1, MaxInFlight: 1, QueueDepth: 1})
	defer e.Close()
	if err := e.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- e.Acquire(ctx) }()
	waitFor(t, func() bool { return e.Queued() == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
	e.Release()
}

// TestEngineCloseDrains: Close blocks until in-flight work Releases,
// fails queued waiters with ErrEngineClosed, and is idempotent.
func TestEngineCloseDrains(t *testing.T) {
	e := fusion.NewEngine(fusion.EngineOptions{Workers: 2, MaxInFlight: 1, QueueDepth: 4})
	if err := e.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	queuedErr := make(chan error, 1)
	go func() { queuedErr <- e.Acquire(context.Background()) }()
	waitFor(t, func() bool { return e.Queued() == 1 })

	closed := make(chan struct{})
	go func() { e.Close(); close(closed) }()
	if err := <-queuedErr; !errors.Is(err, fusion.ErrEngineClosed) {
		t.Fatalf("queued acquire during Close = %v, want ErrEngineClosed", err)
	}
	select {
	case <-closed:
		t.Fatal("Close returned while a request was still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	e.Release()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the last Release")
	}
	e.Close() // idempotent
}

// TestEngineIsLocallyMinimalFusion routes the lower-cover verification
// through a dedicated engine's pool and checks it agrees with the
// default-pool path on a generated fusion.
func TestEngineIsLocallyMinimalFusion(t *testing.T) {
	e := fusion.NewEngine(fusion.EngineOptions{Workers: 2})
	defer e.Close()
	sys, err := fusion.NewSystem([]*fusion.Machine{mustZoo(t, "0-Counter"), mustZoo(t, "1-Counter")})
	if err != nil {
		t.Fatal(err)
	}
	F, err := e.Generate(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	minimal, err := e.IsLocallyMinimalFusion(sys, F, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !minimal {
		t.Fatal("generated fusion not locally minimal on the engine pool")
	}
	ref, err := core.IsLocallyMinimalFusion(sys, F, 1)
	if err != nil {
		t.Fatal(err)
	}
	if minimal != ref {
		t.Fatalf("engine-pool verdict %v, default-pool verdict %v", minimal, ref)
	}
}

// waitFor polls cond until it holds or a generous deadline expires.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

func mustZoo(t *testing.T, name string) *fusion.Machine {
	t.Helper()
	m, err := fusion.ZooMachine(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
