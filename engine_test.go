package fusion_test

import (
	"testing"

	fusion "repro"
)

// TestEngineGenerateMatchesDefault: worker count is a throughput knob,
// never a semantic one — engines of every size return the exact fusion
// the default path returns.
func TestEngineGenerateMatchesDefault(t *testing.T) {
	ms := []*fusion.Machine{mustZoo(t, "MESI"), mustZoo(t, "1-Counter"), mustZoo(t, "0-Counter")}
	sys, err := fusion.NewSystem(ms)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fusion.Generate(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 5} {
		e := fusion.NewEngine(fusion.EngineOptions{Workers: workers})
		if e.Workers() != workers {
			t.Fatalf("engine has %d workers, want %d", e.Workers(), workers)
		}
		got, err := e.Generate(sys, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d machines, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("workers=%d: machine %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestEngineClusterReproducible: the same seed yields the same simulation
// outcome on engines of different sizes.
func TestEngineClusterReproducible(t *testing.T) {
	ms := []*fusion.Machine{mustZoo(t, "0-Counter"), mustZoo(t, "1-Counter")}
	events := []string{"e0", "e1", "e0", "e0", "e1"}
	var first []int
	for _, workers := range []int{1, 3} {
		c, err := fusion.NewEngine(fusion.EngineOptions{Workers: workers}).NewCluster(ms, 1, 42)
		if err != nil {
			t.Fatal(err)
		}
		c.ApplyAll(events)
		states := c.States()
		if first == nil {
			first = states
			continue
		}
		for i := range states {
			if states[i] != first[i] {
				t.Fatalf("workers=%d: server %d state %d, want %d", workers, i, states[i], first[i])
			}
		}
	}
}

// TestDefaultEngineShared: Workers<=0 aliases the process-wide engine.
func TestDefaultEngineShared(t *testing.T) {
	if fusion.NewEngine(fusion.EngineOptions{}) != fusion.DefaultEngine() {
		t.Fatal("NewEngine{Workers:0} should return the default engine")
	}
	if fusion.DefaultEngine().Workers() < 1 {
		t.Fatal("default engine has no workers")
	}
}

func mustZoo(t *testing.T, name string) *fusion.Machine {
	t.Helper()
	m, err := fusion.ZooMachine(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
