// Benchmarks regenerating every table and figure of the paper's evaluation
// (DESIGN.md §4 maps experiment ids to these targets). Run:
//
//	go test -bench=. -benchmem
//
// The Table1 rows measure full Algorithm 2 generation on the paper's five
// machine suites; the Fig benches measure the constituent operations; the
// Ablation benches quantify the design choices called out in DESIGN.md.
package fusion_test

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	fusion "repro"
	"repro/internal/core"
	"repro/internal/dfsm"
	"repro/internal/experiments"
	"repro/internal/fcache"
	"repro/internal/lattice"
	"repro/internal/machines"
	"repro/internal/partition"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/trace"
)

// --- Figures -------------------------------------------------------------

// BenchmarkFig1ModCounters measures fusion generation for the motivating
// example: two mod-3 counters, f = 1 (experiment fig1).
func BenchmarkFig1ModCounters(b *testing.B) {
	sys := mustSystem(b, "0-Counter", "1-Counter")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		F, err := fusion.Generate(sys, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(F) != 1 {
			b.Fatal("wrong fusion")
		}
	}
}

// BenchmarkFig2CrossProduct measures reachable-cross-product construction
// on the Fig. 2 machines (experiment fig2).
func BenchmarkFig2CrossProduct(b *testing.B) {
	ms := mustMachines(b, "A", "B")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := fusion.ReachableCrossProduct(ms)
		if err != nil || p.Top.NumStates() != 4 {
			b.Fatal("bad product")
		}
	}
}

// BenchmarkFig3Lattice measures full closed-partition lattice enumeration
// of the Fig. 2 top (experiment fig3).
func BenchmarkFig3Lattice(b *testing.B) {
	sys := mustSystem(b, "A", "B")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := lattice.Build(sys.Top, 0)
		if err != nil || l.Size() < 5 {
			b.Fatal("bad lattice")
		}
	}
}

// BenchmarkFig4FaultGraphs measures fault-graph construction and dmin over
// the Fig. 2 system (experiment fig4).
func BenchmarkFig4FaultGraphs(b *testing.B) {
	sys := mustSystem(b, "A", "B")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := core.BuildFaultGraph(sys.N(), sys.Parts)
		if g.Dmin() != 1 {
			b.Fatal("bad dmin")
		}
	}
}

// BenchmarkFig5SetRepresentation measures Algorithm 1 on the TCP machine
// against the MESI+TCP+A+B top (experiment fig5 at realistic scale).
func BenchmarkFig5SetRepresentation(b *testing.B) {
	sys := mustSystem(b, "MESI", "TCP", "A", "B")
	tcp := sys.Machines[1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SetRepresentation(sys.Top, tcp); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 1 -------------------------------------------------------------

func benchTableRow(b *testing.B, suite machines.Suite) {
	benchTableRowOpts(b, suite, core.GenerateOptions{})
}

func benchTableRowOpts(b *testing.B, suite machines.Suite, opts core.GenerateOptions) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunTableRowWithOptions(suite, opts)
		if err != nil {
			b.Fatal(err)
		}
		if row.Fusion >= row.Replication {
			b.Fatalf("%s: fusion %d not smaller than replication %d", suite.Name, row.Fusion, row.Replication)
		}
	}
}

// BenchmarkTable1Row1 .. Row5 regenerate the five rows of the results
// table: system construction + Algorithm 2 + state-space accounting
// (experiments tab1.1–tab1.5).
func BenchmarkTable1Row1(b *testing.B) { benchTableRow(b, machines.PaperSuites()[0]) }
func BenchmarkTable1Row2(b *testing.B) { benchTableRow(b, machines.PaperSuites()[1]) }
func BenchmarkTable1Row3(b *testing.B) { benchTableRow(b, machines.PaperSuites()[2]) }
func BenchmarkTable1Row4(b *testing.B) { benchTableRow(b, machines.PaperSuites()[3]) }
func BenchmarkTable1Row5(b *testing.B) { benchTableRow(b, machines.PaperSuites()[4]) }

// BenchmarkTable1Row1NoIncremental is Row 1 with the incremental descent
// engine off (cold levels, no ⊤-closure cache) — the tracked ablation
// that keeps the cross-level-reuse win measurable.
func BenchmarkTable1Row1NoIncremental(b *testing.B) {
	benchTableRowOpts(b, machines.PaperSuites()[0], core.GenerateOptions{NoIncremental: true})
}

// BenchmarkTable1Row4LevelSharing isolates the within-level
// pair-implication memo on the heaviest row (176-state top, one descent
// whose level 0 runs 15,400 guarded closures): "shared" is the default
// path, "unshared" the NoPairMemo ablation with the cross-level engine
// still on, so the pair is the memo's own win.
func BenchmarkTable1Row4LevelSharing(b *testing.B) {
	b.Run("shared", func(b *testing.B) {
		benchTableRowOpts(b, machines.PaperSuites()[3], core.GenerateOptions{})
	})
	b.Run("unshared", func(b *testing.B) {
		benchTableRowOpts(b, machines.PaperSuites()[3], core.GenerateOptions{NoPairMemo: true})
	})
}

// --- Sensor network (introduction / conclusion) ---------------------------

// BenchmarkSensorNetworkFusion measures fusion-based recovery of crashed
// sensors in the 100-counter network (experiment sensor).
func BenchmarkSensorNetworkFusion(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Sensor(100, 3, 1, int64(i))
		if err != nil || !r.RecoveryOK {
			b.Fatalf("sensor recovery failed: %v", err)
		}
	}
}

// BenchmarkSensorNetworkScale sweeps the network size (shape: linear in n).
func BenchmarkSensorNetworkScale(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := experiments.Sensor(n, 5, 2, int64(i))
				if err != nil || !r.RecoveryOK {
					b.Fatal("recovery failed")
				}
			}
		})
	}
}

// --- Recovery (Section 5.2) ----------------------------------------------

func recoveryCluster(b *testing.B, f int) *sim.Cluster {
	b.Helper()
	ms := mustMachines(b, "MESI", "TCP", "A", "B")
	c, err := sim.NewCluster(ms, f, 7)
	if err != nil {
		b.Fatal(err)
	}
	gen := trace.NewGenerator(11, ms)
	c.ApplyAll(gen.Take(128))
	return c
}

// BenchmarkRecoverCrash measures one crash-recovery round (Algorithm 3 plus
// state restoration) on the MESI+TCP+A+B cluster (experiment recov).
func BenchmarkRecoverCrash(b *testing.B) {
	c := recoveryCluster(b, 2)
	names := c.ServerNames()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inject(trace.Fault{Server: names[i%len(names)], Kind: trace.Crash})
		if _, err := c.Recover(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoverByzantine measures one Byzantine round with liar
// identification (experiment recov).
func BenchmarkRecoverByzantine(b *testing.B) {
	c := recoveryCluster(b, 2)
	names := c.ServerNames()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inject(trace.Fault{Server: names[i%len(names)], Kind: trace.Byzantine})
		if _, err := c.Recover(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoverAlgorithm3 isolates the vote itself at |top| = 176.
func BenchmarkRecoverAlgorithm3(b *testing.B) {
	sys := mustSystem(b, "MESI", "TCP", "A", "B")
	var reports []core.Report
	for i := range sys.Machines {
		r, err := sys.ReportFor(i, sys.Machines[i].Initial())
		if err != nil {
			b.Fatal(err)
		}
		reports = append(reports, r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Recover(sys.N(), reports); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md) -------------------------------------------------

// BenchmarkAblationIncrementalDmin compares Algorithm 2 with incremental
// fault-graph updates (the default) against full recomputation per outer
// iteration (experiment abl1).
func BenchmarkAblationIncrementalDmin(b *testing.B) {
	sys := mustSystem(b, "EvenParity", "OddParity", "Toggle", "PatternGenerator")
	for _, mode := range []struct {
		name      string
		recompute bool
	}{{"incremental", false}, {"recompute", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.GenerateFusion(sys, 3, core.GenerateOptions{Recompute: mode.recompute})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationExhaustiveSearch compares the greedy lattice descent of
// Algorithm 2 against the exponential exhaustive minimal-fusion search of
// the authors' earlier work (experiment abl2; small top only).
func BenchmarkAblationExhaustiveSearch(b *testing.B) {
	sys := mustSystem(b, "0-Counter", "1-Counter")
	g := core.BuildFaultGraph(sys.N(), sys.Parts)
	required := g.WeakestEdges()
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := core.GreedyDescent(sys, required)
			if m.NumBlocks() != 3 {
				b.Fatal("bad descent")
			}
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			best, err := core.ExhaustiveMinimalFusions(sys, 1<<20)
			if err != nil || best[0].NumBlocks() != 3 {
				b.Fatal("bad exhaustive result")
			}
		}
	})
}

// BenchmarkAblationGuardedClosure compares the abort-early guarded closure
// candidate evaluation against filter-after-closure on a paper suite
// (experiment abl1 family).
func BenchmarkAblationGuardedClosure(b *testing.B) {
	sys := mustSystem(b, "MESI", "1-Counter", "0-Counter", "ShiftRegister")
	for _, mode := range []struct {
		name     string
		disabled bool
	}{{"guarded", false}, {"unguarded", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.GenerateFusion(sys, 2, core.GenerateOptions{NoGuardedClosure: mode.disabled})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLowerCoverVsMergeClosures quantifies the fast-path decision in
// GenerateFusion: merge closures without the maximality filter.
func BenchmarkLowerCoverVsMergeClosures(b *testing.B) {
	sys := mustSystem(b, "0-Counter", "1-Counter")
	top := partition.Singletons(sys.N())
	b.Run("mergeClosures", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := partition.MergeClosures(sys.Top, top, nil); len(got) == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("lowerCover", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := partition.LowerCover(sys.Top, top); len(got) == 0 {
				b.Fatal("empty")
			}
		}
	})
}

// --- Substrate micro-benchmarks -------------------------------------------

// BenchmarkCrossProductLarge measures R() construction on the largest
// paper suite (row 3's five machines).
func BenchmarkCrossProductLarge(b *testing.B) {
	ms := mustMachines(b, "1-Counter", "0-Counter", "Divider", "A", "B")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fusion.ReachableCrossProduct(ms); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClosure measures one Hartmanis–Stearns closure on a 176-state
// top (the inner operation of Algorithm 2).
func BenchmarkClosure(b *testing.B) {
	sys := mustSystem(b, "MESI", "TCP", "A", "B")
	p := partition.Singletons(sys.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := partition.CloseMergingStates(sys.Top, p, 0, (i%(sys.N()-1))+1)
		if c.NumBlocks() < 1 {
			b.Fatal("bad closure")
		}
	}
}

// BenchmarkApplyAll measures broadcast event application across the
// simulated cluster on the shared execution engine: small batches run
// inline, large windows stream through the persistent pool's server
// shards (one task per shard instead of a goroutine per server per call).
func BenchmarkApplyAll(b *testing.B) {
	ms := mustMachines(b, "MESI", "TCP", "A", "B")
	c, err := sim.NewCluster(ms, 1, 3)
	if err != nil {
		b.Fatal(err)
	}
	gen := trace.NewGenerator(5, ms)
	for _, size := range []int{64, 4096} {
		batch := gen.Take(size)
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.ApplyAll(batch)
			}
		})
	}
}

// BenchmarkHandleUpdateDurable measures durable cluster mutation
// throughput with 8 handles appending WAL records concurrently, the
// fusiond write path under multi-tenant load. The grouped sub-benchmark
// uses the group-commit WAL (concurrent AppendEvents coalesce into one
// vectored write + one fsync per commit tick, preallocated segments);
// percall is the ablation where every Update pays its own write+fsync.
// The reported fsyncs/op custom metric counts real fsyncs per Update —
// on fast filesystems where wall-clock barely moves, that ratio is the
// durability bill being split.
func BenchmarkHandleUpdateDurable(b *testing.B) {
	for _, mode := range []struct {
		name   string
		group  bool
		linger time.Duration
	}{
		{"grouped", true, 0},
		// linger trades half a millisecond of ack latency for full
		// batches (-group-batch-delay): on one core the woken waiters
		// need a beat to re-stage before the next leader claims the
		// queue, so this is where the fsync amortization shows up.
		{"grouped-linger", true, 500 * time.Microsecond},
		{"percall", false, 0},
	} {
		b.Run(mode.name, func(b *testing.B) {
			st, err := store.NewDirWith(b.TempDir(), store.DirOptions{
				GroupCommit:   mode.group,
				MaxBatchDelay: mode.linger,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			// Huge compactEvery: measure the append path, not snapshots.
			r := sim.NewStoredRegistry(0, st, 1<<30)
			ms := mustMachines(b, "0-Counter", "1-Counter")
			const handles = 8
			hs := make([]*sim.Handle, handles)
			for i := range hs {
				c, err := sim.NewCluster(ms, 1, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				id, err := r.Add(c)
				if err != nil {
					b.Fatal(err)
				}
				h, ok := r.Get(id)
				if !ok {
					b.Fatalf("handle %s missing", id)
				}
				hs[i] = h
			}
			window := trace.NewGenerator(3, ms).Take(4)
			base := st.WALStats()
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			errs := make([]error, handles)
			for i, h := range hs {
				// Spread b.N across the 8 writers, remainder to the low ids.
				n := b.N / handles
				if i < b.N%handles {
					n++
				}
				wg.Add(1)
				go func(i, n int, h *sim.Handle) {
					defer wg.Done()
					for j := 0; j < n; j++ {
						if err := h.Update(func(tx *sim.Tx) error {
							tx.ApplyAll(window)
							return nil
						}); err != nil {
							errs[i] = err
							return
						}
					}
				}(i, n, h)
			}
			wg.Wait()
			b.StopTimer()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
			ws := st.WALStats()
			b.ReportMetric(float64(ws.Fsyncs-base.Fsyncs)/float64(b.N), "fsyncs/op")
		})
	}
}

// BenchmarkServerGenerate measures one fusiond generate round trip fully
// in-process (request decode → admission → Algorithm 2 on the engine →
// response encode), no network: the service-layer overhead on top of the
// BenchmarkFig1ModCounters workload it wraps.
func BenchmarkServerGenerate(b *testing.B) {
	srv, err := server.New(server.Options{MaxInFlight: 4, QueueDepth: 16})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()
	body := []byte(`{"zoo":["0-Counter","1-Counter"],"f":1}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest("POST", "/v1/generate", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != 200 {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}

// BenchmarkServerGenerateNoObsv is BenchmarkServerGenerate with the
// observability middleware disabled (Options.NoObserve): the same
// round trip minus request-id stamping, histogram recording, and the
// access-log append. The delta against BenchmarkServerGenerate is the
// middleware's per-request bill, budgeted at < 2µs/req in
// benchmarks/README.md.
func BenchmarkServerGenerateNoObsv(b *testing.B) {
	srv, err := server.New(server.Options{MaxInFlight: 4, QueueDepth: 16, NoObserve: true})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()
	body := []byte(`{"zoo":["0-Counter","1-Counter"],"f":1}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest("POST", "/v1/generate", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != 200 {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}

// BenchmarkGenerateCacheHit measures a content-addressed cache hit on the
// Table 1 Row 1 generation: digest the request, look it up, copy the
// partition slice header. This is the per-request cost fusiond pays once
// a fusion is warm — compare against BenchmarkTable1Row1 (the cold run it
// replaces) for the caching win.
func BenchmarkGenerateCacheHit(b *testing.B) {
	suite := machines.PaperSuites()[0]
	ms, err := machines.SuiteMachines(suite)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := fusion.NewSystem(ms)
	if err != nil {
		b.Fatal(err)
	}
	eng := fusion.NewEngine(fusion.EngineOptions{Dedicated: true, Cache: fcache.New(fcache.Options{})})
	defer eng.Close()
	if _, err := eng.Generate(sys, suite.F); err != nil { // warm the entry
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts, err := eng.Generate(sys, suite.F)
		if err != nil {
			b.Fatal(err)
		}
		if len(parts) == 0 {
			b.Fatal("empty fusion")
		}
	}
}

// BenchmarkServerGenerateCached is BenchmarkServerGenerate with the
// fusion cache on and warm: the full HTTP round trip when Algorithm 2 is
// skipped — decode, digest, lookup, encode. The delta against
// BenchmarkServerGenerate isolates what caching buys the service path.
func BenchmarkServerGenerateCached(b *testing.B) {
	srv, err := server.New(server.Options{MaxInFlight: 4, QueueDepth: 16, FusionCache: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()
	body := []byte(`{"zoo":["0-Counter","1-Counter"],"f":1}`)
	warm := httptest.NewRequest("POST", "/v1/generate", bytes.NewReader(body))
	ww := httptest.NewRecorder()
	h.ServeHTTP(ww, warm)
	if ww.Code != 200 {
		b.Fatalf("warm-up status %d: %s", ww.Code, ww.Body.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest("POST", "/v1/generate", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != 200 {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}

// BenchmarkWeakestEdges measures the incremental weakest-edge index on
// the 176-state top. "query" is the per-outer-iteration call Algorithm 2
// issues (O(|weakest|) from the bucket index, formerly an O(N²) rescan);
// "addRemove" cycles one machine through Add / WeakestEdges / Remove to
// include the index-maintenance cost.
func BenchmarkWeakestEdges(b *testing.B) {
	sys := mustSystem(b, "MESI", "TCP", "A", "B")
	b.Run("query", func(b *testing.B) {
		g := core.BuildFaultGraph(sys.N(), sys.Parts)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(g.WeakestEdges()) == 0 {
				b.Fatal("no weakest edges")
			}
		}
	})
	b.Run("addRemove", func(b *testing.B) {
		g := core.BuildFaultGraph(sys.N(), sys.Parts)
		p := sys.Parts[0]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Add(p)
			if len(g.WeakestEdges()) == 0 {
				b.Fatal("no weakest edges")
			}
			g.Remove(p)
		}
	})
}

// --- helpers ---------------------------------------------------------------

func mustMachines(tb testing.TB, names ...string) []*dfsm.Machine {
	tb.Helper()
	ms := make([]*dfsm.Machine, len(names))
	for i, n := range names {
		m, err := machines.Get(n)
		if err != nil {
			tb.Fatal(err)
		}
		ms[i] = m
	}
	return ms
}

func mustSystem(tb testing.TB, names ...string) *core.System {
	tb.Helper()
	sys, err := core.NewSystem(mustMachines(tb, names...))
	if err != nil {
		tb.Fatal(err)
	}
	return sys
}
