package fusion

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Admission-control errors. Services map these to backpressure responses
// (HTTP 429 / 503); see internal/server.
var (
	// ErrQueueFull is returned by Acquire when the engine is at its
	// in-flight limit and the wait queue is also full — the caller should
	// shed the request and retry later.
	ErrQueueFull = errors.New("fusion: admission queue full")
	// ErrQueueTimeout is returned by Acquire when a queued request waited
	// longer than the engine's QueueTimeout without a slot freeing up.
	ErrQueueTimeout = errors.New("fusion: timed out waiting for admission")
	// ErrEngineClosed is returned by Acquire once Close has begun: the
	// engine is draining and accepts no new work.
	ErrEngineClosed = errors.New("fusion: engine closed")
)

// admission is a bounded semaphore with a FIFO wait queue — the
// backpressure layer in front of an Engine's worker pool. At most
// maxInFlight callers hold slots concurrently; up to queueDepth more wait
// in arrival order; everyone else is rejected immediately with
// ErrQueueFull, so overload degrades into fast rejections instead of an
// unbounded pile of goroutines contending for the pool.
//
// The zero value (maxInFlight == 0) admits everything and only counts
// in-flight work, which keeps the drain path of Close uniform.
type admission struct {
	maxInFlight int           // 0 = unlimited
	queueDepth  int           // waiters tolerated beyond the in-flight limit
	timeout     time.Duration // 0 = queued callers wait until ctx cancels

	mu       sync.Mutex
	cond     *sync.Cond // signalled when inflight drops during a drain
	closed   bool
	inflight int
	waiters  []*waiter // FIFO; front is next to be granted
}

// waiter is one queued Acquire. grant carries nil ("you now hold a slot")
// or a terminal error; it is buffered so granting never blocks the holder
// of the admission mutex.
type waiter struct {
	grant chan error
}

func newAdmission(maxInFlight, queueDepth int, timeout time.Duration) *admission {
	a := &admission{maxInFlight: maxInFlight, queueDepth: queueDepth, timeout: timeout}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// Acquire blocks until the caller holds an in-flight slot, the queue
// rejects it, or ctx is cancelled. A nil return means the caller MUST
// Release exactly once. ctx may be nil for "no cancellation".
func (a *admission) Acquire(ctx context.Context) error {
	// A dead request must not consume a slot ahead of live queued ones:
	// the caller may have disconnected while its body was being read.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return ErrEngineClosed
	}
	if a.maxInFlight <= 0 || a.inflight < a.maxInFlight {
		a.inflight++
		a.mu.Unlock()
		return nil
	}
	if len(a.waiters) >= a.queueDepth {
		a.mu.Unlock()
		return ErrQueueFull
	}
	w := &waiter{grant: make(chan error, 1)}
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()

	var timeoutC <-chan time.Time
	if a.timeout > 0 {
		timer := time.NewTimer(a.timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	var cancelC <-chan struct{}
	if ctx != nil {
		cancelC = ctx.Done()
	}
	select {
	case err := <-w.grant:
		return err
	case <-timeoutC:
		return a.abandon(w, ErrQueueTimeout)
	case <-cancelC:
		return a.abandon(w, ctx.Err())
	}
}

// abandon withdraws a queued waiter after a timeout or cancellation. If a
// grant raced the withdrawal (Release had already popped the waiter and
// handed it the slot), the slot is passed straight on so capacity is never
// lost; the caller still observes the timeout.
func (a *admission) abandon(w *waiter, err error) error {
	a.mu.Lock()
	for i, q := range a.waiters {
		if q == w {
			a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
			a.mu.Unlock()
			return err
		}
	}
	a.mu.Unlock()
	// Not queued anymore: a grant or a Close verdict is already in the
	// buffered channel. Give back what we were granted.
	if granted := <-w.grant; granted == nil {
		a.Release()
	}
	return err
}

// Release returns an in-flight slot. If anyone is queued, the slot is
// handed to the front waiter directly (in-flight count unchanged), which
// preserves FIFO admission order.
func (a *admission) Release() {
	a.mu.Lock()
	if len(a.waiters) > 0 && !a.closed {
		w := a.waiters[0]
		a.waiters = a.waiters[1:]
		a.mu.Unlock()
		w.grant <- nil
		return
	}
	a.inflight--
	if a.closed && a.inflight == 0 {
		a.cond.Broadcast()
	}
	a.mu.Unlock()
}

// Close rejects all queued waiters with ErrEngineClosed, refuses new
// Acquires, and blocks until every in-flight slot has been Released.
// Idempotent; concurrent Closes all return once the drain completes.
func (a *admission) Close() {
	a.mu.Lock()
	if !a.closed {
		a.closed = true
		for _, w := range a.waiters {
			w.grant <- ErrEngineClosed
		}
		a.waiters = nil
	}
	for a.inflight > 0 {
		a.cond.Wait()
	}
	a.mu.Unlock()
}

// InFlight returns the number of currently admitted (unreleased) callers.
func (a *admission) InFlight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// Queued returns the number of callers waiting for admission.
func (a *admission) Queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.waiters)
}
