package sim

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/dfsm"
	"repro/internal/machines"
	"repro/internal/trace"
)

func TestProtocolCrashRecovery(t *testing.T) {
	c := newTestCluster(t, 1)
	c.ApplyAll([]string{"0", "1", "1", "0"})
	if err := c.Inject(trace.Fault{Server: "1-Counter", Kind: trace.Crash}); err != nil {
		t.Fatal(err)
	}
	out, err := c.RecoverViaProtocol(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Restored) != 1 || out.Restored[0] != "1-Counter" {
		t.Fatalf("restored = %v", out.Restored)
	}
	if bad := c.Verify(); len(bad) != 0 {
		t.Fatalf("protocol recovery left divergence: %v", bad)
	}
}

func TestProtocolByzantineRecovery(t *testing.T) {
	c := newTestCluster(t, 2)
	c.ApplyAll([]string{"1", "0"})
	if err := c.Inject(trace.Fault{Server: "0-Counter", Kind: trace.Byzantine}); err != nil {
		t.Fatal(err)
	}
	out, err := c.RecoverViaProtocol(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Liars) != 1 || out.Liars[0] != "0-Counter" {
		t.Fatalf("liars = %v", out.Liars)
	}
	if bad := c.Verify(); len(bad) != 0 {
		t.Fatalf("divergence: %v", bad)
	}
}

func TestProtocolMatchesDirectRecover(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 10; trial++ {
		build := func() *Cluster {
			c, err := NewCluster([]*dfsm.Machine{
				machines.EvenParity(), machines.OddParity(), machines.ShiftRegister(2),
			}, 2, 9)
			if err != nil {
				t.Fatal(err)
			}
			return c
		}
		events := make([]string, 5+rng.Intn(20))
		for i := range events {
			events[i] = []string{"0", "1"}[rng.Intn(2)]
		}
		c1, c2 := build(), build()
		c1.ApplyAll(events)
		c2.ApplyAll(events)
		victim := c1.ServerNames()[rng.Intn(len(c1.ServerNames()))]
		for _, c := range []*Cluster{c1, c2} {
			if err := c.Inject(trace.Fault{Server: victim, Kind: trace.Crash}); err != nil {
				t.Fatal(err)
			}
		}
		direct, err := c1.Recover()
		if err != nil {
			t.Fatal(err)
		}
		viaMsg, err := c2.RecoverViaProtocol(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if direct.TopState != viaMsg.TopState {
			t.Fatalf("trial %d: direct ⊤=%d, protocol ⊤=%d", trial, direct.TopState, viaMsg.TopState)
		}
		if len(direct.Restored) != len(viaMsg.Restored) {
			t.Fatalf("trial %d: restored %v vs %v", trial, direct.Restored, viaMsg.Restored)
		}
	}
}

func TestProtocolTimeoutValidation(t *testing.T) {
	c := newTestCluster(t, 1)
	if _, err := c.RecoverViaProtocol(0); err == nil {
		t.Fatal("zero timeout accepted")
	}
}

func TestProtocolBeyondBound(t *testing.T) {
	c := newTestCluster(t, 1)
	c.ApplyAll([]string{"0"})
	c.Inject(trace.Fault{Server: "0-Counter", Kind: trace.Crash})
	c.Inject(trace.Fault{Server: "1-Counter", Kind: trace.Crash})
	if _, err := c.RecoverViaProtocol(time.Second); err == nil {
		t.Fatal("over-budget protocol recovery succeeded")
	}
}
