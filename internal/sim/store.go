package sim

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/exec"
	"repro/internal/trace"
)

// This file makes the registry durable. A store-backed Registry journals
// every mutating Handle.Update sequence as WAL records — event windows,
// fault outcomes, recovery rounds — and compacts the journal into a
// Checkpoint-based snapshot once it crosses a length threshold.
// LoadRegistry inverts the process after a crash or restart: rebuild each
// cluster from its ClusterSpec (fusion generation is deterministic),
// restore the latest snapshot, and replay the WAL tail. The result is
// bit-identical visible state: same handle ids, same per-server states,
// same step counts, same metrics.
//
// Byzantine fault records carry the *outcome* (the corrupted state the
// live rng drew), not just the input, so replay never depends on the rng
// cursor the dead process had advanced to. Fresh faults injected after a
// restart draw from the rebuilt seed's stream instead — valid corruption
// either way, pinned by the recovery tests.

// Store is the durable backend behind a Registry. internal/store
// provides the implementations (an in-memory one and a file-per-cluster
// one); the interface lives here so sim stays free of storage concerns
// and backends stay free of sim types — records are opaque bytes with a
// single framing rule: each WAL record is single-line JSON.
type Store interface {
	// Put records a new cluster's immutable spec. It must be durable
	// before returning: Add does not publish a handle whose creation
	// could be forgotten.
	Put(id string, spec []byte) error
	// AppendEvents durably appends WAL records for id, oldest first.
	AppendEvents(id string, recs [][]byte) error
	// Snapshot atomically replaces id's snapshot and resets its WAL. A
	// crash must leave either the old snapshot+WAL or the new snapshot
	// with an empty WAL — never the new snapshot with the old WAL.
	Snapshot(id string, snap []byte) error
	// Remove deletes all state for id.
	Remove(id string) error
	// Load returns every stored cluster.
	Load() ([]StoreRecord, error)
}

// StoreRecord is one cluster's durable state, as loaded from a Store.
// It is an alias of the same anonymous struct internal/store aliases as
// store.Record, so backends satisfy Store without importing sim (two
// aliases of one anonymous struct are one type; two named structs with
// identical fields are not).
type StoreRecord = struct {
	ID       string
	Spec     []byte
	Snapshot []byte
	WAL      [][]byte
}

// DefaultCompactEvery is the journal length at which a store-backed
// handle compacts its WAL into a snapshot.
const DefaultCompactEvery = 256

// metaID is the reserved store record carrying registry-level state: the
// id sequence high-water mark. Ids must never be reused even across
// restarts, and the surviving cluster ids alone cannot prove that — a
// deleted highest id would be re-minted after a reload, silently
// aliasing a dead handle. The record rides the Store interface like a
// cluster: Put creates it, Snapshot updates it, LoadRegistry skips it
// when rebuilding clusters and reads the sequence from it.
const metaID = "_meta"

// MetaRecordID is the reserved store record id carrying registry-level
// state rather than a cluster; replication followers must route its
// records into sequence bookkeeping instead of building a cluster from
// them.
const MetaRecordID = metaID

// RegistryMetaSeq decodes the id high-water mark from a meta record's
// payload (a Put-time spec or a Snapshot body — same shape either way).
func RegistryMetaSeq(raw []byte) (int, error) {
	var m registryMeta
	if err := json.Unmarshal(raw, &m); err != nil {
		return 0, fmt.Errorf("sim: decoding registry meta: %w", err)
	}
	return m.Seq, nil
}

// registryMeta is the metaID record's payload.
type registryMeta struct {
	Seq int `json:"seq"`
}

// ensureMeta creates the meta record if this store never had one. An
// "already exists" rejection is the normal case on reload; any other
// failure will resurface loudly on the first Add's persistSeq.
func ensureMeta(st Store) {
	b, _ := json.Marshal(registryMeta{}) //nolint:errcheck // plain struct
	st.Put(metaID, b)                    //nolint:errcheck // see above
}

// persistSeq durably records the id high-water mark.
func persistSeq(st Store, seq int) error {
	b, err := json.Marshal(registryMeta{Seq: seq})
	if err != nil {
		return fmt.Errorf("sim: encoding registry meta: %w", err)
	}
	if err := st.Snapshot(metaID, b); err != nil {
		return fmt.Errorf("sim: persisting id sequence: %w", err)
	}
	return nil
}

// decodeMeta reads the sequence from a loaded meta record (the snapshot
// when one was ever written, else the Put-time spec).
func decodeMeta(rec StoreRecord) (int, error) {
	raw := rec.Snapshot
	if raw == nil {
		raw = rec.Spec
	}
	var m registryMeta
	if err := json.Unmarshal(raw, &m); err != nil {
		return 0, fmt.Errorf("sim: decoding registry meta: %w", err)
	}
	return m.Seq, nil
}

// walRecord is one journaled mutation, encoded as single-line JSON.
type walRecord struct {
	// Op is "events", "fault", or "recover".
	Op string `json:"op"`
	// Events is the broadcast window (op "events").
	Events []string `json:"events,omitempty"`
	// Server and Kind identify a fault (op "fault"); Kind is "crash" or
	// "byzantine".
	Server string `json:"server,omitempty"`
	Kind   string `json:"kind,omitempty"`
	// State is the recorded Byzantine corruption outcome; Lied is false
	// for the one-state no-op that cannot corrupt.
	State int  `json:"state"`
	Lied  bool `json:"lied,omitempty"`
	// Failed marks a recovery round whose vote was ambiguous (op
	// "recover"): it mutates nothing but the FailedRecoveries counter,
	// which must survive a restart like every other counter.
	Failed bool `json:"failed,omitempty"`
}

// durableSnapshot is the compaction record: the visible Checkpoint plus
// the parts a restart would otherwise lose — the verification oracle and
// the activity counters.
type durableSnapshot struct {
	Checkpoint *Checkpoint     `json:"checkpoint"`
	Oracle     map[string]int  `json:"oracle,omitempty"`
	Metrics    MetricsSnapshot `json:"metrics"`
}

// replayRecord applies one WAL record to a rebuilt cluster.
func replayRecord(c *Cluster, raw []byte) error {
	var w walRecord
	if err := json.Unmarshal(raw, &w); err != nil {
		return fmt.Errorf("sim: decoding WAL record: %w", err)
	}
	switch w.Op {
	case "events":
		c.ApplyAll(w.Events)
		return nil
	case "fault":
		switch w.Kind {
		case "crash":
			return c.Inject(trace.Fault{Server: w.Server, Kind: trace.Crash})
		case "byzantine":
			return c.injectByzantineAt(w.Server, w.State, w.Lied)
		default:
			return fmt.Errorf("sim: WAL fault record with unknown kind %q", w.Kind)
		}
	case "recover":
		// Algorithm 3 is deterministic in the server states, which replay
		// has reproduced exactly: a vote that succeeded live succeeds
		// here, and a vote that failed live fails here (bumping
		// FailedRecoveries exactly as the live run did).
		_, err := c.Recover()
		if w.Failed {
			if err == nil {
				return fmt.Errorf("sim: replayed recovery succeeded where the live vote was ambiguous")
			}
			return nil
		}
		return err
	default:
		return fmt.Errorf("sim: WAL record with unknown op %q", w.Op)
	}
}

// Tx is the journaling view of a cluster inside Handle.Update: mutations
// issued through it are recorded and appended to the registry's store
// when the sequence ends. Reads (and only reads) may go straight to
// Cluster(); a mutation that bypasses the Tx would be invisible to the
// journal and silently lost on restart.
type Tx struct {
	c       *Cluster
	store   Store // nil = journaling off; record() is a no-op
	recs    [][]byte
	rebased bool // a Restore rewound the cluster; compact instead of appending
}

// Cluster exposes the underlying cluster for reads.
func (tx *Tx) Cluster() *Cluster { return tx.c }

func (tx *Tx) record(w walRecord) {
	if tx.store == nil {
		return
	}
	b, err := json.Marshal(w)
	if err != nil {
		// walRecord is plain data; Marshal cannot fail. Guard anyway.
		panic(fmt.Sprintf("sim: encoding WAL record: %v", err))
	}
	tx.recs = append(tx.recs, b)
}

// ApplyAll broadcasts an event window and journals it. An empty window
// stays a complete no-op, on disk as in memory.
func (tx *Tx) ApplyAll(events []string) {
	if len(events) == 0 {
		return
	}
	tx.c.ApplyAll(events)
	tx.record(walRecord{Op: "events", Events: events})
}

// Inject applies a fault and journals its outcome. For Byzantine faults
// the corrupted state the live rng drew is recorded, making replay
// independent of rng cursor position.
func (tx *Tx) Inject(f trace.Fault) error {
	if err := tx.c.Inject(f); err != nil {
		return err
	}
	rec := walRecord{Op: "fault", Server: f.Server, State: -1}
	switch f.Kind {
	case trace.Crash:
		rec.Kind = "crash"
	case trace.Byzantine:
		rec.Kind = "byzantine"
		st, lying, ok := tx.c.serverStatus(f.Server)
		if !ok {
			return fmt.Errorf("sim: server %q vanished mid-transaction", f.Server)
		}
		rec.State, rec.Lied = st, lying
	}
	tx.record(rec)
	return nil
}

// Recover runs a recovery round and journals its outcome — including an
// ambiguous vote, which restores no server but does count a failed
// recovery, and counters must not regress across a restart.
func (tx *Tx) Recover() (*RecoveryOutcome, error) {
	out, err := tx.c.Recover()
	if err != nil {
		tx.record(walRecord{Op: "recover", Failed: true})
		return nil, err
	}
	tx.record(walRecord{Op: "recover"})
	return out, nil
}

// Restore rewinds the cluster to a checkpoint and journals the rewind as
// a snapshot: a restored state is a new baseline, not an event to
// replay, so the journal is compacted on the spot.
func (tx *Tx) Restore(cp *Checkpoint) error {
	if err := tx.c.Restore(cp); err != nil {
		return err
	}
	// The pending records predate the rewind and must not replay on top
	// of it; the owning Handle snapshots right after the sequence, making
	// the rewound state the new durable baseline.
	tx.recs = nil
	tx.rebased = true
	return nil
}

// encodeSnapshot captures the cluster's durable snapshot record.
func encodeSnapshot(c *Cluster) ([]byte, error) {
	snap := durableSnapshot{
		Checkpoint: c.Snapshot(),
		Oracle:     c.oracleStates(),
		Metrics:    c.Metrics().Snapshot(),
	}
	b, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("sim: encoding snapshot: %w", err)
	}
	return b, nil
}

// restoreSnapshot applies a durable snapshot record to a rebuilt cluster.
func restoreSnapshot(c *Cluster, raw []byte) error {
	var snap durableSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("sim: decoding snapshot: %w", err)
	}
	if snap.Checkpoint == nil {
		return fmt.Errorf("sim: snapshot without checkpoint")
	}
	if err := c.Restore(snap.Checkpoint); err != nil {
		return err
	}
	if snap.Oracle != nil {
		if err := c.setOracle(snap.Oracle); err != nil {
			return err
		}
	}
	c.metrics.restore(snap.Metrics)
	return nil
}

// LoadRegistry rebuilds a store-backed registry from its durable state:
// for every stored cluster, the spec is re-generated into a live Cluster
// (Algorithm 2 is deterministic, so servers and fusion machines come
// back identical), the latest snapshot is restored, and the WAL tail is
// replayed. Handle ids survive verbatim and the id sequence continues
// past the highest recovered id. Recovered clusters are kept even if
// they exceed capacity (they exist; dropping them would lose data) —
// capacity gates new Adds only.
func LoadRegistry(pool *exec.Pool, capacity int, st Store, compactEvery int) (*Registry, error) {
	r := NewStoredRegistry(capacity, st, compactEvery)
	if st == nil {
		return r, nil
	}
	recs, err := st.Load()
	if err != nil {
		return nil, err
	}
	if _, err := r.restoreRecords(pool, recs, st); err != nil {
		return nil, err
	}
	return r, nil
}

// LoadDetachedRegistry rebuilds the same live state LoadRegistry would —
// specs regenerated, snapshots restored, WAL tails replayed, ids and the
// id sequence preserved — but leaves the registry and every handle
// detached from any store: nothing it does, now or later, is journaled.
// This is the replication follower's warm mirror: the durable truth is
// the op feed being applied to the follower's own store, and the mirror
// exists so reads are served live and promotion replays nothing. The
// returned map carries each cluster's WAL tail length (records since its
// last snapshot), which Bind needs to resume compaction bookkeeping at
// promotion. Capacity is unbounded — a mirror must hold whatever the
// leader holds.
func LoadDetachedRegistry(pool *exec.Pool, st Store) (*Registry, map[string]int, error) {
	r := NewRegistry(0)
	recs, err := st.Load()
	if err != nil {
		return nil, nil, err
	}
	walLens, err := r.restoreRecords(pool, recs, nil)
	if err != nil {
		return nil, nil, err
	}
	return r, walLens, nil
}

// restoreRecords rebuilds clusters from loaded store records into r,
// attaching handles to attach (nil = detached). It returns per-cluster
// WAL tail lengths. Callers own r exclusively — this is construction,
// not mutation of a published registry.
func (r *Registry) restoreRecords(pool *exec.Pool, recs []StoreRecord, attach Store) (map[string]int, error) {
	sort.Slice(recs, func(i, j int) bool { return idOrder(recs[i].ID, recs[j].ID) })
	walLens := make(map[string]int, len(recs))
	for _, rec := range recs {
		if rec.ID == metaID {
			seq, err := decodeMeta(rec)
			if err != nil {
				return nil, err
			}
			if seq > r.seq {
				r.seq = seq
			}
			r.metaSeq = seq
			// The meta record appears in the map too (WAL length 0 — it
			// only ever sees Put and Snapshot), so replication mirrors
			// can tell "meta exists" from "never created".
			walLens[rec.ID] = len(rec.WAL)
			continue
		}
		var spec ClusterSpec
		if err := json.Unmarshal(rec.Spec, &spec); err != nil {
			return nil, fmt.Errorf("sim: decoding spec of %q: %w", rec.ID, err)
		}
		c, err := NewClusterFromSpecOn(pool, &spec)
		if err != nil {
			return nil, fmt.Errorf("sim: rebuilding cluster %q: %w", rec.ID, err)
		}
		if rec.Snapshot != nil {
			if err := restoreSnapshot(c, rec.Snapshot); err != nil {
				return nil, fmt.Errorf("sim: restoring cluster %q: %w", rec.ID, err)
			}
		}
		for i, raw := range rec.WAL {
			if err := replayRecord(c, raw); err != nil {
				return nil, fmt.Errorf("sim: replaying record %d of cluster %q: %w", i, rec.ID, err)
			}
		}
		r.clusters[rec.ID] = &Handle{
			c: c, id: rec.ID, store: attach,
			compactEvery: r.compactEvery, walLen: len(rec.WAL),
		}
		walLens[rec.ID] = len(rec.WAL)
		if n, ok := idSeq(rec.ID); ok && n > r.seq {
			r.seq = n
		}
	}
	return walLens, nil
}

// idSeq extracts the numeric sequence from a registry id ("c17" → 17).
func idSeq(id string) (int, bool) {
	if !strings.HasPrefix(id, "c") {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:])
	return n, err == nil
}

// idOrder sorts ids in numeric creation order, unknown shapes last.
func idOrder(a, b string) bool {
	na, oka := idSeq(a)
	nb, okb := idSeq(b)
	switch {
	case oka && okb:
		return na < nb
	case oka != okb:
		return oka
	default:
		return a < b
	}
}
