package sim

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Metrics counts cluster activity for observability; all counters are
// monotonic and safe to read concurrently.
type Metrics struct {
	EventsApplied    atomic.Int64
	FaultsInjected   atomic.Int64
	Recoveries       atomic.Int64
	FailedRecoveries atomic.Int64
	ServersRestored  atomic.Int64
	LiarsCaught      atomic.Int64
}

// Snapshot returns a plain-value copy for reporting.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		EventsApplied:    m.EventsApplied.Load(),
		FaultsInjected:   m.FaultsInjected.Load(),
		Recoveries:       m.Recoveries.Load(),
		FailedRecoveries: m.FailedRecoveries.Load(),
		ServersRestored:  m.ServersRestored.Load(),
		LiarsCaught:      m.LiarsCaught.Load(),
	}
}

// MetricsSnapshot is an immutable view of Metrics.
type MetricsSnapshot struct {
	EventsApplied    int64
	FaultsInjected   int64
	Recoveries       int64
	FailedRecoveries int64
	ServersRestored  int64
	LiarsCaught      int64
}

// String renders the snapshot on one line.
func (s MetricsSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events=%d faults=%d recoveries=%d failed=%d restored=%d liars=%d",
		s.EventsApplied, s.FaultsInjected, s.Recoveries, s.FailedRecoveries,
		s.ServersRestored, s.LiarsCaught)
	return b.String()
}

// restore rebases the counters to a durable snapshot's values; replaying
// the WAL tail on top re-increments them exactly as the live run did.
func (m *Metrics) restore(s MetricsSnapshot) {
	m.EventsApplied.Store(s.EventsApplied)
	m.FaultsInjected.Store(s.FaultsInjected)
	m.Recoveries.Store(s.Recoveries)
	m.FailedRecoveries.Store(s.FailedRecoveries)
	m.ServersRestored.Store(s.ServersRestored)
	m.LiarsCaught.Store(s.LiarsCaught)
}

// Metrics returns the cluster's counters.
func (c *Cluster) Metrics() *Metrics { return &c.metrics }
