package sim

import (
	"reflect"
	"testing"

	"repro/internal/exec"
	"repro/internal/store"
	"repro/internal/trace"
)

// TestLoadDetachedRegistryMirrorsState: a detached load rebuilds exactly
// what a stored load would — same ids, states, metrics — but journals
// nothing.
func TestLoadDetachedRegistryMirrorsState(t *testing.T) {
	st := store.NewMem()
	r := NewStoredRegistry(0, st, 1000)
	id := driveStored(t, r)
	h, _ := r.Get(id)

	mirror, walLens, err := LoadDetachedRegistry(exec.Default(), st)
	if err != nil {
		t.Fatal(err)
	}
	mh, ok := mirror.Get(id)
	if !ok {
		t.Fatalf("mirror lost cluster %q", id)
	}
	h.Do(func(want *Cluster) {
		mh.Do(func(got *Cluster) {
			assertSameCluster(t, want, got)
		})
	})
	if walLens[id] == 0 {
		t.Fatal("walLens missing the cluster's journal length")
	}
	if _, ok := walLens[MetaRecordID]; !ok {
		t.Fatal("walLens must include the meta record so followers can track it")
	}
	// Detached: mutations must not touch the store.
	recsBefore, _ := st.Load()
	if err := mh.Replay([][]byte{}); err != nil {
		t.Fatal(err)
	}
	if err := mh.Update(func(tx *Tx) error { tx.ApplyAll([]string{"0"}); return nil }); err == nil {
		// Update on a nil store journals nothing but should still work? No:
		// detached handles are for Replay only. Accept either, but the
		// store must not change.
		_ = err
	}
	recsAfter, _ := st.Load()
	if !reflect.DeepEqual(recsBefore, recsAfter) {
		t.Fatal("detached mirror wrote to the store")
	}
}

// TestHandleReplayMatchesUpdate: replaying the journal records an Update
// produced yields the same cluster state as the Update itself.
func TestHandleReplayMatchesUpdate(t *testing.T) {
	st := store.NewMem()
	r := NewStoredRegistry(0, st, 1000)
	id, err := r.Add(registryCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	mirror, _, err := LoadDetachedRegistry(exec.Default(), st)
	if err != nil {
		t.Fatal(err)
	}
	mh, _ := mirror.Get(id)

	h, _ := r.Get(id)
	if err := h.Update(func(tx *Tx) error {
		tx.ApplyAll([]string{"0", "1", "1"})
		return tx.Inject(trace.Fault{Server: "F1", Kind: trace.Crash})
	}); err != nil {
		t.Fatal(err)
	}
	recs, _ := st.Load()
	var wal [][]byte
	for _, rec := range recs {
		if rec.ID == id {
			wal = rec.WAL
		}
	}
	if len(wal) == 0 {
		t.Fatal("no journal records to replay")
	}
	if err := mh.Replay(wal); err != nil {
		t.Fatal(err)
	}
	h.Do(func(want *Cluster) {
		mh.Do(func(got *Cluster) {
			assertSameCluster(t, want, got)
		})
	})
}

// TestBindPromotesDetachedRegistry: after Bind, the mirror journals like
// any stored registry — updates persist, ids continue past the leader's
// high-water mark, and a reload round-trips.
func TestBindPromotesDetachedRegistry(t *testing.T) {
	leaderStore := store.NewMem()
	leader := NewStoredRegistry(0, leaderStore, 1000)
	id := driveStored(t, leader)

	// Leader also minted-and-deleted a higher id: the meta record alone
	// carries the proof.
	id2, err := leader.Add(registryCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Remove(id2); err != nil {
		t.Fatal(err)
	}

	mirror, walLens, err := LoadDetachedRegistry(exec.Default(), leaderStore)
	if err != nil {
		t.Fatal(err)
	}
	// Promote: bind the mirror to its own store.
	ownStore := store.NewMem()
	// The promoted store must already hold the replicated records; here the
	// mirror's source store doubles as it (the follower applies ops into
	// its own Dir continuously).
	mirror.Bind(leaderStore, 0, walLens)

	mh, _ := mirror.Get(id)
	if err := mh.Update(func(tx *Tx) error { tx.ApplyAll([]string{"0", "1"}); return nil }); err != nil {
		t.Fatalf("bound mirror update: %v", err)
	}
	id3, err := mirror.Add(registryCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	if id3 == id2 || id3 == id {
		t.Fatalf("promoted registry re-minted id %q", id3)
	}
	if idOrder(id3, id2) {
		t.Fatalf("promoted id %q does not continue past deleted %q", id3, id2)
	}

	// Round-trip: a reload of the bound store sees the post-promotion
	// mutations.
	back, err := LoadRegistry(exec.Default(), 0, leaderStore, 1000)
	if err != nil {
		t.Fatal(err)
	}
	bh, ok := back.Get(id)
	if !ok {
		t.Fatal("reload lost the promoted cluster")
	}
	mh.Do(func(want *Cluster) {
		bh.Do(func(got *Cluster) {
			assertSameCluster(t, want, got)
		})
	})
	_ = ownStore
}

// TestEnsureSeqGuardsIdReuse: a replicated meta record alone (no
// surviving cluster) must push the mirror's id sequence forward.
func TestEnsureSeqGuardsIdReuse(t *testing.T) {
	r := NewRegistry(0)
	r.EnsureSeq(17)
	st := store.NewMem()
	ensureMeta(st) // the follower replicated the meta record's existence too
	r.Bind(st, 0, nil)
	id, err := r.Add(registryCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := idSeq(id); n <= 17 {
		t.Fatalf("minted id %q does not respect EnsureSeq(17)", id)
	}
}
