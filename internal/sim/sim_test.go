package sim

import (
	"math/rand"
	"testing"

	"repro/internal/dfsm"
	"repro/internal/machines"
	"repro/internal/trace"
)

func newTestCluster(t *testing.T, f int) *Cluster {
	t.Helper()
	c, err := NewCluster([]*dfsm.Machine{
		machines.ZeroCounter(), machines.OneCounter(),
	}, f, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterSetup(t *testing.T) {
	c := newTestCluster(t, 1)
	names := c.ServerNames()
	if len(names) != 3 { // 2 originals + 1 fusion
		t.Fatalf("servers = %v, want 3", names)
	}
	if len(c.Fusion()) != 1 || len(c.FusionMachines()) != 1 {
		t.Fatal("fusion accessors inconsistent")
	}
	if got := c.Verify(); len(got) != 0 {
		t.Fatalf("fresh cluster inconsistent: %v", got)
	}
}

func TestApplyAdvancesAllServers(t *testing.T) {
	c := newTestCluster(t, 1)
	c.Apply("0")
	c.Apply("1")
	c.ApplyAll([]string{"0", "0"})
	if c.Step() != 4 {
		t.Fatalf("step = %d, want 4", c.Step())
	}
	if bad := c.Verify(); len(bad) != 0 {
		t.Fatalf("divergent servers after fault-free run: %v", bad)
	}
	// 0-Counter saw three 0s -> state 0; 1-Counter saw one 1 -> state 1.
	states := c.States()
	if states[0] != 0 || states[1] != 1 {
		t.Fatalf("states = %v", states)
	}
}

func TestCrashRecovery(t *testing.T) {
	c := newTestCluster(t, 1)
	c.ApplyAll([]string{"0", "1", "1", "0", "0"})
	if err := c.Inject(trace.Fault{Server: "0-Counter", Kind: trace.Crash}); err != nil {
		t.Fatal(err)
	}
	out, err := c.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(out.Restored) != 1 || out.Restored[0] != "0-Counter" {
		t.Fatalf("restored = %v, want [0-Counter]", out.Restored)
	}
	if bad := c.Verify(); len(bad) != 0 {
		t.Fatalf("recovery left divergent servers: %v", bad)
	}
}

func TestByzantineRecovery(t *testing.T) {
	// f=2 fusion tolerates one Byzantine fault.
	c := newTestCluster(t, 2)
	c.ApplyAll([]string{"1", "0", "1"})
	if err := c.Inject(trace.Fault{Server: "1-Counter", Kind: trace.Byzantine}); err != nil {
		t.Fatal(err)
	}
	out, err := c.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(out.Liars) != 1 || out.Liars[0] != "1-Counter" {
		t.Fatalf("liars = %v, want [1-Counter]", out.Liars)
	}
	if bad := c.Verify(); len(bad) != 0 {
		t.Fatalf("divergent after Byzantine recovery: %v", bad)
	}
}

func TestRecoveryBeyondBoundFails(t *testing.T) {
	c := newTestCluster(t, 1)
	c.ApplyAll([]string{"0", "1"})
	for _, s := range []string{"0-Counter", "1-Counter"} {
		if err := c.Inject(trace.Fault{Server: s, Kind: trace.Crash}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Recover(); err == nil {
		t.Fatal("recovery of 2 crashes with a 1-fault fusion succeeded")
	}
}

func TestInjectUnknownServer(t *testing.T) {
	c := newTestCluster(t, 1)
	if err := c.Inject(trace.Fault{Server: "nope", Kind: trace.Crash}); err == nil {
		t.Fatal("unknown server accepted")
	}
	if err := c.Inject(trace.Fault{Server: "0-Counter", Kind: trace.FaultKind(99)}); err == nil {
		t.Fatal("unknown fault kind accepted")
	}
}

func TestCrashedServerMissesEvents(t *testing.T) {
	c := newTestCluster(t, 1)
	if err := c.Inject(trace.Fault{Server: "0-Counter", Kind: trace.Crash}); err != nil {
		t.Fatal(err)
	}
	c.ApplyAll([]string{"0", "0"})
	// Crashed server is at -1, oracle says 2; Recover must fix it.
	if states := c.States(); states[0] != -1 {
		t.Fatalf("crashed server has state %d", states[0])
	}
	if _, err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	if bad := c.Verify(); len(bad) != 0 {
		t.Fatalf("divergent: %v", bad)
	}
}

func TestRunEndToEnd(t *testing.T) {
	c := newTestCluster(t, 2)
	gen := trace.NewGenerator(3, c.System().Machines)
	events := gen.Take(40)
	sched := trace.Schedule{
		AtStep: 17,
		Faults: []trace.Fault{
			{Server: "0-Counter", Kind: trace.Crash},
			{Server: "F1", Kind: trace.Crash},
		},
	}
	res, err := c.Run(events, sched)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("end-to-end run left the cluster inconsistent")
	}
	if res.Events != 40 {
		t.Fatalf("events = %d", res.Events)
	}
}

// TestRunRandomizedMatrix sweeps random schedules within tolerance for both
// fault kinds across several suites; recovery must always restore the
// oracle state.
func TestRunRandomizedMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	suites := [][]*dfsm.Machine{
		{machines.ZeroCounter(), machines.OneCounter()},
		{machines.EvenParity(), machines.OddParity(), machines.ToggleSwitch()},
		{machines.Fig2A(), machines.Fig2B()},
	}
	for si, ms := range suites {
		for trial := 0; trial < 8; trial++ {
			f := 1 + rng.Intn(2)
			c, err := NewCluster(ms, f, rng.Int63())
			if err != nil {
				t.Fatalf("suite %d: %v", si, err)
			}
			gen := trace.NewGenerator(rng.Int63(), ms)
			events := gen.Take(10 + rng.Intn(40))

			kind := trace.Crash
			k := f
			if f >= 2 && rng.Intn(2) == 0 {
				kind = trace.Byzantine
				k = f / 2
			}
			sched, err := trace.RandomSchedule(rng, c.ServerNames(), k, kind, len(events))
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run(events, sched)
			if err != nil {
				t.Fatalf("suite %d trial %d (%v): %v", si, trial, sched, err)
			}
			if !res.Consistent {
				t.Fatalf("suite %d trial %d: inconsistent after recovery (sched %+v)", si, trial, sched)
			}
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := trace.RandomSchedule(rng, []string{"a"}, 2, trace.Crash, 5); err == nil {
		t.Error("overfull schedule accepted")
	}
	if _, err := trace.RandomSchedule(rng, []string{"a"}, 1, trace.Crash, 0); err == nil {
		t.Error("zero-step schedule accepted")
	}
}
