package sim

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/machines"
	"repro/internal/trace"
)

func applyTestCluster(t *testing.T, pool *exec.Pool) *Cluster {
	t.Helper()
	ms, err := machines.SuiteMachines(machines.Suite{Machines: []string{"0-Counter", "1-Counter"}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClusterOn(pool, ms, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestApplyAllEmptyNoOp: broadcasting an empty batch is an explicit
// no-op — no step advance, no metrics traffic, no state changes.
func TestApplyAllEmptyNoOp(t *testing.T) {
	c := applyTestCluster(t, exec.Default())
	gen := trace.NewGenerator(3, c.sys.Machines)
	c.ApplyAll(gen.Take(10))
	step := c.Step()
	events := c.Metrics().EventsApplied.Load()
	states := c.States()

	c.ApplyAll(nil)
	c.ApplyAll([]string{})

	if got := c.Step(); got != step {
		t.Fatalf("empty ApplyAll advanced step %d -> %d", step, got)
	}
	if got := c.Metrics().EventsApplied.Load(); got != events {
		t.Fatalf("empty ApplyAll counted events %d -> %d", events, got)
	}
	for i, s := range c.States() {
		if s != states[i] {
			t.Fatalf("empty ApplyAll changed server %d state %d -> %d", i, states[i], s)
		}
	}
}

// TestApplyAllShardedMatchesSerial: the pooled shard executor must leave
// every server and the oracle in exactly the state a serial broadcast
// produces, including batches large enough to cross applyPoolThreshold.
func TestApplyAllShardedMatchesSerial(t *testing.T) {
	serial := applyTestCluster(t, exec.New(1))
	pooled := applyTestCluster(t, exec.New(4))
	if len(pooled.shards) < 2 {
		t.Fatalf("pooled cluster has %d shards, want several", len(pooled.shards))
	}

	gen := trace.NewGenerator(11, serial.sys.Machines)
	big := gen.Take(applyPoolThreshold) // far past the inline threshold
	for _, batch := range [][]string{big[:7], big[7:9], big[9:]} {
		serial.ApplyAll(batch)
		pooled.ApplyAll(batch)
	}

	ss, ps := serial.States(), pooled.States()
	for i := range ss {
		if ss[i] != ps[i] {
			t.Fatalf("server %d: serial state %d, pooled state %d", i, ss[i], ps[i])
		}
	}
	for i := range serial.oracle {
		if serial.oracle[i] != pooled.oracle[i] {
			t.Fatalf("oracle %d: serial %d, pooled %d", i, serial.oracle[i], pooled.oracle[i])
		}
	}
	if bad := pooled.Verify(); len(bad) != 0 {
		t.Fatalf("pooled cluster inconsistent: %v", bad)
	}
	if serial.Step() != pooled.Step() {
		t.Fatalf("steps diverged: serial %d, pooled %d", serial.Step(), pooled.Step())
	}
}
