package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dfsm"
	"repro/internal/machines"
)

func registryCluster(t *testing.T) *Cluster {
	t.Helper()
	a, err := machines.Get("0-Counter")
	if err != nil {
		t.Fatal(err)
	}
	b, err := machines.Get("1-Counter")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster([]*dfsm.Machine{a, b}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry(0)
	c := registryCluster(t)

	id1, err := r.Add(c)
	if err != nil || id1 != "c1" {
		t.Fatalf("first Add = %q, %v; want c1", id1, err)
	}
	id2, err := r.Add(c)
	if err != nil || id2 != "c2" {
		t.Fatalf("second Add = %q, %v; want c2", id2, err)
	}
	h, ok := r.Get(id1)
	if !ok {
		t.Fatal("Get lost the cluster")
	}
	h.Do(func(got *Cluster) {
		if got != c {
			t.Error("handle wraps the wrong cluster")
		}
	})
	if _, ok := r.Get("nope"); ok {
		t.Fatal("Get found an unknown id")
	}
	if ids := r.IDs(); len(ids) != 2 || ids[0] != "c1" || ids[1] != "c2" {
		t.Fatalf("IDs = %v", ids)
	}
	if ok, err := r.Remove(id1); !ok || err != nil {
		t.Fatalf("Remove = %v, %v; want true, nil", ok, err)
	}
	if ok, err := r.Remove(id1); ok || err != nil {
		t.Fatalf("second Remove = %v, %v; want false, nil", ok, err)
	}
	if _, ok := r.Get(id1); ok {
		t.Fatal("removed id still resolves")
	}
	// IDs are never reused.
	id3, err := r.Add(c)
	if err != nil || id3 != "c3" {
		t.Fatalf("Add after Remove = %q, want c3", id3)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}

func TestRegistryCapacity(t *testing.T) {
	r := NewRegistry(2)
	c := registryCluster(t)
	for i := 0; i < 2; i++ {
		if _, err := r.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Add(c); err == nil {
		t.Fatal("Add beyond capacity succeeded")
	}
	if _, err := r.Remove("c1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add(c); err != nil {
		t.Fatalf("Add after Remove failed: %v", err)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry(0)
	c := registryCluster(t)
	const gs, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id, err := r.Add(c)
				if err != nil {
					t.Error(err)
					return
				}
				if _, ok := r.Get(id); !ok {
					t.Errorf("own id %s not resolvable", id)
					return
				}
				if i%2 == 0 {
					r.Remove(id) //nolint:errcheck // nil store: no error path
				}
			}
		}()
	}
	wg.Wait()
	if want := gs * per / 2; r.Len() != want {
		t.Fatalf("Len = %d, want %d", r.Len(), want)
	}
	// Dense ids: the numeric suffixes must be exactly 1..gs*per.
	seen := make(map[string]bool)
	for _, id := range r.IDs() {
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
	if _, ok := r.Get(fmt.Sprintf("c%d", gs*per+1)); ok {
		t.Fatal("id beyond sequence resolves")
	}
}

// TestHandleDoSerializes: Do gives multi-call sequences exclusive access
// — two concurrent sequences never interleave their steps.
func TestHandleDoSerializes(t *testing.T) {
	r := NewRegistry(0)
	id, err := r.Add(registryCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	h, _ := r.Get(id)
	var inside, interleaved int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				h.Do(func(c *Cluster) {
					if atomic.AddInt32(&inside, 1) > 1 {
						atomic.StoreInt32(&interleaved, 1)
					}
					c.ApplyAll([]string{"0"})
					c.Apply("1")
					atomic.AddInt32(&inside, -1)
				})
			}
		}()
	}
	wg.Wait()
	if interleaved != 0 {
		t.Fatal("two Do sequences overlapped")
	}
}
