package sim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
)

// This file implements recovery as an actual message exchange rather than
// a direct method call: the coordinator broadcasts a state query, each
// live server answers from its own goroutine over a channel, crashed
// servers never answer (detected by timeout), and the coordinator votes
// with Algorithm 3 and broadcasts restore commands. This matches the
// paper's system model — servers share no state and communicate only
// during recovery — and exercises the same logic as Recover through a
// realistic asynchronous path.

// stateQuery asks a server for its current report.
type stateQuery struct {
	reply chan<- stateAnswer
}

// stateAnswer is a server's response.
type stateAnswer struct {
	name   string
	report core.Report
}

// restoreCommand tells a server to adopt a state.
type restoreCommand struct {
	state int
	done  chan<- struct{}
}

// RecoverViaProtocol performs one recovery round via message passing. Each
// live server runs a responder goroutine; answers arriving after the
// timeout are treated as crashes (exactly how a real coordinator would
// see a dead process). Restore commands are likewise delivered as
// messages. The outcome matches Recover on the same cluster state.
func (c *Cluster) RecoverViaProtocol(timeout time.Duration) (*RecoveryOutcome, error) {
	if timeout <= 0 {
		return nil, fmt.Errorf("sim: protocol timeout %v", timeout)
	}

	// Phase 1: query. Snapshot the server handles under the lock, then let
	// the responders run lock-free on their snapshot.
	c.mu.Lock()
	type handle struct {
		name      string
		fusionIdx int
		origIdx   int
		state     int
		crashed   bool
		inbox     chan stateQuery
		restore   chan restoreCommand
	}
	handles := make([]*handle, len(c.servers))
	for i, s := range c.servers {
		handles[i] = &handle{
			name: s.name, fusionIdx: s.fusionIdx, origIdx: s.origIdx,
			state: s.state, crashed: s.crashed,
			inbox:   make(chan stateQuery, 1),
			restore: make(chan restoreCommand, 1),
		}
	}
	c.mu.Unlock()

	answers := make(chan stateAnswer, len(handles))
	for _, h := range handles {
		go func(h *handle) {
			if h.crashed {
				return // a crashed process never answers
			}
			q, ok := <-h.inbox
			if !ok {
				return
			}
			var r core.Report
			var err error
			if h.fusionIdx >= 0 {
				r, err = core.ReportForPartition(h.name, c.fusion[h.fusionIdx], h.state)
			} else {
				r, err = c.sys.ReportFor(h.origIdx, h.state)
			}
			if err == nil {
				q.reply <- stateAnswer{name: h.name, report: r}
			}
		}(h)
		h.inbox <- stateQuery{reply: answers}
		close(h.inbox)
	}

	deadline := time.After(timeout)
	var reports []core.Report
	live := 0
	for _, h := range handles {
		if !h.crashed {
			live++
		}
	}
collect:
	for len(reports) < live {
		select {
		case a := <-answers:
			reports = append(reports, a.report)
		case <-deadline:
			break collect
		}
	}

	// Phase 2: vote.
	res, err := core.Recover(c.sys.N(), reports)
	if err != nil {
		c.metrics.FailedRecoveries.Add(1)
		return nil, err
	}

	// Phase 3: restore via messages, then commit under the lock.
	tuple := c.sys.Product.Proj[res.TopState]
	done := make(chan struct{}, len(handles))
	want := make(map[string]int, len(handles))
	for _, h := range handles {
		var w int
		if h.fusionIdx >= 0 {
			w = c.fusion[h.fusionIdx].BlockOf(res.TopState)
		} else {
			w = tuple[h.origIdx]
		}
		want[h.name] = w
		go func(h *handle) {
			cmd := <-h.restore
			// The server acknowledges adoption; the coordinator commits.
			cmd.done <- struct{}{}
		}(h)
		h.restore <- restoreCommand{state: w, done: done}
		close(h.restore)
	}
	for range handles {
		<-done
	}

	c.mu.Lock()
	out := &RecoveryOutcome{TopState: res.TopState, Liars: res.Liars}
	for _, s := range c.servers {
		w := want[s.name]
		if s.crashed || s.state != w {
			out.Restored = append(out.Restored, s.name)
		}
		s.state = w
		s.crashed = false
		s.lying = false
	}
	c.mu.Unlock()
	sort.Strings(out.Restored)
	c.metrics.Recoveries.Add(1)
	c.metrics.LiarsCaught.Add(int64(len(out.Liars)))
	c.metrics.ServersRestored.Add(int64(len(out.Restored)))
	return out, nil
}
