package sim

import (
	"encoding/json"
	"fmt"
)

// This file adds checkpointing and event journaling to the cluster. The
// paper assumes the DFSMs themselves survive on "failure-resistant
// permanent storage" and only the execution state is lost; a Checkpoint is
// exactly that durable record, and the journal enables the classical
// alternative to fusion — replay from the last checkpoint — against which
// fusion recovery can be compared (replay costs O(events), fusion costs
// O((n+m)·N) regardless of history length).

// Checkpoint is a durable snapshot of the cluster's visible execution
// state. It is JSON-serializable.
type Checkpoint struct {
	Step   int            `json:"step"`
	States map[string]int `json:"states"`
}

// Snapshot captures the current states of all servers. Crashed servers
// (state -1) are recorded as crashed; snapshotting mid-fault is allowed
// but such a checkpoint cannot restore the crashed machines' states.
func (c *Cluster) Snapshot() *Checkpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := &Checkpoint{Step: c.step, States: make(map[string]int, len(c.servers))}
	for _, s := range c.servers {
		cp.States[s.name] = s.state
	}
	return cp
}

// Restore resets every server to the checkpointed state. The oracle is
// reset too: a restore rewinds the simulation, it does not diverge from
// ground truth. Unknown or missing server names are errors.
//
// A checkpoint taken mid-fault restores crashed servers as crashed
// (state -1) with an *unknown* oracle entry: ground truth for them is
// not in the checkpoint. Unknown entries sit out the oracle replay of
// subsequent ApplyAll calls and resync on the next successful Recover
// (whose restored state is the fault-free state within the budget). The
// registry's durable snapshots carry the oracle separately and do not
// lose it.
func (c *Cluster) Restore(cp *Checkpoint) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(cp.States) != len(c.servers) {
		return fmt.Errorf("sim: checkpoint has %d servers, cluster has %d", len(cp.States), len(c.servers))
	}
	for _, s := range c.servers {
		st, ok := cp.States[s.name]
		if !ok {
			return fmt.Errorf("sim: checkpoint missing server %q", s.name)
		}
		if st < -1 || st >= s.machine.NumStates() {
			return fmt.Errorf("sim: checkpoint state %d out of range for %q", st, s.name)
		}
	}
	for i, s := range c.servers {
		st := cp.States[s.name]
		s.state = st
		s.crashed = st == -1
		s.lying = false
		c.oracle[i] = st
	}
	c.step = cp.Step
	return nil
}

// MarshalJSON implements json.Marshaler for Checkpoint (plain struct
// encoding; declared for documentation symmetry with UnmarshalJSON).
func (cp *Checkpoint) MarshalJSON() ([]byte, error) {
	type alias Checkpoint
	return json.Marshal((*alias)(cp))
}

// UnmarshalJSON implements json.Unmarshaler.
func (cp *Checkpoint) UnmarshalJSON(data []byte) error {
	type alias Checkpoint
	return json.Unmarshal(data, (*alias)(cp))
}

// Journal records the event stream since a checkpoint, enabling
// replay-based recovery.
type Journal struct {
	Base   *Checkpoint `json:"base"`
	Events []string    `json:"events"`
}

// NewJournal starts a journal at the given checkpoint.
func NewJournal(base *Checkpoint) *Journal {
	return &Journal{Base: base}
}

// Append records events.
func (j *Journal) Append(events ...string) {
	j.Events = append(j.Events, events...)
}

// ReplayRecover rebuilds a crashed server's state by replaying the journal
// from the checkpoint — the baseline the paper's fusion approach is an
// alternative to. The cluster is only consulted for the machine
// definition; the crashed server's durable state comes from the journal.
func (c *Cluster) ReplayRecover(j *Journal, serverName string) (int, error) {
	c.mu.Lock()
	s := c.find(serverName)
	c.mu.Unlock()
	if s == nil {
		return -1, fmt.Errorf("sim: no server %q", serverName)
	}
	base, ok := j.Base.States[serverName]
	if !ok {
		return -1, fmt.Errorf("sim: journal base missing server %q", serverName)
	}
	if base < 0 {
		return -1, fmt.Errorf("sim: journal base has %q crashed; cannot replay", serverName)
	}
	return s.machine.RunFrom(base, j.Events), nil
}

// ApplyAllJournaled is ApplyAll that also appends to the journal.
func (c *Cluster) ApplyAllJournaled(j *Journal, events []string) {
	c.ApplyAll(events)
	j.Append(events...)
}
