package sim

import (
	"fmt"
	"sort"
	"sync"
)

// Handle is a registered cluster plus its request-serialization lock.
// Individual Cluster methods are already safe, but a service request
// usually spans several of them (apply a window, inject faults, read the
// resulting states for the response); Do gives such a sequence exclusive
// access so concurrent requests to the same cluster cannot interleave
// mid-sequence — one request's faults strike at its own cut, and its
// response describes its own mutations.
type Handle struct {
	mu sync.Mutex
	c  *Cluster
}

// Do runs f with exclusive multi-call access to the cluster. f must not
// call Do on the same handle.
func (h *Handle) Do(f func(c *Cluster)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	f(h.c)
}

// Registry is a concurrency-safe handle table for live Clusters: the
// piece a long-running service needs between "create a deployment" and
// "drive it with events / recover it" requests that arrive on different
// connections. IDs are dense ("c1", "c2", ...), never reused within a
// registry, and meaningless outside it — each fusiond tenant owns one
// registry, so handles cannot leak across tenants.
type Registry struct {
	mu       sync.Mutex
	seq      int
	capacity int // 0 = unbounded
	clusters map[string]*Handle
}

// NewRegistry returns an empty registry. capacity bounds how many
// clusters may be live at once (Add fails beyond it); 0 means unbounded.
func NewRegistry(capacity int) *Registry {
	return &Registry{capacity: capacity, clusters: make(map[string]*Handle)}
}

// Add registers a cluster and returns its fresh handle id.
func (r *Registry) Add(c *Cluster) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.capacity > 0 && len(r.clusters) >= r.capacity {
		return "", fmt.Errorf("sim: registry full (%d live clusters)", len(r.clusters))
	}
	r.seq++
	id := fmt.Sprintf("c%d", r.seq)
	r.clusters[id] = &Handle{c: c}
	return id, nil
}

// Get returns the handle for an id, or false for unknown (or removed)
// ids.
func (r *Registry) Get(id string) (*Handle, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.clusters[id]
	return h, ok
}

// Remove drops an id; it reports whether the id was live. The cluster
// itself holds no external resources, so dropping the handle is all the
// teardown there is (a request still inside Handle.Do finishes normally
// on its own reference).
func (r *Registry) Remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.clusters[id]
	delete(r.clusters, id)
	return ok
}

// Full reports whether the registry is at capacity — an advisory
// pre-check letting callers skip expensive cluster construction that Add
// would only reject; Add remains the authoritative gate.
func (r *Registry) Full() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.capacity > 0 && len(r.clusters) >= r.capacity
}

// Metrics snapshots every live cluster's activity counters, keyed by
// handle id. The counters are atomic and the handle's cluster reference
// is immutable, so no Handle.Do serialization is needed — a snapshot
// taken mid-request simply reads the counts so far.
func (r *Registry) Metrics() map[string]MetricsSnapshot {
	r.mu.Lock()
	handles := make(map[string]*Handle, len(r.clusters))
	for id, h := range r.clusters {
		handles[id] = h
	}
	r.mu.Unlock()
	out := make(map[string]MetricsSnapshot, len(handles))
	for id, h := range handles {
		out[id] = h.c.Metrics().Snapshot()
	}
	return out
}

// Len returns the number of live clusters.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.clusters)
}

// IDs returns the live ids in numeric creation order.
func (r *Registry) IDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.clusters))
	for id := range r.clusters {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		return len(out[i]) < len(out[j]) || (len(out[i]) == len(out[j]) && out[i] < out[j])
	})
	return out
}
