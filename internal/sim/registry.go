package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrRegistryFull is returned by Add when the registry is at capacity.
// It is the authoritative admission signal: Full() is only an advisory
// pre-check, so callers must test Add's error with errors.Is rather than
// trusting the pre-check (the TOCTOU window between the two is real).
var ErrRegistryFull = errors.New("sim: registry full")

// Handle is a registered cluster plus its request-serialization lock.
// Individual Cluster methods are already safe, but a service request
// usually spans several of them (apply a window, inject faults, read the
// resulting states for the response); Do and Update give such a sequence
// exclusive access so concurrent requests to the same cluster cannot
// interleave mid-sequence — one request's faults strike at its own cut,
// and its response describes its own mutations.
//
// On a store-backed registry, Update additionally journals the
// sequence's mutations and compacts the journal into a snapshot when it
// grows past the registry's threshold. Do is for read-only sequences: a
// mutation made through Do bypasses the journal and is lost on restart.
type Handle struct {
	mu sync.Mutex
	c  *Cluster

	id           string
	store        Store // nil = in-memory registry, no journaling
	compactEvery int
	walLen       int // WAL records since the last snapshot
	// dirty means the store is BEHIND the in-memory cluster: an append
	// (or rebase snapshot) failed after mutations were applied. Appending
	// later windows on top would leave a gap that replays to divergent
	// state, so while dirty every Update (and SnapshotAll) tries a full
	// snapshot instead — the only operation that can heal the gap.
	dirty bool
}

// Do runs f with exclusive multi-call access to the cluster, for
// read-only sequences. f must not call Do or Update on the same handle.
func (h *Handle) Do(f func(c *Cluster)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	f(h.c)
}

// Update runs f with exclusive multi-call access to the cluster and, on
// a store-backed registry, durably appends the mutations f issued
// through the Tx before returning — a response written after Update
// describes state that survives a crash. f's error is returned verbatim
// when journaling is off or nothing was recorded; a journaling failure
// is joined onto it. After such a failure the in-memory state is ahead
// of the store; the handle remembers that and heals on the next Update
// (or SnapshotAll) by snapshotting the full current state rather than
// appending on top of the gap. f must not call Do or Update on the same
// handle.
//
// On a store with a staged append path (group-commit Dir, or a Tee over
// one), the handle lock is RELEASED while this Update waits for its
// batch's fsync: the mutations are already applied and the records
// staged in order, so the lock has done its serialization work, and
// holding it through the fsync would forbid the very coalescing group
// commit exists for — independent handles must be able to park on the
// same batch. A next Update on this handle stages behind this one (the
// store keeps per-cluster stage order) and both ride whichever batches
// the flusher forms. Failure stays safe without the lock: the store
// poisons the cluster on a failed batch, refusing further stages until a
// snapshot heals it, so the dirty flag being set only after re-acquiring
// the lock cannot let an append sneak into the gap.
func (h *Handle) Update(f func(tx *Tx) error) error {
	h.mu.Lock()
	tx := &Tx{c: h.c, store: h.store}
	ferr := f(tx)
	if h.store == nil {
		h.mu.Unlock()
		return ferr
	}
	if tx.rebased || h.dirty {
		// Either a Restore rewound the cluster (the snapshot of the final
		// state is the new baseline, superseding any record of this
		// sequence) or an earlier journaling failure left the store
		// behind (only a full snapshot — never an append onto the gap —
		// can make it catch up; until one succeeds the handle stays
		// dirty and keeps refusing to append).
		err := h.snapshotLocked()
		h.dirty = err != nil
		h.mu.Unlock()
		return errors.Join(ferr, err)
	}
	if len(tx.recs) == 0 {
		h.mu.Unlock()
		return ferr
	}
	wait, err := stageEvents(h.store, h.id, tx.recs)
	if err != nil {
		h.dirty = true
		h.mu.Unlock()
		return errors.Join(ferr, fmt.Errorf("sim: journaling cluster %q: %w", h.id, err))
	}
	h.walLen += len(tx.recs)
	h.mu.Unlock()
	if err := wait(); err != nil {
		h.mu.Lock()
		h.dirty = true
		h.mu.Unlock()
		return errors.Join(ferr, fmt.Errorf("sim: journaling cluster %q: %w", h.id, err))
	}
	h.mu.Lock()
	var serr error
	if !h.dirty && h.walLen >= h.compactEvery {
		serr = h.snapshotLocked()
	}
	h.mu.Unlock()
	return errors.Join(ferr, serr)
}

// stagedStore is the optional staged-append surface of a Store,
// satisfied by store.Dir and store.Tee. stageEvents adapts any Store to
// it: without a staged path the append commits inline and the returned
// wait is a no-op, which reduces Update to its historical
// fsync-under-the-handle-lock behavior.
type stagedStore interface {
	StageEvents(id string, recs [][]byte, onCommit func()) (func() error, error)
}

func stageEvents(st Store, id string, recs [][]byte) (func() error, error) {
	if ss, ok := st.(stagedStore); ok {
		return ss.StageEvents(id, recs, nil)
	}
	if err := st.AppendEvents(id, recs); err != nil {
		return nil, err
	}
	return func() error { return nil }, nil
}

// Replay applies journaled WAL records to the live cluster without
// re-journaling them — the replication-mirror path, where the records
// are already durable upstream and this handle's cluster only needs to
// catch up in memory. Replay shares the handle lock with Do/Update, so
// a mirror serving reads never exposes a half-applied batch.
func (h *Handle) Replay(recs [][]byte) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, rec := range recs {
		if err := replayRecord(h.c, rec); err != nil {
			return fmt.Errorf("sim: replaying record %d: %w", i, err)
		}
	}
	return nil
}

// RestoreSnapshot rewinds the live cluster to a durable snapshot record
// (the compaction payload a leader published), without journaling — the
// replication-mirror counterpart of a leader-side compaction.
func (h *Handle) RestoreSnapshot(raw []byte) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return restoreSnapshot(h.c, raw)
}

// snapshotLocked compacts the handle's journal into a snapshot. Callers
// hold h.mu.
func (h *Handle) snapshotLocked() error {
	snap, err := encodeSnapshot(h.c)
	if err != nil {
		return err
	}
	if err := h.store.Snapshot(h.id, snap); err != nil {
		return fmt.Errorf("sim: snapshotting cluster %q: %w", h.id, err)
	}
	h.walLen = 0
	return nil
}

// Registry is a concurrency-safe handle table for live Clusters: the
// piece a long-running service needs between "create a deployment" and
// "drive it with events / recover it" requests that arrive on different
// connections. IDs are dense ("c1", "c2", ...), never reused within a
// registry (nor across the restarts of a store-backed one), and
// meaningless outside it — each fusiond tenant owns one registry, so
// handles cannot leak across tenants.
//
// With a Store attached (NewStoredRegistry / LoadRegistry), the registry
// is durable: Add persists the cluster's spec before publishing the
// handle, Update sequences journal their mutations, and Remove deletes
// the durable record. Without one, behavior is the historical in-memory
// registry with zero persistence overhead.
type Registry struct {
	mu           sync.Mutex
	seq          int
	capacity     int // 0 = unbounded
	store        Store
	compactEvery int
	clusters     map[string]*Handle

	// metaMu serializes id-sequence persistence and keeps it monotonic:
	// concurrent Adds must not let a lower reservation overwrite a higher
	// one in the store (the whole point of the record is never moving
	// backwards). metaSeq is the highest value known durable.
	metaMu  sync.Mutex
	metaSeq int
}

// NewRegistry returns an empty in-memory registry. capacity bounds how
// many clusters may be live at once (Add fails beyond it); 0 means
// unbounded.
func NewRegistry(capacity int) *Registry {
	return NewStoredRegistry(capacity, nil, 0)
}

// NewStoredRegistry returns an empty registry journaling through st (nil
// disables persistence). compactEvery is the WAL length at which a
// handle's journal is compacted into a snapshot; 0 means
// DefaultCompactEvery. To rebuild a registry from existing durable
// state, use LoadRegistry instead.
func NewStoredRegistry(capacity int, st Store, compactEvery int) *Registry {
	if compactEvery <= 0 {
		compactEvery = DefaultCompactEvery
	}
	if st != nil {
		ensureMeta(st)
	}
	return &Registry{
		capacity:     capacity,
		store:        st,
		compactEvery: compactEvery,
		clusters:     make(map[string]*Handle),
	}
}

// Add registers a cluster and returns its fresh handle id. On a
// store-backed registry the cluster's spec is durable before the handle
// becomes visible; a store failure aborts the registration. The store
// write (disk fsyncs) happens outside the registry lock — only the id
// reservation and the publish hold it, so concurrent requests to other
// clusters of the tenant never stall behind a create's I/O. Capacity is
// re-checked at publish time; the loser of that race rolls its spec
// back, so ErrRegistryFull stays authoritative.
func (r *Registry) Add(c *Cluster) (string, error) {
	r.mu.Lock()
	if r.capacity > 0 && len(r.clusters) >= r.capacity {
		n := len(r.clusters)
		r.mu.Unlock()
		return "", fmt.Errorf("%w (%d live clusters)", ErrRegistryFull, n)
	}
	r.seq++
	n := r.seq
	id := fmt.Sprintf("c%d", n)
	st := r.store
	r.mu.Unlock()

	if st != nil {
		spec, err := encodeSpec(c)
		if err != nil {
			return "", err
		}
		if err := st.Put(id, spec); err != nil {
			return "", fmt.Errorf("sim: persisting cluster %q: %w", id, err)
		}
		// The id high-water mark must be durable before the id is
		// acknowledged, or a Remove of the highest id plus a restart
		// would re-mint it for a different cluster. (A crash between the
		// two writes is covered the other way: the surviving spec itself
		// proves the id was reached.)
		if err := r.persistSeqUpTo(n); err != nil {
			st.Remove(id) //nolint:errcheck // best-effort rollback; an unacknowledged spec is harmless
			return "", err
		}
	}

	r.mu.Lock()
	if r.capacity > 0 && len(r.clusters) >= r.capacity {
		n := len(r.clusters)
		r.mu.Unlock()
		if st != nil {
			// Best-effort rollback: if it fails, an unacknowledged spec
			// survives to the next Load — the same harmless outcome as a
			// crash right after Put.
			st.Remove(id) //nolint:errcheck
		}
		return "", fmt.Errorf("%w (%d live clusters)", ErrRegistryFull, n)
	}
	r.clusters[id] = &Handle{c: c, id: id, store: st, compactEvery: r.compactEvery}
	r.mu.Unlock()
	return id, nil
}

// Attach registers a rebuilt cluster under an externally minted id —
// the replication-mirror path, where the leader already assigned the id
// and the follower must reproduce it verbatim. Capacity is not checked
// (a mirror holds whatever the leader holds) and nothing is journaled;
// the handle inherits the registry's store, which is nil until Bind.
func (r *Registry) Attach(id string, c *Cluster) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.clusters[id]; ok {
		return fmt.Errorf("sim: cluster %q already attached", id)
	}
	r.clusters[id] = &Handle{c: c, id: id, store: r.store, compactEvery: r.compactEvery}
	if n, ok := idSeq(id); ok && n > r.seq {
		r.seq = n
	}
	return nil
}

// EnsureSeq raises the registry's id sequence — and its durable
// high-water bookkeeping — to at least n. Followers call it when a
// replicated meta record proves the leader reached n, so a promoted
// mirror never re-mints an id the old leader handed out, even when the
// cluster carrying the highest id was deleted before the feed reached
// this node.
func (r *Registry) EnsureSeq(n int) {
	r.mu.Lock()
	if n > r.seq {
		r.seq = n
	}
	r.mu.Unlock()
	r.metaMu.Lock()
	if n > r.metaSeq {
		r.metaSeq = n
	}
	r.metaMu.Unlock()
}

// Bind attaches a store to a detached registry (see
// LoadDetachedRegistry) so every future Add and Update journals — the
// promotion step that turns a follower's warm mirror into the
// authoritative store-backed registry without rebuilding a single
// cluster. walLens seeds each handle's journal-length counter (the
// records its store generation already holds) so compaction keeps firing
// on schedule; compactEvery <= 0 means DefaultCompactEvery. Bind is for
// registries not yet serving mutations — promotion flips the role to
// leader only after it returns.
func (r *Registry) Bind(st Store, compactEvery int, walLens map[string]int) {
	if compactEvery <= 0 {
		compactEvery = DefaultCompactEvery
	}
	r.mu.Lock()
	r.store = st
	r.compactEvery = compactEvery
	handles := make(map[string]*Handle, len(r.clusters))
	for id, h := range r.clusters {
		handles[id] = h
	}
	r.mu.Unlock()
	for id, h := range handles {
		h.mu.Lock()
		h.store = st
		h.compactEvery = compactEvery
		h.walLen = walLens[id]
		h.mu.Unlock()
	}
}

// SetCapacity changes the registry's Add-time capacity gate. A
// promoted mirror was built unbounded (it had to hold whatever the
// leader held); promotion re-imposes the serving node's own limit,
// which — like recovery — gates new Adds only and never evicts.
func (r *Registry) SetCapacity(n int) {
	r.mu.Lock()
	r.capacity = n
	r.mu.Unlock()
}

// persistSeqUpTo records n as the durable id high-water mark unless a
// concurrent Add already persisted something at least as high — the
// record must never move backwards.
func (r *Registry) persistSeqUpTo(n int) error {
	r.metaMu.Lock()
	defer r.metaMu.Unlock()
	if n <= r.metaSeq {
		return nil
	}
	if err := persistSeq(r.store, n); err != nil {
		return err
	}
	r.metaSeq = n
	return nil
}

// encodeSpec marshals a cluster's creation record.
func encodeSpec(c *Cluster) ([]byte, error) {
	spec, err := json.Marshal(c.Spec())
	if err != nil {
		return nil, fmt.Errorf("sim: encoding cluster spec: %w", err)
	}
	return spec, nil
}

// Get returns the handle for an id, or false for unknown (or removed)
// ids.
func (r *Registry) Get(id string) (*Handle, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.clusters[id]
	return h, ok
}

// Remove drops an id; it reports whether the id was live. The cluster
// holds no external resources beyond its durable record, which is
// deleted too — a non-nil error means the id is gone from the live table
// but may resurrect from the store on the next load. (A request still
// inside Do/Update finishes normally on its own reference.)
func (r *Registry) Remove(id string) (bool, error) {
	r.mu.Lock()
	_, ok := r.clusters[id]
	delete(r.clusters, id)
	st := r.store
	r.mu.Unlock()
	if !ok || st == nil {
		return ok, nil
	}
	if err := st.Remove(id); err != nil {
		return ok, fmt.Errorf("sim: removing cluster %q from store: %w", id, err)
	}
	return ok, nil
}

// Full reports whether the registry is at capacity — an advisory
// pre-check letting callers skip expensive cluster construction that Add
// would only reject; Add remains the authoritative gate.
func (r *Registry) Full() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.capacity > 0 && len(r.clusters) >= r.capacity
}

// SnapshotAll compacts every live cluster with a non-empty journal into
// a fresh snapshot — the shutdown-drain path, so a restart restores from
// snapshots alone instead of replaying WAL tails. Handles are snapshotted
// one at a time under their own locks; the first error is returned after
// attempting the rest.
func (r *Registry) SnapshotAll() error {
	r.mu.Lock()
	if r.store == nil {
		r.mu.Unlock()
		return nil
	}
	handles := make([]*Handle, 0, len(r.clusters))
	for _, h := range r.clusters {
		handles = append(handles, h)
	}
	r.mu.Unlock()
	var first error
	for _, h := range handles {
		h.mu.Lock()
		if h.walLen > 0 || h.dirty {
			if err := h.snapshotLocked(); err != nil {
				if first == nil {
					first = err
				}
			} else {
				h.dirty = false
			}
		}
		h.mu.Unlock()
	}
	return first
}

// Metrics snapshots every live cluster's activity counters, keyed by
// handle id. The counters are atomic and the handle's cluster reference
// is immutable, so no Handle.Do serialization is needed — a snapshot
// taken mid-request simply reads the counts so far.
func (r *Registry) Metrics() map[string]MetricsSnapshot {
	r.mu.Lock()
	handles := make(map[string]*Handle, len(r.clusters))
	for id, h := range r.clusters {
		handles[id] = h
	}
	r.mu.Unlock()
	out := make(map[string]MetricsSnapshot, len(handles))
	for id, h := range handles {
		out[id] = h.c.Metrics().Snapshot()
	}
	return out
}

// Len returns the number of live clusters.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.clusters)
}

// IDs returns the live ids in numeric creation order.
func (r *Registry) IDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.clusters))
	for id := range r.clusters {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return idOrder(out[i], out[j]) })
	return out
}
