// Package sim simulates the paper's distributed system model (Section 2):
// independent servers, each running one DFSM, all fed the same totally
// ordered event stream by the environment, with no communication during
// fault-free runs. Faults (crash or Byzantine) strike between events; the
// environment then pauses, the recovery coordinator collects the surviving
// states and runs Algorithm 3, and execution resumes.
//
// Event application is driven by the shared persistent worker pool
// (internal/exec) rather than a goroutine per server per batch: servers
// are sharded across the pool workers once at cluster construction, and
// each ApplyAll streams its event window through those shards, so the
// per-batch cost is a handful of task handoffs instead of a full
// goroutine fan-out. Small batches skip the pool entirely and run inline.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dfsm"
	"repro/internal/exec"
	"repro/internal/partition"
	"repro/internal/trace"
)

// server is one simulated process.
type server struct {
	name    string
	machine *dfsm.Machine
	// fusionIdx is -1 for originals, else the index into Cluster.fusion.
	fusionIdx int
	origIdx   int // -1 for fusion servers

	state   int
	crashed bool
	lying   bool
}

// Cluster is the simulated deployment: the original machines plus the
// fusion backups generated for the requested fault tolerance.
type Cluster struct {
	mu sync.Mutex

	sys    *core.System
	fusion []partition.P
	fms    []*dfsm.Machine

	// pool executes the event broadcast; shards are the contiguous
	// [lo,hi) server ranges distributed over it, computed once at
	// construction and reused by every ApplyAll.
	pool   *exec.Pool
	shards [][2]int

	servers []*server
	// oracle tracks the true state every server would have without faults;
	// it is the simulation's ground truth for verification, not visible to
	// recovery.
	oracle []int

	step    int
	rng     *rand.Rand
	f       int
	seed    int64
	metrics Metrics
}

// NewCluster builds a cluster over the given original machines that
// tolerates f crash faults (or ⌊f/2⌋ Byzantine faults): it computes the
// system, generates the minimal fusion with Algorithm 2, and starts every
// server in its initial state.
func NewCluster(originals []*dfsm.Machine, f int, seed int64) (*Cluster, error) {
	return NewClusterOn(exec.Default(), originals, f, seed)
}

// NewClusterOn is NewCluster running fusion generation and event
// broadcast on the given persistent pool instead of the shared default;
// fusion.Engine routes its clusters through here. The pool choice never
// changes simulation results: the same seed yields the same run.
func NewClusterOn(pool *exec.Pool, originals []*dfsm.Machine, f int, seed int64) (*Cluster, error) {
	sys, err := core.NewSystem(originals)
	if err != nil {
		return nil, err
	}
	F, err := core.GenerateFusion(sys, f, core.GenerateOptions{Pool: pool})
	if err != nil {
		return nil, err
	}
	fms, err := sys.FusionMachines(F, "F")
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		sys:    sys,
		fusion: F,
		fms:    fms,
		pool:   pool,
		rng:    rand.New(rand.NewSource(seed)),
		f:      f,
		seed:   seed,
	}
	for i, m := range sys.Machines {
		c.servers = append(c.servers, &server{
			name: m.Name(), machine: m, fusionIdx: -1, origIdx: i, state: m.Initial(),
		})
	}
	for i, m := range fms {
		c.servers = append(c.servers, &server{
			name: m.Name(), machine: m, fusionIdx: i, origIdx: -1, state: m.Initial(),
		})
	}
	c.oracle = make([]int, len(c.servers))
	for i, s := range c.servers {
		c.oracle[i] = s.state
	}
	// Shard the servers across the pool workers once; every subsequent
	// ApplyAll streams its event window through these fixed ranges.
	n := len(c.servers)
	nshards := pool.Workers()
	if nshards > n {
		nshards = n
	}
	for k := 0; k < nshards; k++ {
		lo, hi := k*n/nshards, (k+1)*n/nshards
		c.shards = append(c.shards, [2]int{lo, hi})
	}
	return c, nil
}

// System exposes the underlying fusion system.
func (c *Cluster) System() *core.System { return c.sys }

// Fusion returns the generated fusion partitions. The slice is a fresh
// defensive copy on every call (the cluster's own set must stay
// immutable); callers on hot paths should call once and retain the
// result rather than re-query per event batch. The partitions themselves
// are immutable values and are not deep-copied.
func (c *Cluster) Fusion() []partition.P { return append([]partition.P(nil), c.fusion...) }

// FusionMachines returns the materialized fusion machines. As with
// Fusion, the slice is a per-call defensive copy — cache it outside hot
// loops. The machines are immutable and shared, not cloned.
func (c *Cluster) FusionMachines() []*dfsm.Machine { return append([]*dfsm.Machine(nil), c.fms...) }

// ServerNames lists all server names, originals first.
func (c *Cluster) ServerNames() []string {
	out := make([]string, len(c.servers))
	for i, s := range c.servers {
		out[i] = s.name
	}
	return out
}

// Step returns the number of events applied so far.
func (c *Cluster) Step() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.step
}

// Apply broadcasts one event to every live server (crashed servers miss
// it, exactly as a failed process would; the paper recovers their state
// from the survivors, so the stream need not be replayed to them).
func (c *Cluster) Apply(event string) {
	c.ApplyAll([]string{event})
}

// applyPoolThreshold is the minimum number of server×event steps below
// which ApplyAll runs inline: tiny batches finish faster on the calling
// goroutine than any handoff to the pool could.
const applyPoolThreshold = 4096

// ApplyAll broadcasts a batch of events to every server. The window is
// streamed through the cluster's fixed server shards on the persistent
// worker pool — one task per shard per batch, amortizing the fan-out that
// a goroutine-per-server broadcast paid on every call — and the oracle
// advances in lockstep. An empty batch is an explicit no-op: no lock, no
// pool traffic, no step-counter or metrics change.
func (c *Cluster) ApplyAll(events []string) {
	if len(events) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.shards) <= 1 || len(events)*len(c.servers) < applyPoolThreshold {
		c.applyRange(0, len(c.servers), events)
	} else {
		c.pool.Run(len(c.shards), func(_ *exec.Ctx, k int) {
			c.applyRange(c.shards[k][0], c.shards[k][1], events)
		})
	}
	c.step += len(events)
	c.metrics.EventsApplied.Add(int64(len(events)))
}

// applyRange applies the event window to servers [lo, hi) — the body of
// one shard task. Shards are disjoint, so no synchronization is needed
// beyond the batch completion the pool provides.
func (c *Cluster) applyRange(lo, hi int, events []string) {
	for i := lo; i < hi; i++ {
		s := c.servers[i]
		for _, ev := range events {
			if !s.crashed {
				s.state = s.machine.Next(s.state, ev)
			}
		}
		// Oracle: replay from the oracle state regardless of faults. A
		// negative oracle entry means ground truth is unknown (a Restore
		// from a checkpoint taken mid-fault); it stays unknown until a
		// successful recovery resyncs it.
		st := c.oracle[i]
		if st >= 0 {
			for _, ev := range events {
				st = s.machine.Next(st, ev)
			}
			c.oracle[i] = st
		}
	}
}

// Inject applies a fault to the named server. Crash loses the state;
// Byzantine moves the server to a uniformly random *wrong* state (or leaves
// a one-state machine alone, which cannot lie).
func (c *Cluster) Inject(f trace.Fault) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.find(f.Server)
	if s == nil {
		return fmt.Errorf("sim: no server %q", f.Server)
	}
	c.metrics.FaultsInjected.Add(1)
	switch f.Kind {
	case trace.Crash:
		s.crashed = true
		s.state = -1
	case trace.Byzantine:
		n := s.machine.NumStates()
		if n < 2 {
			return nil
		}
		truth := s.state
		s.state = (truth + 1 + c.rng.Intn(n-1)) % n
		s.lying = true
	default:
		return fmt.Errorf("sim: unknown fault kind %v", f.Kind)
	}
	return nil
}

// injectByzantineAt replays a journaled Byzantine fault: the corrupted
// state was drawn from the live rng and recorded in the WAL, so replay
// sets it directly instead of re-drawing (the reconstructed rng's cursor
// need not match the one the dead process had advanced). lied is false
// for the recorded no-op on a one-state machine, which cannot lie.
func (c *Cluster) injectByzantineAt(name string, state int, lied bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.find(name)
	if s == nil {
		return fmt.Errorf("sim: no server %q", name)
	}
	if state < 0 || state >= s.machine.NumStates() {
		return fmt.Errorf("sim: recorded state %d out of range for %q", state, name)
	}
	c.metrics.FaultsInjected.Add(1)
	if lied {
		s.state = state
		s.lying = true
	}
	return nil
}

// serverStatus reports a server's current visible state and whether it is
// lying; used to record fault outcomes in the registry's journal.
func (c *Cluster) serverStatus(name string) (state int, lying bool, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.find(name)
	if s == nil {
		return 0, false, false
	}
	return s.state, s.lying, true
}

// oracleStates returns the fault-free ground-truth state per server name.
// It is part of the registry's durable snapshot (not of the public
// Checkpoint): persisting it keeps Verify faithful across a restart even
// when the snapshot was taken mid-fault.
func (c *Cluster) oracleStates() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.servers))
	for i, s := range c.servers {
		out[s.name] = c.oracle[i]
	}
	return out
}

// setOracle overwrites the oracle from a durable snapshot. Unknown names
// or out-of-range states are errors; missing names keep the oracle the
// Restore rebased.
func (c *Cluster) setOracle(states map[string]int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, s := range c.servers {
		st, ok := states[s.name]
		if !ok {
			continue
		}
		if st < -1 || st >= s.machine.NumStates() {
			return fmt.Errorf("sim: oracle state %d out of range for %q", st, s.name)
		}
		c.oracle[i] = st
	}
	return nil
}

func (c *Cluster) find(name string) *server {
	for _, s := range c.servers {
		if s.name == name {
			return s
		}
	}
	return nil
}

// RecoveryOutcome summarizes one recovery round.
type RecoveryOutcome struct {
	// TopState is the recovered ⊤-state.
	TopState int
	// Restored lists servers whose state was repaired (crashed or caught
	// lying), sorted by name.
	Restored []string
	// Liars is Algorithm 3's liar identification output.
	Liars []string
}

// Recover runs the paper's recovery protocol: collect reports from all
// non-crashed servers (liars report their corrupted state), vote with
// Algorithm 3, then restore every server — crashed, lying or healthy — to
// the state implied by the recovered ⊤-state. Returns an error when the
// faults exceed what the fusion tolerates (ambiguous vote).
func (c *Cluster) Recover() (*RecoveryOutcome, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	var reports []core.Report
	for _, s := range c.servers {
		if s.crashed {
			continue
		}
		var r core.Report
		var err error
		if s.fusionIdx >= 0 {
			r, err = core.ReportForPartition(s.name, c.fusion[s.fusionIdx], s.state)
		} else {
			r, err = c.sys.ReportFor(s.origIdx, s.state)
		}
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)
	}
	res, err := core.Recover(c.sys.N(), reports)
	if err != nil {
		c.metrics.FailedRecoveries.Add(1)
		return nil, err
	}
	c.metrics.Recoveries.Add(1)
	c.metrics.LiarsCaught.Add(int64(len(res.Liars)))

	out := &RecoveryOutcome{TopState: res.TopState, Liars: res.Liars}
	tuple := c.sys.Product.Proj[res.TopState]
	for i, s := range c.servers {
		var want int
		if s.fusionIdx >= 0 {
			want = c.fusion[s.fusionIdx].BlockOf(res.TopState)
		} else {
			want = tuple[s.origIdx]
		}
		if s.crashed || s.state != want {
			out.Restored = append(out.Restored, s.name)
		}
		s.state = want
		s.crashed = false
		s.lying = false
		// An unknown oracle entry (Restore from a mid-fault checkpoint)
		// resyncs here: within the fault budget the recovered state IS the
		// fault-free state, which is exactly what the oracle tracks.
		if c.oracle[i] < 0 {
			c.oracle[i] = want
		}
	}
	sort.Strings(out.Restored)
	c.metrics.ServersRestored.Add(int64(len(out.Restored)))
	return out, nil
}

// Verify compares every server's state against the fault-free oracle; it
// returns the names of divergent servers (empty = consistent).
func (c *Cluster) Verify() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var bad []string
	for i, s := range c.servers {
		if s.crashed || s.state != c.oracle[i] {
			bad = append(bad, s.name)
		}
	}
	return bad
}

// States returns the current visible state of each server (-1 when
// crashed), in ServerNames order. For inspection and the CLI.
func (c *Cluster) States() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, len(c.servers))
	for i, s := range c.servers {
		out[i] = s.state
	}
	return out
}

// RunResult is the outcome of a full scripted run.
type RunResult struct {
	Events     int
	Injected   []trace.Fault
	Outcome    *RecoveryOutcome
	Consistent bool
}

// Run drives a complete experiment: apply the stream until the schedule's
// cut, inject the faults, recover, apply the rest of the stream, and verify
// against the oracle.
func (c *Cluster) Run(events []string, sched trace.Schedule) (*RunResult, error) {
	cut := sched.AtStep
	if cut > len(events) {
		cut = len(events)
	}
	c.ApplyAll(events[:cut])
	for _, f := range sched.Faults {
		if err := c.Inject(f); err != nil {
			return nil, err
		}
	}
	out, err := c.Recover()
	if err != nil {
		return nil, err
	}
	c.ApplyAll(events[cut:])
	return &RunResult{
		Events:     len(events),
		Injected:   sched.Faults,
		Outcome:    out,
		Consistent: len(c.Verify()) == 0,
	}, nil
}
