package sim

import (
	"fmt"

	"repro/internal/dfsm"
	"repro/internal/exec"
)

// ClusterSpec is the JSON-serializable description from which a Cluster
// can be rebuilt: the original machine definitions (via dfsm's JSON
// form), the fault capacity, and the simulation seed. It is the durable
// creation record of the store-backed registry — the paper's
// "failure-resistant permanent storage" holds exactly this plus the
// event journal, and everything else (the fusion machines, the product,
// the running states) is deterministically recomputed from it.
type ClusterSpec struct {
	Machines []*dfsm.Machine `json:"machines"`
	F        int             `json:"f"`
	Seed     int64           `json:"seed"`
}

// Spec returns the cluster's creation record. The machines are shared,
// not cloned — they are immutable.
func (c *Cluster) Spec() *ClusterSpec {
	return &ClusterSpec{Machines: c.sys.Machines, F: c.f, Seed: c.seed}
}

// NewClusterFromSpec rebuilds a cluster from its spec on the shared
// default pool. Generation is deterministic, so the rebuilt cluster has
// the same servers, fusion machines, and initial states as the one the
// spec was taken from.
func NewClusterFromSpec(spec *ClusterSpec) (*Cluster, error) {
	return NewClusterFromSpecOn(exec.Default(), spec)
}

// NewClusterFromSpecOn is NewClusterFromSpec on a specific pool.
func NewClusterFromSpecOn(pool *exec.Pool, spec *ClusterSpec) (*Cluster, error) {
	if spec == nil {
		return nil, fmt.Errorf("sim: nil cluster spec")
	}
	return NewClusterOn(pool, spec.Machines, spec.F, spec.Seed)
}
