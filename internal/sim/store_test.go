package sim

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/exec"
	"repro/internal/store"
	"repro/internal/trace"
)

// TestClusterSpecRoundTrip: a cluster rebuilt from its marshalled spec
// has the same servers, fusion, and initial states — the determinism the
// durable registry leans on.
func TestClusterSpecRoundTrip(t *testing.T) {
	c := newTestCluster(t, 1)
	data, err := json.Marshal(c.Spec())
	if err != nil {
		t.Fatal(err)
	}
	var spec ClusterSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		t.Fatal(err)
	}
	back, err := NewClusterFromSpec(&spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.ServerNames(), c.ServerNames()) {
		t.Fatalf("servers diverge: %v vs %v", back.ServerNames(), c.ServerNames())
	}
	if !reflect.DeepEqual(back.States(), c.States()) {
		t.Fatalf("states diverge: %v vs %v", back.States(), c.States())
	}
	cf, bf := c.Fusion(), back.Fusion()
	if len(cf) != len(bf) {
		t.Fatalf("fusion count diverges: %d vs %d", len(cf), len(bf))
	}
	for i := range cf {
		if !reflect.DeepEqual(cf[i].Blocks(), bf[i].Blocks()) {
			t.Fatalf("fusion %d diverges", i)
		}
	}
	// Same seed: the rebuilt cluster draws the same Byzantine corruption.
	if err := c.Inject(trace.Fault{Server: "F1", Kind: trace.Byzantine}); err != nil {
		t.Fatal(err)
	}
	if err := back.Inject(trace.Fault{Server: "F1", Kind: trace.Byzantine}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.States(), c.States()) {
		t.Fatalf("seeded corruption diverges: %v vs %v", back.States(), c.States())
	}
}

// TestErrRegistryFull: Add's capacity rejection is the typed error, so
// services can map it without string matching.
func TestErrRegistryFull(t *testing.T) {
	r := NewRegistry(1)
	if _, err := r.Add(registryCluster(t)); err != nil {
		t.Fatal(err)
	}
	_, err := r.Add(registryCluster(t))
	if !errors.Is(err, ErrRegistryFull) {
		t.Fatalf("Add beyond capacity = %v, want ErrRegistryFull", err)
	}
}

// driveStored runs a representative mutating workload through a stored
// registry: events, a crash, a Byzantine corruption, a recovery, more
// events. Returns the handle id.
func driveStored(t *testing.T, r *Registry) string {
	t.Helper()
	id, err := r.Add(registryCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	h, _ := r.Get(id)
	err = h.Update(func(tx *Tx) error {
		tx.ApplyAll([]string{"0", "1", "1", "0"})
		if err := tx.Inject(trace.Fault{Server: "F1", Kind: trace.Crash}); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = h.Update(func(tx *Tx) error {
		tx.ApplyAll([]string{"1", "0"})
		if err := tx.Inject(trace.Fault{Server: "0-Counter", Kind: trace.Byzantine}); err != nil {
			return err
		}
		if _, err := tx.Recover(); err != nil {
			return err
		}
		tx.ApplyAll([]string{"1", "1", "1"})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// assertSameCluster compares everything a restart must preserve.
func assertSameCluster(t *testing.T, want, got *Cluster) {
	t.Helper()
	if !reflect.DeepEqual(got.ServerNames(), want.ServerNames()) {
		t.Fatalf("servers diverge: %v vs %v", got.ServerNames(), want.ServerNames())
	}
	if got.Step() != want.Step() {
		t.Fatalf("step diverges: %d vs %d", got.Step(), want.Step())
	}
	if !reflect.DeepEqual(got.States(), want.States()) {
		t.Fatalf("states diverge: %v vs %v", got.States(), want.States())
	}
	if got.Metrics().Snapshot() != want.Metrics().Snapshot() {
		t.Fatalf("metrics diverge: %+v vs %+v", got.Metrics().Snapshot(), want.Metrics().Snapshot())
	}
	if !reflect.DeepEqual(got.Verify(), want.Verify()) {
		t.Fatalf("verify diverges: %v vs %v", got.Verify(), want.Verify())
	}
}

// TestStoredRegistryReload is the tentpole's sim-level guarantee: a
// registry reloaded from its store is bit-identical — ids, steps,
// per-server states, metrics, and future behavior.
func TestStoredRegistryReload(t *testing.T) {
	for _, tc := range []struct {
		name         string
		compactEvery int
	}{
		{"wal-replay", 1000},   // no compaction: pure WAL tail replay
		{"compact-every-2", 2}, // aggressive compaction: snapshot + short tails
	} {
		t.Run(tc.name, func(t *testing.T) {
			st := store.NewMem()
			r := NewStoredRegistry(0, st, tc.compactEvery)
			id := driveStored(t, r)

			r2, err := LoadRegistry(exec.Default(), 0, st, tc.compactEvery)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r2.IDs(), r.IDs()) {
				t.Fatalf("ids diverge: %v vs %v", r2.IDs(), r.IDs())
			}
			h, _ := r.Get(id)
			h2, ok := r2.Get(id)
			if !ok {
				t.Fatalf("reloaded registry lost %s", id)
			}
			assertSameCluster(t, h.c, h2.c)

			// The reloaded registry keeps behaving like the original:
			// same window, same resulting states, and the id sequence
			// continues without reuse.
			if err := h.Update(func(tx *Tx) error { tx.ApplyAll([]string{"0", "1"}); return nil }); err != nil {
				t.Fatal(err)
			}
			if err := h2.Update(func(tx *Tx) error { tx.ApplyAll([]string{"0", "1"}); return nil }); err != nil {
				t.Fatal(err)
			}
			assertSameCluster(t, h.c, h2.c)
			next, err := r2.Add(registryCluster(t))
			if err != nil {
				t.Fatal(err)
			}
			if next != "c2" {
				t.Fatalf("id after reload = %s, want c2", next)
			}
		})
	}
}

// TestFailedRecoveryCounterSurvivesReload: an ambiguous vote restores
// nothing but counts a failed recovery, and that counter must not
// regress across a restart (Prometheus rate() over the restart window
// would silently lie).
func TestFailedRecoveryCounterSurvivesReload(t *testing.T) {
	st := store.NewMem()
	r := NewStoredRegistry(0, st, 1000)
	id, err := r.Add(registryCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	h, _ := r.Get(id)
	err = h.Update(func(tx *Tx) error {
		for _, name := range []string{"0-Counter", "1-Counter", "F1"} {
			if err := tx.Inject(trace.Fault{Server: name, Kind: trace.Crash}); err != nil {
				return err
			}
		}
		if _, err := tx.Recover(); err == nil {
			return errors.New("recovery with every server crashed succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.c.Metrics().Snapshot().FailedRecoveries; got != 1 {
		t.Fatalf("live FailedRecoveries = %d, want 1", got)
	}
	r2, err := LoadRegistry(exec.Default(), 0, st, 1000)
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := r2.Get(id)
	assertSameCluster(t, h.c, h2.c)
}

// findRec locates one cluster's record in a store Load (which also
// carries the registry's reserved _meta record).
func findRec(t *testing.T, recs []StoreRecord, id string) StoreRecord {
	t.Helper()
	for _, r := range recs {
		if r.ID == id {
			return r
		}
	}
	t.Fatalf("no record for %s in %d records", id, len(recs))
	return StoreRecord{}
}

// TestStoredRegistryCompaction: crossing the WAL threshold snapshots and
// truncates; the store never holds more than compactEvery-1 records
// after an Update, and reload from the compacted state is identical.
func TestStoredRegistryCompaction(t *testing.T) {
	st := store.NewMem()
	r := NewStoredRegistry(0, st, 3)
	id, err := r.Add(registryCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	h, _ := r.Get(id)
	for i := 0; i < 7; i++ {
		if err := h.Update(func(tx *Tx) error { tx.ApplyAll([]string{"0"}); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	rec := findRec(t, recs, id)
	if rec.Snapshot == nil {
		t.Fatal("no snapshot after crossing the compaction threshold")
	}
	if len(rec.WAL) >= 3 {
		t.Fatalf("WAL not compacted: %d records", len(rec.WAL))
	}
	r2, err := LoadRegistry(exec.Default(), 0, st, 3)
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := r2.Get(id)
	assertSameCluster(t, h.c, h2.c)
}

// TestSnapshotAll: the shutdown drain compacts pending journals so a
// reload replays nothing, and skips clusters with empty journals.
func TestSnapshotAll(t *testing.T) {
	st := store.NewMem()
	r := NewStoredRegistry(0, st, 1000)
	id := driveStored(t, r)
	if err := r.SnapshotAll(); err != nil {
		t.Fatal(err)
	}
	recs, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	rec := findRec(t, recs, id)
	if rec.Snapshot == nil || len(rec.WAL) != 0 {
		t.Fatalf("drain did not compact: snap=%v wal=%d", rec.Snapshot != nil, len(rec.WAL))
	}
	r2, err := LoadRegistry(exec.Default(), 0, st, 1000)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := r.Get(id)
	h2, _ := r2.Get(id)
	assertSameCluster(t, h.c, h2.c)
}

// TestStoredRegistryRemove: Remove deletes the durable record too — a
// deleted cluster does not resurrect on reload.
func TestStoredRegistryRemove(t *testing.T) {
	st := store.NewMem()
	r := NewStoredRegistry(0, st, 0)
	id := driveStored(t, r)
	if ok, err := r.Remove(id); !ok || err != nil {
		t.Fatalf("Remove = %v, %v", ok, err)
	}
	r2, err := LoadRegistry(exec.Default(), 0, st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 0 {
		t.Fatalf("removed cluster resurrected: %v", r2.IDs())
	}
	// The freed capacity is real but the sequence is not rewound within
	// the original registry's lifetime.
	next, err := r.Add(registryCluster(t))
	if err != nil || next != "c2" {
		t.Fatalf("Add after Remove = %q, %v; want c2", next, err)
	}
}

// TestTxRestoreRebases: a Restore inside Update compacts on the spot —
// the rewound state is the new durable baseline and the pre-restore
// records of the sequence never replay on top of it.
func TestTxRestoreRebases(t *testing.T) {
	st := store.NewMem()
	r := NewStoredRegistry(0, st, 1000)
	id, err := r.Add(registryCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	h, _ := r.Get(id)
	var cp *Checkpoint
	if err := h.Update(func(tx *Tx) error {
		tx.ApplyAll([]string{"0", "1", "0"})
		cp = tx.Cluster().Snapshot()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.Update(func(tx *Tx) error {
		tx.ApplyAll([]string{"1", "1"})
		return tx.Restore(cp)
	}); err != nil {
		t.Fatal(err)
	}
	recs, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	rec := findRec(t, recs, id)
	if rec.Snapshot == nil || len(rec.WAL) != 0 {
		t.Fatalf("restore did not rebase: snap=%v wal=%d", rec.Snapshot != nil, len(rec.WAL))
	}
	r2, err := LoadRegistry(exec.Default(), 0, st, 1000)
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := r2.Get(id)
	assertSameCluster(t, h.c, h2.c)
	if h2.c.Step() != 3 {
		t.Fatalf("reloaded step = %d, want the restored 3", h2.c.Step())
	}
}

// TestStoredRegistryFileBackend runs the reload round trip on the real
// file backend, reopening the directory the way a restarted process
// would.
func TestStoredRegistryFileBackend(t *testing.T) {
	root := t.TempDir()
	st, err := store.NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	r := NewStoredRegistry(0, st, 4)
	id := driveStored(t, r)

	st2, err := store.NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := LoadRegistry(exec.Default(), 0, st2, 4)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := r.Get(id)
	h2, ok := r2.Get(id)
	if !ok {
		t.Fatalf("file backend lost %s", id)
	}
	assertSameCluster(t, h.c, h2.c)
}

// TestIDsNotReusedAcrossReload: deleting the highest-id cluster and
// reloading must not re-mint that id — a client still holding the dead
// handle would silently address a different cluster. The durable _meta
// high-water mark guards this.
func TestIDsNotReusedAcrossReload(t *testing.T) {
	st := store.NewMem()
	r := NewStoredRegistry(0, st, 0)
	for i := 0; i < 3; i++ {
		if _, err := r.Add(registryCluster(t)); err != nil {
			t.Fatal(err)
		}
	}
	if ok, err := r.Remove("c3"); !ok || err != nil {
		t.Fatalf("Remove = %v, %v", ok, err)
	}
	r2, err := LoadRegistry(exec.Default(), 0, st, 0)
	if err != nil {
		t.Fatal(err)
	}
	next, err := r2.Add(registryCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	if next != "c4" {
		t.Fatalf("id after delete+reload = %s, want c4 (c3 must stay dead)", next)
	}
}

// flakyStore wraps a Store and fails AppendEvents while tripped — the
// transient-disk-error harness for the dirty-handle healing path.
type flakyStore struct {
	Store
	failAppends bool
}

func (f *flakyStore) AppendEvents(id string, recs [][]byte) error {
	if f.failAppends {
		return errors.New("injected append failure")
	}
	return f.Store.AppendEvents(id, recs)
}

// TestDirtyHandleHealsBySnapshot: a failed append leaves the store
// behind the in-memory cluster; later windows must NOT be appended on
// top of the gap (that would replay to divergent state). The handle
// heals with a full snapshot on the next Update, after which reload
// matches the live cluster — including the window whose append failed.
func TestDirtyHandleHealsBySnapshot(t *testing.T) {
	mem := store.NewMem()
	st := &flakyStore{Store: mem}
	r := NewStoredRegistry(0, st, 1000)
	id, err := r.Add(registryCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	h, _ := r.Get(id)
	if err := h.Update(func(tx *Tx) error { tx.ApplyAll([]string{"0", "1"}); return nil }); err != nil {
		t.Fatal(err)
	}

	st.failAppends = true
	err = h.Update(func(tx *Tx) error { tx.ApplyAll([]string{"1", "1", "1"}); return nil })
	if err == nil {
		t.Fatal("failed append not surfaced")
	}
	// The disk recovers; the next window must heal the gap, not widen it.
	st.failAppends = false
	if err := h.Update(func(tx *Tx) error { tx.ApplyAll([]string{"0"}); return nil }); err != nil {
		t.Fatalf("healing update: %v", err)
	}
	r2, err := LoadRegistry(exec.Default(), 0, mem, 1000)
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := r2.Get(id)
	assertSameCluster(t, h.c, h2.c)
	if h2.c.Step() != 6 {
		t.Fatalf("reloaded step = %d, want 6 (lost window healed)", h2.c.Step())
	}
}
