package sim

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestMetricsCountActivity(t *testing.T) {
	// One crash plus one Byzantine lie costs crash + 2·byz = 3 units of
	// distance, so the fusion must be generated for f = 3 (dmin = 4).
	c := newTestCluster(t, 3)
	c.ApplyAll([]string{"0", "1", "0"})
	c.Apply("1")
	if err := c.Inject(trace.Fault{Server: "0-Counter", Kind: trace.Crash}); err != nil {
		t.Fatal(err)
	}
	if err := c.Inject(trace.Fault{Server: "1-Counter", Kind: trace.Byzantine}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	s := c.Metrics().Snapshot()
	if s.EventsApplied != 4 {
		t.Errorf("EventsApplied = %d, want 4", s.EventsApplied)
	}
	if s.FaultsInjected != 2 {
		t.Errorf("FaultsInjected = %d, want 2", s.FaultsInjected)
	}
	if s.Recoveries != 1 || s.FailedRecoveries != 0 {
		t.Errorf("Recoveries = %d/%d", s.Recoveries, s.FailedRecoveries)
	}
	if s.ServersRestored < 2 {
		t.Errorf("ServersRestored = %d, want ≥ 2", s.ServersRestored)
	}
	if s.LiarsCaught != 1 {
		t.Errorf("LiarsCaught = %d, want 1", s.LiarsCaught)
	}
	if !strings.Contains(s.String(), "events=4") {
		t.Errorf("String = %q", s.String())
	}
}

func TestMetricsFailedRecovery(t *testing.T) {
	c := newTestCluster(t, 1)
	c.Inject(trace.Fault{Server: "0-Counter", Kind: trace.Crash})
	c.Inject(trace.Fault{Server: "1-Counter", Kind: trace.Crash})
	if _, err := c.Recover(); err == nil {
		t.Fatal("over-budget recovery succeeded")
	}
	if got := c.Metrics().Snapshot().FailedRecoveries; got != 1 {
		t.Errorf("FailedRecoveries = %d", got)
	}
}
