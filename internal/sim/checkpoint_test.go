package sim

import (
	"encoding/json"
	"testing"

	"repro/internal/trace"
)

func TestSnapshotRestore(t *testing.T) {
	c := newTestCluster(t, 1)
	c.ApplyAll([]string{"0", "1", "0"})
	cp := c.Snapshot()
	if cp.Step != 3 {
		t.Fatalf("checkpoint step %d", cp.Step)
	}

	c.ApplyAll([]string{"1", "1", "1"})
	if err := c.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if c.Step() != 3 {
		t.Fatalf("restored step %d", c.Step())
	}
	if bad := c.Verify(); len(bad) != 0 {
		t.Fatalf("restore diverged: %v", bad)
	}
	// Continue after restore: behaviour matches a fresh run of the prefix.
	c.ApplyAll([]string{"0"})
	states := c.States()
	if states[0] != 0 { // three 0s total: 3 mod 3 = 0
		t.Errorf("0-Counter at %d after restore+apply, want 0", states[0])
	}
}

func TestRestoreValidation(t *testing.T) {
	c := newTestCluster(t, 1)
	if err := c.Restore(&Checkpoint{States: map[string]int{"x": 0}}); err == nil {
		t.Error("short checkpoint accepted")
	}
	cp := c.Snapshot()
	delete(cp.States, "F1")
	cp.States["ghost"] = 0
	if err := c.Restore(cp); err == nil {
		t.Error("checkpoint with wrong server accepted")
	}
	cp2 := c.Snapshot()
	cp2.States["F1"] = 99
	if err := c.Restore(cp2); err == nil {
		t.Error("out-of-range state accepted")
	}
}

func TestCheckpointJSONRoundTrip(t *testing.T) {
	c := newTestCluster(t, 1)
	c.ApplyAll([]string{"0", "1"})
	cp := c.Snapshot()
	data, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var back Checkpoint
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Step != cp.Step || len(back.States) != len(cp.States) {
		t.Fatalf("round trip lost data: %+v vs %+v", back, cp)
	}
	if err := c.Restore(&back); err != nil {
		t.Fatalf("restore from unmarshalled checkpoint: %v", err)
	}
}

func TestReplayRecoverMatchesFusionRecovery(t *testing.T) {
	c := newTestCluster(t, 1)
	j := NewJournal(c.Snapshot())
	c.ApplyAllJournaled(j, []string{"0", "1", "1", "0", "0"})

	// Crash the 0-Counter.
	if err := c.Inject(trace.Fault{Server: "0-Counter", Kind: trace.Crash}); err != nil {
		t.Fatal(err)
	}
	// Replay-based recovery from the journal.
	replayed, err := c.ReplayRecover(j, "0-Counter")
	if err != nil {
		t.Fatal(err)
	}
	// Fusion-based recovery.
	if _, err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	states := c.States()
	if states[0] != replayed {
		t.Fatalf("fusion recovered %d, replay recovered %d", states[0], replayed)
	}
}

func TestReplayRecoverErrors(t *testing.T) {
	c := newTestCluster(t, 1)
	j := NewJournal(c.Snapshot())
	if _, err := c.ReplayRecover(j, "ghost"); err == nil {
		t.Error("unknown server accepted")
	}
	delete(j.Base.States, "0-Counter")
	if _, err := c.ReplayRecover(j, "0-Counter"); err == nil {
		t.Error("missing base state accepted")
	}
	// A base that checkpointed a crashed server cannot replay.
	c2 := newTestCluster(t, 1)
	c2.Inject(trace.Fault{Server: "0-Counter", Kind: trace.Crash})
	j2 := NewJournal(c2.Snapshot())
	if _, err := c2.ReplayRecover(j2, "0-Counter"); err == nil {
		t.Error("crashed base state accepted")
	}
}
