package sim

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/trace"
)

func TestSnapshotRestore(t *testing.T) {
	c := newTestCluster(t, 1)
	c.ApplyAll([]string{"0", "1", "0"})
	cp := c.Snapshot()
	if cp.Step != 3 {
		t.Fatalf("checkpoint step %d", cp.Step)
	}

	c.ApplyAll([]string{"1", "1", "1"})
	if err := c.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if c.Step() != 3 {
		t.Fatalf("restored step %d", c.Step())
	}
	if bad := c.Verify(); len(bad) != 0 {
		t.Fatalf("restore diverged: %v", bad)
	}
	// Continue after restore: behaviour matches a fresh run of the prefix.
	c.ApplyAll([]string{"0"})
	states := c.States()
	if states[0] != 0 { // three 0s total: 3 mod 3 = 0
		t.Errorf("0-Counter at %d after restore+apply, want 0", states[0])
	}
}

func TestRestoreValidation(t *testing.T) {
	c := newTestCluster(t, 1)
	if err := c.Restore(&Checkpoint{States: map[string]int{"x": 0}}); err == nil {
		t.Error("short checkpoint accepted")
	}
	cp := c.Snapshot()
	delete(cp.States, "F1")
	cp.States["ghost"] = 0
	if err := c.Restore(cp); err == nil {
		t.Error("checkpoint with wrong server accepted")
	}
	cp2 := c.Snapshot()
	cp2.States["F1"] = 99
	if err := c.Restore(cp2); err == nil {
		t.Error("out-of-range state accepted")
	}
}

func TestCheckpointJSONRoundTrip(t *testing.T) {
	c := newTestCluster(t, 1)
	c.ApplyAll([]string{"0", "1"})
	cp := c.Snapshot()
	data, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var back Checkpoint
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Step != cp.Step || len(back.States) != len(cp.States) {
		t.Fatalf("round trip lost data: %+v vs %+v", back, cp)
	}
	if err := c.Restore(&back); err != nil {
		t.Fatalf("restore from unmarshalled checkpoint: %v", err)
	}
}

func TestReplayRecoverMatchesFusionRecovery(t *testing.T) {
	c := newTestCluster(t, 1)
	j := NewJournal(c.Snapshot())
	c.ApplyAllJournaled(j, []string{"0", "1", "1", "0", "0"})

	// Crash the 0-Counter.
	if err := c.Inject(trace.Fault{Server: "0-Counter", Kind: trace.Crash}); err != nil {
		t.Fatal(err)
	}
	// Replay-based recovery from the journal.
	replayed, err := c.ReplayRecover(j, "0-Counter")
	if err != nil {
		t.Fatal(err)
	}
	// Fusion-based recovery.
	if _, err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	states := c.States()
	if states[0] != replayed {
		t.Fatalf("fusion recovered %d, replay recovered %d", states[0], replayed)
	}
}

// TestSnapshotMidFaultRestore: a checkpoint taken while a server is
// crashed restores it crashed (state -1), the unknown oracle entry sits
// out subsequent event replay instead of panicking, and the next
// successful recovery repairs both the server and the oracle. This is
// the exact path the durable registry's WAL replay takes when a snapshot
// lands between a fault and its recovery.
func TestSnapshotMidFaultRestore(t *testing.T) {
	c := newTestCluster(t, 1)
	c.ApplyAll([]string{"0", "1", "0"})
	if err := c.Inject(trace.Fault{Server: "1-Counter", Kind: trace.Crash}); err != nil {
		t.Fatal(err)
	}
	cp := c.Snapshot()
	if cp.States["1-Counter"] != -1 {
		t.Fatalf("mid-fault checkpoint state = %d, want -1", cp.States["1-Counter"])
	}

	// Diverge, then rewind to the mid-fault checkpoint.
	c.ApplyAll([]string{"1", "1"})
	if err := c.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if states := c.States(); states[1] != -1 {
		t.Fatalf("restored state = %d, want crashed -1", states[1])
	}
	// Events after a mid-fault restore must not panic on the unknown
	// oracle entry, and the crashed server still misses them.
	c.ApplyAll([]string{"0", "1"})
	if states := c.States(); states[1] != -1 {
		t.Fatalf("crashed server advanced after restore: %d", states[1])
	}
	// Recovery repairs the server and resyncs the oracle: the cluster is
	// fully consistent again.
	if _, err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	if bad := c.Verify(); len(bad) != 0 {
		t.Fatalf("inconsistent after mid-fault restore + recover: %v", bad)
	}
	// And the oracle is live again: further events keep it in lockstep.
	c.ApplyAll([]string{"1", "0"})
	if bad := c.Verify(); len(bad) != 0 {
		t.Fatalf("oracle dead after resync: %v", bad)
	}
}

// TestJournalJSONRoundTrip: a journal (base checkpoint + events)
// round-trips through JSON and replays to the same state — the property
// the WAL's durable form leans on.
func TestJournalJSONRoundTrip(t *testing.T) {
	c := newTestCluster(t, 1)
	c.ApplyAll([]string{"0"})
	j := NewJournal(c.Snapshot())
	c.ApplyAllJournaled(j, []string{"1", "0", "0", "1"})

	data, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	var back Journal
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Base == nil || back.Base.Step != j.Base.Step ||
		len(back.Base.States) != len(j.Base.States) || len(back.Events) != len(j.Events) {
		t.Fatalf("round trip lost data: %+v vs %+v", back, j)
	}
	if err := c.Inject(trace.Fault{Server: "0-Counter", Kind: trace.Crash}); err != nil {
		t.Fatal(err)
	}
	want, err := c.ReplayRecover(j, "0-Counter")
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ReplayRecover(&back, "0-Counter")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("unmarshalled journal replays to %d, original to %d", got, want)
	}
}

// TestReplayRecoverAfterRestore: rewind to the journal's base, re-apply
// the journal, and replay-based recovery still reconstructs the live
// state — restore and replay compose.
func TestReplayRecoverAfterRestore(t *testing.T) {
	c := newTestCluster(t, 1)
	c.ApplyAll([]string{"0", "1"})
	j := NewJournal(c.Snapshot())
	c.ApplyAllJournaled(j, []string{"1", "0", "1"})
	preStates := c.States()

	if err := c.Restore(j.Base); err != nil {
		t.Fatal(err)
	}
	c.ApplyAll(j.Events)
	if !reflect.DeepEqual(c.States(), preStates) {
		t.Fatalf("restore + journal replay diverged: %v vs %v", c.States(), preStates)
	}
	if err := c.Inject(trace.Fault{Server: "1-Counter", Kind: trace.Crash}); err != nil {
		t.Fatal(err)
	}
	replayed, err := c.ReplayRecover(j, "1-Counter")
	if err != nil {
		t.Fatal(err)
	}
	if replayed != preStates[1] {
		t.Fatalf("ReplayRecover after restore = %d, want %d", replayed, preStates[1])
	}
}

func TestReplayRecoverErrors(t *testing.T) {
	c := newTestCluster(t, 1)
	j := NewJournal(c.Snapshot())
	if _, err := c.ReplayRecover(j, "ghost"); err == nil {
		t.Error("unknown server accepted")
	}
	delete(j.Base.States, "0-Counter")
	if _, err := c.ReplayRecover(j, "0-Counter"); err == nil {
		t.Error("missing base state accepted")
	}
	// A base that checkpointed a crashed server cannot replay.
	c2 := newTestCluster(t, 1)
	c2.Inject(trace.Fault{Server: "0-Counter", Kind: trace.Crash})
	j2 := NewJournal(c2.Snapshot())
	if _, err := c2.ReplayRecover(j2, "0-Counter"); err == nil {
		t.Error("crashed base state accepted")
	}
}
