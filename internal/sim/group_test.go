package sim

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/store"
)

// TestConcurrentUpdatesGroupCommit drives many handles' Updates
// concurrently against a group-commit store — the coalescing path, where
// Update releases the handle lock before parking on the batch — and
// checks the two things that matter: every acknowledged Update replays
// after a reload (per-handle states identical), and the concurrent
// appends actually shared fsyncs. Run it under -race and it also vouches
// for the lock discipline across stage/park/compact.
func TestConcurrentUpdatesGroupCommit(t *testing.T) {
	// The OnFlush sleep gives every commit tick a floor latency, like a
	// real disk's fsync: while one batch is "on the disk", concurrent
	// Updates must pile onto the next one. Without it, a fast tmpfs can
	// serialize the whole run and the coalescing assertion gets flaky.
	st, err := store.NewDirWith(t.TempDir(), store.DirOptions{
		GroupCommit: true,
		OnFlush:     func(store.FlushStats) { time.Sleep(500 * time.Microsecond) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// compactEvery 8 forces snapshot compactions to interleave with the
	// batched appends mid-run, exercising generation supersession and the
	// Tee-free ordering in anger.
	r := NewStoredRegistry(0, st, 8)
	const handles, updates = 8, 20
	ids := make([]string, handles)
	for i := range ids {
		id, err := r.Add(registryCluster(t))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	errs := make([]error, handles)
	for i, id := range ids {
		h, ok := r.Get(id)
		if !ok {
			t.Fatalf("handle %s missing", id)
		}
		wg.Add(1)
		go func(i int, h *Handle) {
			defer wg.Done()
			for n := 0; n < updates; n++ {
				if err := h.Update(func(tx *Tx) error {
					tx.ApplyAll([]string{"0", "1", fmt.Sprint(n % 2)})
					return nil
				}); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, h)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("handle %s: %v", ids[i], err)
		}
	}
	// Coalescing check: every Update stages once, so flushes == stages
	// would mean zero batching. With 8 goroutines parked behind each
	// other's fsyncs at least some batches must carry several stages.
	ws := st.WALStats()
	if stages := int64(handles * updates); ws.Flushes >= stages {
		t.Fatalf("no coalescing: %d flushes for %d staged appends (%d records)",
			ws.Flushes, stages, ws.Records)
	}

	r2, err := LoadRegistry(exec.Default(), 0, st, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		h, _ := r.Get(id)
		h2, ok := r2.Get(id)
		if !ok {
			t.Fatalf("reload lost %s", id)
		}
		if !reflect.DeepEqual(h.c.States(), h2.c.States()) {
			t.Fatalf("%s diverges after reload: %v vs %v", id, h.c.States(), h2.c.States())
		}
		if h.c.Step() != h2.c.Step() {
			t.Fatalf("%s step diverges: %d vs %d", id, h.c.Step(), h2.c.Step())
		}
	}
}
