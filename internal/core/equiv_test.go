package core_test

// Property tests pinning the optimization equivalences of the
// allocation-light hot path: the guarded merge-closure evaluation, the
// incremental fault-graph bookkeeping, and the hashed candidate dedup must
// all be observationally identical to their straightforward counterparts.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dfsm"
	"repro/internal/partition"
)

// randomEquivSystem builds a small random multi-machine system over a
// shared alphabet, retrying until the top is within the size budget.
func randomEquivSystem(t *testing.T, rng *rand.Rand, maxTop int) *core.System {
	t.Helper()
	events := []string{"a", "b"}
	for {
		n := 2 + rng.Intn(2)
		ms := make([]*dfsm.Machine, n)
		for i := range ms {
			ms[i] = dfsm.RandomMachine(rng, fmt.Sprintf("M%d", i), 2+rng.Intn(3), events)
		}
		sys, err := core.NewSystem(ms)
		if err != nil {
			t.Fatal(err)
		}
		if sys.N() <= maxTop {
			return sys
		}
	}
}

// TestGuardedMergeClosuresEquivalence checks, along full Algorithm 2
// descents of random systems, that MergeClosuresGuarded (abort-early
// closure with the forbidden-partner index) returns exactly the candidates
// of MergeClosures filtered by Covers — same partitions, same order.
func TestGuardedMergeClosuresEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		sys := randomEquivSystem(t, rng, 48)
		g := core.BuildFaultGraph(sys.N(), sys.Parts)
		required := g.WeakestEdges()
		forbidden := make([][2]int, len(required))
		for i, e := range required {
			forbidden[i] = [2]int{e.I, e.J}
		}
		covers := func(p partition.P) bool { return core.Covers(p, required) }

		m := partition.Singletons(sys.N())
		for m.NumBlocks() > 1 {
			guarded := partition.MergeClosuresGuarded(sys.Top, m, forbidden)
			plain := partition.MergeClosures(sys.Top, m, covers)
			if len(guarded) != len(plain) {
				t.Fatalf("trial %d: guarded returned %d candidates, unguarded %d", trial, len(guarded), len(plain))
			}
			for i := range guarded {
				if !guarded[i].Equal(plain[i]) {
					t.Fatalf("trial %d: candidate %d differs: guarded %s vs unguarded %s",
						trial, i, guarded[i], plain[i])
				}
			}
			if len(guarded) == 0 {
				break
			}
			m = guarded[0]
			for _, c := range guarded[1:] {
				if c.Less(m) {
					m = c
				}
			}
		}
	}
}

// TestFaultGraphIncrementalEquivalence checks that the histogram-backed
// incremental Add/Remove bookkeeping (cached dmin, sized WeakestEdges)
// agrees with a from-scratch BuildFaultGraph after every mutation.
func TestFaultGraphIncrementalEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(24)
		var parts []partition.P
		for i := 0; i < 8; i++ {
			switch i {
			case 0:
				parts = append(parts, partition.Single(n)) // exercises the ⊥ early-skip
			case 1:
				parts = append(parts, partition.Singletons(n))
			default:
				assign := make([]int, n)
				blocks := 1 + rng.Intn(n)
				for j := range assign {
					assign[j] = rng.Intn(blocks)
				}
				parts = append(parts, partition.FromAssignment(assign))
			}
		}

		g := core.NewFaultGraph(n)
		for i, p := range parts {
			g.Add(p)
			assertGraphEqual(t, trial, fmt.Sprintf("after add %d", i), g, core.BuildFaultGraph(n, parts[:i+1]))
		}
		// Remove in a shuffled order; compare with a rebuild of the rest.
		order := rng.Perm(len(parts))
		remaining := append([]partition.P(nil), parts...)
		for _, idx := range order {
			victim := parts[idx]
			g.Remove(victim)
			for j, q := range remaining {
				if q.Equal(victim) {
					remaining = append(remaining[:j], remaining[j+1:]...)
					break
				}
			}
			assertGraphEqual(t, trial, fmt.Sprintf("after remove %d", idx), g, core.BuildFaultGraph(n, remaining))
		}
	}
}

func assertGraphEqual(t *testing.T, trial int, step string, got, want *core.FaultGraph) {
	t.Helper()
	if got.Dmin() != want.Dmin() {
		t.Fatalf("trial %d %s: incremental dmin %d, rebuilt dmin %d", trial, step, got.Dmin(), want.Dmin())
	}
	gw, ww := got.WeakestEdges(), want.WeakestEdges()
	if len(gw) != len(ww) {
		t.Fatalf("trial %d %s: incremental %d weakest edges, rebuilt %d", trial, step, len(gw), len(ww))
	}
	for i := range gw {
		if gw[i] != ww[i] {
			t.Fatalf("trial %d %s: weakest edge %d: %v vs %v", trial, step, i, gw[i], ww[i])
		}
	}
	for i := 0; i < got.N(); i++ {
		for j := i + 1; j < got.N(); j++ {
			if got.Weight(i, j) != want.Weight(i, j) {
				t.Fatalf("trial %d %s: weight(%d,%d) = %d, rebuilt %d",
					trial, step, i, j, got.Weight(i, j), want.Weight(i, j))
			}
		}
	}
}

// TestGenerateFusionAblationModes pins that all optimization toggles — the
// incremental fault graph vs full recompute, and the guarded vs unguarded
// closure — produce identical fusions on random systems.
func TestGenerateFusionAblationModes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		sys := randomEquivSystem(t, rng, 40)
		f := 1 + rng.Intn(3)
		base, err := core.GenerateFusion(sys, f, core.GenerateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []core.GenerateOptions{
			{Recompute: true},
			{NoGuardedClosure: true},
			{Recompute: true, NoGuardedClosure: true},
		} {
			got, err := core.GenerateFusion(sys, f, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(base) {
				t.Fatalf("trial %d opts %+v: %d fusions vs %d", trial, opts, len(got), len(base))
			}
			for i := range got {
				if !got[i].Equal(base[i]) {
					t.Fatalf("trial %d opts %+v: fusion %d differs: %s vs %s", trial, opts, i, got[i], base[i])
				}
			}
		}
	}
}
