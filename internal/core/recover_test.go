package core_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dfsm"
	"repro/internal/machines"
	"repro/internal/partition"
)

// runAll drives every machine (originals and fusion quotients) through the
// same event sequence, returning the final local states: originals first,
// then fusions. This is the fault-free execution of the paper's model.
func runAll(sys *core.System, fusions []*dfsm.Machine, events []string) (orig []int, fus []int) {
	orig = make([]int, len(sys.Machines))
	for i, m := range sys.Machines {
		orig[i] = m.Run(events)
	}
	fus = make([]int, len(fusions))
	for i, m := range fusions {
		fus[i] = m.Run(events)
	}
	return orig, fus
}

// reportsFor assembles recovery reports, skipping crashed machines and
// letting Byzantine machines report an arbitrary wrong local state.
func reportsFor(t *testing.T, sys *core.System, F []partition.P, fusionMachines []*dfsm.Machine,
	orig, fus []int, crashed map[string]bool, liars map[string]int) []core.Report {
	t.Helper()
	var reports []core.Report
	for i := range sys.Machines {
		name := sys.Machines[i].Name()
		if crashed[name] {
			continue
		}
		s := orig[i]
		if ls, ok := liars[name]; ok {
			s = ls
		}
		r, err := sys.ReportFor(i, s)
		if err != nil {
			t.Fatalf("ReportFor(%d): %v", i, err)
		}
		reports = append(reports, r)
	}
	for i := range F {
		name := fusionMachines[i].Name()
		if crashed[name] {
			continue
		}
		b := fus[i]
		if lb, ok := liars[name]; ok {
			b = lb
		}
		r, err := core.ReportForPartition(name, F[i], b)
		if err != nil {
			t.Fatalf("ReportForPartition(%d): %v", i, err)
		}
		reports = append(reports, r)
	}
	return reports
}

// TestRecoverCrashFig1 replays the paper's crash scenario on the counters:
// one counter crashes, the remaining counter plus F1 recover its state.
func TestRecoverCrashFig1(t *testing.T) {
	sys := fig1System(t)
	F, err := core.GenerateFusion(sys, 1, core.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fms, err := sys.FusionMachines(F, "F")
	if err != nil {
		t.Fatal(err)
	}
	events := strings.Split("0 1 1 0 0 0 1", " ")
	orig, fus := runAll(sys, fms, events)

	reports := reportsFor(t, sys, F, fms, orig, fus,
		map[string]bool{"0-Counter": true}, nil)
	recovered, res, err := sys.RecoverStates(reports)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	for i := range orig {
		if recovered[i] != orig[i] {
			t.Errorf("machine %d: recovered state %d, want %d", i, recovered[i], orig[i])
		}
	}
	if len(res.Liars) != 0 {
		t.Errorf("crash recovery flagged liars %v", res.Liars)
	}
}

// TestRecoverByzantineFig1: with F1 and F2 (dmin = 3), one machine may lie
// and recovery still returns the truth and identifies the liar.
func TestRecoverByzantineFig1(t *testing.T) {
	sys := fig1System(t)
	f1, err := sys.PartitionOf(machines.SumCounter(3))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := sys.PartitionOf(machines.DiffCounter(3))
	if err != nil {
		t.Fatal(err)
	}
	F := []partition.P{f1, f2}
	fms, err := sys.FusionMachines(F, "F")
	if err != nil {
		t.Fatal(err)
	}
	events := strings.Split("1 1 0 1 0", " ")
	orig, fus := runAll(sys, fms, events)

	// Truth: n0=2 → state 2, n1=3 → state 0. Make the 1-Counter lie.
	truth1 := orig[1]
	lie := (truth1 + 1) % 3
	reports := reportsFor(t, sys, F, fms, orig, fus, nil,
		map[string]int{"1-Counter": lie})
	recovered, res, err := sys.RecoverStates(reports)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	for i := range orig {
		if recovered[i] != orig[i] {
			t.Errorf("machine %d: recovered state %d, want %d", i, recovered[i], orig[i])
		}
	}
	if len(res.Liars) != 1 || res.Liars[0] != "1-Counter" {
		t.Errorf("liars = %v, want [1-Counter]", res.Liars)
	}
}

// TestRecoverAmbiguousBeyondBound: crashing more machines than the fusion
// tolerates must yield an ambiguity error, not a silent wrong answer.
func TestRecoverAmbiguousBeyondBound(t *testing.T) {
	sys := fig1System(t)
	F, err := core.GenerateFusion(sys, 1, core.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fms, err := sys.FusionMachines(F, "F")
	if err != nil {
		t.Fatal(err)
	}
	events := []string{"0", "1", "0"}
	orig, fus := runAll(sys, fms, events)
	// Crash both counters: only the single fusion machine remains; its
	// block has 3 top states, so the vote ties.
	reports := reportsFor(t, sys, F, fms, orig, fus,
		map[string]bool{"0-Counter": true, "1-Counter": true}, nil)
	if _, _, err := sys.RecoverStates(reports); err == nil {
		t.Fatal("recovery succeeded with 2 crashes on a 1-fault fusion")
	}
}

// TestRecoverRandomizedCrash: exhaustive over systems × event sequences ×
// crash choices within the tolerance bound, recovery is exact.
func TestRecoverRandomizedCrash(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sys, err := core.NewSystem([]*dfsm.Machine{
		machines.EvenParity(), machines.OddParity(), machines.ShiftRegister(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	const f = 2
	F, err := core.GenerateFusion(sys, f, core.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fms, err := sys.FusionMachines(F, "F")
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(sys.Machines)+len(fms))
	for _, m := range sys.Machines {
		names = append(names, m.Name())
	}
	for _, m := range fms {
		names = append(names, m.Name())
	}

	for trial := 0; trial < 50; trial++ {
		events := make([]string, rng.Intn(20))
		for i := range events {
			events[i] = []string{"0", "1"}[rng.Intn(2)]
		}
		orig, fus := runAll(sys, fms, events)
		// Crash up to f machines, chosen at random.
		crashed := map[string]bool{}
		for len(crashed) < f {
			crashed[names[rng.Intn(len(names))]] = true
		}
		reports := reportsFor(t, sys, F, fms, orig, fus, crashed, nil)
		recovered, _, err := sys.RecoverStates(reports)
		if err != nil {
			t.Fatalf("trial %d (crashed %v): %v", trial, crashed, err)
		}
		for i := range orig {
			if recovered[i] != orig[i] {
				t.Fatalf("trial %d: machine %d recovered %d, want %d", trial, i, recovered[i], orig[i])
			}
		}
	}
}

// TestRecoverRandomizedByzantine: with a (2f)-fusion, any f machines may
// lie arbitrarily and recovery is exact and names only true liars.
func TestRecoverRandomizedByzantine(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sys, err := core.NewSystem([]*dfsm.Machine{
		machines.EvenParity(), machines.OddParity(), machines.ShiftRegister(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	const byz = 1
	F, err := core.GenerateFusion(sys, 2*byz, core.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fms, err := sys.FusionMachines(F, "F")
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		events := make([]string, rng.Intn(20))
		for i := range events {
			events[i] = []string{"0", "1"}[rng.Intn(2)]
		}
		orig, fus := runAll(sys, fms, events)

		// One liar, original or fusion, reporting a random wrong state.
		liars := map[string]int{}
		li := rng.Intn(len(sys.Machines) + len(fms))
		if li < len(sys.Machines) {
			m := sys.Machines[li]
			wrong := (orig[li] + 1 + rng.Intn(m.NumStates()-1)) % m.NumStates()
			liars[m.Name()] = wrong
		} else {
			fi := li - len(sys.Machines)
			nb := F[fi].NumBlocks()
			if nb < 2 {
				continue // cannot lie with one block
			}
			wrong := (fus[fi] + 1 + rng.Intn(nb-1)) % nb
			liars[fms[fi].Name()] = wrong
		}

		reports := reportsFor(t, sys, F, fms, orig, fus, nil, liars)
		recovered, res, err := sys.RecoverStates(reports)
		if err != nil {
			t.Fatalf("trial %d (liars %v): %v", trial, liars, err)
		}
		for i := range orig {
			if recovered[i] != orig[i] {
				t.Fatalf("trial %d: machine %d recovered %d, want %d", trial, i, recovered[i], orig[i])
			}
		}
		// A liar may accidentally report a state whose block still contains
		// the true top state (not possible when the block changes, but be
		// lenient: the flagged set must be a subset of the actual liars).
		for _, l := range res.Liars {
			if _, ok := liars[l]; !ok {
				t.Errorf("trial %d: honest machine %s flagged as liar", trial, l)
			}
		}
	}
}

// TestRecoverInputValidation covers the error paths of Recover.
func TestRecoverInputValidation(t *testing.T) {
	if _, err := core.Recover(0, nil); err == nil {
		t.Error("Recover accepted n=0")
	}
	if _, err := core.Recover(3, []core.Report{{Machine: "x", TopStates: []int{5}}}); err == nil {
		t.Error("Recover accepted an out-of-range top state")
	}
	if _, err := core.Recover(3, []core.Report{{Machine: "x", TopStates: []int{-1}}}); err == nil {
		t.Error("Recover accepted a negative top state")
	}
}

func TestReportForValidation(t *testing.T) {
	sys := fig1System(t)
	if _, err := sys.ReportFor(99, 0); err == nil {
		t.Error("ReportFor accepted a bad machine index")
	}
	if _, err := sys.ReportFor(0, 99); err == nil {
		t.Error("ReportFor accepted a bad state")
	}
	p := partition.Single(sys.N())
	if _, err := core.ReportForPartition("x", p, 5); err == nil {
		t.Error("ReportForPartition accepted a bad block")
	}
}
