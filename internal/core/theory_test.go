package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dfsm"
	"repro/internal/machines"
	"repro/internal/partition"
)

func TestMinimalFusionSize(t *testing.T) {
	sys := fig1System(t) // dmin = 1
	cases := map[int]int{0: 0, 1: 1, 2: 2, 5: 5}
	for f, want := range cases {
		if got := sys.MinimalFusionSize(f); got != want {
			t.Errorf("MinimalFusionSize(%d) = %d, want %d", f, got, want)
		}
		// And Algorithm 2 must deliver exactly that many.
		F, err := core.GenerateFusion(sys, f, core.GenerateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(F) != want {
			t.Errorf("Generate(f=%d) returned %d machines, MinimalFusionSize says %d", f, len(F), want)
		}
	}
}

func TestTolerableCounts(t *testing.T) {
	sys := fig1System(t)
	f1, err := sys.PartitionOf(machines.SumCounter(3))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := sys.PartitionOf(machines.DiffCounter(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.TolerableCrash(nil); got != 0 {
		t.Errorf("TolerableCrash(∅) = %d", got)
	}
	if got := sys.TolerableCrash([]partition.P{f1}); got != 1 {
		t.Errorf("TolerableCrash({F1}) = %d", got)
	}
	if got := sys.TolerableByzantine([]partition.P{f1, f2}); got != 1 {
		t.Errorf("TolerableByzantine({F1,F2}) = %d", got)
	}
}

func TestDistance(t *testing.T) {
	sys := fig2System(t)
	g := core.BuildFaultGraph(sys.N(), sys.Parts)
	for i := 0; i < sys.N(); i++ {
		for j := 0; j < sys.N(); j++ {
			d, err := sys.Distance(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if d != g.Weight(i, j) {
				t.Errorf("Distance(%d,%d) = %d, fault graph says %d", i, j, d, g.Weight(i, j))
			}
		}
	}
	if _, err := sys.Distance(-1, 0); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := sys.Distance(0, 99); err == nil {
		t.Error("out-of-range index accepted")
	}
}

// TestVerifyTheorem1OnGeneratedFusions: exhaustive operational check of
// Theorem 1 on small systems with generated fusions.
func TestVerifyTheorem1OnGeneratedFusions(t *testing.T) {
	systems := [][]*dfsm.Machine{
		{machines.Fig2A(), machines.Fig2B()},
		{machines.ZeroCounter(), machines.OneCounter()},
		{machines.EvenParity(), machines.OddParity()},
	}
	for si, ms := range systems {
		sys, err := core.NewSystem(ms)
		if err != nil {
			t.Fatal(err)
		}
		for f := 1; f <= 2; f++ {
			F, err := core.GenerateFusion(sys, f, core.GenerateOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.VerifyTheorem1(F); err != nil {
				t.Errorf("system %d f=%d: %v", si, f, err)
			}
		}
	}
}

// TestVerifyTheorem2OnGeneratedFusions: exhaustive operational check of
// Theorem 2 (all liar subsets × all lies × all states) on small systems.
func TestVerifyTheorem2OnGeneratedFusions(t *testing.T) {
	sys := fig1System(t)
	F, err := core.GenerateFusion(sys, 2, core.GenerateOptions{}) // 1 Byzantine
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.VerifyTheorem2(F); err != nil {
		t.Error(err)
	}
}

// TestVerifyTheorem1CatchesWeakSets: removing one fusion machine from an
// exactly-f fusion makes Theorem 1's f fail for the old f — the verifier
// must notice when asked to tolerate more than the set supports.
func TestVerifyTheorem1CatchesWeakSets(t *testing.T) {
	sys := fig1System(t)
	// Empty fusion: dmin = 1, f = 0; verification trivially passes.
	if err := sys.VerifyTheorem1(nil); err != nil {
		t.Errorf("f=0 verification failed: %v", err)
	}
}

// TestTheoremsOnRandomSystems: randomized operational verification.
func TestTheoremsOnRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 6; trial++ {
		ms := []*dfsm.Machine{
			dfsm.RandomMachine(rng, "X", 2+rng.Intn(3), []string{"a", "b"}),
			dfsm.RandomMachine(rng, "Y", 2+rng.Intn(3), []string{"a", "b"}),
		}
		sys, err := core.NewSystem(ms)
		if err != nil {
			t.Fatal(err)
		}
		F, err := core.GenerateFusion(sys, 2, core.GenerateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.VerifyTheorem1(F); err != nil {
			t.Errorf("trial %d: theorem 1: %v", trial, err)
		}
		if err := sys.VerifyTheorem2(F); err != nil {
			t.Errorf("trial %d: theorem 2: %v", trial, err)
		}
	}
}
