package core

import (
	"fmt"

	"repro/internal/partition"
)

// This file collects the theorem-level helpers of Sections 3–4: direct
// statements of Theorems 1, 2 and 4 and Observation 1 as checkable
// functions, used by the theorem-verification experiments and exposed for
// capacity planning (how many backups will I need before generating them?).

// MinimalFusionSize returns the number of machines in any minimal
// (f,·)-fusion of the system: max(0, f − dmin(A) + 1). This follows from
// Theorem 4 (existence iff m + dmin > f) and is what Algorithm 2 produces
// (Theorem 5).
func (s *System) MinimalFusionSize(f int) int {
	m := f - s.Dmin() + 1
	if m < 0 {
		return 0
	}
	return m
}

// TolerableCrash returns the number of crash faults A ∪ F tolerates:
// dmin(A ∪ F) − 1 (Theorem 1).
func (s *System) TolerableCrash(F []partition.P) int {
	return s.DminWith(F) - 1
}

// TolerableByzantine returns the number of Byzantine faults A ∪ F
// tolerates: ⌊(dmin(A ∪ F) − 1)/2⌋ (Theorem 2).
func (s *System) TolerableByzantine(F []partition.P) int {
	return (s.DminWith(F) - 1) / 2
}

// Distance returns d(ti,tj) over the original machines (Definition 4).
func (s *System) Distance(ti, tj int) (int, error) {
	n := s.N()
	if ti < 0 || ti >= n || tj < 0 || tj >= n {
		return 0, fmt.Errorf("core: distance(%d,%d) out of range [0,%d)", ti, tj, n)
	}
	d := 0
	for _, p := range s.Parts {
		if p.Separates(ti, tj) {
			d++
		}
	}
	return d, nil
}

// VerifyTheorem1 operationally checks Theorem 1 on this system with the
// given fusion: for EVERY subset of up to f = dmin−1 machine indices
// (originals and fusions combined) and every reachable ⊤-state, the
// surviving reports determine the ⊤-state uniquely. Exponential in the
// machine count — intended for the small verification experiments.
func (s *System) VerifyTheorem1(F []partition.P) error {
	parts := append(append([]partition.P{}, s.Parts...), F...)
	d := BuildFaultGraph(s.N(), parts).Dmin()
	f := d - 1
	if f < 0 {
		f = 0
	}
	total := len(parts)
	return forEachSubset(total, f, func(crashed map[int]bool) error {
		for t := 0; t < s.N(); t++ {
			// Count how many ⊤-states are consistent with all survivors.
			consistent := 0
			for cand := 0; cand < s.N(); cand++ {
				ok := true
				for i, p := range parts {
					if crashed[i] {
						continue
					}
					if p.BlockOf(cand) != p.BlockOf(t) {
						ok = false
						break
					}
				}
				if ok {
					consistent++
				}
			}
			if consistent != 1 {
				return fmt.Errorf("core: theorem 1 violated: state %d with crashes %v has %d consistent states",
					t, keys(crashed), consistent)
			}
		}
		return nil
	})
}

// VerifyTheorem2 operationally checks Theorem 2: for every ⊤-state, every
// liar subset of size ≤ (dmin−1)/2 and every possible lie, Algorithm 3's
// majority vote returns the true state. Exponential; small systems only.
func (s *System) VerifyTheorem2(F []partition.P) error {
	parts := append(append([]partition.P{}, s.Parts...), F...)
	d := BuildFaultGraph(s.N(), parts).Dmin()
	fByz := (d - 1) / 2
	if fByz <= 0 {
		return nil // nothing to check
	}
	return forEachSubset(len(parts), fByz, func(liars map[int]bool) error {
		if len(liars) == 0 {
			return nil
		}
		return forEachLie(parts, liars, func(lies map[int]int) error {
			for t := 0; t < s.N(); t++ {
				reports := make([]Report, 0, len(parts))
				for i, p := range parts {
					block := p.BlockOf(t)
					if b, lying := lies[i]; lying {
						if b == block {
							continue // a "lie" equal to the truth: skip case
						}
						block = b
					}
					reports = append(reports, Report{
						Machine:   fmt.Sprintf("m%d", i),
						TopStates: p.Blocks()[block],
					})
				}
				res, err := Recover(s.N(), reports)
				if err != nil {
					return fmt.Errorf("core: theorem 2 violated: state %d lies %v: %v", t, lies, err)
				}
				if res.TopState != t {
					return fmt.Errorf("core: theorem 2 violated: state %d recovered as %d under lies %v",
						t, res.TopState, lies)
				}
			}
			return nil
		})
	})
}

// forEachSubset enumerates all subsets of {0..n-1} of size ≤ k.
func forEachSubset(n, k int, visit func(map[int]bool) error) error {
	subset := map[int]bool{}
	var rec func(start int) error
	rec = func(start int) error {
		if err := visit(subset); err != nil {
			return err
		}
		if len(subset) == k {
			return nil
		}
		for i := start; i < n; i++ {
			subset[i] = true
			if err := rec(i + 1); err != nil {
				return err
			}
			delete(subset, i)
		}
		return nil
	}
	return rec(0)
}

// forEachLie enumerates one wrong block choice per liar (all combinations).
func forEachLie(parts []partition.P, liars map[int]bool, visit func(map[int]int) error) error {
	ids := keys(liars)
	lies := map[int]int{}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(ids) {
			return visit(lies)
		}
		p := parts[ids[i]]
		for b := 0; b < p.NumBlocks(); b++ {
			lies[ids[i]] = b
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		delete(lies, ids[i])
		return nil
	}
	return rec(0)
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
