package core

import (
	"fmt"
	"sort"

	"repro/internal/partition"
)

// Report is one machine's contribution to recovery: the set of ⊤-states
// consistent with its current state (its state's set representation,
// Algorithm 1). A crashed machine contributes no report.
type Report struct {
	// Machine identifies the reporting machine (free-form, used in
	// diagnostics and liar identification).
	Machine string
	// TopStates is the block of ⊤-states the machine's current state maps
	// to, sorted ascending.
	TopStates []int
}

// RecoverResult is the outcome of Algorithm 3.
type RecoverResult struct {
	// TopState is the recovered state of ⊤ (the argmax of Counts).
	TopState int
	// Counts[t] is the number of reports containing ⊤-state t.
	Counts []int
	// Runner is the second-highest count, for margin diagnostics.
	Runner int
	// Liars lists reporting machines whose block excludes TopState; under
	// ≤ f/2 Byzantine faults these are exactly the faulty machines.
	Liars []string
}

// Recover implements Algorithm 3: majority vote over the reported ⊤-state
// sets. n is |X⊤|. It returns an error if the vote is ambiguous (two states
// with maximal count), which cannot happen while the fault bounds of
// Theorems 1 and 2 are respected, and otherwise the winning state plus the
// machines whose reports contradicted it.
//
// Complexity: O((n_reports)·N), matching Section 5.2.
func Recover(n int, reports []Report) (*RecoverResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: recover over %d top states", n)
	}
	counts := make([]int, n)
	for _, r := range reports {
		for _, t := range r.TopStates {
			if t < 0 || t >= n {
				return nil, fmt.Errorf("core: report from %q names ⊤-state %d outside [0,%d)", r.Machine, t, n)
			}
			counts[t]++
		}
	}
	best, runner := -1, -1
	for t, c := range counts {
		if best == -1 || c > counts[best] {
			runner = best
			best = t
		} else if runner == -1 || c > counts[runner] {
			runner = t
		}
	}
	if runner != -1 && counts[runner] == counts[best] {
		return nil, fmt.Errorf("core: ambiguous recovery: ⊤-states %d and %d both appear in %d reports (more faults than the fusion tolerates)",
			best, runner, counts[best])
	}
	res := &RecoverResult{TopState: best, Counts: counts}
	if runner != -1 {
		res.Runner = counts[runner]
	}
	for _, r := range reports {
		if !containsSorted(r.TopStates, best) {
			res.Liars = append(res.Liars, r.Machine)
		}
	}
	sort.Strings(res.Liars)
	return res, nil
}

func containsSorted(xs []int, v int) bool {
	i := sort.SearchInts(xs, v)
	return i < len(xs) && xs[i] == v
}

// ReportFor builds the report of an original machine i currently in local
// state s, using the product projections (its set representation).
func (sys *System) ReportFor(i, s int) (Report, error) {
	if i < 0 || i >= len(sys.Machines) {
		return Report{}, fmt.Errorf("core: no machine %d", i)
	}
	m := sys.Machines[i]
	if s < 0 || s >= m.NumStates() {
		return Report{}, fmt.Errorf("core: machine %q has no state %d", m.Name(), s)
	}
	var block []int
	for t, tuple := range sys.Product.Proj {
		if tuple[i] == s {
			block = append(block, t)
		}
	}
	return Report{Machine: m.Name(), TopStates: block}, nil
}

// ReportForPartition builds the report of a fusion machine (given as a
// closed partition) currently in the state identified by block id b.
func ReportForPartition(name string, p partition.P, b int) (Report, error) {
	if b < 0 || b >= p.NumBlocks() {
		return Report{}, fmt.Errorf("core: partition machine %q has no block %d", name, b)
	}
	return Report{Machine: name, TopStates: p.Blocks()[b]}, nil
}

// RecoverStates runs recovery and translates the winning ⊤-state back to
// the local state of every original machine — the full crash-recovery
// procedure of Section 5.2. It returns one local state per original
// machine.
func (sys *System) RecoverStates(reports []Report) ([]int, *RecoverResult, error) {
	res, err := Recover(sys.N(), reports)
	if err != nil {
		return nil, nil, err
	}
	tuple := sys.Product.Proj[res.TopState]
	return append([]int(nil), tuple...), res, nil
}
