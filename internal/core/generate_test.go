package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dfsm"
	"repro/internal/machines"
	"repro/internal/partition"
)

func generate(t *testing.T, sys *core.System, f int) []partition.P {
	t.Helper()
	F, err := core.GenerateFusion(sys, f, core.GenerateOptions{})
	if err != nil {
		t.Fatalf("GenerateFusion(f=%d): %v", f, err)
	}
	return F
}

// TestGenerateFusionFig1 checks the motivating example: one 3-state fusion
// machine suffices to tolerate one crash fault in the two mod-3 counters.
func TestGenerateFusionFig1(t *testing.T) {
	sys := fig1System(t)
	F := generate(t, sys, 1)
	if len(F) != 1 {
		t.Fatalf("got %d fusion machines, want 1 (f − dmin + 1 = 1)", len(F))
	}
	if got := F[0].NumBlocks(); got != 3 {
		t.Errorf("fusion machine has %d states, want 3 (paper: F1 or F2)", got)
	}
	ok, err := sys.IsFusion(F, 1)
	if err != nil || !ok {
		t.Fatalf("generated set is not a (1,1)-fusion: %v %v", ok, err)
	}
}

// TestGenerateFusionCounts verifies Theorem 5's cardinality claim on several
// systems: |F| = max(0, f − dmin(A) + 1).
func TestGenerateFusionCounts(t *testing.T) {
	systems := []struct {
		name string
		ms   []*dfsm.Machine
	}{
		{"fig1", []*dfsm.Machine{machines.ZeroCounter(), machines.OneCounter()}},
		{"fig2", []*dfsm.Machine{machines.Fig2A(), machines.Fig2B()}},
		{"parity", []*dfsm.Machine{machines.EvenParity(), machines.OddParity(), machines.ToggleSwitch()}},
	}
	for _, tc := range systems {
		sys, err := core.NewSystem(tc.ms)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		d := sys.Dmin()
		for f := 0; f <= 3; f++ {
			F := generate(t, sys, f)
			want := f - d + 1
			if want < 0 {
				want = 0
			}
			if len(F) != want {
				t.Errorf("%s: f=%d dmin=%d: got %d machines, want %d", tc.name, f, d, len(F), want)
			}
			ok, err := sys.IsFusion(F, f)
			if err != nil || !ok {
				t.Errorf("%s: f=%d: generated set is not a fusion (%v, %v)", tc.name, f, ok, err)
			}
		}
	}
}

// TestGeneratedFusionIsLocallyMinimal: no generated machine can be replaced
// by a strictly smaller lattice element (part of Theorem 5's minimality).
func TestGeneratedFusionIsLocallyMinimal(t *testing.T) {
	for _, msf := range []struct {
		ms []*dfsm.Machine
		f  int
	}{
		{[]*dfsm.Machine{machines.ZeroCounter(), machines.OneCounter()}, 1},
		{[]*dfsm.Machine{machines.Fig2A(), machines.Fig2B()}, 2},
	} {
		sys, err := core.NewSystem(msf.ms)
		if err != nil {
			t.Fatal(err)
		}
		F := generate(t, sys, msf.f)
		minimal, err := core.IsLocallyMinimalFusion(sys, F, msf.f)
		if err != nil {
			t.Fatal(err)
		}
		if !minimal {
			t.Errorf("f=%d: generated fusion is not locally minimal", msf.f)
		}
	}
}

// TestSubsetOfFusionTheorem3: dropping t machines from an (f,m)-fusion
// leaves an (f−t, m−t)-fusion.
func TestSubsetOfFusionTheorem3(t *testing.T) {
	sys := fig1System(t)
	F := generate(t, sys, 3) // (3,3)-fusion of the counters (dmin=1)
	if len(F) != 3 {
		t.Fatalf("got %d machines, want 3", len(F))
	}
	for drop := 0; drop <= 3; drop++ {
		sub := core.SubsetFusion(F, drop)
		ok, err := sys.IsFusion(sub, 3-drop)
		if err != nil || !ok {
			t.Errorf("dropping %d machines: remaining set is not a (%d,%d)-fusion (%v, %v)",
				drop, 3-drop, len(sub), ok, err)
		}
	}
}

// TestGenerateRecomputeMatchesIncremental: the ablation flag must not change
// the result, only the cost.
func TestGenerateRecomputeMatchesIncremental(t *testing.T) {
	sys := fig2System(t)
	a, err := core.GenerateFusion(sys, 2, core.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.GenerateFusion(sys, 2, core.GenerateOptions{Recompute: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("incremental %d machines, recompute %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Errorf("machine %d differs between incremental and recompute runs", i)
		}
	}
}

// TestGenerateGuardedMatchesUnguarded: the abort-early closure path and the
// filter-after-closure path must return identical fusions.
func TestGenerateGuardedMatchesUnguarded(t *testing.T) {
	for _, ms := range [][]*dfsm.Machine{
		{machines.ZeroCounter(), machines.OneCounter()},
		{machines.EvenParity(), machines.OddParity(), machines.ToggleSwitch()},
	} {
		sys, err := core.NewSystem(ms)
		if err != nil {
			t.Fatal(err)
		}
		for f := 1; f <= 2; f++ {
			a, err := core.GenerateFusion(sys, f, core.GenerateOptions{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := core.GenerateFusion(sys, f, core.GenerateOptions{NoGuardedClosure: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("f=%d: %d vs %d machines", f, len(a), len(b))
			}
			for i := range a {
				if !a[i].Equal(b[i]) {
					t.Errorf("f=%d machine %d differs between guarded and unguarded paths", f, i)
				}
			}
		}
	}
}

// TestGenerateMaxMachinesGuard: the guard trips when the budget is too low.
func TestGenerateMaxMachinesGuard(t *testing.T) {
	sys := fig1System(t)
	if _, err := core.GenerateFusion(sys, 5, core.GenerateOptions{MaxMachines: 2}); err == nil {
		t.Fatal("GenerateFusion ignored MaxMachines")
	}
}

// TestGenerateNegativeFaults rejects f < 0.
func TestGenerateNegativeFaults(t *testing.T) {
	sys := fig1System(t)
	if _, err := core.GenerateFusion(sys, -1, core.GenerateOptions{}); err == nil {
		t.Fatal("GenerateFusion accepted f = -1")
	}
}

// TestExhaustiveMatchesGreedySize: on small systems the greedy descent finds
// a machine as small as the exhaustive minimal (1,1)-fusion search (this is
// stronger than Theorem 5, which guarantees minimality in the order, not
// state count — but it holds on these lattices and pins the behaviour).
func TestExhaustiveMatchesGreedySize(t *testing.T) {
	for _, ms := range [][]*dfsm.Machine{
		{machines.Fig2A(), machines.Fig2B()},
		{machines.ZeroCounter(), machines.OneCounter()},
	} {
		sys, err := core.NewSystem(ms)
		if err != nil {
			t.Fatal(err)
		}
		best, err := core.ExhaustiveMinimalFusions(sys, 100000)
		if err != nil {
			t.Fatalf("exhaustive: %v", err)
		}
		g := core.BuildFaultGraph(sys.N(), sys.Parts)
		greedy := core.GreedyDescent(sys, g.WeakestEdges())
		if greedy.NumBlocks() > best[0].NumBlocks() {
			t.Errorf("greedy found %d states, exhaustive minimum is %d",
				greedy.NumBlocks(), best[0].NumBlocks())
		}
	}
}

// TestEnumerateClosedPartitionsFig2 sanity-checks the lattice enumeration on
// the Fig. 2 top: it contains ⊤, ⊥, and the partitions of A, B and M1, and
// every enumerated partition is closed.
func TestEnumerateClosedPartitionsFig2(t *testing.T) {
	sys := fig2System(t)
	all, err := core.EnumerateClosedPartitions(sys, 10000)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"top": partition.Singletons(4).Key(),
		"bot": partition.Single(4).Key(),
		"A":   sys.Parts[0].Key(),
		"B":   sys.Parts[1].Key(),
		"M1":  fig2M1(t, sys).Key(),
	}
	have := map[string]bool{}
	for _, p := range all {
		if !partition.IsClosed(sys.Top, p) {
			t.Fatalf("enumeration produced non-closed partition %s", p)
		}
		have[p.Key()] = true
	}
	for name, key := range want {
		if !have[key] {
			t.Errorf("lattice enumeration is missing %s", name)
		}
	}
	if len(all) < 5 {
		t.Errorf("lattice has only %d nodes; expected at least ⊤, ⊥, A, B, M1", len(all))
	}
}

// TestGenerateFusionRandomSystems is a randomized stress test: for random
// machine systems, the generated set must always be a fusion of the
// requested tolerance with the Theorem 5 cardinality.
func TestGenerateFusionRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		ms := []*dfsm.Machine{
			dfsm.RandomMachine(rng, "X", 2+rng.Intn(3), []string{"a", "b"}),
			dfsm.RandomMachine(rng, "Y", 2+rng.Intn(3), []string{"a", "b"}),
		}
		sys, err := core.NewSystem(ms)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		f := 1 + rng.Intn(2)
		F, err := core.GenerateFusion(sys, f, core.GenerateOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ok, err := sys.IsFusion(F, f)
		if err != nil || !ok {
			t.Fatalf("trial %d: generated set is not an (f=%d)-fusion: %v %v", trial, f, ok, err)
		}
		d := sys.Dmin()
		want := f - d + 1
		if want < 0 {
			want = 0
		}
		if len(F) != want {
			t.Errorf("trial %d: %d machines, want %d (f=%d dmin=%d)", trial, len(F), want, f, d)
		}
	}
}
