package core

import (
	"fmt"

	"repro/internal/dfsm"
)

// SetRepresentation implements Algorithm 1 of the paper: given a machine a
// with a ≤ top, it expresses every state of a as the set of top-states that
// map onto it, by a synchronized traversal of the two machines from their
// initial states (Fig. 5 shows the worked example).
//
// The result has one sorted slice of top-state ids per state of a. It
// errors when a is not actually ≤ top, i.e. when two traversals force the
// same top-state onto two different a-states, or when some state of a is
// never reached (a would then have unreachable states w.r.t. top's event
// language).
//
// a may have a smaller alphabet than top; foreign events self-loop, exactly
// as in the system model of Section 2.
func SetRepresentation(top, a *dfsm.Machine) ([][]int, error) {
	n := top.NumStates()
	image := make([]int, n) // top-state -> a-state
	for i := range image {
		image[i] = -1
	}
	events := top.Events()

	image[top.Initial()] = a.Initial()
	queue := []int{top.Initial()}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		as := image[t]
		for e, ev := range events {
			tNext := top.NextByIndex(t, e)
			aNext := a.Next(as, ev)
			if image[tNext] == -1 {
				image[tNext] = aNext
				queue = append(queue, tNext)
			} else if image[tNext] != aNext {
				return nil, fmt.Errorf("core: %s is not ≤ %s: top state %s maps to both %s and %s",
					a.Name(), top.Name(), top.StateName(tNext), a.StateName(image[tNext]), a.StateName(aNext))
			}
		}
	}

	sets := make([][]int, a.NumStates())
	for t := 0; t < n; t++ {
		s := image[t]
		if s == -1 {
			return nil, fmt.Errorf("core: top state %s unreachable during set representation (top %q has unreachable states?)",
				top.StateName(t), top.Name())
		}
		sets[s] = append(sets[s], t)
	}
	for s, set := range sets {
		if len(set) == 0 {
			return nil, fmt.Errorf("core: state %s of %s corresponds to no state of ⊤; machine not reduced w.r.t. ⊤'s event language",
				a.StateName(s), a.Name())
		}
	}
	return sets, nil
}

// StateMapping returns the per-top-state image in a (the inverse view of
// SetRepresentation): mapping[t] is the state a occupies when top is in
// state t.
func StateMapping(top, a *dfsm.Machine) ([]int, error) {
	sets, err := SetRepresentation(top, a)
	if err != nil {
		return nil, err
	}
	mapping := make([]int, top.NumStates())
	for s, set := range sets {
		for _, t := range set {
			mapping[t] = s
		}
	}
	return mapping, nil
}
