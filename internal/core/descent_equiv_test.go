package core_test

// Equivalence suite for the incremental descent engine: Algorithm 2 with
// cross-level candidate reuse (violation pruning, survivor-seeded joins,
// the ⊤-closure cache) must produce bit-identical fusions to the
// cold-start descent, on random systems and on every Table 1 suite.

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/machines"
	"repro/internal/partition"
)

// assertSameFusions fails unless the two fusion sets are bit-identical:
// same cardinality, same partitions, same order.
func assertSameFusions(t *testing.T, label string, inc, cold []partition.P) {
	t.Helper()
	if len(inc) != len(cold) {
		t.Fatalf("%s: incremental produced %d fusions, cold %d", label, len(inc), len(cold))
	}
	for i := range inc {
		if !inc[i].Equal(cold[i]) {
			t.Fatalf("%s: fusion %d differs: incremental %s vs cold %s", label, i, inc[i], cold[i])
		}
	}
}

// TestIncrementalDescentEquivalenceRandom runs full generations over
// random systems with the incremental engine on and off — crossed with
// the other ablation knobs, which must compose — and demands identical
// output.
func TestIncrementalDescentEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 20; trial++ {
		sys := randomEquivSystem(t, rng, 48)
		f := 1 + rng.Intn(3)
		inc, err := core.GenerateFusion(sys, f, core.GenerateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []core.GenerateOptions{
			{NoIncremental: true},
			{NoIncremental: true, NoGuardedClosure: true},
			{NoIncremental: true, Recompute: true},
			{NoGuardedClosure: true},
		} {
			got, err := core.GenerateFusion(sys, f, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertSameFusions(t, "random trial", inc, got)
		}
	}
}

// TestIncrementalDescentEquivalenceTable1 pins the equivalence on the
// five paper suites themselves — the workloads the engine was built to
// accelerate. The expensive rows step aside under -short.
func TestIncrementalDescentEquivalenceTable1(t *testing.T) {
	for i, s := range machines.PaperSuites() {
		// Rows 1, 3 and 4 are the multi-hundred-millisecond generations;
		// doubling them is for full (CI) runs only.
		if testing.Short() && (i == 0 || i == 2 || i == 3) {
			t.Logf("short mode: skipping %s", s.Name)
			continue
		}
		ms, err := machines.SuiteMachines(s)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := core.NewSystem(ms)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := core.GenerateFusion(sys, s.F, core.GenerateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := core.GenerateFusion(sys, s.F, core.GenerateOptions{NoIncremental: true})
		if err != nil {
			t.Fatal(err)
		}
		assertSameFusions(t, s.Name, inc, cold)
	}
}
