package core

import (
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/partition"
)

// GenerateOptions tunes Algorithm 2. The zero value is the paper's
// algorithm with deterministic candidate selection.
type GenerateOptions struct {
	// MaxMachines aborts generation if more than this many fusion machines
	// would be required (0 = no limit). Useful as a guard in services.
	MaxMachines int
	// Pool supplies the worker pool for the candidate-closure fan-out.
	// nil means the shared package-level pool (exec.Default); services
	// that want dedicated capacity pass their engine's pool here
	// (fusion.Engine does). The choice of pool never changes the output.
	Pool *exec.Pool
	// Recompute forces a full fault-graph rebuild on every outer iteration
	// instead of the incremental Add; used by the ablation benchmark, never
	// needed in production.
	Recompute bool
	// NoGuardedClosure disables the abort-early guarded closure for
	// candidate evaluation (see partition.CloseGuarded); used by the
	// ablation benchmark. The guarded and unguarded paths return identical
	// fusions.
	NoGuardedClosure bool
	// NoIncremental disables the incremental descent engine — the
	// cross-level violation pruning and survivor-seeded joins of
	// partition.DescentState — so every descent level re-evaluates all
	// O(B²) block pairs from scratch; used by the ablation benchmark.
	// Incremental and cold descents return bit-identical fusions (the
	// equivalence suite pins this).
	NoIncremental bool
	// NoPairMemo disables the within-level pair-implication memo — the
	// sharing of finished union cascades between candidate pairs of the
	// same descent level — while keeping the cross-level incremental
	// machinery; used by the ablation benchmark. Memoized and unmemoized
	// levels return bit-identical fusions (the equivalence suite pins
	// this). Implied by NoIncremental, which drops the DescentState the
	// memo lives in.
	NoPairMemo bool
	// NoCache opts this call out of the content-addressed fusion cache.
	// GenerateFusion itself ignores it — core always computes — but the
	// cache-aware layers above (fusion.Engine, fusiond's generate route)
	// honor it, and it deliberately does NOT participate in RequestDigest:
	// a NoCache run produces the same bits as a cached one.
	NoCache bool
}

// guardedClosureLimit bounds the weakest-edge count up to which the
// guarded closure is profitable: its per-union violation scan is linear in
// the edge count, so past this size the plain closure plus one final
// Covers check wins.
const guardedClosureLimit = 64

// incrementalMinStates is the top size below which the descent runs cold:
// the cross-level bookkeeping of a DescentState (outcome maps, survivor
// interning) costs more than the handful of closures it saves when a
// level has only a few dozen pairs. Output is identical either way.
const incrementalMinStates = 16

// GenerateFusion implements Algorithm 2 of the paper: it returns the
// smallest set of machines F (as closed partitions of ⊤'s state set) such
// that A ∪ F tolerates f crash faults, i.e. dmin(A ∪ F) > f. By Theorem 5
// the returned set has exactly max(0, f − dmin(A) + 1) machines and is a
// minimal (f,|F|)-fusion. By Theorem 2 the same set tolerates ⌊f/2⌋
// Byzantine faults.
//
// Each outer iteration starts from ⊤ (which always raises dmin by one) and
// walks down the closed-partition lattice: among the lower-cover candidates
// that still cover every weakest edge of the current fault graph — the
// paper's "dmin(F ∪ A ∪ F) > dmin(A ∪ F)" test on line 6 — it descends
// into the smallest one, stopping when no candidate qualifies. Candidate
// evaluation is parallelized inside the partition merge-closure fan-out,
// and one partition.DescentState threads pair outcomes across the levels
// of each descent: pairs whose closure lost a weakest edge are pruned for
// the rest of the descent, and surviving candidates are re-evaluated at
// the next level as cheap union-find joins instead of cold closures
// (opts.NoIncremental falls back to cold levels for the ablation).
//
// Complexity: O(N³·|Σ|·f) as shown in Section 5.1.
func GenerateFusion(s *System, f int, opts GenerateOptions) ([]partition.P, error) {
	if f < 0 {
		return nil, fmt.Errorf("core: cannot tolerate %d faults", f)
	}
	genCounters.runs.Add(1)
	n := s.N()
	g := BuildFaultGraph(n, s.Parts)
	var fusions []partition.P
	var d *partition.DescentState
	if !opts.NoIncremental && n >= incrementalMinStates {
		d = partition.NewDescentState()
		if opts.NoPairMemo {
			d.DisablePairMemo()
		}
		if f-g.Dmin()+1 >= 2 {
			// Two or more descents are coming (each generated machine
			// raises dmin by one): retain the constraint-independent ⊤
			// closures of the first descent so the later ones replace
			// their level-0 fan-out with a filter over the cache.
			d.EnableTopCache()
		}
	}

	for g.Dmin() <= f {
		if opts.MaxMachines > 0 && len(fusions) >= opts.MaxMachines {
			return nil, fmt.Errorf("core: fusion for f=%d needs more than %d machines (dmin currently %d)",
				f, opts.MaxMachines, g.Dmin())
		}
		required := g.WeakestEdges()
		if d != nil {
			// Recorded violations are only permanent within one descent:
			// the weakest-edge set changes with every generated machine.
			d.Reset()
		}

		// Start at ⊤, which separates every pair and therefore always
		// covers the required edges. Descend through merge closures rather
		// than the maximality-filtered lower cover: every closed partition
		// strictly below m is ≤ some merge closure of m, so the down-set
		// explored is identical while skipping the O(B⁴·N) maximality
		// filter (see partition.MergeClosures).
		m := partition.Singletons(n)
		for m.NumBlocks() > 1 {
			best, ok := bestCandidate(s, m, required, opts, d)
			if !ok {
				break
			}
			m = best
		}

		genCounters.descents.Add(1)
		if d != nil {
			// Stats cover the descent just finished; Reset clears them at
			// the top of the next iteration.
			recordDescent(d.Stats())
		}

		fusions = append(fusions, m)
		if opts.Recompute {
			parts := append(append([]partition.P{}, s.Parts...), fusions...)
			g = BuildFaultGraph(n, parts)
		} else {
			g.Add(m)
		}
	}
	return fusions, nil
}

// bestCandidate evaluates one descent level: among the merge closures of
// m that still separate every required edge, return the Less-minimal one
// (Algorithm 2's deterministic pick — fewest blocks first, then
// lexicographically least normalized vector). It chooses between the
// guarded (abort-early) and filter-after-closure evaluation paths, runs
// the fan-out on the options' pool (the shared default when unset), and
// threads the descent state for cross-level pruning and seeding (d may
// be nil for cold levels). ok is false when no candidate qualifies.
func bestCandidate(s *System, m partition.P, required []Edge, opts GenerateOptions, d *partition.DescentState) (partition.P, bool) {
	pool := opts.Pool
	if pool == nil {
		pool = exec.Default()
	}
	if !opts.NoGuardedClosure && len(required) <= guardedClosureLimit {
		forbidden := make([][2]int, len(required))
		for i, e := range required {
			forbidden[i] = [2]int{e.I, e.J}
		}
		return partition.MinMergeClosureGuardedOn(pool, d, s.Top, m, forbidden)
	}
	covers := func(p partition.P) bool { return Covers(p, required) }
	return partition.MinMergeClosureOn(pool, d, s.Top, m, covers)
}

// GreedyDescent exposes one inner-loop descent of Algorithm 2: starting
// from ⊤, descend the lattice keeping the given edges covered, and return
// the final (locally minimal) machine. Used by tests and the exhaustive-
// search ablation. Like GenerateFusion's inner loop it carries a
// DescentState, so deeper levels reuse pair outcomes from shallower ones.
func GreedyDescent(s *System, required []Edge) partition.P {
	covers := func(p partition.P) bool { return Covers(p, required) }
	var d *partition.DescentState
	if s.N() >= incrementalMinStates {
		d = partition.NewDescentState()
	}
	m := partition.Singletons(s.N())
	for m.NumBlocks() > 1 {
		best, ok := partition.MinMergeClosureOn(exec.Default(), d, s.Top, m, covers)
		if !ok {
			break
		}
		m = best
	}
	return m
}

// ExhaustiveMinimalFusions enumerates ALL closed partitions of ⊤ (via
// lattice descent with memoization) and returns the machines with the
// fewest states among those that, added alone, raise dmin(A) by one. This
// is the exponential-time (1,1)-fusion search of the authors' earlier
// ICDCN'08 paper, kept as the ablation baseline for Algorithm 2; it is only
// feasible for small tops.
//
// maxNodes caps the number of lattice nodes visited; exceeding it returns
// an error.
func ExhaustiveMinimalFusions(s *System, maxNodes int) ([]partition.P, error) {
	all, err := EnumerateClosedPartitions(s, maxNodes)
	if err != nil {
		return nil, err
	}
	g := BuildFaultGraph(s.N(), s.Parts)
	required := g.WeakestEdges()

	bestBlocks := -1
	var best []partition.P
	for _, p := range all {
		if !Covers(p, required) {
			continue
		}
		switch {
		case bestBlocks == -1 || p.NumBlocks() < bestBlocks:
			bestBlocks = p.NumBlocks()
			best = []partition.P{p}
		case p.NumBlocks() == bestBlocks:
			best = append(best, p)
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: no closed partition covers the weakest edges (impossible: ⊤ does)")
	}
	sort.Slice(best, func(i, j int) bool { return best[i].Less(best[j]) })
	return best, nil
}

// EnumerateClosedPartitions returns every closed partition of ⊤'s state
// set, found by BFS downward from ⊤ through lower covers of *merges* (every
// closed partition below p is below the closure of some two-state merge of
// p, so the traversal is complete). The count can be exponential; maxNodes
// bounds the walk.
func EnumerateClosedPartitions(s *System, maxNodes int) ([]partition.P, error) {
	top := partition.Singletons(s.N())
	seen := partition.NewSet(64)
	seen.Add(top)
	queue := []partition.P{top}
	var all []partition.P
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		all = append(all, p)
		if maxNodes > 0 && len(all) > maxNodes {
			return nil, fmt.Errorf("core: closed-partition lattice exceeds %d nodes", maxNodes)
		}
		blocks := p.Blocks()
		for i := 0; i < len(blocks); i++ {
			for j := i + 1; j < len(blocks); j++ {
				c := partition.CloseMergingStates(s.Top, p, blocks[i][0], blocks[j][0])
				if seen.Add(c) {
					queue = append(queue, c)
				}
			}
		}
	}
	return all, nil
}
