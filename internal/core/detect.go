package core

import (
	"fmt"
	"sort"
)

// This file implements Byzantine fault *detection*, the natural companion
// of Theorems 1–2 (an extension over the paper's recovery-only treatment;
// marked as such in DESIGN.md): with dmin(A ∪ F) > f, up to f arbitrary
// state corruptions are detectable — the corrupted reports cannot all be
// consistent with any single ⊤-state — even when f exceeds the correction
// bound ⌊dmin−1⌋/2. This mirrors classical coding theory, where distance d
// detects d−1 errors but corrects only ⌊(d−1)/2⌋.

// ConsistentState returns the unique ⊤-state contained in every report, if
// one exists. Outcomes:
//
//   - (t, nil): all reports agree on exactly state t — no fault detected.
//   - (-1, ErrInconsistent): no state is in all reports — at least one
//     machine has a corrupted state (fault detected).
//   - (-1, ErrAmbiguous): multiple states are in all reports — the reports
//     are mutually consistent but underdetermine ⊤ (possible when some
//     machines are missing); not a fault indication by itself.
func ConsistentState(n int, reports []Report) (int, error) {
	if n <= 0 {
		return -1, fmt.Errorf("core: consistent state over %d top states", n)
	}
	count := make([]int, n)
	for _, r := range reports {
		for _, t := range r.TopStates {
			if t < 0 || t >= n {
				return -1, fmt.Errorf("core: report from %q names ⊤-state %d outside [0,%d)", r.Machine, t, n)
			}
			count[t]++
		}
	}
	var inAll []int
	for t, c := range count {
		if c == len(reports) {
			inAll = append(inAll, t)
		}
	}
	switch len(inAll) {
	case 1:
		return inAll[0], nil
	case 0:
		return -1, ErrInconsistent
	default:
		return -1, ErrAmbiguous
	}
}

// ErrInconsistent reports that no ⊤-state is compatible with every report:
// some machine's state is corrupted.
var ErrInconsistent = fmt.Errorf("core: reports are mutually inconsistent (fault detected)")

// ErrAmbiguous reports that several ⊤-states are compatible with every
// report (insufficient information, not necessarily a fault).
var ErrAmbiguous = fmt.Errorf("core: reports underdetermine the top state")

// DetectionResult is the outcome of DetectFaults.
type DetectionResult struct {
	// Faulty is true when the report set cannot come from a fault-free run.
	Faulty bool
	// TopState is the consistent state when Faulty is false and the state
	// is determined; -1 otherwise.
	TopState int
	// Suspects lists machines involved in some minimal inconsistency —
	// each pairwise conflict contributes both parties. With a single
	// corrupted machine, it is always in Suspects.
	Suspects []string
}

// DetectFaults checks a full report set (one per live machine) for
// corruption. Unlike Recover it never guesses: it either certifies the
// reports consistent or flags the conflict. Suspects are found by
// leave-one-out analysis: a machine is a suspect when removing its report
// makes the remaining reports mutually consistent. With a single corrupted
// machine this always names the liar (removing it restores consistency);
// honest machines may occasionally be co-flagged when the liar's block
// happens to intersect everyone else's, which is the information-theoretic
// limit at this distance. With more simultaneous liars than dmin−1 the
// suspect list can be empty even though Faulty is true.
func DetectFaults(n int, reports []Report) (*DetectionResult, error) {
	t, err := ConsistentState(n, reports)
	switch err {
	case nil:
		return &DetectionResult{Faulty: false, TopState: t}, nil
	case ErrAmbiguous:
		return &DetectionResult{Faulty: false, TopState: -1}, nil
	case ErrInconsistent:
		// Fall through to suspect analysis.
	default:
		return nil, err
	}

	res := &DetectionResult{Faulty: true, TopState: -1}
	rest := make([]Report, 0, len(reports)-1)
	for i := range reports {
		rest = rest[:0]
		rest = append(rest, reports[:i]...)
		rest = append(rest, reports[i+1:]...)
		if _, err := ConsistentState(n, rest); err != ErrInconsistent {
			res.Suspects = append(res.Suspects, reports[i].Machine)
		}
	}
	sort.Strings(res.Suspects)
	return res, nil
}
