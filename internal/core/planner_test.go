package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestPlanFusionFig1(t *testing.T) {
	sys := fig1System(t)
	p, err := core.PlanFusion(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.CrashFaults != 2 || p.ByzantineFaults != 1 || p.Dmin != 1 {
		t.Errorf("plan header wrong: %+v", p)
	}
	if p.FusionMachines != 2 || len(p.FusionSizes) != 2 {
		t.Errorf("fusion count: %+v", p)
	}
	if p.ReplicationMachines != 4 || p.ReplicationStateSpace != 81 {
		t.Errorf("replication accounting: %+v", p)
	}
	if p.FusionStateSpace != 9 { // two 3-state counters
		t.Errorf("fusion space = %d, want 9", p.FusionStateSpace)
	}
	if s := p.Savings(); s != 9 {
		t.Errorf("savings = %f, want 9", s)
	}
	// The embedded fusion must actually be a fusion.
	ok, err := sys.IsFusion(p.Fusion, 2)
	if err != nil || !ok {
		t.Errorf("plan's fusion invalid: %v %v", ok, err)
	}
	out := p.String()
	for _, want := range []string{"f=2", "dmin=1", "savings"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
}

func TestPlanFusionZeroFaults(t *testing.T) {
	sys := fig1System(t)
	p, err := core.PlanFusion(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.FusionMachines != 0 || p.FusionStateSpace != 1 {
		t.Errorf("f=0 plan: %+v", p)
	}
	if p.ReplicationStateSpace != 1 {
		t.Errorf("f=0 replication space = %d", p.ReplicationStateSpace)
	}
}
