package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dfsm"
	"repro/internal/machines"
	"repro/internal/partition"
)

func TestConsistentStateCleanRun(t *testing.T) {
	sys := fig1System(t)
	events := []string{"0", "1", "1", "0"}
	var reports []core.Report
	for i, m := range sys.Machines {
		r, err := sys.ReportFor(i, m.Run(events))
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, r)
	}
	ts, err := core.ConsistentState(sys.N(), reports)
	if err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}
	if ts != sys.Top.Run(events) {
		t.Errorf("consistent state %d, top says %d", ts, sys.Top.Run(events))
	}
}

func TestConsistentStateAmbiguous(t *testing.T) {
	sys := fig1System(t)
	// Only machine A reports: its block has 3 top states.
	r, err := sys.ReportFor(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.ConsistentState(sys.N(), []core.Report{r}); err != core.ErrAmbiguous {
		t.Fatalf("want ErrAmbiguous, got %v", err)
	}
}

func TestConsistentStateInconsistent(t *testing.T) {
	sys := fig1System(t)
	events := []string{"0", "0", "1"}
	ra, err := sys.ReportFor(0, sys.Machines[0].Run(events))
	if err != nil {
		t.Fatal(err)
	}
	// B lies: reports a state whose block cannot overlap A's on the truth.
	truthB := sys.Machines[1].Run(events)
	rb, err := sys.ReportFor(1, (truthB+1)%3)
	if err != nil {
		t.Fatal(err)
	}
	// A's block fixes n0 mod 3; B's wrong block fixes a wrong n1; their
	// intersection is still nonempty in the 9-state product (A and B are
	// orthogonal), so inconsistency needs a third machine. Add F1 truth.
	f1 := machines.SumCounter(3)
	p1, err := sys.PartitionOf(f1)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := core.ReportForPartition("F1", p1, f1.Run(events))
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.ConsistentState(sys.N(), []core.Report{ra, rb, rf})
	if err != core.ErrInconsistent {
		t.Fatalf("want ErrInconsistent, got %v", err)
	}
}

func TestConsistentStateValidation(t *testing.T) {
	if _, err := core.ConsistentState(0, nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := core.ConsistentState(3, []core.Report{{Machine: "x", TopStates: []int{9}}}); err == nil {
		t.Error("out-of-range report accepted")
	}
}

func TestDetectFaultsCleanAndCorrupt(t *testing.T) {
	sys := fig1System(t)
	f1m := machines.SumCounter(3)
	p1, err := sys.PartitionOf(f1m)
	if err != nil {
		t.Fatal(err)
	}
	events := []string{"1", "0", "1", "1"}
	mk := func(lieB bool) []core.Report {
		var reports []core.Report
		for i, m := range sys.Machines {
			s := m.Run(events)
			if lieB && i == 1 {
				s = (s + 1) % 3
			}
			r, err := sys.ReportFor(i, s)
			if err != nil {
				t.Fatal(err)
			}
			reports = append(reports, r)
		}
		rf, err := core.ReportForPartition("F1", p1, f1m.Run(events))
		if err != nil {
			t.Fatal(err)
		}
		return append(reports, rf)
	}

	clean, err := core.DetectFaults(sys.N(), mk(false))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Faulty {
		t.Errorf("clean run detected as faulty: %+v", clean)
	}
	if clean.TopState != sys.Top.Run(events) {
		t.Errorf("detected state %d, want %d", clean.TopState, sys.Top.Run(events))
	}

	corrupt, err := core.DetectFaults(sys.N(), mk(true))
	if err != nil {
		t.Fatal(err)
	}
	if !corrupt.Faulty {
		t.Fatal("corruption not detected (dmin=2 detects one fault)")
	}
	found := false
	for _, s := range corrupt.Suspects {
		if s == "1-Counter" {
			found = true
		}
	}
	if !found {
		t.Errorf("liar not among suspects %v", corrupt.Suspects)
	}
}

// TestDetectionBeyondCorrectionBound: with dmin = 2 the system corrects 0
// Byzantine faults but still DETECTS 1 — the coding-theory gap this
// extension exposes.
func TestDetectionBeyondCorrectionBound(t *testing.T) {
	sys := fig1System(t)
	f1m := machines.SumCounter(3)
	p1, err := sys.PartitionOf(f1m)
	if err != nil {
		t.Fatal(err)
	}
	// dmin({A,B,F1}) = 2: one Byzantine fault is not correctable
	// ((dmin−1)/2 = 0) yet must be detectable (dmin−1 = 1).
	if d := sys.DminWith([]partition.P{mustPartitionOf(t, sys, f1m)}); d != 2 {
		t.Fatalf("dmin({A,B,F1}) = %d, want 2", d)
	}
	events := []string{"0", "1"}
	var reports []core.Report
	for i, m := range sys.Machines {
		s := m.Run(events)
		if i == 0 {
			s = (s + 1) % 3 // A lies
		}
		r, err := sys.ReportFor(i, s)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, r)
	}
	rf, err := core.ReportForPartition("F1", p1, f1m.Run(events))
	if err != nil {
		t.Fatal(err)
	}
	reports = append(reports, rf)

	res, err := core.DetectFaults(sys.N(), reports)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Faulty {
		t.Fatal("one lie with dmin=2 must be detectable")
	}
}

func mustPartitionOf(t *testing.T, sys *core.System, m *dfsm.Machine) partition.P {
	t.Helper()
	p, err := sys.PartitionOf(m)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDetectFaultsRandomized: corrupting one machine in a dmin≥2 system is
// always detected; fault-free runs never are.
func TestDetectFaultsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	sys, err := core.NewSystem([]*dfsm.Machine{
		machines.EvenParity(), machines.OddParity(), machines.ShiftRegister(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	F, err := core.GenerateFusion(sys, 1, core.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fms, err := sys.FusionMachines(F, "F")
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		events := make([]string, rng.Intn(15))
		for i := range events {
			events[i] = []string{"0", "1"}[rng.Intn(2)]
		}
		liar := rng.Intn(len(sys.Machines) + len(fms) + 1) // last = nobody
		var reports []core.Report
		anyLie := false
		for i, m := range sys.Machines {
			s := m.Run(events)
			if i == liar && m.NumStates() > 1 {
				s = (s + 1) % m.NumStates()
				anyLie = true
			}
			r, err := sys.ReportFor(i, s)
			if err != nil {
				t.Fatal(err)
			}
			reports = append(reports, r)
		}
		for i, fm := range fms {
			b := fm.Run(events)
			if len(sys.Machines)+i == liar && F[i].NumBlocks() > 1 {
				b = (b + 1) % F[i].NumBlocks()
				anyLie = true
			}
			r, err := core.ReportForPartition(fm.Name(), F[i], b)
			if err != nil {
				t.Fatal(err)
			}
			reports = append(reports, r)
		}
		res, err := core.DetectFaults(sys.N(), reports)
		if err != nil {
			t.Fatal(err)
		}
		if res.Faulty != anyLie {
			t.Fatalf("trial %d: lie=%v detected=%v", trial, anyLie, res.Faulty)
		}
	}
}
