package core

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/partition"
)

// FaultGraph is the weighted complete graph G(⊤, M) of Definition 3: one
// node per state of ⊤, and the weight of edge (ti,tj) is the number of
// machines in M whose partition has ti and tj in distinct blocks. Weights
// are stored in a flat upper-triangular array.
//
// The graph supports incremental machine addition (Add), which is what
// makes Algorithm 2's outer loop cheap: adding one machine raises each edge
// weight by at most one (the observation behind Theorem 3). The weight
// histogram of earlier revisions has grown into a full bucket queue — the
// order array keeps every edge grouped by weight, with start[v] marking
// where the weight-v group begins and pos giving each edge's slot — so a
// weight change is two O(1) swaps, Dmin() stays O(1), and WeakestEdges()
// enumerates the weakest group directly instead of rescanning all O(N²)
// edges once per outer iteration of Algorithm 2. No allocation happens
// after construction (the boundary array grows once per new max weight).
type FaultGraph struct {
	n int
	w []int // w[index(i,j)] for i<j
	// Bucket-queue index: order holds all edge ids grouped by ascending
	// weight; group v occupies order[start[v]:start[v+1]] (start's last
	// entry is the sentinel len(order)); pos[k] is edge k's slot in order.
	order []int32
	start []int32
	pos   []int32
	dmin  int // cached min edge weight; meaningless when the graph has no edges
}

// NewFaultGraph returns the empty fault graph (all weights zero) over n
// states.
func NewFaultGraph(n int) *FaultGraph {
	if n < 1 {
		panic(fmt.Sprintf("core: fault graph over %d states", n))
	}
	if n > 65536 {
		// The bucket queue stores flat edge ids as int32; n=65536 is the
		// last size whose n(n-1)/2 edges fit. Far beyond any reachable
		// product size in practice.
		panic(fmt.Sprintf("core: fault graph over %d states exceeds the 65536-state edge-index bound", n))
	}
	edges := n * (n - 1) / 2
	order := make([]int32, edges)
	pos := make([]int32, edges)
	for k := range order {
		order[k] = int32(k)
		pos[k] = int32(k)
	}
	return &FaultGraph{
		n:     n,
		w:     make([]int, edges),
		order: order,
		start: []int32{0, int32(edges)},
		pos:   pos,
		dmin:  0,
	}
}

// BuildFaultGraph constructs G over n states for the machine set given as
// partitions.
func BuildFaultGraph(n int, parts []partition.P) *FaultGraph {
	g := NewFaultGraph(n)
	for _, p := range parts {
		g.Add(p)
	}
	return g
}

// index maps an unordered state pair to its triangular slot.
func (g *FaultGraph) index(i, j int) int {
	if i > j {
		i, j = j, i
	}
	// Row i starts at i*n - i*(i+1)/2, column offset j-i-1.
	return i*g.n - i*(i+1)/2 + (j - i - 1)
}

// N returns the number of nodes (states of ⊤).
func (g *FaultGraph) N() int { return g.n }

// moveUp shifts edge k from weight group v to v+1: swap it to the end of
// its group and move the boundary left over it. O(1), no allocation.
func (g *FaultGraph) moveUp(k, v int) {
	for v+2 >= len(g.start) {
		g.start = append(g.start, int32(len(g.order))) // new empty top group
	}
	last := g.start[v+1] - 1
	j := g.pos[k]
	other := g.order[last]
	g.order[j], g.order[last] = other, int32(k)
	g.pos[other], g.pos[k] = j, last
	g.start[v+1] = last
}

// moveDown shifts edge k from weight group v to v-1: swap it to the front
// of its group and move the boundary right over it.
func (g *FaultGraph) moveDown(k, v int) {
	first := g.start[v]
	j := g.pos[k]
	other := g.order[first]
	g.order[j], g.order[first] = other, int32(k)
	g.pos[other], g.pos[k] = j, first
	g.start[v] = first + 1
}

// Add increments the weight of every edge the machine covers (separates).
func (g *FaultGraph) Add(p partition.P) {
	if p.N() != g.n {
		panic(fmt.Sprintf("core: adding partition over %d elements to fault graph over %d states", p.N(), g.n))
	}
	if p.NumBlocks() <= 1 {
		return // ⊥ separates nothing: no edge weight changes
	}
	blockOf := p.View()
	k := 0
	for i := 0; i < g.n; i++ {
		bi := blockOf[i]
		row := blockOf[i+1:]
		for _, bj := range row {
			if bi != bj {
				old := g.w[k]
				g.w[k] = old + 1
				g.moveUp(k, old)
			}
			k++
		}
	}
	// Weights only grew, so dmin can only move up; advance it to the first
	// non-empty group.
	for g.dmin+1 < len(g.start) && g.start[g.dmin] == g.start[g.dmin+1] {
		g.dmin++
	}
}

// Remove decrements the weight of every edge the machine covers; the
// inverse of Add, used by what-if analyses (Theorem 3 experiments). The
// machine must previously have been added: edge weights cannot go negative.
func (g *FaultGraph) Remove(p partition.P) {
	if p.N() != g.n {
		panic(fmt.Sprintf("core: removing partition over %d elements from fault graph over %d states", p.N(), g.n))
	}
	if p.NumBlocks() <= 1 {
		return
	}
	blockOf := p.View()
	k := 0
	for i := 0; i < g.n; i++ {
		bi := blockOf[i]
		row := blockOf[i+1:]
		for _, bj := range row {
			if bi != bj {
				old := g.w[k]
				if old == 0 {
					panic("core: FaultGraph.Remove of a machine that was never added (negative edge weight)")
				}
				g.w[k] = old - 1
				g.moveDown(k, old)
				if old-1 < g.dmin {
					g.dmin = old - 1
				}
			}
			k++
		}
	}
}

// Weight returns the distance d(ti,tj) of Definition 4. Weight(i,i) is 0.
func (g *FaultGraph) Weight(i, j int) int {
	if i == j {
		return 0
	}
	return g.w[g.index(i, j)]
}

// Dmin returns the least edge weight (dmin of Section 3) in O(1) from the
// cached bucket minimum. A single-state graph has no edges; by
// convention its dmin is returned as a very large number, since a one-state
// system cannot lose information.
func (g *FaultGraph) Dmin() int {
	if len(g.w) == 0 {
		return int(^uint(0) >> 1) // max int
	}
	return g.dmin
}

// Edge is an unordered pair of ⊤-states (fault-graph nodes).
type Edge struct{ I, J int }

// WeakestEdges returns all edges of weight exactly Dmin(), the "weakest
// edges" Algorithm 2 must cover with the next fusion machine, in
// lexicographic (i,j) order. The weakest group is enumerated directly —
// O(|weakest| log |weakest| + N) for the order-restoring sort and the row
// walk — instead of rescanning all O(N²) edges per outer iteration.
func (g *FaultGraph) WeakestEdges() []Edge {
	if len(g.w) == 0 {
		return nil
	}
	b := g.order[g.start[g.dmin]:g.start[g.dmin+1]]
	// Sort the group in place (intra-group order is free) to restore
	// lexicographic edge order, then fix up the positions.
	slices.Sort(b)
	base := g.start[g.dmin]
	for i, k := range b {
		g.pos[k] = base + int32(i)
	}
	out := make([]Edge, len(b))
	i, rowEnd := 0, g.n-1 // row i spans flat ids [rowStart(i), rowStart(i)+n-1-i)
	rowStart := 0
	for x, k := range b {
		for int(k) >= rowEnd {
			rowStart = rowEnd
			i++
			rowEnd += g.n - 1 - i
		}
		out[x] = Edge{i, i + 1 + int(k) - rowStart}
	}
	return out
}

// EdgesAtMost returns edges of weight ≤ x: exactly the pairs of states that
// cannot be distinguished after x crash faults (see the discussion after
// Definition 3).
func (g *FaultGraph) EdgesAtMost(x int) []Edge {
	var out []Edge
	k := 0
	for i := 0; i < g.n; i++ {
		for j := i + 1; j < g.n; j++ {
			if g.w[k] <= x {
				out = append(out, Edge{i, j})
			}
			k++
		}
	}
	return out
}

// Covers reports whether partition p separates both endpoints of every edge
// in the list — the acceptance test of Algorithm 2's inner loop.
func Covers(p partition.P, edges []Edge) bool {
	blockOf := p.View()
	for _, e := range edges {
		if blockOf[e.I] == blockOf[e.J] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the graph.
func (g *FaultGraph) Clone() *FaultGraph {
	return &FaultGraph{
		n:     g.n,
		w:     append([]int(nil), g.w...),
		order: append([]int32(nil), g.order...),
		start: append([]int32(nil), g.start...),
		pos:   append([]int32(nil), g.pos...),
		dmin:  g.dmin,
	}
}

// String renders the weight matrix; for small graphs only (Fig. 4 style).
func (g *FaultGraph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault graph over %d states, dmin=%d\n", g.n, g.Dmin())
	for i := 0; i < g.n; i++ {
		for j := 0; j < g.n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%2d", g.Weight(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
