package core

import (
	"fmt"
	"strings"

	"repro/internal/partition"
)

// FaultGraph is the weighted complete graph G(⊤, M) of Definition 3: one
// node per state of ⊤, and the weight of edge (ti,tj) is the number of
// machines in M whose partition has ti and tj in distinct blocks. Weights
// are stored in a flat upper-triangular array.
//
// The graph supports incremental machine addition (Add), which is what
// makes Algorithm 2's outer loop cheap: adding one machine raises each edge
// weight by at most one (the observation behind Theorem 3). A weight
// histogram and a cached minimum are maintained inside Add/Remove, so
// Dmin() is O(1) instead of an O(N²) rescan per call.
type FaultGraph struct {
	n    int
	w    []int // w[index(i,j)] for i<j
	hist []int // hist[v] = number of edges of weight v
	dmin int   // cached min edge weight; meaningless when the graph has no edges
}

// NewFaultGraph returns the empty fault graph (all weights zero) over n
// states.
func NewFaultGraph(n int) *FaultGraph {
	if n < 1 {
		panic(fmt.Sprintf("core: fault graph over %d states", n))
	}
	edges := n * (n - 1) / 2
	return &FaultGraph{n: n, w: make([]int, edges), hist: []int{edges}, dmin: 0}
}

// BuildFaultGraph constructs G over n states for the machine set given as
// partitions.
func BuildFaultGraph(n int, parts []partition.P) *FaultGraph {
	g := NewFaultGraph(n)
	for _, p := range parts {
		g.Add(p)
	}
	return g
}

// index maps an unordered state pair to its triangular slot.
func (g *FaultGraph) index(i, j int) int {
	if i > j {
		i, j = j, i
	}
	// Row i starts at i*n - i*(i+1)/2, column offset j-i-1.
	return i*g.n - i*(i+1)/2 + (j - i - 1)
}

// N returns the number of nodes (states of ⊤).
func (g *FaultGraph) N() int { return g.n }

// Add increments the weight of every edge the machine covers (separates).
func (g *FaultGraph) Add(p partition.P) {
	if p.N() != g.n {
		panic(fmt.Sprintf("core: adding partition over %d elements to fault graph over %d states", p.N(), g.n))
	}
	if p.NumBlocks() <= 1 {
		return // ⊥ separates nothing: no edge weight changes
	}
	blockOf := p.View()
	k := 0
	for i := 0; i < g.n; i++ {
		bi := blockOf[i]
		row := blockOf[i+1:]
		for _, bj := range row {
			if bi != bj {
				old := g.w[k]
				g.w[k] = old + 1
				g.hist[old]--
				if old+1 >= len(g.hist) {
					g.hist = append(g.hist, 0)
				}
				g.hist[old+1]++
			}
			k++
		}
	}
	// Weights only grew, so dmin can only move up; advance it to the first
	// populated histogram bucket.
	for g.dmin < len(g.hist) && g.hist[g.dmin] == 0 {
		g.dmin++
	}
}

// Remove decrements the weight of every edge the machine covers; the
// inverse of Add, used by what-if analyses (Theorem 3 experiments). The
// machine must previously have been added: edge weights cannot go negative.
func (g *FaultGraph) Remove(p partition.P) {
	if p.N() != g.n {
		panic(fmt.Sprintf("core: removing partition over %d elements from fault graph over %d states", p.N(), g.n))
	}
	if p.NumBlocks() <= 1 {
		return
	}
	blockOf := p.View()
	k := 0
	for i := 0; i < g.n; i++ {
		bi := blockOf[i]
		row := blockOf[i+1:]
		for _, bj := range row {
			if bi != bj {
				old := g.w[k]
				if old == 0 {
					panic("core: FaultGraph.Remove of a machine that was never added (negative edge weight)")
				}
				g.w[k] = old - 1
				g.hist[old]--
				g.hist[old-1]++
				if old-1 < g.dmin {
					g.dmin = old - 1
				}
			}
			k++
		}
	}
}

// Weight returns the distance d(ti,tj) of Definition 4. Weight(i,i) is 0.
func (g *FaultGraph) Weight(i, j int) int {
	if i == j {
		return 0
	}
	return g.w[g.index(i, j)]
}

// Dmin returns the least edge weight (dmin of Section 3) in O(1) from the
// cached histogram minimum. A single-state graph has no edges; by
// convention its dmin is returned as a very large number, since a one-state
// system cannot lose information.
func (g *FaultGraph) Dmin() int {
	if len(g.w) == 0 {
		return int(^uint(0) >> 1) // max int
	}
	return g.dmin
}

// Edge is an unordered pair of ⊤-states (fault-graph nodes).
type Edge struct{ I, J int }

// WeakestEdges returns all edges of weight exactly Dmin(), the "weakest
// edges" Algorithm 2 must cover with the next fusion machine. The result
// is sized exactly from the weight histogram, so the scan allocates once.
func (g *FaultGraph) WeakestEdges() []Edge {
	if len(g.w) == 0 {
		return nil
	}
	d := g.dmin
	out := make([]Edge, 0, g.hist[d])
	k := 0
	for i := 0; i < g.n; i++ {
		for j := i + 1; j < g.n; j++ {
			if g.w[k] == d {
				out = append(out, Edge{i, j})
				if len(out) == cap(out) {
					return out
				}
			}
			k++
		}
	}
	return out
}

// EdgesAtMost returns edges of weight ≤ x: exactly the pairs of states that
// cannot be distinguished after x crash faults (see the discussion after
// Definition 3).
func (g *FaultGraph) EdgesAtMost(x int) []Edge {
	var out []Edge
	k := 0
	for i := 0; i < g.n; i++ {
		for j := i + 1; j < g.n; j++ {
			if g.w[k] <= x {
				out = append(out, Edge{i, j})
			}
			k++
		}
	}
	return out
}

// Covers reports whether partition p separates both endpoints of every edge
// in the list — the acceptance test of Algorithm 2's inner loop.
func Covers(p partition.P, edges []Edge) bool {
	blockOf := p.View()
	for _, e := range edges {
		if blockOf[e.I] == blockOf[e.J] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the graph.
func (g *FaultGraph) Clone() *FaultGraph {
	return &FaultGraph{
		n:    g.n,
		w:    append([]int(nil), g.w...),
		hist: append([]int(nil), g.hist...),
		dmin: g.dmin,
	}
}

// String renders the weight matrix; for small graphs only (Fig. 4 style).
func (g *FaultGraph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault graph over %d states, dmin=%d\n", g.n, g.Dmin())
	for i := 0; i < g.n; i++ {
		for j := 0; j < g.n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%2d", g.Weight(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
