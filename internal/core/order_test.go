package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/partition"
)

func TestFusionLessBasic(t *testing.T) {
	sys := fig2System(t)
	n := sys.N()
	top := partition.Singletons(n)
	m1 := fig2M1(t, sys)

	// {M1} < {⊤}: M1 ≤ ⊤ strictly.
	if !core.FusionLess([]partition.P{m1}, []partition.P{top}) {
		t.Error("{M1} < {⊤} expected")
	}
	if core.FusionLess([]partition.P{top}, []partition.P{m1}) {
		t.Error("{⊤} < {M1} unexpected")
	}
	// Irreflexive: F < F never holds (needs a strict component).
	if core.FusionLess([]partition.P{m1}, []partition.P{m1}) {
		t.Error("order must be irreflexive")
	}
	// Mismatched cardinalities are incomparable by definition.
	if core.FusionLess([]partition.P{m1}, []partition.P{m1, top}) {
		t.Error("different sizes compared")
	}
}

func TestFusionLessPermutation(t *testing.T) {
	sys := fig2System(t)
	n := sys.N()
	top := partition.Singletons(n)
	m1 := fig2M1(t, sys)
	a := sys.Parts[0]

	// {M1, A} vs {⊤, A} — must match M1↦⊤ and A↦A regardless of order.
	F := []partition.P{a, m1}
	G := []partition.P{top, a}
	if !core.FusionLess(F, G) {
		t.Error("permuted matching not found")
	}
	// And the reverse must not hold.
	if core.FusionLess(G, F) {
		t.Error("reverse order should not hold")
	}
}

// TestPaperExampleMinimality reproduces Section 4's worked example: F' =
// {M1, ⊤} is a (2,2)-fusion of {A,B} but is not minimal because a fusion
// strictly below it exists.
func TestPaperExampleMinimality(t *testing.T) {
	sys := fig2System(t)
	n := sys.N()
	top := partition.Singletons(n)
	m1 := fig2M1(t, sys)

	fPrime := []partition.P{m1, top}
	ok, err := sys.IsFusion(fPrime, 2)
	if err != nil || !ok {
		t.Fatalf("{M1,⊤} not a (2,2)-fusion: %v %v", ok, err)
	}
	// Algorithm 2's output must be ≤ (or incomparable to) every fusion;
	// specifically it must not be ABOVE F'.
	F, err := core.GenerateFusion(sys, 2, core.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if core.FusionLess(fPrime, F) {
		t.Errorf("generated fusion is strictly above {M1,⊤}; not minimal")
	}
}

func TestSubsetFusionBounds(t *testing.T) {
	sys := fig1System(t)
	F, err := core.GenerateFusion(sys, 2, core.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := core.SubsetFusion(F, 0); len(got) != len(F) {
		t.Error("drop 0 changed the set")
	}
	if got := core.SubsetFusion(F, len(F)); len(got) != 0 {
		t.Error("drop all should be empty")
	}
	if got := core.SubsetFusion(F, -1); got != nil {
		t.Error("negative drop should be nil")
	}
	if got := core.SubsetFusion(F, len(F)+1); got != nil {
		t.Error("overdrop should be nil")
	}
}

func TestIsLocallyMinimalFusionRejects(t *testing.T) {
	sys := fig2System(t)
	n := sys.N()
	top := partition.Singletons(n)
	m1 := fig2M1(t, sys)

	// {M1, ⊤} is a (2,2)-fusion but not locally minimal: ⊤ can be lowered.
	minimal, err := core.IsLocallyMinimalFusion(sys, []partition.P{m1, top}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if minimal {
		// Lowering ⊤ requires a lower-cover element that still covers the
		// weakest edges; on this small lattice one exists iff the
		// generated (2,2)-fusion differs from {M1,⊤}.
		F, err := core.GenerateFusion(sys, 2, core.GenerateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		same := len(F) == 2 && ((F[0].Equal(m1) && F[1].Equal(top)) || (F[1].Equal(m1) && F[0].Equal(top)))
		if !same {
			t.Error("{M1,⊤} reported locally minimal but Algorithm 2 found something smaller")
		}
	}
	// A non-fusion is never a minimal fusion.
	notFusion, err := core.IsLocallyMinimalFusion(sys, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if notFusion {
		t.Error("empty set reported as a (2,·)-fusion of a dmin=1 system")
	}
}
