package core

import (
	"repro/internal/exec"
	"repro/internal/partition"
)

// This file implements Definition 6 (order among (f,m)-fusions) and the
// helpers around Theorem 3 (subsets of fusions are fusions).

// FusionLess reports F < G per Definition 6: the machines of G can be
// ordered as G1..Gm with Fi ≤ Gi for all i and Fj < Gj for some j. Machine
// order uses the paper's partition order (coarser ≤ finer). Both sets must
// have the same cardinality; m is small in practice, so the search over
// orderings is a simple backtracking matching.
func FusionLess(F, G []partition.P) bool {
	if len(F) != len(G) {
		return false
	}
	m := len(F)
	used := make([]bool, m)
	// assign[i] = index in G matched to F[i].
	var try func(i int, strict bool) bool
	try = func(i int, strict bool) bool {
		if i == m {
			return strict
		}
		for j := 0; j < m; j++ {
			if used[j] || !F[i].RefinedBy(G[j]) {
				continue
			}
			used[j] = true
			s := strict || F[i].StrictlyRefinedBy(G[j])
			if try(i+1, s) {
				used[j] = false
				return true
			}
			used[j] = false
		}
		return false
	}
	return try(0, false)
}

// IsLocallyMinimalFusion checks that no single machine of F can be replaced
// by an element of its lower cover while A ∪ F still tolerates f faults.
// Every fusion returned by Algorithm 2 passes this check (Theorem 5 proves
// the stronger global minimality); the function exists so tests can verify
// it independently. The lower-cover fan-outs run on the shared default
// pool; engine-owned callers use IsLocallyMinimalFusionOn.
func IsLocallyMinimalFusion(s *System, F []partition.P, f int) (bool, error) {
	return IsLocallyMinimalFusionOn(exec.Default(), s, F, f)
}

// IsLocallyMinimalFusionOn is IsLocallyMinimalFusion with the lower-cover
// closure fan-outs on an explicit pool (fusion.Engine routes here so a
// dedicated engine's verification work never lands on the shared pool).
func IsLocallyMinimalFusionOn(pool *exec.Pool, s *System, F []partition.P, f int) (bool, error) {
	ok, err := s.IsFusion(F, f)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, nil
	}
	for i := range F {
		rest := make([]partition.P, 0, len(F)-1)
		rest = append(rest, F[:i]...)
		rest = append(rest, F[i+1:]...)
		for _, cand := range partition.LowerCoverOn(pool, s.Top, F[i]) {
			withCand := append(append([]partition.P{}, rest...), cand)
			if s.DminWith(withCand) > f {
				return false, nil // a strictly smaller machine suffices
			}
		}
	}
	return true, nil
}

// SubsetFusion drops t machines from an (f,m)-fusion, returning the
// (f−t, m−t)-fusion guaranteed by Theorem 3. The first m−t machines are
// kept; t must be ≤ min(f, m).
func SubsetFusion(F []partition.P, t int) []partition.P {
	if t < 0 || t > len(F) {
		return nil
	}
	return append([]partition.P(nil), F[:len(F)-t]...)
}
