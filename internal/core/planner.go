package core

import (
	"fmt"
	"strings"

	"repro/internal/partition"
)

// Plan is a capacity-planning summary for protecting a system: what fusion
// will cost versus replication before committing to generation. The CLI's
// users asked exactly the questions Section 1 of the paper opens with —
// "how many backups, how big" — and Theorem 4 answers them from dmin alone
// up to machine *count*; the Plan also runs Algorithm 2 to get the sizes.
type Plan struct {
	// CrashFaults is the f the plan was built for.
	CrashFaults int
	// ByzantineFaults is what the same fusion tolerates: f/2.
	ByzantineFaults int
	// Dmin is the system's inherent distance.
	Dmin int
	// FusionMachines is the minimal backup count (Theorem 4/5).
	FusionMachines int
	// FusionSizes are the generated machines' state counts.
	FusionSizes []int
	// FusionStateSpace is Π sizes.
	FusionStateSpace uint64
	// ReplicationMachines is n·f.
	ReplicationMachines int
	// ReplicationStateSpace is (Π|Mi|)^f.
	ReplicationStateSpace uint64
	// Fusion holds the generated partitions, ready for FusionMachines.
	Fusion []partition.P
}

// PlanFusion builds the full plan for tolerating f crash faults.
func PlanFusion(s *System, f int) (*Plan, error) {
	F, err := GenerateFusion(s, f, GenerateOptions{})
	if err != nil {
		return nil, err
	}
	p := &Plan{
		CrashFaults:         f,
		ByzantineFaults:     f / 2,
		Dmin:                s.Dmin(),
		FusionMachines:      len(F),
		FusionStateSpace:    1,
		ReplicationMachines: len(s.Machines) * f,
		ReplicationStateSpace: func() uint64 {
			total := uint64(1)
			for c := 0; c < f; c++ {
				for _, m := range s.Machines {
					total *= uint64(m.NumStates())
				}
			}
			return total
		}(),
		Fusion: F,
	}
	for _, q := range F {
		p.FusionSizes = append(p.FusionSizes, q.NumBlocks())
		p.FusionStateSpace *= uint64(q.NumBlocks())
	}
	return p, nil
}

// Savings returns the replication-to-fusion state-space ratio (≥ 1 means
// fusion wins or ties).
func (p *Plan) Savings() float64 {
	if p.FusionStateSpace == 0 {
		return 0
	}
	return float64(p.ReplicationStateSpace) / float64(p.FusionStateSpace)
}

// String renders the plan for the CLI.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan for f=%d crash faults (%d Byzantine): dmin=%d\n",
		p.CrashFaults, p.ByzantineFaults, p.Dmin)
	sizes := make([]string, len(p.FusionSizes))
	for i, s := range p.FusionSizes {
		sizes[i] = fmt.Sprintf("%d", s)
	}
	fmt.Fprintf(&b, "  fusion:      %d machine(s), sizes [%s], state space %d\n",
		p.FusionMachines, strings.Join(sizes, " "), p.FusionStateSpace)
	fmt.Fprintf(&b, "  replication: %d machine(s), state space %d\n",
		p.ReplicationMachines, p.ReplicationStateSpace)
	fmt.Fprintf(&b, "  savings:     %.1fx\n", p.Savings())
	return b.String()
}
