package core

import (
	"sync/atomic"

	"repro/internal/partition"
)

// Process-wide generation-path counters, accumulated by GenerateFusion
// across all engines and tenants. They answer the observability question
// the per-cluster sim counters cannot: how much Algorithm 2 work has
// this process done, and how much of it did the incremental descent
// engine (partition.DescentState) save. fusiond exports them on its
// Prometheus-style /metrics endpoint.
var genCounters struct {
	runs         atomic.Int64 // GenerateFusion calls
	descents     atomic.Int64 // outer iterations (one generated machine each)
	levels       atomic.Int64 // descent levels evaluated (incremental descents)
	coldClosures atomic.Int64 // from-scratch merge closures
	seededJoins  atomic.Int64 // re-evaluations served as join(survivor, m′)
	prunedSkips  atomic.Int64 // pair evaluations skipped by violation pruning
	topCacheHits atomic.Int64 // level-0 evaluations served from the ⊤-closure cache

	// Within-level pair-implication memo: the split of ColdClosures by how
	// each cascade actually resolved (implied + seeded + cold == coldClosures
	// on memoized descents).
	impliedCascades atomic.Int64 // resolved O(1) from a memoized closure or violation
	seededCascades  atomic.Int64 // absorbed at least one memoized closure mid-cascade
	coldCascades    atomic.Int64 // ran the full union cascade with no memo contact
}

// GenerationStats is a point-in-time copy of the process-wide generation
// counters. All fields are monotonic. The DescentState reuse fields
// (Levels and below) only accumulate on incremental descents — small
// tops below the incremental gate run cold and contribute to Runs and
// Descents alone.
type GenerationStats struct {
	Runs         int64
	Descents     int64
	Levels       int64
	ColdClosures int64
	SeededJoins  int64
	PrunedSkips  int64
	TopCacheHits int64

	// Pair-implication memo split of ColdClosures (see DescentStats): which
	// reuse tier resolved each non-seeded cascade. The individual values are
	// scheduling-dependent (a pair may resolve implied on one run and cold
	// on another, depending on publication order under work stealing); the
	// sum ImpliedCascades+SeededCascades+ColdCascades == ColdClosures is
	// not, and neither are the produced partitions.
	ImpliedCascades int64
	SeededCascades  int64
	ColdCascades    int64
}

// GenerationCounters snapshots the process-wide generation counters.
func GenerationCounters() GenerationStats {
	return GenerationStats{
		Runs:         genCounters.runs.Load(),
		Descents:     genCounters.descents.Load(),
		Levels:       genCounters.levels.Load(),
		ColdClosures: genCounters.coldClosures.Load(),
		SeededJoins:  genCounters.seededJoins.Load(),
		PrunedSkips:  genCounters.prunedSkips.Load(),
		TopCacheHits: genCounters.topCacheHits.Load(),

		ImpliedCascades: genCounters.impliedCascades.Load(),
		SeededCascades:  genCounters.seededCascades.Load(),
		ColdCascades:    genCounters.coldCascades.Load(),
	}
}

// recordDescent folds one completed descent's reuse stats into the
// process-wide counters (a handful of atomic adds — noise next to the
// closures the descent just ran).
func recordDescent(s partition.DescentStats) {
	genCounters.levels.Add(int64(s.Levels))
	genCounters.coldClosures.Add(int64(s.ColdClosures))
	genCounters.seededJoins.Add(int64(s.SeededJoins))
	genCounters.prunedSkips.Add(int64(s.PrunedSkips))
	genCounters.topCacheHits.Add(int64(s.TopCacheHits))
	genCounters.impliedCascades.Add(int64(s.ImpliedCascades))
	genCounters.seededCascades.Add(int64(s.SeededCascades))
	genCounters.coldCascades.Add(int64(s.ColdCascades))
}
