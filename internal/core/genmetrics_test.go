package core

import (
	"testing"

	"repro/internal/dfsm"
	"repro/internal/machines"
)

// TestGenerationCounters: GenerateFusion advances the process-wide
// counters — runs and descents always, the DescentState reuse counters
// whenever the top is large enough for the incremental engine.
func TestGenerationCounters(t *testing.T) {
	sys, err := NewSystem(machineSet(t, "MESI", "TCP"))
	if err != nil {
		t.Fatal(err)
	}
	before := GenerationCounters()
	F, err := GenerateFusion(sys, 2, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	after := GenerationCounters()
	if after.Runs != before.Runs+1 {
		t.Fatalf("Runs advanced by %d, want 1", after.Runs-before.Runs)
	}
	if got := after.Descents - before.Descents; got != int64(len(F)) {
		t.Fatalf("Descents advanced by %d, want %d (one per generated machine)", got, len(F))
	}
	// MESI×TCP has a 24-state top — well past the incremental gate — so
	// the descent stats must have accumulated real work.
	if after.Levels <= before.Levels || after.ColdClosures <= before.ColdClosures {
		t.Fatalf("incremental counters idle: %+v vs %+v", after, before)
	}
	if after.TopCacheHits <= before.TopCacheHits {
		t.Fatalf("no top-cache reuse across %d descents: %+v", len(F), after)
	}
	// The within-level memo must have resolved cascades by implication on
	// a top this size, and the split accounts for this run's cold closures
	// exactly (the invariant holds per descent, so it holds on deltas).
	if after.ImpliedCascades <= before.ImpliedCascades {
		t.Fatalf("pair-implication memo idle on a 36-state top: %+v vs %+v", after, before)
	}
	split := (after.ImpliedCascades - before.ImpliedCascades) +
		(after.SeededCascades - before.SeededCascades) +
		(after.ColdCascades - before.ColdCascades)
	if got := after.ColdClosures - before.ColdClosures; split != got {
		t.Fatalf("cascade split advanced by %d, cold closures by %d; want equal", split, got)
	}
}

// TestGenerationCountersNoPairMemo: the NoPairMemo ablation keeps the
// incremental engine but reports every cascade cold — and stays out of
// the fusion cache (a cached ablation run would measure nothing).
func TestGenerationCountersNoPairMemo(t *testing.T) {
	sys, err := NewSystem(machineSet(t, "MESI", "TCP"))
	if err != nil {
		t.Fatal(err)
	}
	before := GenerationCounters()
	want, err := GenerateFusion(sys, 2, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mid := GenerationCounters()
	got, err := GenerateFusion(sys, 2, GenerateOptions{NoPairMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	after := GenerationCounters()

	if len(got) != len(want) {
		t.Fatalf("NoPairMemo produced %d machines, memoized %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("machine %d differs: NoPairMemo %s, memoized %s", i, got[i], want[i])
		}
	}
	if d := after.ImpliedCascades - mid.ImpliedCascades; d != 0 {
		t.Fatalf("NoPairMemo run recorded %d implied cascades", d)
	}
	if d := after.SeededCascades - mid.SeededCascades; d != 0 {
		t.Fatalf("NoPairMemo run recorded %d seeded cascades", d)
	}
	if cold, closures := after.ColdCascades-mid.ColdCascades, after.ColdClosures-mid.ColdClosures; cold != closures {
		t.Fatalf("NoPairMemo run: %d cold cascades vs %d cold closures; want equal", cold, closures)
	}
	if mid.ImpliedCascades <= before.ImpliedCascades {
		t.Fatalf("memoized reference run shared nothing: %+v vs %+v", mid, before)
	}
	if (GenerateOptions{NoPairMemo: true}).Cacheable() {
		t.Fatal("NoPairMemo requests must not be cacheable")
	}
}

func machineSet(t *testing.T, names ...string) []*dfsm.Machine {
	t.Helper()
	ms := make([]*dfsm.Machine, len(names))
	for i, n := range names {
		m, err := machines.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}
	return ms
}
