package core

import (
	"testing"

	"repro/internal/dfsm"
	"repro/internal/machines"
)

// TestGenerationCounters: GenerateFusion advances the process-wide
// counters — runs and descents always, the DescentState reuse counters
// whenever the top is large enough for the incremental engine.
func TestGenerationCounters(t *testing.T) {
	sys, err := NewSystem(machineSet(t, "MESI", "TCP"))
	if err != nil {
		t.Fatal(err)
	}
	before := GenerationCounters()
	F, err := GenerateFusion(sys, 2, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	after := GenerationCounters()
	if after.Runs != before.Runs+1 {
		t.Fatalf("Runs advanced by %d, want 1", after.Runs-before.Runs)
	}
	if got := after.Descents - before.Descents; got != int64(len(F)) {
		t.Fatalf("Descents advanced by %d, want %d (one per generated machine)", got, len(F))
	}
	// MESI×TCP has a 24-state top — well past the incremental gate — so
	// the descent stats must have accumulated real work.
	if after.Levels <= before.Levels || after.ColdClosures <= before.ColdClosures {
		t.Fatalf("incremental counters idle: %+v vs %+v", after, before)
	}
	if after.TopCacheHits <= before.TopCacheHits {
		t.Fatalf("no top-cache reuse across %d descents: %+v", len(F), after)
	}
}

func machineSet(t *testing.T, names ...string) []*dfsm.Machine {
	t.Helper()
	ms := make([]*dfsm.Machine, len(names))
	for i, n := range names {
		m, err := machines.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}
	return ms
}
