package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dfsm"
	"repro/internal/machines"
	"repro/internal/partition"
)

// fig1System builds the mod-3 counter system of Fig. 1: A counts 0s, B
// counts 1s; the reachable cross product has all 9 count combinations.
func fig1System(t *testing.T) *core.System {
	t.Helper()
	sys, err := core.NewSystem([]*dfsm.Machine{machines.ZeroCounter(), machines.OneCounter()})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

// fig2System builds the Fig. 2 system of machines A and B.
func fig2System(t *testing.T) *core.System {
	t.Helper()
	sys, err := core.NewSystem([]*dfsm.Machine{machines.Fig2A(), machines.Fig2B()})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func TestNewSystemFig1(t *testing.T) {
	sys := fig1System(t)
	if got := sys.N(); got != 9 {
		t.Fatalf("Fig.1 top has %d states, want 9", got)
	}
	if got := sys.Dmin(); got != 1 {
		t.Fatalf("dmin({A,B}) = %d, want 1 (two counters cannot tolerate any fault)", got)
	}
	if got := sys.CrashFaultsTolerated(); got != 0 {
		t.Fatalf("crash faults tolerated = %d, want 0", got)
	}
}

func TestNewSystemFig2(t *testing.T) {
	sys := fig2System(t)
	if got := sys.N(); got != 4 {
		t.Fatalf("Fig.2 reachable cross product has %d states, want 4 (paper: r0..r3)", got)
	}
	if got := sys.Dmin(); got != 1 {
		t.Fatalf("dmin({A,B}) = %d, want 1 (Fig. 4(ii))", got)
	}
	// Each original machine's partition must be closed w.r.t. the top, and
	// must have as many blocks as the machine has states.
	for i, p := range sys.Parts {
		if !partition.IsClosed(sys.Top, p) {
			t.Errorf("partition of machine %d not closed", i)
		}
		if p.NumBlocks() != sys.Machines[i].NumStates() {
			t.Errorf("machine %d: %d blocks, want %d", i, p.NumBlocks(), sys.Machines[i].NumStates())
		}
	}
}

func TestNewSystemRejectsDuplicateNames(t *testing.T) {
	a := machines.ZeroCounter()
	if _, err := core.NewSystem([]*dfsm.Machine{a, machines.ZeroCounter()}); err == nil {
		t.Fatal("NewSystem accepted two machines named 0-Counter")
	}
}

func TestNewSystemRejectsEmpty(t *testing.T) {
	if _, err := core.NewSystem(nil); err == nil {
		t.Fatal("NewSystem accepted an empty machine set")
	}
}

// TestFig1SumCounterIsFusion verifies the paper's motivating example: the
// (n0+n1) mod 3 machine F1 is a (1,1)-fusion of the two counters.
func TestFig1SumCounterIsFusion(t *testing.T) {
	sys := fig1System(t)
	f1, err := sys.PartitionOf(machines.SumCounter(3))
	if err != nil {
		t.Fatalf("PartitionOf(F1): %v", err)
	}
	if f1.NumBlocks() != 3 {
		t.Fatalf("F1 has %d blocks, want 3", f1.NumBlocks())
	}
	ok, err := sys.IsFusion([]partition.P{f1}, 1)
	if err != nil {
		t.Fatalf("IsFusion: %v", err)
	}
	if !ok {
		t.Fatal("F1 = (n0+n1) mod 3 is not a (1,1)-fusion of the counters; the paper says it is")
	}
}

// TestFig1SumDiffTolerateByzantine verifies that {F1, F2} together with the
// counters tolerate one Byzantine fault (dmin ≥ 3), as stated in Section 1.
func TestFig1SumDiffTolerateByzantine(t *testing.T) {
	sys := fig1System(t)
	f1, err := sys.PartitionOf(machines.SumCounter(3))
	if err != nil {
		t.Fatalf("PartitionOf(F1): %v", err)
	}
	f2, err := sys.PartitionOf(machines.DiffCounter(3))
	if err != nil {
		t.Fatalf("PartitionOf(F2): %v", err)
	}
	d := sys.DminWith([]partition.P{f1, f2})
	if d < 3 {
		t.Fatalf("dmin({A,B,F1,F2}) = %d, want ≥ 3 for one Byzantine fault", d)
	}
	ok, err := sys.IsFusion([]partition.P{f1, f2}, 2)
	if err != nil || !ok {
		t.Fatalf("IsFusion({F1,F2}, 2) = %v, %v; want true", ok, err)
	}
}

// TestFig2M1InLattice verifies that the reconstructed Fig. 2 machines admit
// the 3-state machine M1 = {{a0,b0},{a2,b2}}, {{a1,b1}}, {{a0,b2}} as a
// closed partition of the top.
func TestFig2M1InLattice(t *testing.T) {
	sys := fig2System(t)
	m1 := fig2M1(t, sys)
	if !partition.IsClosed(sys.Top, m1) {
		t.Fatal("M1 is not a closed partition of the Fig. 2 top")
	}
	if m1.NumBlocks() != 3 {
		t.Fatalf("M1 has %d blocks, want 3", m1.NumBlocks())
	}
	// M1 must be a (1,1)-fusion of {A,B} (Section 4 of the paper).
	ok, err := sys.IsFusion([]partition.P{m1}, 1)
	if err != nil || !ok {
		t.Fatalf("IsFusion({M1}, 1) = %v, %v; want true", ok, err)
	}
}

// fig2M1 resolves machines.Fig2M1Blocks against the actual product state
// order.
func fig2M1(t *testing.T, sys *core.System) partition.P {
	t.Helper()
	// Index top states by component tuple names.
	type key [2]string
	ix := map[key]int{}
	for ti, tuple := range sys.Product.Proj {
		k := key{sys.Machines[0].StateName(tuple[0]), sys.Machines[1].StateName(tuple[1])}
		ix[k] = ti
	}
	var blocks [][]int
	for _, blk := range machines.Fig2M1Blocks() {
		var b []int
		for _, pair := range blk {
			ti, ok := ix[key{pair[0], pair[1]}]
			if !ok {
				t.Fatalf("tuple %v not a reachable top state", pair)
			}
			b = append(b, ti)
		}
		blocks = append(blocks, b)
	}
	p, err := partition.FromBlocks(sys.N(), blocks)
	if err != nil {
		t.Fatalf("FromBlocks: %v", err)
	}
	return p
}

func TestFusionExistsTheorem4(t *testing.T) {
	sys := fig2System(t)
	d := sys.Dmin() // 1
	cases := []struct {
		f, m int
		want bool
	}{
		{0, 0, true},      // dmin > 0 already
		{1, 0, false},     // 0 + 1 = 1, not > 1
		{1, 1, true},      // 1 + 1 > 1
		{2, 1, false},     // the paper's worked example: no (2,1)-fusion of {A,B}
		{2, 2, true},      //
		{d + 5, 5, false}, // m + d = d+5 not > d+5
		{d + 4, 5, true},
	}
	for _, c := range cases {
		if got := sys.FusionExists(c.f, c.m); got != c.want {
			t.Errorf("FusionExists(f=%d, m=%d) = %v, want %v (dmin=%d)", c.f, c.m, got, c.want, d)
		}
	}
}

func TestFusionMachinesMaterialize(t *testing.T) {
	sys := fig1System(t)
	f1, err := sys.PartitionOf(machines.SumCounter(3))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := sys.FusionMachines([]partition.P{f1}, "F")
	if err != nil {
		t.Fatalf("FusionMachines: %v", err)
	}
	if len(ms) != 1 || ms[0].NumStates() != 3 {
		t.Fatalf("materialized fusion = %v, want one 3-state machine", ms)
	}
	if ms[0].Name() != "F1" {
		t.Errorf("fusion machine named %q, want F1", ms[0].Name())
	}
	// The quotient must behave like the sum counter: same state after any
	// event sequence (isomorphic up to naming).
	if !dfsm.Isomorphic(ms[0], machines.SumCounter(3)) {
		t.Error("materialized F1 is not isomorphic to the (n0+n1) mod 3 counter")
	}
}

func TestIsFusionRejectsNonClosed(t *testing.T) {
	sys := fig2System(t)
	bad := partition.MustFromBlocks(4, [][]int{{0, 1}, {2}, {3}})
	if partition.IsClosed(sys.Top, bad) {
		t.Skip("chosen partition unexpectedly closed; pick another in test")
	}
	if _, err := sys.IsFusion([]partition.P{bad}, 1); err == nil {
		t.Fatal("IsFusion accepted a non-closed partition")
	}
}

func TestPartitionOfRejectsForeignMachine(t *testing.T) {
	sys := fig1System(t)
	// The MESI machine is unrelated to the counters' top.
	if _, err := sys.PartitionOf(machines.MESI()); err == nil {
		t.Fatal("PartitionOf accepted a machine that is not ≤ ⊤")
	}
}
