// Package core implements the paper's primary contribution: fault graphs
// and minimum Hamming distance over DFSM state spaces (Section 3),
// (f,m)-fusion theory (Section 4), and the three algorithms of Section 5 —
// set representation (Algorithm 1), fusion generation (Algorithm 2) and
// recovery by voting (Algorithm 3).
package core

import (
	"fmt"

	"repro/internal/dfsm"
	"repro/internal/partition"
)

// System is a set of original machines A together with their reachable
// cross product ⊤ and the closed partitions of ⊤'s state set that each
// original machine corresponds to. All fusion machinery operates on a
// System.
type System struct {
	// Machines are the original input machines A1..An.
	Machines []*dfsm.Machine
	// Product is the reachable cross product with projections.
	Product *dfsm.Product
	// Top is Product.Top, the ⊤ machine.
	Top *dfsm.Machine
	// Parts[i] is the closed partition of ⊤'s states induced by machine i.
	Parts []partition.P
}

// NewSystem builds the system for a set of machines: computes ⊤ = R(A) and
// each machine's partition of ⊤'s state set. Machine names must be unique.
func NewSystem(machines []*dfsm.Machine) (*System, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("core: system needs at least one machine")
	}
	seen := make(map[string]bool, len(machines))
	for _, m := range machines {
		if seen[m.Name()] {
			return nil, fmt.Errorf("core: duplicate machine name %q", m.Name())
		}
		seen[m.Name()] = true
	}
	prod, err := dfsm.ReachableCrossProduct(machines)
	if err != nil {
		return nil, err
	}
	n := prod.Top.NumStates()
	parts := make([]partition.P, len(machines))
	for i := range machines {
		assign := make([]int, n)
		for t, tuple := range prod.Proj {
			assign[t] = tuple[i]
		}
		parts[i] = partition.FromAssignment(assign)
		if !partition.IsClosed(prod.Top, parts[i]) {
			// Cannot happen: a projection of the product is closed by
			// construction. Guard anyway — a violation means Product is
			// buggy, which recovery must never silently build on.
			return nil, fmt.Errorf("core: projection of %q is not a closed partition of ⊤", machines[i].Name())
		}
	}
	return &System{
		Machines: append([]*dfsm.Machine(nil), machines...),
		Product:  prod,
		Top:      prod.Top,
		Parts:    parts,
	}, nil
}

// N returns |X⊤|, the number of states of the top machine.
func (s *System) N() int { return s.Top.NumStates() }

// Dmin returns dmin(A): the least fault-graph distance over the original
// machines alone (Section 3).
func (s *System) Dmin() int {
	return BuildFaultGraph(s.N(), s.Parts).Dmin()
}

// DminWith returns dmin(A ∪ F) for a set of extra machines given as closed
// partitions of ⊤'s states.
func (s *System) DminWith(extra []partition.P) int {
	parts := make([]partition.P, 0, len(s.Parts)+len(extra))
	parts = append(parts, s.Parts...)
	parts = append(parts, extra...)
	return BuildFaultGraph(s.N(), parts).Dmin()
}

// CrashFaultsTolerated returns the number of crash faults the original set
// tolerates with no backups: dmin(A) − 1 (Observation 1).
func (s *System) CrashFaultsTolerated() int { return s.Dmin() - 1 }

// ByzantineFaultsTolerated returns (dmin(A) − 1)/2 (Observation 1).
func (s *System) ByzantineFaultsTolerated() int { return (s.Dmin() - 1) / 2 }

// FusionExists reports whether an (f,m)-fusion of the system exists:
// m + dmin(A) > f (Theorem 4).
func (s *System) FusionExists(f, m int) bool { return m+s.Dmin() > f }

// IsFusion reports whether F is an (f,|F|)-fusion of the system:
// dmin(A ∪ F) > f (Definition 5). Each partition in F must be a closed
// partition of ⊤'s state set; non-closed input is an error.
func (s *System) IsFusion(F []partition.P, f int) (bool, error) {
	for i, p := range F {
		if p.N() != s.N() {
			return false, fmt.Errorf("core: fusion candidate %d partitions %d elements, ⊤ has %d states", i, p.N(), s.N())
		}
		if !partition.IsClosed(s.Top, p) {
			return false, fmt.Errorf("core: fusion candidate %d is not a closed partition of ⊤", i)
		}
	}
	return s.DminWith(F) > f, nil
}

// FusionMachines materializes quotient machines for a fusion set, named
// F1..Fm (or with the given prefix).
func (s *System) FusionMachines(F []partition.P, prefix string) ([]*dfsm.Machine, error) {
	if prefix == "" {
		prefix = "F"
	}
	out := make([]*dfsm.Machine, len(F))
	for i, p := range F {
		m, err := partition.Quotient(s.Top, p, fmt.Sprintf("%s%d", prefix, i+1))
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

// PartitionOf returns the closed partition of ⊤ corresponding to an
// arbitrary machine m with m ≤ ⊤, computed via Algorithm 1 (set
// representation). It errors if m is not ≤ ⊤.
func (s *System) PartitionOf(m *dfsm.Machine) (partition.P, error) {
	sets, err := SetRepresentation(s.Top, m)
	if err != nil {
		return partition.P{}, err
	}
	return partition.FromBlocks(s.N(), sets)
}
