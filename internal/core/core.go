package core
