package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dfsm"
	"repro/internal/partition"
)

// randomSystem builds a 2-machine random system from a seed.
func randomSystem(seed int64) (*core.System, error) {
	rng := rand.New(rand.NewSource(seed))
	return core.NewSystem([]*dfsm.Machine{
		dfsm.RandomMachine(rng, "X", 2+rng.Intn(4), []string{"a", "b"}),
		dfsm.RandomMachine(rng, "Y", 2+rng.Intn(4), []string{"a", "b"}),
	})
}

// TestQuickGeneratedDminExact: Algorithm 2 stops at dmin(A ∪ F) = f + 1
// exactly — it never over-provisions distance.
func TestQuickGeneratedDminExact(t *testing.T) {
	prop := func(seed int64, fRaw uint8) bool {
		f := int(fRaw % 3)
		sys, err := randomSystem(seed)
		if err != nil {
			return false
		}
		F, err := core.GenerateFusion(sys, f, core.GenerateOptions{})
		if err != nil {
			return false
		}
		d := sys.DminWith(F)
		if d <= f {
			return false // not a fusion
		}
		// Exactness: if machines were added at all, dmin is exactly f+1.
		if len(F) > 0 && d != f+1 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSetRepresentationRoundTrip: the quotient of any closed
// partition has exactly that partition as its set representation.
func TestQuickSetRepresentationRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		top := dfsm.RandomMachine(rng, "T", 2+rng.Intn(10), []string{"a", "b"})
		n := top.NumStates()
		x, y := rng.Intn(n), rng.Intn(n)
		p := partition.CloseMergingStates(top, partition.Singletons(n), x, y)
		q, err := partition.Quotient(top, p, "Q")
		if err != nil {
			return false
		}
		sets, err := core.SetRepresentation(top, q)
		if err != nil {
			return false
		}
		back, err := partition.FromBlocks(n, sets)
		if err != nil {
			return false
		}
		return back.Equal(p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTruthfulRecovery: with every machine reporting truthfully,
// Recover returns the exact top state after any event run.
func TestQuickTruthfulRecovery(t *testing.T) {
	prop := func(seed int64, streamLen uint8) bool {
		sys, err := randomSystem(seed)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 1))
		events := make([]string, streamLen%40)
		for i := range events {
			events[i] = []string{"a", "b"}[rng.Intn(2)]
		}
		truth := sys.Top.Run(events)
		var reports []core.Report
		for i, m := range sys.Machines {
			r, err := sys.ReportFor(i, m.Run(events))
			if err != nil {
				return false
			}
			reports = append(reports, r)
		}
		res, err := core.Recover(sys.N(), reports)
		if err != nil {
			// The originals alone may underdetermine ⊤ only if two top
			// states share every machine's block — impossible, since top
			// states are distinct component tuples.
			return false
		}
		return res.TopState == truth
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFusionPartitionsAreClosed: everything Algorithm 2 emits is a
// closed partition of the top — the structural invariant every downstream
// consumer (quotient, recovery, report) relies on.
func TestQuickFusionPartitionsAreClosed(t *testing.T) {
	prop := func(seed int64) bool {
		sys, err := randomSystem(seed)
		if err != nil {
			return false
		}
		F, err := core.GenerateFusion(sys, 2, core.GenerateOptions{})
		if err != nil {
			return false
		}
		for _, p := range F {
			if !partition.IsClosed(sys.Top, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
