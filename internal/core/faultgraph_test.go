package core_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/partition"
)

func TestFaultGraphFig4(t *testing.T) {
	// Reproduce the structure of Fig. 4 on the reconstructed Fig. 2 system:
	// G({A}) has exactly one zero-weight edge (the pair A does not
	// separate), G({A,B}) has dmin 1, and adding M1 raises dmin to 2.
	sys := fig2System(t)
	a, b := sys.Parts[0], sys.Parts[1]
	m1 := fig2M1(t, sys)

	gA := core.BuildFaultGraph(sys.N(), []partition.P{a})
	if gA.Dmin() != 0 {
		t.Errorf("dmin(G({A})) = %d, want 0 (A merges two top states)", gA.Dmin())
	}
	zero := 0
	for i := 0; i < sys.N(); i++ {
		for j := i + 1; j < sys.N(); j++ {
			w := gA.Weight(i, j)
			if w == 0 {
				zero++
			}
			if w < 0 || w > 1 {
				t.Errorf("G({A}) edge (%d,%d) weight %d out of range", i, j, w)
			}
		}
	}
	if zero != 1 {
		t.Errorf("G({A}) has %d zero edges, want 1 (Fig. 4(i): only (t0,t3))", zero)
	}

	gAB := core.BuildFaultGraph(sys.N(), []partition.P{a, b})
	if gAB.Dmin() != 1 {
		t.Errorf("dmin(G({A,B})) = %d, want 1 (Fig. 4(ii))", gAB.Dmin())
	}

	gABM1 := core.BuildFaultGraph(sys.N(), []partition.P{a, b, m1})
	if gABM1.Dmin() != 2 {
		t.Errorf("dmin(G({A,B,M1})) = %d, want 2 ({A,B,M1} tolerates one fault, Section 4)", gABM1.Dmin())
	}

	top := partition.Singletons(sys.N())
	gABM1Top := core.BuildFaultGraph(sys.N(), []partition.P{a, b, m1, top})
	if gABM1Top.Dmin() != 3 {
		t.Errorf("dmin(G({A,B,M1,⊤})) = %d, want 3 (Fig. 4(iv))", gABM1Top.Dmin())
	}
}

func TestFaultGraphAddRemoveInverse(t *testing.T) {
	sys := fig2System(t)
	g := core.BuildFaultGraph(sys.N(), sys.Parts)
	before := g.String()
	m1 := fig2M1(t, sys)
	g.Add(m1)
	g.Remove(m1)
	if got := g.String(); got != before {
		t.Fatalf("Add+Remove is not the identity:\nbefore:\n%s\nafter:\n%s", before, got)
	}
}

func TestFaultGraphWeakestEdges(t *testing.T) {
	sys := fig2System(t)
	g := core.BuildFaultGraph(sys.N(), sys.Parts)
	weak := g.WeakestEdges()
	if len(weak) == 0 {
		t.Fatal("no weakest edges on a multi-state graph")
	}
	d := g.Dmin()
	for _, e := range weak {
		if g.Weight(e.I, e.J) != d {
			t.Errorf("weakest edge (%d,%d) has weight %d, dmin %d", e.I, e.J, g.Weight(e.I, e.J), d)
		}
	}
	// Every edge at weight dmin must be listed.
	count := 0
	for i := 0; i < sys.N(); i++ {
		for j := i + 1; j < sys.N(); j++ {
			if g.Weight(i, j) == d {
				count++
			}
		}
	}
	if count != len(weak) {
		t.Errorf("WeakestEdges returned %d edges, graph has %d at dmin", len(weak), count)
	}
}

func TestFaultGraphEdgesAtMost(t *testing.T) {
	sys := fig2System(t)
	g := core.BuildFaultGraph(sys.N(), sys.Parts)
	all := g.EdgesAtMost(1 << 30)
	if want := sys.N() * (sys.N() - 1) / 2; len(all) != want {
		t.Fatalf("EdgesAtMost(∞) returned %d edges, want %d", len(all), want)
	}
	none := g.EdgesAtMost(-1)
	if len(none) != 0 {
		t.Fatalf("EdgesAtMost(-1) returned %d edges, want 0", len(none))
	}
}

func TestFaultGraphSingleState(t *testing.T) {
	g := core.NewFaultGraph(1)
	if g.Dmin() < 1<<30 {
		t.Errorf("single-state dmin = %d, want max int", g.Dmin())
	}
	if len(g.WeakestEdges()) != 0 {
		t.Error("single-state graph has weakest edges")
	}
}

func TestFaultGraphString(t *testing.T) {
	g := core.NewFaultGraph(2)
	s := g.String()
	if !strings.Contains(s, "dmin=0") {
		t.Errorf("String() = %q, want dmin=0 mentioned", s)
	}
}

// TestFaultGraphWeightSymmetric is a property test: Weight(i,j) equals
// Weight(j,i) and is bounded by the number of machines, for random
// partition sets.
func TestFaultGraphWeightSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		k := 1 + r.Intn(4)
		parts := make([]partition.P, k)
		for i := range parts {
			assign := make([]int, n)
			for j := range assign {
				assign[j] = r.Intn(n)
			}
			parts[i] = partition.FromAssignment(assign)
		}
		g := core.BuildFaultGraph(n, parts)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				w := g.Weight(i, j)
				if w != g.Weight(j, i) {
					return false
				}
				if w < 0 || w > k {
					return false
				}
				if i == j && w != 0 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCoversMatchesDefinition: Covers(p, edges) iff p separates each pair.
func TestCoversMatchesDefinition(t *testing.T) {
	p := partition.MustFromBlocks(4, [][]int{{0, 1}, {2}, {3}})
	if core.Covers(p, []core.Edge{{I: 0, J: 1}}) {
		t.Error("Covers says p separates 0,1 but they share a block")
	}
	if !core.Covers(p, []core.Edge{{I: 0, J: 2}, {I: 2, J: 3}}) {
		t.Error("Covers says p does not separate (0,2),(2,3)")
	}
	if !core.Covers(p, nil) {
		t.Error("Covers of the empty edge set must be true")
	}
}

// TestDminMonotoneUnderAdd is the property behind Theorems 3–5: adding a
// machine never lowers any edge weight and raises each by at most one.
func TestDminMonotoneUnderAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		assign := make([]int, n)
		for j := range assign {
			assign[j] = rng.Intn(3)
		}
		base := partition.FromAssignment(assign)
		g := core.BuildFaultGraph(n, []partition.P{base})
		d0 := g.Dmin()
		for j := range assign {
			assign[j] = rng.Intn(3)
		}
		g.Add(partition.FromAssignment(assign))
		d1 := g.Dmin()
		if d1 < d0 || d1 > d0+1 {
			t.Fatalf("dmin went %d -> %d after adding one machine", d0, d1)
		}
	}
}

// weakestEdgesRescan is the reference implementation of WeakestEdges: a
// full O(N²) scan of the weight matrix. The incremental bucket index must
// reproduce its output exactly (same edges, same lexicographic order).
func weakestEdgesRescan(g *core.FaultGraph) []core.Edge {
	n := g.N()
	d := g.Dmin()
	var out []core.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if g.Weight(i, j) == d {
				out = append(out, core.Edge{I: i, J: j})
			}
		}
	}
	return out
}

// TestWeakestEdgesIncrementalMatchesRescan is the equivalence property of
// the incremental weakest-edge index: after arbitrary interleavings of
// Add and Remove, WeakestEdges equals the full-rescan reference at every
// step, and so does a Clone taken mid-sequence.
func TestWeakestEdgesIncrementalMatchesRescan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(12)
		g := core.NewFaultGraph(n)
		var added []partition.P
		check := func(g *core.FaultGraph, step string) {
			got := g.WeakestEdges()
			want := weakestEdgesRescan(g)
			if len(got) != len(want) {
				t.Fatalf("trial %d %s: %d weakest edges, rescan finds %d", trial, step, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d %s: edge %d is %v, rescan says %v", trial, step, i, got[i], want[i])
				}
			}
		}
		check(g, "empty")
		for op := 0; op < 12; op++ {
			if len(added) > 0 && rng.Intn(4) == 0 {
				i := rng.Intn(len(added))
				g.Remove(added[i])
				added = append(added[:i], added[i+1:]...)
			} else {
				assign := make([]int, n)
				for j := range assign {
					assign[j] = rng.Intn(1 + rng.Intn(n))
				}
				p := partition.FromAssignment(assign)
				g.Add(p)
				added = append(added, p)
			}
			check(g, "op")
			check(g.Clone(), "clone")
		}
	}
}
