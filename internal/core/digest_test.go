package core

import (
	"math/rand"
	"testing"

	"repro/internal/dfsm"
	"repro/internal/machines"
)

func digestMachines(t *testing.T, names ...string) []*dfsm.Machine {
	t.Helper()
	ms := make([]*dfsm.Machine, len(names))
	for i, n := range names {
		m, err := machines.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}
	return ms
}

// TestRequestDigestDeterministic: the digest is a pure function of the
// request content — independently constructed machine instances with the
// same tables hash identically.
func TestRequestDigestDeterministic(t *testing.T) {
	a := digestMachines(t, "MESI", "1-Counter")
	b := digestMachines(t, "MESI", "1-Counter")
	if &a[0] == &b[0] {
		t.Fatal("want distinct machine instances")
	}
	if RequestDigest(a, 2, GenerateOptions{}) != RequestDigest(b, 2, GenerateOptions{}) {
		t.Fatal("same request content, different digests")
	}
}

// TestRequestDigestSensitivity: everything that can change the generated
// fusion changes the digest — machine set, machine order, f, and the
// outcome-affecting MaxMachines option.
func TestRequestDigestSensitivity(t *testing.T) {
	base := RequestDigest(digestMachines(t, "MESI", "1-Counter"), 2, GenerateOptions{})
	for name, other := range map[string]Digest{
		"different machine": RequestDigest(digestMachines(t, "MESI", "0-Counter"), 2, GenerateOptions{}),
		"machine order":     RequestDigest(digestMachines(t, "1-Counter", "MESI"), 2, GenerateOptions{}),
		"fewer machines":    RequestDigest(digestMachines(t, "MESI"), 2, GenerateOptions{}),
		"different f":       RequestDigest(digestMachines(t, "MESI", "1-Counter"), 1, GenerateOptions{}),
		"max machines":      RequestDigest(digestMachines(t, "MESI", "1-Counter"), 2, GenerateOptions{MaxMachines: 3}),
	} {
		if other == base {
			t.Errorf("%s: digest unchanged", name)
		}
	}
	// Pool and the cache opt-out are serving concerns, not content.
	if RequestDigest(digestMachines(t, "MESI", "1-Counter"), 2, GenerateOptions{NoCache: true}) != base {
		t.Error("NoCache changed the digest; it must not (it only routes around the cache)")
	}
}

// TestRequestDigestTableContent: the digest reads full transition tables,
// not names — two machines that differ only in behavior hash apart, and
// renaming a machine (same table) also hashes apart (names are part of
// the canonical serialization the JSON codec round-trips).
func TestRequestDigestTableContent(t *testing.T) {
	events := []string{"a", "b"}
	m1 := dfsm.RandomMachine(rand.New(rand.NewSource(1)), "m", 4, events)
	m2 := dfsm.RandomMachine(rand.New(rand.NewSource(2)), "m", 4, events)
	if RequestDigest([]*dfsm.Machine{m1}, 1, GenerateOptions{}) ==
		RequestDigest([]*dfsm.Machine{m2}, 1, GenerateOptions{}) {
		t.Fatal("same name, different tables: digests collide")
	}
	m3 := dfsm.RandomMachine(rand.New(rand.NewSource(1)), "renamed", 4, events)
	if RequestDigest([]*dfsm.Machine{m1}, 1, GenerateOptions{}) ==
		RequestDigest([]*dfsm.Machine{m3}, 1, GenerateOptions{}) {
		t.Fatal("renamed machine digests identically")
	}
}

// TestTableDigestMemoized: repeated digests of one instance are stable
// (and served from the memo rather than re-serialized).
func TestTableDigestMemoized(t *testing.T) {
	m := digestMachines(t, "TCP")[0]
	first := m.TableDigest()
	for i := 0; i < 3; i++ {
		if m.TableDigest() != first {
			t.Fatal("TableDigest not stable across calls")
		}
	}
}

func TestDigestStringRoundTrip(t *testing.T) {
	d := RequestDigest(digestMachines(t, "MESI"), 1, GenerateOptions{})
	s := d.String()
	if len(s) != 64 {
		t.Fatalf("hex form is %d chars, want 64", len(s))
	}
	back, ok := ParseDigest(s)
	if !ok || back != d {
		t.Fatalf("ParseDigest(%q) = %v, %v", s, back, ok)
	}
	for _, bad := range []string{"", "zz", s[:63], s + "0", s[:62] + "zz"} {
		if _, ok := ParseDigest(bad); ok {
			t.Errorf("ParseDigest(%q) accepted malformed input", bad)
		}
	}
}

func TestCacheable(t *testing.T) {
	if !(GenerateOptions{}).Cacheable() {
		t.Fatal("zero options must be cacheable")
	}
	for name, opts := range map[string]GenerateOptions{
		"NoCache":          {NoCache: true},
		"Recompute":        {Recompute: true},
		"NoGuardedClosure": {NoGuardedClosure: true},
		"NoIncremental":    {NoIncremental: true},
	} {
		if opts.Cacheable() {
			t.Errorf("%s: ablation/opt-out option reported cacheable", name)
		}
	}
}
