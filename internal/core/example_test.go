package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dfsm"
	"repro/internal/machines"
)

// ExampleGenerateFusion walks the paper's Fig. 1: Algorithm 2 finds one
// 3-state backup for the two mod-3 counters.
func ExampleGenerateFusion() {
	sys, err := core.NewSystem([]*dfsm.Machine{
		machines.ZeroCounter(), machines.OneCounter(),
	})
	if err != nil {
		log.Fatal(err)
	}
	F, err := core.GenerateFusion(sys, 1, core.GenerateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machines: %d, states: %d\n", len(F), F[0].NumBlocks())
	// Output:
	// machines: 1, states: 3
}

// ExampleSetRepresentation shows Algorithm 1 on the Fig. 2 machines.
func ExampleSetRepresentation() {
	sys, err := core.NewSystem([]*dfsm.Machine{machines.Fig2A(), machines.Fig2B()})
	if err != nil {
		log.Fatal(err)
	}
	sets, err := core.SetRepresentation(sys.Top, sys.Machines[0])
	if err != nil {
		log.Fatal(err)
	}
	for s, set := range sets {
		fmt.Printf("a%d -> %d top state(s)\n", s, len(set))
	}
	// Output:
	// a0 -> 2 top state(s)
	// a1 -> 1 top state(s)
	// a2 -> 1 top state(s)
}

// ExampleBuildFaultGraph computes dmin for the Fig. 2 system.
func ExampleBuildFaultGraph() {
	sys, err := core.NewSystem([]*dfsm.Machine{machines.Fig2A(), machines.Fig2B()})
	if err != nil {
		log.Fatal(err)
	}
	g := core.BuildFaultGraph(sys.N(), sys.Parts)
	fmt.Println("dmin:", g.Dmin())
	fmt.Println("weakest edges:", len(g.WeakestEdges()))
	// Output:
	// dmin: 1
	// weakest edges: 2
}

// ExampleRecover runs Algorithm 3 with one crashed counter.
func ExampleRecover() {
	sys, err := core.NewSystem([]*dfsm.Machine{
		machines.ZeroCounter(), machines.OneCounter(),
	})
	if err != nil {
		log.Fatal(err)
	}
	f1, err := sys.PartitionOf(machines.SumCounter(3))
	if err != nil {
		log.Fatal(err)
	}
	// After events 0,0,1: A=2, B=1, F1=0. A crashes.
	rb, _ := sys.ReportFor(1, 1)
	rf, _ := core.ReportForPartition("F1", f1, 0)
	res, err := core.Recover(sys.N(), []core.Report{rb, rf})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("A's state:", sys.Product.Proj[res.TopState][0])
	// Output:
	// A's state: 2
}

// ExampleSystem_FusionExists evaluates Theorem 4's boundary.
func ExampleSystem_FusionExists() {
	sys, err := core.NewSystem([]*dfsm.Machine{machines.Fig2A(), machines.Fig2B()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("(2,1):", sys.FusionExists(2, 1))
	fmt.Println("(2,2):", sys.FusionExists(2, 2))
	// Output:
	// (2,1): false
	// (2,2): true
}

// ExamplePlanFusion summarizes the fusion-vs-replication trade before
// deployment.
func ExamplePlanFusion() {
	sys, err := core.NewSystem([]*dfsm.Machine{
		machines.ZeroCounter(), machines.OneCounter(),
	})
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.PlanFusion(sys, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fusion %d states vs replication %d states\n",
		p.FusionStateSpace, p.ReplicationStateSpace)
	// Output:
	// fusion 9 states vs replication 81 states
}
