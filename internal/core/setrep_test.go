package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dfsm"
	"repro/internal/machines"
)

// TestSetRepresentationFig5 mirrors the worked example of Fig. 5: machine A
// of Fig. 2 against the top of {A,B}. Every A-state's set must be exactly
// the top states projecting onto it.
func TestSetRepresentationFig5(t *testing.T) {
	sys := fig2System(t)
	sets, err := core.SetRepresentation(sys.Top, sys.Machines[0])
	if err != nil {
		t.Fatalf("SetRepresentation: %v", err)
	}
	want := sys.Product.ComponentBlocks(0)
	if len(sets) != len(want) {
		t.Fatalf("got %d sets, want %d", len(sets), len(want))
	}
	for s := range sets {
		if len(sets[s]) != len(want[s]) {
			t.Fatalf("state %d: set %v, want %v", s, sets[s], want[s])
		}
		for i := range sets[s] {
			if sets[s][i] != want[s][i] {
				t.Fatalf("state %d: set %v, want %v", s, sets[s], want[s])
			}
		}
	}
	// Per the paper's Fig. 5 narrative, A has one two-element set (a0 ↔
	// {t0,t3}) and two singletons.
	sizes := map[int]int{}
	for _, set := range sets {
		sizes[len(set)]++
	}
	if sizes[2] != 1 || sizes[1] != 2 {
		t.Errorf("set sizes %v, want one pair and two singletons", sizes)
	}
}

// TestSetRepresentationSelf: the set representation of ⊤ w.r.t. itself is
// all singletons ("Every state in machine T is a set containing exactly one
// element", Section 5).
func TestSetRepresentationSelf(t *testing.T) {
	sys := fig2System(t)
	sets, err := core.SetRepresentation(sys.Top, sys.Top)
	if err != nil {
		t.Fatal(err)
	}
	for s, set := range sets {
		if len(set) != 1 || set[0] != s {
			t.Fatalf("state %d: set %v, want {%d}", s, set, s)
		}
	}
}

// TestSetRepresentationBottom: a one-state machine (⊥) maps every top state
// to its single state.
func TestSetRepresentationBottom(t *testing.T) {
	sys := fig2System(t)
	bottom := dfsm.MustMachine("bottom", []string{"z"}, []string{"0", "1"},
		[][]int{{0, 0}}, 0)
	sets, err := core.SetRepresentation(sys.Top, bottom)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || len(sets[0]) != sys.N() {
		t.Fatalf("bottom sets = %v, want one set of %d states", sets, sys.N())
	}
}

// TestSetRepresentationForeignAlphabet: a machine ignoring the top's events
// entirely never leaves its initial state, so only single-state machines of
// that kind are ≤ ⊤.
func TestSetRepresentationForeignAlphabet(t *testing.T) {
	sys := fig2System(t)
	if _, err := core.SetRepresentation(sys.Top, machines.MESI()); err == nil {
		t.Fatal("SetRepresentation accepted MESI against the Fig. 2 top")
	}
}

// TestSetRepresentationDetectsNonQuotient: a machine with the right alphabet
// but inconsistent transitions is rejected.
func TestSetRepresentationDetectsNonQuotient(t *testing.T) {
	sys := fig2System(t)
	// A 2-state machine that toggles on event 0 and holds on event 1. The
	// Fig. 2 top has a state with a 0-self-loop path structure incompatible
	// with a clean 2-coloring; verify rejection (if it happens to embed,
	// the test is vacuous — assert via IsClosed instead).
	tog := dfsm.MustMachine("tog2", []string{"x", "y"}, []string{"0", "1"},
		[][]int{{1, 0}, {0, 1}}, 0)
	if _, err := core.SetRepresentation(sys.Top, tog); err == nil {
		p, perr := sys.PartitionOf(tog)
		if perr != nil {
			t.Fatalf("SetRepresentation succeeded but PartitionOf failed: %v", perr)
		}
		if p.NumBlocks() != 2 {
			t.Fatalf("embedded toggle has %d blocks, want 2", p.NumBlocks())
		}
		t.Skip("toggle embeds in this top; rejection exercised elsewhere")
	}
}

// TestStateMapping: mapping is the inverse of the set representation.
func TestStateMapping(t *testing.T) {
	sys := fig2System(t)
	mapping, err := core.StateMapping(sys.Top, sys.Machines[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(mapping) != sys.N() {
		t.Fatalf("mapping over %d states, want %d", len(mapping), sys.N())
	}
	for ti, tuple := range sys.Product.Proj {
		if mapping[ti] != tuple[1] {
			t.Errorf("top state %d maps to %d, projection says %d", ti, mapping[ti], tuple[1])
		}
	}
}
