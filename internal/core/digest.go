package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"repro/internal/dfsm"
)

// DigestScheme versions the request-digest layout. It is the first byte
// of the hashed stream AND a field of every persisted cache entry, so
// bumping it — for an algorithm change that alters generated fusions, or
// a serialization change — cleanly invalidates every previously stored
// digest instead of serving stale results under colliding keys.
const DigestScheme = 1

// Digest is the content address of one Generate request: a SHA-256 over
// the canonical serialization of everything that determines the output of
// Algorithm 2 — the machines' full transition tables (via
// dfsm.TableDigest), the fault budget f, and the semantics-affecting
// generation options. Requests with equal digests produce bit-identical
// fusions; the fcache package keys on it, and cross-tenant sharing is
// safe exactly because no tenant identity participates here.
type Digest [32]byte

// String returns the digest in lowercase hex (the persisted-entry key
// form).
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// ParseDigest decodes the hex form; ok is false on malformed input.
func ParseDigest(s string) (Digest, bool) {
	var d Digest
	if len(s) != 2*len(d) {
		return Digest{}, false
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return Digest{}, false
	}
	copy(d[:], b)
	return d, true
}

// RequestDigest computes the content address of GenerateFusion(sys, f,
// opts) for a system built from ms (machine order matters — it determines
// block numbering in ⊤ and therefore the partitions' canonical form).
//
// Of the options only MaxMachines participates: it changes the outcome
// (success vs. the too-many-machines error). Pool never affects results,
// and the ablation knobs (Recompute, NoGuardedClosure, NoIncremental,
// NoPairMemo) return bit-identical fusions by construction — but cacheable requests
// must not carry them anyway (see Options.Cacheable), since serving an
// ablation run from cache would defeat its purpose of measuring.
func RequestDigest(ms []*dfsm.Machine, f int, opts GenerateOptions) Digest {
	buf := make([]byte, 0, 24+32*len(ms))
	buf = append(buf, DigestScheme)
	buf = binary.AppendUvarint(buf, uint64(f))
	buf = binary.AppendUvarint(buf, uint64(opts.MaxMachines))
	buf = binary.AppendUvarint(buf, uint64(len(ms)))
	for _, m := range ms {
		d := m.TableDigest()
		buf = append(buf, d[:]...)
	}
	return sha256.Sum256(buf)
}

// Cacheable reports whether a Generate call with these options may be
// served from (and populate) the content-addressed fusion cache: no
// explicit opt-out, and none of the ablation knobs that exist to measure
// the generation path itself.
func (o GenerateOptions) Cacheable() bool {
	return !o.NoCache && !o.Recompute && !o.NoGuardedClosure && !o.NoIncremental && !o.NoPairMemo
}
