package obsv

import (
	"bytes"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// testPlane builds an Obs wrapping a small mux that mimics the daemon's
// route shapes.
func testPlane(t *testing.T, opts Options) (*Obs, http.Handler) {
	t.Helper()
	o := New(opts)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("POST /v1/generate", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Fusion-Cache", "hit")
		fmt.Fprint(w, `{"n":9}`)
	})
	mux.HandleFunc("GET /v1/clusters/{id}", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	})
	mux.HandleFunc("GET /slow", func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	})
	return o, o.Middleware(mux)
}

func TestMiddlewareRequestID(t *testing.T) {
	_, h := testPlane(t, Options{})

	// Generated when absent.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	id := w.Header().Get(HeaderRequestID)
	if id == "" {
		t.Fatal("no request id generated")
	}

	// Propagated verbatim when well-formed.
	r := httptest.NewRequest("GET", "/healthz", nil)
	r.Header.Set(HeaderRequestID, "trace-42/abc")
	w = httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if got := w.Header().Get(HeaderRequestID); got != "trace-42/abc" {
		t.Fatalf("propagated id = %q, want trace-42/abc", got)
	}

	// A malformed id (header injection shapes) is replaced, not echoed.
	r = httptest.NewRequest("GET", "/healthz", nil)
	r.Header.Set(HeaderRequestID, `evil" inject`)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if got := w.Header().Get(HeaderRequestID); got == `evil" inject` || got == "" {
		t.Fatalf("malformed id echoed back: %q", got)
	}

	// Ids are unique per request.
	w2 := httptest.NewRecorder()
	h.ServeHTTP(w2, httptest.NewRequest("GET", "/healthz", nil))
	if id2 := w2.Header().Get(HeaderRequestID); id2 == id {
		t.Fatalf("two requests got the same id %q", id)
	}
}

func TestMiddlewareRoleHeader(t *testing.T) {
	_, h := testPlane(t, Options{RoleFn: func() string { return "leader" }})
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	if got := w.Header().Get("X-Fusion-Role"); got != "leader" {
		t.Fatalf("role header = %q, want leader", got)
	}
	// Unmatched routes (mux 404) carry it too — sheds stay traceable.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/no/such/route", nil))
	if got := w.Header().Get("X-Fusion-Role"); got != "leader" {
		t.Fatalf("role header on 404 = %q, want leader", got)
	}
	if w.Header().Get(HeaderRequestID) == "" {
		t.Fatal("404 path lost the request id")
	}
}

func TestMiddlewareRecordsRouteSeries(t *testing.T) {
	o, h := testPlane(t, Options{})
	for i := 0; i < 3; i++ {
		w := httptest.NewRecorder()
		r := httptest.NewRequest("POST", "/v1/generate", strings.NewReader("{}"))
		r.Header.Set("X-Fusion-Tenant", "acme")
		h.ServeHTTP(w, r)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/clusters/c1", nil))

	routes := o.SnapshotRoutes()
	if s := routes["/v1/generate"]; s.Count != 3 {
		t.Fatalf("generate route count = %d, want 3 (routes: %v)", s.Count, routes)
	}
	// The path parameter must not leak into the route label.
	if s := routes["/v1/clusters/{id}"]; s.Count != 1 {
		t.Fatalf("cluster route count = %d, want 1 under the pattern label (routes: %v)", s.Count, routes)
	}
	if _, ok := routes["/v1/clusters/c1"]; ok {
		t.Fatal("raw URL leaked into route labels")
	}

	// The full label set behind the scenes: status class and cache
	// disposition distinguish series.
	var foundHit, found4xx bool
	o.series.Range(func(k, v any) bool {
		key := k.(seriesKey)
		if key.Route == "/v1/generate" && key.Cache == "hit" && key.Tenant == "acme" && key.Status == "2xx" {
			foundHit = true
		}
		if key.Route == "/v1/clusters/{id}" && key.Status == "4xx" && key.Cache == "none" {
			found4xx = true
		}
		return true
	})
	if !foundHit || !found4xx {
		t.Fatalf("expected labeled series missing (hit=%v 4xx=%v)", foundHit, found4xx)
	}
}

func TestMiddlewareAccessLog(t *testing.T) {
	o, h := testPlane(t, Options{LogSize: 4})
	for i := 0; i < 6; i++ { // overflow the 4-slot ring
		w := httptest.NewRecorder()
		r := httptest.NewRequest("POST", "/v1/generate", strings.NewReader("{}"))
		r.Header.Set(HeaderRequestID, fmt.Sprintf("req-%d", i))
		h.ServeHTTP(w, r)
	}
	recs := o.Tail(10)
	if len(recs) != 4 {
		t.Fatalf("tail returned %d records, want ring size 4", len(recs))
	}
	for i, rec := range recs {
		want := fmt.Sprintf("req-%d", i+2) // oldest two dropped
		if rec.ID != want {
			t.Fatalf("tail[%d].ID = %q, want %q", i, rec.ID, want)
		}
		if rec.Route != "/v1/generate" || rec.Method != "POST" || rec.Status != 200 {
			t.Fatalf("tail[%d] = %+v, want generate record", i, rec)
		}
		if rec.Cache != "hit" {
			t.Fatalf("tail[%d].Cache = %q, want hit", i, rec.Cache)
		}
	}

	// The HTTP tail endpoint serves the same records.
	w := httptest.NewRecorder()
	o.HandleDebugLog(w, httptest.NewRequest("GET", "/debug/log?n=2", nil))
	if w.Code != 200 {
		t.Fatalf("debug/log status %d", w.Code)
	}
	body := w.Body.String()
	if !strings.Contains(body, `"total": 6`) || !strings.Contains(body, "req-5") || strings.Contains(body, "req-3") {
		t.Fatalf("debug/log?n=2 body wrong:\n%s", body)
	}
	w = httptest.NewRecorder()
	o.HandleDebugLog(w, httptest.NewRequest("GET", "/debug/log?n=bogus", nil))
	if w.Code != 400 {
		t.Fatalf("bad n: status %d, want 400", w.Code)
	}
}

func TestMiddlewareSlowLog(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	o, h := testPlane(t, Options{SlowThreshold: time.Millisecond, Logger: logger})
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/slow", nil))
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	if o.slow.Load() != 1 {
		t.Fatalf("slow counter = %d, want 1", o.slow.Load())
	}
	line := buf.String()
	if !strings.Contains(line, "slow request") || !strings.Contains(line, "route=/slow") {
		t.Fatalf("slow log line wrong: %q", line)
	}
}

func TestSeriesOverflowFoldsTenant(t *testing.T) {
	o, h := testPlane(t, Options{MaxSeries: 2})
	for i := 0; i < 10; i++ {
		r := httptest.NewRequest("GET", "/healthz", nil)
		r.Header.Set("X-Fusion-Tenant", fmt.Sprintf("t%d", i))
		h.ServeHTTP(httptest.NewRecorder(), r)
	}
	var overflow uint64
	n := 0
	o.series.Range(func(k, v any) bool {
		n++
		if k.(seriesKey).Tenant == "~overflow" {
			overflow = v.(*routeStats).hist.Snapshot().Count
		}
		return true
	})
	if n > 3 { // 2 real series + the overflow fold
		t.Fatalf("series grew to %d despite cap", n)
	}
	if overflow == 0 {
		t.Fatal("no overflow series absorbed the excess tenants")
	}
}

func TestTenantLabel(t *testing.T) {
	cases := map[string]string{
		"":                      "default",
		"acme":                  "acme",
		"a.b-c_d":               "a.b-c_d",
		".hidden":               "~invalid",
		"sp ace":                "~invalid",
		`q"uote`:                "~invalid",
		strings.Repeat("x", 65): "~invalid",
	}
	for in, want := range cases {
		if got := tenantLabel(in); got != want {
			t.Errorf("tenantLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestMiddlewareConcurrent drives the full middleware concurrently; the
// -race CI job makes this the data-race contract for the whole plane.
func TestMiddlewareConcurrent(t *testing.T) {
	o, h := testPlane(t, Options{LogSize: 64})
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec := httptest.NewRecorder()
				r := httptest.NewRequest("GET", "/healthz", nil)
				r.Header.Set("X-Fusion-Tenant", fmt.Sprintf("t%d", w%3))
				h.ServeHTTP(rec, r)
				if i%50 == 0 {
					var b bytes.Buffer
					o.WriteMetrics(&b)
					o.Tail(10)
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, s := range o.SnapshotRoutes() {
		total += s.Count
	}
	if total != workers*per {
		t.Fatalf("recorded %d requests, want %d", total, workers*per)
	}
	if o.InFlight() != 0 {
		t.Fatalf("in-flight = %d after drain", o.InFlight())
	}
}

// BenchmarkMiddleware prices one request's trip through the full
// middleware against the bare handler: id mint + header stamps +
// statusRecorder + histogram record + access-log append. The
// per-request budget pinned in benchmarks/README.md is < 2µs.
func BenchmarkMiddleware(b *testing.B) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true}`)) //nolint:errcheck // recorder
	})
	run := func(b *testing.B, h http.Handler) {
		r := httptest.NewRequest("GET", "/healthz", nil)
		r.Pattern = "GET /healthz"
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.ServeHTTP(httptest.NewRecorder(), r)
		}
	}
	b.Run("bare", func(b *testing.B) { run(b, handler) })
	b.Run("observed", func(b *testing.B) {
		o := New(Options{RoleFn: func() string { return "single" }})
		run(b, o.Middleware(handler))
	})
}
