package obsv

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestWriteMetricsParses is the writer↔parser round trip: everything
// the plane emits must survive its own strict parser, histogram
// invariants included.
func TestWriteMetricsParses(t *testing.T) {
	o, h := testPlane(t, Options{SlowThreshold: time.Nanosecond})
	for i := 0; i < 5; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/generate", strings.NewReader("{}")))
	}
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/clusters/c9", nil))

	var b bytes.Buffer
	o.WriteMetrics(&b)
	exp, err := ParseText(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatalf("own exposition rejected: %v\n%s", err, b.String())
	}
	hf := exp.Family(MetricRequestDuration)
	if hf == nil || hf.Type != "histogram" {
		t.Fatalf("latency family missing or mistyped: %+v", hf)
	}
	var count float64
	for _, s := range hf.Samples {
		if s.Name == MetricRequestDuration+"_count" {
			count += s.Value
		}
	}
	if count != 6 {
		t.Fatalf("histogram counts sum to %g, want 6", count)
	}
	for _, name := range []string{MetricResponseBytes, MetricSlowRequests, MetricInFlight, MetricBuildInfo, MetricGoroutines, "fusiond_process_rss_bytes", "fusiond_process_uptime_seconds"} {
		if exp.Family(name) == nil {
			t.Errorf("family %q missing from exposition", name)
		}
	}
	if bi := exp.Family(MetricBuildInfo); bi != nil {
		if len(bi.Samples) != 1 || bi.Samples[0].Value != 1 || bi.Samples[0].Label("go") == "" {
			t.Fatalf("build info sample wrong: %+v", bi.Samples)
		}
	}
}

// TestWriteMetricsDeterministic: two writes of the same state produce
// the same families in the same order with the same histogram series.
func TestWriteMetricsDeterministic(t *testing.T) {
	o, h := testPlane(t, Options{})
	for i := 0; i < 3; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/healthz", nil))
	}
	var b1, b2 bytes.Buffer
	o.WriteMetrics(&b1)
	o.WriteMetrics(&b2)
	e1, err := ParseText(&b1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ParseText(&b2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e1.Order, e2.Order) {
		t.Fatalf("family order differs:\n%v\n%v", e1.Order, e2.Order)
	}
	f1, f2 := e1.Family(MetricRequestDuration), e2.Family(MetricRequestDuration)
	if !reflect.DeepEqual(f1.Samples, f2.Samples) {
		t.Fatalf("histogram series differ between scrapes:\n%v\n%v", f1.Samples, f2.Samples)
	}
}

func TestEscapeLabelRoundTrip(t *testing.T) {
	hostile := "a\\b\"c\nd"
	line := "m{l=\"" + escapeLabel(hostile) + "\"} 1\n"
	page := "# HELP m h\n# TYPE m gauge\n" + line
	exp, err := ParseText(strings.NewReader(page))
	if err != nil {
		t.Fatalf("escaped label rejected: %v", err)
	}
	if got := exp.Family("m").Samples[0].Label("l"); got != hostile {
		t.Fatalf("label round trip = %q, want %q", got, hostile)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample before header":  "m 1\n",
		"TYPE without HELP":     "# TYPE m gauge\nm 1\n",
		"HELP without TYPE":     "# HELP m h\nm 1\n",
		"stray comment":         "# HELP m h\n# TYPE m gauge\n# noise\nm 1\n",
		"blank line":            "# HELP m h\n# TYPE m gauge\n\nm 1\n",
		"reopened family":       "# HELP m h\n# TYPE m gauge\nm 1\n# HELP o h\n# TYPE o gauge\no 1\n# HELP m h\n# TYPE m gauge\nm 2\n",
		"foreign sample":        "# HELP m h\n# TYPE m gauge\nother 1\n",
		"bad escape":            "# HELP m h\n# TYPE m gauge\nm{l=\"\\t\"} 1\n",
		"unquoted label":        "# HELP m h\n# TYPE m gauge\nm{l=v} 1\n",
		"duplicate label":       "# HELP m h\n# TYPE m gauge\nm{l=\"a\",l=\"b\"} 1\n",
		"duplicate sample":      "# HELP m h\n# TYPE m gauge\nm{l=\"a\"} 1\nm{l=\"a\"} 2\n",
		"bad value":             "# HELP m h\n# TYPE m gauge\nm one\n",
		"trailing token":        "# HELP m h\n# TYPE m gauge\nm 1 99999\n",
		"bare histogram name":   "# HELP m h\n# TYPE m histogram\nm 1\n",
		"bucket without le":     "# HELP m h\n# TYPE m histogram\nm_bucket 1\n",
		"missing +Inf":          "# HELP m h\n# TYPE m histogram\nm_bucket{le=\"1\"} 1\nm_sum 1\nm_count 1\n",
		"shrinking cumulative":  "# HELP m h\n# TYPE m histogram\nm_bucket{le=\"1\"} 5\nm_bucket{le=\"2\"} 3\nm_bucket{le=\"+Inf\"} 5\nm_sum 1\nm_count 5\n",
		"count != +Inf":         "# HELP m h\n# TYPE m histogram\nm_bucket{le=\"1\"} 1\nm_bucket{le=\"+Inf\"} 2\nm_sum 1\nm_count 3\n",
		"histogram without sum": "# HELP m h\n# TYPE m histogram\nm_bucket{le=\"+Inf\"} 1\nm_count 1\n",
	}
	for name, page := range cases {
		if _, err := ParseText(strings.NewReader(page)); err == nil {
			t.Errorf("%s: parser accepted malformed page:\n%s", name, page)
		}
	}
}

func TestQuantileBy(t *testing.T) {
	// Two routes; /a has two status series that must merge. /a: 100
	// obs <=0.1 and 100 in (0.1, 0.2]; p50 = 0.1 exactly at the seam,
	// p99 interpolates inside (0.1, 0.2].
	page := `# HELP d h
# TYPE d histogram
d_bucket{route="/a",status="2xx",le="0.1"} 100
d_bucket{route="/a",status="2xx",le="0.2"} 100
d_bucket{route="/a",status="2xx",le="+Inf"} 100
d_sum{route="/a",status="2xx"} 5
d_count{route="/a",status="2xx"} 100
d_bucket{route="/a",status="4xx",le="0.1"} 0
d_bucket{route="/a",status="4xx",le="0.2"} 100
d_bucket{route="/a",status="4xx",le="+Inf"} 100
d_sum{route="/a",status="4xx"} 15
d_count{route="/a",status="4xx"} 100
d_bucket{route="/b",le="0.1"} 10
d_bucket{route="/b",le="+Inf"} 10
d_sum{route="/b"} 1
d_count{route="/b"} 10
`
	exp, err := ParseText(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	p50, err := exp.Family("d").QuantileBy("route", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p50["/a"]-0.1) > 1e-9 {
		t.Fatalf("p50[/a] = %g, want 0.1", p50["/a"])
	}
	p99, _ := exp.Family("d").QuantileBy("route", 0.99)
	if p99["/a"] <= 0.1 || p99["/a"] > 0.2 {
		t.Fatalf("p99[/a] = %g, want in (0.1, 0.2]", p99["/a"])
	}
	if p99["/b"] <= 0 || p99["/b"] > 0.1 {
		t.Fatalf("p99[/b] = %g, want in (0, 0.1]", p99["/b"])
	}
}

// TestRegisterPprof: the handlers mount and answer without touching
// http.DefaultServeMux.
func TestRegisterPprof(t *testing.T) {
	mux := http.NewServeMux()
	RegisterPprof(mux)
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if w.Code != 200 || !strings.Contains(w.Body.String(), "goroutine") {
		t.Fatalf("pprof index: status %d body %q", w.Code, w.Body.String()[:min(120, w.Body.Len())])
	}
	if h, _ := http.DefaultServeMux.Handler(httptest.NewRequest("GET", "/debug/pprof/", nil)); h != nil {
		// net/http/pprof's init registers on DefaultServeMux no matter
		// what; the point is OUR daemon never serves DefaultServeMux.
		_ = h
	}
}
