// Package obsv is fusiond's observability plane: lock-free per-route
// latency histograms with mergeable snapshots, request-id + access-log
// middleware over a bounded ring buffer, process/build gauges, a strict
// Prometheus text-exposition writer and parser, and flag-gated pprof
// registration. It is deliberately dependency-free — the daemon's
// serving hot path records into it on every request, so everything on
// the write side is a handful of atomic adds.
package obsv

import (
	"math"
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

// The latency histogram uses fixed log-spaced buckets: powers of two
// from 1µs to 2^26µs (~67s), plus the implicit +Inf overflow. The range
// covers everything the daemon serves — a warm cache hit lands in the
// single-digit-µs buckets, a cold Table 1 row in the ms–s range, and a
// soak-stalled request still resolves below the top bound — while the
// bucket index is one bits.Len64 away, so recording stays lock-free and
// branch-light.
const (
	numBuckets = 27 // upper bounds 2^0 .. 2^26 µs
	infBucket  = numBuckets
)

// bucketBounds returns the finite upper bounds in seconds, ascending.
func bucketBounds() []float64 {
	b := make([]float64, numBuckets)
	for i := range b {
		b[i] = float64(uint64(1)<<i) * 1e-6
	}
	return b
}

// bucketIndex maps a duration to its bucket: the smallest i with
// d <= 2^i µs, or infBucket past the top bound. Sub-microsecond
// remainders round the duration up, so an observation never lands in a
// bucket whose bound it exceeds.
func bucketIndex(d time.Duration) int {
	us := uint64(d+time.Microsecond-1) / uint64(time.Microsecond)
	if us <= 1 {
		return 0
	}
	// bits.Len64(us-1) is ceil(log2(us)) for us > 1.
	i := bits.Len64(us - 1)
	if i >= numBuckets {
		return infBucket
	}
	return i
}

// Histogram is a lock-free fixed-bucket latency histogram. The zero
// value is ready to use; Record is safe for concurrent use and costs
// three atomic adds.
type Histogram struct {
	buckets [numBuckets + 1]atomic.Uint64 // per-bucket counts, +Inf last
	count   atomic.Uint64
	sumNS   atomic.Int64 // total observed time in nanoseconds
}

// Record observes one duration. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// Snapshot copies the histogram's counters. Concurrent Records may land
// between the bucket reads — a snapshot is a consistent-enough view for
// monitoring, not a linearizable cut — so Count is recomputed from the
// bucket sum to keep _count and the +Inf cumulative bucket equal, which
// the Prometheus exposition format requires.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.SumSeconds = float64(h.sumNS.Load()) / 1e9
	return s
}

// Snapshot is a point-in-time copy of a Histogram: non-cumulative bucket
// counts (last is +Inf), total count, and the sum in seconds. Snapshots
// merge by addition, so per-worker histograms roll up exactly.
type Snapshot struct {
	Buckets    [numBuckets + 1]uint64
	Count      uint64
	SumSeconds float64
}

// Merge adds other into s.
func (s *Snapshot) Merge(other Snapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
	s.Count += other.Count
	s.SumSeconds += other.SumSeconds
}

// Quantile estimates the q-quantile (0 <= q <= 1) in seconds by linear
// interpolation inside the target bucket, the same estimate
// histogram_quantile() computes server-side in Prometheus. An empty
// snapshot reports 0; a quantile landing in +Inf reports the top finite
// bound (there is no upper edge to interpolate toward).
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	bounds := bucketBounds()
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= numBuckets {
			return bounds[numBuckets-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - prev) / float64(c)
		if math.IsNaN(frac) || frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	return bounds[numBuckets-1]
}

// formatBound renders a bucket bound the way the exposition writer and
// the soak report agree on: shortest round-trip decimal.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
