package obsv

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Metric family names the plane exports; the server's /metrics handler
// and the soak report address them by these constants.
const (
	MetricRequestDuration = "fusiond_http_request_duration_seconds"
	MetricResponseBytes   = "fusiond_http_response_bytes_total"
	MetricSlowRequests    = "fusiond_http_slow_requests_total"
	MetricInFlight        = "fusiond_http_requests_in_flight"
	MetricBuildInfo       = "fusiond_build_info"
	MetricGoroutines      = "fusiond_process_goroutines"
)

// escapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double quote, and newline.
func escapeLabel(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// WriteHistogram emits one unlabeled histogram family (with HELP/TYPE
// headers) from a Snapshot, in the same exposition shape WriteMetrics
// uses for the request-latency family. Subsystems that track latencies
// with an obsv.Histogram but export through their own metrics handler
// (the server's store flush histogram) render with it.
func WriteHistogram(w io.Writer, name, help string, s Snapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	bounds := bucketBounds()
	var cum uint64
	for i, c := range s.Buckets[:numBuckets] {
		cum += c
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, formatBound(bounds[i]), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatBound(s.SumSeconds))
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}

// WriteMetrics emits the plane's series in the Prometheus text format:
// the per-route latency histogram family (proper _bucket/_sum/_count
// with cumulative le buckets), response-byte counters, the slow and
// in-flight gauges, build info, and the process gauges. Series are
// sorted, so two scrapes of the same state are byte-identical —
// exposition order is part of the contract the parser test pins.
func (o *Obs) WriteMetrics(w io.Writer) {
	type row struct {
		key   seriesKey
		snap  Snapshot
		bytes int64
	}
	var rows []row
	o.series.Range(func(k, v any) bool {
		st := v.(*routeStats)
		rows = append(rows, row{key: k.(seriesKey), snap: st.hist.Snapshot(), bytes: st.bytes.Load()})
		return true
	})
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i].key, rows[j].key
		if a.Route != b.Route {
			return a.Route < b.Route
		}
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		if a.Status != b.Status {
			return a.Status < b.Status
		}
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		return a.Cache < b.Cache
	})

	labels := func(k seriesKey) string {
		return fmt.Sprintf(`route="%s",method="%s",status="%s",tenant="%s",cache="%s"`,
			escapeLabel(k.Route), escapeLabel(k.Method), escapeLabel(k.Status),
			escapeLabel(k.Tenant), escapeLabel(k.Cache))
	}

	bounds := bucketBounds()
	fmt.Fprintf(w, "# HELP %s End-to-end request latency by route, through the full middleware/handler stack.\n", MetricRequestDuration)
	fmt.Fprintf(w, "# TYPE %s histogram\n", MetricRequestDuration)
	for _, r := range rows {
		ls := labels(r.key)
		var cum uint64
		for i, c := range r.snap.Buckets[:numBuckets] {
			cum += c
			fmt.Fprintf(w, "%s_bucket{%s,le=\"%s\"} %d\n", MetricRequestDuration, ls, formatBound(bounds[i]), cum)
		}
		fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", MetricRequestDuration, ls, r.snap.Count)
		fmt.Fprintf(w, "%s_sum{%s} %s\n", MetricRequestDuration, ls, formatBound(r.snap.SumSeconds))
		fmt.Fprintf(w, "%s_count{%s} %d\n", MetricRequestDuration, ls, r.snap.Count)
	}

	fmt.Fprintf(w, "# HELP %s Response body bytes written, by route.\n# TYPE %s counter\n", MetricResponseBytes, MetricResponseBytes)
	for _, r := range rows {
		fmt.Fprintf(w, "%s{%s} %d\n", MetricResponseBytes, labels(r.key), r.bytes)
	}

	fmt.Fprintf(w, "# HELP %s Requests slower than the slow-request threshold.\n# TYPE %s counter\n%s %d\n",
		MetricSlowRequests, MetricSlowRequests, MetricSlowRequests, o.slow.Load())
	fmt.Fprintf(w, "# HELP %s Requests currently being served.\n# TYPE %s gauge\n%s %d\n",
		MetricInFlight, MetricInFlight, MetricInFlight, o.inflight.Load())

	bi := Build()
	rev := bi.Revision
	if rev == "" {
		rev = "unknown"
	}
	fmt.Fprintf(w, "# HELP %s Build identity of the running binary (value is always 1).\n# TYPE %s gauge\n", MetricBuildInfo, MetricBuildInfo)
	fmt.Fprintf(w, "%s{version=\"%s\",go=\"%s\",revision=\"%s\"} 1\n",
		MetricBuildInfo, escapeLabel(bi.Version), escapeLabel(bi.GoVersion), escapeLabel(rev))

	ps := o.Process()
	for _, g := range []struct {
		name, help, typ string
		v               string
	}{
		{MetricGoroutines, "Live goroutines.", "gauge", fmt.Sprintf("%d", ps.Goroutines)},
		{"fusiond_process_heap_alloc_bytes", "Live heap bytes (runtime.MemStats.HeapAlloc).", "gauge", fmt.Sprintf("%d", ps.HeapBytes)},
		{"fusiond_process_sys_bytes", "Total bytes obtained from the OS (runtime.MemStats.Sys).", "gauge", fmt.Sprintf("%d", ps.SysBytes)},
		{"fusiond_process_rss_bytes", "Resident set size from /proc (0 where unavailable).", "gauge", fmt.Sprintf("%d", ps.RSSBytes)},
		{"fusiond_process_uptime_seconds", "Seconds since the daemon booted.", "gauge", formatBound(ps.UptimeSeconds)},
		{"fusiond_process_gc_pause_seconds_total", "Cumulative stop-the-world GC pause.", "counter", formatBound(ps.GCPauseTotal)},
		{"fusiond_process_gcs_total", "Completed GC cycles.", "counter", fmt.Sprintf("%d", ps.NumGC)},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", g.name, g.help, g.name, g.typ, g.name, g.v)
	}
}
