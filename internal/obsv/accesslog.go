package obsv

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// AccessRecord is one structured access-log entry. Durations are whole
// microseconds — the histogram's native floor — so records stay exact
// under JSON round trips.
type AccessRecord struct {
	Time       time.Time `json:"time"`
	ID         string    `json:"id"`
	Method     string    `json:"method"`
	Route      string    `json:"route"`
	Path       string    `json:"path"`
	Status     int       `json:"status"`
	DurationUS int64     `json:"durationUs"`
	Bytes      int64     `json:"bytes"`
	Tenant     string    `json:"tenant"`
	Cache      string    `json:"cache,omitempty"`
}

// accessLog is a bounded ring buffer of the most recent records. A
// plain mutex over two words and a slice write: the middleware appends
// once per request, and contention on a microsecond-scale critical
// section is invisible next to request work.
type accessLog struct {
	mu    sync.Mutex
	ring  []AccessRecord
	next  int
	total uint64
}

func newAccessLog(size int) *accessLog {
	return &accessLog{ring: make([]AccessRecord, size)}
}

func (l *accessLog) append(rec AccessRecord) {
	l.mu.Lock()
	l.ring[l.next] = rec
	l.next = (l.next + 1) % len(l.ring)
	l.total++
	l.mu.Unlock()
}

// tail returns the most recent n records, oldest first.
func (l *accessLog) tail(n int) (out []AccessRecord, total uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	have := len(l.ring)
	if l.total < uint64(have) {
		have = int(l.total)
	}
	if n <= 0 || n > have {
		n = have
	}
	out = make([]AccessRecord, 0, n)
	for i := l.next - n; i < l.next; i++ {
		out = append(out, l.ring[(i+len(l.ring))%len(l.ring)])
	}
	return out, l.total
}

// DebugLogResponse is the GET /debug/log body: the total number of
// requests observed since boot (so a scraper can tell how much the ring
// dropped) and the most recent records, oldest first.
type DebugLogResponse struct {
	Total   uint64         `json:"total"`
	Records []AccessRecord `json:"records"`
}

// HandleDebugLog serves GET /debug/log?n=100 — a tail of the access
// ring. n defaults to 100, capped at the ring size.
func (o *Obs) HandleDebugLog(w http.ResponseWriter, r *http.Request) {
	if o.ring == nil {
		http.Error(w, `{"error":"access log disabled"}`, http.StatusNotFound)
		return
	}
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			http.Error(w, `{"error":"n must be a positive integer"}`, http.StatusBadRequest)
			return
		}
		n = v
	}
	recs, total := o.ring.tail(n)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(DebugLogResponse{Total: total, Records: recs}) //nolint:errcheck // client gone; nothing left to do
}

// Tail returns the most recent n access records, oldest first (nil when
// access logging is disabled). The soak harness and tests read through
// this instead of the HTTP endpoint.
func (o *Obs) Tail(n int) []AccessRecord {
	if o.ring == nil {
		return nil
	}
	recs, _ := o.ring.tail(n)
	return recs
}
