package obsv

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a strict parser for the Prometheus text exposition
// format (version 0.0.4) — strict on purpose: it is the referee for the
// daemon's own /metrics output, so it rejects everything the format
// permits but our writer must never produce (samples without HELP/TYPE,
// interleaved families, bad escapes, non-monotone histogram buckets).
// The soak harness reads scraped metrics through it, so a malformed
// exposition fails the soak run, not just the unit test.

// Sample is one exposition line: a metric name, its label set, and the
// value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns a label value ("" when absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// Family is one metric family: the # HELP / # TYPE header plus every
// sample that followed it.
type Family struct {
	Name    string
	Help    string
	Type    string // "counter", "gauge", "histogram", ...
	Samples []Sample
}

// Exposition is a parsed /metrics page; Order preserves family order so
// callers can assert determinism across scrapes.
type Exposition struct {
	Order    []string
	Families map[string]*Family
}

// Family returns a family by name (nil when absent).
func (e *Exposition) Family(name string) *Family { return e.Families[name] }

// ParseText parses a strict exposition page. Every returned error names
// the offending line.
func ParseText(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Families: make(map[string]*Family)}
	var cur *Family
	pendingHelp := "" // family name announced by # HELP, awaiting # TYPE
	helpText := ""
	seen := make(map[string]bool) // family names already closed or open
	lineno := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		lineno++
		line := sc.Text()
		fail := func(format string, args ...any) error {
			return fmt.Errorf("metrics line %d: %s (in %q)", lineno, fmt.Sprintf(format, args...), line)
		}
		if line == "" {
			return nil, fail("blank line")
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := line[len("# HELP "):]
			name, help, ok := strings.Cut(rest, " ")
			if !ok || !validMetricName(name) {
				return nil, fail("malformed HELP")
			}
			if pendingHelp != "" {
				return nil, fail("HELP for %q while HELP for %q awaits its TYPE", name, pendingHelp)
			}
			if seen[name] {
				return nil, fail("family %q re-announced; families must be contiguous", name)
			}
			pendingHelp, helpText = name, help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := line[len("# TYPE "):]
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !validMetricName(name) {
				return nil, fail("malformed TYPE")
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fail("unknown type %q", typ)
			}
			if pendingHelp != name {
				return nil, fail("TYPE for %q without a preceding HELP for it", name)
			}
			cur = &Family{Name: name, Help: helpText, Type: typ}
			exp.Families[name] = cur
			exp.Order = append(exp.Order, name)
			seen[name] = true
			pendingHelp = ""
			continue
		}
		if strings.HasPrefix(line, "#") {
			return nil, fail("stray comment")
		}
		if pendingHelp != "" {
			return nil, fail("sample while HELP for %q awaits its TYPE", pendingHelp)
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fail("%v", err)
		}
		if cur == nil {
			return nil, fail("sample %q before any HELP/TYPE header", s.Name)
		}
		if !sampleBelongsTo(s.Name, cur) {
			return nil, fail("sample %q does not belong to open family %q", s.Name, cur.Name)
		}
		cur.Samples = append(cur.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if pendingHelp != "" {
		return nil, fmt.Errorf("metrics: HELP for %q never got its TYPE", pendingHelp)
	}
	for _, name := range exp.Order {
		if err := validateFamily(exp.Families[name]); err != nil {
			return nil, err
		}
	}
	return exp, nil
}

// sampleBelongsTo accepts the family's own name and, for histograms
// (and summaries), the _bucket/_sum/_count expansions.
func sampleBelongsTo(sample string, f *Family) bool {
	if sample == f.Name {
		return f.Type != "histogram" // histograms expose only the expansions
	}
	switch f.Type {
	case "histogram":
		return sample == f.Name+"_bucket" || sample == f.Name+"_sum" || sample == f.Name+"_count"
	case "summary":
		return sample == f.Name+"_sum" || sample == f.Name+"_count"
	}
	return false
}

// validateFamily enforces the per-family invariants: unique label sets,
// and for histograms bucket monotonicity plus the +Inf/_count/_sum
// triangle for every label set.
func validateFamily(f *Family) error {
	unique := make(map[string]bool, len(f.Samples))
	for _, s := range f.Samples {
		key := s.Name + "|" + labelSignature(s.Labels, "")
		if unique[key] {
			return fmt.Errorf("metrics family %q: duplicate sample %s{%s}", f.Name, s.Name, labelSignature(s.Labels, ""))
		}
		unique[key] = true
	}
	if f.Type != "histogram" {
		return nil
	}
	type hist struct {
		les    []float64
		counts []float64
		sum    *float64
		count  *float64
	}
	groups := make(map[string]*hist)
	order := []string{}
	group := func(labels map[string]string) *hist {
		sig := labelSignature(labels, "le")
		h, ok := groups[sig]
		if !ok {
			h = &hist{}
			groups[sig] = h
			order = append(order, sig)
		}
		return h
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("metrics family %q: _bucket without le", f.Name)
			}
			le := math.Inf(1)
			if leStr != "+Inf" {
				var err error
				if le, err = strconv.ParseFloat(leStr, 64); err != nil {
					return fmt.Errorf("metrics family %q: bad le %q", f.Name, leStr)
				}
			}
			h := group(s.Labels)
			h.les = append(h.les, le)
			h.counts = append(h.counts, s.Value)
		case f.Name + "_sum":
			v := s.Value
			group(s.Labels).sum = &v
		case f.Name + "_count":
			v := s.Value
			group(s.Labels).count = &v
		}
	}
	for _, sig := range order {
		h := groups[sig]
		if len(h.les) == 0 {
			return fmt.Errorf("metrics family %q{%s}: _sum/_count without buckets", f.Name, sig)
		}
		for i := 1; i < len(h.les); i++ {
			if h.les[i] <= h.les[i-1] {
				return fmt.Errorf("metrics family %q{%s}: le bounds not increasing", f.Name, sig)
			}
			if h.counts[i] < h.counts[i-1] {
				return fmt.Errorf("metrics family %q{%s}: cumulative bucket counts decreased at le=%g", f.Name, sig, h.les[i])
			}
		}
		if !math.IsInf(h.les[len(h.les)-1], 1) {
			return fmt.Errorf("metrics family %q{%s}: missing le=\"+Inf\" bucket", f.Name, sig)
		}
		if h.count == nil || h.sum == nil {
			return fmt.Errorf("metrics family %q{%s}: missing _sum or _count", f.Name, sig)
		}
		if *h.count != h.counts[len(h.counts)-1] {
			return fmt.Errorf("metrics family %q{%s}: _count %g != +Inf bucket %g", f.Name, sig, *h.count, h.counts[len(h.counts)-1])
		}
	}
	return nil
}

// labelSignature renders labels sorted, excluding one name — the
// canonical group key for histogram label sets minus le.
func labelSignature(labels map[string]string, exclude string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != exclude {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

// QuantileBy groups a histogram family's buckets by one label (samples
// missing the label group under "") and estimates the q-quantile of
// each group by linear interpolation — the soak report's
// p50/p95/p99-per-route math over a scraped exposition. Cumulative
// bucket runs from different label sets in the same group (e.g. one
// route's 2xx and 4xx series) are converted back to per-bucket deltas
// before merging, since cumulative counts only add within one set.
func (f *Family) QuantileBy(label string, q float64) (map[string]float64, error) {
	if f.Type != "histogram" {
		return nil, fmt.Errorf("family %q is a %s, not a histogram", f.Name, f.Type)
	}
	type bucket struct {
		le    float64
		count float64 // cumulative within its own label set
	}
	bySet := make(map[string]map[string][]bucket) // group -> labelset signature -> run
	for _, s := range f.Samples {
		if s.Name != f.Name+"_bucket" {
			continue
		}
		le := math.Inf(1)
		if v := s.Labels["le"]; v != "+Inf" {
			le, _ = strconv.ParseFloat(v, 64) //nolint:errcheck // validated by ParseText
		}
		key := s.Labels[label]
		if bySet[key] == nil {
			bySet[key] = make(map[string][]bucket)
		}
		sig := labelSignature(s.Labels, "le")
		bySet[key][sig] = append(bySet[key][sig], bucket{le, s.Value})
	}
	out := make(map[string]float64, len(bySet))
	for key, sets := range bySet {
		perLE := make(map[float64]float64)
		for _, run := range sets {
			sort.Slice(run, func(i, j int) bool { return run[i].le < run[j].le })
			var prev float64
			for _, b := range run {
				perLE[b.le] += b.count - prev
				prev = b.count
			}
		}
		les := make([]float64, 0, len(perLE))
		var total float64
		for le, c := range perLE {
			les = append(les, le)
			total += c
		}
		sort.Float64s(les)
		if total == 0 {
			out[key] = 0
			continue
		}
		rank := q * total
		var cum, lo float64
		for _, le := range les {
			c := perLE[le]
			if cum+c >= rank && c > 0 {
				if math.IsInf(le, 1) {
					out[key] = lo // no upper edge to interpolate toward
					break
				}
				frac := (rank - cum) / c
				if frac < 0 {
					frac = 0
				} else if frac > 1 {
					frac = 1
				}
				out[key] = lo + (le-lo)*frac
				break
			}
			cum += c
			if !math.IsInf(le, 1) {
				lo = le
			}
		}
	}
	return out, nil
}

// --- sample-line lexer ------------------------------------------------------

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9') {
			continue
		}
		return false
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' ||
			(i > 0 && c >= '0' && c <= '9') {
			continue
		}
		return false
	}
	return true
}

// parseSample lexes `name{label="value",...} value` (labels optional).
// No timestamps: our writer never emits them, so the parser treats any
// trailing token as an error.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			if i >= len(line) {
				return s, fmt.Errorf("unterminated label set")
			}
			if line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			name := line[i:j]
			if !validLabelName(name) {
				return s, fmt.Errorf("invalid label name %q", name)
			}
			if _, dup := s.Labels[name]; dup {
				return s, fmt.Errorf("duplicate label %q", name)
			}
			if j+1 >= len(line) || line[j+1] != '"' {
				return s, fmt.Errorf("label %q: value must be quoted", name)
			}
			val, rest, err := lexQuoted(line[j+1:])
			if err != nil {
				return s, fmt.Errorf("label %q: %v", name, err)
			}
			s.Labels[name] = val
			i = len(line) - len(rest)
			if i < len(line) && line[i] == ',' {
				i++
			} else if i >= len(line) || line[i] != '}' {
				return s, fmt.Errorf("expected ',' or '}' after label %q", name)
			}
		}
	}
	if len(s.Labels) == 0 {
		s.Labels = nil
	}
	if i >= len(line) || line[i] != ' ' {
		return s, fmt.Errorf("expected space before value")
	}
	valStr := line[i+1:]
	if valStr == "" || strings.ContainsAny(valStr, " \t") {
		return s, fmt.Errorf("expected exactly one value token, got %q", valStr)
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", valStr)
	}
	s.Value = v
	return s, nil
}

// lexQuoted reads a quoted label value starting at the opening quote,
// accepting only the three legal escapes, and returns the decoded value
// plus the remainder of the line.
func lexQuoted(in string) (val, rest string, err error) {
	if in == "" || in[0] != '"' {
		return "", "", fmt.Errorf("missing opening quote")
	}
	var b strings.Builder
	i := 1
	for i < len(in) {
		switch c := in[i]; c {
		case '"':
			return b.String(), in[i+1:], nil
		case '\\':
			if i+1 >= len(in) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch in[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("illegal escape \\%c", in[i+1])
			}
			i += 2
		case '\n':
			return "", "", fmt.Errorf("raw newline in label value")
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}
