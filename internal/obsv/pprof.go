package obsv

import (
	"net/http"
	"net/http/pprof"
)

// RegisterPprof mounts net/http/pprof's handlers on mux under
// /debug/pprof/ without importing the package for its DefaultServeMux
// side effect — the daemon decides (via a flag) whether its profiler is
// reachable, instead of inheriting it from an import graph.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
