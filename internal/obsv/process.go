package obsv

import (
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
)

// ProcessStats is a point-in-time view of the process gauges /metrics
// exports and /healthz summarizes.
type ProcessStats struct {
	Goroutines    int
	HeapBytes     uint64  // live heap (HeapAlloc)
	SysBytes      uint64  // total bytes obtained from the OS
	RSSBytes      int64   // resident set size; 0 where /proc is absent
	GCPauseTotal  float64 // seconds, cumulative
	NumGC         uint32
	UptimeSeconds float64
}

// Process reads the runtime gauges. ReadMemStats briefly stops the
// world, so this is scrape-path only — never on the request hot path.
func (o *Obs) Process() ProcessStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ProcessStats{
		Goroutines:    runtime.NumGoroutine(),
		HeapBytes:     ms.HeapAlloc,
		SysBytes:      ms.Sys,
		RSSBytes:      readRSSBytes(),
		GCPauseTotal:  float64(ms.PauseTotalNs) / 1e9,
		NumGC:         ms.NumGC,
		UptimeSeconds: o.Uptime().Seconds(),
	}
}

// readRSSBytes reports the resident set size from /proc/self/statm
// (second field, in pages). Platforms without procfs report 0 — the
// gauge is absent-as-zero rather than a build constraint, so the
// package stays portable.
func readRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * int64(os.Getpagesize())
}

// BuildInfo identifies the running binary for fusiond_build_info.
type BuildInfo struct {
	Version   string // main module version ("(devel)" for local builds)
	GoVersion string
	Revision  string // VCS revision when stamped, else ""
}

var (
	buildOnce sync.Once
	buildVal  BuildInfo
)

// Build reads the binary's build information once.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildVal = BuildInfo{Version: "unknown", GoVersion: runtime.Version()}
		if bi, ok := debug.ReadBuildInfo(); ok {
			if bi.Main.Version != "" {
				buildVal.Version = bi.Main.Version
			}
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" {
					buildVal.Revision = s.Value
				}
			}
		}
	})
	return buildVal
}
