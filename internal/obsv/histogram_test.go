package obsv

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},         // 1.000001µs rounds up past the 1µs bound
		{2 * time.Microsecond, 1},         // exactly on the 2µs bound
		{3 * time.Microsecond, 2},         // in (2µs, 4µs]
		{time.Millisecond, 10},            // 1024µs bound is 2^10
		{time.Second, 20},                 // 2^20µs ≈ 1.049s bound
		{67 * time.Second, infBucket - 1}, // just under 2^26µs ≈ 67.1s
		{68 * time.Second, infBucket},
		{time.Hour, infBucket},
	}
	bounds := bucketBounds()
	for _, c := range cases {
		got := bucketIndex(c.d)
		if got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
		// The defining property: the observation must not exceed its
		// bucket's upper bound, and must exceed the previous bound.
		if got < numBuckets {
			if c.d.Seconds() > bounds[got]+1e-12 {
				t.Errorf("bucketIndex(%v) = %d but %v > bound %g", c.d, got, c.d, bounds[got])
			}
		}
	}
}

func TestHistogramSnapshotAndQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 900; i++ {
		h.Record(100 * time.Microsecond) // bucket le=128µs
	}
	for i := 0; i < 100; i++ {
		h.Record(10 * time.Millisecond) // bucket le≈16.4ms
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	wantSum := 900*100e-6 + 100*10e-3
	if math.Abs(s.SumSeconds-wantSum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", s.SumSeconds, wantSum)
	}
	p50 := s.Quantile(0.5)
	if p50 <= 64e-6 || p50 > 128e-6 {
		t.Fatalf("p50 = %g, want within (64µs, 128µs]", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 <= 8.192e-3 || p99 > 16.384e-3 {
		t.Fatalf("p99 = %g, want within the (8.192ms, 16.384ms] bucket", p99)
	}
	if got := s.Quantile(1); got > 16.384e-3 {
		t.Fatalf("p100 = %g beyond top occupied bucket", got)
	}
	var empty Snapshot
	if empty.Quantile(0.99) != 0 {
		t.Fatal("empty snapshot quantile should be 0")
	}
}

func TestSnapshotMerge(t *testing.T) {
	var a, b Histogram
	a.Record(time.Millisecond)
	a.Record(2 * time.Millisecond)
	b.Record(time.Second)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 {
		t.Fatalf("merged count = %d, want 3", sa.Count)
	}
	want := 0.001 + 0.002 + 1.0
	if math.Abs(sa.SumSeconds-want) > 1e-9 {
		t.Fatalf("merged sum = %g, want %g", sa.SumSeconds, want)
	}
}

// TestHistogramConcurrent hammers Record from many goroutines; run
// under -race this is the lock-freedom contract, and the final snapshot
// must not lose a single observation.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(w*i%5000) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
}
