package obsv

import (
	"crypto/rand"
	"encoding/hex"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// HeaderRequestID carries the request id: generated when absent,
// echoed verbatim when the client (or an upstream proxy) supplied a
// well-formed one, and present on every response the daemon writes —
// including sheds, where traceability matters most.
const HeaderRequestID = "X-Fusion-Request-Id"

// Options configures an Obs. The zero value observes with defaults.
type Options struct {
	// LogSize bounds the access-log ring buffer (records); 0 means 1024,
	// negative disables access logging entirely.
	LogSize int

	// SlowThreshold marks requests slower than this for the slow log and
	// the slow-request counter; 0 disables slow logging.
	SlowThreshold time.Duration

	// Logger receives slow-request lines; nil means log.Default().
	Logger *log.Logger

	// TenantHeader names the request header carrying the tenant id for
	// the per-tenant latency label; default "X-Fusion-Tenant".
	TenantHeader string

	// RoleFn, when set, is stamped as X-Fusion-Role on every response —
	// shed paths included — so a client always learns which role answered
	// (or refused) it.
	RoleFn func() string

	// MaxSeries caps distinct histogram label sets; past it, new series
	// fold their tenant label into "~overflow" so a client minting tenant
	// names cannot grow the registry without bound. 0 means 4096.
	MaxSeries int

	// Now overrides the clock (tests).
	Now func() time.Time
}

// seriesKey is one latency series: the full label set of
// fusiond_http_request_duration_seconds.
type seriesKey struct {
	Route  string // matched mux pattern path, e.g. "/v1/generate"
	Method string
	Status string // status class: "2xx", "4xx", ...
	Tenant string
	Cache  string // X-Fusion-Cache disposition; "none" off the generate path
}

// routeStats is the per-series record: the latency histogram plus the
// response-byte counter.
type routeStats struct {
	hist  Histogram
	bytes atomic.Int64
}

// Obs is the observability plane instance: middleware, histogram
// registry, access log, and process gauges hang off one value owned by
// the server.
type Obs struct {
	opts  Options
	start time.Time
	idGen requestIDGen

	series   sync.Map // seriesKey -> *routeStats
	nSeries  atomic.Int64
	inflight atomic.Int64
	slow     atomic.Int64

	ring *accessLog
}

// New builds an Obs.
func New(opts Options) *Obs {
	if opts.TenantHeader == "" {
		opts.TenantHeader = "X-Fusion-Tenant"
	}
	if opts.MaxSeries <= 0 {
		opts.MaxSeries = 4096
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Logger == nil {
		opts.Logger = log.Default()
	}
	o := &Obs{opts: opts, start: opts.Now()}
	o.idGen.init()
	if opts.LogSize >= 0 {
		size := opts.LogSize
		if size == 0 {
			size = 1024
		}
		o.ring = newAccessLog(size)
	}
	return o
}

// Middleware wraps the daemon's whole handler tree. It stamps the
// request id and role headers on the real connection before the inner
// handler runs (so every write path — buffered, shed, redirected —
// carries them), then records the route latency histogram and the
// access-log entry once the response is done. The route label is the
// mux pattern that matched (net/http sets r.Pattern during dispatch),
// never the raw URL, so series cardinality is bounded by the route
// table.
func (o *Obs) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := o.opts.Now()
		id := o.requestID(r)
		w.Header().Set(HeaderRequestID, id)
		if o.opts.RoleFn != nil {
			w.Header().Set("X-Fusion-Role", o.opts.RoleFn())
		}
		rec := &statusRecorder{ResponseWriter: w}
		o.inflight.Add(1)
		next.ServeHTTP(rec, r)
		o.inflight.Add(-1)
		dur := o.opts.Now().Sub(start)

		route := "unmatched"
		method := r.Method
		if r.Pattern != "" {
			route = r.Pattern
			if m, p, ok := cutPattern(r.Pattern); ok {
				method, route = m, p
			}
		}
		status := rec.status()
		cache := rec.Header().Get("X-Fusion-Cache")
		if cache == "" {
			cache = "none"
		}
		tenant := tenantLabel(r.Header.Get(o.opts.TenantHeader))
		st := o.stats(seriesKey{
			Route:  route,
			Method: method,
			Status: statusClass(status),
			Tenant: tenant,
			Cache:  cache,
		})
		st.hist.Record(dur)
		st.bytes.Add(rec.bytes)

		if thr := o.opts.SlowThreshold; thr > 0 && dur >= thr {
			o.slow.Add(1)
			o.opts.Logger.Printf("obsv: slow request id=%s method=%s route=%s status=%d tenant=%s dur=%s",
				id, method, route, status, tenant, dur)
		}
		if o.ring != nil {
			o.ring.append(AccessRecord{
				Time:       start.UTC(),
				ID:         id,
				Method:     method,
				Route:      route,
				Path:       r.URL.Path,
				Status:     status,
				DurationUS: dur.Microseconds(),
				Bytes:      rec.bytes,
				Tenant:     tenant,
				Cache:      cache,
			})
		}
	})
}

// stats resolves (or mints) the series for key, folding the tenant into
// "~overflow" at the registry cap. The overflow retry always lands:
// with tenant pinned, the key space is bounded by routes × methods ×
// status classes × cache dispositions, far below any sane cap.
func (o *Obs) stats(key seriesKey) *routeStats {
	if st, ok := o.series.Load(key); ok {
		return st.(*routeStats)
	}
	if o.nSeries.Load() >= int64(o.opts.MaxSeries) && key.Tenant != "~overflow" {
		key.Tenant = "~overflow"
		return o.stats(key)
	}
	st, loaded := o.series.LoadOrStore(key, &routeStats{})
	if !loaded {
		o.nSeries.Add(1)
	}
	return st.(*routeStats)
}

// SnapshotRoutes returns a merged latency snapshot per route (labels
// beyond the route folded together) — the soak report's shape.
func (o *Obs) SnapshotRoutes() map[string]Snapshot {
	out := make(map[string]Snapshot)
	o.series.Range(func(k, v any) bool {
		key := k.(seriesKey)
		s := out[key.Route]
		s.Merge(v.(*routeStats).hist.Snapshot())
		out[key.Route] = s
		return true
	})
	return out
}

// InFlight reports requests currently inside the middleware.
func (o *Obs) InFlight() int64 { return o.inflight.Load() }

// Uptime reports time since the Obs (in practice: the daemon) started.
func (o *Obs) Uptime() time.Duration { return o.opts.Now().Sub(o.start) }

// requestID validates a propagated id or mints a fresh one.
func (o *Obs) requestID(r *http.Request) string {
	if id := r.Header.Get(HeaderRequestID); validRequestID(id) {
		return id
	}
	return o.idGen.next()
}

// validRequestID accepts ids that are safe to echo into headers and
// logs: short, printable, no quotes or spaces. Anything else is
// replaced rather than propagated — a request id is a tracing token,
// not a data channel.
func validRequestID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.' || c == ':' || c == '/' || c == '+' || c == '=' {
			continue
		}
		return false
	}
	return true
}

// requestIDGen mints process-unique ids: a random per-process prefix
// plus an atomic counter. Cheaper than per-request randomness, unique
// across restarts with overwhelming probability, and ordered within a
// process — which makes interleaved access-log records sortable.
type requestIDGen struct {
	prefix string
	n      atomic.Uint64
}

func (g *requestIDGen) init() {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero prefix
		// still yields valid (merely less distinctive) ids.
		copy(b[:], "fusion")
	}
	g.prefix = hex.EncodeToString(b[:])
}

func (g *requestIDGen) next() string {
	return g.prefix + "-" + formatUint(g.n.Add(1))
}

func formatUint(v uint64) string {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return string(buf[i:])
}

// cutPattern splits a "METHOD /path" mux pattern; patterns without a
// method (e.g. pprof's "/debug/pprof/") report ok=false.
func cutPattern(p string) (method, path string, ok bool) {
	for i := 0; i < len(p); i++ {
		if p[i] == ' ' {
			return p[:i], p[i+1:], true
		}
		if p[i] == '/' {
			break
		}
	}
	return "", p, false
}

func statusClass(code int) string {
	switch {
	case code >= 100 && code < 600:
		return string([]byte{byte('0' + code/100), 'x', 'x'})
	default:
		return "other"
	}
}

// tenantLabel reuses the daemon's tenant charset rules so a hostile
// header cannot inject label syntax; names the server would reject are
// folded into one bucket.
func tenantLabel(name string) string {
	if name == "" {
		return "default"
	}
	if len(name) > 64 || name[0] == '.' {
		return "~invalid"
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.' {
			continue
		}
		return "~invalid"
	}
	return name
}

// statusRecorder captures the status code and body size on the way
// through. Unwrap keeps http.ResponseController (flush, deadlines)
// working for streaming handlers behind the middleware.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

func (r *statusRecorder) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }
