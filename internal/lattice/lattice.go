// Package lattice enumerates the closed-partition lattice of a machine
// (Section 2.1 of the paper, Fig. 3) and exposes its Hasse structure: the
// order, the covers, and the basis (the lower cover of ⊤). It is intended
// for small tops — the paper itself notes the full lattice is never needed
// during fusion generation; this package exists to reproduce Fig. 3 and to
// cross-check Algorithm 2 against exhaustive search.
package lattice

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dfsm"
	"repro/internal/partition"
)

// Lattice is the complete closed-partition lattice of a top machine.
type Lattice struct {
	// Top is the machine whose state set is partitioned.
	Top *dfsm.Machine
	// Nodes lists every closed partition, sorted from fine to coarse
	// (descending block count, then by key); Nodes[0] is ⊤'s partition and
	// the last node is ⊥.
	Nodes []partition.P
	// Below[i] lists indices j with Nodes[j] < Nodes[i] and no node in
	// between (the Hasse "lower cover" edges).
	Below [][]int
}

// Build enumerates the lattice by downward BFS through merge-closures,
// bounded by maxNodes (0 = 4096).
func Build(top *dfsm.Machine, maxNodes int) (*Lattice, error) {
	if maxNodes <= 0 {
		maxNodes = 4096
	}
	n := top.NumStates()
	start := partition.Singletons(n)
	seen := partition.NewSet(64)
	seen.Add(start)
	queue := []partition.P{start}
	var nodes []partition.P
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		nodes = append(nodes, p)
		if len(nodes) > maxNodes {
			return nil, fmt.Errorf("lattice: more than %d closed partitions", maxNodes)
		}
		blocks := p.Blocks()
		for i := 0; i < len(blocks); i++ {
			for j := i + 1; j < len(blocks); j++ {
				c := partition.CloseMergingStates(top, p, blocks[i][0], blocks[j][0])
				if seen.Add(c) {
					queue = append(queue, c)
				}
			}
		}
	}

	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].NumBlocks() != nodes[j].NumBlocks() {
			return nodes[i].NumBlocks() > nodes[j].NumBlocks()
		}
		return nodes[i].Less(nodes[j])
	})

	l := &Lattice{Top: top, Nodes: nodes, Below: make([][]int, len(nodes))}
	l.computeHasse()
	return l, nil
}

// computeHasse fills Below with covering edges: j covers under i when
// Nodes[j] < Nodes[i] with nothing strictly between.
func (l *Lattice) computeHasse() {
	n := len(l.Nodes)
	less := make([][]bool, n) // less[i][j]: Nodes[j] < Nodes[i]
	for i := range less {
		less[i] = make([]bool, n)
		for j := range less[i] {
			if i != j {
				less[i][j] = l.Nodes[j].StrictlyRefinedBy(l.Nodes[i])
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !less[i][j] {
				continue
			}
			covered := true
			for k := 0; k < n; k++ {
				if less[i][k] && less[k][j] {
					covered = false
					break
				}
			}
			if covered {
				l.Below[i] = append(l.Below[i], j)
			}
		}
	}
}

// Size returns the number of lattice nodes.
func (l *Lattice) Size() int { return len(l.Nodes) }

// TopIndex returns the index of ⊤'s partition (always 0 after sorting).
func (l *Lattice) TopIndex() int { return 0 }

// BottomIndex returns the index of ⊥ (the single-block partition).
func (l *Lattice) BottomIndex() int { return len(l.Nodes) - 1 }

// Basis returns the lower cover of ⊤ — the paper's "basis" of the lattice.
func (l *Lattice) Basis() []partition.P {
	out := make([]partition.P, 0, len(l.Below[0]))
	for _, j := range l.Below[l.TopIndex()] {
		out = append(out, l.Nodes[j])
	}
	return out
}

// Find returns the index of an equal partition, or -1.
func (l *Lattice) Find(p partition.P) int {
	for i, q := range l.Nodes {
		if q.Equal(p) {
			return i
		}
	}
	return -1
}

// Contains reports whether the partition is in the lattice (i.e. closed).
func (l *Lattice) Contains(p partition.P) bool { return l.Find(p) >= 0 }

// DOT renders the Hasse diagram in Graphviz syntax, one node per closed
// partition labelled with its block notation — the shape of Fig. 3.
func (l *Lattice) DOT() string {
	var b strings.Builder
	b.WriteString("digraph lattice {\n  rankdir=BT;\n  node [shape=box];\n")
	label := func(i int) string {
		p := l.Nodes[i]
		switch i {
		case l.TopIndex():
			return "⊤ " + l.describe(p)
		case l.BottomIndex():
			return "⊥ " + l.describe(p)
		default:
			return l.describe(p)
		}
	}
	for i := range l.Nodes {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", i, label(i))
	}
	for i, below := range l.Below {
		for _, j := range below {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", j, i) // arrow from smaller to larger
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// describe renders a partition using the top's state names.
func (l *Lattice) describe(p partition.P) string {
	blocks := p.Blocks()
	parts := make([]string, len(blocks))
	for i, blk := range blocks {
		names := make([]string, len(blk))
		for j, s := range blk {
			names[j] = l.Top.StateName(s)
		}
		parts[i] = "{" + strings.Join(names, ",") + "}"
	}
	return strings.Join(parts, " ")
}

// Summary prints one line per rank (block count), for the CLI.
func (l *Lattice) Summary() string {
	byRank := map[int]int{}
	for _, p := range l.Nodes {
		byRank[p.NumBlocks()]++
	}
	ranks := make([]int, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ranks)))
	var b strings.Builder
	fmt.Fprintf(&b, "closed-partition lattice of %s: %d machines\n", l.Top.Name(), l.Size())
	for _, r := range ranks {
		fmt.Fprintf(&b, "  %2d blocks: %d machine(s)\n", r, byRank[r])
	}
	return b.String()
}
