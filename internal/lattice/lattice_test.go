package lattice

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dfsm"
	"repro/internal/machines"
	"repro/internal/partition"
)

func fig2Lattice(t *testing.T) (*core.System, *Lattice) {
	t.Helper()
	sys, err := core.NewSystem([]*dfsm.Machine{machines.Fig2A(), machines.Fig2B()})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(sys.Top, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sys, l
}

func TestBuildFig3Lattice(t *testing.T) {
	sys, l := fig2Lattice(t)
	if l.Size() < 5 {
		t.Fatalf("lattice has %d nodes; need at least ⊤, ⊥, A, B, M1", l.Size())
	}
	// Fig. 3: the lattice contains A, B and M1, between ⊤ and ⊥.
	for name, p := range map[string]partition.P{
		"A":  sys.Parts[0],
		"B":  sys.Parts[1],
		"⊤":  partition.Singletons(sys.N()),
		"⊥":  partition.Single(sys.N()),
		"M1": partition.MustFromBlocks(sys.N(), fig2M1Blocks(t, sys)),
	} {
		if !l.Contains(p) {
			t.Errorf("lattice is missing %s", name)
		}
	}
	if l.Nodes[l.TopIndex()].NumBlocks() != sys.N() {
		t.Error("node 0 is not ⊤")
	}
	if l.Nodes[l.BottomIndex()].NumBlocks() != 1 {
		t.Error("last node is not ⊥")
	}
}

func fig2M1Blocks(t *testing.T, sys *core.System) [][]int {
	t.Helper()
	type key [2]string
	ix := map[key]int{}
	for ti, tuple := range sys.Product.Proj {
		ix[key{sys.Machines[0].StateName(tuple[0]), sys.Machines[1].StateName(tuple[1])}] = ti
	}
	var blocks [][]int
	for _, blk := range machines.Fig2M1Blocks() {
		var b []int
		for _, pr := range blk {
			b = append(b, ix[key{pr[0], pr[1]}])
		}
		blocks = append(blocks, b)
	}
	return blocks
}

// TestHasseEdgesAreCovers: every Below edge is a strict order relation with
// nothing in between, and the order is acyclic by rank.
func TestHasseEdgesAreCovers(t *testing.T) {
	_, l := fig2Lattice(t)
	for i, below := range l.Below {
		for _, j := range below {
			if !l.Nodes[j].StrictlyRefinedBy(l.Nodes[i]) {
				t.Fatalf("edge %d->%d is not an order relation", j, i)
			}
			for k := range l.Nodes {
				if k == i || k == j {
					continue
				}
				if l.Nodes[k].StrictlyRefinedBy(l.Nodes[i]) && l.Nodes[j].StrictlyRefinedBy(l.Nodes[k]) {
					t.Fatalf("edge %d->%d is not a cover: %d lies between", j, i, k)
				}
			}
		}
	}
}

// TestBasisIsLowerCoverOfTop: the basis must match partition.LowerCover.
func TestBasisIsLowerCoverOfTop(t *testing.T) {
	_, l := fig2Lattice(t)
	want := partition.LowerCover(l.Top, partition.Singletons(l.Top.NumStates()))
	basis := l.Basis()
	if len(basis) != len(want) {
		t.Fatalf("basis has %d elements, LowerCover %d", len(basis), len(want))
	}
	wantKeys := map[string]bool{}
	for _, p := range want {
		wantKeys[p.Key()] = true
	}
	for _, p := range basis {
		if !wantKeys[p.Key()] {
			t.Errorf("basis element %v not in LowerCover", p)
		}
	}
}

// TestAllNodesClosedAndUnique.
func TestAllNodesClosedAndUnique(t *testing.T) {
	_, l := fig2Lattice(t)
	seen := map[string]bool{}
	for _, p := range l.Nodes {
		if !partition.IsClosed(l.Top, p) {
			t.Fatalf("lattice node %v not closed", p)
		}
		if seen[p.Key()] {
			t.Fatalf("duplicate node %v", p)
		}
		seen[p.Key()] = true
	}
}

func TestLatticeOfModCounters(t *testing.T) {
	// The 9-state top of the two mod-3 counters has a richer lattice; it
	// must include the SumMod3 and DiffMod3 fusion machines.
	sys, err := core.NewSystem([]*dfsm.Machine{machines.ZeroCounter(), machines.OneCounter()})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(sys.Top, 0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := sys.PartitionOf(machines.SumCounter(3))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := sys.PartitionOf(machines.DiffCounter(3))
	if err != nil {
		t.Fatal(err)
	}
	if !l.Contains(f1) || !l.Contains(f2) {
		t.Error("counter lattice is missing F1/F2")
	}
	if l.Find(partition.Single(9)) != l.BottomIndex() {
		t.Error("bottom misplaced")
	}
	if l.Find(partition.Singletons(3)) != -1 {
		t.Error("Find matched a partition of the wrong size")
	}
}

func TestMaxNodesGuard(t *testing.T) {
	sys, err := core.NewSystem([]*dfsm.Machine{machines.ZeroCounter(), machines.OneCounter()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(sys.Top, 2); err == nil {
		t.Fatal("maxNodes guard did not trip")
	}
}

func TestDOTAndSummary(t *testing.T) {
	_, l := fig2Lattice(t)
	dot := l.DOT()
	for _, want := range []string{"digraph lattice", "⊤", "⊥", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	sum := l.Summary()
	if !strings.Contains(sum, "closed-partition lattice") {
		t.Errorf("Summary = %q", sum)
	}
}
