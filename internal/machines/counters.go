// Package machines is the model zoo: every DFSM named in the paper's
// figures and results table, built with standard textbook definitions, plus
// parameterized generators (mod-k counters, shift registers, pattern
// detectors) used by the scaling experiments.
package machines

import (
	"fmt"

	"repro/internal/dfsm"
)

// EventZero and EventOne are the binary input alphabet shared by the
// counter/register machines of the paper's examples.
const (
	EventZero = "0"
	EventOne  = "1"
)

// ModCounter returns a machine with k states c0..c{k-1} that counts
// occurrences of the given event modulo k and ignores everything else.
// ModCounter(3, "0") is machine A of Fig. 1; ModCounter(3, "1") is B.
func ModCounter(name string, k int, event string) *dfsm.Machine {
	if k < 1 {
		panic(fmt.Sprintf("machines: mod-%d counter", k))
	}
	states := make([]string, k)
	for i := range states {
		states[i] = fmt.Sprintf("c%d", i)
	}
	delta := make([][]int, k)
	for i := range delta {
		delta[i] = []int{(i + 1) % k}
	}
	return dfsm.MustMachine(name, states, []string{event}, delta, 0)
}

// ZeroCounter is the "0-Counter" of the results table: a mod-3 counter of
// event "0" (machine A of Fig. 1).
func ZeroCounter() *dfsm.Machine { return ModCounter("0-Counter", 3, EventZero) }

// OneCounter is the "1-Counter": a mod-3 counter of event "1" (machine B of
// Fig. 1).
func OneCounter() *dfsm.Machine { return ModCounter("1-Counter", 3, EventOne) }

// SumCounter returns the machine computing (n0 + n1) mod k: it advances on
// both binary events. SumCounter(3) is fusion F1 of Fig. 1.
func SumCounter(k int) *dfsm.Machine {
	states := make([]string, k)
	for i := range states {
		states[i] = fmt.Sprintf("f%d", i)
	}
	delta := make([][]int, k)
	for i := range delta {
		delta[i] = []int{(i + 1) % k, (i + 1) % k}
	}
	return dfsm.MustMachine(fmt.Sprintf("SumMod%d", k), states, []string{EventZero, EventOne}, delta, 0)
}

// DiffCounter returns the machine computing (n0 − n1) mod k: event "0"
// increments, event "1" decrements. DiffCounter(3) is fusion F2 of Fig. 1.
func DiffCounter(k int) *dfsm.Machine {
	states := make([]string, k)
	for i := range states {
		states[i] = fmt.Sprintf("g%d", i)
	}
	delta := make([][]int, k)
	for i := range delta {
		delta[i] = []int{(i + 1) % k, (i - 1 + k) % k}
	}
	return dfsm.MustMachine(fmt.Sprintf("DiffMod%d", k), states, []string{EventZero, EventOne}, delta, 0)
}

// Divider is the "Divider" of the results table: a divide-by-k machine that
// counts *all* binary events modulo k (a frequency divider). The paper does
// not give its definition; a standard divide-by-k chain preserves the
// relevant behaviour (a machine over the shared alphabet incomparable to
// the single-event counters).
func Divider(k int) *dfsm.Machine {
	states := make([]string, k)
	for i := range states {
		states[i] = fmt.Sprintf("d%d", i)
	}
	delta := make([][]int, k)
	for i := range delta {
		delta[i] = []int{(i + 1) % k, (i + 1) % k}
	}
	return dfsm.MustMachine("Divider", states, []string{EventZero, EventOne}, delta, 0)
}

// WeightedCounter returns the machine computing (w0·n0 + w1·n1) mod k.
// These are exactly the k-state machines ≤ R(counters) that generalize F1
// and F2; the sensor-network experiment uses them to back up many counters
// at once.
func WeightedCounter(name string, k, w0, w1 int) *dfsm.Machine {
	states := make([]string, k)
	for i := range states {
		states[i] = fmt.Sprintf("w%d", i)
	}
	norm := func(x int) int { return ((x % k) + k) % k }
	delta := make([][]int, k)
	for i := range delta {
		delta[i] = []int{norm(i + w0), norm(i + w1)}
	}
	return dfsm.MustMachine(name, states, []string{EventZero, EventOne}, delta, 0)
}

// SensorCounter returns the i-th sensor of the paper's sensor network: a
// mod-k counter named "Sensor<i>" counting its own event "e<i>".
// Construction of distinct sensors is independent, which is what lets
// experiments.Sensor build large networks on the shared worker pool.
func SensorCounter(i, k int) *dfsm.Machine {
	return ModCounter(fmt.Sprintf("Sensor%d", i), k, fmt.Sprintf("e%d", i))
}

// SensorCounters returns n mod-k counters, each counting its own event
// "e<i>" — the sensor network of the paper's introduction (100 sensors
// measuring independent environmental parameters).
func SensorCounters(n, k int) []*dfsm.Machine {
	out := make([]*dfsm.Machine, n)
	for i := range out {
		out[i] = SensorCounter(i, k)
	}
	return out
}

// SensorFusion returns the m-th backup machine for n mod-k sensors: a
// k-state machine advancing by (m+1)·1 on every sensor event... The simple
// and sufficient choice used here is the machine counting
// Σ_i (i+1)^m · n_i mod k with k prime, mirroring Reed–Solomon style
// evaluation points; for m=0 it is the plain sum counter, which the paper's
// introduction argues suffices for one crash fault.
func SensorFusion(n, k, m int) *dfsm.Machine {
	states := make([]string, k)
	for i := range states {
		states[i] = fmt.Sprintf("f%d", i)
	}
	events := make([]string, n)
	coef := make([]int, n)
	for i := range events {
		events[i] = fmt.Sprintf("e%d", i)
		// (i+1)^m mod k
		c := 1
		for p := 0; p < m; p++ {
			c = (c * (i + 1)) % k
		}
		coef[i] = c
	}
	delta := make([][]int, k)
	for s := range delta {
		delta[s] = make([]int, n)
		for e := range events {
			delta[s][e] = (s + coef[e]) % k
		}
	}
	return dfsm.MustMachine(fmt.Sprintf("SensorFusion%d", m), states, events, delta, 0)
}
