package machines

import "repro/internal/dfsm"

// TCP returns the RFC 793 TCP connection state machine (11 states) used in
// the results table. Events are the user calls and segment arrivals of the
// classic diagram:
//
//	open_passive, open_active – user opens
//	send       – user sends data from LISTEN (transmits SYN)
//	close      – user closes
//	recv_syn, recv_synack, recv_ack, recv_fin, recv_finack – segments
//	timeout    – 2MSL timer / give up
//
// Events that are meaningless in a state self-loop (the connection ignores
// them), matching the paper's convention for events outside a machine's
// current behaviour.
func TCP() *dfsm.Machine {
	b := dfsm.NewBuilder("TCP").Initial("CLOSED")
	states := []string{
		"CLOSED", "LISTEN", "SYN_SENT", "SYN_RCVD", "ESTABLISHED",
		"FIN_WAIT_1", "FIN_WAIT_2", "CLOSE_WAIT", "CLOSING", "LAST_ACK", "TIME_WAIT",
	}
	events := []string{
		"open_passive", "open_active", "send", "close",
		"recv_syn", "recv_synack", "recv_ack", "recv_fin", "recv_finack", "timeout",
	}
	for _, s := range states {
		b.State(s)
	}
	for _, e := range events {
		b.Event(e)
	}
	// CLOSED
	b.Transition("CLOSED", "open_passive", "LISTEN")
	b.Transition("CLOSED", "open_active", "SYN_SENT")
	// LISTEN
	b.Transition("LISTEN", "recv_syn", "SYN_RCVD")
	b.Transition("LISTEN", "send", "SYN_SENT")
	b.Transition("LISTEN", "close", "CLOSED")
	// SYN_SENT
	b.Transition("SYN_SENT", "recv_syn", "SYN_RCVD") // simultaneous open
	b.Transition("SYN_SENT", "recv_synack", "ESTABLISHED")
	b.Transition("SYN_SENT", "close", "CLOSED")
	b.Transition("SYN_SENT", "timeout", "CLOSED")
	// SYN_RCVD
	b.Transition("SYN_RCVD", "recv_ack", "ESTABLISHED")
	b.Transition("SYN_RCVD", "close", "FIN_WAIT_1")
	b.Transition("SYN_RCVD", "timeout", "LISTEN") // RST, back to listen
	// ESTABLISHED
	b.Transition("ESTABLISHED", "close", "FIN_WAIT_1")
	b.Transition("ESTABLISHED", "recv_fin", "CLOSE_WAIT")
	// FIN_WAIT_1
	b.Transition("FIN_WAIT_1", "recv_ack", "FIN_WAIT_2")
	b.Transition("FIN_WAIT_1", "recv_fin", "CLOSING")
	b.Transition("FIN_WAIT_1", "recv_finack", "TIME_WAIT")
	// FIN_WAIT_2
	b.Transition("FIN_WAIT_2", "recv_fin", "TIME_WAIT")
	// CLOSE_WAIT
	b.Transition("CLOSE_WAIT", "close", "LAST_ACK")
	// CLOSING
	b.Transition("CLOSING", "recv_ack", "TIME_WAIT")
	// LAST_ACK
	b.Transition("LAST_ACK", "recv_ack", "CLOSED")
	// TIME_WAIT
	b.Transition("TIME_WAIT", "timeout", "CLOSED")
	return b.MustBuild(true)
}
