package machines

import "repro/internal/dfsm"

// MESI returns the standard 4-state MESI cache-coherency protocol machine
// used in the results table. Events are the processor- and bus-side
// stimuli of the textbook protocol:
//
//	PrRd   – processor read of the cached line
//	PrWr   – processor write
//	BusRd  – another cache reads the line (snooped)
//	BusRdX – another cache reads-for-ownership (snooped)
//	BusUpgr – another cache upgrades S→M (snooped)
//
// Transitions follow the usual diagram: a local read from Invalid allocates
// Exclusive (we model the no-sharers fill; the with-sharers fill is covered
// by the BusRd interplay), a local write makes Modified, snooped reads
// demote M/E to Shared, snooped RFO/upgrade invalidates.
func MESI() *dfsm.Machine {
	b := dfsm.NewBuilder("MESI").Initial("I")
	// Invalid
	b.Transition("I", "PrRd", "E")
	b.Transition("I", "PrWr", "M")
	b.Loop("I", "BusRd", "BusRdX", "BusUpgr")
	// Exclusive
	b.Transition("E", "PrRd", "E")
	b.Transition("E", "PrWr", "M")
	b.Transition("E", "BusRd", "S")
	b.Transition("E", "BusRdX", "I")
	b.Transition("E", "BusUpgr", "I")
	// Shared
	b.Transition("S", "PrRd", "S")
	b.Transition("S", "PrWr", "M") // issues BusUpgr itself
	b.Transition("S", "BusRd", "S")
	b.Transition("S", "BusRdX", "I")
	b.Transition("S", "BusUpgr", "I")
	// Modified
	b.Transition("M", "PrRd", "M")
	b.Transition("M", "PrWr", "M")
	b.Transition("M", "BusRd", "S") // write back, keep shared
	b.Transition("M", "BusRdX", "I")
	b.Transition("M", "BusUpgr", "I")
	return b.MustBuild(false)
}

// MOESI returns the 5-state MOESI extension (adds the Owned state); not in
// the paper's table but included for the extension experiments — it shares
// the MESI alphabet, so it can substitute into any suite.
func MOESI() *dfsm.Machine {
	b := dfsm.NewBuilder("MOESI").Initial("I")
	b.Transition("I", "PrRd", "E")
	b.Transition("I", "PrWr", "M")
	b.Loop("I", "BusRd", "BusRdX", "BusUpgr")
	b.Transition("E", "PrRd", "E")
	b.Transition("E", "PrWr", "M")
	b.Transition("E", "BusRd", "S")
	b.Transition("E", "BusRdX", "I")
	b.Transition("E", "BusUpgr", "I")
	b.Transition("S", "PrRd", "S")
	b.Transition("S", "PrWr", "M")
	b.Transition("S", "BusRd", "S")
	b.Transition("S", "BusRdX", "I")
	b.Transition("S", "BusUpgr", "I")
	b.Transition("M", "PrRd", "M")
	b.Transition("M", "PrWr", "M")
	b.Transition("M", "BusRd", "O") // supply data, keep ownership
	b.Transition("M", "BusRdX", "I")
	b.Transition("M", "BusUpgr", "I")
	b.Transition("O", "PrRd", "O")
	b.Transition("O", "PrWr", "M")
	b.Transition("O", "BusRd", "O")
	b.Transition("O", "BusRdX", "I")
	b.Transition("O", "BusUpgr", "I")
	return b.MustBuild(false)
}
