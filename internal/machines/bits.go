package machines

import (
	"fmt"
	"strings"

	"repro/internal/dfsm"
)

// ShiftRegister returns the 2^k-state machine remembering the last k binary
// inputs (the "Shift Register" of the results table; k=2 gives 4 states).
// State names are the remembered bit strings, initially all zeros.
func ShiftRegister(k int) *dfsm.Machine {
	if k < 1 || k > 20 {
		panic(fmt.Sprintf("machines: shift register of width %d", k))
	}
	n := 1 << k
	states := make([]string, n)
	for i := range states {
		states[i] = fmt.Sprintf("%0*b", k, i)
	}
	mask := n - 1
	delta := make([][]int, n)
	for i := range delta {
		delta[i] = []int{
			(i << 1) & mask,       // shift in 0
			((i << 1) | 1) & mask, // shift in 1
		}
	}
	return dfsm.MustMachine(fmt.Sprintf("ShiftReg%d", k), states, []string{EventZero, EventOne}, delta, 0)
}

// EvenParity is the "Even Parity Checker": two states tracking whether the
// number of 1s seen so far is even (accepting convention: state even
// initially).
func EvenParity() *dfsm.Machine {
	return dfsm.MustMachine("EvenParity",
		[]string{"even", "odd"},
		[]string{EventZero, EventOne},
		[][]int{
			{0, 1}, // even: 0 keeps parity, 1 flips
			{1, 0},
		}, 0)
}

// OddParity is the "Odd Parity Checker": parity of the number of 0s seen.
// Together with EvenParity it forms an incomparable pair over the same
// alphabet (one flips on 1s, the other on 0s).
func OddParity() *dfsm.Machine {
	return dfsm.MustMachine("OddParity",
		[]string{"odd", "even"},
		[]string{EventZero, EventOne},
		[][]int{
			{1, 0}, // flips on 0
			{0, 1},
		}, 0)
}

// ToggleSwitch is the 2-state "Toggle Switch": it flips on every event of
// the binary alphabet.
func ToggleSwitch() *dfsm.Machine {
	return dfsm.MustMachine("Toggle",
		[]string{"off", "on"},
		[]string{EventZero, EventOne},
		[][]int{
			{1, 1},
			{0, 0},
		}, 0)
}

// PatternDetector returns the KMP-style machine that tracks progress toward
// the given binary pattern (the "Pattern Generator" of the results table;
// the paper does not define it, so we use the standard pattern-matching
// automaton, which has len(pattern)+1 states; the default paper
// configuration uses pattern "101").
func PatternDetector(pattern string) *dfsm.Machine {
	for _, c := range pattern {
		if c != '0' && c != '1' {
			panic(fmt.Sprintf("machines: pattern %q is not binary", pattern))
		}
	}
	k := len(pattern)
	states := make([]string, k+1)
	for i := range states {
		states[i] = "p" + pattern[:i]
	}
	states[0] = "p_"
	// Failure-function transitions: from progress i on bit b, the new
	// progress is the longest suffix of pattern[:i]+b that is a prefix of
	// pattern. After a full match the automaton reports and continues from
	// the longest proper border (streaming detection).
	next := func(i int, b byte) int {
		if i == k {
			i = border(pattern, k)
		}
		for {
			if pattern[i] == b {
				return i + 1
			}
			if i == 0 {
				return 0
			}
			i = border(pattern, i)
		}
	}
	delta := make([][]int, k+1)
	for i := range delta {
		delta[i] = []int{next(i, '0'), next(i, '1')}
	}
	name := "Pattern(" + pattern + ")"
	return dfsm.MustMachine(name, states, []string{EventZero, EventOne}, delta, 0)
}

// border returns the length of the longest proper border (prefix==suffix)
// of pattern[:i].
func border(pattern string, i int) int {
	for l := i - 1; l > 0; l-- {
		if strings.HasPrefix(pattern, pattern[i-l:i]) {
			return l
		}
	}
	return 0
}

// PatternGenerator returns the default "Pattern Generator" used in the
// results table: the detector for pattern 101 (4 states).
func PatternGenerator() *dfsm.Machine { return PatternDetector("101") }
