package machines

import (
	"strings"
	"testing"

	"repro/internal/dfsm"
)

func TestModCounterCounts(t *testing.T) {
	m := ModCounter("c", 3, "0")
	events := strings.Split("0 0 1 0 0 1", " ")
	if got := m.Run(events); got != 4%3 {
		t.Errorf("mod-3 counter of 0s: state %d after 4 zeros, want 1", got)
	}
	if ModCounter("c1", 1, "x").NumStates() != 1 {
		t.Error("mod-1 counter broken")
	}
}

func TestZeroOneCounters(t *testing.T) {
	z, o := ZeroCounter(), OneCounter()
	if z.NumStates() != 3 || o.NumStates() != 3 {
		t.Fatal("paper counters are mod-3")
	}
	events := strings.Split("0 1 1 1 0", " ")
	if z.Run(events) != 2 {
		t.Errorf("0-Counter: %d, want 2", z.Run(events))
	}
	if o.Run(events) != 0 {
		t.Errorf("1-Counter: %d, want 0 (3 mod 3)", o.Run(events))
	}
}

func TestSumDiffCounters(t *testing.T) {
	// n0 = 4, n1 = 2: sum 6 mod 3 = 0, diff 2 mod 3 = 2.
	events := strings.Split("0 0 1 0 1 0", " ")
	if got := SumCounter(3).Run(events); got != 0 {
		t.Errorf("SumMod3 = %d, want 0", got)
	}
	if got := DiffCounter(3).Run(events); got != 2 {
		t.Errorf("DiffMod3 = %d, want 2", got)
	}
	// DiffCounter decrements modulo k from 0.
	if got := DiffCounter(3).Run([]string{"1"}); got != 2 {
		t.Errorf("DiffMod3 after one 1: %d, want 2", got)
	}
}

func TestWeightedCounter(t *testing.T) {
	// w0=1,w1=2 mod 5: after 0 0 1 → 1+1+2 = 4.
	m := WeightedCounter("w", 5, 1, 2)
	if got := m.Run([]string{"0", "0", "1"}); got != 4 {
		t.Errorf("weighted counter = %d, want 4", got)
	}
	// Weights are reduced mod k, negatives allowed.
	n := WeightedCounter("n", 3, -1, 0)
	if got := n.Run([]string{"0"}); got != 2 {
		t.Errorf("weight -1 counter = %d, want 2", got)
	}
}

func TestShiftRegister(t *testing.T) {
	m := ShiftRegister(2)
	if m.NumStates() != 4 {
		t.Fatalf("|ShiftReg2| = %d, want 4", m.NumStates())
	}
	got := m.Run([]string{"1", "0", "1", "1"})
	if m.StateName(got) != "11" {
		t.Errorf("register holds %q, want 11", m.StateName(got))
	}
	got = m.Run([]string{"1", "0"})
	if m.StateName(got) != "10" {
		t.Errorf("register holds %q, want 10", m.StateName(got))
	}
}

func TestParityMachines(t *testing.T) {
	e := EvenParity()
	if e.Run([]string{"1", "1", "0"}) != 0 {
		t.Error("even parity of two 1s should be back at even")
	}
	if e.Run([]string{"1"}) != 1 {
		t.Error("one 1 should flip parity")
	}
	o := OddParity()
	if o.Run([]string{"0"}) == o.Initial() {
		t.Error("OddParity should flip on 0")
	}
	if o.Run([]string{"1"}) != o.Initial() {
		t.Error("OddParity should ignore 1 (self-loop to same parity)")
	}
}

func TestToggleSwitch(t *testing.T) {
	m := ToggleSwitch()
	if m.Run([]string{"0"}) == m.Initial() || m.Run([]string{"0", "1"}) != m.Initial() {
		t.Error("toggle broken")
	}
}

func TestPatternDetector(t *testing.T) {
	m := PatternDetector("101")
	if m.NumStates() != 4 {
		t.Fatalf("|Pattern(101)| = %d, want 4", m.NumStates())
	}
	// Full match ends in the accepting (progress-3) state.
	if got := m.Run([]string{"1", "0", "1"}); got != 3 {
		t.Errorf("after 101: state %d, want 3", got)
	}
	// Overlapping match: 10101 ends matched again (borders work).
	if got := m.Run([]string{"1", "0", "1", "0", "1"}); got != 3 {
		t.Errorf("after 10101: state %d, want 3", got)
	}
	// Mismatch resets properly: 1 1 0 1 — the trailing 101 matches.
	if got := m.Run([]string{"1", "1", "0", "1"}); got != 3 {
		t.Errorf("after 1101: state %d, want 3", got)
	}
	if got := m.Run([]string{"0", "0"}); got != 0 {
		t.Errorf("after 00: state %d, want 0", got)
	}
}

func TestPatternDetectorRejectsNonBinary(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-binary pattern accepted")
		}
	}()
	PatternDetector("1a1")
}

func TestDivider(t *testing.T) {
	m := Divider(5)
	if m.NumStates() != 5 {
		t.Fatal("Divider(5) size")
	}
	if got := m.Run([]string{"0", "1", "0", "1", "0", "0", "1"}); got != 2 {
		t.Errorf("divider after 7 events: %d, want 2", got)
	}
}

func TestMESIProtocol(t *testing.T) {
	m := MESI()
	if m.NumStates() != 4 {
		t.Fatalf("|MESI| = %d, want 4", m.NumStates())
	}
	if m.StateName(m.Initial()) != "I" {
		t.Fatal("MESI must start Invalid")
	}
	run := func(events ...string) string { return m.StateName(m.Run(events)) }
	if got := run("PrRd"); got != "E" {
		t.Errorf("I --PrRd--> %s, want E", got)
	}
	if got := run("PrRd", "PrWr"); got != "M" {
		t.Errorf("E --PrWr--> %s, want M", got)
	}
	if got := run("PrRd", "BusRd"); got != "S" {
		t.Errorf("E --BusRd--> %s, want S", got)
	}
	if got := run("PrWr", "BusRdX"); got != "I" {
		t.Errorf("M --BusRdX--> %s, want I", got)
	}
	if got := run("PrRd", "BusRd", "PrWr", "BusRd"); got != "S" {
		t.Errorf("M --BusRd--> %s, want S (writeback)", got)
	}
}

func TestMOESIProtocol(t *testing.T) {
	m := MOESI()
	if m.NumStates() != 5 {
		t.Fatalf("|MOESI| = %d, want 5", m.NumStates())
	}
	run := func(events ...string) string { return m.StateName(m.Run(events)) }
	if got := run("PrWr", "BusRd"); got != "O" {
		t.Errorf("M --BusRd--> %s, want O", got)
	}
	if got := run("PrWr", "BusRd", "PrWr"); got != "M" {
		t.Errorf("O --PrWr--> %s, want M", got)
	}
}

func TestTCPStateMachine(t *testing.T) {
	m := TCP()
	if m.NumStates() != 11 {
		t.Fatalf("|TCP| = %d, want 11 (RFC 793)", m.NumStates())
	}
	run := func(events ...string) string { return m.StateName(m.Run(events)) }
	// Three-way handshake, server side.
	if got := run("open_passive", "recv_syn", "recv_ack"); got != "ESTABLISHED" {
		t.Errorf("passive open handshake ends in %s", got)
	}
	// Client side.
	if got := run("open_active", "recv_synack"); got != "ESTABLISHED" {
		t.Errorf("active open ends in %s", got)
	}
	// Active close through TIME_WAIT back to CLOSED.
	if got := run("open_active", "recv_synack", "close", "recv_finack", "timeout"); got != "CLOSED" {
		t.Errorf("active close ends in %s", got)
	}
	// Simultaneous close goes through CLOSING.
	if got := run("open_active", "recv_synack", "close", "recv_fin"); got != "CLOSING" {
		t.Errorf("simultaneous close reaches %s", got)
	}
	// Passive close.
	if got := run("open_active", "recv_synack", "recv_fin", "close", "recv_ack"); got != "CLOSED" {
		t.Errorf("passive close ends in %s", got)
	}
	// Unexpected events are ignored (self-loop).
	if got := run("recv_fin"); got != "CLOSED" {
		t.Errorf("CLOSED --recv_fin--> %s, want CLOSED", got)
	}
}

func TestFig2Machines(t *testing.T) {
	a, b := Fig2A(), Fig2B()
	if a.NumStates() != 3 || b.NumStates() != 3 {
		t.Fatal("Fig. 2 machines must have 3 states")
	}
	p, err := dfsm.ReachableCrossProduct([]*dfsm.Machine{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if p.Top.NumStates() != 4 {
		t.Fatalf("|R({A,B})| = %d, want 4 as in Fig. 2(iii)", p.Top.NumStates())
	}
}

func TestSensorCounters(t *testing.T) {
	sensors := SensorCounters(5, 3)
	if len(sensors) != 5 {
		t.Fatal("want 5 sensors")
	}
	// Sensor i reacts only to event e<i>.
	if sensors[2].Run([]string{"e2", "e1", "e2"}) != 2 {
		t.Error("sensor 2 missed its events")
	}
	if sensors[1].Run([]string{"e2", "e0"}) != 0 {
		t.Error("sensor 1 reacted to foreign events")
	}
}

func TestSensorFusionTracksWeightedSum(t *testing.T) {
	const n, k = 4, 5
	f0 := SensorFusion(n, k, 0) // plain sum
	events := []string{"e0", "e1", "e1", "e3", "e3", "e3"}
	if got := f0.Run(events); got != 6%k {
		t.Errorf("sum fusion = %d, want %d", got, 6%k)
	}
	f1 := SensorFusion(n, k, 1) // Σ (i+1)·n_i = 1+2+2+4·3 = 17 mod 5 = 2
	if got := f1.Run(events); got != 2 {
		t.Errorf("weighted fusion = %d, want 2", got)
	}
}

func TestZooRegistry(t *testing.T) {
	for _, name := range Names() {
		m, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("zoo machine %q invalid: %v", name, err)
		}
	}
	if _, err := Get("no-such-machine"); err == nil {
		t.Error("unknown machine accepted")
	}
	if MustGet("MESI").Name() != "MESI" {
		t.Error("MustGet broken")
	}
}

func TestPaperSuitesResolve(t *testing.T) {
	for _, s := range PaperSuites() {
		ms, err := SuiteMachines(s)
		if err != nil {
			t.Fatalf("suite %s: %v", s.Name, err)
		}
		if len(ms) != len(s.Machines) {
			t.Fatalf("suite %s resolved %d machines", s.Name, len(ms))
		}
		if s.F < 1 {
			t.Errorf("suite %s has no fault budget", s.Name)
		}
	}
}
