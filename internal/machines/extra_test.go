package machines

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dfsm"
)

func TestTrafficLight(t *testing.T) {
	m := TrafficLight()
	run := func(events ...string) string { return m.StateName(m.Run(events)) }
	if got := run("timer", "timer"); got != "yellow" {
		t.Errorf("two timers → %s, want yellow", got)
	}
	if got := run("timer", "fault"); got != "flash" {
		t.Errorf("fault → %s, want flash", got)
	}
	if got := run("fault", "timer", "reset"); got != "red" {
		t.Errorf("reset → %s, want red", got)
	}
}

func TestElevatorSaturates(t *testing.T) {
	m := Elevator(4)
	if m.NumStates() != 4 {
		t.Fatal("size")
	}
	run := func(events ...string) string { return m.StateName(m.Run(events)) }
	if got := run("up", "up", "up", "up", "up"); got != "floor3" {
		t.Errorf("over-up → %s", got)
	}
	if got := run("down"); got != "floor0" {
		t.Errorf("under-down → %s", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("1-floor elevator accepted")
		}
	}()
	Elevator(1)
}

func TestTokenBucket(t *testing.T) {
	m := TokenBucket(2)
	if m.NumStates() != 3 {
		t.Fatal("size")
	}
	run := func(events ...string) string { return m.StateName(m.Run(events)) }
	if got := run("fill", "fill", "fill"); got != "tokens2" {
		t.Errorf("saturating fill → %s", got)
	}
	if got := run("send"); got != "tokens0" {
		t.Errorf("empty send → %s", got)
	}
	if got := run("fill", "send", "send", "fill"); got != "tokens1" {
		t.Errorf("mixed → %s", got)
	}
}

func TestGoBackN(t *testing.T) {
	m := GoBackN(4)
	run := func(events ...string) string { return m.StateName(m.Run(events)) }
	if got := run("send", "send", "send", "send", "send"); got != "seq1" {
		t.Errorf("wraparound → %s", got)
	}
	if got := run("send", "send", "nak"); got != "seq0" {
		t.Errorf("nak → %s", got)
	}
}

func TestTurnstile(t *testing.T) {
	m := Turnstile()
	run := func(events ...string) string { return m.StateName(m.Run(events)) }
	if got := run("push"); got != "locked" {
		t.Errorf("push while locked → %s", got)
	}
	if got := run("coin", "push"); got != "locked" {
		t.Errorf("coin+push → %s", got)
	}
	if got := run("coin", "coin"); got != "unlocked" {
		t.Errorf("double coin → %s", got)
	}
}

func TestGrayCounterAdjacency(t *testing.T) {
	m := GrayCounter(3)
	if m.NumStates() != 8 {
		t.Fatal("size")
	}
	s := m.Initial()
	for i := 0; i < 16; i++ {
		next := m.Next(s, "tick")
		// Successive Gray states differ in exactly one bit.
		a, b := m.StateName(s), m.StateName(next)
		diff := 0
		for j := 1; j < len(a); j++ { // skip the 'g' prefix
			if a[j] != b[j] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("step %d: %s → %s differ in %d bits", i, a, b, diff)
		}
		s = next
	}
	if s != m.Initial() {
		t.Error("16 ticks of an 8-state cycle should return to start")
	}
}

func TestRingCounter(t *testing.T) {
	m := RingCounter(5)
	if got := m.Run([]string{"tick", "tick", "tick", "tick", "tick"}); got != 0 {
		t.Errorf("full loop → %d", got)
	}
}

func TestThermostatHysteresis(t *testing.T) {
	m := Thermostat()
	run := func(events ...string) string { return m.StateName(m.Run(events)) }
	if got := run("cold", "ok"); got != "heating" {
		t.Errorf("ok must not stop heating: %s", got)
	}
	if got := run("cold", "hot"); got != "idle" {
		t.Errorf("hot must stop heating: %s", got)
	}
}

func TestVendingMachine(t *testing.T) {
	m := VendingMachine()
	run := func(events ...string) string { return m.StateName(m.Run(events)) }
	if got := run("dime", "dime", "nickel"); got != "c25" {
		t.Errorf("25¢ → %s", got)
	}
	if got := run("dime", "dime", "nickel", "vend"); got != "c0" {
		t.Errorf("vend → %s", got)
	}
	if got := run("nickel", "vend"); got != "c5" {
		t.Errorf("vend under credit → %s", got)
	}
	if got := run("dime", "dime", "dime"); got != "c25" {
		t.Errorf("saturation → %s", got)
	}
}

// TestExtendedSuiteFusion: the extra machines play with the fusion
// machinery end to end (they share no alphabet, so the top is a plain
// product; generation still beats replication).
func TestExtendedSuiteFusion(t *testing.T) {
	ms := []*dfsm.Machine{Turnstile(), Thermostat(), RingCounter(3)}
	sys, err := core.NewSystem(ms)
	if err != nil {
		t.Fatal(err)
	}
	F, err := core.GenerateFusion(sys, 1, core.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := sys.IsFusion(F, 1)
	if err != nil || !ok {
		t.Fatalf("extended suite fusion invalid: %v %v", ok, err)
	}
	space := 1
	for _, p := range F {
		space *= p.NumBlocks()
	}
	if space >= 2*3*2*3 { // replication f=1 = |product| = 12... compare to product of originals
		t.Logf("fusion space %d (top %d)", space, sys.N())
	}
}
