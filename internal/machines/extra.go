package machines

import (
	"fmt"

	"repro/internal/dfsm"
)

// This file extends the zoo beyond the paper's table with other standard
// protocol and hardware machines; they share alphabets with the paper's
// machines where that makes interesting cross products, and they feed the
// scaling experiments.

// TrafficLight is the classic three-phase controller on a "timer" event,
// with a "fault" event forcing flashing-red.
func TrafficLight() *dfsm.Machine {
	b := dfsm.NewBuilder("TrafficLight").Initial("red")
	b.Cycle("timer", "red", "green", "yellow")
	for _, s := range []string{"red", "green", "yellow"} {
		b.Transition(s, "fault", "flash")
	}
	b.Transition("flash", "timer", "flash")
	b.Transition("flash", "fault", "flash")
	b.Transition("flash", "reset", "red")
	for _, s := range []string{"red", "green", "yellow"} {
		b.Loop(s, "reset")
	}
	return b.MustBuild(false)
}

// Elevator models an elevator over k floors with "up"/"down" requests that
// saturate at the ends.
func Elevator(floors int) *dfsm.Machine {
	if floors < 2 {
		panic(fmt.Sprintf("machines: elevator with %d floors", floors))
	}
	states := make([]string, floors)
	for i := range states {
		states[i] = fmt.Sprintf("floor%d", i)
	}
	delta := make([][]int, floors)
	for i := range delta {
		up, down := i+1, i-1
		if up >= floors {
			up = i
		}
		if down < 0 {
			down = i
		}
		delta[i] = []int{up, down}
	}
	return dfsm.MustMachine("Elevator", states, []string{"up", "down"}, delta, 0)
}

// TokenBucket is a rate limiter with capacity c: "fill" adds a token
// (saturating), "send" consumes one (ignored when empty).
func TokenBucket(c int) *dfsm.Machine {
	if c < 1 {
		panic(fmt.Sprintf("machines: token bucket of capacity %d", c))
	}
	states := make([]string, c+1)
	for i := range states {
		states[i] = fmt.Sprintf("tokens%d", i)
	}
	delta := make([][]int, c+1)
	for i := range delta {
		fill, send := i+1, i-1
		if fill > c {
			fill = c
		}
		if send < 0 {
			send = 0
		}
		delta[i] = []int{fill, send}
	}
	return dfsm.MustMachine("TokenBucket", states, []string{"fill", "send"}, delta, 0)
}

// GoBackN models the sender window position of a go-back-N ARQ with
// sequence space s: "send" advances the next sequence number (mod s),
// "nak" rewinds to the last acked number... simplified to a mod-s counter
// with a "nak" reset, which captures the state that must be recovered.
func GoBackN(s int) *dfsm.Machine {
	if s < 2 {
		panic(fmt.Sprintf("machines: go-back-N with sequence space %d", s))
	}
	states := make([]string, s)
	for i := range states {
		states[i] = fmt.Sprintf("seq%d", i)
	}
	delta := make([][]int, s)
	for i := range delta {
		delta[i] = []int{(i + 1) % s, 0}
	}
	return dfsm.MustMachine("GoBackN", states, []string{"send", "nak"}, delta, 0)
}

// Turnstile is the canonical two-state coin/push machine.
func Turnstile() *dfsm.Machine {
	return dfsm.MustMachine("Turnstile",
		[]string{"locked", "unlocked"},
		[]string{"coin", "push"},
		[][]int{
			{1, 0}, // locked: coin unlocks, push bounces
			{1, 0}, // unlocked: coin keeps, push locks
		}, 0)
}

// GrayCounter cycles through the k-bit Gray code on "tick" — a register
// whose successive states differ in one bit, common in async hardware.
func GrayCounter(k int) *dfsm.Machine {
	if k < 1 || k > 16 {
		panic(fmt.Sprintf("machines: %d-bit gray counter", k))
	}
	n := 1 << k
	states := make([]string, n)
	order := make([]int, n) // order[i] = gray code of i
	pos := make(map[int]int, n)
	for i := 0; i < n; i++ {
		g := i ^ (i >> 1)
		order[i] = g
		pos[g] = i
		states[g] = fmt.Sprintf("g%0*b", k, g)
	}
	delta := make([][]int, n)
	for g := 0; g < n; g++ {
		next := order[(pos[g]+1)%n]
		delta[g] = []int{next}
	}
	return dfsm.MustMachine(fmt.Sprintf("Gray%d", k), states, []string{"tick"}, delta, pos[0])
}

// RingCounter is a one-hot ring of width k on "tick".
func RingCounter(k int) *dfsm.Machine {
	if k < 1 {
		panic(fmt.Sprintf("machines: ring counter of width %d", k))
	}
	states := make([]string, k)
	delta := make([][]int, k)
	for i := range states {
		states[i] = fmt.Sprintf("hot%d", i)
		delta[i] = []int{(i + 1) % k}
	}
	return dfsm.MustMachine("RingCounter", states, []string{"tick"}, delta, 0)
}

// Thermostat is a hysteresis controller: heat turns on below the low
// threshold, off above the high one; events are quantized temperature
// readings "cold", "ok", "hot".
func Thermostat() *dfsm.Machine {
	b := dfsm.NewBuilder("Thermostat").Initial("idle")
	b.Transition("idle", "cold", "heating")
	b.Loop("idle", "ok", "hot")
	b.Transition("heating", "hot", "idle")
	b.Loop("heating", "cold", "ok")
	return b.MustBuild(false)
}

// VendingMachine accepts nickels/dimes up to 25¢ and vends; change is
// ignored (state saturates), the canonical FSM-textbook example.
func VendingMachine() *dfsm.Machine {
	b := dfsm.NewBuilder("Vending").Initial("c0")
	credits := []string{"c0", "c5", "c10", "c15", "c20", "c25"}
	next := func(i, add int) string {
		j := i + add
		if j >= len(credits) {
			j = len(credits) - 1
		}
		return credits[j]
	}
	for i, s := range credits {
		b.Transition(s, "nickel", next(i, 1))
		b.Transition(s, "dime", next(i, 2))
		if s == "c25" {
			b.Transition(s, "vend", "c0")
		} else {
			b.Loop(s, "vend")
		}
	}
	return b.MustBuild(false)
}
