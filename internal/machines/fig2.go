package machines

import "repro/internal/dfsm"

// Machines A and B of Fig. 2 of the paper. The published figure gives the
// state sets and the block structure of the reachable cross product
// (|A|=|B|=3, |R({A,B})|=4, with a 3-state machine M1 below the top) but
// the OCR'd text does not fully specify the arrows. The transition tables
// below are a faithful reconstruction with exactly those properties,
// verified computationally in the tests:
//
//   - R({A,B}) has 4 states t0..t3 with t0={a0,b0}, t1={a1,b1},
//     t2={a2,b2}, t3={a0,b2};
//   - A corresponds to the closed partition {t0,t3},{t1},{t2} of the top;
//   - B corresponds to {t0},{t1},{t2,t3};
//   - M1 (see Fig2M1Partition) = {t0,t2},{t1},{t3} is a closed partition,
//     so the 3-state machine M1 of Fig. 2 exists in the lattice.
//
// See DESIGN.md §2 for the substitution note.

// Fig2A returns machine A of Fig. 2.
func Fig2A() *dfsm.Machine {
	return dfsm.MustMachine("A",
		[]string{"a0", "a1", "a2"},
		[]string{EventZero, EventOne},
		[][]int{
			// e0  e1
			{1, 0}, // a0
			{2, 0}, // a1
			{1, 0}, // a2
		}, 0)
}

// Fig2B returns machine B of Fig. 2.
func Fig2B() *dfsm.Machine {
	return dfsm.MustMachine("B",
		[]string{"b0", "b1", "b2"},
		[]string{EventZero, EventOne},
		[][]int{
			// e0  e1
			{1, 2}, // b0
			{2, 0}, // b1
			{1, 2}, // b2
		}, 0)
}

// Fig2M1Blocks returns the blocks of machine M1 of Fig. 2 in terms of the
// top states of R({Fig2A,Fig2B}); the top's BFS order from {a0,b0} is
// t0={a0,b0}, t1={a1,b1}, t2={a0,b2}... NOTE: the actual index order
// depends on the product BFS; use core.System to resolve. The blocks below
// are expressed as component tuples instead, which is order-independent:
// M1 groups {a0,b0} with {a2,b2}, and keeps {a1,b1} and {a0,b2} alone.
func Fig2M1Blocks() [][][2]string {
	return [][][2]string{
		{{"a0", "b0"}, {"a2", "b2"}},
		{{"a1", "b1"}},
		{{"a0", "b2"}},
	}
}
