package machines

import (
	"fmt"
	"sort"

	"repro/internal/dfsm"
)

// Get returns a zoo machine by its table name, used by the CLIs. Names are
// the ones appearing in the paper's results table plus the Fig. 1/Fig. 2
// machines. The returned machine is renamed to the registry name so that
// zoo name and machine (server) name always agree.
func Get(name string) (*dfsm.Machine, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("machines: unknown machine %q (have %v)", name, Names())
	}
	m := f()
	if m.Name() != name {
		m = m.Rename(name)
	}
	return m, nil
}

// MustGet is Get that panics on error.
func MustGet(name string) *dfsm.Machine {
	m, err := Get(name)
	if err != nil {
		panic(err)
	}
	return m
}

// Names lists the available zoo machines, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

var registry = map[string]func() *dfsm.Machine{
	"MESI":             MESI,
	"MOESI":            MOESI,
	"TCP":              TCP,
	"0-Counter":        ZeroCounter,
	"1-Counter":        OneCounter,
	"ShiftRegister":    func() *dfsm.Machine { return ShiftRegister(2) },
	"EvenParity":       EvenParity,
	"OddParity":        OddParity,
	"Toggle":           ToggleSwitch,
	"PatternGenerator": PatternGenerator,
	"Divider":          func() *dfsm.Machine { return Divider(5) },
	"A":                Fig2A,
	"B":                Fig2B,
	"SumMod3":          func() *dfsm.Machine { return SumCounter(3) },
	"DiffMod3":         func() *dfsm.Machine { return DiffCounter(3) },
	// Extended zoo (not in the paper's table; used by the scaling and
	// extension experiments).
	"TrafficLight": TrafficLight,
	"Elevator":     func() *dfsm.Machine { return Elevator(4) },
	"TokenBucket":  func() *dfsm.Machine { return TokenBucket(3) },
	"GoBackN":      func() *dfsm.Machine { return GoBackN(8) },
	"Turnstile":    Turnstile,
	"GrayCounter":  func() *dfsm.Machine { return GrayCounter(3) },
	"RingCounter":  func() *dfsm.Machine { return RingCounter(5) },
	"Thermostat":   Thermostat,
	"Vending":      VendingMachine,
}

// Suite is a named list of zoo machines plus a fault budget — one row of
// the paper's results table.
type Suite struct {
	Name     string
	Machines []string
	F        int
}

// PaperSuites returns the five rows of the paper's results table in order.
func PaperSuites() []Suite {
	return []Suite{
		{Name: "tab1.1", Machines: []string{"MESI", "1-Counter", "0-Counter", "ShiftRegister"}, F: 2},
		{Name: "tab1.2", Machines: []string{"EvenParity", "OddParity", "Toggle", "PatternGenerator", "MESI"}, F: 3},
		{Name: "tab1.3", Machines: []string{"1-Counter", "0-Counter", "Divider", "A", "B"}, F: 2},
		{Name: "tab1.4", Machines: []string{"MESI", "TCP", "A", "B"}, F: 1},
		{Name: "tab1.5", Machines: []string{"PatternGenerator", "TCP", "A", "B"}, F: 2},
	}
}

// SuiteMachines materializes a suite's machine list.
func SuiteMachines(s Suite) ([]*dfsm.Machine, error) {
	out := make([]*dfsm.Machine, len(s.Machines))
	for i, n := range s.Machines {
		m, err := Get(n)
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}
