// Package trace generates the event workloads that drive the experiments:
// seeded uniform streams over a suite's union alphabet, biased streams, and
// adversarial fault schedules. The paper's model has the environment send a
// totally ordered request stream to all servers; a Trace is that stream.
package trace

import (
	"fmt"
	"math/rand"

	"repro/internal/dfsm"
)

// Generator produces deterministic event streams for a fixed alphabet.
type Generator struct {
	alphabet []string
	rng      *rand.Rand
	weights  []float64 // cumulative, same length as alphabet; nil = uniform
}

// NewGenerator returns a seeded generator over the union alphabet of the
// given machines.
func NewGenerator(seed int64, ms []*dfsm.Machine) *Generator {
	return &Generator{
		alphabet: dfsm.UnionAlphabet(ms),
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// NewGeneratorAlphabet returns a seeded generator over an explicit alphabet.
func NewGeneratorAlphabet(seed int64, alphabet []string) *Generator {
	return &Generator{
		alphabet: append([]string(nil), alphabet...),
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Alphabet returns the generator's alphabet.
func (g *Generator) Alphabet() []string { return append([]string(nil), g.alphabet...) }

// Bias sets per-event weights (must match the alphabet length; negative
// weights are invalid). Passing nil restores the uniform distribution.
func (g *Generator) Bias(weights []float64) error {
	if weights == nil {
		g.weights = nil
		return nil
	}
	if len(weights) != len(g.alphabet) {
		return fmt.Errorf("trace: %d weights for %d events", len(weights), len(g.alphabet))
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return fmt.Errorf("trace: negative weight %f for event %s", w, g.alphabet[i])
		}
		total += w
		cum[i] = total
	}
	if total == 0 {
		return fmt.Errorf("trace: all weights zero")
	}
	g.weights = cum
	return nil
}

// Next returns the next event.
func (g *Generator) Next() string {
	if g.weights == nil {
		return g.alphabet[g.rng.Intn(len(g.alphabet))]
	}
	x := g.rng.Float64() * g.weights[len(g.weights)-1]
	for i, c := range g.weights {
		if x < c {
			return g.alphabet[i]
		}
	}
	return g.alphabet[len(g.alphabet)-1]
}

// Take returns the next n events.
func (g *Generator) Take(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// FaultKind distinguishes the paper's two failure modes.
type FaultKind int

const (
	// Crash loses the machine's execution state (fail-stop, Section 2).
	Crash FaultKind = iota
	// Byzantine leaves the machine running but in an arbitrary wrong state.
	Byzantine
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Byzantine:
		return "byzantine"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one injected failure: the named server fails after the event
// stream has been applied (the paper stops the client stream during
// recovery, so all faults in a schedule strike at the same cut).
type Fault struct {
	Server string
	Kind   FaultKind
}

// Schedule is a fault schedule: the step index at which the environment
// pauses, and the faults striking at that point.
type Schedule struct {
	AtStep int
	Faults []Fault
}

// RandomSchedule picks k distinct servers to fail at a random step within
// [1, maxStep], all with the given kind.
func RandomSchedule(rng *rand.Rand, servers []string, k int, kind FaultKind, maxStep int) (Schedule, error) {
	if k > len(servers) {
		return Schedule{}, fmt.Errorf("trace: cannot fail %d of %d servers", k, len(servers))
	}
	if maxStep < 1 {
		return Schedule{}, fmt.Errorf("trace: maxStep %d < 1", maxStep)
	}
	perm := rng.Perm(len(servers))
	s := Schedule{AtStep: 1 + rng.Intn(maxStep)}
	for i := 0; i < k; i++ {
		s.Faults = append(s.Faults, Fault{Server: servers[perm[i]], Kind: kind})
	}
	return s, nil
}
