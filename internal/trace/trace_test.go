package trace

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dfsm"
	"repro/internal/machines"
)

func TestGeneratorDeterministic(t *testing.T) {
	ms := []*dfsm.Machine{machines.ZeroCounter(), machines.OneCounter()}
	a := NewGenerator(42, ms).Take(100)
	b := NewGenerator(42, ms).Take(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestGeneratorAlphabet(t *testing.T) {
	g := NewGeneratorAlphabet(1, []string{"x", "y", "z"})
	if got := g.Alphabet(); len(got) != 3 {
		t.Fatalf("alphabet %v", got)
	}
	seen := map[string]bool{}
	for _, e := range g.Take(300) {
		seen[e] = true
	}
	for _, want := range []string{"x", "y", "z"} {
		if !seen[want] {
			t.Errorf("event %q never generated in 300 draws", want)
		}
	}
}

func TestBiasSkewsDistribution(t *testing.T) {
	g := NewGeneratorAlphabet(7, []string{"rare", "common"})
	if err := g.Bias([]float64{1, 99}); err != nil {
		t.Fatal(err)
	}
	common := 0
	const n = 2000
	for _, e := range g.Take(n) {
		if e == "common" {
			common++
		}
	}
	if ratio := float64(common) / n; math.Abs(ratio-0.99) > 0.02 {
		t.Errorf("common ratio %.3f, want ≈0.99", ratio)
	}
}

func TestBiasValidation(t *testing.T) {
	g := NewGeneratorAlphabet(1, []string{"a", "b"})
	if err := g.Bias([]float64{1}); err == nil {
		t.Error("short weights accepted")
	}
	if err := g.Bias([]float64{-1, 1}); err == nil {
		t.Error("negative weight accepted")
	}
	if err := g.Bias([]float64{0, 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if err := g.Bias(nil); err != nil {
		t.Errorf("resetting bias failed: %v", err)
	}
}

func TestFaultKindString(t *testing.T) {
	if Crash.String() != "crash" || Byzantine.String() != "byzantine" {
		t.Error("FaultKind strings wrong")
	}
	if FaultKind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestRandomScheduleDistinctServers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	servers := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 50; trial++ {
		s, err := RandomSchedule(rng, servers, 3, Crash, 10)
		if err != nil {
			t.Fatal(err)
		}
		if s.AtStep < 1 || s.AtStep > 10 {
			t.Fatalf("AtStep %d out of range", s.AtStep)
		}
		seen := map[string]bool{}
		for _, f := range s.Faults {
			if seen[f.Server] {
				t.Fatalf("server %s failed twice in one schedule", f.Server)
			}
			seen[f.Server] = true
		}
	}
}
