package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Event streams persist as plain text, one event per line, with '#'
// comments — the natural interchange format next to the .fsm machine
// specs. Used by faultsim to replay recorded workloads deterministically.

// Save writes events one per line.
func Save(w io.Writer, events []string) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if strings.ContainsAny(e, " \t\n#") || e == "" {
			return fmt.Errorf("trace: event %q cannot be saved (whitespace, '#' or empty)", e)
		}
		if _, err := bw.WriteString(e); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a stream saved by Save; blank lines and '#' comments are
// skipped.
func Load(r io.Reader) ([]string, error) {
	var events []string
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		if strings.ContainsAny(text, " \t") {
			return nil, fmt.Errorf("trace: line %d: one event per line, got %q", line, text)
		}
		events = append(events, text)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return events, nil
}
