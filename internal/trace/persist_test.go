package trace

import (
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	events := []string{"0", "1", "PrRd", "recv_syn", "e42"}
	var b strings.Builder
	if err := Save(&b, events); err != nil {
		t.Fatal(err)
	}
	got, err := Load(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip: %v vs %v", got, events)
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %q vs %q", i, got[i], events[i])
		}
	}
}

func TestSaveRejectsUnsafeEvents(t *testing.T) {
	for _, bad := range []string{"two words", "tab\tchar", "", "has#hash"} {
		var b strings.Builder
		if err := Save(&b, []string{bad}); err == nil {
			t.Errorf("event %q saved", bad)
		}
	}
}

func TestLoadSkipsCommentsAndBlank(t *testing.T) {
	src := "# header\n\n0\n1 # trailing\n\n"
	got, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "0" || got[1] != "1" {
		t.Fatalf("got %v", got)
	}
}

func TestLoadRejectsMultiEventLines(t *testing.T) {
	if _, err := Load(strings.NewReader("a b\n")); err == nil {
		t.Fatal("two events on one line accepted")
	}
}

func TestLoadEmpty(t *testing.T) {
	got, err := Load(strings.NewReader("# nothing\n"))
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}
