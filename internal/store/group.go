package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the group-commit write path of the Dir store: one fsync
// for many handles, preallocated segments.
//
// In per-call mode every AppendEvents pays its own write+fsync under the
// store lock, so N concurrent cluster handles serialize on N disk
// flushes. In group mode an append only *stages* its records: callers
// enqueue framed lines on a shared commit batcher and park; a
// leader-elected flusher (the first stager of each batch, Pebble-style)
// concatenates the whole queue into a single vectored write + one
// fdatasync, then wakes every waiter. While one flush is on the disk,
// the next batch accumulates behind it — the previous fsync's latency IS
// the batching window, so coalescing needs no artificial delay
// (MaxBatchDelay can add one for spinning disks).
//
// Because fsync is per-file, "one fsync for many handles" requires the
// records of many clusters to share a file: group mode appends every
// cluster's records into shared, size-rolled segments under
// <root>/.walseg/seg-<n>.log (the dot-prefix keeps the directory out of
// every cluster scan, like .fcache). Each line is a JSON envelope
// {"c":id,"g":gen,"r":record} tagging the record with its cluster and
// the cluster's snapshot generation at enqueue time; Load replays a
// segment record only when its generation matches the cluster's current
// one, so a snapshot commit (the atomic snapshot-<g+1>.json rename)
// supersedes older segment records exactly like it supersedes a
// per-cluster WAL file. Segments are preallocated (fallocate) when
// created, so a batch write never extends file metadata inside its
// fdatasync, and a segment whose records are all superseded or removed
// is garbage-collected on the next snapshot.
//
// Crash discipline matches the per-cluster WAL byte for byte: records
// end at their newline, an acknowledged append is fsync'd before its
// waiter wakes, a torn tail (bytes after the last newline, or one final
// newline-terminated line that fails to parse, followed by nothing but
// preallocation zeros) is dropped at boot, and anything else is loud
// corruption. A restarted store never resumes appending into an old
// segment — boot seals every existing segment at its last complete
// record and starts a fresh one — so stale preallocated garbage can
// never end up *behind* a new append.
//
// Failure semantics: if a batch's write or fsync fails, every waiter in
// the batch gets the error and the affected cluster ids are poisoned —
// further stages are refused — until a successful Snapshot (or Remove)
// heals them. This is load-bearing, not just defensive: sim.Handle
// releases its per-handle lock before parking on the batch, so without
// store-side poisoning a later Update could stage on top of a failed
// append before the failed caller re-acquires the handle lock to mark
// it dirty, leaving a replay gap.

const (
	groupDirName   = ".walseg"     // shared segment log, dot-prefixed: skipped by cluster scans
	migrateDirName = ".walseg.mig" // claimed segments mid-migration back to per-cluster WALs
	stagedMarker   = "STAGED"      // migration phase marker: all combined WALs staged

	// DefaultMaxBatchBytes is the pending-batch size that triggers an
	// early flush when a MaxBatchDelay window is open.
	DefaultMaxBatchBytes = 1 << 20
	// DefaultSegmentBytes is the preallocated size of each WAL segment.
	DefaultSegmentBytes = 4 << 20
)

// DirOptions configures a Dir store beyond its root path.
type DirOptions struct {
	// GroupCommit switches AppendEvents/StageEvents from one fsync per
	// call to the shared commit batcher described above. Off by default:
	// the zero value is the historical per-cluster-file store.
	GroupCommit bool
	// MaxBatchBytes flushes a pending batch early once it reaches this
	// size; <= 0 means DefaultMaxBatchBytes. It bounds the MaxBatchDelay
	// wait, not the batch itself (a batch takes whatever queued while
	// the previous flush was on the disk).
	MaxBatchBytes int
	// MaxBatchDelay is an extra wait before each flush for the batch to
	// fill. 0 (the default) flushes as soon as the previous fsync
	// returns — the natural group-commit window — which is right for
	// SSDs; spinning disks may trade latency for fewer syncs here.
	MaxBatchDelay time.Duration
	// SegmentBytes is the preallocated size of each shared WAL segment;
	// <= 0 means DefaultSegmentBytes. A batch larger than this gets a
	// segment of its own size.
	SegmentBytes int64
	// OnFlush, when set, observes every successful group commit — the
	// obsv plane's hook for fsync counters and batch/latency histograms.
	// It is called on the flushing goroutine; keep it cheap.
	OnFlush func(FlushStats)
}

// FlushStats describes one committed group-commit batch.
type FlushStats struct {
	Appends int           // staged calls the flush committed
	Records int           // WAL records across those calls
	Bytes   int           // framed bytes written
	Sync    time.Duration // wall time of the vectored write + fdatasync
}

// WALStats counts a Dir's WAL write activity in either mode: per-call
// appends count one fsync and one flush each, so the grouped/per-call
// fsync ratio is directly comparable.
type WALStats struct {
	Fsyncs  int64 // WAL fsyncs (batch fdatasyncs, per-call syncs, segment preallocations)
	Flushes int64 // commit ticks (batches in group mode, appends in per-call mode)
	Records int64 // WAL records made durable
}

// segRec is the segment-line envelope around one cluster WAL record.
type segRec struct {
	C string          `json:"c"`
	G int             `json:"g"`
	R json.RawMessage `json:"r"`
}

// groupEntry is one staged StageEvents call parked on the batcher.
type groupEntry struct {
	id       string
	gen      int
	data     []byte // framed lines, newline-terminated
	recs     int
	onCommit func()
	done     chan error
	lead     bool // this entry's waiter runs the flush for its batch
}

// segment is one shared WAL file. f is open only while the segment is
// active (receiving appends); sealed segments are read by path. off is
// the committed byte count — Load reads [0, off) and never sees bytes an
// fsync hasn't covered.
type segment struct {
	n    int
	path string
	f    *os.File
	off  int64
	size int64
	live map[string]int // highest record generation per cluster in [0, off)
}

// groupWAL is the per-Dir commit batcher plus its segment log.
//
// Locking: mu guards all shared state (queue, segments, generations,
// poison) and is never held across I/O; flushMu serializes flush I/O and
// is held only by the elected leader of the batch being flushed. Lock
// order is s.mu -> mu for the Dir entry points and flushMu -> mu inside
// the flusher; neither flushMu nor mu is ever acquired while holding the
// other side's locks in reverse, and Load deliberately reads committed
// offsets under mu alone so a long fsync never blocks a full sync.
type groupWAL struct {
	s   *Dir
	dir string

	flushMu sync.Mutex

	mu          sync.Mutex
	queue       []*groupEntry
	queuedBytes int
	leader      bool // a batch leader is elected and will flush
	closed      bool
	poisoned    map[string]struct{}
	gens        map[string]int // cluster id -> current snapshot generation
	seg         *segment       // active segment; nil until the first flush needs one
	sealed      []*segment     // older segments, ascending n, awaiting GC
	nextSeg     int

	kick chan struct{} // capacity 1: batch hit MaxBatchBytes, flush early
}

func segName(n int) string { return fmt.Sprintf("seg-%d.log", n) }

// openGroup scans (and repairs) the segment log at boot. Every existing
// segment is sealed at its last complete record — appends always go to a
// fresh segment — and clusters the segments mention get their current
// generation resolved so superseded segments can be collected.
func openGroup(s *Dir) (*groupWAL, error) {
	g := &groupWAL{
		s:        s,
		dir:      filepath.Join(s.root, groupDirName),
		poisoned: make(map[string]struct{}),
		gens:     make(map[string]int),
		kick:     make(chan struct{}, 1),
	}
	if err := os.MkdirAll(g.dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	boot, err := scanSegmentDir(g.dir)
	if err != nil {
		return nil, err
	}
	for _, bs := range boot {
		seg := &segment{n: bs.n, path: bs.path, off: bs.keep, size: bs.keep, live: make(map[string]int)}
		for _, e := range bs.entries {
			if mg, ok := seg.live[e.C]; !ok || e.G > mg {
				seg.live[e.C] = e.G
			}
		}
		g.sealed = append(g.sealed, seg)
		if bs.n >= g.nextSeg {
			g.nextSeg = bs.n + 1
		}
	}
	for _, seg := range g.sealed {
		for id := range seg.live {
			if _, ok := g.gens[id]; ok {
				continue
			}
			dir := s.dir(id)
			if _, err := os.Stat(filepath.Join(dir, "spec.json")); err != nil {
				if os.IsNotExist(err) {
					continue // removed (or torn-Put) cluster: its records are dead
				}
				return nil, fmt.Errorf("store: %w", err)
			}
			gen, err := curGen(dir)
			if err != nil {
				return nil, fmt.Errorf("store: %w", err)
			}
			g.gens[id] = gen
		}
	}
	g.gc()
	return g, nil
}

// bootSeg is one scanned segment file.
type bootSeg struct {
	n       int
	path    string
	entries []segRec
	keep    int64 // bytes up to and including the last complete record
}

// scanSegmentDir parses every segment in ascending order with the
// torn-tail tolerance scanSegment applies per file.
func scanSegmentDir(dir string) ([]bootSeg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []bootSeg
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "seg-%d.log", &n); err != nil || e.Name() != segName(n) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		recs, keep, err := scanSegment(data)
		if err != nil {
			return nil, fmt.Errorf("store: segment %s: %w", e.Name(), err)
		}
		out = append(out, bootSeg{n: n, path: path, entries: recs, keep: keep})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].n < out[j].n })
	return out, nil
}

// scanSegment parses segment lines up to the first torn or preallocated
// tail. The tolerance rules mirror readWAL's: a record exists only up to
// the last newline; at most one newline-terminated line that fails to
// parse is tolerated when nothing but zeros/whitespace follows it (a
// torn sector inside the preallocated extent); an unparsable line with
// real data after it is corruption.
func scanSegment(data []byte) ([]segRec, int64, error) {
	var recs []segRec
	var keep int64
	rest := data
	for len(rest) > 0 {
		i := bytes.IndexByte(rest, '\n')
		if i < 0 {
			break // torn (or never-written preallocated) tail
		}
		line := rest[:i]
		rest = rest[i+1:]
		var sr segRec
		if err := json.Unmarshal(line, &sr); err != nil || sr.C == "" || len(sr.R) == 0 {
			if zeroOrSpace(rest) {
				break // torn final record that still got its newline
			}
			return nil, 0, fmt.Errorf("corrupt segment record %q", line)
		}
		recs = append(recs, sr)
		keep += int64(i) + 1
	}
	return recs, keep, nil
}

// zeroOrSpace reports whether b holds nothing but NUL bytes (the
// preallocated extent) and whitespace.
func zeroOrSpace(b []byte) bool {
	for _, c := range b {
		switch c {
		case 0, ' ', '\t', '\r', '\n':
		default:
			return false
		}
	}
	return true
}

// frameRecords wraps validated single-line-JSON records in the segment
// envelope, tagged with the cluster's generation at enqueue time.
func frameRecords(id string, gen int, recs [][]byte) ([]byte, error) {
	var buf bytes.Buffer
	for _, rec := range recs {
		if bytes.IndexByte(rec, '\n') >= 0 || !json.Valid(rec) {
			return nil, fmt.Errorf("store: WAL record for %q is not single-line JSON", id)
		}
		line, err := json.Marshal(segRec{C: id, G: gen, R: rec})
		if err != nil {
			return nil, fmt.Errorf("store: framing WAL record for %q: %w", id, err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// genOf resolves (and caches) a cluster's current generation, verifying
// the cluster exists. Callers need not hold any Dir lock; same-cluster
// callers are serialized above the store (the handle lock).
func (g *groupWAL) genOf(id string) (int, error) {
	g.mu.Lock()
	if gen, ok := g.gens[id]; ok {
		g.mu.Unlock()
		return gen, nil
	}
	g.mu.Unlock()
	dir := g.s.dir(id)
	if _, err := os.Stat(filepath.Join(dir, "spec.json")); err != nil {
		return 0, fmt.Errorf("store: no cluster %q", id)
	}
	gen, err := curGen(dir)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	g.mu.Lock()
	g.gens[id] = gen
	g.mu.Unlock()
	return gen, nil
}

func poisonErr(id string) error {
	return fmt.Errorf("store: cluster %q has an unhealed failed append; only a snapshot can resume writes", id)
}

// stage enqueues one append on the batcher and returns its wait
// function. The first stager of a batch is elected leader; it runs the
// flush inside wait (not here), so staging never blocks on I/O and a
// caller may release its own serialization before parking.
func (g *groupWAL) stage(id string, recs [][]byte, onCommit func()) (func() error, error) {
	gen, err := g.genOf(id)
	if err != nil {
		return nil, err
	}
	data, err := frameRecords(id, gen, recs)
	if err != nil {
		return nil, err
	}
	e := &groupEntry{id: id, gen: gen, data: data, recs: len(recs), onCommit: onCommit, done: make(chan error, 1)}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, fmt.Errorf("store: store closed")
	}
	if _, bad := g.poisoned[id]; bad {
		g.mu.Unlock()
		return nil, poisonErr(id)
	}
	g.queue = append(g.queue, e)
	g.queuedBytes += len(data)
	if !g.leader {
		g.leader, e.lead = true, true
	}
	full := g.queuedBytes >= g.s.opts.MaxBatchBytes
	g.mu.Unlock()
	if full {
		select {
		case g.kick <- struct{}{}:
		default:
		}
	}
	return func() error {
		if e.lead {
			g.lead()
		}
		return <-e.done
	}, nil
}

// lead runs one batch: wait for the previous flush (the coalescing
// window), optionally linger for MaxBatchDelay, take the whole queue,
// and flush it with one write + one fdatasync.
func (g *groupWAL) lead() {
	g.flushMu.Lock()
	defer g.flushMu.Unlock()
	if d := g.s.opts.MaxBatchDelay; d > 0 {
		select {
		case <-g.kick: // stale: drained so the timer below isn't cut short spuriously
		default:
		}
		g.mu.Lock()
		full := g.queuedBytes >= g.s.opts.MaxBatchBytes
		g.mu.Unlock()
		if !full {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-g.kick:
				t.Stop()
			}
		}
	}
	g.mu.Lock()
	batch := g.queue
	g.queue = nil
	g.queuedBytes = 0
	g.leader = false
	live := batch[:0]
	var refused []*groupEntry
	for _, e := range batch {
		if _, bad := g.poisoned[e.id]; bad {
			refused = append(refused, e)
		} else {
			live = append(live, e)
		}
	}
	g.mu.Unlock()
	for _, e := range refused {
		e.done <- poisonErr(e.id)
	}
	g.flush(live)
}

// flush commits one batch. On success the per-entry onCommit callbacks
// run in enqueue order BEFORE any waiter wakes — replication publishes
// durable records only, in WAL order — then the waiters are released.
func (g *groupWAL) flush(batch []*groupEntry) {
	if len(batch) == 0 {
		return
	}
	var n int
	for _, e := range batch {
		n += len(e.data)
	}
	buf := make([]byte, 0, n)
	for _, e := range batch {
		buf = append(buf, e.data...)
	}
	start := time.Now()
	seg, err := g.segmentFor(int64(len(buf)))
	if err == nil {
		if _, werr := seg.f.WriteAt(buf, seg.off); werr != nil {
			err = werr
		} else {
			err = fdatasync(seg.f)
		}
	}
	if err != nil {
		g.fail(batch, err)
		return
	}
	recs := 0
	g.mu.Lock()
	seg.off += int64(len(buf))
	for _, e := range batch {
		if mg, ok := seg.live[e.id]; !ok || e.gen > mg {
			seg.live[e.id] = e.gen
		}
		recs += e.recs
	}
	g.mu.Unlock()
	g.s.fsyncs.Add(1)
	g.s.flushes.Add(1)
	g.s.records.Add(int64(recs))
	for _, e := range batch {
		if e.onCommit != nil {
			e.onCommit()
		}
	}
	for _, e := range batch {
		e.done <- nil
	}
	if f := g.s.opts.OnFlush; f != nil {
		f(FlushStats{Appends: len(batch), Records: recs, Bytes: len(buf), Sync: time.Since(start)})
	}
}

// fail poisons every cluster in the failed batch and seals the wounded
// segment — it may hold a torn prefix of the batch, and no future append
// may land behind that garbage.
func (g *groupWAL) fail(batch []*groupEntry, err error) {
	g.mu.Lock()
	for _, e := range batch {
		g.poisoned[e.id] = struct{}{}
	}
	if g.seg != nil {
		g.seg.f.Close()
		g.seg.f = nil
		g.sealed = append(g.sealed, g.seg)
		g.seg = nil
	}
	g.mu.Unlock()
	for _, e := range batch {
		e.done <- fmt.Errorf("store: group commit for %q: %w", e.id, err)
	}
}

// segmentFor returns the active segment with room for n more bytes,
// rolling to a freshly preallocated one when needed. Only the flusher
// (under flushMu) calls it. A roll never splits a batch: the whole batch
// goes to the new segment, so one flush is always one fdatasync.
func (g *groupWAL) segmentFor(n int64) (*segment, error) {
	g.mu.Lock()
	seg := g.seg
	num := g.nextSeg
	g.mu.Unlock()
	if seg != nil && seg.off+n <= seg.size {
		return seg, nil
	}
	size := g.s.opts.SegmentBytes
	if n > size {
		size = n
	}
	path := filepath.Join(g.dir, segName(num))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating segment: %w", err)
	}
	if err := preallocate(f, size); err == nil {
		// The allocation is metadata: persist it now (full fsync) so the
		// per-batch fdatasync never has metadata left to write.
		err = f.Sync()
		if err == nil {
			err = syncDir(g.dir)
		}
	} else {
		err = fmt.Errorf("preallocating segment: %w", err)
	}
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("store: %w", err)
	}
	g.s.fsyncs.Add(1)
	ns := &segment{n: num, path: path, f: f, size: size, live: make(map[string]int)}
	g.mu.Lock()
	if g.seg != nil {
		// Already durable up to off (every committed batch fsync'd);
		// sealed segments keep no file handle.
		g.seg.f.Close()
		g.seg.f = nil
		g.sealed = append(g.sealed, g.seg)
	}
	g.seg = ns
	g.nextSeg = num + 1
	g.mu.Unlock()
	return ns, nil
}

// created records a freshly Put cluster at generation 0.
func (g *groupWAL) created(id string) {
	g.mu.Lock()
	g.gens[id] = 0
	delete(g.poisoned, id)
	g.mu.Unlock()
}

// committed records a snapshot commit: the cluster's generation advances
// and any poison heals (the snapshot wrote the full current state, so
// the gap a failed append left is gone).
func (g *groupWAL) committed(id string, gen int) {
	g.mu.Lock()
	g.gens[id] = gen
	delete(g.poisoned, id)
	g.mu.Unlock()
}

// removed forgets a deleted cluster; its segment records are dead.
func (g *groupWAL) removed(id string) {
	g.mu.Lock()
	delete(g.gens, id)
	delete(g.poisoned, id)
	g.mu.Unlock()
}

// gc deletes sealed segments whose records are all superseded (their
// cluster's generation moved past them) or orphaned (cluster removed).
// Callers hold s.mu or own g exclusively, so a concurrent Load can never
// be reading a segment gc deletes.
func (g *groupWAL) gc() {
	g.mu.Lock()
	defer g.mu.Unlock()
	kept := g.sealed[:0]
	for _, seg := range g.sealed {
		dead := true
		for id, mg := range seg.live {
			if cur, ok := g.gens[id]; ok && cur <= mg {
				dead = false
				break
			}
		}
		if dead {
			os.Remove(seg.path)
		} else {
			kept = append(kept, seg)
		}
	}
	g.sealed = kept
}

// loadInto appends each committed segment record to its cluster's WAL in
// Record order: segments ascending, bytes ascending, only records whose
// generation matches the cluster's current one. Callers hold s.mu; the
// committed offsets are read under g.mu so an in-flight flush (which
// only grows them after its fdatasync) is either fully visible or fully
// absent.
func (g *groupWAL) loadInto(recs map[string]*Record, gens map[string]int) error {
	type view struct {
		path string
		off  int64
	}
	g.mu.Lock()
	views := make([]view, 0, len(g.sealed)+1)
	for _, seg := range g.sealed {
		views = append(views, view{seg.path, seg.off})
	}
	if g.seg != nil {
		views = append(views, view{g.seg.path, g.seg.off})
	}
	g.mu.Unlock()
	for _, v := range views {
		if v.off == 0 {
			continue
		}
		f, err := os.Open(v.path)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		data := make([]byte, v.off)
		_, err = io.ReadFull(f, data)
		f.Close()
		if err != nil {
			return fmt.Errorf("store: reading segment %s: %w", filepath.Base(v.path), err)
		}
		// The committed region holds complete records only; anything
		// else is corruption, not a tolerable tail.
		for len(data) > 0 {
			i := bytes.IndexByte(data, '\n')
			if i < 0 {
				return fmt.Errorf("store: segment %s: torn record inside committed region", filepath.Base(v.path))
			}
			line := data[:i]
			data = data[i+1:]
			var sr segRec
			if err := json.Unmarshal(line, &sr); err != nil || sr.C == "" || len(sr.R) == 0 {
				return fmt.Errorf("store: segment %s: corrupt record %q", filepath.Base(v.path), line)
			}
			rec, ok := recs[sr.C]
			if !ok || sr.G != gens[sr.C] {
				continue // removed cluster or superseded generation
			}
			rec.WAL = append(rec.WAL, append([]byte(nil), sr.R...))
		}
	}
	return nil
}

// close drains the batcher: waits out an in-flight flush, fails anything
// still queued (its waiters get a closed-store error rather than a
// hang), and releases the active segment.
func (g *groupWAL) close() {
	g.flushMu.Lock()
	defer g.flushMu.Unlock()
	g.mu.Lock()
	queued := g.queue
	g.queue = nil
	g.queuedBytes = 0
	g.closed = true
	if g.seg != nil {
		g.seg.f.Close()
		g.seg.f = nil
		g.sealed = append(g.sealed, g.seg)
		g.seg = nil
	}
	g.mu.Unlock()
	for _, e := range queued {
		e.done <- fmt.Errorf("store: store closed")
	}
}

// --- mode migration --------------------------------------------------------

// migrateSegments folds a group-commit segment log back into per-cluster
// WAL files, for a Dir reopened with group commit off. The protocol is
// crash-idempotent in three committed phases:
//
//  1. claim: rename .walseg -> .walseg.mig (atomic); the live segment
//     directory is gone, so a crash can never leave half-migrated
//     records visible to BOTH load paths.
//  2. stage: for every cluster with live segment records, write the
//     combined WAL (existing per-cluster records + segment records, in
//     replay order) to .walseg.mig/stage-<id>-<gen>.log, then commit the
//     STAGED marker. Nothing outside .walseg.mig is touched before the
//     marker, so a crash restages from pristine inputs.
//  3. install: rename each staged file over its cluster's wal-<gen>.log.
//     A redo after a partial install only sees the staged files that
//     were not yet renamed. Finally the migration directory is removed.
func migrateSegments(root string) error {
	src := filepath.Join(root, groupDirName)
	dst := filepath.Join(root, migrateDirName)
	if err := os.Rename(src, dst); err != nil {
		return fmt.Errorf("store: claiming segment log for migration: %w", err)
	}
	if err := syncDir(root); err != nil {
		return err
	}
	return finishSegmentMigration(root)
}

// finishSegmentMigration completes (or redoes) a claimed migration; a
// missing migration directory is a no-op. Both modes call it at open, so
// a crash mid-migration heals no matter which mode comes back up.
func finishSegmentMigration(root string) error {
	mig := filepath.Join(root, migrateDirName)
	if _, err := os.Stat(mig); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	marker := filepath.Join(mig, stagedMarker)
	if _, err := os.Stat(marker); os.IsNotExist(err) {
		segs, err := scanSegmentDir(mig)
		if err != nil {
			return err
		}
		byID := make(map[string][]json.RawMessage)
		genOf := make(map[string]int)
		for _, bs := range segs {
			for _, e := range bs.entries {
				gen, ok := genOf[e.C]
				if !ok {
					dir := filepath.Join(root, e.C)
					if _, err := os.Stat(filepath.Join(dir, "spec.json")); err != nil {
						if os.IsNotExist(err) {
							genOf[e.C] = -1 // removed cluster: drop its records
							continue
						}
						return fmt.Errorf("store: %w", err)
					}
					if gen, err = curGen(dir); err != nil {
						return fmt.Errorf("store: %w", err)
					}
					genOf[e.C] = gen
				} else if gen < 0 {
					continue
				}
				if e.G != genOf[e.C] {
					continue // superseded by a later snapshot
				}
				byID[e.C] = append(byID[e.C], e.R)
			}
		}
		for id, segRecs := range byID {
			gen := genOf[id]
			existing, err := readWAL(filepath.Join(root, id, walName(gen)))
			if err != nil {
				return fmt.Errorf("store: migrating WAL of %q: %w", id, err)
			}
			var buf bytes.Buffer
			for _, r := range existing {
				buf.Write(r)
				buf.WriteByte('\n')
			}
			for _, r := range segRecs {
				buf.Write(r)
				buf.WriteByte('\n')
			}
			staged := filepath.Join(mig, "stage-"+id+"-"+strconv.Itoa(gen)+".log")
			if err := writeFileAtomic(staged, buf.Bytes()); err != nil {
				return fmt.Errorf("store: staging migrated WAL of %q: %w", id, err)
			}
		}
		if err := writeFileAtomic(marker, []byte("staged\n")); err != nil {
			return fmt.Errorf("store: committing migration stage: %w", err)
		}
	} else if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	entries, err := os.ReadDir(mig)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "stage-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		base := strings.TrimSuffix(strings.TrimPrefix(name, "stage-"), ".log")
		i := strings.LastIndexByte(base, '-')
		if i <= 0 {
			continue
		}
		id := base[:i]
		gen, err := strconv.Atoi(base[i+1:])
		if err != nil {
			continue
		}
		staged := filepath.Join(mig, name)
		dir := filepath.Join(root, id)
		if cur, err := curGen(dir); err != nil || cur != gen {
			os.Remove(staged) // cluster gone or generation moved: records are dead
			continue
		}
		if err := os.Rename(staged, filepath.Join(dir, walName(gen))); err != nil {
			return fmt.Errorf("store: installing migrated WAL of %q: %w", id, err)
		}
		if err := syncDir(dir); err != nil {
			return err
		}
	}
	if err := os.RemoveAll(mig); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(root)
}
