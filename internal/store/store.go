// Package store provides the durable backends behind sim's store-backed
// cluster registry: a persistent record per cluster made of an immutable
// spec, an optional snapshot, and an append-only write-ahead log of the
// records appended since that snapshot. The paper assumes the DFSMs
// themselves live on "failure-resistant permanent storage" and only
// execution state is lost on a fault; these backends give fusiond exactly
// that storage, so a restarted daemon rebuilds its machines from specs
// and its execution state from snapshot + WAL replay.
//
// Both backends implement sim.Store structurally (this package does not
// import sim): Mem keeps everything in process memory — the harness for
// registry-level tests and the semantic reference for Dir — while Dir
// persists one directory per cluster with atomic-rename snapshots and an
// fsync'd WAL, surviving SIGKILL at any point.
//
// Record bytes are opaque to the backends except for one framing
// constraint: each WAL record must be a single-line JSON value (no raw
// newlines), which is what encoding/json produces. Dir uses JSON validity
// to detect and drop a torn final record after a crash.
package store

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Record is one cluster's full durable state as returned by Load: the
// immutable spec (sim.ClusterSpec JSON), the latest compaction snapshot
// (nil when none was ever taken — replay starts from the spec's initial
// state), and the WAL records appended since that snapshot, oldest
// first.
//
// Record is an alias of an anonymous struct — deliberately: sim declares
// the same alias (sim.StoreRecord), and two aliases of an identical
// anonymous struct are the same type, which lets these backends satisfy
// sim.Store structurally without either package importing the other.
type Record = struct {
	ID       string
	Spec     []byte
	Snapshot []byte
	WAL      [][]byte
}

// validID rejects ids that could escape a per-cluster namespace. Registry
// ids are "c1", "c2", ...; anything path-like is refused defensively.
func validID(id string) error {
	if id == "" || id == "." || id == ".." ||
		strings.ContainsAny(id, "/\\") || strings.HasPrefix(id, ".") {
		return fmt.Errorf("store: invalid cluster id %q", id)
	}
	return nil
}

// Mem is an in-process Store: the same contract as Dir minus durability.
// It retains records across registry rebuilds within one process, which
// makes it the natural harness for recovery tests, and the default
// stand-in wherever a file backend is not configured (a nil store on the
// registry skips journaling entirely; Mem journals into memory).
type Mem struct {
	mu sync.Mutex
	m  map[string]*memRecord
	// cache is the flat content-addressed namespace (see cache.go),
	// lazily allocated on first use.
	cache map[string][]byte
}

type memRecord struct {
	spec, snap []byte
	wal        [][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{m: make(map[string]*memRecord)} }

// Put records a new cluster's immutable spec.
func (s *Mem) Put(id string, spec []byte) error {
	if err := validID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[id]; ok {
		return fmt.Errorf("store: cluster %q already exists", id)
	}
	s.m[id] = &memRecord{spec: append([]byte(nil), spec...)}
	return nil
}

// AppendEvents appends WAL records for id.
func (s *Mem) AppendEvents(id string, recs [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.m[id]
	if !ok {
		return fmt.Errorf("store: no cluster %q", id)
	}
	for _, rec := range recs {
		r.wal = append(r.wal, append([]byte(nil), rec...))
	}
	return nil
}

// Snapshot atomically replaces id's snapshot and truncates its WAL.
func (s *Mem) Snapshot(id string, snap []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.m[id]
	if !ok {
		return fmt.Errorf("store: no cluster %q", id)
	}
	r.snap = append([]byte(nil), snap...)
	r.wal = nil
	return nil
}

// Remove deletes all state for id; removing an unknown id is a no-op.
func (s *Mem) Remove(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, id)
	return nil
}

// Load returns every stored cluster, sorted by id.
func (s *Mem) Load() ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.m))
	for id, r := range s.m {
		rec := Record{ID: id, Spec: append([]byte(nil), r.spec...)}
		if r.snap != nil {
			rec.Snapshot = append([]byte(nil), r.snap...)
		}
		for _, w := range r.wal {
			rec.WAL = append(rec.WAL, append([]byte(nil), w...))
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}
