//go:build linux

package store

import (
	"errors"
	"os"
	"syscall"
)

// fdatasync flushes a file's data — and only the metadata needed to read
// that data back — skipping the inode-timestamp write a full fsync pays.
// It is the per-batch sync of the group-commit WAL: segments are
// preallocated, so an append changes no file size and the data-only sync
// is sufficient for durability.
func fdatasync(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err == nil {
			return nil
		}
		if err != syscall.EINTR {
			return &os.PathError{Op: "fdatasync", Path: f.Name(), Err: err}
		}
	}
}

// preallocate reserves size bytes of backing store for f so later writes
// within the extent never allocate (and never extend file metadata inside
// the commit fsync). Filesystems without fallocate support fall back to
// Truncate, which still fixes the file size even if blocks stay sparse.
func preallocate(f *os.File, size int64) error {
	for {
		err := syscall.Fallocate(int(f.Fd()), 0, 0, size)
		switch {
		case err == nil:
			return nil
		case err == syscall.EINTR:
			continue
		case errors.Is(err, syscall.EOPNOTSUPP) || errors.Is(err, syscall.ENOSYS):
			return f.Truncate(size)
		default:
			return &os.PathError{Op: "fallocate", Path: f.Name(), Err: err}
		}
	}
}

// ignorableSyncErr reports whether a directory-fsync failure means "this
// filesystem cannot sync directories" (tolerable: the rename/create is
// still ordered by the filesystem's own journal) rather than a real I/O
// failure that must propagate. ENOTSUP/EINVAL/ENOSYS are what virtiofs,
// some FUSE filesystems, and pre-fsync network mounts return for
// directory fds.
func ignorableSyncErr(err error) bool {
	return errors.Is(err, syscall.EINVAL) ||
		errors.Is(err, syscall.ENOTSUP) ||
		errors.Is(err, syscall.ENOSYS)
}
