package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Dir is the file-backed Store: one directory per cluster under a root,
// holding
//
//	<root>/<id>/spec.json          immutable creation record
//	<root>/<id>/snapshot-<g>.json  compaction snapshot of generation g
//	<root>/<id>/wal-<g>.log        JSON-line WAL appended since snapshot g
//
// Durability discipline: spec and snapshot files are written to a .tmp
// sibling, fsync'd, renamed into place, and the directory fsync'd — a
// reader never observes a partial file. WAL appends write whole records
// ending in '\n' and fsync once per AppendEvents call, so an acknowledged
// append survives SIGKILL; a torn final record (crash mid-write) is
// detected by JSON validity and dropped on Load.
//
// Snapshots advance a generation counter instead of truncating in place:
// the new empty wal-<g+1>.log is created first, then snapshot-<g+1>.json
// is renamed into existence (the commit point), then the old generation's
// files are deleted best-effort. A crash anywhere leaves either the old
// generation fully intact (commit rename never happened) or the new one
// complete — Load always picks the highest generation with a committed
// snapshot, so a stale WAL can never be replayed onto a newer snapshot.
type Dir struct {
	root string
	opts DirOptions

	mu   sync.Mutex
	wals map[string]*dirWal // open appenders, keyed by cluster id (per-call mode)

	group *groupWAL // non-nil iff opts.GroupCommit; see group.go

	fsyncs  atomic.Int64
	flushes atomic.Int64
	records atomic.Int64
}

type dirWal struct {
	f   *os.File
	gen int
}

// NewDir opens (creating if needed) a file store rooted at dir with the
// historical one-fsync-per-append write path.
func NewDir(dir string) (*Dir, error) { return NewDirWith(dir, DirOptions{}) }

// NewDirWith opens a file store with explicit options. Switching
// GroupCommit between opens is safe in both directions: group mode reads
// per-cluster WALs left by a per-call store as a frozen prefix, and a
// per-call open folds any leftover segment log back into per-cluster
// WALs via a crash-idempotent migration before serving.
func NewDirWith(dir string, opts DirOptions) (*Dir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = DefaultMaxBatchBytes
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := finishSegmentMigration(dir); err != nil {
		return nil, err
	}
	s := &Dir{root: dir, opts: opts, wals: make(map[string]*dirWal)}
	if opts.GroupCommit {
		g, err := openGroup(s)
		if err != nil {
			return nil, err
		}
		s.group = g
	} else if _, err := os.Stat(filepath.Join(dir, groupDirName)); err == nil {
		if err := migrateSegments(dir); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// GroupCommit reports whether this store batches appends into shared
// group commits.
func (s *Dir) GroupCommit() bool { return s.group != nil }

// WALStats returns cumulative WAL write counters. Both modes count, so
// grouped and per-call stores are directly comparable.
func (s *Dir) WALStats() WALStats {
	return WALStats{Fsyncs: s.fsyncs.Load(), Flushes: s.flushes.Load(), Records: s.records.Load()}
}

// Root returns the directory the store persists under.
func (s *Dir) Root() string { return s.root }

func (s *Dir) dir(id string) string { return filepath.Join(s.root, id) }

func snapName(gen int) string { return fmt.Sprintf("snapshot-%d.json", gen) }
func walName(gen int) string  { return fmt.Sprintf("wal-%d.log", gen) }

// writeFileAtomic writes data to path via tmp-write, fsync, rename,
// directory fsync — the rename is the commit point.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// AtomicWrite durably writes data to path with the same tmp-write,
// fsync, rename, directory-fsync discipline the store's own spec and
// snapshot files use. The replication plane persists its epoch and
// applied-sequence markers with it.
func AtomicWrite(path string, data []byte) error { return writeFileAtomic(path, data) }

// syncDir fsyncs a directory so a just-committed rename or create survives
// power loss. Filesystems that cannot sync directories at all
// (ENOTSUP/EINVAL from virtiofs, FUSE, and friends) are tolerated — the
// rename is still ordered by their own journal — but a real I/O failure
// propagates: swallowing it would acknowledge a commit the disk may not
// hold.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Sync(); err != nil && !ignorableSyncErr(err) {
		return fmt.Errorf("store: syncing directory %s: %w", dir, err)
	}
	return nil
}

// curGen returns the cluster's live generation: the highest g with a
// committed snapshot-<g>.json, or 0 when no snapshot was ever taken.
func curGen(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	gen := 0
	for _, e := range entries {
		var g int
		if _, err := fmt.Sscanf(e.Name(), "snapshot-%d.json", &g); err == nil &&
			e.Name() == snapName(g) && g > gen {
			gen = g
		}
	}
	return gen, nil
}

// Put records a new cluster: its directory, spec, and empty generation-0
// WAL, all durably on disk before returning.
func (s *Dir) Put(id string, spec []byte) error {
	if err := validID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.dir(id)
	if _, err := os.Stat(filepath.Join(dir, "spec.json")); err == nil {
		return fmt.Errorf("store: cluster %q already exists", id)
	}
	// A directory without a committed spec is a torn Put from a dead
	// process: that create was never acknowledged (and Load skips it),
	// so the id is free to reclaim — without this, the orphan would make
	// the id unusable forever once the restarted registry re-mints it.
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("store: reclaiming torn cluster dir %q: %w", id, err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, "spec.json"), spec); err != nil {
		return fmt.Errorf("store: writing spec for %q: %w", id, err)
	}
	f, err := os.OpenFile(filepath.Join(dir, walName(0)), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating wal for %q: %w", id, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if s.group != nil {
		// Group mode appends to shared segments, not this file; it exists
		// so the on-disk layout (and a later mode switch) stays uniform.
		f.Close()
	} else {
		s.wals[id] = &dirWal{f: f, gen: 0}
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := syncDir(s.root); err != nil {
		return err
	}
	if s.group != nil {
		s.group.created(id)
	}
	return nil
}

// wal returns the open appender for id's current generation, opening it
// lazily (after Load, or after a write error evicted the cached handle).
// Reopening first truncates any torn tail — bytes after the last
// newline, left by a crashed process or a failed write — so a new append
// never lands mid-garbage and corrupts the log for every future Load.
// The truncated bytes were never acknowledged: AppendEvents only returns
// success after the records AND their newlines are written and fsync'd,
// and readWAL applies the same records-end-at-the-last-newline rule.
func (s *Dir) wal(id string) (*dirWal, error) {
	if w, ok := s.wals[id]; ok {
		return w, nil
	}
	dir := s.dir(id)
	if _, err := os.Stat(filepath.Join(dir, "spec.json")); err != nil {
		return nil, fmt.Errorf("store: no cluster %q", id)
	}
	gen, err := curGen(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, walName(gen))
	if err := truncateTornTail(path); err != nil {
		return nil, fmt.Errorf("store: repairing WAL of %q: %w", id, err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	w := &dirWal{f: f, gen: gen}
	s.wals[id] = w
	return w, nil
}

// truncateTornTail cuts a WAL back to its last complete record,
// mirroring exactly what readWAL would keep: bytes after the last '\n'
// go, and so does at most one trailing newline-terminated record that
// fails JSON validation (a torn sector that still got its newline).
// The two MUST agree — if repair kept a line Load drops, the next append
// would land after garbage and turn a tolerated tail into hard mid-file
// corruption. A missing file needs no repair.
func truncateTornTail(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	keep := 0
	if i := bytes.LastIndexByte(data, '\n'); i >= 0 {
		keep = i + 1
	}
	dropped := false
	for keep > 0 {
		lineStart := bytes.LastIndexByte(data[:keep-1], '\n') + 1
		line := data[lineStart : keep-1]
		if len(bytes.TrimSpace(line)) == 0 {
			keep = lineStart // blank line: semantically nothing, safe to cut
			continue
		}
		if json.Valid(line) {
			break
		}
		if dropped {
			// Two invalid records cannot come from one crash; this is
			// real corruption. Refuse to append after it — readWAL will
			// refuse to load it, and the two must fail together, loudly.
			return fmt.Errorf("corrupt WAL record %q", line)
		}
		dropped = true
		keep = lineStart
	}
	if keep == len(data) {
		return nil
	}
	return os.Truncate(path, int64(keep))
}

// AppendEvents durably appends WAL records and returns once they are
// fsync'd. In group mode the call stages on the shared commit batcher
// and parks until its batch's single fsync covers it; per-call mode pays
// one write + one fsync here.
func (s *Dir) AppendEvents(id string, recs [][]byte) error {
	wait, err := s.StageEvents(id, recs, nil)
	if err != nil {
		return err
	}
	return wait()
}

func noopWait() error { return nil }

// StageEvents starts a durable append and returns a wait function that
// blocks until the records are fsync'd (group mode: until the staged
// batch commits). onCommit, when non-nil, runs after the fsync and
// before any of the batch's waiters wake, in stage order — the
// replication Tee publishes from it so followers never see unsynced
// records. Callers MUST invoke wait exactly once: the first stager of a
// batch is its elected flusher, and the flush runs inside its wait.
// Per-id callers are expected to serialize their own stages (sim holds
// the handle lock across StageEvents), which fixes the intra-cluster
// record order; cross-cluster stages need no ordering and coalesce
// freely.
func (s *Dir) StageEvents(id string, recs [][]byte, onCommit func()) (func() error, error) {
	if len(recs) == 0 {
		if onCommit != nil {
			onCommit()
		}
		return noopWait, nil
	}
	if s.group != nil {
		return s.group.stage(id, recs, onCommit)
	}
	if err := s.appendPerCall(id, recs); err != nil {
		return nil, err
	}
	if onCommit != nil {
		onCommit()
	}
	return noopWait, nil
}

// appendPerCall is the historical write path: one buffered write, one
// fsync, under the store lock.
func (s *Dir) appendPerCall(id string, recs [][]byte) error {
	var buf bytes.Buffer
	for _, rec := range recs {
		if bytes.IndexByte(rec, '\n') >= 0 || !json.Valid(rec) {
			return fmt.Errorf("store: WAL record for %q is not single-line JSON", id)
		}
		buf.Write(rec)
		buf.WriteByte('\n')
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	w, err := s.wal(id)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(buf.Bytes()); err != nil {
		// The file position is now unknown; drop the handle so the next
		// append reopens at a clean offset.
		w.f.Close()
		delete(s.wals, id)
		return fmt.Errorf("store: appending WAL for %q: %w", id, err)
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		delete(s.wals, id)
		return fmt.Errorf("store: syncing WAL for %q: %w", id, err)
	}
	s.fsyncs.Add(1)
	s.flushes.Add(1)
	s.records.Add(int64(len(recs)))
	return nil
}

// Snapshot commits a new generation: fresh empty WAL first, then the
// snapshot rename as the commit point, then best-effort cleanup of the
// previous generation.
func (s *Dir) Snapshot(id string, snap []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.group != nil {
		return s.snapshotGrouped(id, snap)
	}
	w, err := s.wal(id)
	if err != nil {
		return err
	}
	dir := s.dir(id)
	next := w.gen + 1
	nf, err := os.OpenFile(filepath.Join(dir, walName(next)), os.O_WRONLY|os.O_CREATE|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating wal gen %d for %q: %w", next, id, err)
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, snapName(next)), snap); err != nil {
		nf.Close()
		return fmt.Errorf("store: writing snapshot for %q: %w", id, err)
	}
	// Committed: swap the appender and clean up the superseded generation.
	w.f.Close()
	os.Remove(filepath.Join(dir, walName(w.gen)))
	if w.gen > 0 {
		os.Remove(filepath.Join(dir, snapName(w.gen)))
	}
	s.wals[id] = &dirWal{f: nf, gen: next}
	return nil
}

// snapshotGrouped commits a new generation in group mode: the snapshot
// rename both supersedes this cluster's segment records (Load skips
// records whose generation is older than the committed snapshot's) and
// heals any append poison — the snapshot holds the full current state,
// so a failed batch's gap is gone. Superseded segments are collected.
func (s *Dir) snapshotGrouped(id string, snap []byte) error {
	gen, err := s.group.genOf(id)
	if err != nil {
		return err
	}
	dir := s.dir(id)
	next := gen + 1
	nf, err := os.OpenFile(filepath.Join(dir, walName(next)), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating wal gen %d for %q: %w", next, id, err)
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		return fmt.Errorf("store: %w", err)
	}
	nf.Close()
	if err := writeFileAtomic(filepath.Join(dir, snapName(next)), snap); err != nil {
		return fmt.Errorf("store: writing snapshot for %q: %w", id, err)
	}
	// Committed: retire the superseded generation's files.
	os.Remove(filepath.Join(dir, walName(gen)))
	if gen > 0 {
		os.Remove(filepath.Join(dir, snapName(gen)))
	}
	s.group.committed(id, next)
	s.group.gc()
	return nil
}

// Remove deletes all state for id; removing an unknown id is a no-op.
func (s *Dir) Remove(id string) error {
	if err := validID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if w, ok := s.wals[id]; ok {
		w.f.Close()
		delete(s.wals, id)
	}
	if err := os.RemoveAll(s.dir(id)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := syncDir(s.root); err != nil {
		return err
	}
	if s.group != nil {
		s.group.removed(id)
		s.group.gc()
	}
	return nil
}

// Load scans the root and returns every committed cluster, sorted by id.
// A directory without a committed spec (crash mid-Put) is skipped; a torn
// final WAL record is dropped; any other malformed state is an error.
func (s *Dir) Load() ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []Record
	gens := make(map[string]int)
	for _, e := range entries {
		if !e.IsDir() || validID(e.Name()) != nil {
			continue
		}
		id := e.Name()
		dir := s.dir(id)
		spec, err := os.ReadFile(filepath.Join(dir, "spec.json"))
		if err != nil {
			if os.IsNotExist(err) {
				continue // torn Put: the cluster was never acknowledged
			}
			return nil, fmt.Errorf("store: reading spec of %q: %w", id, err)
		}
		rec := Record{ID: id, Spec: spec}
		gen, err := curGen(dir)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if gen > 0 {
			snap, err := os.ReadFile(filepath.Join(dir, snapName(gen)))
			if err != nil {
				return nil, fmt.Errorf("store: reading snapshot of %q: %w", id, err)
			}
			rec.Snapshot = snap
		}
		wal, err := readWAL(filepath.Join(dir, walName(gen)))
		if err != nil {
			return nil, fmt.Errorf("store: reading WAL of %q: %w", id, err)
		}
		rec.WAL = wal
		gens[id] = gen
		out = append(out, rec)
	}
	if s.group != nil {
		// The per-cluster WAL is a frozen prefix in group mode (only a
		// pre-migration store wrote it); committed segment records of the
		// live generation replay after it, in commit order.
		byID := make(map[string]*Record, len(out))
		for i := range out {
			byID[out[i].ID] = &out[i]
		}
		if err := s.group.loadInto(byID, gens); err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// readWAL parses a JSON-line WAL. A record is complete only when its
// newline made it to disk (acknowledged appends always have it — the
// newline is in the same write, before the fsync), so bytes after the
// last '\n' are a torn tail and dropped — the same rule truncateTornTail
// repairs by. An invalid record is additionally tolerated as the final
// line (defense against a torn sector that still got its newline) and
// dropped; anywhere else it is corruption and an error. A missing file
// is an empty WAL (crash between wal-<g> creation and use).
func readWAL(path string) ([][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var recs [][]byte
	for len(data) > 0 {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			break // torn tail: its newline (and fsync) never completed
		}
		line := data[:i]
		data = data[i+1:]
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if !json.Valid(line) {
			if len(bytes.TrimSpace(data)) == 0 {
				break // torn final record
			}
			return nil, fmt.Errorf("corrupt WAL record %q", line)
		}
		recs = append(recs, append([]byte(nil), line...))
	}
	return recs, nil
}

// Close releases the open WAL appenders. Pending data is already fsync'd
// by every append, so Close is about file handles, not durability; the
// daemon itself never needs it (process exit closes everything), tests
// and embedders might.
func (s *Dir) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, w := range s.wals {
		w.f.Close()
		delete(s.wals, id)
	}
	if s.group != nil {
		s.group.close()
	}
	return nil
}
