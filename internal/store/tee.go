package store

import (
	"fmt"
	"sync"
)

// This file is the storage half of fusiond's replication plane: every
// durable mutation a leader applies — spec puts, fsync'd WAL appends,
// generation-numbered snapshots, removes — becomes an Op in a bounded
// in-memory Log, and a Tee is the Store wrapper that commits to an inner
// backend first and publishes the Op second. internal/repl ships the Ops
// to followers; each follower applies them to its own Dir and keeps a
// warm registry mirror so promotion replays nothing but the tail.
//
// Ordering contract: the inner store commits (including its fsync)
// before the Op is published, so a published Op always describes durable
// leader state. A crash between the two loses only the publication; the
// next leader incarnation opens a new epoch and followers full-sync,
// which re-reads the inner store and repairs the gap.

// OpKind names a replicated store mutation.
type OpKind string

const (
	OpPut      OpKind = "put"      // new cluster spec (Data)
	OpAppend   OpKind = "append"   // WAL records (Recs), PrevWAL = records already in the generation
	OpSnapshot OpKind = "snapshot" // compaction snapshot (Data), resets the WAL
	OpRemove   OpKind = "remove"   // cluster deleted
)

// Op is one replicated store mutation, totally ordered by Seq within a
// leader epoch. Tenant namespaces the cluster id: one Log carries every
// tenant of the daemon.
type Op struct {
	Seq    uint64 `json:"seq"`
	Tenant string `json:"tenant"`
	Kind   OpKind `json:"kind"`
	ID     string `json:"id"`
	// Data carries the spec (put) or snapshot (snapshot) bytes.
	Data []byte `json:"data,omitempty"`
	// Recs carries the appended WAL records (append), oldest first.
	Recs [][]byte `json:"recs,omitempty"`
	// PrevWAL is the number of WAL records the cluster's current
	// generation held before this append — the follower's idempotency
	// anchor: a resumed shipment whose records already landed (fully or
	// partially, a torn replica tail having been repaired) is applied
	// from exactly the missing suffix, never twice.
	PrevWAL int `json:"prevWal,omitempty"`
}

// DefaultLogRetain bounds how many Ops a Log keeps for catch-up; a
// follower further behind than this is repaired by full sync instead.
const DefaultLogRetain = 4096

// Log is the leader's bounded replication feed: Ops appended by Tees,
// pulled in order by the shipping client. It is purely in-memory — the
// durable truth stays in the inner stores — so a process restart starts
// a fresh Log under a new epoch and followers resynchronize.
type Log struct {
	epoch  uint64
	retain int

	mu   sync.Mutex
	ops  []Op // contiguous Seqs, oldest first, at most retain
	last uint64
	subs []chan struct{}
}

// NewLog returns an empty feed for the given leader epoch. retain <= 0
// means DefaultLogRetain.
func NewLog(epoch uint64, retain int) *Log {
	if retain <= 0 {
		retain = DefaultLogRetain
	}
	return &Log{epoch: epoch, retain: retain}
}

// Epoch returns the leader epoch the feed was opened under.
func (l *Log) Epoch() uint64 { return l.epoch }

// Seq returns the highest sequence number assigned so far (0 = none).
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

// Append assigns the next sequence number to op, retains it for
// catch-up, and wakes subscribers. It returns the assigned Seq.
func (l *Log) Append(op Op) uint64 {
	l.mu.Lock()
	l.last++
	op.Seq = l.last
	l.ops = append(l.ops, op)
	if over := len(l.ops) - l.retain; over > 0 {
		l.ops = append(l.ops[:0:0], l.ops[over:]...)
	}
	subs := l.subs
	l.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- struct{}{}:
		default: // subscriber already has a pending wake-up
		}
	}
	return op.Seq
}

// Since returns up to max Ops with Seq > after, oldest first. ok=false
// means the feed no longer retains after+1 — the caller is too far
// behind and must full-sync. max <= 0 means no batch bound.
func (l *Log) Since(after uint64, max int) (ops []Op, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after >= l.last {
		return nil, true
	}
	first := l.last - uint64(len(l.ops)) + 1
	if after+1 < first {
		return nil, false
	}
	tail := l.ops[after+1-first:]
	if max > 0 && len(tail) > max {
		tail = tail[:max]
	}
	return append([]Op(nil), tail...), true
}

// Subscribe returns a channel that receives (capacity-one, coalesced)
// wake-ups on every Append. Subscriptions are never removed; the Log's
// subscribers are the daemon's shipper goroutines, whose lifetime is the
// Log's own.
func (l *Log) Subscribe() <-chan struct{} {
	ch := make(chan struct{}, 1)
	l.mu.Lock()
	l.subs = append(l.subs, ch)
	l.mu.Unlock()
	return ch
}

// Backend is the store surface a Tee wraps — structurally identical to
// sim.Store, satisfied by *Mem and *Dir.
type Backend interface {
	Put(id string, spec []byte) error
	AppendEvents(id string, recs [][]byte) error
	Snapshot(id string, snap []byte) error
	Remove(id string) error
	Load() ([]Record, error)
}

// stager is the optional staged-append surface of a Backend (satisfied
// by *Dir). A Tee whose inner store implements it exposes the same
// surface, so group-commit batching reaches through replication.
type stager interface {
	StageEvents(id string, recs [][]byte, onCommit func()) (func() error, error)
}

// pendingOp is an append Op staged on the inner store but not yet
// fsync'd. Its commit callback publishes it — unless a Snapshot or
// Remove overtook the cluster first and cancelled it (the superseding
// Op carries the full state, and publishing the stale append afterwards
// would break the follower's PrevWAL anchoring).
type pendingOp struct {
	op        Op
	cancelled bool
}

// Tee is a Store that fans every successfully applied mutation out to a
// replication Log, tagged with a tenant name. It tracks each cluster's
// current WAL length so append Ops carry the PrevWAL anchor followers
// use for exactly-once resume; Load seeds that tracking from the inner
// store, so a Tee wrapped around existing state (the boot path) anchors
// correctly from the first post-boot append.
//
// A failed inner operation publishes nothing: the Log only ever carries
// mutations the leader holds durably.
type Tee struct {
	tenant string
	inner  Backend
	log    *Log

	mu      sync.Mutex
	walLen  map[string]int
	pending map[string][]*pendingOp // staged, unpublished appends per cluster, stage order
}

// NewTee wraps inner, publishing its mutations to log under the tenant
// label.
func NewTee(tenant string, inner Backend, log *Log) *Tee {
	return &Tee{tenant: tenant, inner: inner, log: log,
		walLen: make(map[string]int), pending: make(map[string][]*pendingOp)}
}

// SeedAnchors primes the per-cluster WAL anchors without re-reading the
// inner store — the promotion path, where the caller already holds each
// cluster's current WAL length from the mirror it is binding.
func (t *Tee) SeedAnchors(walLens map[string]int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, n := range walLens {
		t.walLen[id] = n
	}
}

// Put commits the spec to the inner store, then publishes it.
func (t *Tee) Put(id string, spec []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.inner.Put(id, spec); err != nil {
		return err
	}
	t.walLen[id] = 0
	t.log.Append(Op{Tenant: t.tenant, Kind: OpPut, ID: id, Data: spec})
	return nil
}

// AppendEvents commits the records, then publishes them anchored at the
// pre-append WAL length.
func (t *Tee) AppendEvents(id string, recs [][]byte) error {
	wait, err := t.StageEvents(id, recs, nil)
	if err != nil {
		return err
	}
	return wait()
}

// StageEvents forwards a staged append to the inner store, keeping the
// Tee's commit-first-publish-second contract per batch: the append Op is
// prepared here (anchored at the pre-append WAL length) but published
// from the inner store's commit callback, which fires only after the
// batch's fsync — the Log never carries records the disk does not hold.
// Callbacks fire in stage order within and across batches, so Ops stay
// anchored; a Snapshot or Remove that overtakes an in-flight append
// cancels its pending Op (see pendingOp).
//
// The Tee lock is NOT held across the inner call: a non-batching inner
// store runs onCommit synchronously (which re-enters the Tee), and a
// batching one must let the stager park without blocking other tenants'
// Ops. Per-cluster stage order is the caller's to keep, exactly as for
// Dir.StageEvents.
func (t *Tee) StageEvents(id string, recs [][]byte, onCommit func()) (func() error, error) {
	if len(recs) == 0 {
		if onCommit != nil {
			onCommit()
		}
		return noopWait, nil
	}
	st, staged := t.inner.(stager)
	t.mu.Lock()
	prev, tracked := t.walLen[id]
	if !tracked {
		t.mu.Unlock()
		// An append for a cluster this Tee never saw created or loaded
		// would publish an unanchorable Op; refuse loudly rather than
		// desynchronize every follower. (Unreachable through sim.Registry,
		// which always Puts or Loads before appending.)
		return nil, fmt.Errorf("store: tee append for untracked cluster %q", id)
	}
	if !staged {
		// Inner store without a staged path (e.g. *Mem): commit inline,
		// publish inline — the historical synchronous Tee behavior.
		if err := t.inner.AppendEvents(id, recs); err != nil {
			t.mu.Unlock()
			return nil, err
		}
		t.walLen[id] = prev + len(recs)
		t.log.Append(Op{Tenant: t.tenant, Kind: OpAppend, ID: id, Recs: recs, PrevWAL: prev})
		t.mu.Unlock()
		if onCommit != nil {
			onCommit()
		}
		return noopWait, nil
	}
	tok := &pendingOp{op: Op{Tenant: t.tenant, Kind: OpAppend, ID: id, Recs: recs, PrevWAL: prev}}
	t.pending[id] = append(t.pending[id], tok)
	t.walLen[id] = prev + len(recs)
	t.mu.Unlock()
	wait, err := st.StageEvents(id, recs, func() {
		t.commitStaged(id, tok)
		if onCommit != nil {
			onCommit()
		}
	})
	if err != nil {
		t.dropStaged(id, tok)
		return nil, err
	}
	return wait, nil
}

// commitStaged publishes a staged append whose fsync just completed,
// unless a superseding Op cancelled it.
func (t *Tee) commitStaged(id string, tok *pendingOp) {
	t.mu.Lock()
	defer t.mu.Unlock()
	list := t.pending[id]
	for i, p := range list {
		if p == tok {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(t.pending, id)
	} else {
		t.pending[id] = list
	}
	if !tok.cancelled {
		t.log.Append(tok.op)
	}
}

// dropStaged unwinds a stage the inner store refused: the Op was never
// published and the WAL anchor rolls back to its pre-stage value (per-id
// callers are serialized, so no later stage anchored on top of it).
func (t *Tee) dropStaged(id string, tok *pendingOp) {
	t.mu.Lock()
	defer t.mu.Unlock()
	list := t.pending[id]
	for i, p := range list {
		if p == tok {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(t.pending, id)
	} else {
		t.pending[id] = list
	}
	t.walLen[id] = tok.op.PrevWAL
}

// cancelStagedLocked voids the pending appends of a cluster a Snapshot
// or Remove just superseded: their records are already durable inside
// (or irrelevant to) the superseding Op, and publishing them after it
// would hand followers an append anchored into a WAL generation that no
// longer exists. Callers hold t.mu.
func (t *Tee) cancelStagedLocked(id string) {
	for _, p := range t.pending[id] {
		p.cancelled = true
	}
	delete(t.pending, id)
}

// Snapshot commits the compaction, then publishes it; the cluster's WAL
// anchor resets with the new generation.
func (t *Tee) Snapshot(id string, snap []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.inner.Snapshot(id, snap); err != nil {
		return err
	}
	t.cancelStagedLocked(id)
	t.walLen[id] = 0
	t.log.Append(Op{Tenant: t.tenant, Kind: OpSnapshot, ID: id, Data: snap})
	return nil
}

// Remove commits the deletion, then publishes it.
func (t *Tee) Remove(id string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.inner.Remove(id); err != nil {
		return err
	}
	t.cancelStagedLocked(id)
	delete(t.walLen, id)
	t.log.Append(Op{Tenant: t.tenant, Kind: OpRemove, ID: id})
	return nil
}

// Load delegates to the inner store and seeds the per-cluster WAL
// anchors from what it returns, so appends after a boot-time load carry
// correct PrevWAL values. Loads are not replicated — they mutate
// nothing.
func (t *Tee) Load() ([]Record, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	recs, err := t.inner.Load()
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		t.walLen[rec.ID] = len(rec.WAL)
	}
	return recs, nil
}
