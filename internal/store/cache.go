package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Cache namespace: a flat key→blob store riding in the same backends as
// the cluster records, used by internal/fcache to persist hot fusion
// results across restarts. Keys are content addresses (lowercase hex), so
// the namespace is deliberately tenant-free; on disk entries live under
// <root>/.fcache/ — a dot-prefixed directory that every cluster- and
// tenant-scanning path (Dir.Load, fusiond tenant recovery, the
// replication plane's tenant wipe) already skips by its leading-dot
// rule, so cache state and registry state can share one data dir without
// ever shadowing each other.

// cacheDirName is the on-disk cache namespace under a Dir's root.
const cacheDirName = ".fcache"

// validCacheKey vets a cache key: non-empty lowercase hex, bounded. The
// charset keeps keys filename-safe by construction (no dots, no
// separators), which is what lets PutCache join them into paths.
func validCacheKey(key string) error {
	if key == "" || len(key) > 128 {
		return fmt.Errorf("store: invalid cache key %q", key)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("store: invalid cache key %q: use lowercase hex", key)
		}
	}
	return nil
}

// --- Mem ------------------------------------------------------------------

func (s *Mem) cacheMap() map[string][]byte {
	if s.cache == nil {
		s.cache = make(map[string][]byte)
	}
	return s.cache
}

// PutCache stores (or overwrites) one cache entry.
func (s *Mem) PutCache(key string, data []byte) error {
	if err := validCacheKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cacheMap()[key] = append([]byte(nil), data...)
	return nil
}

// RemoveCache drops one cache entry; removing an unknown key is a no-op.
func (s *Mem) RemoveCache(key string) error {
	if err := validCacheKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.cacheMap(), key)
	return nil
}

// LoadCache returns every cache entry by key.
func (s *Mem) LoadCache() (map[string][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]byte)
	for k, v := range s.cacheMap() {
		out[k] = append([]byte(nil), v...)
	}
	return out, nil
}

// --- Dir ------------------------------------------------------------------

func (s *Dir) cacheDir() string { return filepath.Join(s.root, cacheDirName) }

// PutCache persists one cache entry at <root>/.fcache/<key>.json with the
// same atomic-rename + fsync discipline as snapshots: a crash leaves
// either the previous entry or the new one, never a torn file (a stray
// *.tmp from a crashed rename is ignored by LoadCache).
func (s *Dir) PutCache(key string, data []byte) error {
	if err := validCacheKey(key); err != nil {
		return err
	}
	dir := s.cacheDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: cache dir: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, key+".json"), data); err != nil {
		return fmt.Errorf("store: cache entry %s: %w", key, err)
	}
	return nil
}

// RemoveCache drops one persisted entry; removing an unknown key is a
// no-op (eviction races a restart harmlessly).
func (s *Dir) RemoveCache(key string) error {
	if err := validCacheKey(key); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(s.cacheDir(), key+".json")); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: cache entry %s: %w", key, err)
	}
	return nil
}

// LoadCache reads every persisted cache entry. It is shaped for boot: a
// missing namespace is an empty cache, anything that is not a committed
// <hexkey>.json (tmp files from a crashed rename, foreign droppings) is
// skipped, and an unreadable entry is dropped rather than fatal — the
// caller verifies content digests anyway and a lost entry only costs one
// recomputation.
func (s *Dir) LoadCache() (map[string][]byte, error) {
	entries, err := os.ReadDir(s.cacheDir())
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: cache dir: %w", err)
	}
	out := make(map[string][]byte, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		key, ok := strings.CutSuffix(e.Name(), ".json")
		if !ok || validCacheKey(key) != nil {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.cacheDir(), e.Name()))
		if err != nil {
			continue
		}
		out[key] = data
	}
	return out, nil
}
