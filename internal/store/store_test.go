package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// backend abstracts the common surface so both implementations run the
// same contract suite.
type backend interface {
	Put(id string, spec []byte) error
	AppendEvents(id string, recs [][]byte) error
	Snapshot(id string, snap []byte) error
	Remove(id string) error
	Load() ([]Record, error)
}

func backends(t *testing.T) map[string]func() backend {
	return map[string]func() backend{
		"mem": func() backend { return NewMem() },
		"dir": func() backend {
			d, err := NewDir(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"group": func() backend {
			d, err := NewDirWith(t.TempDir(), DirOptions{GroupCommit: true})
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
	}
}

func rec(s string) []byte { return []byte(fmt.Sprintf("{%q:%q}", "op", s)) }

func TestBackendContract(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()

			// Empty store loads empty.
			if recs, err := s.Load(); err != nil || len(recs) != 0 {
				t.Fatalf("empty Load = %v, %v", recs, err)
			}

			if err := s.Put("c1", []byte(`{"f":1}`)); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("c1", []byte(`{"f":2}`)); err == nil {
				t.Fatal("double Put accepted")
			}
			if err := s.Put("../evil", []byte(`{}`)); err == nil {
				t.Fatal("path-traversal id accepted")
			}
			if err := s.AppendEvents("ghost", [][]byte{rec("a")}); err == nil {
				t.Fatal("append to unknown cluster accepted")
			}

			if err := s.AppendEvents("c1", [][]byte{rec("a"), rec("b")}); err != nil {
				t.Fatal(err)
			}
			if err := s.AppendEvents("c1", [][]byte{rec("c")}); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("c2", []byte(`{"f":9}`)); err != nil {
				t.Fatal(err)
			}
			recs, err := s.Load()
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 2 || recs[0].ID != "c1" || recs[1].ID != "c2" {
				t.Fatalf("Load ids = %v", recs)
			}
			if !bytes.Equal(recs[0].Spec, []byte(`{"f":1}`)) {
				t.Fatalf("spec = %s", recs[0].Spec)
			}
			if recs[0].Snapshot != nil {
				t.Fatal("snapshot before any Snapshot call")
			}
			if len(recs[0].WAL) != 3 || !bytes.Equal(recs[0].WAL[2], rec("c")) {
				t.Fatalf("WAL = %q", recs[0].WAL)
			}

			// Snapshot compacts: WAL resets, later appends start fresh.
			if err := s.Snapshot("c1", []byte(`{"snap":1}`)); err != nil {
				t.Fatal(err)
			}
			if err := s.AppendEvents("c1", [][]byte{rec("d")}); err != nil {
				t.Fatal(err)
			}
			recs, err = s.Load()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(recs[0].Snapshot, []byte(`{"snap":1}`)) {
				t.Fatalf("snapshot = %s", recs[0].Snapshot)
			}
			if len(recs[0].WAL) != 1 || !bytes.Equal(recs[0].WAL[0], rec("d")) {
				t.Fatalf("WAL after snapshot = %q", recs[0].WAL)
			}

			// A second snapshot supersedes the first.
			if err := s.Snapshot("c1", []byte(`{"snap":2}`)); err != nil {
				t.Fatal(err)
			}
			recs, _ = s.Load()
			if !bytes.Equal(recs[0].Snapshot, []byte(`{"snap":2}`)) || len(recs[0].WAL) != 0 {
				t.Fatalf("after second snapshot: %s / %q", recs[0].Snapshot, recs[0].WAL)
			}

			// Remove forgets everything; removing again is a no-op.
			if err := s.Remove("c1"); err != nil {
				t.Fatal(err)
			}
			if err := s.Remove("c1"); err != nil {
				t.Fatalf("second Remove: %v", err)
			}
			recs, _ = s.Load()
			if len(recs) != 1 || recs[0].ID != "c2" {
				t.Fatalf("after Remove: %v", recs)
			}
		})
	}
}

// TestDirSurvivesReopen: a fresh Dir over the same root sees everything a
// previous instance persisted — the restart path.
func TestDirSurvivesReopen(t *testing.T) {
	root := t.TempDir()
	d1, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Put("c1", []byte(`{"f":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := d1.AppendEvents("c1", [][]byte{rec("a")}); err != nil {
		t.Fatal(err)
	}
	if err := d1.Snapshot("c1", []byte(`{"snap":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := d1.AppendEvents("c1", [][]byte{rec("b")}); err != nil {
		t.Fatal(err)
	}
	// No Close: the dead process didn't close anything either.

	d2, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := d2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !bytes.Equal(recs[0].Snapshot, []byte(`{"snap":1}`)) ||
		len(recs[0].WAL) != 1 || !bytes.Equal(recs[0].WAL[0], rec("b")) {
		t.Fatalf("reopened state: %+v", recs)
	}
	// The reopened store appends to the right generation.
	if err := d2.AppendEvents("c1", [][]byte{rec("c")}); err != nil {
		t.Fatal(err)
	}
	recs, _ = d2.Load()
	if len(recs[0].WAL) != 2 {
		t.Fatalf("WAL after reopen+append = %q", recs[0].WAL)
	}
}

// TestDirTornTail: a crash mid-append leaves a torn final record, which
// Load drops; torn bytes anywhere else are corruption and an error.
func TestDirTornTail(t *testing.T) {
	root := t.TempDir()
	d, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("c1", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendEvents("c1", [][]byte{rec("a"), rec("b")}); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(root, "c1", "wal-0.log")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"tor`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs[0].WAL) != 2 {
		t.Fatalf("torn tail not dropped: %q", recs[0].WAL)
	}

	// Same torn bytes followed by a valid record: corruption, not a tail.
	f, _ = os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	f.WriteString("\n" + string(rec("c")) + "\n")
	f.Close()
	if _, err := d.Load(); err == nil {
		t.Fatal("mid-file corruption not reported")
	}
}

// TestDirAppendAfterTornTail: a reopened WAL is repaired (torn bytes
// truncated) before new appends, so a failed write followed by a
// successful one never leaves invalid JSON mid-file — which would make
// every future Load fail.
func TestDirAppendAfterTornTail(t *testing.T) {
	root := t.TempDir()
	d1, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Put("c1", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := d1.AppendEvents("c1", [][]byte{rec("a")}); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(root, "c1", "wal-0.log")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"tor`) // torn write, no newline, never acknowledged
	f.Close()

	// A fresh store (fresh handle → lazy reopen) appends cleanly.
	d2, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.AppendEvents("c1", [][]byte{rec("b")}); err != nil {
		t.Fatal(err)
	}
	recs, err := d2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs[0].WAL) != 2 || !bytes.Equal(recs[0].WAL[0], rec("a")) || !bytes.Equal(recs[0].WAL[1], rec("b")) {
		t.Fatalf("WAL after torn-tail repair = %q", recs[0].WAL)
	}

	// A torn sector that still got its newline: Load tolerates it as the
	// final record and drops it, so reopen-repair must drop it too —
	// otherwise the next append would turn it into mid-file corruption.
	f, err = os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{\"op\":\"gar\x00bage\n")
	f.Close()
	d3, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := d3.AppendEvents("c1", [][]byte{rec("c")}); err != nil {
		t.Fatal(err)
	}
	recs, err = d3.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs[0].WAL) != 3 || !bytes.Equal(recs[0].WAL[2], rec("c")) {
		t.Fatalf("WAL after newline-terminated garbage repair = %q", recs[0].WAL)
	}
}

// TestDirPutReclaimsTornDir: a cluster directory without a committed
// spec (crash mid-Put) does not block the id from being minted again.
func TestDirPutReclaimsTornDir(t *testing.T) {
	root := t.TempDir()
	d, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "c1"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "c1", "spec.json.tmp"), []byte(`{`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("c1", []byte(`{"f":1}`)); err != nil {
		t.Fatalf("Put over torn dir: %v", err)
	}
	recs, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !bytes.Equal(recs[0].Spec, []byte(`{"f":1}`)) {
		t.Fatalf("reclaimed Put not loaded: %+v", recs)
	}
}

// TestDirSnapshotCrashWindows: the generation scheme keeps either the
// old state or the new one, never a mix.
func TestDirSnapshotCrashWindows(t *testing.T) {
	root := t.TempDir()
	d, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("c1", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendEvents("c1", [][]byte{rec("a")}); err != nil {
		t.Fatal(err)
	}

	// Crash after the next generation's WAL was created but before the
	// snapshot rename committed: the old snapshot+WAL must win.
	dir := filepath.Join(root, "c1")
	if err := os.WriteFile(filepath.Join(dir, "wal-1.log"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snapshot-1.json.tmp"), []byte(`{"snap":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Snapshot != nil || len(recs[0].WAL) != 1 {
		t.Fatalf("uncommitted snapshot visible: %+v", recs[0])
	}

	// Commit point: once snapshot-1.json exists, the new generation wins
	// even though the old WAL still lingers on disk.
	if err := os.Rename(filepath.Join(dir, "snapshot-1.json.tmp"), filepath.Join(dir, "snapshot-1.json")); err != nil {
		t.Fatal(err)
	}
	recs, err = d.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recs[0].Snapshot, []byte(`{"snap":1}`)) || len(recs[0].WAL) != 0 {
		t.Fatalf("committed snapshot not picked: %+v", recs[0])
	}
}

// TestDirSkipsTornPut: a cluster directory without a committed spec (the
// process died inside Put) is not a cluster.
func TestDirSkipsTornPut(t *testing.T) {
	root := t.TempDir()
	d, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "c7"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "c7", "spec.json.tmp"), []byte(`{`), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("torn Put loaded: %+v", recs)
	}
}
