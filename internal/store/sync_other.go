//go:build !linux

package store

import (
	"errors"
	"os"
	"syscall"
)

// fdatasync falls back to a full fsync on platforms without a distinct
// data-only sync syscall exposed through the stdlib.
func fdatasync(f *os.File) error { return f.Sync() }

// preallocate fixes the file size via Truncate; without fallocate the
// blocks may stay sparse, which still keeps append offsets stable.
func preallocate(f *os.File, size int64) error { return f.Truncate(size) }

// ignorableSyncErr reports whether a directory-fsync failure means the
// filesystem cannot sync directories (tolerable) rather than real I/O
// trouble.
func ignorableSyncErr(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)
}
