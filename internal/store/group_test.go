package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func newGroupDir(t *testing.T, opts DirOptions) (*Dir, string) {
	t.Helper()
	opts.GroupCommit = true
	dir := t.TempDir()
	d, err := NewDirWith(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d, dir
}

// TestGroupStageCoalesces: stages parked before the first wait ride one
// batch — one flush, one fsync — because the elected leader only flushes
// inside its wait. This is the deterministic version of what concurrency
// produces probabilistically.
func TestGroupStageCoalesces(t *testing.T) {
	var flushes []FlushStats
	var mu sync.Mutex
	d, _ := newGroupDir(t, DirOptions{OnFlush: func(fs FlushStats) {
		mu.Lock()
		flushes = append(flushes, fs)
		mu.Unlock()
	}})
	const clusters, perCluster = 4, 8
	for c := 0; c < clusters; c++ {
		if err := d.Put(fmt.Sprintf("c%d", c+1), []byte(`{"f":1}`)); err != nil {
			t.Fatal(err)
		}
	}
	base := d.WALStats()
	var waits []func() error
	for i := 0; i < clusters*perCluster; i++ {
		id := fmt.Sprintf("c%d", i%clusters+1)
		w, err := d.StageEvents(id, [][]byte{rec(fmt.Sprintf("e%d", i))}, nil)
		if err != nil {
			t.Fatal(err)
		}
		waits = append(waits, w)
	}
	for _, w := range waits {
		if err := w(); err != nil {
			t.Fatal(err)
		}
	}
	st := d.WALStats()
	if got := st.Flushes - base.Flushes; got != 1 {
		t.Fatalf("32 staged appends took %d flushes, want 1", got)
	}
	if got := st.Records - base.Records; got != clusters*perCluster {
		t.Fatalf("records = %d, want %d", got, clusters*perCluster)
	}
	// One fdatasync for the batch plus one full fsync for the segment
	// preallocation.
	if got := st.Fsyncs - base.Fsyncs; got != 2 {
		t.Fatalf("fsyncs = %d, want 2 (batch + preallocation)", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(flushes) != 1 || flushes[0].Appends != clusters*perCluster {
		t.Fatalf("OnFlush saw %+v, want one flush of %d appends", flushes, clusters*perCluster)
	}
	recs, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if len(r.WAL) != perCluster {
			t.Fatalf("cluster %s replays %d records, want %d", r.ID, len(r.WAL), perCluster)
		}
	}
}

// TestGroupReopen: a reopened group store replays exactly the committed
// records, across snapshots (generation supersession) and both mode
// switches — group → per-call runs the segment-fold migration, per-call
// → group treats the per-cluster WAL as a frozen prefix.
func TestGroupReopen(t *testing.T) {
	dir := t.TempDir()
	open := func(group bool) *Dir {
		t.Helper()
		d, err := NewDirWith(dir, DirOptions{GroupCommit: group})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	wal := func(d *Dir, id string) []string {
		t.Helper()
		recs, err := d.Load()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if r.ID == id {
				var out []string
				for _, w := range r.WAL {
					out = append(out, string(w))
				}
				return out
			}
		}
		t.Fatalf("cluster %s missing from Load", id)
		return nil
	}

	d := open(true)
	if err := d.Put("c1", []byte(`{"f":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("c2", []byte(`{"f":1}`)); err != nil {
		t.Fatal(err)
	}
	for _, e := range []string{"a", "b"} {
		if err := d.AppendEvents("c1", [][]byte{rec(e)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AppendEvents("c2", [][]byte{rec("x")}); err != nil {
		t.Fatal(err)
	}
	// Snapshot c2: its segment records are superseded and must not
	// replay on any future open, in either mode.
	if err := d.Snapshot("c2", []byte(`{"snap":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendEvents("c2", [][]byte{rec("y")}); err != nil {
		t.Fatal(err)
	}
	d.Close()

	d = open(true) // group → group
	if got := wal(d, "c1"); !strEq(got, []string{string(rec("a")), string(rec("b"))}) {
		t.Fatalf("c1 after group reopen: %v", got)
	}
	if got := wal(d, "c2"); !strEq(got, []string{string(rec("y"))}) {
		t.Fatalf("c2 after group reopen (snapshot must supersede): %v", got)
	}
	if err := d.AppendEvents("c1", [][]byte{rec("c")}); err != nil {
		t.Fatal(err)
	}
	d.Close()

	d = open(false) // group → per-call: migration folds segments back
	if _, err := os.Stat(filepath.Join(dir, groupDirName)); !os.IsNotExist(err) {
		t.Fatalf("segment dir survived migration: err=%v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, migrateDirName)); !os.IsNotExist(err) {
		t.Fatalf("migration dir left behind: err=%v", err)
	}
	if got := wal(d, "c1"); !strEq(got, []string{string(rec("a")), string(rec("b")), string(rec("c"))}) {
		t.Fatalf("c1 after migration: %v", got)
	}
	if err := d.AppendEvents("c1", [][]byte{rec("d")}); err != nil {
		t.Fatal(err)
	}
	d.Close()

	d = open(true) // per-call → group: WAL file is a frozen prefix
	want := []string{string(rec("a")), string(rec("b")), string(rec("c")), string(rec("d"))}
	if got := wal(d, "c1"); !strEq(got, want) {
		t.Fatalf("c1 after re-grouping: %v", got)
	}
	if err := d.AppendEvents("c1", [][]byte{rec("e")}); err != nil {
		t.Fatal(err)
	}
	if got := wal(d, "c1"); !strEq(got, append(want[:4:4], string(rec("e")))) {
		t.Fatalf("c1 prefix+segment: %v", got)
	}
	d.Close()
}

func strEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGroupSegmentTornTail: a crash leaves segment tails in exactly two
// tolerable shapes — bytes with no newline, or one newline-terminated
// unparsable line followed by nothing but preallocation zeros — and one
// intolerable one: garbage with live data after it.
func TestGroupSegmentTornTail(t *testing.T) {
	mk := func(t *testing.T) (string, string) {
		dir := t.TempDir()
		d, err := NewDirWith(dir, DirOptions{GroupCommit: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Put("c1", []byte(`{"f":1}`)); err != nil {
			t.Fatal(err)
		}
		if err := d.AppendEvents("c1", [][]byte{rec("a"), rec("b")}); err != nil {
			t.Fatal(err)
		}
		d.Close()
		return dir, filepath.Join(dir, groupDirName, segName(0))
	}
	load := func(t *testing.T, dir string) ([]Record, error) {
		d, err := NewDirWith(dir, DirOptions{GroupCommit: true})
		if err != nil {
			return nil, err
		}
		defer d.Close()
		return d.Load()
	}
	append_ := func(t *testing.T, path string, b []byte) {
		t.Helper()
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(b); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	t.Run("no-newline", func(t *testing.T) {
		dir, seg := mk(t)
		append_(t, seg, []byte(`{"c":"c1","g":0,"r":{"op":"to`))
		recs, err := load(t, dir)
		if err != nil || len(recs) != 1 || len(recs[0].WAL) != 2 {
			t.Fatalf("torn no-newline tail: recs=%v err=%v", recs, err)
		}
	})
	t.Run("invalid-line-then-zeros", func(t *testing.T) {
		dir, seg := mk(t)
		append_(t, seg, append([]byte("garbage-sector\n"), make([]byte, 64)...))
		recs, err := load(t, dir)
		if err != nil || len(recs) != 1 || len(recs[0].WAL) != 2 {
			t.Fatalf("torn invalid final line: recs=%v err=%v", recs, err)
		}
	})
	t.Run("garbage-mid-file", func(t *testing.T) {
		dir, seg := mk(t)
		bad := []byte("garbage\n")
		bad = append(bad, []byte(`{"c":"c1","g":0,"r":{"op":"z"}}`)...)
		bad = append(bad, '\n')
		append_(t, seg, bad)
		if _, err := load(t, dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
			t.Fatalf("mid-file garbage tolerated: err=%v", err)
		}
	})
}

// TestGroupPoisonHealsOnSnapshot: a failed batch poisons its clusters —
// further appends are refused, because the handle-level dirty flag is
// set without the handle lock held and a racing append could otherwise
// land beyond the gap — and a successful snapshot (full current state)
// heals.
func TestGroupPoisonHealsOnSnapshot(t *testing.T) {
	d, _ := newGroupDir(t, DirOptions{})
	if err := d.Put("c1", []byte(`{"f":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendEvents("c1", [][]byte{rec("a")}); err != nil {
		t.Fatal(err)
	}
	// Sabotage the active segment's fd so the next flush's write fails.
	d.group.mu.Lock()
	d.group.seg.f.Close()
	d.group.mu.Unlock()
	if err := d.AppendEvents("c1", [][]byte{rec("b")}); err == nil {
		t.Fatal("append over a closed segment fd succeeded")
	}
	if err := d.AppendEvents("c1", [][]byte{rec("c")}); err == nil ||
		!strings.Contains(err.Error(), "unhealed") {
		t.Fatalf("poisoned cluster accepted an append: err=%v", err)
	}
	if err := d.Snapshot("c1", []byte(`{"snap":1}`)); err != nil {
		t.Fatalf("healing snapshot: %v", err)
	}
	if err := d.AppendEvents("c1", [][]byte{rec("d")}); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	recs, err := d.Load()
	if err != nil || len(recs) != 1 {
		t.Fatalf("Load = %v, %v", recs, err)
	}
	if len(recs[0].WAL) != 1 || string(recs[0].WAL[0]) != string(rec("d")) {
		t.Fatalf("post-heal WAL = %q", recs[0].WAL)
	}
}

// TestGroupSegmentGC: a snapshot that supersedes every record in a
// sealed segment deletes it; the active segment is never collected.
func TestGroupSegmentGC(t *testing.T) {
	// SegmentBytes 1: every batch overflows, so each flush rolls into its
	// own exactly-sized segment and the previous one seals immediately.
	d, dir := newGroupDir(t, DirOptions{SegmentBytes: 1})
	if err := d.Put("c1", []byte(`{"f":1}`)); err != nil {
		t.Fatal(err)
	}
	for _, e := range []string{"a", "b", "c"} {
		if err := d.AppendEvents("c1", [][]byte{rec(e)}); err != nil {
			t.Fatal(err)
		}
	}
	segs := func() []string {
		t.Helper()
		ents, err := os.ReadDir(filepath.Join(dir, groupDirName))
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, e := range ents {
			out = append(out, e.Name())
		}
		return out
	}
	if got := segs(); len(got) != 3 {
		t.Fatalf("segments before snapshot: %v, want 3", got)
	}
	if err := d.Snapshot("c1", []byte(`{"snap":1}`)); err != nil {
		t.Fatal(err)
	}
	// Both sealed segments held only c1 generation-0 records; the
	// snapshot moved c1 to generation 1, so they are garbage. The active
	// one stays (it is still the append target).
	if got := segs(); len(got) != 1 || got[0] != segName(2) {
		t.Fatalf("segments after snapshot: %v, want [%s]", got, segName(2))
	}
	if err := d.AppendEvents("c1", [][]byte{rec("d")}); err != nil {
		t.Fatal(err)
	}
	recs, err := d.Load()
	if err != nil || len(recs) != 1 || len(recs[0].WAL) != 1 {
		t.Fatalf("post-GC Load = %+v, %v", recs, err)
	}
}

// TestSyncDirErrors pins the satellite fix: directory-fsync failures are
// split into "this filesystem cannot sync directories" (tolerated — the
// historical behavior, and what virtiofs/FUSE return) and real I/O
// errors (propagated: swallowing one acknowledges a commit the disk may
// not hold).
func TestSyncDirErrors(t *testing.T) {
	if err := syncDir(t.TempDir()); err != nil {
		t.Fatalf("syncDir on a healthy directory: %v", err)
	}
	for _, tc := range []struct {
		err       error
		ignorable bool
	}{
		{syscall.EINVAL, true},
		{syscall.ENOTSUP, true},
		{&os.PathError{Op: "fsync", Path: "x", Err: syscall.EINVAL}, true},
		{syscall.EIO, false},
		{syscall.EBADF, false},
		{&os.PathError{Op: "fsync", Path: "x", Err: syscall.EIO}, false},
	} {
		if got := ignorableSyncErr(tc.err); got != tc.ignorable {
			t.Errorf("ignorableSyncErr(%v) = %v, want %v", tc.err, got, tc.ignorable)
		}
	}
}

// --- crash window ----------------------------------------------------------

const crashDirEnv = "STORE_GROUP_CRASH_DIR"

// TestGroupCrashChild is the subprocess body of TestGroupCrashRecovery:
// it floods a group store from concurrent writers, printing "ack <id>
// <n>" only after AppendEvents returns (i.e. after the record's batch
// fsync), until the parent kills it with SIGKILL. It is a no-op when run
// as part of the normal suite.
func TestGroupCrashChild(t *testing.T) {
	dir := os.Getenv(crashDirEnv)
	if dir == "" {
		t.Skip("crash-child helper; driven by TestGroupCrashRecovery")
	}
	d, err := NewDirWith(dir, DirOptions{GroupCommit: true})
	if err != nil {
		fmt.Printf("child-error %v\n", err)
		os.Exit(1)
	}
	const writers = 4
	var outMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		id := fmt.Sprintf("c%d", w+1)
		if err := d.Put(id, []byte(`{"f":1}`)); err != nil {
			fmt.Printf("child-error %v\n", err)
			os.Exit(1)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 1; ; n++ {
				if err := d.AppendEvents(id, [][]byte{[]byte(fmt.Sprintf(`{"n":%d}`, n))}); err != nil {
					fmt.Printf("child-error %s: %v\n", id, err)
					os.Exit(1)
				}
				outMu.Lock()
				fmt.Printf("ack %s %d\n", id, n)
				outMu.Unlock()
			}
		}()
	}
	wg.Wait() // unreachable: SIGKILL ends the process mid-append
}

// TestGroupCrashRecovery is the tentpole's crash-window guarantee,
// byte-identical to the per-call store's: kill -9 mid-batch under
// concurrent appenders, reopen, and every acknowledged record replays
// with nothing torn — in group mode AND after migrating the surviving
// segments back to per-cluster WALs.
func TestGroupCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestGroupCrashChild$", "-test.v")
	cmd.Env = append(os.Environ(), crashDirEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	acked := make(map[string]int)
	var ackMu sync.Mutex
	firstAck := make(chan struct{})
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stdout)
		first := true
		for sc.Scan() {
			var id string
			var n int
			if _, err := fmt.Sscanf(sc.Text(), "ack %s %d", &id, &n); err != nil {
				continue // test-framework chatter
			}
			ackMu.Lock()
			if n > acked[id] {
				acked[id] = n
			}
			ackMu.Unlock()
			if first {
				first = false
				close(firstAck)
			}
		}
	}()
	select {
	case <-firstAck:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill() //nolint:errcheck // already failing
		t.Fatal("child produced no acknowledged append within 30s")
	}
	time.Sleep(300 * time.Millisecond) // let the writers race mid-batch
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() //nolint:errcheck // killed: non-zero by design
	<-scanDone
	ackMu.Lock()
	defer ackMu.Unlock()
	if len(acked) == 0 {
		t.Fatal("no acks parsed")
	}

	check := func(t *testing.T, group bool) {
		d, err := NewDirWith(dir, DirOptions{GroupCommit: group})
		if err != nil {
			t.Fatalf("reopen after kill -9: %v", err)
		}
		defer d.Close()
		recs, err := d.Load()
		if err != nil {
			t.Fatalf("Load after kill -9: %v", err)
		}
		byID := make(map[string][][]byte)
		for _, r := range recs {
			byID[r.ID] = r.WAL
		}
		for id, want := range acked {
			wal := byID[id]
			// Every record parses and the sequence is contiguous from 1:
			// nothing torn, nothing reordered, nothing fabricated.
			for i, raw := range wal {
				var v struct {
					N int `json:"n"`
				}
				if err := json.Unmarshal(raw, &v); err != nil || v.N != i+1 {
					t.Fatalf("%s record %d = %q (parse err %v), want n=%d", id, i, raw, err, i+1)
				}
			}
			// Durable ⊇ acknowledged: a record can be fsync'd with its ack
			// unprinted at kill time, never the reverse.
			if len(wal) < want {
				t.Fatalf("%s lost acknowledged records: %d durable < %d acked", id, len(wal), want)
			}
		}
	}
	t.Run("group-reopen", func(t *testing.T) { check(t, true) })
	t.Run("migrated-reopen", func(t *testing.T) { check(t, false) })
}
