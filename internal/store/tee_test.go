package store

import (
	"fmt"
	"testing"
)

func TestLogAppendSinceAndTrim(t *testing.T) {
	l := NewLog(7, 4)
	if l.Epoch() != 7 {
		t.Fatalf("epoch = %d, want 7", l.Epoch())
	}
	for i := 0; i < 6; i++ {
		seq := l.Append(Op{Kind: OpPut, ID: fmt.Sprintf("c%d", i)})
		if seq != uint64(i+1) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
	}
	if l.Seq() != 6 {
		t.Fatalf("Seq = %d, want 6", l.Seq())
	}
	// Retain 4: ops 3..6 are live, 1..2 trimmed.
	if _, ok := l.Since(1, 0); ok {
		t.Fatal("Since(1) should report the feed trimmed")
	}
	ops, ok := l.Since(2, 0)
	if !ok || len(ops) != 4 || ops[0].Seq != 3 || ops[3].Seq != 6 {
		t.Fatalf("Since(2) = %v ops (ok=%v), want seqs 3..6", len(ops), ok)
	}
	ops, ok = l.Since(4, 1)
	if !ok || len(ops) != 1 || ops[0].Seq != 5 {
		t.Fatalf("Since(4, max 1): got %d ops (ok=%v)", len(ops), ok)
	}
	if ops, ok := l.Since(6, 0); !ok || len(ops) != 0 {
		t.Fatalf("Since(head) should be empty and ok, got %d ops ok=%v", len(ops), ok)
	}
}

func TestLogSubscribeWakes(t *testing.T) {
	l := NewLog(1, 0)
	ch := l.Subscribe()
	select {
	case <-ch:
		t.Fatal("wake before any append")
	default:
	}
	l.Append(Op{Kind: OpPut, ID: "c1"})
	l.Append(Op{Kind: OpPut, ID: "c2"}) // coalesces into the same pending wake
	select {
	case <-ch:
	default:
		t.Fatal("no wake after append")
	}
}

func TestTeePublishesCommittedMutations(t *testing.T) {
	log := NewLog(1, 0)
	tee := NewTee("acme", NewMem(), log)

	if err := tee.Put("c1", []byte(`{"f":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := tee.AppendEvents("c1", [][]byte{[]byte(`"a"`), []byte(`"b"`)}); err != nil {
		t.Fatal(err)
	}
	if err := tee.AppendEvents("c1", [][]byte{[]byte(`"c"`)}); err != nil {
		t.Fatal(err)
	}
	if err := tee.Snapshot("c1", []byte(`{"s":3}`)); err != nil {
		t.Fatal(err)
	}
	if err := tee.AppendEvents("c1", [][]byte{[]byte(`"d"`)}); err != nil {
		t.Fatal(err)
	}
	if err := tee.Remove("c1"); err != nil {
		t.Fatal(err)
	}

	ops, ok := log.Since(0, 0)
	if !ok || len(ops) != 6 {
		t.Fatalf("got %d ops, want 6", len(ops))
	}
	wantKinds := []OpKind{OpPut, OpAppend, OpAppend, OpSnapshot, OpAppend, OpRemove}
	wantPrev := []int{0, 0, 2, 0, 0, 0}
	for i, op := range ops {
		if op.Tenant != "acme" || op.ID != "c1" {
			t.Fatalf("op %d addressed %s/%s", i, op.Tenant, op.ID)
		}
		if op.Kind != wantKinds[i] {
			t.Fatalf("op %d kind = %s, want %s", i, op.Kind, wantKinds[i])
		}
		if op.Kind == OpAppend && op.PrevWAL != wantPrev[i] {
			t.Fatalf("op %d PrevWAL = %d, want %d", i, op.PrevWAL, wantPrev[i])
		}
	}
}

func TestTeeFailedInnerOpPublishesNothing(t *testing.T) {
	log := NewLog(1, 0)
	tee := NewTee("acme", NewMem(), log)
	if err := tee.Put("c1", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := tee.Put("c1", []byte(`{}`)); err == nil {
		t.Fatal("duplicate Put should fail")
	}
	if got := log.Seq(); got != 1 {
		t.Fatalf("failed Put published an op: seq = %d, want 1", got)
	}
}

func TestTeeRejectsUntrackedAppend(t *testing.T) {
	inner := NewMem()
	if err := inner.Put("c9", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	tee := NewTee("acme", inner, NewLog(1, 0))
	if err := tee.AppendEvents("c9", [][]byte{[]byte(`"x"`)}); err == nil {
		t.Fatal("append without a tracked anchor must be refused")
	}
}

func TestTeeLoadSeedsAnchors(t *testing.T) {
	inner := NewMem()
	if err := inner.Put("c3", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := inner.AppendEvents("c3", [][]byte{[]byte(`"a"`), []byte(`"b"`)}); err != nil {
		t.Fatal(err)
	}
	log := NewLog(1, 0)
	tee := NewTee("acme", inner, log)
	if _, err := tee.Load(); err != nil {
		t.Fatal(err)
	}
	if err := tee.AppendEvents("c3", [][]byte{[]byte(`"c"`)}); err != nil {
		t.Fatal(err)
	}
	ops, _ := log.Since(0, 0)
	if len(ops) != 1 || ops[0].PrevWAL != 2 {
		t.Fatalf("post-Load append anchored at %d, want 2", ops[0].PrevWAL)
	}
}
