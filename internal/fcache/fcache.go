// Package fcache is the content-addressed fusion cache: fusion output is
// a pure function of (machines, f, options), so Generate requests with
// equal canonical digests (core.RequestDigest) can share one Algorithm 2
// run — across callers, across tenants, and (through the store-backed
// persistence) across process restarts.
//
// The cache is a bounded in-process LRU with singleflight admission:
// concurrent requests for the same digest coalesce onto one computing
// leader (only that leader should hold an engine admission slot — callers
// acquire inside the compute callback, not around Do), entries keep their
// partitions in interned form so coinciding fusions share backing
// vectors, and eviction is size-bounded with hit/miss/evict/coalesce
// counters surfaced in fusiond's /metrics.
//
// Persistence is best-effort and self-verifying: entries are journaled to
// a Store (store.Dir's atomic-rename .fcache namespace, or store.Mem) and
// re-verified on load — scheme byte, stored digest against the filename
// key, and a payload checksum — so a torn, corrupt, or stale-scheme entry
// degrades to one recomputation, never to a wrong answer.
package fcache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/partition"
)

// Key is the content address of one Generate request.
type Key = core.Digest

// Entry is one cached fusion: the digest it answers, the number of
// reachable ⊤-states its partitions divide, and the generated backup
// partitions themselves. Entries are immutable once cached; Parts is
// shared between the cache and every caller it is served to.
type Entry struct {
	Key   Key
	N     int
	Parts []partition.P
}

// Store persists entries across restarts. store.Dir and store.Mem
// implement it structurally (this package's encode/decode owns the wire
// format; the store only sees opaque key→blob pairs).
type Store interface {
	PutCache(key string, data []byte) error
	RemoveCache(key string) error
	LoadCache() (map[string][]byte, error)
}

// Options configures a Cache.
type Options struct {
	// MaxEntries bounds the number of live entries; 0 means 4096.
	MaxEntries int
	// MaxBytes bounds the estimated partition-vector memory held; 0 means
	// 64 MiB.
	MaxBytes int64
	// Store enables persistence: inserts journal through it (best-effort)
	// and LoadStore rehydrates from it at boot. nil disables persistence.
	Store Store
}

// Outcome says how Do satisfied a request.
type Outcome int

const (
	// Hit: served from a live entry, no computation, no coalescing wait.
	Hit Outcome = iota
	// Miss: this call was the flight leader and ran the computation.
	Miss
	// Coalesced: an identical request was already computing; this call
	// waited for its result instead of running its own.
	Coalesced
)

// String returns the outcome for response headers ("hit", "miss",
// "coalesced").
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	default:
		return "coalesced"
	}
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Coalesced int64
	Entries   int
	Bytes     int64
}

// Cache is the bounded singleflight LRU. Safe for concurrent use.
type Cache struct {
	maxEntries int
	maxBytes   int64
	store      Store

	mu      sync.Mutex
	lru     *list.List // of *entryNode; front = most recently used
	index   map[Key]*list.Element
	flights map[Key]*flight

	// interns deduplicates partition backing vectors across entries,
	// per element count (partitions of different N must never be
	// compared). internAdds counts insertions since the last rebuild so
	// eviction churn cannot grow the intern sets without bound.
	interns    map[int]*partition.Set
	internAdds int
	liveParts  int
	bytes      int64

	hits, misses, evictions, coalesced atomic.Int64
}

type entryNode struct {
	ent  Entry
	size int64
}

type flight struct {
	done chan struct{}
	ent  Entry
	err  error
}

// New returns an empty cache.
func New(opts Options) *Cache {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 4096
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = 64 << 20
	}
	return &Cache{
		maxEntries: opts.MaxEntries,
		maxBytes:   opts.MaxBytes,
		store:      opts.Store,
		lru:        list.New(),
		index:      make(map[Key]*list.Element),
		flights:    make(map[Key]*flight),
		interns:    make(map[int]*partition.Set),
	}
}

// Get returns the live entry for key, counting a hit and refreshing its
// recency. A false return counts nothing — misses are attributed by Do,
// where the computation happens.
func (c *Cache) Get(key Key) (Entry, bool) {
	c.mu.Lock()
	el, ok := c.index[key]
	if !ok {
		c.mu.Unlock()
		return Entry{}, false
	}
	c.lru.MoveToFront(el)
	ent := el.Value.(*entryNode).ent
	c.mu.Unlock()
	c.hits.Add(1)
	return ent, true
}

// Do returns the entry for key, computing it at most once across
// concurrent callers: a live entry is a Hit; an in-flight computation is
// joined (Coalesced) — the caller blocks until the leader finishes and
// shares its result or error; otherwise this caller becomes the leader
// (Miss), runs compute, and inserts the result. Errors are delivered to
// every waiter of the flight but never cached: the next request retries.
//
// compute runs outside the cache lock. Callers that meter work (engine
// admission) must acquire inside compute, so coalesced waiters never hold
// admission slots — N identical requests cost one slot, not N.
func (c *Cache) Do(key Key, compute func() (Entry, error)) (Entry, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.index[key]; ok {
		c.lru.MoveToFront(el)
		ent := el.Value.(*entryNode).ent
		c.mu.Unlock()
		c.hits.Add(1)
		return ent, Hit, nil
	}
	if fl, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		<-fl.done
		if fl.err != nil {
			return Entry{}, Coalesced, fl.err
		}
		return fl.ent, Coalesced, nil
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[key] = fl
	c.mu.Unlock()

	c.misses.Add(1)
	ent, err := compute()
	if err == nil {
		ent.Key = key
		ent = c.Put(ent)
	}
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	fl.ent, fl.err = ent, err
	close(fl.done)
	if err != nil {
		return Entry{}, Miss, err
	}
	return ent, Miss, nil
}

// Put inserts (or refreshes) an entry, interning its partitions, evicting
// from the cold end past the bounds, and journaling it to the store. It
// returns the interned form actually cached.
func (c *Cache) Put(ent Entry) Entry {
	ent, evicted := c.put(ent, true)
	c.afterInsert(ent, evicted, true)
	return ent
}

// putLoaded is Put for store rehydration: no re-journaling (the entry
// just came from disk), evictions still propagate.
func (c *Cache) putLoaded(ent Entry) {
	ent, evicted := c.put(ent, false)
	c.afterInsert(ent, evicted, false)
}

// put does the locked portion of an insert and returns the keys evicted
// to make room; store I/O happens after the lock is released.
func (c *Cache) put(ent Entry, countEvictions bool) (Entry, []Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[ent.Key]; ok {
		// Raced or reloaded duplicate: keep the incumbent (identical by
		// content addressing), just refresh recency.
		c.lru.MoveToFront(el)
		return el.Value.(*entryNode).ent, nil
	}
	for i, p := range ent.Parts {
		ent.Parts[i] = c.intern(p)
	}
	node := &entryNode{ent: ent, size: entrySize(ent)}
	c.index[ent.Key] = c.lru.PushFront(node)
	c.bytes += node.size
	c.liveParts += len(ent.Parts)

	var evicted []Key
	for c.lru.Len() > c.maxEntries || (c.bytes > c.maxBytes && c.lru.Len() > 1) {
		back := c.lru.Back()
		old := back.Value.(*entryNode)
		c.lru.Remove(back)
		delete(c.index, old.ent.Key)
		c.bytes -= old.size
		c.liveParts -= len(old.ent.Parts)
		evicted = append(evicted, old.ent.Key)
		if countEvictions {
			c.evictions.Add(1)
		}
	}
	c.maybeRebuildInterns()
	return ent, evicted
}

// afterInsert does the store side of an insert outside the cache lock:
// journaling is best-effort (an unwritable entry only costs its
// post-restart recomputation), as is dropping evicted entries.
func (c *Cache) afterInsert(ent Entry, evicted []Key, persist bool) {
	if c.store == nil {
		return
	}
	for _, k := range evicted {
		c.store.RemoveCache(k.String()) //nolint:errcheck // best-effort
	}
	if persist {
		c.store.PutCache(ent.Key.String(), encodeEntry(ent)) //nolint:errcheck // best-effort
	}
}

// intern canonicalizes one partition against the per-N intern set; the
// caller holds c.mu.
func (c *Cache) intern(p P) P {
	set, ok := c.interns[p.N()]
	if !ok {
		set = partition.NewSet(16)
		c.interns[p.N()] = set
	}
	before := set.Len()
	q := set.Intern(p)
	if set.Len() != before {
		c.internAdds++
	}
	return q
}

// P aliases partition.P for the intern plumbing.
type P = partition.P

// maybeRebuildInterns drops and re-interns when eviction churn has left
// the intern sets holding far more partitions than live entries reference
// — otherwise a long-lived cache under rotating workloads would pin every
// partition it ever saw. Caller holds c.mu.
func (c *Cache) maybeRebuildInterns() {
	if c.internAdds <= 2*c.liveParts+1024 {
		return
	}
	c.interns = make(map[int]*partition.Set)
	c.internAdds = 0
	for el := c.lru.Front(); el != nil; el = el.Next() {
		node := el.Value.(*entryNode)
		for i, p := range node.ent.Parts {
			node.ent.Parts[i] = c.intern(p)
		}
	}
}

// entrySize estimates an entry's retained memory: one int per ⊤-state per
// partition vector plus fixed bookkeeping. Interning makes this an upper
// bound — shared vectors are charged to every entry using them, which
// errs on the safe side for the MaxBytes bound.
func entrySize(ent Entry) int64 {
	return int64(len(ent.Parts))*int64(ent.N)*8 + 128
}

// LoadStore rehydrates the cache from its store: every persisted entry
// that decodes and verifies (scheme, digest-vs-key, checksum, partition
// validity) is inserted; everything else is skipped — a torn or corrupt
// entry costs one recomputation, never an error. Returns the number of
// entries restored. Call once at boot, before serving.
func (c *Cache) LoadStore() (int, error) {
	if c.store == nil {
		return 0, nil
	}
	m, err := c.store.LoadCache()
	if err != nil {
		return 0, err
	}
	n := 0
	for key, data := range m {
		ent, ok := decodeEntry(key, data)
		if !ok {
			continue
		}
		c.putLoaded(ent)
		n++
	}
	return n, nil
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries, bytes := c.lru.Len(), c.bytes
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Coalesced: c.coalesced.Load(),
		Entries:   entries,
		Bytes:     bytes,
	}
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
