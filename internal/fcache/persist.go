package fcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"

	"repro/internal/core"
	"repro/internal/partition"
)

// wireEntry is the persisted form of one cache entry. Blocks is the
// canonical block representation of each partition (the same shape the
// HTTP API exposes), so stored entries are debuggable with jq and the
// decode path revalidates them through partition.FromBlocks. Sum is a
// SHA-256 over the canonical payload serialization: together with the
// digest-vs-filename check it makes loading self-verifying — bit rot,
// manual tampering, or a foreign file under the right name all fail
// closed into a recomputation.
type wireEntry struct {
	Scheme int       `json:"scheme"`
	Digest string    `json:"digest"`
	N      int       `json:"n"`
	Blocks [][][]int `json:"blocks"`
	Sum    string    `json:"sum"`
}

// encodeEntry serializes an entry for the store.
func encodeEntry(ent Entry) []byte {
	w := wireEntry{
		Scheme: core.DigestScheme,
		Digest: ent.Key.String(),
		N:      ent.N,
		Blocks: make([][][]int, len(ent.Parts)),
	}
	for i, p := range ent.Parts {
		w.Blocks[i] = p.Blocks()
	}
	w.Sum = hex.EncodeToString(payloadSum(ent.Key, ent.N, w.Blocks))
	data, err := json.Marshal(w)
	if err != nil {
		// Plain ints and slices cannot fail to marshal; keep the
		// signature clean for callers.
		panic("fcache: encoding cache entry: " + err.Error())
	}
	return data
}

// decodeEntry parses and verifies one stored entry against the store key
// it was found under. ok is false — never an error, the cache just
// recomputes — when the entry is torn, corrupt, checksum-mismatched,
// filed under a different digest than it claims, or written by a
// different digest scheme.
func decodeEntry(key string, data []byte) (Entry, bool) {
	var w wireEntry
	if json.Unmarshal(data, &w) != nil {
		return Entry{}, false
	}
	if w.Scheme != core.DigestScheme || w.Digest != key || w.N <= 0 {
		return Entry{}, false
	}
	d, ok := core.ParseDigest(w.Digest)
	if !ok {
		return Entry{}, false
	}
	sum, err := hex.DecodeString(w.Sum)
	if err != nil {
		return Entry{}, false
	}
	want := payloadSum(d, w.N, w.Blocks)
	if len(sum) != len(want) {
		return Entry{}, false
	}
	for i := range want {
		if sum[i] != want[i] {
			return Entry{}, false
		}
	}
	ent := Entry{Key: d, N: w.N, Parts: make([]partition.P, len(w.Blocks))}
	for i, blocks := range w.Blocks {
		p, err := partition.FromBlocks(w.N, blocks)
		if err != nil {
			return Entry{}, false
		}
		ent.Parts[i] = p
	}
	return ent, true
}

// payloadSum hashes the canonical serialization of an entry's semantic
// content: scheme, digest, n, and every block of every partition with
// length framing.
func payloadSum(key Key, n int, blocks [][][]int) []byte {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	writeInt := func(v int) {
		h.Write(buf[:binary.PutUvarint(buf[:], uint64(v))])
	}
	writeInt(core.DigestScheme)
	h.Write(key[:])
	writeInt(n)
	writeInt(len(blocks))
	for _, part := range blocks {
		writeInt(len(part))
		for _, blk := range part {
			writeInt(len(blk))
			for _, x := range blk {
				writeInt(x)
			}
		}
	}
	return h.Sum(nil)
}
