package fcache

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"repro/internal/partition"
	"repro/internal/store"
)

// ent builds a small valid entry whose key is derived from id.
func ent(t *testing.T, id byte, n int) Entry {
	t.Helper()
	var key Key
	key[0] = id
	blocks := make([][]int, n)
	for i := range blocks {
		blocks[i] = []int{i}
	}
	p, err := partition.FromBlocks(n, blocks)
	if err != nil {
		t.Fatal(err)
	}
	return Entry{Key: key, N: n, Parts: []partition.P{p}}
}

func TestDoOutcomes(t *testing.T) {
	c := New(Options{})
	e := ent(t, 1, 4)
	computes := 0
	compute := func() (Entry, error) { computes++; return e, nil }

	got, out, err := c.Do(e.Key, compute)
	if err != nil || out != Miss || got.N != 4 {
		t.Fatalf("first Do = %v outcome=%v err=%v, want Miss", got, out, err)
	}
	got, out, err = c.Do(e.Key, compute)
	if err != nil || out != Hit {
		t.Fatalf("second Do outcome=%v err=%v, want Hit", out, err)
	}
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	if got.N != 4 || len(got.Parts) != 1 {
		t.Fatalf("hit returned %+v", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Coalesced != 0 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if Hit.String() != "hit" || Miss.String() != "miss" || Coalesced.String() != "coalesced" {
		t.Fatal("Outcome strings drifted from the X-Fusion-Cache vocabulary")
	}
}

// TestDoCoalesce: concurrent identical requests share one computation —
// the definitional singleflight property.
func TestDoCoalesce(t *testing.T) {
	c := New(Options{})
	e := ent(t, 2, 4)
	entered := make(chan struct{})
	release := make(chan struct{})
	var computes int

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(e.Key, func() (Entry, error) { //nolint:errcheck // outcomes checked via stats
			computes++
			close(entered)
			<-release
			return e, nil
		})
	}()
	<-entered

	const waiters = 8
	outcomes := make(chan Outcome, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, out, err := c.Do(e.Key, func() (Entry, error) {
				t.Error("waiter ran compute")
				return e, nil
			})
			if err != nil {
				t.Errorf("waiter: %v", err)
			}
			outcomes <- out
		}()
	}
	// Waiters must be parked on the flight before the leader finishes;
	// poll the coalesced counter (incremented before the wait).
	for c.Stats().Coalesced < waiters && !t.Failed() {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	close(outcomes)
	for out := range outcomes {
		if out != Coalesced {
			t.Fatalf("waiter outcome = %v, want Coalesced", out)
		}
	}
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != waiters {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDoErrorNotCached: a failed computation reaches its waiters but
// leaves no entry — the next request retries from scratch.
func TestDoErrorNotCached(t *testing.T) {
	c := New(Options{})
	e := ent(t, 3, 4)
	boom := errors.New("boom")
	if _, out, err := c.Do(e.Key, func() (Entry, error) { return Entry{}, boom }); out != Miss || !errors.Is(err, boom) {
		t.Fatalf("failed Do: outcome=%v err=%v", out, err)
	}
	if c.Len() != 0 {
		t.Fatal("error was cached")
	}
	if _, out, err := c.Do(e.Key, func() (Entry, error) { return e, nil }); out != Miss || err != nil {
		t.Fatalf("retry after error: outcome=%v err=%v", out, err)
	}
	if _, ok := c.Get(e.Key); !ok {
		t.Fatal("successful retry not cached")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Options{MaxEntries: 2})
	a, b, d := ent(t, 10, 4), ent(t, 11, 4), ent(t, 12, 4)
	c.Put(a)
	c.Put(b)
	c.Get(a.Key) // refresh a; b is now coldest
	c.Put(d)
	if _, ok := c.Get(b.Key); ok {
		t.Fatal("coldest entry survived eviction")
	}
	if _, ok := c.Get(a.Key); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.Get(d.Key); !ok {
		t.Fatal("new entry missing")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMaxBytesEviction(t *testing.T) {
	// Each entry charges N*8 + 128 bytes; cap so only two fit.
	c := New(Options{MaxEntries: 100, MaxBytes: 2 * (4*8 + 128)})
	for i := byte(0); i < 4; i++ {
		c.Put(ent(t, i+20, 4))
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 2 {
		t.Fatalf("stats = %+v, want 2 live / 2 evicted", st)
	}
	if st.Bytes > c.maxBytes {
		t.Fatalf("bytes %d over bound %d", st.Bytes, c.maxBytes)
	}
}

// TestPersistMemRoundTrip: entries journal through the store and a fresh
// cache rehydrates them — with eviction dropping the store copy too.
func TestPersistMemRoundTrip(t *testing.T) {
	st := store.NewMem()
	c := New(Options{MaxEntries: 2, Store: st})
	a, b, d := ent(t, 30, 4), ent(t, 31, 4), ent(t, 32, 4)
	c.Put(a)
	c.Put(b)
	c.Put(d) // evicts a

	c2 := New(Options{Store: st})
	n, err := c2.LoadStore()
	if err != nil || n != 2 {
		t.Fatalf("LoadStore = %d, %v; want 2 entries", n, err)
	}
	if _, ok := c2.Get(a.Key); ok {
		t.Fatal("evicted entry resurrected from store")
	}
	for _, e := range []Entry{b, d} {
		got, ok := c2.Get(e.Key)
		if !ok {
			t.Fatalf("entry %v missing after reload", e.Key)
		}
		if got.N != e.N || len(got.Parts) != len(e.Parts) || !got.Parts[0].Equal(e.Parts[0]) {
			t.Fatalf("reloaded entry differs: %+v vs %+v", got, e)
		}
	}
	// Rehydration is not a workload: no hits/misses were counted for it.
	if s := c2.Stats(); s.Misses != 0 || s.Evictions != 0 {
		t.Fatalf("reload counted workload stats: %+v", s)
	}
}

// TestPersistDirVerification: the Dir backend survives a reopen, and the
// loader refuses corrupt bytes, torn files, and entries filed under the
// wrong key — each skipped, never fatal.
func TestPersistDirVerification(t *testing.T) {
	dir := t.TempDir()
	st, err := store.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := New(Options{Store: st})
	good, victim, mislabeled := ent(t, 40, 4), ent(t, 41, 4), ent(t, 42, 4)
	c.Put(good)
	c.Put(victim)
	c.Put(mislabeled)
	st.Close()

	cdir := filepath.Join(dir, ".fcache")
	// Corrupt one entry's bytes and file another under a foreign digest.
	if err := os.WriteFile(filepath.Join(cdir, victim.Key.String()+".json"), []byte(`{"scheme":1,"n":`), 0o644); err != nil {
		t.Fatal(err)
	}
	var foreign Key
	foreign[0] = 99
	if err := os.Rename(
		filepath.Join(cdir, mislabeled.Key.String()+".json"),
		filepath.Join(cdir, foreign.String()+".json"),
	); err != nil {
		t.Fatal(err)
	}

	st2, err := store.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	c2 := New(Options{Store: st2})
	n, err := c2.LoadStore()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("LoadStore restored %d entries, want only the intact one", n)
	}
	if _, ok := c2.Get(good.Key); !ok {
		t.Fatal("intact entry lost")
	}
	for _, k := range []Key{victim.Key, mislabeled.Key, foreign} {
		if _, ok := c2.Get(k); ok {
			t.Fatalf("unverifiable entry %v served", k)
		}
	}
}

// TestDecodeEntryRejectsScheme: a scheme bump must invalidate old files.
func TestDecodeEntryRejectsScheme(t *testing.T) {
	e := ent(t, 50, 4)
	data := encodeEntry(e)
	if _, ok := decodeEntry(e.Key.String(), data); !ok {
		t.Fatal("round trip failed")
	}
	if _, ok := decodeEntry(e.Key.String(), []byte(`{"scheme":0}`)); ok {
		t.Fatal("foreign scheme accepted")
	}
	// Filed under a different key than its digest claims.
	var other Key
	other[0] = 51
	if _, ok := decodeEntry(other.String(), data); ok {
		t.Fatal("digest/key mismatch accepted")
	}
}

// TestPrewarmZoo: the catalog walk warms every set once, repeats are
// hits, and stop aborts between sets.
func TestPrewarmZoo(t *testing.T) {
	c := New(Options{})
	sets := len(PrewarmSets())
	if warmed := c.PrewarmZoo(nil, nil); warmed != sets {
		t.Fatalf("warmed %d of %d sets", warmed, sets)
	}
	st := c.Stats()
	if st.Entries != sets || int(st.Misses) != sets {
		t.Fatalf("after prewarm: %+v, want %d entries/misses", st, sets)
	}
	// A second walk finds everything live.
	if warmed := c.PrewarmZoo(nil, nil); warmed != sets {
		t.Fatalf("rewarm warmed %d", warmed)
	}
	st = c.Stats()
	if int(st.Misses) != sets || int(st.Hits) != sets {
		t.Fatalf("rewarm recomputed: %+v", st)
	}
	// stop is honored before any work.
	c2 := New(Options{})
	if warmed := c2.PrewarmZoo(nil, func() bool { return true }); warmed != 0 {
		t.Fatalf("stopped prewarm warmed %d sets", warmed)
	}
}
