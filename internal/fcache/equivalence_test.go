package fcache_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	fusion "repro"
	"repro/internal/core"
	"repro/internal/dfsm"
	"repro/internal/fcache"
	"repro/internal/machines"
)

// generateBoth runs the same request cold (no cache) and through a cached
// engine, and returns both results.
func generateBoth(t *testing.T, ms []*dfsm.Machine, f int) (cold, cached []fusion.Partition) {
	t.Helper()
	sys, err := fusion.NewSystem(ms)
	if err != nil {
		t.Fatal(err)
	}
	coldEng := fusion.NewEngine(fusion.EngineOptions{Dedicated: true})
	defer coldEng.Close()
	cold, err = coldEng.Generate(sys, f)
	if err != nil {
		t.Fatal(err)
	}

	warmEng := fusion.NewEngine(fusion.EngineOptions{Dedicated: true, Cache: fcache.New(fcache.Options{})})
	defer warmEng.Close()
	if _, err := warmEng.Generate(sys, f); err != nil { // populate (miss)
		t.Fatal(err)
	}
	cached, err = warmEng.Generate(sys, f) // serve (hit)
	if err != nil {
		t.Fatal(err)
	}
	return cold, cached
}

// samePartitions demands bit-identical results: same count, same canonical
// block structure, same equality under the partition's own comparison.
func samePartitions(t *testing.T, label string, cold, cached []fusion.Partition) {
	t.Helper()
	if len(cold) != len(cached) {
		t.Fatalf("%s: %d cold vs %d cached partitions", label, len(cold), len(cached))
	}
	for i := range cold {
		if !cold[i].Equal(cached[i]) {
			t.Fatalf("%s: partition %d differs", label, i)
		}
		if !reflect.DeepEqual(cold[i].Blocks(), cached[i].Blocks()) {
			t.Fatalf("%s: partition %d block form differs", label, i)
		}
	}
}

// TestCachedEquivalenceTable1: for every row of the paper's results table,
// the cache serves exactly what the cold path computes.
func TestCachedEquivalenceTable1(t *testing.T) {
	for _, suite := range machines.PaperSuites() {
		suite := suite
		t.Run(suite.Name, func(t *testing.T) {
			t.Parallel()
			ms, err := machines.SuiteMachines(suite)
			if err != nil {
				t.Fatal(err)
			}
			cold, cached := generateBoth(t, ms, suite.F)
			samePartitions(t, suite.Name, cold, cached)
		})
	}
}

// TestCachedEquivalenceRandom: same property over randomly generated
// machine sets, where structural accidents (symmetric tables, unreachable
// states) are more likely than in the curated zoo.
func TestCachedEquivalenceRandom(t *testing.T) {
	events := []string{"a", "b", "c"}
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			ms := []*dfsm.Machine{
				dfsm.RandomMachine(rng, "r0", 3+rng.Intn(3), events),
				dfsm.RandomMachine(rng, "r1", 3+rng.Intn(3), events),
			}
			cold, cached := generateBoth(t, ms, 1)
			samePartitions(t, "random", cold, cached)
		})
	}
}

// TestCollisionParanoia: an entry whose payload does not describe this
// system (wrong N under the right key — what a digest collision would
// look like) is not served; the engine computes cold and still answers
// correctly.
func TestCollisionParanoia(t *testing.T) {
	ms, err := machines.SuiteMachines(machines.PaperSuites()[0])
	if err != nil {
		t.Fatal(err)
	}
	sys, err := fusion.NewSystem(ms)
	if err != nil {
		t.Fatal(err)
	}
	f := machines.PaperSuites()[0].F

	cache := fcache.New(fcache.Options{})
	key := core.RequestDigest(ms, f, core.GenerateOptions{})
	// Poison the cache: right key, foreign payload (N of a different ⊤).
	cache.Put(fcache.Entry{Key: key, N: sys.N() + 1})

	eng := fusion.NewEngine(fusion.EngineOptions{Dedicated: true, Cache: cache})
	defer eng.Close()
	got, err := eng.Generate(sys, f)
	if err != nil {
		t.Fatal(err)
	}
	coldEng := fusion.NewEngine(fusion.EngineOptions{Dedicated: true})
	defer coldEng.Close()
	want, err := coldEng.Generate(sys, f)
	if err != nil {
		t.Fatal(err)
	}
	samePartitions(t, "post-poison", want, got)
}

// TestSingleflightFlood: N concurrent identical requests on a cached
// engine run Algorithm 2 exactly once — the singleflight guarantee,
// observed through the process-wide generation counter.
func TestSingleflightFlood(t *testing.T) {
	ms, err := machines.SuiteMachines(machines.PaperSuites()[0])
	if err != nil {
		t.Fatal(err)
	}
	sys, err := fusion.NewSystem(ms)
	if err != nil {
		t.Fatal(err)
	}
	f := machines.PaperSuites()[0].F
	eng := fusion.NewEngine(fusion.EngineOptions{Dedicated: true, Cache: fcache.New(fcache.Options{})})
	defer eng.Close()

	before := core.GenerationCounters().Runs
	const flood = 16
	var wg sync.WaitGroup
	results := make([][]fusion.Partition, flood)
	for i := 0; i < flood; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			parts, err := eng.Generate(sys, f)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = parts
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if delta := core.GenerationCounters().Runs - before; delta != 1 {
		t.Fatalf("flood of %d identical requests ran Algorithm 2 %d times, want 1", flood, delta)
	}
	for i := 1; i < flood; i++ {
		samePartitions(t, fmt.Sprintf("flood caller %d", i), results[0], results[i])
	}
}
