package fcache

import (
	"repro/internal/core"
	"repro/internal/dfsm"
	"repro/internal/exec"
	"repro/internal/machines"
)

// PrewarmSets returns the catalog walk of the zoo pre-warmer: every
// built-in machine alone, plus the paper's canonical combinations (the
// Fig. 1 counters, the Fig. 2 A/B pair, and the MESI+TCP protocol pair),
// all at f=1 — the requests a first-time user of the catalog endpoints
// actually sends. Ordered cheap-to-expensive so a daemon that starts
// taking traffic immediately still warms the bulk of the catalog early.
func PrewarmSets() [][]string {
	names := machines.Names()
	sets := make([][]string, 0, len(names)+3)
	for _, n := range names {
		sets = append(sets, []string{n})
	}
	sets = append(sets,
		[]string{"0-Counter", "1-Counter"},
		[]string{"A", "B"},
		[]string{"MESI", "TCP"},
	)
	return sets
}

// PrewarmZoo walks PrewarmSets through the cache on the given pool (nil =
// the shared default pool), so first-hit latency for the catalog
// disappears after boot. Each generation goes through Do: it coalesces
// with identical live traffic, populates the store, and is skipped
// entirely when a restart already rehydrated the entry. stop is polled
// between sets (nil = never stop); unbuildable sets are skipped. Returns
// the number of sets now warm.
func (c *Cache) PrewarmZoo(pool *exec.Pool, stop func() bool) int {
	warmed := 0
	for _, set := range PrewarmSets() {
		if stop != nil && stop() {
			return warmed
		}
		ms := make([]*dfsm.Machine, 0, len(set))
		ok := true
		for _, name := range set {
			m, err := machines.Get(name)
			if err != nil {
				ok = false
				break
			}
			ms = append(ms, m)
		}
		if !ok {
			continue
		}
		const f = 1
		opts := core.GenerateOptions{Pool: pool}
		key := core.RequestDigest(ms, f, opts)
		_, _, err := c.Do(key, func() (Entry, error) {
			sys, err := core.NewSystem(ms)
			if err != nil {
				return Entry{}, err
			}
			parts, err := core.GenerateFusion(sys, f, opts)
			if err != nil {
				return Entry{}, err
			}
			return Entry{Key: key, N: sys.N(), Parts: parts}, nil
		})
		if err == nil {
			warmed++
		}
	}
	return warmed
}
