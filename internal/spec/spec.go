// Package spec implements a small text format (".fsm") for describing
// DFSMs, used by the CLIs so that users can feed their own machines to the
// fusion generator without writing Go. The format is line-oriented:
//
//	# comment
//	machine TrafficLight
//	initial red
//	strict            # optional: missing transitions are errors
//	red   timer -> green
//	green timer -> yellow
//	yellow timer -> red
//
//	machine Pedestrian
//	...
//
// Each "machine" block declares one DFSM; states and events are declared
// implicitly by the transitions. Without "strict", missing transitions
// default to self-loops (events outside a state's interest are ignored,
// the convention of the paper's system model).
package spec

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/dfsm"
)

// Parse reads every machine in the stream.
func Parse(r io.Reader) ([]*dfsm.Machine, error) {
	var out []*dfsm.Machine
	var b *dfsm.Builder
	strict := false
	flush := func() error {
		if b == nil {
			return nil
		}
		m, err := b.Build(!strict)
		if err != nil {
			return err
		}
		out = append(out, m)
		b = nil
		strict = false
		return nil
	}

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "machine":
			if len(fields) != 2 {
				return nil, fmt.Errorf("spec: line %d: want 'machine NAME'", lineNo)
			}
			if err := flush(); err != nil {
				return nil, fmt.Errorf("spec: before line %d: %w", lineNo, err)
			}
			b = dfsm.NewBuilder(fields[1])
		case "initial":
			if b == nil {
				return nil, fmt.Errorf("spec: line %d: 'initial' outside a machine block", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("spec: line %d: want 'initial STATE'", lineNo)
			}
			b.Initial(fields[1])
		case "strict":
			if b == nil {
				return nil, fmt.Errorf("spec: line %d: 'strict' outside a machine block", lineNo)
			}
			strict = true
		default:
			// Transition: FROM EVENT -> TO
			if b == nil {
				return nil, fmt.Errorf("spec: line %d: transition outside a machine block", lineNo)
			}
			if len(fields) != 4 || fields[2] != "->" {
				return nil, fmt.Errorf("spec: line %d: want 'FROM EVENT -> TO', got %q", lineNo, strings.TrimSpace(line))
			}
			b.Transition(fields[0], fields[1], fields[3])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("spec: read: %w", err)
	}
	if err := flush(); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("spec: no machines in input")
	}
	return out, nil
}

// ParseString is Parse over a string.
func ParseString(s string) ([]*dfsm.Machine, error) {
	return Parse(strings.NewReader(s))
}

// Format renders machines in the spec format; Parse(Format(ms)) is
// machine-equivalent to ms (self-loops are emitted explicitly, so the
// round trip is exact even under "strict").
func Format(ms []*dfsm.Machine) string {
	var b strings.Builder
	for i, m := range ms {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "machine %s\n", m.Name())
		fmt.Fprintf(&b, "initial %s\n", m.StateName(m.Initial()))
		b.WriteString("strict\n")
		for s := 0; s < m.NumStates(); s++ {
			for _, ev := range m.Events() {
				fmt.Fprintf(&b, "%s %s -> %s\n", m.StateName(s), ev, m.StateName(m.Next(s, ev)))
			}
		}
	}
	return b.String()
}
