package spec

import (
	"strings"
	"testing"

	"repro/internal/dfsm"
	"repro/internal/machines"
)

const trafficLight = `
# three-phase light
machine Light
initial red
red    timer -> green
green  timer -> yellow
yellow timer -> red
`

func TestParseBasic(t *testing.T) {
	ms, err := ParseString(trafficLight)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("parsed %d machines", len(ms))
	}
	m := ms[0]
	if m.Name() != "Light" || m.NumStates() != 3 || m.NumEvents() != 1 {
		t.Fatalf("parsed %v", m)
	}
	if m.StateName(m.Run([]string{"timer", "timer"})) != "yellow" {
		t.Error("transitions wrong")
	}
}

func TestParseMultipleMachines(t *testing.T) {
	src := trafficLight + `
machine Walk
initial dont
dont go -> walk
walk go -> dont
`
	ms, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[1].Name() != "Walk" {
		t.Fatalf("parsed %v", ms)
	}
}

func TestParseDefaultSelfLoop(t *testing.T) {
	ms, err := ParseString(`
machine M
initial a
a go -> b
b back -> a
`)
	if err != nil {
		t.Fatal(err)
	}
	m := ms[0]
	// 'b' has no 'go' transition: defaults to self-loop.
	if m.Next(m.StateIndex("b"), "go") != m.StateIndex("b") {
		t.Error("missing transition did not self-loop")
	}
}

func TestParseStrict(t *testing.T) {
	if _, err := ParseString(`
machine M
initial a
strict
a go -> b
`); err == nil {
		t.Fatal("strict machine with missing transitions accepted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                          // no machines
		`initial a`,                 // directive outside block
		`strict`,                    // directive outside block
		`a go -> b`,                 // transition outside block
		"machine",                   // missing name
		"machine M\ninitial",        // missing initial state
		"machine M\na go b",         // malformed arrow
		"machine M\na go -> b -> c", // too many fields
	}
	for i, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("case %d: bad spec accepted: %q", i, src)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	ms, err := ParseString("machine M # trailing\n# full line\n\ninitial a\na e -> a\n")
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].NumStates() != 1 {
		t.Error("comments mishandled")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	orig := []*dfsm.Machine{machines.MESI(), machines.TCP(), machines.Fig2A()}
	ms, err := ParseString(Format(orig))
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(ms) != len(orig) {
		t.Fatalf("round trip lost machines: %d vs %d", len(ms), len(orig))
	}
	for i := range orig {
		if ms[i].Name() != orig[i].Name() {
			t.Errorf("machine %d renamed to %s", i, ms[i].Name())
		}
		if !dfsm.Isomorphic(ms[i], orig[i]) {
			t.Errorf("machine %s changed behaviour in round trip", orig[i].Name())
		}
	}
}

func TestFormatIsStrict(t *testing.T) {
	out := Format([]*dfsm.Machine{machines.MESI()})
	if !strings.Contains(out, "strict") {
		t.Error("Format must emit strict specs")
	}
}
