package experiments

import (
	"strings"
	"testing"
)

func TestScalingSweep(t *testing.T) {
	cfg := DefaultScalingConfig()
	pts, err := Scaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := len(cfg.MachineCounts) * len(cfg.StateCounts)
	if len(pts) != want {
		t.Fatalf("%d points, want %d", len(pts), want)
	}
	for _, p := range pts {
		if p.TopSize < 1 {
			t.Errorf("point %+v: empty top", p)
		}
		if p.FusionSpace == 0 {
			// A system that already tolerates f faults generates no
			// backups; FusionSpace is the empty product 1, never 0.
			t.Errorf("point %+v: zero fusion space", p)
		}
		if p.ReplSpace == 0 {
			t.Errorf("point %+v: zero replication space", p)
		}
		for _, sz := range p.BackupSizes {
			if sz > p.TopSize {
				t.Errorf("backup of %d states on a %d-state top", sz, p.TopSize)
			}
		}
	}
	out := FormatScaling(pts)
	if !strings.Contains(out, "|Fusion|") || strings.Count(out, "\n") != want+1 {
		t.Errorf("FormatScaling output malformed:\n%s", out)
	}
}

func TestScalingDeterministic(t *testing.T) {
	a, err := Scaling(DefaultScalingConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scaling(DefaultScalingConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].TopSize != b[i].TopSize || a[i].FusionSpace != b[i].FusionSpace {
			t.Fatalf("point %d: nondeterministic sweep", i)
		}
	}
}

func TestExtendedSuite(t *testing.T) {
	row, err := ExtendedSuite(1)
	if err != nil {
		t.Fatal(err)
	}
	// The extended machines share no algebraic structure (disjoint
	// alphabets, no common quotients), so the smallest fusion degenerates
	// to the reachable cross product — exactly the case Section 1 of the
	// paper warns about ("in some cases the smallest fusion could be the
	// reachable cross product"). Fusion must never be WORSE than
	// replication, and here it lands exactly equal.
	if row.Fusion > row.Replication {
		t.Errorf("extended suite: fusion %d exceeds replication %d", row.Fusion, row.Replication)
	}
	if len(row.BackupSizes) == 0 {
		t.Error("no backups generated")
	}
	if row.BackupSizes[0] != row.TopSize {
		t.Logf("note: fusion found nontrivial backup sizes %v (top %d)", row.BackupSizes, row.TopSize)
	}
}
