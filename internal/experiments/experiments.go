// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each function
// returns printable text plus structured results so that both cmd/paper and
// the benchmarks can consume them.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dfsm"
	"repro/internal/exec"
	"repro/internal/gfp"
	"repro/internal/lattice"
	"repro/internal/machines"
	"repro/internal/partition"
	"repro/internal/replication"
	"repro/internal/trace"
)

// TableRow is one row of the paper's Section 6 results table.
type TableRow struct {
	Suite       string
	Machines    []string
	F           int
	TopSize     int
	BackupSizes []int
	// Replication is (Π|Mi|)^f, the state space of the replication backups.
	Replication uint64
	// Fusion is Π|Fj|, the state space of the generated fusion backups.
	Fusion uint64
	// Elapsed is the fusion generation time.
	Elapsed time.Duration
}

// RunTableRow computes one row: build the system, generate the fusion with
// Algorithm 2, and account both state spaces.
func RunTableRow(s machines.Suite) (*TableRow, error) {
	return RunTableRowWithOptions(s, core.GenerateOptions{})
}

// RunTableRowWithOptions is RunTableRow with explicit Algorithm 2
// options, so the ablation benchmarks can measure a row with individual
// optimizations switched off.
func RunTableRowWithOptions(s machines.Suite, opts core.GenerateOptions) (*TableRow, error) {
	ms, err := machines.SuiteMachines(s)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(ms)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	F, err := core.GenerateFusion(sys, s.F, opts)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	row := &TableRow{
		Suite:       s.Name,
		Machines:    append([]string(nil), s.Machines...),
		F:           s.F,
		TopSize:     sys.N(),
		Replication: replication.CrashStateSpace(ms, s.F),
		Fusion:      1,
		Elapsed:     elapsed,
	}
	for _, p := range F {
		row.BackupSizes = append(row.BackupSizes, p.NumBlocks())
		row.Fusion *= uint64(p.NumBlocks())
	}
	return row, nil
}

// Table1 runs all five rows of the results table.
func Table1() ([]*TableRow, error) {
	var rows []*TableRow
	for _, s := range machines.PaperSuites() {
		row, err := RunTableRow(s)
		if err != nil {
			return nil, fmt.Errorf("suite %s: %w", s.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable renders rows in the paper's column layout.
func FormatTable(rows []*TableRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-55s %2s %5s %-18s %14s %10s %10s\n",
		"id", "Original Machines", "f", "|top|", "|Backup Machines|", "|Replication|", "|Fusion|", "gen time")
	for _, r := range rows {
		sizes := make([]string, len(r.BackupSizes))
		for i, s := range r.BackupSizes {
			sizes[i] = fmt.Sprintf("%d", s)
		}
		fmt.Fprintf(&b, "%-8s %-55s %2d %5d %-18s %14d %10d %10s\n",
			r.Suite, strings.Join(r.Machines, ", "), r.F, r.TopSize,
			"["+strings.Join(sizes, " ")+"]", r.Replication, r.Fusion,
			r.Elapsed.Round(time.Millisecond))
	}
	return b.String()
}

// Fig1Result carries the reproduced data of Fig. 1.
type Fig1Result struct {
	TopSize        int
	F1States       int
	F2States       int
	DminAB         int
	DminWithF1     int
	DminWithF1F2   int
	F1IsFusion     bool
	ByzantineOK    bool
	GeneratedSizes []int
}

// Fig1 reproduces the mod-3 counter example: F1 = (n0+n1) mod 3 is a
// (1,1)-fusion; {F1,F2} tolerates one Byzantine fault; and Algorithm 2
// finds a 3-state fusion automatically.
func Fig1() (*Fig1Result, error) {
	sys, err := core.NewSystem([]*dfsm.Machine{machines.ZeroCounter(), machines.OneCounter()})
	if err != nil {
		return nil, err
	}
	f1, err := sys.PartitionOf(machines.SumCounter(3))
	if err != nil {
		return nil, err
	}
	f2, err := sys.PartitionOf(machines.DiffCounter(3))
	if err != nil {
		return nil, err
	}
	ok1, err := sys.IsFusion([]partition.P{f1}, 1)
	if err != nil {
		return nil, err
	}
	gen, err := core.GenerateFusion(sys, 1, core.GenerateOptions{})
	if err != nil {
		return nil, err
	}
	res := &Fig1Result{
		TopSize:      sys.N(),
		F1States:     f1.NumBlocks(),
		F2States:     f2.NumBlocks(),
		DminAB:       sys.Dmin(),
		DminWithF1:   sys.DminWith([]partition.P{f1}),
		DminWithF1F2: sys.DminWith([]partition.P{f1, f2}),
		F1IsFusion:   ok1,
	}
	res.ByzantineOK = res.DminWithF1F2 >= 3
	for _, p := range gen {
		res.GeneratedSizes = append(res.GeneratedSizes, p.NumBlocks())
	}
	return res, nil
}

// FormatFig1 renders the Fig. 1 reproduction.
func FormatFig1(r *Fig1Result) string {
	var b strings.Builder
	b.WriteString("Fig. 1 — mod-3 counters A (n0), B (n1)\n")
	fmt.Fprintf(&b, "  |R({A,B})| = %d (paper: 9)\n", r.TopSize)
	fmt.Fprintf(&b, "  dmin({A,B}) = %d → tolerates %d crash faults alone\n", r.DminAB, r.DminAB-1)
	fmt.Fprintf(&b, "  F1 = (n0+n1) mod 3: %d states, (1,1)-fusion: %v; dmin with F1 = %d\n",
		r.F1States, r.F1IsFusion, r.DminWithF1)
	fmt.Fprintf(&b, "  F2 = (n0-n1) mod 3: %d states; dmin({A,B,F1,F2}) = %d → one Byzantine fault: %v\n",
		r.F2States, r.DminWithF1F2, r.ByzantineOK)
	fmt.Fprintf(&b, "  Algorithm 2 output for f=1: machine sizes %v (vs reachable cross product of 9 states)\n",
		r.GeneratedSizes)
	return b.String()
}

// Fig2Result carries the reproduced data of Fig. 2.
type Fig2Result struct {
	ASize, BSize int
	TopSize      int
	TopNames     []string
	M1Closed     bool
	M1Size       int
}

// Fig2 reproduces the reachable-cross-product example of Fig. 2.
func Fig2() (*Fig2Result, error) {
	sys, err := core.NewSystem([]*dfsm.Machine{machines.Fig2A(), machines.Fig2B()})
	if err != nil {
		return nil, err
	}
	m1, err := resolveFig2M1(sys)
	if err != nil {
		return nil, err
	}
	return &Fig2Result{
		ASize:    sys.Machines[0].NumStates(),
		BSize:    sys.Machines[1].NumStates(),
		TopSize:  sys.N(),
		TopNames: sys.Top.States(),
		M1Closed: partition.IsClosed(sys.Top, m1),
		M1Size:   m1.NumBlocks(),
	}, nil
}

func resolveFig2M1(sys *core.System) (partition.P, error) {
	type key [2]string
	ix := map[key]int{}
	for ti, tuple := range sys.Product.Proj {
		ix[key{sys.Machines[0].StateName(tuple[0]), sys.Machines[1].StateName(tuple[1])}] = ti
	}
	var blocks [][]int
	for _, blk := range machines.Fig2M1Blocks() {
		var b []int
		for _, pr := range blk {
			ti, ok := ix[key{pr[0], pr[1]}]
			if !ok {
				return partition.P{}, fmt.Errorf("experiments: tuple %v unreachable", pr)
			}
			b = append(b, ti)
		}
		blocks = append(blocks, b)
	}
	return partition.FromBlocks(sys.N(), blocks)
}

// FormatFig2 renders the Fig. 2 reproduction.
func FormatFig2(r *Fig2Result) string {
	var b strings.Builder
	b.WriteString("Fig. 2 — machines A, B and R({A,B})\n")
	fmt.Fprintf(&b, "  |A| = %d, |B| = %d (paper: 3, 3)\n", r.ASize, r.BSize)
	fmt.Fprintf(&b, "  |R({A,B})| = %d (paper: 4); states: %s\n", r.TopSize, strings.Join(r.TopNames, " "))
	fmt.Fprintf(&b, "  M1 (3-state machine below ⊤): closed partition = %v, %d states\n", r.M1Closed, r.M1Size)
	return b.String()
}

// Fig3Result carries the lattice reproduction.
type Fig3Result struct {
	Size        int
	BasisSize   int
	ContainsA   bool
	ContainsB   bool
	ContainsM1  bool
	RankProfile map[int]int
	DOT         string
}

// Fig3 enumerates the closed-partition lattice of the Fig. 2 top.
func Fig3() (*Fig3Result, error) {
	sys, err := core.NewSystem([]*dfsm.Machine{machines.Fig2A(), machines.Fig2B()})
	if err != nil {
		return nil, err
	}
	l, err := lattice.Build(sys.Top, 0)
	if err != nil {
		return nil, err
	}
	m1, err := resolveFig2M1(sys)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{
		Size:        l.Size(),
		BasisSize:   len(l.Basis()),
		ContainsA:   l.Contains(sys.Parts[0]),
		ContainsB:   l.Contains(sys.Parts[1]),
		ContainsM1:  l.Contains(m1),
		RankProfile: map[int]int{},
		DOT:         l.DOT(),
	}
	for _, p := range l.Nodes {
		res.RankProfile[p.NumBlocks()]++
	}
	return res, nil
}

// FormatFig3 renders the lattice reproduction.
func FormatFig3(r *Fig3Result) string {
	var b strings.Builder
	b.WriteString("Fig. 3 — closed partition lattice of R({A,B})\n")
	fmt.Fprintf(&b, "  lattice size %d, basis (lower cover of ⊤) size %d\n", r.Size, r.BasisSize)
	fmt.Fprintf(&b, "  contains A: %v, B: %v, M1: %v\n", r.ContainsA, r.ContainsB, r.ContainsM1)
	ranks := make([]int, 0, len(r.RankProfile))
	for k := range r.RankProfile {
		ranks = append(ranks, k)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ranks)))
	for _, k := range ranks {
		fmt.Fprintf(&b, "  %d-block machines: %d\n", k, r.RankProfile[k])
	}
	b.WriteString("  (run 'paper -experiment fig3 -dot' for the Hasse diagram)\n")
	return b.String()
}

// Fig4Result carries the fault-graph reproductions.
type Fig4Result struct {
	// Graphs maps a label (e.g. "G({A})") to its rendered weight matrix.
	Graphs []LabelledGraph
}

// LabelledGraph is one fault graph with its dmin.
type LabelledGraph struct {
	Label  string
	Dmin   int
	Matrix string
}

// Fig4 builds the fault graphs of Fig. 4 over the Fig. 2 system: {A},
// {A,B}, {A,B,M1}, {A,B,M1,⊤}.
func Fig4() (*Fig4Result, error) {
	sys, err := core.NewSystem([]*dfsm.Machine{machines.Fig2A(), machines.Fig2B()})
	if err != nil {
		return nil, err
	}
	m1, err := resolveFig2M1(sys)
	if err != nil {
		return nil, err
	}
	top := partition.Singletons(sys.N())
	sets := []struct {
		label string
		parts []partition.P
	}{
		{"G({A})", []partition.P{sys.Parts[0]}},
		{"G({A,B})", sys.Parts},
		{"G({A,B,M1})", []partition.P{sys.Parts[0], sys.Parts[1], m1}},
		{"G({A,B,M1,T})", []partition.P{sys.Parts[0], sys.Parts[1], m1, top}},
	}
	res := &Fig4Result{}
	for _, s := range sets {
		g := core.BuildFaultGraph(sys.N(), s.parts)
		res.Graphs = append(res.Graphs, LabelledGraph{
			Label:  s.label,
			Dmin:   g.Dmin(),
			Matrix: g.String(),
		})
	}
	return res, nil
}

// FormatFig4 renders the fault graphs.
func FormatFig4(r *Fig4Result) string {
	var b strings.Builder
	b.WriteString("Fig. 4 — fault graphs over the Fig. 2 top\n")
	for _, g := range r.Graphs {
		fmt.Fprintf(&b, "  %s: dmin = %d\n", g.Label, g.Dmin)
		for _, line := range strings.Split(strings.TrimRight(g.Matrix, "\n"), "\n")[1:] {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}

// Fig5Result carries the set-representation reproduction.
type Fig5Result struct {
	MachineName string
	Sets        []string // one line per machine state
}

// Fig5 runs Algorithm 1 for machine A of Fig. 2 against its top.
func Fig5() (*Fig5Result, error) {
	sys, err := core.NewSystem([]*dfsm.Machine{machines.Fig2A(), machines.Fig2B()})
	if err != nil {
		return nil, err
	}
	a := sys.Machines[0]
	sets, err := core.SetRepresentation(sys.Top, a)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{MachineName: a.Name()}
	for s, set := range sets {
		names := make([]string, len(set))
		for i, t := range set {
			names[i] = fmt.Sprintf("t%d", t)
		}
		res.Sets = append(res.Sets, fmt.Sprintf("%s = {%s}", a.StateName(s), strings.Join(names, ",")))
	}
	return res, nil
}

// FormatFig5 renders the set representation.
func FormatFig5(r *Fig5Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 — set representation of %s w.r.t. ⊤ (Algorithm 1)\n", r.MachineName)
	for _, s := range r.Sets {
		fmt.Fprintf(&b, "  %s\n", s)
	}
	return b.String()
}

// SensorResult carries the sensor-network experiment of the introduction
// and conclusion: n mod-k sensors, f crash faults, fusion vs replication.
type SensorResult struct {
	Sensors            int
	Mod                int
	F                  int
	FusionMachines     int
	FusionStates       []int
	ReplicationBackups int
	Elapsed            time.Duration
	RecoveryOK         bool
}

// Sensor runs the sensor-network experiment: the hand-built weighted-sum
// fusions back up n independent mod-k counters against f crash faults, and
// one randomized crash/recovery round is verified end to end.
//
// The reachable cross product of n mod-k counters has k^n states, so
// Algorithm 2 is infeasible there; the paper's introduction argues the
// fusion exists by construction (one 3-state sum counter for f=1). We
// verify the constructed fusions with the fault-graph criterion on small n
// and with direct recovery at scale.
// Sensor construction and replay both run on the shared worker pool:
// each sensor is independent, so building the n machines and replaying
// the stream through them shard cleanly, and the index-addressed writes
// keep the result identical to the serial computation.
func Sensor(n, k, f int, seed int64) (*SensorResult, error) {
	if k < 2 {
		return nil, fmt.Errorf("experiments: sensor modulus %d", k)
	}
	pool := exec.Default()
	sensors := make([]*dfsm.Machine, n)
	pool.Run(n, func(_ *exec.Ctx, i int) { sensors[i] = machines.SensorCounter(i, k) })
	fusions := make([]*dfsm.Machine, f)
	pool.Run(f, func(_ *exec.Ctx, m int) { fusions[m] = machines.SensorFusion(n, k, m) })
	start := time.Now()

	// Recovery check without materializing the k^n-state top: crash f
	// sensors, solve for their counts from the surviving machines. With
	// Vandermonde-style coefficients modulo prime k, f erasures are
	// solvable when the coefficient minor is invertible; we verify
	// operationally by replay.
	res := &SensorResult{
		Sensors:            n,
		Mod:                k,
		F:                  f,
		FusionMachines:     f,
		ReplicationBackups: n * f,
	}
	for _, fm := range fusions {
		res.FusionStates = append(res.FusionStates, fm.NumStates())
	}

	gen := trace.NewGenerator(seed, sensors)
	events := gen.Take(200)
	// Ground truth, replayed shard-parallel across the pool.
	truth := make([]int, n)
	pool.Run(n, func(_ *exec.Ctx, i int) { truth[i] = sensors[i].Run(events) })
	fusionStates := make([]int, f)
	pool.Run(f, func(_ *exec.Ctx, m int) { fusionStates[m] = fusions[m].Run(events) })
	// Crash sensor 0 (and for f≥2, sensor 1): recover via the fusion sums.
	res.RecoveryOK = sensorRecover(n, k, f, truth, fusionStates)
	res.Elapsed = time.Since(start)
	return res, nil
}

// sensorRecover solves for up to f crashed counts using the weighted sums,
// via the GF(k) Vandermonde machinery of Section 3's erasure-code analogy
// (k must be prime; the crashed sensors' evaluation points must be distinct
// modulo k, which holds here since sensors 0..f-1 crash and f < k).
func sensorRecover(n, k, f int, truth []int, fusionStates []int) bool {
	field, err := gfp.NewField(k)
	if err != nil {
		return false
	}
	crashed := make([]int, f)
	points := make([]int, f)
	for i := range crashed {
		crashed[i] = i // sensors 0..f-1 crash
		points[i] = i + 1
	}
	// Residuals: r_m = fusion_m − Σ_{healthy} (i+1)^m·truth_i  (mod k).
	rhs := make([]int, f)
	for m := 0; m < f; m++ {
		r := fusionStates[m]
		for i := f; i < n; i++ {
			r = field.Sub(r, field.Mul(field.Pow(i+1, m), truth[i]))
		}
		rhs[m] = r
	}
	x, err := field.SolveVandermonde(points, rhs)
	if err != nil {
		return false
	}
	for j, i := range crashed {
		if x[j] != truth[i] {
			return false
		}
	}
	return true
}

// FormatSensor renders the sensor experiment.
func FormatSensor(r *SensorResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sensor network — %d mod-%d counters, f = %d crash faults\n", r.Sensors, r.Mod, r.F)
	fmt.Fprintf(&b, "  replication needs %d backup sensors; fusion needs %d (sizes %v)\n",
		r.ReplicationBackups, r.FusionMachines, r.FusionStates)
	fmt.Fprintf(&b, "  crash-recovery of %d sensors verified: %v  (%.2fms)\n",
		r.F, r.RecoveryOK, float64(r.Elapsed.Microseconds())/1000)
	return b.String()
}
