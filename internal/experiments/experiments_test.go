package experiments

import (
	"strings"
	"testing"

	"repro/internal/machines"
)

// TestFig1Reproduction asserts the paper's Fig. 1 claims end to end.
func TestFig1Reproduction(t *testing.T) {
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if r.TopSize != 9 {
		t.Errorf("|top| = %d, want 9", r.TopSize)
	}
	if !r.F1IsFusion {
		t.Error("F1 must be a (1,1)-fusion")
	}
	if r.DminAB != 1 || r.DminWithF1 != 2 || r.DminWithF1F2 != 3 {
		t.Errorf("dmin chain = (%d,%d,%d), want (1,2,3)", r.DminAB, r.DminWithF1, r.DminWithF1F2)
	}
	if !r.ByzantineOK {
		t.Error("{A,B,F1,F2} must tolerate one Byzantine fault")
	}
	if len(r.GeneratedSizes) != 1 || r.GeneratedSizes[0] != 3 {
		t.Errorf("Algorithm 2 sizes = %v, want [3]", r.GeneratedSizes)
	}
	out := FormatFig1(r)
	if !strings.Contains(out, "Fig. 1") {
		t.Error("FormatFig1 missing header")
	}
}

func TestFig2Reproduction(t *testing.T) {
	r, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if r.ASize != 3 || r.BSize != 3 || r.TopSize != 4 {
		t.Errorf("sizes (%d,%d,%d), want (3,3,4)", r.ASize, r.BSize, r.TopSize)
	}
	if !r.M1Closed || r.M1Size != 3 {
		t.Errorf("M1 closed=%v size=%d, want true/3", r.M1Closed, r.M1Size)
	}
	if !strings.Contains(FormatFig2(r), "R({A,B})") {
		t.Error("FormatFig2 missing content")
	}
}

func TestFig3Reproduction(t *testing.T) {
	r, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if !r.ContainsA || !r.ContainsB || !r.ContainsM1 {
		t.Errorf("lattice containment: A=%v B=%v M1=%v", r.ContainsA, r.ContainsB, r.ContainsM1)
	}
	if r.Size < 5 {
		t.Errorf("lattice size %d too small", r.Size)
	}
	if r.BasisSize < 1 {
		t.Error("empty basis")
	}
	if !strings.Contains(r.DOT, "digraph") {
		t.Error("missing DOT output")
	}
	if !strings.Contains(FormatFig3(r), "lattice") {
		t.Error("FormatFig3 missing content")
	}
}

func TestFig4Reproduction(t *testing.T) {
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Graphs) != 4 {
		t.Fatalf("got %d graphs, want 4", len(r.Graphs))
	}
	wantDmin := []int{0, 1, 2, 3}
	for i, g := range r.Graphs {
		if g.Dmin != wantDmin[i] {
			t.Errorf("%s: dmin %d, want %d", g.Label, g.Dmin, wantDmin[i])
		}
	}
	if !strings.Contains(FormatFig4(r), "dmin") {
		t.Error("FormatFig4 missing content")
	}
}

func TestFig5Reproduction(t *testing.T) {
	r, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sets) != 3 {
		t.Fatalf("%d sets for machine A, want 3", len(r.Sets))
	}
	// One set must contain two top states (a0 ↔ {t0,t3} in the paper).
	pairs := 0
	for _, s := range r.Sets {
		if strings.Count(s, ",") == 1 && strings.Contains(s, "{t") {
			pairs++
		}
	}
	if pairs != 1 {
		t.Errorf("want exactly one 2-element set, got %d in %v", pairs, r.Sets)
	}
	if !strings.Contains(FormatFig5(r), "Algorithm 1") {
		t.Error("FormatFig5 missing content")
	}
}

// TestTableRowSmall runs the cheapest row end to end; the full table runs
// under -bench and cmd/paper (seconds, not unit-test time).
func TestTableRowSmall(t *testing.T) {
	row, err := RunTableRow(machines.Suite{
		Name:     "mini",
		Machines: []string{"A", "B"},
		F:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if row.TopSize != 4 {
		t.Errorf("|top| = %d, want 4", row.TopSize)
	}
	if len(row.BackupSizes) != 2 {
		t.Errorf("backups = %v, want 2 machines", row.BackupSizes)
	}
	if row.Replication != 81 { // (3·3)²
		t.Errorf("replication = %d, want 81", row.Replication)
	}
	if row.Fusion == 0 || row.Fusion > row.Replication {
		t.Errorf("fusion space %d vs replication %d: wrong shape", row.Fusion, row.Replication)
	}
	if !strings.Contains(FormatTable([]*TableRow{row}), "mini") {
		t.Error("FormatTable missing row")
	}
}

// TestTable1FullShape runs all five paper rows (≈2s) and asserts the
// paper's headline: fusion state space strictly smaller than replication
// on every row.
func TestTable1FullShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full table skipped in -short mode")
	}
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Fusion >= r.Replication {
			t.Errorf("%s: |Fusion| = %d not smaller than |Replication| = %d", r.Suite, r.Fusion, r.Replication)
		}
		if len(r.BackupSizes) == 0 {
			t.Errorf("%s: no backup machines generated", r.Suite)
		}
		for _, sz := range r.BackupSizes {
			if sz > r.TopSize {
				t.Errorf("%s: backup of %d states exceeds |top| %d", r.Suite, sz, r.TopSize)
			}
		}
	}
}

func TestSensorExperiment(t *testing.T) {
	for _, cfg := range []struct{ n, k, f int }{
		{10, 3, 1},
		{100, 3, 1},
		{20, 5, 2},
		{100, 5, 3},
	} {
		r, err := Sensor(cfg.n, cfg.k, cfg.f, 77)
		if err != nil {
			t.Fatalf("Sensor(%v): %v", cfg, err)
		}
		if !r.RecoveryOK {
			t.Errorf("Sensor(%v): recovery failed", cfg)
		}
		if r.FusionMachines != cfg.f || r.ReplicationBackups != cfg.n*cfg.f {
			t.Errorf("Sensor(%v): accounting wrong: %+v", cfg, r)
		}
		if !strings.Contains(FormatSensor(r), "Sensor network") {
			t.Error("FormatSensor missing content")
		}
	}
}

func TestSensorValidation(t *testing.T) {
	if _, err := Sensor(10, 1, 1, 1); err == nil {
		t.Error("modulus 1 accepted")
	}
}

// TestRecoveryExperimentSmallSuite runs the recovery experiment on the
// cheapest suite only (the full sweep is exercised by cmd/paper).
func TestRecoveryExperimentSmallSuite(t *testing.T) {
	r, err := Recovery(machines.Suite{
		Name:     "mini",
		Machines: []string{"A", "B"},
		F:        2,
	}, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !r.CrashOK {
		t.Error("crash recovery failed")
	}
	if r.ByzantineRuns == 0 || !r.ByzantineOK {
		t.Errorf("byzantine recovery: runs=%d ok=%v", r.ByzantineRuns, r.ByzantineOK)
	}
	out := FormatRecovery([]*RecoveryResult{r})
	if !strings.Contains(out, "mini") {
		t.Error("FormatRecovery missing row")
	}
}
