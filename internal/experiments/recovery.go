package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/machines"
	"repro/internal/sim"
	"repro/internal/trace"
)

// RecoveryResult summarizes the Section 5.2 recovery experiment on one
// suite: end-to-end crash and Byzantine rounds on the simulated cluster,
// with timing (the paper's complexity claim is O((n+m)·N)).
type RecoveryResult struct {
	Suite          string
	Servers        int
	TopSize        int
	F              int
	CrashOK        bool
	CrashTime      time.Duration
	ByzantineOK    bool
	ByzantineTime  time.Duration
	ByzantineRuns  int
	CrashRuns      int
	SetupTime      time.Duration
	EventsPerRound int
}

// Recovery runs the recovery experiment for one paper suite: build the
// cluster (Algorithm 2), then alternate crash and Byzantine rounds with
// randomized schedules inside the tolerance bounds, verifying against the
// oracle every time and averaging the Recover() wall time.
func Recovery(s machines.Suite, rounds int, seed int64) (*RecoveryResult, error) {
	ms, err := machines.SuiteMachines(s)
	if err != nil {
		return nil, err
	}
	setupStart := time.Now()
	cluster, err := sim.NewCluster(ms, s.F, seed)
	if err != nil {
		return nil, err
	}
	res := &RecoveryResult{
		Suite:          s.Name,
		Servers:        len(cluster.ServerNames()),
		TopSize:        cluster.System().N(),
		F:              s.F,
		SetupTime:      time.Since(setupStart),
		EventsPerRound: 64,
		CrashOK:        true,
		ByzantineOK:    true,
	}

	gen := trace.NewGenerator(seed+1, ms)
	var crashTotal, byzTotal time.Duration
	for round := 0; round < rounds; round++ {
		// Crash round: fail the first F servers.
		events := gen.Take(res.EventsPerRound)
		cluster.ApplyAll(events)
		names := cluster.ServerNames()
		for i := 0; i < s.F; i++ {
			if err := cluster.Inject(trace.Fault{Server: names[i%len(names)], Kind: trace.Crash}); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		if _, err := cluster.Recover(); err != nil {
			return nil, fmt.Errorf("crash round %d: %w", round, err)
		}
		crashTotal += time.Since(start)
		res.CrashRuns++
		if bad := cluster.Verify(); len(bad) != 0 {
			res.CrashOK = false
		}

		// Byzantine round (needs f ≥ 2 for one liar).
		if s.F >= 2 {
			cluster.ApplyAll(gen.Take(res.EventsPerRound))
			liar := names[(round+1)%len(names)]
			if err := cluster.Inject(trace.Fault{Server: liar, Kind: trace.Byzantine}); err != nil {
				return nil, err
			}
			start = time.Now()
			if _, err := cluster.Recover(); err != nil {
				return nil, fmt.Errorf("byzantine round %d: %w", round, err)
			}
			byzTotal += time.Since(start)
			res.ByzantineRuns++
			if bad := cluster.Verify(); len(bad) != 0 {
				res.ByzantineOK = false
			}
		}
	}
	if res.CrashRuns > 0 {
		res.CrashTime = crashTotal / time.Duration(res.CrashRuns)
	}
	if res.ByzantineRuns > 0 {
		res.ByzantineTime = byzTotal / time.Duration(res.ByzantineRuns)
	}
	return res, nil
}

// RecoveryAll runs the recovery experiment over every paper suite.
func RecoveryAll(rounds int, seed int64) ([]*RecoveryResult, error) {
	var out []*RecoveryResult
	for _, s := range machines.PaperSuites() {
		r, err := Recovery(s, rounds, seed)
		if err != nil {
			return nil, fmt.Errorf("suite %s: %w", s.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// FormatRecovery renders recovery results.
func FormatRecovery(rs []*RecoveryResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %6s %3s %10s %12s %10s %12s\n",
		"id", "servers", "|top|", "f", "crash ok", "crash t", "byz ok", "byz t")
	for _, r := range rs {
		byzOK := "-"
		byzT := "-"
		if r.ByzantineRuns > 0 {
			byzOK = fmt.Sprintf("%v", r.ByzantineOK)
			byzT = r.ByzantineTime.Round(time.Microsecond).String()
		}
		fmt.Fprintf(&b, "%-8s %8d %6d %3d %10v %12s %10s %12s\n",
			r.Suite, r.Servers, r.TopSize, r.F,
			r.CrashOK, r.CrashTime.Round(time.Microsecond), byzOK, byzT)
	}
	return b.String()
}
