package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dfsm"
	"repro/internal/machines"
	"repro/internal/partition"
)

// TheoremCheck is one verified statement.
type TheoremCheck struct {
	Name      string
	System    string
	Statement string
	Holds     bool
	Detail    string
}

// Theorems operationally verifies the paper's theorems on small systems:
// Theorem 1 (crash tolerance ⇔ dmin > f) and Theorem 2 (Byzantine
// tolerance ⇔ dmin > 2f) by exhaustive fault enumeration, Theorem 3
// (subsets of fusions are fusions), Theorem 4 (existence iff m + dmin > f)
// in both directions, and Theorem 5's cardinality claim.
func Theorems() ([]TheoremCheck, error) {
	var checks []TheoremCheck
	systems := []struct {
		name string
		ms   []*dfsm.Machine
	}{
		{"fig1 counters", []*dfsm.Machine{machines.ZeroCounter(), machines.OneCounter()}},
		{"fig2 A,B", []*dfsm.Machine{machines.Fig2A(), machines.Fig2B()}},
		{"parity pair", []*dfsm.Machine{machines.EvenParity(), machines.OddParity()}},
	}
	for _, sc := range systems {
		sys, err := core.NewSystem(sc.ms)
		if err != nil {
			return nil, err
		}
		const f = 2
		F, err := core.GenerateFusion(sys, f, core.GenerateOptions{})
		if err != nil {
			return nil, err
		}

		// Theorem 1: every ≤f crash pattern recovers every state.
		err1 := sys.VerifyTheorem1(F)
		checks = append(checks, TheoremCheck{
			Name: "Theorem 1", System: sc.name,
			Statement: fmt.Sprintf("all crash patterns of size ≤ %d recover uniquely", f),
			Holds:     err1 == nil, Detail: errDetail(err1),
		})

		// Theorem 2: every ≤f/2 lie pattern is outvoted.
		err2 := sys.VerifyTheorem2(F)
		checks = append(checks, TheoremCheck{
			Name: "Theorem 2", System: sc.name,
			Statement: fmt.Sprintf("all lie patterns of size ≤ %d are outvoted", f/2),
			Holds:     err2 == nil, Detail: errDetail(err2),
		})

		// Theorem 3: dropping t machines leaves an (f−t)-fusion.
		holds3 := true
		detail3 := ""
		for tdrop := 0; tdrop <= len(F); tdrop++ {
			sub := core.SubsetFusion(F, tdrop)
			ok, err := sys.IsFusion(sub, f-tdrop)
			if err != nil || !ok {
				holds3 = false
				detail3 = fmt.Sprintf("drop %d: %v %v", tdrop, ok, err)
				break
			}
		}
		checks = append(checks, TheoremCheck{
			Name: "Theorem 3", System: sc.name,
			Statement: "every subset of the fusion is a proportionally weaker fusion",
			Holds:     holds3, Detail: detail3,
		})

		// Theorem 4: exists(f,m) ⇔ m + dmin > f, checked on a grid.
		d := sys.Dmin()
		holds4 := true
		detail4 := ""
		for fq := 0; fq <= 4 && holds4; fq++ {
			for m := 0; m <= 4 && holds4; m++ {
				want := m+d > fq
				if sys.FusionExists(fq, m) != want {
					holds4 = false
					detail4 = fmt.Sprintf("f=%d m=%d: got %v want %v", fq, m, !want, want)
				}
			}
		}
		checks = append(checks, TheoremCheck{
			Name: "Theorem 4", System: sc.name,
			Statement: "an (f,m)-fusion exists iff m + dmin > f",
			Holds:     holds4, Detail: detail4,
		})

		// Theorem 5: Algorithm 2 yields exactly f − dmin + 1 machines and a
		// locally minimal set.
		want5 := sys.MinimalFusionSize(f)
		minimal, err := core.IsLocallyMinimalFusion(sys, F, f)
		holds5 := err == nil && len(F) == want5 && minimal
		checks = append(checks, TheoremCheck{
			Name: "Theorem 5", System: sc.name,
			Statement: fmt.Sprintf("Algorithm 2 returns %d machines, locally minimal", want5),
			Holds:     holds5, Detail: errDetail(err),
		})

		// Observation 1 / detection extension: with the generated fusion,
		// a single corrupted machine is always detectable (dmin ≥ 2).
		det := verifyDetection(sys, F)
		checks = append(checks, TheoremCheck{
			Name: "Detection (ext.)", System: sc.name,
			Statement: "one corrupted state is always detected",
			Holds:     det == nil, Detail: errDetail(det),
		})
	}
	return checks, nil
}

func errDetail(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// verifyDetection exhaustively corrupts one machine's state at every
// reachable top state and checks DetectFaults flags it.
func verifyDetection(sys *core.System, F []partition.P) error {
	parts := append(append([]partition.P{}, sys.Parts...), F...)
	for t := 0; t < sys.N(); t++ {
		for liar := range parts {
			p := parts[liar]
			truth := p.BlockOf(t)
			for wrong := 0; wrong < p.NumBlocks(); wrong++ {
				if wrong == truth {
					continue
				}
				var reports []core.Report
				for i, q := range parts {
					b := q.BlockOf(t)
					if i == liar {
						b = wrong
					}
					reports = append(reports, core.Report{
						Machine:   fmt.Sprintf("m%d", i),
						TopStates: q.Blocks()[b],
					})
				}
				res, err := core.DetectFaults(sys.N(), reports)
				if err != nil {
					return err
				}
				if !res.Faulty {
					return fmt.Errorf("state %d: machine %d lying block %d undetected", t, liar, wrong)
				}
			}
		}
	}
	return nil
}

// FormatTheorems renders the checks.
func FormatTheorems(checks []TheoremCheck) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-16s %-8s %s\n", "theorem", "system", "holds", "statement")
	for _, c := range checks {
		status := "PASS"
		if !c.Holds {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%-18s %-16s %-8s %s\n", c.Name, c.System, status, c.Statement)
		if c.Detail != "" {
			fmt.Fprintf(&b, "%-18s %-16s %-8s ↳ %s\n", "", "", "", c.Detail)
		}
	}
	return b.String()
}
