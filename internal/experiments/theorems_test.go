package experiments

import "testing"

func TestTheoremsAllHold(t *testing.T) {
	checks, err := Theorems()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		if !c.Holds {
			t.Errorf("%s on %s FAILED: %s", c.Name, c.System, c.Detail)
		}
	}
	t.Log("\n" + FormatTheorems(checks))
}
