package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dfsm"
	"repro/internal/machines"
	"repro/internal/replication"
)

// ScalingPoint is one measurement of the scaling experiment: random
// machine systems of growing size, fusion vs replication.
type ScalingPoint struct {
	Machines     int
	StatesEach   int
	TopSize      int
	F            int
	BackupSizes  []int
	FusionSpace  uint64
	ReplSpace    uint64
	GenerateTime time.Duration
}

// ScalingConfig parameterizes the sweep.
type ScalingConfig struct {
	// MachineCounts and StateCounts are swept as a grid.
	MachineCounts []int
	StateCounts   []int
	F             int
	Alphabet      []string
	Seed          int64
}

// DefaultScalingConfig is the sweep used by cmd/paper and the benches.
func DefaultScalingConfig() ScalingConfig {
	return ScalingConfig{
		MachineCounts: []int{2, 3},
		StateCounts:   []int{3, 5, 8},
		F:             1,
		Alphabet:      []string{"a", "b"},
		Seed:          2009,
	}
}

// Scaling runs the sweep: for each (machines, states) grid point it builds
// random machines over a shared alphabet, generates a fusion with
// Algorithm 2, and records state spaces and generation time. This is an
// extension experiment (not in the paper) pinning the polynomial-time
// claim of Section 5.1 across sizes.
func Scaling(cfg ScalingConfig) ([]*ScalingPoint, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []*ScalingPoint
	for _, n := range cfg.MachineCounts {
		for _, k := range cfg.StateCounts {
			ms := make([]*dfsm.Machine, n)
			for i := range ms {
				ms[i] = dfsm.RandomMachine(rng, fmt.Sprintf("R%d", i), k, cfg.Alphabet)
			}
			sys, err := core.NewSystem(ms)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			F, err := core.GenerateFusion(sys, cfg.F, core.GenerateOptions{})
			if err != nil {
				return nil, err
			}
			pt := &ScalingPoint{
				Machines:     n,
				StatesEach:   k,
				TopSize:      sys.N(),
				F:            cfg.F,
				FusionSpace:  1,
				ReplSpace:    replication.CrashStateSpace(ms, cfg.F),
				GenerateTime: time.Since(start),
			}
			for _, p := range F {
				pt.BackupSizes = append(pt.BackupSizes, p.NumBlocks())
				pt.FusionSpace *= uint64(p.NumBlocks())
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// FormatScaling renders the sweep.
func FormatScaling(pts []*ScalingPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-6s %-6s %-3s %-14s %-10s %-10s %-10s\n",
		"n", "|Mi|", "|top|", "f", "backups", "|Fusion|", "|Repl|", "gen time")
	for _, p := range pts {
		sizes := make([]string, len(p.BackupSizes))
		for i, s := range p.BackupSizes {
			sizes[i] = fmt.Sprintf("%d", s)
		}
		fmt.Fprintf(&b, "%-4d %-6d %-6d %-3d %-14s %-10d %-10d %-10s\n",
			p.Machines, p.StatesEach, p.TopSize, p.F,
			"["+strings.Join(sizes, " ")+"]", p.FusionSpace, p.ReplSpace,
			p.GenerateTime.Round(time.Microsecond))
	}
	return b.String()
}

// ExtendedSuite runs the fusion pipeline on the extended (non-paper) zoo
// machines, demonstrating the library beyond the paper's workloads.
func ExtendedSuite(f int) (*TableRow, error) {
	return RunTableRow(machines.Suite{
		Name:     "extended",
		Machines: []string{"Turnstile", "Thermostat", "Vending", "TokenBucket"},
		F:        f,
	})
}
