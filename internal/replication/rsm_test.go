package replication

import (
	"math/rand"
	"testing"

	"repro/internal/machines"
	"repro/internal/trace"
)

func newRSM(t *testing.T, byz bool, f int) *Cluster {
	t.Helper()
	var plan *Plan
	var err error
	if byz {
		plan, err = NewByzantinePlan(suite(), f)
	} else {
		plan, err = NewCrashPlan(suite(), f)
	}
	if err != nil {
		t.Fatal(err)
	}
	return NewCluster(plan)
}

func TestRSMInstances(t *testing.T) {
	c := newRSM(t, false, 2)
	inst := c.Instances()
	if len(inst) != 9 { // 3 machines × (1 original + 2 copies)
		t.Fatalf("instances = %v", inst)
	}
	if inst[0] != "0-Counter" || inst[1] != "0-Counter#1" {
		t.Errorf("naming: %v", inst[:2])
	}
	if c.TotalStates() != 2*(3+3+4) {
		t.Errorf("TotalStates = %d", c.TotalStates())
	}
}

func TestRSMApplyAndVerify(t *testing.T) {
	c := newRSM(t, false, 1)
	c.ApplyAll([]string{"0", "1", "PrRd"})
	if bad := c.Verify(); len(bad) != 0 {
		t.Fatalf("fault-free run diverged: %v", bad)
	}
}

func TestRSMCrashRecovery(t *testing.T) {
	c := newRSM(t, false, 1)
	c.ApplyAll([]string{"0", "0", "1", "PrWr"})
	if err := c.Inject(trace.Fault{Server: "0-Counter", Kind: trace.Crash}); err != nil {
		t.Fatal(err)
	}
	out, err := c.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Restored) != 1 || out.Restored[0] != "0-Counter" {
		t.Fatalf("restored %v", out.Restored)
	}
	if bad := c.Verify(); len(bad) != 0 {
		t.Fatalf("diverged after recovery: %v", bad)
	}
}

func TestRSMByzantineRecovery(t *testing.T) {
	c := newRSM(t, true, 1) // 2 copies: majority of 3
	c.ApplyAll([]string{"1", "1"})
	if err := c.Inject(trace.Fault{Server: "1-Counter#1", Kind: trace.Byzantine}); err != nil {
		t.Fatal(err)
	}
	out, err := c.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Restored) != 1 || out.Restored[0] != "1-Counter#1" {
		t.Fatalf("restored %v", out.Restored)
	}
	if bad := c.Verify(); len(bad) != 0 {
		t.Fatalf("diverged: %v", bad)
	}
}

func TestRSMBeyondBound(t *testing.T) {
	c := newRSM(t, false, 1) // 1 copy: both instances crashing is fatal
	c.ApplyAll([]string{"0"})
	c.Inject(trace.Fault{Server: "0-Counter", Kind: trace.Crash})
	c.Inject(trace.Fault{Server: "0-Counter#1", Kind: trace.Crash})
	if _, err := c.Recover(); err == nil {
		t.Fatal("recovery of a fully-crashed group succeeded")
	}
}

func TestRSMInjectErrors(t *testing.T) {
	c := newRSM(t, false, 1)
	if err := c.Inject(trace.Fault{Server: "ghost", Kind: trace.Crash}); err == nil {
		t.Error("unknown instance accepted")
	}
	if err := c.Inject(trace.Fault{Server: "MESI", Kind: trace.FaultKind(42)}); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestRSMMatchesFusionCluster: replication and fusion recover identical
// states from the same faults on the same stream — the baselines agree on
// semantics, they differ only in cost (the paper's whole point).
func TestRSMMatchesFusionCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	ms := suite()
	plan, err := NewCrashPlan(ms, 1)
	if err != nil {
		t.Fatal(err)
	}
	repl := NewCluster(plan)

	events := make([]string, 40)
	alpha := []string{"0", "1", "PrRd", "PrWr", "BusRd"}
	for i := range events {
		events[i] = alpha[rng.Intn(len(alpha))]
	}
	repl.ApplyAll(events)
	repl.Inject(trace.Fault{Server: "MESI", Kind: trace.Crash})
	if _, err := repl.Recover(); err != nil {
		t.Fatal(err)
	}
	if bad := repl.Verify(); len(bad) != 0 {
		t.Fatalf("replication diverged: %v", bad)
	}
	// The recovered MESI state must equal a fresh run's state.
	want := machines.MESI().Run(events)
	for i, m := range plan.Originals {
		if m.Name() != "MESI" {
			continue
		}
		states, err := repl.States(i)
		if err != nil {
			t.Fatal(err)
		}
		for inst, st := range states {
			if st != want {
				t.Fatalf("MESI instance %d recovered to %d, fresh run says %d", inst, st, want)
			}
		}
	}
}
