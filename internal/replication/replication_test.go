package replication

import (
	"testing"

	"repro/internal/dfsm"
	"repro/internal/machines"
)

func suite() []*dfsm.Machine {
	return []*dfsm.Machine{machines.ZeroCounter(), machines.OneCounter(), machines.MESI()}
}

func TestCrashPlanCounts(t *testing.T) {
	p, err := NewCrashPlan(suite(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBackups() != 6 {
		t.Fatalf("crash plan backups = %d, want n·f = 6", p.NumBackups())
	}
	// (3·3·4)² = 1296.
	if got := p.BackupStateSpace(); got != 1296 {
		t.Fatalf("state space = %d, want 1296", got)
	}
	if got := CrashStateSpace(suite(), 2); got != 1296 {
		t.Fatalf("CrashStateSpace = %d, want 1296", got)
	}
}

func TestByzantinePlanCounts(t *testing.T) {
	p, err := NewByzantinePlan(suite(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBackups() != 6 {
		t.Fatalf("byzantine plan backups = %d, want 2·n·f = 6", p.NumBackups())
	}
}

func TestPlanRejectsNegative(t *testing.T) {
	if _, err := NewCrashPlan(suite(), -1); err == nil {
		t.Fatal("negative f accepted")
	}
}

func TestBackupsAreRenamedClones(t *testing.T) {
	p, err := NewCrashPlan(suite(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, copies := range p.Backups {
		for c, m := range copies {
			if m.Name() == p.Originals[i].Name() {
				t.Errorf("backup %d/%d shares the original's name", i, c)
			}
			if !dfsm.Isomorphic(m, p.Originals[i]) {
				t.Errorf("backup %d/%d is not a copy of the original", i, c)
			}
		}
	}
}

func TestRecoverMachineMajority(t *testing.T) {
	p, err := NewByzantinePlan(suite(), 1) // 2 copies + original = 3 voters
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.RecoverMachine(0, []int{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("majority = %d, want 2", got)
	}
	// Crash markers are skipped.
	got, err = p.RecoverMachine(0, []int{-1, 2, 2})
	if err != nil || got != 2 {
		t.Fatalf("with crash: %d, %v", got, err)
	}
}

func TestRecoverMachineErrors(t *testing.T) {
	p, err := NewCrashPlan(suite(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RecoverMachine(9, nil); err == nil {
		t.Error("bad machine index accepted")
	}
	if _, err := p.RecoverMachine(0, []int{-1, -1}); err == nil {
		t.Error("all-crashed vote succeeded")
	}
	if _, err := p.RecoverMachine(0, []int{1, 2}); err == nil {
		t.Error("tied vote succeeded")
	}
	if _, err := p.RecoverMachine(0, []int{99}); err == nil {
		t.Error("impossible state accepted")
	}
}
