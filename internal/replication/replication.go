// Package replication implements the traditional replication-based backup
// scheme the paper compares against (Section 1): f extra copies of every
// machine for f crash faults, 2f copies for f Byzantine faults, with
// majority-vote recovery per machine. It exists as the baseline for the
// results-table experiments and the simulator.
package replication

import (
	"fmt"

	"repro/internal/dfsm"
)

// Plan describes a replication deployment for a set of machines.
type Plan struct {
	// Originals are the machines being protected.
	Originals []*dfsm.Machine
	// CopiesPerMachine is f for crash faults, 2f for Byzantine faults.
	CopiesPerMachine int
	// Backups holds the replica machines: Backups[i][c] is copy c of
	// original i (a renamed clone).
	Backups [][]*dfsm.Machine
}

// NewCrashPlan builds the replication plan tolerating f crash faults:
// f copies of each machine (n·f backups in total).
func NewCrashPlan(originals []*dfsm.Machine, f int) (*Plan, error) {
	return newPlan(originals, f)
}

// NewByzantinePlan builds the replication plan tolerating f Byzantine
// faults: 2f copies of each machine (2·n·f backups in total), so that a
// majority of any machine's 2f+1 instances is honest.
func NewByzantinePlan(originals []*dfsm.Machine, f int) (*Plan, error) {
	return newPlan(originals, 2*f)
}

func newPlan(originals []*dfsm.Machine, copies int) (*Plan, error) {
	if copies < 0 {
		return nil, fmt.Errorf("replication: %d copies per machine", copies)
	}
	p := &Plan{
		Originals:        append([]*dfsm.Machine(nil), originals...),
		CopiesPerMachine: copies,
		Backups:          make([][]*dfsm.Machine, len(originals)),
	}
	for i, m := range originals {
		p.Backups[i] = make([]*dfsm.Machine, copies)
		for c := 0; c < copies; c++ {
			p.Backups[i][c] = m.Rename(fmt.Sprintf("%s#%d", m.Name(), c+1))
		}
	}
	return p, nil
}

// NumBackups returns the total number of backup machines.
func (p *Plan) NumBackups() int { return len(p.Originals) * p.CopiesPerMachine }

// BackupStateSpace returns the paper's replication state-space metric
// (Section 6): (Π|Mi|)^f for f copies of each machine — the product of the
// sizes of all backup machines.
func (p *Plan) BackupStateSpace() uint64 {
	total := uint64(1)
	for c := 0; c < p.CopiesPerMachine; c++ {
		for _, m := range p.Originals {
			total *= uint64(m.NumStates())
		}
	}
	return total
}

// CrashStateSpace computes (Π|Mi|)^f without building a plan.
func CrashStateSpace(originals []*dfsm.Machine, f int) uint64 {
	total := uint64(1)
	for c := 0; c < f; c++ {
		for _, m := range originals {
			total *= uint64(m.NumStates())
		}
	}
	return total
}

// RecoverMachine recovers the state of original machine i by majority vote
// over the surviving instances' reported local states (-1 = crashed).
// It mirrors what Algorithm 3 does for fusions, specialized to replicas:
// all instances of a machine should agree, and under ≤ f Byzantine lies
// among 2f+1 instances the majority value is the truth.
func (p *Plan) RecoverMachine(i int, reportedStates []int) (int, error) {
	if i < 0 || i >= len(p.Originals) {
		return -1, fmt.Errorf("replication: no machine %d", i)
	}
	counts := map[int]int{}
	for _, s := range reportedStates {
		if s < 0 {
			continue // crashed instance
		}
		if s >= p.Originals[i].NumStates() {
			return -1, fmt.Errorf("replication: machine %d reports impossible state %d", i, s)
		}
		counts[s]++
	}
	best, bestCount, tie := -1, 0, false
	for s, c := range counts {
		switch {
		case c > bestCount:
			best, bestCount, tie = s, c, false
		case c == bestCount:
			tie = true
		}
	}
	if best == -1 {
		return -1, fmt.Errorf("replication: machine %q: all instances crashed", p.Originals[i].Name())
	}
	if tie {
		return -1, fmt.Errorf("replication: machine %q: ambiguous majority", p.Originals[i].Name())
	}
	return best, nil
}
