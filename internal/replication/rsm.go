package replication

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/trace"
)

// Cluster is the replication-based deployment the paper compares against:
// every original machine runs alongside its replicas, all fed the same
// event stream; recovery is a per-machine majority vote (crash: any
// survivor; Byzantine: majority of 2f+1). It mirrors sim.Cluster's API so
// experiments can swap the two.
type Cluster struct {
	mu sync.Mutex

	plan *Plan
	// states[i][c] is instance c of machine i; c = 0 is the original.
	states  [][]int
	crashed [][]bool
	oracle  []int
	step    int
}

// NewCluster deploys the plan: original + copies all start at the initial
// state.
func NewCluster(plan *Plan) *Cluster {
	c := &Cluster{plan: plan}
	for _, m := range plan.Originals {
		row := make([]int, plan.CopiesPerMachine+1)
		for j := range row {
			row[j] = m.Initial()
		}
		c.states = append(c.states, row)
		c.crashed = append(c.crashed, make([]bool, plan.CopiesPerMachine+1))
		c.oracle = append(c.oracle, m.Initial())
	}
	return c
}

// InstanceName names instance c of machine i ("TCP" for the original,
// "TCP#1" for the first replica), matching Plan.Backups naming.
func (c *Cluster) InstanceName(i, inst int) string {
	if inst == 0 {
		return c.plan.Originals[i].Name()
	}
	return fmt.Sprintf("%s#%d", c.plan.Originals[i].Name(), inst)
}

// Instances returns all instance names, grouped by machine.
func (c *Cluster) Instances() []string {
	var out []string
	for i := range c.plan.Originals {
		for inst := 0; inst <= c.plan.CopiesPerMachine; inst++ {
			out = append(out, c.InstanceName(i, inst))
		}
	}
	return out
}

// ApplyAll broadcasts events to every live instance, one goroutine per
// machine group (instances of one machine evolve identically, so the
// group is the natural parallel unit).
func (c *Cluster) ApplyAll(events []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var wg sync.WaitGroup
	for i := range c.states {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := c.plan.Originals[i]
			for inst := range c.states[i] {
				if c.crashed[i][inst] {
					continue
				}
				c.states[i][inst] = m.RunFrom(c.states[i][inst], events)
			}
			c.oracle[i] = m.RunFrom(c.oracle[i], events)
		}(i)
	}
	wg.Wait()
	c.step += len(events)
}

// Inject applies a fault to the named instance.
func (c *Cluster) Inject(f trace.Fault) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, inst, err := c.findInstance(f.Server)
	if err != nil {
		return err
	}
	switch f.Kind {
	case trace.Crash:
		c.crashed[i][inst] = true
		c.states[i][inst] = -1
	case trace.Byzantine:
		m := c.plan.Originals[i]
		if m.NumStates() < 2 {
			return nil
		}
		c.states[i][inst] = (c.states[i][inst] + 1) % m.NumStates()
	default:
		return fmt.Errorf("replication: unknown fault kind %v", f.Kind)
	}
	return nil
}

func (c *Cluster) findInstance(name string) (int, int, error) {
	for i := range c.plan.Originals {
		for inst := 0; inst <= c.plan.CopiesPerMachine; inst++ {
			if c.InstanceName(i, inst) == name {
				return i, inst, nil
			}
		}
	}
	return -1, -1, fmt.Errorf("replication: no instance %q", name)
}

// RecoveryOutcome summarizes one replication recovery round.
type RecoveryOutcome struct {
	// Restored lists repaired instances, sorted.
	Restored []string
}

// Recover repairs every machine group by majority vote over its live
// instances, restoring crashed and deviant instances to the majority
// state. Errors when some group has no unambiguous majority.
func (c *Cluster) Recover() (*RecoveryOutcome, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := &RecoveryOutcome{}
	for i := range c.states {
		reported := make([]int, 0, len(c.states[i]))
		for inst, st := range c.states[i] {
			if c.crashed[i][inst] {
				reported = append(reported, -1)
			} else {
				reported = append(reported, st)
			}
		}
		want, err := c.plan.RecoverMachine(i, reported)
		if err != nil {
			return nil, err
		}
		for inst := range c.states[i] {
			if c.crashed[i][inst] || c.states[i][inst] != want {
				out.Restored = append(out.Restored, c.InstanceName(i, inst))
			}
			c.states[i][inst] = want
			c.crashed[i][inst] = false
		}
	}
	sort.Strings(out.Restored)
	return out, nil
}

// Verify compares all instances against the fault-free oracle.
func (c *Cluster) Verify() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var bad []string
	for i := range c.states {
		for inst, st := range c.states[i] {
			if c.crashed[i][inst] || st != c.oracle[i] {
				bad = append(bad, c.InstanceName(i, inst))
			}
		}
	}
	return bad
}

// States returns the visible states of all instances of machine i
// (original first), -1 for crashed instances.
func (c *Cluster) States(i int) ([]int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.states) {
		return nil, fmt.Errorf("replication: no machine %d", i)
	}
	return append([]int(nil), c.states[i]...), nil
}

// TotalStates returns the summed state-space size of all backup instances,
// the deployment-cost metric of Section 6.
func (c *Cluster) TotalStates() int {
	total := 0
	for _, m := range c.plan.Originals {
		total += m.NumStates() * c.plan.CopiesPerMachine
	}
	return total
}
