package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/store"
)

// Replication state lives in dot-prefixed files directly under the data
// dir. Tenant directories can never collide with them: tenant names are
// forbidden a leading dot by both the serving layer and validTenant.
const (
	followerStateFile = ".repl-follower.json"
	leaderEpochFile   = ".repl-epoch.json"
)

// ErrFenced reports a replication message from a stale epoch: the
// deposed-leader (or already-promoted-follower) signal, surfaced over
// HTTP as 409 Conflict.
var ErrFenced = errors.New("repl: fenced: message from a stale epoch")

// followerState is the follower's durable resume point. It is persisted
// after a batch is applied, never before — so a crash between apply and
// persist re-ships ops the store already holds, which the per-kind
// idempotent apply skips.
type followerState struct {
	Epoch   uint64 `json:"epoch"`
	Applied uint64 `json:"applied"`
}

func loadFollowerState(dataDir string) (followerState, error) {
	var st followerState
	b, err := os.ReadFile(filepath.Join(dataDir, followerStateFile))
	if errors.Is(err, os.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return st, fmt.Errorf("repl: reading follower state: %w", err)
	}
	if err := json.Unmarshal(b, &st); err != nil {
		return st, fmt.Errorf("repl: decoding follower state: %w", err)
	}
	return st, nil
}

func persistFollowerState(dataDir string, st followerState) error {
	b, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return store.AtomicWrite(filepath.Join(dataDir, followerStateFile), b)
}

// leaderEpochState records the highest epoch this node ever opened as a
// leader.
type leaderEpochState struct {
	Epoch uint64 `json:"epoch"`
}

func loadLeaderEpoch(dataDir string) (uint64, error) {
	b, err := os.ReadFile(filepath.Join(dataDir, leaderEpochFile))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("repl: reading leader epoch: %w", err)
	}
	var st leaderEpochState
	if err := json.Unmarshal(b, &st); err != nil {
		return 0, fmt.Errorf("repl: decoding leader epoch: %w", err)
	}
	return st.Epoch, nil
}

func persistLeaderEpoch(dataDir string, epoch uint64) error {
	b, err := json.Marshal(leaderEpochState{Epoch: epoch})
	if err != nil {
		return err
	}
	return store.AtomicWrite(filepath.Join(dataDir, leaderEpochFile), b)
}

// NextLeaderEpoch mints the epoch for a leader boot: strictly greater
// than every epoch this node ever opened as a leader AND every epoch it
// ever followed, persisted before use. The "ever followed" half matters
// when a node that served as a follower is restarted as a leader by an
// operator — its epoch must still beat the feed it was consuming.
//
// With no data dir the epoch cannot be made durable; the constant 1 is
// returned and replication must not be configured (cmd/fusiond enforces
// this pairing).
func NextLeaderEpoch(dataDir string) (uint64, error) {
	if dataDir == "" {
		return 1, nil
	}
	// First boot on a fresh data dir: the epoch file is written before any
	// tenant directory exists.
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return 0, fmt.Errorf("repl: creating data dir: %w", err)
	}
	led, err := loadLeaderEpoch(dataDir)
	if err != nil {
		return 0, err
	}
	fol, err := loadFollowerState(dataDir)
	if err != nil {
		return 0, err
	}
	next := led + 1
	if fol.Epoch >= next {
		next = fol.Epoch + 1
	}
	if err := persistLeaderEpoch(dataDir, next); err != nil {
		return 0, err
	}
	return next, nil
}
