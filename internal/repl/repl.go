// Package repl is fusiond's replication plane: a leader ships the
// ordered feed of durable store mutations (store.Op, published by
// store.Tee) to f follower daemons, each of which applies them to its
// own store.Dir and maintains a warm sim registry mirror, so losing the
// leader node costs one promotion — not a rebuild, not the tenants'
// state.
//
// This is the paper's own argument applied to the daemon that serves it:
// fusiond already recovers *simulated* clusters from specs, snapshots,
// and WAL replay; the replication plane streams exactly those records to
// backups, making the tenant registries themselves the fault-tolerant
// state machines. internal/replication holds the paper's Section 1
// baseline (naive f+1 copies); this package is the engineered version
// with sequence-numbered shipping, idempotent resume, and fencing.
//
// Protocol (all JSON over the daemon's own HTTP listener):
//
//	GET  /repl/status   NodeStatus: role, epoch, applied/head seq
//	POST /repl/apply    Batch of ops; follower applies in order
//	POST /repl/sync     FullState transfer; follower rebuilds from it
//	POST /repl/promote  fence this follower and hand its state to serving
//	GET  /repl/feed     pull ops after a seq (debugging / catch-up)
//
// Ordering and fencing: ops are totally ordered by (epoch, seq). A
// leader opens a new epoch every boot (monotonic, persisted), so a
// follower that sees a higher epoch resynchronizes by full state
// transfer, and a follower that was promoted — which bumps its epoch
// past every epoch it ever saw — refuses the deposed leader's late
// batches outright. Within an epoch, a follower applies seq n+1 only on
// top of applied seq n; duplicates are skipped per-kind idempotently
// (append ops carry the PrevWAL anchor, so a batch that half-landed
// before a crash resumes at exactly the missing suffix, with the
// replica's torn WAL tail repaired by the store on reopen).
package repl

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/store"
)

// Batch is one leader→follower shipment: ops in ascending seq order,
// all from the same epoch. LogSeq is the leader's feed head at ship
// time, letting the follower compute its lag even mid-stream.
type Batch struct {
	Epoch  uint64     `json:"epoch"`
	LogSeq uint64     `json:"logSeq"`
	Ops    []store.Op `json:"ops"`
}

// NodeStatus reports a node's replication position — the /repl/status
// body and the /repl/apply response.
type NodeStatus struct {
	Role    string `json:"role"`
	Epoch   uint64 `json:"epoch"`
	Applied uint64 `json:"applied"`
	// LogSeq is the feed head: the leader's own on a leader, the last
	// head heard from the leader on a follower.
	LogSeq uint64 `json:"logSeq"`
	// NeedSync asks the shipper for a full state transfer (epoch moved
	// on, or the feed no longer retains the follower's resume point).
	NeedSync bool `json:"needSync,omitempty"`
}

// Lag is how many feed records the node is behind the head it knows of.
func (s NodeStatus) Lag() uint64 {
	if s.LogSeq <= s.Applied {
		return 0
	}
	return s.LogSeq - s.Applied
}

// TenantState is one tenant's full durable state in a transfer.
type TenantState struct {
	Name     string         `json:"name"`
	Clusters []store.Record `json:"clusters"`
}

// FullState is a complete state transfer: everything a follower needs to
// serve reads and resume the feed at (Epoch, Seq). Seq is captured
// before the tenant stores are read, so ops racing the read are
// re-shipped afterwards and deduplicated by the follower's idempotent
// apply — the transfer never needs a write freeze.
type FullState struct {
	Epoch   uint64        `json:"epoch"`
	Seq     uint64        `json:"seq"`
	Tenants []TenantState `json:"tenants"`
}

// validTenant vets a tenant name arriving in a replicated op before it
// becomes a directory under the follower's data dir. Same rules as the
// serving layer's tenant header validation: header- and filesystem-safe
// charset, no leading dot (".." must never walk out of the data dir).
func validTenant(name string) error {
	if len(name) > 64 {
		return fmt.Errorf("repl: tenant name longer than 64 bytes")
	}
	if name == "" || name[0] == '.' {
		return fmt.Errorf("repl: tenant name %q must not start with '.'", name)
	}
	for _, c := range name {
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.' {
			continue
		}
		return fmt.Errorf("repl: tenant name contains %q; use [A-Za-z0-9._-]", c)
	}
	return nil
}

// --- HTTP client plumbing (used by the shipper) ---------------------------

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, bytes.TrimSpace(body))
	}
	return json.Unmarshal(body, out)
}

// postJSON posts v and decodes the response into out (when non-nil).
// A 409 Conflict — the fencing status — is returned as *FencedError with
// the decoded body, so callers can distinguish "refused by a newer
// epoch" from transport failures.
func postJSON(client *http.Client, url string, v any, out any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusConflict {
		fe := &FencedError{}
		json.Unmarshal(body, &fe.Status) //nolint:errcheck // best-effort detail
		return fe
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: %s: %s", url, resp.Status, bytes.TrimSpace(body))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// FencedError reports that a peer refused a shipment because it is no
// longer a follower of this leader's epoch — the deposed-leader signal.
type FencedError struct {
	Status NodeStatus
}

func (e *FencedError) Error() string {
	return fmt.Sprintf("repl: fenced by peer (role %s, epoch %d)", e.Status.Role, e.Status.Epoch)
}

// defaultHTTPClient bounds every replication exchange; full syncs can be
// large, so the timeout is generous relative to the apply path.
func defaultHTTPClient() *http.Client {
	return &http.Client{Timeout: 30 * time.Second}
}
