package repl

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// followerServer exposes a real Follower over the same three routes the
// production server mounts, so the Leader's shipping loop is exercised
// end to end without the full daemon.
func followerServer(t *testing.T, f *Follower) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	reply := func(w http.ResponseWriter, st NodeStatus, err error) {
		if errors.Is(err, ErrFenced) {
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(f.Status()) //nolint:errcheck
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(st) //nolint:errcheck
	}
	mux.HandleFunc("GET /repl/status", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(f.Status()) //nolint:errcheck
	})
	mux.HandleFunc("POST /repl/apply", func(w http.ResponseWriter, r *http.Request) {
		var b Batch
		if err := json.NewDecoder(r.Body).Decode(&b); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		st, err := f.Apply(b)
		reply(w, st, err)
	})
	mux.HandleFunc("POST /repl/sync", func(w http.ResponseWriter, r *http.Request) {
		var fs FullState
		if err := json.NewDecoder(r.Body).Decode(&fs); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		st, err := f.FullSync(fs)
		reply(w, st, err)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func newTestLeader(t *testing.T, lr *leaderRig, replicas ...string) *Leader {
	t.Helper()
	l := NewLeader(lr.log, LeaderOptions{
		Replicas: replicas,
		StateFn: func() (FullState, error) {
			recs, err := lr.dir.Load()
			if err != nil {
				return FullState{}, err
			}
			return FullState{
				Seq:     lr.log.Seq(),
				Tenants: []TenantState{{Name: "default", Clusters: recs}},
			}, nil
		},
		Heartbeat: 50 * time.Millisecond,
		RetryBase: 10 * time.Millisecond,
		RetryMax:  100 * time.Millisecond,
	})
	l.Start()
	t.Cleanup(l.Close)
	return l
}

// TestLeaderShipsAndAcks: the shipper full-syncs a virgin follower,
// streams subsequent ops, and WaitAcked observes the follower's acks.
func TestLeaderShipsAndAcks(t *testing.T) {
	lr := newLeaderRig(t, 1, 1000)
	f := openFollower(t, t.TempDir())
	defer f.Close()
	srv := followerServer(t, f)

	l := newTestLeader(t, lr, srv.URL)
	id := lr.addCluster(t, 1)
	lr.drive(t, id, []string{"0", "1", "1"})

	head := lr.log.Seq()
	if !l.WaitAcked(head, 1, 5*time.Second) {
		t.Fatalf("follower never acked seq %d; stats: %+v", head, l.Stats())
	}
	assertMirrored(t, lr, f, id)
	stats := l.Stats()
	if len(stats) != 1 || stats[0].Acked < head {
		t.Fatalf("stats = %+v, want acked >= %d", stats, head)
	}
	if ok, reason := f.Ready(); !ok {
		t.Fatalf("shipped follower not ready: %s", reason)
	}

	// More writes while the link is warm: pure streaming this time.
	lr.drive(t, id, []string{"0"})
	head = lr.log.Seq()
	if !l.WaitAcked(head, 1, 5*time.Second) {
		t.Fatalf("follower never acked streamed seq %d", head)
	}
	assertMirrored(t, lr, f, id)
}

// TestLeaderRetriesOnFailure: an unreachable replica accumulates retry
// counts (the /metrics ship-retries series) without wedging the leader.
func TestLeaderRetriesOnFailure(t *testing.T) {
	lr := newLeaderRig(t, 1, 1000)
	// A server that is immediately closed: every exchange fails fast.
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close()

	l := newTestLeader(t, lr, srv.URL)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := l.Stats()
		if len(st) == 1 && st[0].Retries >= 2 && st[0].LastErr != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retries never accumulated: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if l.WaitAcked(lr.log.Seq(), 1, 50*time.Millisecond) {
		t.Fatal("WaitAcked reported an ack from an unreachable replica")
	}
}

// TestLeaderFencedByPromotedFollower: once the follower promotes, the
// old leader's exchanges are refused and its stats mark the replica
// fenced rather than retrying forever.
func TestLeaderFencedByPromotedFollower(t *testing.T) {
	lr := newLeaderRig(t, 1, 1000)
	f := openFollower(t, t.TempDir())
	defer f.Close()
	srv := followerServer(t, f)

	l := newTestLeader(t, lr, srv.URL)
	id := lr.addCluster(t, 1)
	lr.drive(t, id, []string{"0"})
	if !l.WaitAcked(lr.log.Seq(), 1, 5*time.Second) {
		t.Fatal("initial ship never acked")
	}

	if _, tens, err := f.Promote(); err != nil {
		t.Fatal(err)
	} else {
		for _, pt := range tens {
			pt.Store.Close()
		}
	}
	lr.drive(t, id, []string{"1"}) // deposed leader keeps writing

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := l.Stats()
		if len(st) == 1 && st[0].Fenced {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leader never noticed the fence: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
