package repl

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/exec"
	"repro/internal/sim"
	"repro/internal/store"
)

// FollowerOptions configures a replication follower.
type FollowerOptions struct {
	// DataDir is the follower's own durable root; required.
	DataDir string
	// Pool runs cluster rebuilds for the warm mirrors; nil means the
	// shared default pool.
	Pool *exec.Pool
	// LagThreshold is the applied-vs-head gap (in feed records) beyond
	// which the follower reports not-ready; 0 means DefaultLagThreshold.
	LagThreshold uint64
	// Dir configures the tenant stores the follower opens (group commit,
	// batch tuning, flush observability). A follower applies the feed
	// single-threaded, so batching wins little here, but carrying the
	// same options as the leader means a promoted store keeps the
	// operator's durability configuration.
	Dir store.DirOptions
}

// DefaultLagThreshold is the replication lag at which a follower stops
// reporting ready.
const DefaultLagThreshold = 1024

// followerTenant is one tenant's replica: its own Dir store (the
// durable truth on this node) plus a warm detached registry mirror that
// serves reads and, at promotion, becomes the authoritative registry
// with zero replay. walLen tracks each record's current-generation WAL
// length — the follower-side idempotency anchor matching Op.PrevWAL.
type followerTenant struct {
	store  *store.Dir
	reg    *sim.Registry
	walLen map[string]int
}

// Follower applies a leader's op feed to local state. All mutation
// entry points (Apply, FullSync, Promote) serialize on one mutex — the
// feed is ordered, so there is nothing to gain from concurrency, and
// serialization makes the crash-resume reasoning airtight.
type Follower struct {
	opts FollowerOptions
	pool *exec.Pool

	mu        sync.Mutex
	epoch     uint64
	applied   uint64
	leaderSeq uint64 // feed head last heard from the leader
	contacted bool   // any leader exchange since boot
	fenced    bool   // promoted (or shutting down): refuse all shipments
	tenants   map[string]*followerTenant
}

// OpenFollower loads the follower's durable resume point and rebuilds a
// warm mirror for every tenant directory under DataDir. The store layer
// repairs torn WAL tails during Load, so a replica that lost power
// mid-append resumes from its last complete record and the leader
// re-ships the rest.
func OpenFollower(opts FollowerOptions) (*Follower, error) {
	if opts.DataDir == "" {
		return nil, fmt.Errorf("repl: follower requires a data dir")
	}
	if opts.LagThreshold == 0 {
		opts.LagThreshold = DefaultLagThreshold
	}
	pool := opts.Pool
	if pool == nil {
		pool = exec.Default()
	}
	if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("repl: creating data dir: %w", err)
	}
	st, err := loadFollowerState(opts.DataDir)
	if err != nil {
		return nil, err
	}
	f := &Follower{
		opts:    opts,
		pool:    pool,
		epoch:   st.Epoch,
		applied: st.Applied,
		tenants: make(map[string]*followerTenant),
	}
	entries, err := os.ReadDir(opts.DataDir)
	if err != nil {
		return nil, fmt.Errorf("repl: scanning data dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || validTenant(e.Name()) != nil {
			continue
		}
		if _, err := f.openTenant(e.Name()); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// openTenant opens (or creates) one tenant replica and its warm mirror.
// Callers hold f.mu or own f exclusively.
func (f *Follower) openTenant(name string) (*followerTenant, error) {
	dir, err := store.NewDirWith(filepath.Join(f.opts.DataDir, name), f.opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("repl: opening tenant %q: %w", name, err)
	}
	reg, walLens, err := sim.LoadDetachedRegistry(f.pool, dir)
	if err != nil {
		dir.Close()
		return nil, fmt.Errorf("repl: rebuilding tenant %q mirror: %w", name, err)
	}
	ft := &followerTenant{store: dir, reg: reg, walLen: walLens}
	f.tenants[name] = ft
	return ft, nil
}

func (f *Follower) tenant(name string) (*followerTenant, error) {
	if ft, ok := f.tenants[name]; ok {
		return ft, nil
	}
	if err := validTenant(name); err != nil {
		return nil, err
	}
	return f.openTenant(name)
}

// Status reports the follower's replication position.
func (f *Follower) Status() NodeStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.statusLocked()
}

func (f *Follower) statusLocked() NodeStatus {
	return NodeStatus{
		Role:    "follower",
		Epoch:   f.epoch,
		Applied: f.applied,
		LogSeq:  f.leaderSeq,
	}
}

// Ready reports whether the follower can be trusted for (stale) reads
// and as a promotion target: it has heard from a leader since boot and
// is within the configured lag threshold. The string names what is
// missing when not ready.
func (f *Follower) Ready() (bool, string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fenced {
		return false, "fenced"
	}
	if !f.contacted {
		return false, "no leader contact since boot"
	}
	if lag := f.statusLocked().Lag(); lag > f.opts.LagThreshold {
		return false, fmt.Sprintf("replication lag %d exceeds threshold %d", lag, f.opts.LagThreshold)
	}
	return true, ""
}

// Registry returns a tenant's warm mirror for read serving.
func (f *Follower) Registry(name string) (*sim.Registry, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ft, ok := f.tenants[name]
	if !ok {
		return nil, false
	}
	return ft.reg, true
}

// TenantNames lists the replicated tenants, sorted.
func (f *Follower) TenantNames() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.tenants))
	for name := range f.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Apply ingests one leader batch. Fencing first: a batch from an epoch
// below the follower's own — a deposed leader — is refused with
// ErrFenced (HTTP 409). A batch from a later epoch than the follower
// has synced to requests a full state transfer via NeedSync, as does a
// sequence gap (the leader's feed was trimmed past our resume point
// combined with a stale probe). Within the epoch, ops at or below the
// applied mark are duplicates from a crash-resume and are skipped
// per-kind idempotently.
//
// An empty-op batch is the leader's heartbeat: it refreshes the
// follower's view of the feed head (for lag accounting) without
// touching durable state.
func (f *Follower) Apply(b Batch) (NodeStatus, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fenced || b.Epoch < f.epoch {
		return f.statusLocked(), ErrFenced
	}
	if b.Epoch > f.epoch {
		st := f.statusLocked()
		st.NeedSync = true
		return st, nil
	}
	f.contacted = true
	if b.LogSeq > f.leaderSeq {
		f.leaderSeq = b.LogSeq
	}
	applied := f.applied
	for _, op := range b.Ops {
		if op.Seq <= applied {
			continue // crash-resume duplicate
		}
		if op.Seq != applied+1 {
			st := f.statusLocked()
			st.NeedSync = true
			return st, nil
		}
		if err := f.applyOp(op); err != nil {
			return f.statusLocked(), err
		}
		applied = op.Seq
	}
	if applied != f.applied {
		if err := persistFollowerState(f.opts.DataDir, followerState{Epoch: f.epoch, Applied: applied}); err != nil {
			return f.statusLocked(), err
		}
		f.applied = applied
		if f.applied > f.leaderSeq {
			f.leaderSeq = f.applied
		}
	}
	return f.statusLocked(), nil
}

// applyOp applies one op to the tenant's store and warm mirror. The
// store commit comes first; the mirror is rebuilt from the store on
// restart, so a crash between the two cannot diverge them. Every kind
// is idempotent against partial re-delivery:
//
//   - put: skipped when the record already exists;
//   - append: anchored by PrevWAL — only the suffix the store does not
//     yet hold is appended (a batch that half-landed before a crash,
//     its torn tail repaired on reopen, resumes exactly);
//   - snapshot: re-applying rewrites the same state under a bumped
//     generation;
//   - remove: skipped when the record is already gone.
func (f *Follower) applyOp(op store.Op) error {
	ft, err := f.tenant(op.Tenant)
	if err != nil {
		return err
	}
	switch op.Kind {
	case store.OpPut:
		if _, ok := ft.walLen[op.ID]; ok {
			return nil
		}
		if err := ft.store.Put(op.ID, op.Data); err != nil {
			return fmt.Errorf("repl: put %s/%s: %w", op.Tenant, op.ID, err)
		}
		ft.walLen[op.ID] = 0
		if op.ID == sim.MetaRecordID {
			seq, err := sim.RegistryMetaSeq(op.Data)
			if err != nil {
				return err
			}
			ft.reg.EnsureSeq(seq)
			return nil
		}
		var spec sim.ClusterSpec
		if err := json.Unmarshal(op.Data, &spec); err != nil {
			return fmt.Errorf("repl: decoding spec of %s/%s: %w", op.Tenant, op.ID, err)
		}
		c, err := sim.NewClusterFromSpecOn(f.pool, &spec)
		if err != nil {
			return fmt.Errorf("repl: rebuilding %s/%s: %w", op.Tenant, op.ID, err)
		}
		return ft.reg.Attach(op.ID, c)
	case store.OpAppend:
		cur, ok := ft.walLen[op.ID]
		if !ok {
			return fmt.Errorf("repl: append for unknown cluster %s/%s", op.Tenant, op.ID)
		}
		want := op.PrevWAL + len(op.Recs)
		if cur >= want {
			return nil // fully landed before the crash
		}
		if cur < op.PrevWAL {
			return fmt.Errorf("repl: append anchor gap on %s/%s: have %d records, op expects %d",
				op.Tenant, op.ID, cur, op.PrevWAL)
		}
		recs := op.Recs[cur-op.PrevWAL:]
		if err := ft.store.AppendEvents(op.ID, recs); err != nil {
			return fmt.Errorf("repl: append %s/%s: %w", op.Tenant, op.ID, err)
		}
		ft.walLen[op.ID] = want
		if h, ok := ft.reg.Get(op.ID); ok {
			if err := h.Replay(recs); err != nil {
				return fmt.Errorf("repl: mirror replay %s/%s: %w", op.Tenant, op.ID, err)
			}
		}
		return nil
	case store.OpSnapshot:
		if _, ok := ft.walLen[op.ID]; !ok {
			return fmt.Errorf("repl: snapshot for unknown cluster %s/%s", op.Tenant, op.ID)
		}
		if err := ft.store.Snapshot(op.ID, op.Data); err != nil {
			return fmt.Errorf("repl: snapshot %s/%s: %w", op.Tenant, op.ID, err)
		}
		ft.walLen[op.ID] = 0
		if op.ID == sim.MetaRecordID {
			seq, err := sim.RegistryMetaSeq(op.Data)
			if err != nil {
				return err
			}
			ft.reg.EnsureSeq(seq)
			return nil
		}
		if h, ok := ft.reg.Get(op.ID); ok {
			if err := h.RestoreSnapshot(op.Data); err != nil {
				return fmt.Errorf("repl: mirror restore %s/%s: %w", op.Tenant, op.ID, err)
			}
		}
		return nil
	case store.OpRemove:
		if _, ok := ft.walLen[op.ID]; !ok {
			return nil // already gone
		}
		if err := ft.store.Remove(op.ID); err != nil {
			return fmt.Errorf("repl: remove %s/%s: %w", op.Tenant, op.ID, err)
		}
		delete(ft.walLen, op.ID)
		ft.reg.Remove(op.ID) //nolint:errcheck // detached registry: map delete only
		return nil
	default:
		return fmt.Errorf("repl: unknown op kind %q", op.Kind)
	}
}

// FullSync replaces the follower's entire state with a leader transfer:
// every tenant directory is wiped and rebuilt from the shipped records,
// warm mirrors are reconstructed, and the resume point jumps to the
// transfer's (Epoch, Seq). Ops the leader committed after capturing Seq
// arrive as ordinary batches and dedupe through the idempotent apply.
func (f *Follower) FullSync(state FullState) (NodeStatus, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fenced || state.Epoch < f.epoch {
		return f.statusLocked(), ErrFenced
	}
	for _, ft := range f.tenants {
		ft.store.Close() //nolint:errcheck // directory is removed next
	}
	f.tenants = make(map[string]*followerTenant)
	// Wipe from disk, not from the (possibly partial) tenant map, so a
	// transfer that failed halfway last time leaves nothing stale behind.
	entries, err := os.ReadDir(f.opts.DataDir)
	if err != nil {
		return f.statusLocked(), fmt.Errorf("repl: scanning data dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || validTenant(e.Name()) != nil {
			continue
		}
		if err := os.RemoveAll(filepath.Join(f.opts.DataDir, e.Name())); err != nil {
			return f.statusLocked(), fmt.Errorf("repl: wiping tenant %q: %w", e.Name(), err)
		}
	}
	for _, ts := range state.Tenants {
		if err := validTenant(ts.Name); err != nil {
			return f.statusLocked(), err
		}
		ft, err := f.openTenant(ts.Name)
		if err != nil {
			return f.statusLocked(), err
		}
		for _, rec := range ts.Clusters {
			if err := ft.store.Put(rec.ID, rec.Spec); err != nil {
				return f.statusLocked(), fmt.Errorf("repl: sync put %s/%s: %w", ts.Name, rec.ID, err)
			}
			if rec.Snapshot != nil {
				if err := ft.store.Snapshot(rec.ID, rec.Snapshot); err != nil {
					return f.statusLocked(), fmt.Errorf("repl: sync snapshot %s/%s: %w", ts.Name, rec.ID, err)
				}
			}
			if len(rec.WAL) > 0 {
				if err := ft.store.AppendEvents(rec.ID, rec.WAL); err != nil {
					return f.statusLocked(), fmt.Errorf("repl: sync append %s/%s: %w", ts.Name, rec.ID, err)
				}
			}
		}
		// Rebuild the mirror from what just landed durably, replacing the
		// empty one openTenant made.
		reg, walLens, err := sim.LoadDetachedRegistry(f.pool, ft.store)
		if err != nil {
			return f.statusLocked(), fmt.Errorf("repl: sync mirror %q: %w", ts.Name, err)
		}
		ft.reg, ft.walLen = reg, walLens
	}
	if err := persistFollowerState(f.opts.DataDir, followerState{Epoch: state.Epoch, Applied: state.Seq}); err != nil {
		return f.statusLocked(), err
	}
	f.epoch = state.Epoch
	f.applied = state.Seq
	f.leaderSeq = state.Seq
	f.contacted = true
	return f.statusLocked(), nil
}

// PromotedTenant is one tenant's state handed from a fenced follower to
// the serving layer at promotion.
type PromotedTenant struct {
	Name    string
	Store   *store.Dir
	Reg     *sim.Registry
	WalLens map[string]int
}

// Promote fences the follower and hands its state over: the new epoch
// (strictly greater than every epoch this node followed, persisted to
// both state files before the method returns, so a deposed leader's
// late shipments are refused even across a restart) plus each tenant's
// store, warm registry, and WAL-length map, ready for Registry.Bind.
// The follower keeps answering /repl/status as fenced but owns no
// tenant state afterwards; Close becomes a no-op.
func (f *Follower) Promote() (uint64, []PromotedTenant, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fenced {
		return 0, nil, ErrFenced
	}
	newEpoch := f.epoch + 1
	if err := persistLeaderEpoch(f.opts.DataDir, newEpoch); err != nil {
		return 0, nil, err
	}
	if err := persistFollowerState(f.opts.DataDir, followerState{Epoch: newEpoch, Applied: f.applied}); err != nil {
		return 0, nil, err
	}
	f.fenced = true
	f.epoch = newEpoch
	names := make([]string, 0, len(f.tenants))
	for name := range f.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]PromotedTenant, 0, len(names))
	for _, name := range names {
		ft := f.tenants[name]
		out = append(out, PromotedTenant{Name: name, Store: ft.store, Reg: ft.reg, WalLens: ft.walLen})
	}
	f.tenants = nil
	return newEpoch, out, nil
}

// Close releases the follower's stores (unless Promote already handed
// them off) and fences future applies.
func (f *Follower) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fenced = true
	var first error
	for _, ft := range f.tenants {
		if err := ft.store.Close(); err != nil && first == nil {
			first = err
		}
	}
	f.tenants = nil
	return first
}
