package repl

import (
	"errors"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"

	"repro/internal/store"
)

// LeaderOptions configures the shipping side of the replication plane.
type LeaderOptions struct {
	// Replicas are follower base URLs (scheme://host:port, no trailing
	// slash required).
	Replicas []string
	// StateFn produces a full state transfer for a follower that cannot
	// resume incrementally. It must capture the feed Seq BEFORE reading
	// tenant stores (ops racing the read are then re-shipped and deduped
	// by the follower); the shipper stamps the Epoch.
	StateFn func() (FullState, error)
	// Client overrides the HTTP client (tests); nil means a 30s-timeout
	// default.
	Client *http.Client
	// MaxBatch bounds ops per shipment; 0 means 256.
	MaxBatch int
	// RetryBase/RetryMax bound the jittered exponential backoff after a
	// failed exchange; zero means 100ms / 5s.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Heartbeat is the idle interval at which an empty batch refreshes a
	// follower's view of the feed head; 0 means 2s.
	Heartbeat time.Duration
	// Rand supplies jitter in [0,1); nil means math/rand/v2. Tests pin
	// it for determinism.
	Rand func() float64
}

// ReplicaStatus is one follower's shipping state, surfaced in /metrics
// and /repl/status.
type ReplicaStatus struct {
	URL     string `json:"url"`
	Acked   uint64 `json:"acked"`
	Retries uint64 `json:"retries"`
	Fenced  bool   `json:"fenced,omitempty"`
	LastErr string `json:"lastErr,omitempty"`
}

type replica struct {
	url string

	mu      sync.Mutex
	acked   uint64
	retries uint64
	fenced  bool
	lastErr string
}

// Leader ships a Log's ops to every configured follower: one goroutine
// per replica, each independently probing the follower's position,
// full-syncing when it cannot resume (fresh follower, epoch change, or
// feed trimmed past its resume point), then streaming batches as the
// Log grows. Failed exchanges retry with jittered exponential backoff;
// a fencing response (the follower was promoted past this leader's
// epoch) parks the shipper at the maximum backoff — the deposed leader
// keeps serving its local state but can no longer replicate, which is
// exactly the fencing contract.
type Leader struct {
	log      *store.Log
	opts     LeaderOptions
	client   *http.Client
	replicas []*replica

	mu      sync.Mutex
	ackWake chan struct{}

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewLeader builds the shipping plane for log. Call Start to begin.
func NewLeader(log *store.Log, opts LeaderOptions) *Leader {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 256
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 100 * time.Millisecond
	}
	if opts.RetryMax <= 0 {
		opts.RetryMax = 5 * time.Second
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 2 * time.Second
	}
	if opts.Rand == nil {
		opts.Rand = rand.Float64
	}
	client := opts.Client
	if client == nil {
		client = defaultHTTPClient()
	}
	l := &Leader{
		log:     log,
		opts:    opts,
		client:  client,
		ackWake: make(chan struct{}),
		stop:    make(chan struct{}),
	}
	for _, url := range opts.Replicas {
		l.replicas = append(l.replicas, &replica{url: url})
	}
	return l
}

// Start launches one shipper per replica.
func (l *Leader) Start() {
	for _, rep := range l.replicas {
		l.wg.Add(1)
		go l.ship(rep)
	}
}

// Close stops every shipper and waits for them.
func (l *Leader) Close() {
	l.stopOnce.Do(func() { close(l.stop) })
	l.wg.Wait()
}

// Stats snapshots every replica's shipping state.
func (l *Leader) Stats() []ReplicaStatus {
	out := make([]ReplicaStatus, 0, len(l.replicas))
	for _, rep := range l.replicas {
		rep.mu.Lock()
		out = append(out, ReplicaStatus{
			URL: rep.url, Acked: rep.acked, Retries: rep.retries,
			Fenced: rep.fenced, LastErr: rep.lastErr,
		})
		rep.mu.Unlock()
	}
	return out
}

// AckedCount reports how many replicas have acknowledged seq.
func (l *Leader) AckedCount(seq uint64) int {
	n := 0
	for _, rep := range l.replicas {
		rep.mu.Lock()
		if rep.acked >= seq {
			n++
		}
		rep.mu.Unlock()
	}
	return n
}

// WaitAcked blocks until at least need replicas have acknowledged seq,
// or the timeout elapses, or the leader is closed. It reports whether
// the quorum was reached.
func (l *Leader) WaitAcked(seq uint64, need int, timeout time.Duration) bool {
	if need <= 0 {
		return true
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		if l.AckedCount(seq) >= need {
			return true
		}
		l.mu.Lock()
		wake := l.ackWake
		l.mu.Unlock()
		select {
		case <-wake:
		case <-timer.C:
			return false
		case <-l.stop:
			return false
		}
	}
}

// setAcked records a replica's acknowledged position and wakes quorum
// waiters.
func (l *Leader) setAcked(rep *replica, seq uint64) {
	rep.mu.Lock()
	if seq > rep.acked {
		rep.acked = seq
	}
	rep.fenced = false
	rep.lastErr = ""
	rep.mu.Unlock()
	l.mu.Lock()
	close(l.ackWake)
	l.ackWake = make(chan struct{})
	l.mu.Unlock()
}

func (l *Leader) noteErr(rep *replica, err error) {
	rep.mu.Lock()
	rep.retries++
	rep.lastErr = err.Error()
	rep.mu.Unlock()
}

func (l *Leader) noteFenced(rep *replica, err error) {
	rep.mu.Lock()
	rep.retries++
	rep.fenced = true
	rep.lastErr = err.Error()
	rep.mu.Unlock()
}

// sleep waits d scaled by jitter in [0.5, 1.5); false means the leader
// closed.
func (l *Leader) sleep(d time.Duration) bool {
	d = time.Duration(float64(d) * (0.5 + l.opts.Rand()))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-l.stop:
		return false
	}
}

func (l *Leader) bump(d time.Duration) time.Duration {
	d *= 2
	if d > l.opts.RetryMax {
		d = l.opts.RetryMax
	}
	return d
}

// ship is one replica's shipping loop.
func (l *Leader) ship(rep *replica) {
	defer l.wg.Done()
	sub := l.log.Subscribe()
	ticker := time.NewTicker(l.opts.Heartbeat)
	defer ticker.Stop()
	backoff := l.opts.RetryBase
	synced := false
	var applied uint64
	for {
		select {
		case <-l.stop:
			return
		default:
		}
		if !synced {
			var st NodeStatus
			if err := getJSON(l.client, rep.url+"/repl/status", &st); err != nil {
				l.noteErr(rep, err)
				if !l.sleep(backoff) {
					return
				}
				backoff = l.bump(backoff)
				continue
			}
			if st.Role == "follower" && st.Epoch == l.log.Epoch() && !st.NeedSync {
				if _, ok := l.log.Since(st.Applied, 1); ok {
					// Resumable: the feed still holds everything past the
					// follower's position.
					applied = st.Applied
					synced = true
					backoff = l.opts.RetryBase
					l.setAcked(rep, applied)
					continue
				}
			}
			if st.Role != "follower" || st.Epoch > l.log.Epoch() {
				l.noteFenced(rep, &FencedError{Status: st})
				if !l.sleep(l.opts.RetryMax) {
					return
				}
				continue
			}
			state, err := l.opts.StateFn()
			if err != nil {
				l.noteErr(rep, err)
				if !l.sleep(backoff) {
					return
				}
				backoff = l.bump(backoff)
				continue
			}
			state.Epoch = l.log.Epoch()
			var resp NodeStatus
			if err := postJSON(l.client, rep.url+"/repl/sync", state, &resp); err != nil {
				if errors.As(err, new(*FencedError)) {
					l.noteFenced(rep, err)
					if !l.sleep(l.opts.RetryMax) {
						return
					}
					continue
				}
				l.noteErr(rep, err)
				if !l.sleep(backoff) {
					return
				}
				backoff = l.bump(backoff)
				continue
			}
			applied = resp.Applied
			synced = true
			backoff = l.opts.RetryBase
			l.setAcked(rep, applied)
			continue
		}
		ops, ok := l.log.Since(applied, l.opts.MaxBatch)
		if !ok {
			synced = false
			continue
		}
		if len(ops) == 0 {
			select {
			case <-l.stop:
				return
			case <-sub:
				continue
			case <-ticker.C:
				// Idle heartbeat: an empty batch keeps the follower's view
				// of the head (and its readiness lag) fresh and detects
				// fencing promptly.
			}
		}
		batch := Batch{Epoch: l.log.Epoch(), LogSeq: l.log.Seq(), Ops: ops}
		var resp NodeStatus
		if err := postJSON(l.client, rep.url+"/repl/apply", batch, &resp); err != nil {
			if errors.As(err, new(*FencedError)) {
				l.noteFenced(rep, err)
				if !l.sleep(l.opts.RetryMax) {
					return
				}
				synced = false
				continue
			}
			l.noteErr(rep, err)
			if !l.sleep(backoff) {
				return
			}
			backoff = l.bump(backoff)
			synced = false
			continue
		}
		if resp.NeedSync {
			synced = false
			continue
		}
		if resp.Applied > applied {
			applied = resp.Applied
		}
		l.setAcked(rep, applied)
		backoff = l.opts.RetryBase
	}
}
