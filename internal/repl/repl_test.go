package repl

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dfsm"
	"repro/internal/machines"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/trace"
)

// leaderRig is a minimal in-process leader: a Dir store teed into an op
// feed, with a stored sim registry journaling through the Tee — exactly
// the production write path, minus HTTP.
type leaderRig struct {
	log *store.Log
	dir *store.Dir
	reg *sim.Registry
}

func newLeaderRig(t *testing.T, epoch uint64, compactEvery int) *leaderRig {
	t.Helper()
	dir, err := store.NewDir(filepath.Join(t.TempDir(), "default"))
	if err != nil {
		t.Fatal(err)
	}
	log := store.NewLog(epoch, 0)
	tee := store.NewTee("default", dir, log)
	reg := sim.NewStoredRegistry(0, tee, compactEvery)
	return &leaderRig{log: log, dir: dir, reg: reg}
}

func (lr *leaderRig) addCluster(t *testing.T, seed int64) string {
	t.Helper()
	c, err := sim.NewCluster([]*dfsm.Machine{machines.ZeroCounter(), machines.OneCounter()}, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	id, err := lr.reg.Add(c)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func (lr *leaderRig) drive(t *testing.T, id string, events []string, faults ...trace.Fault) {
	t.Helper()
	h, ok := lr.reg.Get(id)
	if !ok {
		t.Fatalf("no cluster %q", id)
	}
	if err := h.Update(func(tx *sim.Tx) error {
		tx.ApplyAll(events)
		for _, f := range faults {
			if err := tx.Inject(f); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// ship mirrors the shipper: full-sync on epoch mismatch, then stream
// everything past the follower's applied mark in one batch.
func ship(t *testing.T, lr *leaderRig, f *Follower) NodeStatus {
	t.Helper()
	st := f.Status()
	if st.Epoch != lr.log.Epoch() {
		var err error
		if st, err = f.FullSync(fullStateOf(t, lr, lr.log.Epoch())); err != nil {
			t.Fatal(err)
		}
	}
	ops, ok := lr.log.Since(st.Applied, 0)
	if !ok {
		t.Fatalf("feed trimmed past follower position %d", st.Applied)
	}
	st, err := f.Apply(Batch{Epoch: lr.log.Epoch(), LogSeq: lr.log.Seq(), Ops: ops})
	if err != nil {
		t.Fatal(err)
	}
	if st.NeedSync {
		t.Fatal("unexpected NeedSync from in-order ship")
	}
	return st
}

// assertMirrored compares the follower's mirror of id against the
// leader's live cluster on every property a failover must preserve.
func assertMirrored(t *testing.T, lr *leaderRig, f *Follower, id string) {
	t.Helper()
	reg, ok := f.Registry("default")
	if !ok {
		t.Fatal("follower has no default tenant")
	}
	mh, ok := reg.Get(id)
	if !ok {
		t.Fatalf("follower mirror lost cluster %q", id)
	}
	lh, ok := lr.reg.Get(id)
	if !ok {
		t.Fatalf("leader lost cluster %q", id)
	}
	lh.Do(func(want *sim.Cluster) {
		mh.Do(func(got *sim.Cluster) {
			if !reflect.DeepEqual(got.ServerNames(), want.ServerNames()) {
				t.Fatalf("servers diverge: %v vs %v", got.ServerNames(), want.ServerNames())
			}
			if got.Step() != want.Step() {
				t.Fatalf("step diverges: %d vs %d", got.Step(), want.Step())
			}
			if !reflect.DeepEqual(got.States(), want.States()) {
				t.Fatalf("states diverge: %v vs %v", got.States(), want.States())
			}
			if got.Metrics().Snapshot() != want.Metrics().Snapshot() {
				t.Fatalf("metrics diverge: %+v vs %+v", got.Metrics().Snapshot(), want.Metrics().Snapshot())
			}
		})
	})
}

func openFollower(t *testing.T, dataDir string) *Follower {
	t.Helper()
	f, err := OpenFollower(FollowerOptions{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFollowerMirrorsLeaderWorkload(t *testing.T) {
	lr := newLeaderRig(t, 1, 1000)
	dataDir := t.TempDir()
	f := openFollower(t, dataDir)
	defer f.Close()
	ship(t, lr, f) // first contact: full sync of the near-empty store

	id := lr.addCluster(t, 1)
	lr.drive(t, id, []string{"0", "1", "1", "0"}, trace.Fault{Server: "F1", Kind: trace.Crash})
	lr.drive(t, id, []string{"1"}, trace.Fault{Server: "0-Counter", Kind: trace.Byzantine})

	st := ship(t, lr, f)
	if st.Applied != lr.log.Seq() {
		t.Fatalf("applied %d, want %d", st.Applied, lr.log.Seq())
	}
	if st.Lag() != 0 {
		t.Fatalf("lag = %d after full catch-up", st.Lag())
	}
	assertMirrored(t, lr, f, id)

	if ok, reason := f.Ready(); !ok {
		t.Fatalf("caught-up follower not ready: %s", reason)
	}

	// A fresh follower over the same dir rebuilds the same mirror.
	f.Close()
	f2 := openFollower(t, dataDir)
	defer f2.Close()
	assertMirrored(t, lr, f2, id)
	if got := f2.Status().Applied; got != lr.log.Seq() {
		t.Fatalf("reopened follower applied %d, want %d", got, lr.log.Seq())
	}
}

func TestFollowerNotReadyBeforeContact(t *testing.T) {
	f := openFollower(t, t.TempDir())
	defer f.Close()
	if ok, _ := f.Ready(); ok {
		t.Fatal("follower ready before any leader contact")
	}
	// A heartbeat (empty batch) establishes contact and the head.
	st, err := f.Apply(Batch{Epoch: 0, LogSeq: 0})
	if err != nil {
		t.Fatal(err)
	}
	if st.NeedSync {
		t.Fatal("empty heartbeat at matching epoch should not demand sync")
	}
	if ok, reason := f.Ready(); !ok {
		t.Fatalf("follower not ready after heartbeat: %s", reason)
	}
}

func TestFollowerLagThresholdGatesReadiness(t *testing.T) {
	f, err := OpenFollower(FollowerOptions{DataDir: t.TempDir(), LagThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Apply(Batch{Epoch: 0, LogSeq: 10}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := f.Ready(); ok {
		t.Fatal("follower 10 records behind with threshold 2 reported ready")
	}
}

// TestFollowerCrashResumeNoDoubleApply: the follower's state file lags
// its store (crash after apply, before persist); the leader re-ships
// from the stale mark and every duplicate op must be skipped exactly.
func TestFollowerCrashResumeNoDoubleApply(t *testing.T) {
	lr := newLeaderRig(t, 1, 1000)
	dataDir := t.TempDir()
	f := openFollower(t, dataDir)
	ship(t, lr, f)

	id := lr.addCluster(t, 1)
	lr.drive(t, id, []string{"0", "1"})
	ship(t, lr, f)
	lr.drive(t, id, []string{"1", "0", "0"}, trace.Fault{Server: "F1", Kind: trace.Crash})
	ship(t, lr, f)
	f.Close()

	// Simulate the crash window: durable tenant state is current, but the
	// resume point rolled back to before the last batch.
	rollBackAppliedTo(t, dataDir, 2)

	f2 := openFollower(t, dataDir)
	defer f2.Close()
	if got := f2.Status().Applied; got != 2 {
		t.Fatalf("reopened applied %d, want rolled-back 2", got)
	}
	st := ship(t, lr, f2) // re-ships ops 3.. which already landed
	if st.Applied != lr.log.Seq() {
		t.Fatalf("applied %d after resume, want %d", st.Applied, lr.log.Seq())
	}
	assertMirrored(t, lr, f2, id)
	assertSameRecords(t, lr.dir, followerDir(dataDir))
}

// TestFollowerTornReplicaTail: power loss mid-append tears the replica's
// WAL tail AND loses the state-file update. Reopen repairs to the last
// complete record; the re-shipped op applies only the missing suffix.
func TestFollowerTornReplicaTail(t *testing.T) {
	lr := newLeaderRig(t, 1, 1000)
	dataDir := t.TempDir()
	f := openFollower(t, dataDir)
	ship(t, lr, f)

	id := lr.addCluster(t, 1)
	lr.drive(t, id, []string{"0", "1"})
	preSeq := lr.log.Seq()
	ship(t, lr, f)
	// One Update → one append op carrying several records.
	lr.drive(t, id, []string{"1", "0", "0"})
	ship(t, lr, f)
	f.Close()

	// Tear the final WAL record on the replica (drop its trailing newline
	// and a few bytes) and roll the resume point back to before the batch
	// — the true power-loss picture: fsync'd prefix survives, tail torn.
	walPath := filepath.Join(followerDir(dataDir), id, "wal-0.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	rollBackAppliedTo(t, dataDir, preSeq)

	f2 := openFollower(t, dataDir)
	defer f2.Close()
	st := ship(t, lr, f2)
	if st.Applied != lr.log.Seq() {
		t.Fatalf("applied %d after torn-tail resume, want %d", st.Applied, lr.log.Seq())
	}
	assertMirrored(t, lr, f2, id)
	assertSameRecords(t, lr.dir, followerDir(dataDir))
}

// TestSnapshotArrivesMidStream: compaction on the leader interleaves
// snapshot ops (generation bumps) with appends; shipping them one op at
// a time must keep the replica identical at the end.
func TestSnapshotArrivesMidStream(t *testing.T) {
	lr := newLeaderRig(t, 1, 2) // compact every 2 journal records
	dataDir := t.TempDir()
	f := openFollower(t, dataDir)
	defer f.Close()
	ship(t, lr, f)

	id := lr.addCluster(t, 1)
	for i := 0; i < 5; i++ {
		lr.drive(t, id, []string{"0"})
		lr.drive(t, id, []string{"1"})
	}
	// Ship in single-op batches to exercise every interleaving point.
	for {
		st := f.Status()
		ops, ok := lr.log.Since(st.Applied, 1)
		if !ok {
			t.Fatal("feed trimmed")
		}
		if len(ops) == 0 {
			break
		}
		st, err := f.Apply(Batch{Epoch: lr.log.Epoch(), LogSeq: lr.log.Seq(), Ops: ops})
		if err != nil {
			t.Fatal(err)
		}
		if st.NeedSync {
			t.Fatalf("NeedSync at applied %d", st.Applied)
		}
	}
	assertMirrored(t, lr, f, id)
	assertSameRecords(t, lr.dir, followerDir(dataDir))
}

// TestRemoveThenRecreateSameIDAcrossGenerations: the feed carries a
// remove followed by a fresh put under the same cluster id whose
// predecessor had already bumped generations; the replica must end up
// with only the new incarnation.
func TestRemoveThenRecreateSameIDAcrossGenerations(t *testing.T) {
	dataDir := t.TempDir()
	f := openFollower(t, dataDir)
	defer f.Close()

	specA, _ := json.Marshal(sim.ClusterSpec{
		Machines: []*dfsm.Machine{machines.ZeroCounter(), machines.OneCounter()}, F: 1, Seed: 1,
	})
	specB, _ := json.Marshal(sim.ClusterSpec{
		Machines: []*dfsm.Machine{machines.ZeroCounter(), machines.OneCounter()}, F: 1, Seed: 99,
	})
	// Build the reference state the ops describe on a local rig.
	ref, err := sim.NewClusterFromSpec(mustSpec(t, specB))
	if err != nil {
		t.Fatal(err)
	}
	ref.Apply("1")

	// Snapshot payload for the first incarnation's generation bump.
	snapA := []byte(`{"any":"state"}`)
	_ = snapA
	cA, err := sim.NewClusterFromSpec(mustSpec(t, specA))
	if err != nil {
		t.Fatal(err)
	}
	snapPayload := encodeSnapshotFor(t, cA)

	ops := []store.Op{
		{Seq: 1, Tenant: "default", Kind: store.OpPut, ID: "c1", Data: specA},
		{Seq: 2, Tenant: "default", Kind: store.OpAppend, ID: "c1", Recs: [][]byte{walEvent(t, "0")}, PrevWAL: 0},
		{Seq: 3, Tenant: "default", Kind: store.OpSnapshot, ID: "c1", Data: snapPayload}, // generation bump
		{Seq: 4, Tenant: "default", Kind: store.OpAppend, ID: "c1", Recs: [][]byte{walEvent(t, "1")}, PrevWAL: 0},
		{Seq: 5, Tenant: "default", Kind: store.OpRemove, ID: "c1"},
		{Seq: 6, Tenant: "default", Kind: store.OpPut, ID: "c1", Data: specB}, // recreate, same id
		{Seq: 7, Tenant: "default", Kind: store.OpAppend, ID: "c1", Recs: [][]byte{walEvent(t, "1")}, PrevWAL: 0},
	}
	if _, err := f.Apply(Batch{Epoch: 0, LogSeq: 7, Ops: ops}); err != nil {
		t.Fatal(err)
	}
	reg, _ := f.Registry("default")
	mh, ok := reg.Get("c1")
	if !ok {
		t.Fatal("recreated cluster missing")
	}
	mh.Do(func(got *sim.Cluster) {
		if got.Step() != ref.Step() || !reflect.DeepEqual(got.States(), ref.States()) {
			t.Fatalf("recreated cluster state %v@%d, want %v@%d", got.States(), got.Step(), ref.States(), ref.Step())
		}
	})
	// The durable record must be the new incarnation: seed-99 spec, one
	// WAL record, no inherited snapshot.
	recs, err := (&dirOpener{t, followerDir(dataDir)}).load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "c1" {
		t.Fatalf("replica store holds %d records", len(recs))
	}
	if recs[0].Snapshot != nil {
		t.Fatal("recreated cluster inherited the old generation's snapshot")
	}
	if len(recs[0].WAL) != 1 {
		t.Fatalf("recreated cluster WAL has %d records, want 1", len(recs[0].WAL))
	}
}

func TestFencing(t *testing.T) {
	lr := newLeaderRig(t, 3, 1000)
	dataDir := t.TempDir()
	f := openFollower(t, dataDir)

	id := lr.addCluster(t, 1)
	lr.drive(t, id, []string{"0"})
	// Fresh follower at epoch 0 sees epoch 3: must request a full sync.
	st, err := f.Apply(Batch{Epoch: 3, LogSeq: lr.log.Seq(), Ops: nil})
	if err != nil {
		t.Fatal(err)
	}
	if !st.NeedSync {
		t.Fatal("epoch-ahead batch did not request sync")
	}
	full := fullStateOf(t, lr, 3)
	if _, err := f.FullSync(full); err != nil {
		t.Fatal(err)
	}
	assertMirrored(t, lr, f, id)

	// Promote: epoch bumps past everything seen; the deposed leader's
	// shipments bounce.
	epoch, tens, err := f.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 4 {
		t.Fatalf("promoted epoch %d, want 4", epoch)
	}
	if len(tens) != 1 || tens[0].Name != "default" {
		t.Fatalf("promotion handed over %d tenants", len(tens))
	}
	if _, err := f.Apply(Batch{Epoch: 3, LogSeq: 99}); err != ErrFenced {
		t.Fatalf("deposed leader's batch: err = %v, want ErrFenced", err)
	}
	if _, err := f.FullSync(full); err != ErrFenced {
		t.Fatalf("deposed leader's sync: err = %v, want ErrFenced", err)
	}
	if _, _, err := f.Promote(); err != ErrFenced {
		t.Fatalf("double promote: err = %v, want ErrFenced", err)
	}
	for _, pt := range tens {
		pt.Store.Close()
	}

	// The fence survives a restart: epoch 4 is durable.
	f2 := openFollower(t, dataDir)
	defer f2.Close()
	if _, err := f2.Apply(Batch{Epoch: 3, LogSeq: 99}); err != ErrFenced {
		t.Fatalf("restarted node accepted deposed epoch: %v", err)
	}
}

// TestFullSyncRacingOpsDedupe: a transfer whose Seq was captured before
// racing writes re-ships those writes afterwards; the idempotent apply
// must skip what the transfer already contained.
func TestFullSyncRacingOpsDedupe(t *testing.T) {
	lr := newLeaderRig(t, 1, 1000)
	f := openFollower(t, t.TempDir())
	defer f.Close()

	id := lr.addCluster(t, 1)
	lr.drive(t, id, []string{"0", "1"})
	seqBefore := lr.log.Seq()
	// Racing op: lands after Seq capture but before the store read.
	lr.drive(t, id, []string{"1"})

	full := fullStateOf(t, lr, 1)
	full.Seq = seqBefore // transfer body contains the racing op, Seq does not
	if _, err := f.FullSync(full); err != nil {
		t.Fatal(err)
	}
	// The shipper now re-ships everything past seqBefore — including the
	// racing op the transfer already carried.
	st := ship(t, lr, f)
	if st.Applied != lr.log.Seq() {
		t.Fatalf("applied %d, want %d", st.Applied, lr.log.Seq())
	}
	assertMirrored(t, lr, f, id)
}

func TestNextLeaderEpochMonotonic(t *testing.T) {
	dir := t.TempDir()
	e1, err := NextLeaderEpoch(dir)
	if err != nil || e1 != 1 {
		t.Fatalf("first epoch = %d (%v), want 1", e1, err)
	}
	e2, err := NextLeaderEpoch(dir)
	if err != nil || e2 != 2 {
		t.Fatalf("second epoch = %d (%v), want 2", e2, err)
	}
	// A node that followed epoch 9 and is rebooted as leader must beat it.
	if err := persistFollowerState(dir, followerState{Epoch: 9, Applied: 42}); err != nil {
		t.Fatal(err)
	}
	e3, err := NextLeaderEpoch(dir)
	if err != nil || e3 != 10 {
		t.Fatalf("epoch after following 9 = %d (%v), want 10", e3, err)
	}
}

// --- helpers --------------------------------------------------------------

func followerDir(dataDir string) string { return filepath.Join(dataDir, "default") }

// rollBackAppliedTo rewrites the follower state file's applied mark,
// simulating a crash after ops landed but before the state persisted.
func rollBackAppliedTo(t *testing.T, dataDir string, applied uint64) {
	t.Helper()
	st, err := loadFollowerState(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	st.Applied = applied
	if err := persistFollowerState(dataDir, st); err != nil {
		t.Fatal(err)
	}
}

// assertSameRecords compares the leader's and replica's durable tenant
// records field by field (generation numbering may differ after
// idempotent snapshot re-application; content must not).
func assertSameRecords(t *testing.T, leader *store.Dir, replicaRoot string) {
	t.Helper()
	want, err := leader.Load()
	if err != nil {
		t.Fatal(err)
	}
	got, err := (&dirOpener{t, replicaRoot}).load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replica holds %d records, leader %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("record %d id %q vs %q", i, got[i].ID, want[i].ID)
		}
		if !reflect.DeepEqual(got[i].Spec, want[i].Spec) {
			t.Fatalf("record %q spec diverges", want[i].ID)
		}
		if !reflect.DeepEqual(got[i].Snapshot, want[i].Snapshot) {
			t.Fatalf("record %q snapshot diverges", want[i].ID)
		}
		if !reflect.DeepEqual(got[i].WAL, want[i].WAL) {
			t.Fatalf("record %q WAL diverges: %d vs %d records", want[i].ID, len(got[i].WAL), len(want[i].WAL))
		}
	}
}

// dirOpener opens a throwaway Dir view for assertions without holding
// file handles past the load.
type dirOpener struct {
	t    *testing.T
	root string
}

func (d *dirOpener) load() ([]store.Record, error) {
	st, err := store.NewDir(d.root)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	return st.Load()
}

func fullStateOf(t *testing.T, lr *leaderRig, epoch uint64) FullState {
	t.Helper()
	recs, err := lr.dir.Load()
	if err != nil {
		t.Fatal(err)
	}
	return FullState{
		Epoch:   epoch,
		Seq:     lr.log.Seq(),
		Tenants: []TenantState{{Name: "default", Clusters: recs}},
	}
}

func mustSpec(t *testing.T, raw []byte) *sim.ClusterSpec {
	t.Helper()
	var spec sim.ClusterSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		t.Fatal(err)
	}
	return &spec
}

// walEvent produces the journal record an applied event writes, by
// running the event through a throwaway stored cluster and reading the
// journal back.
func walEvent(t *testing.T, event string) []byte {
	t.Helper()
	st := store.NewMem()
	reg := sim.NewStoredRegistry(0, st, 1000)
	c, err := sim.NewCluster([]*dfsm.Machine{machines.ZeroCounter(), machines.OneCounter()}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	id, err := reg.Add(c)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := reg.Get(id)
	if err := h.Update(func(tx *sim.Tx) error { tx.ApplyAll([]string{event}); return nil }); err != nil {
		t.Fatal(err)
	}
	recs, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.ID == id && len(rec.WAL) > 0 {
			return rec.WAL[len(rec.WAL)-1]
		}
	}
	t.Fatal("no journal record produced")
	return nil
}

// encodeSnapshotFor captures a cluster's snapshot payload the same way a
// leader-side compaction would, via a stored registry compacting every
// record.
func encodeSnapshotFor(t *testing.T, c *sim.Cluster) []byte {
	t.Helper()
	st := store.NewMem()
	reg := sim.NewStoredRegistry(0, st, 1)
	id, err := reg.Add(c)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := reg.Get(id)
	if err := h.Update(func(tx *sim.Tx) error { tx.ApplyAll([]string{"0"}); return nil }); err != nil {
		t.Fatal(err)
	}
	recs, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.ID == id && rec.Snapshot != nil {
			return rec.Snapshot
		}
	}
	t.Fatal("no snapshot produced")
	return nil
}

var _ = fmt.Sprintf // keep fmt for future debugging helpers
