package dfsm

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		m := RandomMachine(rng, "rt", 1+rng.Intn(8), []string{"a", "b", "c"})
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Machine
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !m.Equal(&back) {
			t.Fatalf("round trip changed machine:\n%s\nvs\n%s", m.Table(), back.Table())
		}
	}
}

func TestJSONUnmarshalErrors(t *testing.T) {
	cases := []string{
		`{"name":"m","states":["a"],"events":["e"],"initial":"zzz","transitions":[{"from":"a","event":"e","to":"a"}]}`,
		`{"name":"m","states":["a"],"events":["e"],"initial":"a","transitions":[{"from":"zzz","event":"e","to":"a"}]}`,
		`{"name":"m","states":["a"],"events":["e"],"initial":"a","transitions":[{"from":"a","event":"zzz","to":"a"}]}`,
		`{"name":"m","states":["a"],"events":["e"],"initial":"a","transitions":[{"from":"a","event":"e","to":"zzz"}]}`,
		`{"name":"m","states":["a"],"events":["e"],"initial":"a","transitions":[]}`, // missing transition
		`{"name":"m","states":["a","a"],"events":["e"],"initial":"a","transitions":[{"from":"a","event":"e","to":"a"}]}`,
		`not json`,
	}
	for i, c := range cases {
		var m Machine
		if err := json.Unmarshal([]byte(c), &m); err == nil {
			t.Errorf("case %d: bad JSON accepted", i)
		}
	}
}

func TestJSONIsReadable(t *testing.T) {
	m := MustMachine("m", []string{"a", "b"}, []string{"e"}, [][]int{{1}, {0}}, 0)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"m"`, `"initial":"a"`, `"from":"a"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON %s missing %s", data, want)
		}
	}
}
