package dfsm

import (
	"fmt"
	"strings"
)

// Structural analysis of machines: strongly connected components, the
// recurrent (terminal) components a long-running machine settles into, and
// eccentricities. fsmtool exposes these; the zoo tests use them to sanity
// check protocol machines (e.g. TCP's CLOSED must be recurrent).

// SCCs returns the strongly connected components of the transition graph
// (Tarjan), in reverse topological order (components listed after the
// components they can reach). Each component lists state indices in
// ascending order.
func (m *Machine) SCCs() [][]int {
	n := len(m.states)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	next := 0

	// Iterative Tarjan to survive deep graphs without blowing the stack.
	type frame struct {
		v, ei int
	}
	var call []frame
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		call = append(call[:0], frame{start, 0})
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true

		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.ei < len(m.events) {
				w := m.delta[f.v][f.ei]
				f.ei++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Pop.
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := &call[len(call)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sortInts(comp)
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// RecurrentStates returns the states in terminal SCCs — the states the
// machine can keep revisiting forever. Every infinite run ends up inside
// one terminal component.
func (m *Machine) RecurrentStates() []int {
	comps := m.SCCs()
	compOf := make([]int, len(m.states))
	for ci, comp := range comps {
		for _, s := range comp {
			compOf[s] = ci
		}
	}
	var out []int
	for ci, comp := range comps {
		terminal := true
	scan:
		for _, s := range comp {
			for e := range m.events {
				if compOf[m.delta[s][e]] != ci {
					terminal = false
					break scan
				}
			}
		}
		if terminal {
			out = append(out, comp...)
		}
	}
	sortInts(out)
	return out
}

// Eccentricity returns the maximum over states t of the shortest event
// count from s to t, or -1 for unreachable targets excluded; the second
// return lists states unreachable from s.
func (m *Machine) Eccentricity(s int) (int, []int) {
	if s < 0 || s >= len(m.states) {
		return -1, nil
	}
	dist := make([]int, len(m.states))
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int{s}
	ecc := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for e := range m.events {
			w := m.delta[v][e]
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				if dist[w] > ecc {
					ecc = dist[w]
				}
				queue = append(queue, w)
			}
		}
	}
	var unreachable []int
	for t, d := range dist {
		if d == -1 {
			unreachable = append(unreachable, t)
		}
	}
	return ecc, unreachable
}

// Stats summarizes the machine's structure for the CLI.
func (m *Machine) Stats() string {
	var b strings.Builder
	comps := m.SCCs()
	recurrent := m.RecurrentStates()
	ecc, unreachable := m.Eccentricity(m.initial)
	fmt.Fprintf(&b, "%s: %d states, %d events, %d SCCs, %d recurrent states, eccentricity %d from %s\n",
		m.name, len(m.states), len(m.events), len(comps), len(recurrent), ecc, m.states[m.initial])
	if len(unreachable) > 0 {
		// Cannot happen for validated machines; reported for completeness.
		fmt.Fprintf(&b, "  unreachable from initial: %d states\n", len(unreachable))
	}
	names := make([]string, 0, len(recurrent))
	for _, s := range recurrent {
		names = append(names, m.states[s])
	}
	fmt.Fprintf(&b, "  recurrent: %s\n", strings.Join(names, " "))
	return b.String()
}
