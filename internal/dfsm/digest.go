package dfsm

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
)

// TableDigest returns a SHA-256 digest of the machine's full definition —
// name, state names, event names, initial state, and the transition table
// — in the same canonical order the JSON codec uses (states and events in
// index order, delta rows in (state, event) order). Two machines have
// equal digests iff Machine.Equal holds, so the digest is a content
// address for the machine; the fusion cache builds whole-request keys out
// of these (see core.RequestDigest).
//
// Machines are immutable, so digests are memoized per instance; repeated
// calls on the machines of a long-lived System cost two map operations,
// not a rehash of the table.
func (m *Machine) TableDigest() [32]byte {
	tableMemo.RLock()
	d, ok := tableMemo.m[m]
	tableMemo.RUnlock()
	if ok {
		return d
	}
	d = m.tableDigest()
	tableMemo.Lock()
	if len(tableMemo.m) >= tableMemoCap {
		// The memo is keyed by pointer, so dead machines would pin entries
		// (and their keys) forever; dropping wholesale at the cap bounds
		// the memory while keeping steady-state service workloads — a few
		// dozen catalog machines — permanently warm.
		tableMemo.m = make(map[*Machine][32]byte, tableMemoCap/4)
	}
	tableMemo.m[m] = d
	tableMemo.Unlock()
	return d
}

// tableMemoCap bounds the per-process digest memo; far above any zoo or
// tenant catalog, far below what a machine-minting flood could abuse.
const tableMemoCap = 4096

var tableMemo = struct {
	sync.RWMutex
	m map[*Machine][32]byte
}{m: make(map[*Machine][32]byte)}

// tableDigest hashes the canonical serialization. Every variable-length
// field is length-prefixed (uvarint) so distinct definitions can never
// serialize to the same byte stream.
func (m *Machine) tableDigest() [32]byte {
	size := 8 + len(m.name) + len(m.states)*8 + len(m.events)*8 + len(m.states)*len(m.events)*2
	buf := make([]byte, 0, size)
	appendStr := func(s string) {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	appendStr(m.name)
	buf = binary.AppendUvarint(buf, uint64(len(m.states)))
	for _, s := range m.states {
		appendStr(s)
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.events)))
	for _, e := range m.events {
		appendStr(e)
	}
	buf = binary.AppendUvarint(buf, uint64(m.initial))
	for _, row := range m.delta {
		for _, t := range row {
			buf = binary.AppendUvarint(buf, uint64(t))
		}
	}
	return sha256.Sum256(buf)
}
