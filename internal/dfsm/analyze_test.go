package dfsm

import (
	"math/rand"
	"strings"
	"testing"
)

func TestSCCsOnCycleAndChain(t *testing.T) {
	// p -> q -> r -> q: SCC {q,r} and singleton {p}.
	m := MustMachine("m", []string{"p", "q", "r"}, []string{"e"},
		[][]int{{1}, {2}, {1}}, 0)
	comps := m.SCCs()
	if len(comps) != 2 {
		t.Fatalf("got %d SCCs: %v", len(comps), comps)
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[1] != 1 || sizes[2] != 1 {
		t.Errorf("component sizes: %v", comps)
	}
	// Reverse topological order: {q,r} (reachable sink) comes first.
	if len(comps[0]) != 2 {
		t.Errorf("terminal SCC not first: %v", comps)
	}
}

func TestSCCsFullCycle(t *testing.T) {
	m := MustMachine("cyc", []string{"a", "b", "c"}, []string{"e"},
		[][]int{{1}, {2}, {0}}, 0)
	comps := m.SCCs()
	if len(comps) != 1 || len(comps[0]) != 3 {
		t.Fatalf("cycle SCCs: %v", comps)
	}
}

func TestRecurrentStates(t *testing.T) {
	// p -> q <-> r: recurrent states are q,r only.
	m := MustMachine("m", []string{"p", "q", "r"}, []string{"e"},
		[][]int{{1}, {2}, {1}}, 0)
	rec := m.RecurrentStates()
	if len(rec) != 2 || rec[0] != 1 || rec[1] != 2 {
		t.Fatalf("recurrent = %v", rec)
	}
}

func TestRecurrentStatesSelfLoopSink(t *testing.T) {
	m := MustMachine("m", []string{"a", "sink"}, []string{"e"},
		[][]int{{1}, {1}}, 0)
	rec := m.RecurrentStates()
	if len(rec) != 1 || rec[0] != 1 {
		t.Fatalf("recurrent = %v", rec)
	}
}

func TestEccentricity(t *testing.T) {
	m := MustMachine("chain", []string{"a", "b", "c"}, []string{"e"},
		[][]int{{1}, {2}, {2}}, 0)
	ecc, unreachable := m.Eccentricity(0)
	if ecc != 2 || len(unreachable) != 0 {
		t.Fatalf("ecc=%d unreachable=%v", ecc, unreachable)
	}
	// From the sink, a and b are unreachable.
	ecc, unreachable = m.Eccentricity(2)
	if ecc != 0 || len(unreachable) != 2 {
		t.Fatalf("from sink: ecc=%d unreachable=%v", ecc, unreachable)
	}
	if e, _ := m.Eccentricity(-1); e != -1 {
		t.Error("bad state accepted")
	}
}

// TestSCCPartitionProperty: SCCs partition the state set, checked on random
// machines.
func TestSCCPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 50; trial++ {
		m := RandomMachine(rng, "r", 1+rng.Intn(30), []string{"a", "b"})
		comps := m.SCCs()
		seen := make([]bool, m.NumStates())
		for _, c := range comps {
			for _, s := range c {
				if seen[s] {
					t.Fatalf("trial %d: state %d in two SCCs", trial, s)
				}
				seen[s] = true
			}
		}
		for s, ok := range seen {
			if !ok {
				t.Fatalf("trial %d: state %d in no SCC", trial, s)
			}
		}
		// At least one terminal component must exist.
		if len(m.RecurrentStates()) == 0 {
			t.Fatalf("trial %d: no recurrent states", trial)
		}
	}
}

func TestStatsOutput(t *testing.T) {
	m := MustMachine("m", []string{"p", "q"}, []string{"e"}, [][]int{{1}, {0}}, 0)
	s := m.Stats()
	for _, want := range []string{"2 states", "1 SCCs", "recurrent: p q"} {
		if !strings.Contains(s, want) {
			t.Errorf("Stats missing %q:\n%s", want, s)
		}
	}
}
