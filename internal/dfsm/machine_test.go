package dfsm

import (
	"strings"
	"testing"
)

func mod3(t *testing.T, name, event string) *Machine {
	t.Helper()
	m, err := NewMachine(name,
		[]string{"c0", "c1", "c2"},
		[]string{event},
		[][]int{{1}, {2}, {0}}, 0)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m
}

func TestNewMachineBasics(t *testing.T) {
	m := mod3(t, "A", "0")
	if m.Name() != "A" {
		t.Errorf("Name = %q", m.Name())
	}
	if m.NumStates() != 3 || m.NumEvents() != 1 {
		t.Errorf("size = (%d,%d), want (3,1)", m.NumStates(), m.NumEvents())
	}
	if m.Initial() != 0 {
		t.Errorf("Initial = %d", m.Initial())
	}
	if m.StateName(1) != "c1" || m.StateIndex("c2") != 2 || m.StateIndex("zzz") != -1 {
		t.Error("state naming lookups broken")
	}
	if m.EventIndex("0") != 0 || m.EventIndex("9") != -1 || !m.HasEvent("0") || m.HasEvent("1") {
		t.Error("event lookups broken")
	}
}

func TestNewMachineValidation(t *testing.T) {
	cases := []struct {
		name    string
		states  []string
		events  []string
		delta   [][]int
		initial int
	}{
		{"", []string{"s"}, []string{"e"}, [][]int{{0}}, 0},             // empty name
		{"m", nil, []string{"e"}, nil, 0},                               // no states
		{"m", []string{"s"}, []string{"e"}, [][]int{{0}}, 5},            // initial out of range
		{"m", []string{"s", "s"}, []string{"e"}, [][]int{{0}, {0}}, 0},  // dup state
		{"m", []string{"s", ""}, []string{"e"}, [][]int{{0}, {0}}, 0},   // empty state name
		{"m", []string{"s"}, []string{"e"}, nil, 0},                     // missing delta rows
		{"m", []string{"s"}, []string{"e"}, [][]int{{}}, 0},             // short row
		{"m", []string{"s"}, []string{"e"}, [][]int{{7}}, 0},            // target out of range
		{"m", []string{"s", "t"}, []string{"e"}, [][]int{{0}, {1}}, 0},  // t unreachable
		{"m", []string{"s"}, []string{"e", "e"}, [][]int{{0, 0}}, 0},    // dup event
		{"m", []string{"s", "t"}, []string{"e"}, [][]int{{0}, {-1}}, 0}, // negative target
	}
	for i, c := range cases {
		if _, err := NewMachine(c.name, c.states, c.events, c.delta, c.initial); err == nil {
			t.Errorf("case %d: invalid machine accepted", i)
		}
	}
}

func TestNextIgnoresForeignEvents(t *testing.T) {
	m := mod3(t, "A", "0")
	if got := m.Next(1, "1"); got != 1 {
		t.Errorf("foreign event moved the machine: %d", got)
	}
	if got := m.Next(1, "0"); got != 2 {
		t.Errorf("Next(1, 0) = %d, want 2", got)
	}
}

func TestRun(t *testing.T) {
	m := mod3(t, "A", "0")
	// Four 0s and two foreign 1s: 4 mod 3 = 1.
	if got := m.Run([]string{"0", "1", "0", "0", "1", "0"}); got != 1 {
		t.Errorf("Run = %d, want 1", got)
	}
	if got := m.RunFrom(2, []string{"0", "0"}); got != 1 {
		t.Errorf("RunFrom(2) = %d, want 1", got)
	}
	if got := m.Run(nil); got != m.Initial() {
		t.Errorf("empty Run = %d, want initial", got)
	}
}

func TestEqualAndRename(t *testing.T) {
	a := mod3(t, "A", "0")
	b := mod3(t, "A", "0")
	if !a.Equal(b) {
		t.Error("identical machines not Equal")
	}
	if !a.Equal(a) {
		t.Error("machine not Equal to itself")
	}
	c := a.Rename("C")
	if a.Equal(c) {
		t.Error("renamed machine Equal to original")
	}
	if c.Name() != "C" || c.NumStates() != 3 {
		t.Error("rename corrupted machine")
	}
	if a.Equal(nil) {
		t.Error("machine Equal to nil")
	}
	d := mod3(t, "A", "1")
	if a.Equal(d) {
		t.Error("machines with different alphabets Equal")
	}
}

func TestStringAndTable(t *testing.T) {
	m := mod3(t, "A", "0")
	if s := m.String(); !strings.Contains(s, "A") || !strings.Contains(s, "3") {
		t.Errorf("String = %q", s)
	}
	tab := m.Table()
	for _, want := range []string{"machine A", "c0", "c1", "c2", "initial=c0"} {
		if !strings.Contains(tab, want) {
			t.Errorf("Table missing %q:\n%s", want, tab)
		}
	}
}

func TestUnionAlphabet(t *testing.T) {
	a := mod3(t, "A", "0")
	b := mod3(t, "B", "1")
	got := UnionAlphabet([]*Machine{a, b, a})
	if len(got) != 2 || got[0] != "0" || got[1] != "1" {
		t.Errorf("UnionAlphabet = %v", got)
	}
	if got := UnionAlphabet(nil); len(got) != 0 {
		t.Errorf("UnionAlphabet(nil) = %v", got)
	}
}

func TestStatesEventsAreCopies(t *testing.T) {
	m := mod3(t, "A", "0")
	m.States()[0] = "mutated"
	m.Events()[0] = "mutated"
	if m.StateName(0) != "c0" || m.Events()[0] != "0" {
		t.Error("accessors exposed internal slices")
	}
}

func TestMustMachinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMachine did not panic on invalid input")
		}
	}()
	MustMachine("", nil, nil, nil, 0)
}
