package dfsm

import (
	"math/rand"
	"testing"
)

func TestMinimizeMergesEquivalentStates(t *testing.T) {
	// A 6-state mod-3 counter (two redundant laps) with labels s mod 3
	// reduces to 3 states.
	m := MustMachine("six", []string{"s0", "s1", "s2", "s3", "s4", "s5"}, []string{"e"},
		[][]int{{1}, {2}, {3}, {4}, {5}, {0}}, 0)
	red, err := m.MinimizeWithLabels([]int{0, 1, 2, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if red.NumStates() != 3 {
		t.Fatalf("reduced to %d states, want 3", red.NumStates())
	}
	// Behaviour preserved: label of the state after k events matches.
	s, r := m.Initial(), red.Initial()
	for k := 0; k < 12; k++ {
		if s%3 != mustLabel(red, r) {
			t.Fatalf("after %d events: original label %d, reduced label %d", k, s%3, mustLabel(red, r))
		}
		s = m.Next(s, "e")
		r = red.Next(r, "e")
	}
}

// mustLabel recovers the intended label from the reduced state's name
// (least original state name, "s<k>").
func mustLabel(m *Machine, s int) int {
	name := m.StateName(s)
	return int(name[1]-'0') % 3
}

func TestMinimizeDistinctLabelsIsIdentity(t *testing.T) {
	m := MustMachine("m", []string{"x", "y"}, []string{"e"}, [][]int{{1}, {0}}, 0)
	red, err := m.MinimizeWithLabels([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if red.NumStates() != 2 {
		t.Fatalf("distinct labels must not merge: %d states", red.NumStates())
	}
}

func TestMinimizeLabelMismatch(t *testing.T) {
	m := MustMachine("m", []string{"x", "y"}, []string{"e"}, [][]int{{1}, {0}}, 0)
	if _, err := m.MinimizeWithLabels([]int{0}); err == nil {
		t.Fatal("accepted wrong label count")
	}
}

func TestMinimizeRefinesWhenSuccessorsDiffer(t *testing.T) {
	// Same label everywhere but a structural difference: a 2-cycle and a
	// fixed point with the same label cannot merge if the label of what
	// they reach differs... give them distinguishing labels downstream.
	m := MustMachine("m", []string{"a", "b", "c"}, []string{"e"},
		[][]int{{1}, {2}, {2}}, 0)
	red, err := m.MinimizeWithLabels([]int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// a→b→c(label 1). a and b differ: from b, one event reaches label 1;
	// from a it takes two. So no merge.
	if red.NumStates() != 3 {
		t.Fatalf("got %d states, want 3", red.NumStates())
	}
}

func TestIsomorphicPositive(t *testing.T) {
	a := MustMachine("a", []string{"p", "q", "r"}, []string{"e"}, [][]int{{1}, {2}, {0}}, 0)
	b := MustMachine("b", []string{"x", "y", "z"}, []string{"e"}, [][]int{{1}, {2}, {0}}, 0)
	if !Isomorphic(a, b) {
		t.Error("renamed cycle not isomorphic")
	}
	// Rotation of state indices with adjusted initial is isomorphic too.
	c := MustMachine("c", []string{"x", "y", "z"}, []string{"e"}, [][]int{{2}, {0}, {1}}, 1)
	if !Isomorphic(a, c) {
		t.Error("rotated cycle not isomorphic")
	}
}

func TestIsomorphicNegative(t *testing.T) {
	a := MustMachine("a", []string{"p", "q", "r"}, []string{"e"}, [][]int{{1}, {2}, {0}}, 0)
	b := MustMachine("b", []string{"x", "y", "z"}, []string{"e"}, [][]int{{1}, {2}, {2}}, 0)
	if Isomorphic(a, b) {
		t.Error("cycle isomorphic to a chain")
	}
	short := MustMachine("s", []string{"x"}, []string{"e"}, [][]int{{0}}, 0)
	if Isomorphic(a, short) {
		t.Error("machines of different size isomorphic")
	}
	other := MustMachine("o", []string{"p", "q", "r"}, []string{"f"}, [][]int{{1}, {2}, {0}}, 0)
	if Isomorphic(a, other) {
		t.Error("machines with different alphabets isomorphic")
	}
}

func TestIsomorphicRandomSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		m := RandomMachine(rng, "m", 1+rng.Intn(10), []string{"a", "b"})
		if !Isomorphic(m, m.Rename("other")) {
			t.Fatalf("trial %d: machine not isomorphic to itself", trial)
		}
	}
}
