package dfsm

import (
	"math/rand"
	"testing"
)

func TestRandomMachineValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		m := RandomMachine(rng, "r", n, []string{"a", "b"})
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: invalid machine: %v", trial, err)
		}
		if m.NumStates() > n {
			t.Fatalf("trial %d: %d states, asked for %d", trial, m.NumStates(), n)
		}
	}
}

func TestRandomMachineDeterministic(t *testing.T) {
	a := RandomMachine(rand.New(rand.NewSource(5)), "r", 10, []string{"a", "b"})
	b := RandomMachine(rand.New(rand.NewSource(5)), "r", 10, []string{"a", "b"})
	if !a.Equal(b) {
		t.Error("same seed produced different machines")
	}
}

func TestRandomMachinePanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero states")
		}
	}()
	RandomMachine(rand.New(rand.NewSource(1)), "r", 0, []string{"a"})
}
