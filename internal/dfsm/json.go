package dfsm

import (
	"encoding/json"
	"fmt"
)

// machineJSON is the wire form of a Machine. Transitions are stored by name
// so files remain readable and robust to reordering.
type machineJSON struct {
	Name        string           `json:"name"`
	States      []string         `json:"states"`
	Events      []string         `json:"events"`
	Initial     string           `json:"initial"`
	Transitions []transitionJSON `json:"transitions"`
}

type transitionJSON struct {
	From  string `json:"from"`
	Event string `json:"event"`
	To    string `json:"to"`
}

// MarshalJSON implements json.Marshaler.
func (m *Machine) MarshalJSON() ([]byte, error) {
	out := machineJSON{
		Name:    m.name,
		States:  m.States(),
		Events:  m.Events(),
		Initial: m.states[m.initial],
	}
	for s, row := range m.delta {
		for e, t := range row {
			out.Transitions = append(out.Transitions, transitionJSON{
				From: m.states[s], Event: m.events[e], To: m.states[t],
			})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Machine) UnmarshalJSON(data []byte) error {
	var in machineJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	stateIx := make(map[string]int, len(in.States))
	for i, s := range in.States {
		stateIx[s] = i
	}
	eventIx := make(map[string]int, len(in.Events))
	for i, e := range in.Events {
		eventIx[e] = i
	}
	delta := make([][]int, len(in.States))
	set := make([][]bool, len(in.States))
	for s := range delta {
		delta[s] = make([]int, len(in.Events))
		set[s] = make([]bool, len(in.Events))
	}
	for _, tr := range in.Transitions {
		s, ok := stateIx[tr.From]
		if !ok {
			return fmt.Errorf("dfsm: json machine %q: unknown state %q", in.Name, tr.From)
		}
		e, ok := eventIx[tr.Event]
		if !ok {
			return fmt.Errorf("dfsm: json machine %q: unknown event %q", in.Name, tr.Event)
		}
		t, ok := stateIx[tr.To]
		if !ok {
			return fmt.Errorf("dfsm: json machine %q: unknown state %q", in.Name, tr.To)
		}
		delta[s][e] = t
		set[s][e] = true
	}
	for s := range set {
		for e := range set[s] {
			if !set[s][e] {
				return fmt.Errorf("dfsm: json machine %q: missing transition from %q on %q", in.Name, in.States[s], in.Events[e])
			}
		}
	}
	init, ok := stateIx[in.Initial]
	if !ok {
		return fmt.Errorf("dfsm: json machine %q: unknown initial state %q", in.Name, in.Initial)
	}
	built, err := NewMachine(in.Name, in.States, in.Events, delta, init)
	if err != nil {
		return err
	}
	*m = *built
	return nil
}
