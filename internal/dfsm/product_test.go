package dfsm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func counters(t *testing.T) (*Machine, *Machine) {
	t.Helper()
	a := MustMachine("A", []string{"a0", "a1", "a2"}, []string{"0"}, [][]int{{1}, {2}, {0}}, 0)
	b := MustMachine("B", []string{"b0", "b1", "b2"}, []string{"1"}, [][]int{{1}, {2}, {0}}, 0)
	return a, b
}

func TestReachableCrossProductCounters(t *testing.T) {
	a, b := counters(t)
	p, err := ReachableCrossProduct([]*Machine{a, b})
	if err != nil {
		t.Fatalf("ReachableCrossProduct: %v", err)
	}
	// Fig. 1(iii): the two independent mod-3 counters reach all 9 pairs.
	if p.Top.NumStates() != 9 {
		t.Fatalf("|R| = %d, want 9", p.Top.NumStates())
	}
	if p.StateSpace() != 9 {
		t.Fatalf("StateSpace = %d, want 9", p.StateSpace())
	}
	if got := p.Top.NumEvents(); got != 2 {
		t.Fatalf("top alphabet size %d, want 2", got)
	}
	// The projections track the component machines along any run.
	events := []string{"0", "1", "1", "0", "0"}
	ts := p.Top.Run(events)
	if p.Proj[ts][0] != a.Run(events) || p.Proj[ts][1] != b.Run(events) {
		t.Error("projection of the top run disagrees with the component runs")
	}
}

func TestReachableCrossProductPrunes(t *testing.T) {
	// Two copies of the same counter driven by the same event can never
	// diverge: the reachable product is the diagonal, 3 states not 9.
	a := MustMachine("A", []string{"a0", "a1", "a2"}, []string{"0"}, [][]int{{1}, {2}, {0}}, 0)
	b := a.Rename("B")
	p, err := ReachableCrossProduct([]*Machine{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if p.Top.NumStates() != 3 {
		t.Fatalf("|R| = %d, want 3 (diagonal)", p.Top.NumStates())
	}
	if p.StateSpace() != 9 {
		t.Fatalf("StateSpace = %d, want 9 (unpruned)", p.StateSpace())
	}
}

func TestReachableCrossProductEmpty(t *testing.T) {
	if _, err := ReachableCrossProduct(nil); err == nil {
		t.Fatal("cross product of zero machines accepted")
	}
}

func TestReachableCrossProductSingle(t *testing.T) {
	a, _ := counters(t)
	p, err := ReachableCrossProduct([]*Machine{a})
	if err != nil {
		t.Fatal(err)
	}
	if !Isomorphic(p.Top, a) {
		t.Error("R({A}) is not isomorphic to A")
	}
}

func TestComponentBlocksPartitionTheTop(t *testing.T) {
	a, b := counters(t)
	p, err := ReachableCrossProduct([]*Machine{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		blocks := p.ComponentBlocks(i)
		seen := make([]bool, p.Top.NumStates())
		for _, blk := range blocks {
			for _, ts := range blk {
				if seen[ts] {
					t.Fatalf("component %d: top state %d in two blocks", i, ts)
				}
				seen[ts] = true
			}
		}
		for ts, ok := range seen {
			if !ok {
				t.Fatalf("component %d: top state %d in no block", i, ts)
			}
		}
	}
}

// TestProductSimulatesComponents is the key semantic property, checked on
// random machines with random event sequences: the top machine's projection
// always equals each component's own run.
func TestProductSimulatesComponents(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ms := []*Machine{
			RandomMachine(rng, "X", 1+rng.Intn(4), []string{"a", "b"}),
			RandomMachine(rng, "Y", 1+rng.Intn(4), []string{"b", "c"}),
			RandomMachine(rng, "Z", 1+rng.Intn(3), []string{"a", "c"}),
		}
		p, err := ReachableCrossProduct(ms)
		if err != nil {
			return false
		}
		alpha := UnionAlphabet(ms)
		events := make([]string, rng.Intn(30))
		for i := range events {
			events[i] = alpha[rng.Intn(len(alpha))]
		}
		ts := p.Top.Run(events)
		for i, m := range ms {
			if p.Proj[ts][i] != m.Run(events) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestProductStateNames(t *testing.T) {
	a, b := counters(t)
	p, err := ReachableCrossProduct([]*Machine{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Top.StateName(0); got != "{a0,b0}" {
		t.Errorf("initial product state named %q, want {a0,b0}", got)
	}
	if got := p.Top.Name(); got != "R({A,B})" {
		t.Errorf("product named %q", got)
	}
}
