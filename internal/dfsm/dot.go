package dfsm

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the machine in Graphviz dot syntax for inspection of the
// generated fusion machines (the paper's figures are exactly such drawings).
// Parallel edges between the same pair of states are merged with a
// comma-separated label.
func (m *Machine) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", m.name)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=circle];\n")
	fmt.Fprintf(&b, "  __init [shape=point, label=\"\"];\n")
	fmt.Fprintf(&b, "  __init -> %q;\n", m.states[m.initial])
	type edge struct{ from, to int }
	labels := map[edge][]string{}
	for s, row := range m.delta {
		for e, t := range row {
			k := edge{s, t}
			labels[k] = append(labels[k], m.events[e])
		}
	}
	edges := make([]edge, 0, len(labels))
	for k := range labels {
		edges = append(edges, k)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, k := range edges {
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", m.states[k.from], m.states[k.to], strings.Join(labels[k], ","))
	}
	b.WriteString("}\n")
	return b.String()
}
