package dfsm

import (
	"fmt"
	"strings"
)

// Product is the reachable cross product R(A) of a set of machines
// (Section 2 of the paper): the machine over the union alphabet whose states
// are the reachable tuples of component states. It retains the projection
// from each product state to each component's state, which is exactly the
// "set representation" information Algorithm 1 recovers.
type Product struct {
	// Top is the product machine ⊤. Its state names are the component
	// tuples rendered as {s1,s2,...}.
	Top *Machine
	// Components are the input machines in order.
	Components []*Machine
	// Proj[t][i] is the state of Components[i] when Top is in state t.
	Proj [][]int
}

// maxProductStates bounds the BFS so that a pathological input cannot
// exhaust memory; the paper's tops have at most a few hundred states.
const maxProductStates = 1 << 22

// ReachableCrossProduct computes R(machines). It returns an error for an
// empty input or if the reachable product exceeds maxProductStates states.
func ReachableCrossProduct(machines []*Machine) (*Product, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("dfsm: cross product of no machines")
	}
	alphabet := UnionAlphabet(machines)
	n := len(machines)

	// Per-machine, per-union-event transition resolution: next[i][e] maps a
	// component state to its successor, with foreign events as identity.
	next := make([][][]int, n)
	for i, m := range machines {
		next[i] = make([][]int, len(alphabet))
		for e, ev := range alphabet {
			col := make([]int, m.NumStates())
			if k := m.EventIndex(ev); k >= 0 {
				for s := 0; s < m.NumStates(); s++ {
					col[s] = m.delta[s][k]
				}
			} else {
				for s := 0; s < m.NumStates(); s++ {
					col[s] = s
				}
			}
			next[i][e] = col
		}
	}

	type key string
	encode := func(tuple []int) key {
		var b strings.Builder
		for i, s := range tuple {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", s)
		}
		return key(b.String())
	}

	initial := make([]int, n)
	for i, m := range machines {
		initial[i] = m.Initial()
	}

	index := map[key]int{encode(initial): 0}
	tuples := [][]int{append([]int(nil), initial...)}
	var delta [][]int

	for head := 0; head < len(tuples); head++ {
		cur := tuples[head]
		row := make([]int, len(alphabet))
		for e := range alphabet {
			succ := make([]int, n)
			for i := range succ {
				succ[i] = next[i][e][cur[i]]
			}
			k := encode(succ)
			t, ok := index[k]
			if !ok {
				t = len(tuples)
				if t >= maxProductStates {
					return nil, fmt.Errorf("dfsm: reachable cross product exceeds %d states", maxProductStates)
				}
				index[k] = t
				tuples = append(tuples, succ)
			}
			row[e] = t
		}
		delta = append(delta, row)
	}

	names := make([]string, len(tuples))
	for t, tuple := range tuples {
		parts := make([]string, n)
		for i, s := range tuple {
			parts[i] = machines[i].StateName(s)
		}
		names[t] = "{" + strings.Join(parts, ",") + "}"
	}
	top, err := NewMachine(productName(machines), names, alphabet, delta, 0)
	if err != nil {
		return nil, err
	}
	return &Product{Top: top, Components: append([]*Machine(nil), machines...), Proj: tuples}, nil
}

func productName(machines []*Machine) string {
	parts := make([]string, len(machines))
	for i, m := range machines {
		parts[i] = m.Name()
	}
	return "R({" + strings.Join(parts, ",") + "})"
}

// ComponentBlocks returns, for component i, the partition of the top's
// states induced by projection: blocks[s] lists the top states whose i-th
// component is s. This is the set representation of machine i (Fig. 5).
func (p *Product) ComponentBlocks(i int) [][]int {
	blocks := make([][]int, p.Components[i].NumStates())
	for t, tuple := range p.Proj {
		s := tuple[i]
		blocks[s] = append(blocks[s], t)
	}
	return blocks
}

// StateSpace returns the product of the component sizes, i.e. the size of
// the unreached cross product; |Top| ≤ StateSpace().
func (p *Product) StateSpace() int {
	total := 1
	for _, m := range p.Components {
		total *= m.NumStates()
	}
	return total
}
