package dfsm

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Product is the reachable cross product R(A) of a set of machines
// (Section 2 of the paper): the machine over the union alphabet whose states
// are the reachable tuples of component states. It retains the projection
// from each product state to each component's state, which is exactly the
// "set representation" information Algorithm 1 recovers.
type Product struct {
	// Top is the product machine ⊤. Its state names are the component
	// tuples rendered as {s1,s2,...}.
	Top *Machine
	// Components are the input machines in order.
	Components []*Machine
	// Proj[t][i] is the state of Components[i] when Top is in state t.
	Proj [][]int
}

// maxProductStates bounds the BFS so that a pathological input cannot
// exhaust memory; the paper's tops have at most a few hundred states.
const maxProductStates = 1 << 22

// ReachableCrossProduct computes R(machines). It returns an error for an
// empty input or if the reachable product exceeds maxProductStates states.
//
// Visited tuples are deduplicated under a mixed-radix uint64 encoding
// (Σ sᵢ·strideᵢ with strideᵢ = Π|Mⱼ| for j<i) whenever Π|Mᵢ| fits in 64
// bits, avoiding the per-tuple string formatting that used to dominate
// NewSystem's allocation profile; wider products fall back to a packed
// byte-string key.
func ReachableCrossProduct(machines []*Machine) (*Product, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("dfsm: cross product of no machines")
	}
	alphabet := UnionAlphabet(machines)
	n := len(machines)

	// Per-machine, per-union-event transition resolution: next[i][e] maps a
	// component state to its successor, with foreign events as identity.
	next := make([][][]int, n)
	for i, m := range machines {
		next[i] = make([][]int, len(alphabet))
		for e, ev := range alphabet {
			col := make([]int, m.NumStates())
			if k := m.EventIndex(ev); k >= 0 {
				for s := 0; s < m.NumStates(); s++ {
					col[s] = m.delta[s][k]
				}
			} else {
				for s := 0; s < m.NumStates(); s++ {
					col[s] = s
				}
			}
			next[i][e] = col
		}
	}

	initial := make([]int, n)
	for i, m := range machines {
		initial[i] = m.Initial()
	}

	var (
		tuples [][]int
		delta  [][]int
		err    error
	)
	if strides, ok := mixedRadixStrides(machines); ok {
		encode := func(tuple []int) uint64 {
			var k uint64
			for i, s := range tuple {
				k += uint64(s) * strides[i]
			}
			return k
		}
		tuples, delta, err = productBFS(n, len(alphabet), next, initial, encode)
	} else {
		// Component state counts are < maxProductStates < 2^32 each, so four
		// little-endian bytes per component are collision-free.
		buf := make([]byte, 4*n)
		encode := func(tuple []int) string {
			for i, s := range tuple {
				binary.LittleEndian.PutUint32(buf[4*i:], uint32(s))
			}
			return string(buf)
		}
		tuples, delta, err = productBFS(n, len(alphabet), next, initial, encode)
	}
	if err != nil {
		return nil, err
	}

	names := make([]string, len(tuples))
	for t, tuple := range tuples {
		parts := make([]string, n)
		for i, s := range tuple {
			parts[i] = machines[i].StateName(s)
		}
		names[t] = "{" + strings.Join(parts, ",") + "}"
	}
	top, err := NewMachine(productName(machines), names, alphabet, delta, 0)
	if err != nil {
		return nil, err
	}
	return &Product{Top: top, Components: append([]*Machine(nil), machines...), Proj: tuples}, nil
}

// mixedRadixStrides returns per-component strides for the uint64 tuple
// encoding, or ok=false when Π|Mi| overflows uint64.
func mixedRadixStrides(machines []*Machine) ([]uint64, bool) {
	strides := make([]uint64, len(machines))
	prod := uint64(1)
	for i, m := range machines {
		strides[i] = prod
		size := uint64(m.NumStates())
		if size == 0 || prod > math.MaxUint64/size {
			return nil, false
		}
		prod *= size
	}
	return strides, true
}

// productBFS runs the reachable-tuple BFS with a caller-chosen comparable
// key encoding, returning the visited tuples in discovery order and the
// product transition table.
func productBFS[K comparable](n, numEvents int, next [][][]int, initial []int, encode func([]int) K) ([][]int, [][]int, error) {
	index := map[K]int{encode(initial): 0}
	tuples := [][]int{append([]int(nil), initial...)}
	var delta [][]int
	succ := make([]int, n) // scratch; copied only when a new tuple is found

	for head := 0; head < len(tuples); head++ {
		cur := tuples[head]
		row := make([]int, numEvents)
		for e := 0; e < numEvents; e++ {
			for i := range succ {
				succ[i] = next[i][e][cur[i]]
			}
			k := encode(succ)
			t, ok := index[k]
			if !ok {
				t = len(tuples)
				if t >= maxProductStates {
					return nil, nil, fmt.Errorf("dfsm: reachable cross product exceeds %d states", maxProductStates)
				}
				index[k] = t
				tuples = append(tuples, append([]int(nil), succ...))
			}
			row[e] = t
		}
		delta = append(delta, row)
	}
	return tuples, delta, nil
}

func productName(machines []*Machine) string {
	parts := make([]string, len(machines))
	for i, m := range machines {
		parts[i] = m.Name()
	}
	return "R({" + strings.Join(parts, ",") + "})"
}

// ComponentBlocks returns, for component i, the partition of the top's
// states induced by projection: blocks[s] lists the top states whose i-th
// component is s. This is the set representation of machine i (Fig. 5).
func (p *Product) ComponentBlocks(i int) [][]int {
	blocks := make([][]int, p.Components[i].NumStates())
	for t, tuple := range p.Proj {
		s := tuple[i]
		blocks[s] = append(blocks[s], t)
	}
	return blocks
}

// StateSpace returns the product of the component sizes, i.e. the size of
// the unreached cross product; |Top| ≤ StateSpace().
func (p *Product) StateSpace() int {
	total := 1
	for _, m := range p.Components {
		total *= m.NumStates()
	}
	return total
}
