package dfsm

import "fmt"

// Builder assembles a machine incrementally by naming states, events and
// transitions. It is the convenient front end used by the model zoo and the
// .fsm spec parser; NewMachine is the index-based back end.
type Builder struct {
	name    string
	states  []string
	events  []string
	stateIx map[string]int
	eventIx map[string]int
	// trans[state][event] = target, all by index; -1 means unset.
	trans   map[int]map[int]int
	initial string
	errs    []error
}

// NewBuilder returns a Builder for a machine with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		stateIx: make(map[string]int),
		eventIx: make(map[string]int),
		trans:   make(map[int]map[int]int),
	}
}

// State declares a state (idempotent) and returns its index.
func (b *Builder) State(name string) int {
	if i, ok := b.stateIx[name]; ok {
		return i
	}
	i := len(b.states)
	b.states = append(b.states, name)
	b.stateIx[name] = i
	return i
}

// Event declares an event (idempotent) and returns its index.
func (b *Builder) Event(name string) int {
	if i, ok := b.eventIx[name]; ok {
		return i
	}
	i := len(b.events)
	b.events = append(b.events, name)
	b.eventIx[name] = i
	return i
}

// Initial sets the initial state, declaring it if needed.
func (b *Builder) Initial(state string) *Builder {
	b.State(state)
	b.initial = state
	return b
}

// Transition adds from --event--> to, declaring states and the event as
// needed. Redefining an existing transition is recorded as an error.
func (b *Builder) Transition(from, event, to string) *Builder {
	s := b.State(from)
	e := b.Event(event)
	t := b.State(to)
	row, ok := b.trans[s]
	if !ok {
		row = make(map[int]int)
		b.trans[s] = row
	}
	if prev, dup := row[e]; dup && prev != t {
		b.errs = append(b.errs, fmt.Errorf("dfsm: builder %q: conflicting transition %s --%s--> {%s,%s}", b.name, from, event, b.states[prev], to))
		return b
	}
	row[e] = t
	return b
}

// Loop adds a self-loop on the given events.
func (b *Builder) Loop(state string, events ...string) *Builder {
	for _, e := range events {
		b.Transition(state, e, state)
	}
	return b
}

// Cycle adds transitions s1 --event--> s2 --event--> ... --event--> s1.
func (b *Builder) Cycle(event string, states ...string) *Builder {
	for i, s := range states {
		b.Transition(s, event, states[(i+1)%len(states)])
	}
	return b
}

// Build completes the machine. Missing transitions default to self-loops
// when defaultSelfLoop is true; otherwise they are errors. The paper's
// machines are completely specified over their own alphabets, but
// self-looping is a convenient way to express "event ignored in this state"
// for protocol machines such as TCP.
func (b *Builder) Build(defaultSelfLoop bool) (*Machine, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if b.initial == "" {
		if len(b.states) == 0 {
			return nil, fmt.Errorf("dfsm: builder %q: no states", b.name)
		}
		b.initial = b.states[0]
	}
	delta := make([][]int, len(b.states))
	for s := range b.states {
		delta[s] = make([]int, len(b.events))
		for e := range b.events {
			if t, ok := b.trans[s][e]; ok {
				delta[s][e] = t
			} else if defaultSelfLoop {
				delta[s][e] = s
			} else {
				return nil, fmt.Errorf("dfsm: builder %q: missing transition from %s on %s", b.name, b.states[s], b.events[e])
			}
		}
	}
	return NewMachine(b.name, b.states, b.events, delta, b.stateIx[b.initial])
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild(defaultSelfLoop bool) *Machine {
	m, err := b.Build(defaultSelfLoop)
	if err != nil {
		panic(err)
	}
	return m
}
