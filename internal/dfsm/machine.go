// Package dfsm implements deterministic finite state machines (DFSMs) as
// defined in Section 2 of Ogale, Balasubramanian and Garg, "A Fusion-based
// Approach for Tolerating Faults in Finite State Machines" (IPPS 2009).
//
// A DFSM is a quadruple (X, Σ, α, a0): a finite state set X, a finite event
// set Σ, a transition function α: X×Σ → X, and an initial state a0. Machines
// in a system may have different alphabets; an event outside a machine's
// alphabet is ignored (the machine self-loops), matching the paper's system
// model in which the environment broadcasts every event to every server.
package dfsm

import (
	"fmt"
	"sort"
	"strings"
)

// Machine is an immutable deterministic finite state machine. Construct one
// with NewMachine or a Builder; the zero value is not useful.
type Machine struct {
	name    string
	states  []string
	events  []string
	eventIx map[string]int
	initial int
	// delta[s][e] is the state reached from state s on event index e.
	delta [][]int
}

// NewMachine constructs a validated machine.
//
// states and events are the state and event names in index order; delta is
// indexed as delta[state][event]; initial is the initial state index. The
// slices are copied, so the caller may reuse them.
func NewMachine(name string, states, events []string, delta [][]int, initial int) (*Machine, error) {
	m := &Machine{
		name:    name,
		states:  append([]string(nil), states...),
		events:  append([]string(nil), events...),
		initial: initial,
		eventIx: make(map[string]int, len(events)),
		delta:   make([][]int, len(delta)),
	}
	for i, row := range delta {
		m.delta[i] = append([]int(nil), row...)
	}
	for i, e := range m.events {
		if _, dup := m.eventIx[e]; dup {
			return nil, fmt.Errorf("dfsm: machine %q: duplicate event %q", name, e)
		}
		m.eventIx[e] = i
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// MustMachine is NewMachine that panics on error; intended for statically
// known machine definitions such as the model zoo.
func MustMachine(name string, states, events []string, delta [][]int, initial int) *Machine {
	m, err := NewMachine(name, states, events, delta, initial)
	if err != nil {
		panic(err)
	}
	return m
}

// Validate checks the structural invariants of the machine: non-empty state
// set, total transition function with in-range targets, in-range initial
// state, unique state names, and reachability of every state from the
// initial state (the paper's model assumes all states are reachable).
func (m *Machine) Validate() error {
	if m.name == "" {
		return fmt.Errorf("dfsm: machine has empty name")
	}
	if len(m.states) == 0 {
		return fmt.Errorf("dfsm: machine %q has no states", m.name)
	}
	if m.initial < 0 || m.initial >= len(m.states) {
		return fmt.Errorf("dfsm: machine %q: initial state %d out of range [0,%d)", m.name, m.initial, len(m.states))
	}
	seen := make(map[string]bool, len(m.states))
	for _, s := range m.states {
		if s == "" {
			return fmt.Errorf("dfsm: machine %q has an empty state name", m.name)
		}
		if seen[s] {
			return fmt.Errorf("dfsm: machine %q: duplicate state name %q", m.name, s)
		}
		seen[s] = true
	}
	if len(m.delta) != len(m.states) {
		return fmt.Errorf("dfsm: machine %q: delta has %d rows, want %d", m.name, len(m.delta), len(m.states))
	}
	for s, row := range m.delta {
		if len(row) != len(m.events) {
			return fmt.Errorf("dfsm: machine %q: delta row %d has %d entries, want %d", m.name, s, len(row), len(m.events))
		}
		for e, t := range row {
			if t < 0 || t >= len(m.states) {
				return fmt.Errorf("dfsm: machine %q: delta[%d][%d]=%d out of range", m.name, s, e, t)
			}
		}
	}
	if unreachable := m.unreachableStates(); len(unreachable) > 0 {
		names := make([]string, len(unreachable))
		for i, s := range unreachable {
			names[i] = m.states[s]
		}
		return fmt.Errorf("dfsm: machine %q: unreachable states %v", m.name, names)
	}
	return nil
}

func (m *Machine) unreachableStates() []int {
	reached := make([]bool, len(m.states))
	stack := []int{m.initial}
	reached[m.initial] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for e := range m.events {
			t := m.delta[s][e]
			if !reached[t] {
				reached[t] = true
				stack = append(stack, t)
			}
		}
	}
	var out []int
	for s, r := range reached {
		if !r {
			out = append(out, s)
		}
	}
	return out
}

// Name returns the machine's name.
func (m *Machine) Name() string { return m.name }

// NumStates returns |X|, the size of the machine as defined in the paper.
func (m *Machine) NumStates() int { return len(m.states) }

// NumEvents returns |Σ|.
func (m *Machine) NumEvents() int { return len(m.events) }

// Initial returns the initial state index a0.
func (m *Machine) Initial() int { return m.initial }

// States returns a copy of the state names in index order.
func (m *Machine) States() []string { return append([]string(nil), m.states...) }

// Events returns a copy of the event names in index order.
func (m *Machine) Events() []string { return append([]string(nil), m.events...) }

// StateName returns the name of state s.
func (m *Machine) StateName(s int) string { return m.states[s] }

// StateIndex returns the index of the named state, or -1 if absent.
func (m *Machine) StateIndex(name string) int {
	for i, s := range m.states {
		if s == name {
			return i
		}
	}
	return -1
}

// EventIndex returns the index of the named event, or -1 if the event is not
// in this machine's alphabet.
func (m *Machine) EventIndex(name string) int {
	if i, ok := m.eventIx[name]; ok {
		return i
	}
	return -1
}

// HasEvent reports whether the event is in this machine's alphabet.
func (m *Machine) HasEvent(name string) bool {
	_, ok := m.eventIx[name]
	return ok
}

// NextByIndex returns α(s, e) for an event index of this machine.
func (m *Machine) NextByIndex(s, e int) int { return m.delta[s][e] }

// Next returns the successor of state s on the named event. Events outside
// the machine's alphabet are ignored: the machine stays in s.
func (m *Machine) Next(s int, event string) int {
	e, ok := m.eventIx[event]
	if !ok {
		return s
	}
	return m.delta[s][e]
}

// Run applies a sequence of (possibly foreign) events starting from the
// initial state and returns the final state.
func (m *Machine) Run(events []string) int {
	return m.RunFrom(m.initial, events)
}

// RunFrom applies a sequence of events starting from state s.
func (m *Machine) RunFrom(s int, events []string) int {
	for _, ev := range events {
		s = m.Next(s, ev)
	}
	return s
}

// Rename returns a copy of the machine with a different name.
func (m *Machine) Rename(name string) *Machine {
	c := m.clone()
	c.name = name
	return c
}

func (m *Machine) clone() *Machine {
	c := &Machine{
		name:    m.name,
		states:  append([]string(nil), m.states...),
		events:  append([]string(nil), m.events...),
		initial: m.initial,
		eventIx: make(map[string]int, len(m.eventIx)),
		delta:   make([][]int, len(m.delta)),
	}
	for k, v := range m.eventIx {
		c.eventIx[k] = v
	}
	for i, row := range m.delta {
		c.delta[i] = append([]int(nil), row...)
	}
	return c
}

// Equal reports whether two machines are structurally identical: same name,
// state names, event names, initial state and transition table.
func (m *Machine) Equal(o *Machine) bool {
	if m == o {
		return true
	}
	if m == nil || o == nil {
		return false
	}
	if m.name != o.name || m.initial != o.initial {
		return false
	}
	if len(m.states) != len(o.states) || len(m.events) != len(o.events) {
		return false
	}
	for i := range m.states {
		if m.states[i] != o.states[i] {
			return false
		}
	}
	for i := range m.events {
		if m.events[i] != o.events[i] {
			return false
		}
	}
	for s := range m.delta {
		for e := range m.delta[s] {
			if m.delta[s][e] != o.delta[s][e] {
				return false
			}
		}
	}
	return true
}

// String returns a short human-readable summary.
func (m *Machine) String() string {
	return fmt.Sprintf("%s(|X|=%d, |Σ|=%d)", m.name, len(m.states), len(m.events))
}

// Table renders the full transition table, for debugging and the CLI.
func (m *Machine) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine %s  initial=%s\n", m.name, m.states[m.initial])
	fmt.Fprintf(&b, "%-16s", "state\\event")
	for _, e := range m.events {
		fmt.Fprintf(&b, " %-12s", e)
	}
	b.WriteByte('\n')
	for s, row := range m.delta {
		fmt.Fprintf(&b, "%-16s", m.states[s])
		for _, t := range row {
			fmt.Fprintf(&b, " %-12s", m.states[t])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// UnionAlphabet returns the sorted union of the alphabets of the given
// machines. The cross product and the fault-graph machinery operate over
// this union.
func UnionAlphabet(machines []*Machine) []string {
	set := make(map[string]bool)
	for _, m := range machines {
		for _, e := range m.events {
			set[e] = true
		}
	}
	out := make([]string, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}
