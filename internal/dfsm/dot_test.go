package dfsm

import (
	"strings"
	"testing"
)

func TestDOTOutput(t *testing.T) {
	m := MustMachine("toggle", []string{"off", "on"}, []string{"a", "b"},
		[][]int{{1, 1}, {0, 0}}, 0)
	dot := m.DOT()
	for _, want := range []string{
		`digraph "toggle"`,
		`__init -> "off"`,
		`"off" -> "on" [label="a,b"]`, // parallel edges merged
		`"on" -> "off"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestDOTDeterministic(t *testing.T) {
	m := MustMachine("m", []string{"a", "b", "c"}, []string{"x", "y"},
		[][]int{{1, 2}, {2, 0}, {0, 1}}, 0)
	if m.DOT() != m.DOT() {
		t.Error("DOT output not deterministic")
	}
}
