package dfsm

import (
	"fmt"
	"sort"
)

// This file implements classical completely-specified FSM reduction
// (Huffman 1954, Hopcroft 1971), which the paper assumes has been applied to
// its input machines a priori ("we implicitly assume that the input machines
// to our algorithm are reduced"). A bare DFSM has no outputs, so reduction
// is defined with respect to a state labelling (a Moore-machine output): two
// states are equivalent iff no event sequence distinguishes their labels.

// MinimizeWithLabels returns the machine obtained by merging states that are
// equivalent under the given per-state labels, using Moore's partition
// refinement (O(|X|²·|Σ|) worst case, plenty for the paper's sizes). The
// labels slice must have one entry per state. State names of the reduced
// machine are the lexicographically least member of each class.
func (m *Machine) MinimizeWithLabels(labels []int) (*Machine, error) {
	if len(labels) != len(m.states) {
		return nil, fmt.Errorf("dfsm: minimize %q: %d labels for %d states", m.name, len(labels), len(m.states))
	}
	n := len(m.states)
	// class[s] is the current equivalence class of s; start from labels,
	// normalized to 0..k-1.
	class := make([]int, n)
	{
		norm := map[int]int{}
		for s, l := range labels {
			id, ok := norm[l]
			if !ok {
				id = len(norm)
				norm[l] = id
			}
			class[s] = id
		}
	}

	for {
		// Signature of a state: its class plus the classes of its successors.
		type sig struct {
			own  int
			succ string
		}
		sigIx := map[sig]int{}
		next := make([]int, n)
		for s := 0; s < n; s++ {
			buf := make([]byte, 0, 4*len(m.events))
			for e := range m.events {
				c := class[m.delta[s][e]]
				buf = append(buf, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
			}
			k := sig{own: class[s], succ: string(buf)}
			id, ok := sigIx[k]
			if !ok {
				id = len(sigIx)
				sigIx[k] = id
			}
			next[s] = id
		}
		if len(sigIx) == countClasses(class) {
			break
		}
		class = next
	}

	return m.quotientByClasses(class)
}

func countClasses(class []int) int {
	seen := map[int]bool{}
	for _, c := range class {
		seen[c] = true
	}
	return len(seen)
}

// quotientByClasses builds the machine whose states are the classes. The
// classes must be closed (successors of same-class states land in the same
// class); this holds by construction in MinimizeWithLabels.
func (m *Machine) quotientByClasses(class []int) (*Machine, error) {
	k := countClasses(class)
	// Representative (least index) and name per class.
	repr := make([]int, k)
	for i := range repr {
		repr[i] = -1
	}
	members := make([][]string, k)
	for s, c := range class {
		if repr[c] == -1 || s < repr[c] {
			repr[c] = s
		}
		members[c] = append(members[c], m.states[s])
	}
	names := make([]string, k)
	for c := range names {
		sort.Strings(members[c])
		names[c] = members[c][0]
	}
	delta := make([][]int, k)
	for c := range delta {
		delta[c] = make([]int, len(m.events))
		for e := range m.events {
			delta[c][e] = class[m.delta[repr[c]][e]]
		}
	}
	// Verify closure: every member must agree with the representative.
	for s, c := range class {
		for e := range m.events {
			if class[m.delta[s][e]] != delta[c][e] {
				return nil, fmt.Errorf("dfsm: quotient of %q: classes not closed at state %s event %s", m.name, m.states[s], m.events[e])
			}
		}
	}
	return NewMachine(m.name+"/min", names, m.events, delta, class[m.initial])
}

// Isomorphic reports whether two machines are identical up to state renaming
// (same alphabet in the same order, and a bijection of states preserving the
// initial state and transitions). Since DFSMs are deterministic and all
// states are reachable, the bijection, if it exists, is unique and found by
// parallel BFS from the initial states.
func Isomorphic(a, b *Machine) bool {
	if a.NumStates() != b.NumStates() || a.NumEvents() != b.NumEvents() {
		return false
	}
	for e := range a.events {
		if a.events[e] != b.events[e] {
			return false
		}
	}
	match := make([]int, a.NumStates()) // a-state -> b-state
	for i := range match {
		match[i] = -1
	}
	match[a.initial] = b.initial
	queue := []int{a.initial}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for e := range a.events {
			ta, tb := a.delta[s][e], b.delta[match[s]][e]
			if match[ta] == -1 {
				match[ta] = tb
				queue = append(queue, ta)
			} else if match[ta] != tb {
				return false
			}
		}
	}
	// Check the map is injective (it is total because all states reachable).
	seen := make([]bool, b.NumStates())
	for _, t := range match {
		if t == -1 || seen[t] {
			return false
		}
		seen[t] = true
	}
	return true
}
