package dfsm

import "testing"

func twoEvent(t *testing.T) *Machine {
	t.Helper()
	return MustMachine("m", []string{"p", "q"}, []string{"a", "b"},
		[][]int{{1, 0}, {0, 1}}, 0)
}

func TestRenameEvents(t *testing.T) {
	m := twoEvent(t)
	r, err := m.RenameEvents(map[string]string{"a": "x"})
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasEvent("x") || r.HasEvent("a") || !r.HasEvent("b") {
		t.Errorf("events = %v", r.Events())
	}
	if r.Next(0, "x") != 1 {
		t.Error("transition lost in rename")
	}
	if _, err := m.RenameEvents(map[string]string{"a": "b"}); err == nil {
		t.Error("merging rename accepted")
	}
}

func TestPrefixEvents(t *testing.T) {
	m := twoEvent(t)
	p := m.PrefixEvents("s1.")
	if !p.HasEvent("s1.a") || p.HasEvent("a") {
		t.Errorf("events = %v", p.Events())
	}
	// Original untouched.
	if !m.HasEvent("a") {
		t.Error("PrefixEvents mutated the receiver")
	}
	// Two prefixed copies are alphabet-disjoint: their product is the full
	// grid.
	q := m.PrefixEvents("s2.")
	prod, err := ReachableCrossProduct([]*Machine{p.Rename("P"), q.Rename("Q")})
	if err != nil {
		t.Fatal(err)
	}
	if prod.Top.NumStates() != 4 {
		t.Errorf("|product| = %d, want 4 (disjoint alphabets)", prod.Top.NumStates())
	}
}

func TestRelabelStates(t *testing.T) {
	m := twoEvent(t)
	r, err := m.RelabelStates(map[string]string{"p": "start"})
	if err != nil {
		t.Fatal(err)
	}
	if r.StateIndex("start") != 0 || r.StateIndex("p") != -1 {
		t.Errorf("states = %v", r.States())
	}
	if _, err := m.RelabelStates(map[string]string{"p": "q"}); err == nil {
		t.Error("merging relabel accepted")
	}
}

func TestRestrictAlphabet(t *testing.T) {
	// A 3-state machine where event "b" is the only way to reach state r.
	m := MustMachine("m", []string{"p", "q", "r"}, []string{"a", "b"},
		[][]int{{1, 2}, {0, 2}, {2, 2}}, 0)
	r, err := m.RestrictAlphabet("b")
	if err != nil {
		t.Fatal(err)
	}
	if r.NumEvents() != 1 || r.HasEvent("b") {
		t.Errorf("events = %v", r.Events())
	}
	// State r becomes unreachable and is pruned.
	if r.NumStates() != 2 || r.StateIndex("r") != -1 {
		t.Errorf("states = %v", r.States())
	}
	if r.Next(0, "a") != r.StateIndex("q") {
		t.Error("surviving transition broken")
	}
	if _, err := m.RestrictAlphabet("a", "b"); err == nil {
		t.Error("empty alphabet accepted")
	}
}

func TestRestrictAlphabetKeepsAll(t *testing.T) {
	m := twoEvent(t)
	r, err := m.RestrictAlphabet("zzz") // dropping a non-event is a no-op
	if err != nil {
		t.Fatal(err)
	}
	if !Isomorphic(m, r) {
		t.Error("no-op restriction changed the machine")
	}
}
