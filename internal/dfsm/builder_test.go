package dfsm

import (
	"strings"
	"testing"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder("m").Initial("off")
	b.Transition("off", "press", "on")
	b.Transition("on", "press", "off")
	m, err := b.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 2 || m.NumEvents() != 1 {
		t.Fatalf("built %v", m)
	}
	if m.Run([]string{"press", "press", "press"}) != m.StateIndex("on") {
		t.Error("builder transitions wrong")
	}
}

func TestBuilderDefaultSelfLoop(t *testing.T) {
	b := NewBuilder("m").Initial("a")
	b.Transition("a", "go", "b")
	b.Event("stay")
	m, err := b.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Next(m.StateIndex("b"), "stay") != m.StateIndex("b") {
		t.Error("missing transition did not default to self-loop")
	}
}

func TestBuilderMissingTransitionError(t *testing.T) {
	b := NewBuilder("m").Initial("a")
	b.Transition("a", "go", "b")
	// b has no "go" transition.
	if _, err := b.Build(false); err == nil {
		t.Fatal("Build(false) accepted a partial machine")
	}
}

func TestBuilderConflictingTransition(t *testing.T) {
	b := NewBuilder("m").Initial("a")
	b.Transition("a", "go", "b")
	b.Transition("a", "go", "c")
	if _, err := b.Build(true); err == nil {
		t.Fatal("conflicting transition accepted")
	}
	// Same transition twice is fine.
	b2 := NewBuilder("m").Initial("a")
	b2.Transition("a", "go", "a")
	b2.Transition("a", "go", "a")
	if _, err := b2.Build(true); err != nil {
		t.Fatalf("idempotent transition rejected: %v", err)
	}
}

func TestBuilderNoStates(t *testing.T) {
	if _, err := NewBuilder("m").Build(true); err == nil {
		t.Fatal("empty builder accepted")
	}
}

func TestBuilderDefaultInitial(t *testing.T) {
	b := NewBuilder("m")
	b.Transition("first", "e", "second")
	b.Transition("second", "e", "first")
	m, err := b.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	if m.StateName(m.Initial()) != "first" {
		t.Errorf("default initial = %q, want first state declared", m.StateName(m.Initial()))
	}
}

func TestBuilderCycleAndLoop(t *testing.T) {
	b := NewBuilder("ring").Initial("a")
	b.Cycle("tick", "a", "b", "c")
	b.Loop("a", "noop")
	b.Loop("b", "noop")
	b.Loop("c", "noop")
	m, err := b.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Run([]string{"tick", "noop", "tick", "tick"}) != m.StateIndex("a") {
		t.Error("cycle did not wrap")
	}
}

func TestBuilderMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic")
		}
	}()
	NewBuilder("m").MustBuild(true)
}

func TestBuilderUnreachableState(t *testing.T) {
	b := NewBuilder("m").Initial("a")
	b.Loop("a", "e")
	b.Loop("island", "e")
	if _, err := b.Build(false); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("unreachable state accepted: %v", err)
	}
}
