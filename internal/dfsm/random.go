package dfsm

import (
	"fmt"
	"math/rand"
)

// RandomMachine generates a pseudo-random machine with the given number of
// states and the given alphabet, guaranteed valid (all states reachable).
// It is used by property-based tests and by scaling benchmarks; the paper's
// evaluation uses hand-written protocol machines, but random machines
// exercise the same code paths at arbitrary sizes.
//
// Reachability is ensured by first threading a random spanning arborescence
// from state 0 and then filling the remaining transitions uniformly.
func RandomMachine(rng *rand.Rand, name string, numStates int, events []string) *Machine {
	if numStates <= 0 || len(events) == 0 {
		panic(fmt.Sprintf("dfsm: RandomMachine(%d states, %d events)", numStates, len(events)))
	}
	delta := make([][]int, numStates)
	for s := range delta {
		delta[s] = make([]int, len(events))
		for e := range delta[s] {
			delta[s][e] = -1
		}
	}
	// Spanning structure: state s (s>0) is entered from a random earlier
	// state on a random event, so every state is reachable from 0.
	perm := rng.Perm(numStates - 1)
	for _, i := range perm {
		s := i + 1
		from := rng.Intn(s)
		ev := rng.Intn(len(events))
		// If that slot is taken, scan for a free slot on any earlier state.
		placed := false
		for attempts := 0; attempts < 4*numStates && !placed; attempts++ {
			if delta[from][ev] == -1 {
				delta[from][ev] = s
				placed = true
			} else {
				from = rng.Intn(s)
				ev = rng.Intn(len(events))
			}
		}
		if !placed {
			// Fall back to overwriting: reachability of the overwritten
			// target will be restored by the fill below or it simply makes
			// the machine smaller; regenerate instead for determinism.
			delta[from][ev] = s
		}
	}
	for s := range delta {
		for e := range delta[s] {
			if delta[s][e] == -1 {
				delta[s][e] = rng.Intn(numStates)
			}
		}
	}
	states := make([]string, numStates)
	for s := range states {
		states[s] = fmt.Sprintf("s%d", s)
	}
	m, err := NewMachine(name, states, events, delta, 0)
	if err != nil {
		// The arborescence guarantees reachability; only the overwrite
		// fallback can break it. Prune unreachable states and retry.
		m = pruneUnreachable(name, states, events, delta)
	}
	return m
}

func pruneUnreachable(name string, states []string, events []string, delta [][]int) *Machine {
	n := len(states)
	reached := make([]bool, n)
	reached[0] = true
	stack := []int{0}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for e := range events {
			t := delta[s][e]
			if !reached[t] {
				reached[t] = true
				stack = append(stack, t)
			}
		}
	}
	remap := make([]int, n)
	var keptStates []string
	k := 0
	for s := 0; s < n; s++ {
		if reached[s] {
			remap[s] = k
			keptStates = append(keptStates, states[s])
			k++
		} else {
			remap[s] = -1
		}
	}
	newDelta := make([][]int, k)
	for s := 0; s < n; s++ {
		if !reached[s] {
			continue
		}
		row := make([]int, len(events))
		for e := range events {
			row[e] = remap[delta[s][e]]
		}
		newDelta[remap[s]] = row
	}
	return MustMachine(name, keptStates, events, newDelta, 0)
}
