package dfsm

import "fmt"

// Machine transformations used when assembling systems: renaming events to
// make alphabets disjoint (independent sensors) or shared (coupling
// machines to one stream), and relabelling states for presentation.

// RenameEvents returns a copy of the machine with events renamed through
// the mapping; events absent from the mapping keep their names. Renaming
// must not merge two events.
func (m *Machine) RenameEvents(mapping map[string]string) (*Machine, error) {
	events := make([]string, len(m.events))
	seen := make(map[string]bool, len(m.events))
	for i, e := range m.events {
		name := e
		if to, ok := mapping[e]; ok {
			name = to
		}
		if seen[name] {
			return nil, fmt.Errorf("dfsm: rename merges two events into %q", name)
		}
		seen[name] = true
		events[i] = name
	}
	return NewMachine(m.name, m.states, events, m.delta, m.initial)
}

// PrefixEvents returns a copy with every event prefixed — the quick way to
// make a machine's alphabet disjoint from everything else.
func (m *Machine) PrefixEvents(prefix string) *Machine {
	events := make([]string, len(m.events))
	for i, e := range m.events {
		events[i] = prefix + e
	}
	out, err := NewMachine(m.name, m.states, events, m.delta, m.initial)
	if err != nil {
		// Prefixing cannot introduce duplicates or invalidate anything.
		panic(fmt.Sprintf("dfsm: PrefixEvents: %v", err))
	}
	return out
}

// RelabelStates returns a copy with states renamed through the mapping;
// unmapped states keep their names. Relabelling must keep names unique.
func (m *Machine) RelabelStates(mapping map[string]string) (*Machine, error) {
	states := make([]string, len(m.states))
	seen := make(map[string]bool, len(m.states))
	for i, s := range m.states {
		name := s
		if to, ok := mapping[s]; ok {
			name = to
		}
		if seen[name] {
			return nil, fmt.Errorf("dfsm: relabel merges two states into %q", name)
		}
		seen[name] = true
		states[i] = name
	}
	return NewMachine(m.name, states, m.events, m.delta, m.initial)
}

// RestrictAlphabet returns the machine obtained by deleting the given
// events (transitions on them disappear; the machine then ignores those
// events entirely, per the system model). Deleting events can make states
// unreachable; those are pruned. Deleting every event is an error.
func (m *Machine) RestrictAlphabet(drop ...string) (*Machine, error) {
	dropSet := make(map[string]bool, len(drop))
	for _, e := range drop {
		dropSet[e] = true
	}
	var events []string
	var keepIdx []int
	for i, e := range m.events {
		if !dropSet[e] {
			events = append(events, e)
			keepIdx = append(keepIdx, i)
		}
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("dfsm: restricting %q to the empty alphabet", m.name)
	}
	// Build restricted delta, then prune unreachable states.
	n := len(m.states)
	delta := make([][]int, n)
	for s := 0; s < n; s++ {
		row := make([]int, len(events))
		for k, ei := range keepIdx {
			row[k] = m.delta[s][ei]
		}
		delta[s] = row
	}
	reached := make([]bool, n)
	reached[m.initial] = true
	stack := []int{m.initial}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range delta[s] {
			if !reached[t] {
				reached[t] = true
				stack = append(stack, t)
			}
		}
	}
	remap := make([]int, n)
	var states []string
	k := 0
	for s := 0; s < n; s++ {
		if reached[s] {
			remap[s] = k
			states = append(states, m.states[s])
			k++
		} else {
			remap[s] = -1
		}
	}
	outDelta := make([][]int, k)
	for s := 0; s < n; s++ {
		if !reached[s] {
			continue
		}
		row := make([]int, len(events))
		for e := range events {
			row[e] = remap[delta[s][e]]
		}
		outDelta[remap[s]] = row
	}
	return NewMachine(m.name, states, events, outDelta, remap[m.initial])
}
