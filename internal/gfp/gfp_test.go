package gfp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFieldPrimality(t *testing.T) {
	for _, p := range []int{2, 3, 5, 7, 11, 13, 97} {
		if _, err := NewField(p); err != nil {
			t.Errorf("prime %d rejected: %v", p, err)
		}
	}
	for _, p := range []int{-1, 0, 1, 4, 6, 9, 100} {
		if _, err := NewField(p); err == nil {
			t.Errorf("non-prime %d accepted", p)
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	f := MustField(7)
	prop := func(a, b, c int) bool {
		x, y, z := f.Norm(a), f.Norm(b), f.Norm(c)
		if f.Add(x, y) != f.Add(y, x) || f.Mul(x, y) != f.Mul(y, x) {
			return false
		}
		if f.Mul(x, f.Add(y, z)) != f.Add(f.Mul(x, y), f.Mul(x, z)) {
			return false
		}
		if f.Sub(f.Add(x, y), y) != x {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInverse(t *testing.T) {
	f := MustField(13)
	for x := 1; x < 13; x++ {
		iv, err := f.Inv(x)
		if err != nil {
			t.Fatal(err)
		}
		if f.Mul(x, iv) != 1 {
			t.Errorf("Inv(%d)=%d is not an inverse", x, iv)
		}
	}
	if _, err := f.Inv(0); err == nil {
		t.Error("Inv(0) succeeded")
	}
	if _, err := f.Inv(13); err == nil {
		t.Error("Inv(p) succeeded (≡ 0)")
	}
}

func TestPow(t *testing.T) {
	f := MustField(11)
	if f.Pow(2, 10) != 1 { // Fermat
		t.Error("2^10 mod 11 != 1")
	}
	if f.Pow(3, 0) != 1 || f.Pow(0, 5) != 0 {
		t.Error("edge cases wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative exponent accepted")
		}
	}()
	f.Pow(2, -1)
}

func TestNorm(t *testing.T) {
	f := MustField(5)
	if f.Norm(-1) != 4 || f.Norm(7) != 2 || f.Norm(0) != 0 {
		t.Error("Norm wrong")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	f := MustField(7)
	// x + 2y = 5, 3x + y = 4  →  over GF(7): x = ?, verify by plugging in.
	a := [][]int{{1, 2}, {3, 1}}
	x, err := f.Solve(a, []int{5, 4})
	if err != nil {
		t.Fatal(err)
	}
	if f.Add(x[0], f.Mul(2, x[1])) != 5 || f.Add(f.Mul(3, x[0]), x[1]) != 4 {
		t.Errorf("solution %v does not satisfy the system", x)
	}
}

func TestSolveSingular(t *testing.T) {
	f := MustField(5)
	if _, err := f.Solve([][]int{{1, 2}, {2, 4}}, []int{1, 2}); err == nil {
		t.Error("singular system solved")
	}
	if _, err := f.Solve([][]int{{1, 2}}, []int{1, 2}); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := f.Solve([][]int{{1}}, []int{1, 2}); err == nil {
		t.Error("rhs mismatch accepted")
	}
	if got, err := f.Solve(nil, nil); err != nil || got != nil {
		t.Error("empty system should be trivially solvable")
	}
}

func TestSolveDoesNotMutate(t *testing.T) {
	f := MustField(5)
	a := [][]int{{1, 2}, {3, 4}}
	rhs := []int{1, 2}
	if _, err := f.Solve(a, rhs); err != nil {
		t.Fatal(err)
	}
	if a[0][0] != 1 || a[1][1] != 4 || rhs[0] != 1 {
		t.Error("Solve mutated its inputs")
	}
}

// TestSolveRandomRoundTrip: generate x, compute rhs = A·x, solve, compare.
func TestSolveRandomRoundTrip(t *testing.T) {
	f := MustField(13)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(6)
		a := make([][]int, n)
		for i := range a {
			a[i] = make([]int, n)
			for j := range a[i] {
				a[i][j] = rng.Intn(13)
			}
		}
		want := make([]int, n)
		for i := range want {
			want[i] = rng.Intn(13)
		}
		rhs := make([]int, n)
		for i := range rhs {
			s := 0
			for j := range want {
				s = f.Add(s, f.Mul(a[i][j], want[j]))
			}
			rhs[i] = s
		}
		got, err := f.Solve(a, rhs)
		if err != nil {
			continue // singular matrix drawn; fine
		}
		for i := range got {
			// Verify A·got = rhs (singular systems may have many solutions).
			s := 0
			for j := range got {
				s = f.Add(s, f.Mul(a[i][j], got[j]))
			}
			if s != rhs[i] {
				t.Fatalf("trial %d: A·x != rhs at row %d", trial, i)
			}
		}
	}
}

func TestVandermondeSolve(t *testing.T) {
	f := MustField(11)
	points := []int{1, 2, 3}
	// Secret x = (4, 9, 1); rhs_m = Σ_j points[j]^m · x_j.
	want := []int{4, 9, 1}
	rhs := make([]int, 3)
	for m := 0; m < 3; m++ {
		s := 0
		for j, pt := range points {
			s = f.Add(s, f.Mul(f.Pow(pt, m), want[j]))
		}
		rhs[m] = s
	}
	got, err := f.SolveVandermonde(points, rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestVandermondeDistinctPointsNonSingular(t *testing.T) {
	f := MustField(13)
	// All triples of distinct nonzero points must be solvable.
	for a := 1; a < 13; a++ {
		for b := a + 1; b < 13; b++ {
			for c := b + 1; c < 13; c++ {
				if _, err := f.SolveVandermonde([]int{a, b, c}, []int{1, 2, 3}); err != nil {
					t.Fatalf("points (%d,%d,%d): %v", a, b, c, err)
				}
			}
		}
	}
}

func TestMustFieldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustField(4) did not panic")
		}
	}()
	MustField(4)
}
