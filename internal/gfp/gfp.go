// Package gfp implements arithmetic and linear algebra over the prime
// field GF(p). Section 3 of the paper draws an explicit analogy between
// fusion machines and erasure codes over state spaces; this package is the
// concrete code-side of that analogy: the weighted-sum backup counters of
// the sensor-network experiments are Reed–Solomon-style evaluations over
// GF(p), and recovering f crashed counters is solving a Vandermonde system.
package gfp

import "fmt"

// Field is the prime field GF(p).
type Field struct {
	p   int
	inv []int // multiplicative inverses, inv[0] unused
}

// NewField constructs GF(p); p must be prime (checked).
func NewField(p int) (*Field, error) {
	if p < 2 {
		return nil, fmt.Errorf("gfp: %d is not prime", p)
	}
	for d := 2; d*d <= p; d++ {
		if p%d == 0 {
			return nil, fmt.Errorf("gfp: %d is not prime (divisible by %d)", p, d)
		}
	}
	f := &Field{p: p, inv: make([]int, p)}
	// inv[x] by Fermat: x^(p-2) mod p.
	for x := 1; x < p; x++ {
		f.inv[x] = f.pow(x, p-2)
	}
	return f, nil
}

// MustField is NewField that panics on error.
func MustField(p int) *Field {
	f, err := NewField(p)
	if err != nil {
		panic(err)
	}
	return f
}

// P returns the field characteristic.
func (f *Field) P() int { return f.p }

// Norm maps any integer into [0, p).
func (f *Field) Norm(x int) int { return ((x % f.p) + f.p) % f.p }

// Add returns x+y mod p.
func (f *Field) Add(x, y int) int { return f.Norm(x + y) }

// Sub returns x−y mod p.
func (f *Field) Sub(x, y int) int { return f.Norm(x - y) }

// Mul returns x·y mod p.
func (f *Field) Mul(x, y int) int { return f.Norm(f.Norm(x) * f.Norm(y)) }

// Inv returns the multiplicative inverse of x; x must be nonzero mod p.
func (f *Field) Inv(x int) (int, error) {
	x = f.Norm(x)
	if x == 0 {
		return 0, fmt.Errorf("gfp: zero has no inverse")
	}
	return f.inv[x], nil
}

// pow computes x^k mod p by square-and-multiply.
func (f *Field) pow(x, k int) int {
	x = f.Norm(x)
	r := 1
	for k > 0 {
		if k&1 == 1 {
			r = r * x % f.p
		}
		x = x * x % f.p
		k >>= 1
	}
	return r
}

// Pow returns x^k mod p for k ≥ 0.
func (f *Field) Pow(x, k int) int {
	if k < 0 {
		panic("gfp: negative exponent")
	}
	return f.pow(x, k)
}

// Solve performs Gaussian elimination on a·x = rhs over GF(p), returning
// the unique solution or an error when the matrix is singular. a is not
// modified.
func (f *Field) Solve(a [][]int, rhs []int) ([]int, error) {
	n := len(a)
	if n == 0 {
		return nil, nil
	}
	if len(rhs) != n {
		return nil, fmt.Errorf("gfp: %d equations, %d right-hand sides", n, len(rhs))
	}
	// Augmented working copy.
	m := make([][]int, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, fmt.Errorf("gfp: row %d has %d columns, want %d", i, len(a[i]), n)
		}
		m[i] = make([]int, n+1)
		for j, v := range a[i] {
			m[i][j] = f.Norm(v)
		}
		m[i][n] = f.Norm(rhs[i])
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if m[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, fmt.Errorf("gfp: singular system (no pivot in column %d)", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		iv := f.inv[m[col][col]]
		for c := col; c <= n; c++ {
			m[col][c] = m[col][c] * iv % f.p
		}
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			factor := m[r][col]
			for c := col; c <= n; c++ {
				m[r][c] = f.Sub(m[r][c], factor*m[col][c])
			}
		}
	}
	x := make([]int, n)
	for i := range x {
		x[i] = m[i][n]
	}
	return x, nil
}

// Vandermonde returns the k×k matrix V[m][j] = points[j]^m — the
// coefficient minor that arises when recovering k erased counters from the
// first k weighted-sum backups.
func (f *Field) Vandermonde(points []int) [][]int {
	k := len(points)
	v := make([][]int, k)
	for m := 0; m < k; m++ {
		v[m] = make([]int, k)
		for j, pt := range points {
			v[m][j] = f.Pow(pt, m)
		}
	}
	return v
}

// SolveVandermonde solves V·x = rhs for the Vandermonde matrix on the
// given evaluation points. Distinct nonzero points mod p guarantee a
// unique solution.
func (f *Field) SolveVandermonde(points, rhs []int) ([]int, error) {
	return f.Solve(f.Vandermonde(points), rhs)
}
