package exec

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunExecutesEveryTaskOnce drives the work-stealing cursor to
// exhaustion: every index in [0,n) must be executed exactly once, for
// task counts around the worker count and far above it.
func TestRunExecutesEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		for _, n := range []int{0, 1, 2, workers - 1, workers, workers + 1, 3*workers + 1, 1000} {
			if n < 0 {
				continue
			}
			counts := make([]atomic.Int32, n)
			p.Run(n, func(c *Ctx, i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: task %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestRunDeterministicOrdering checks the contract callers rely on for
// bit-identical outputs: index-addressed results are identical across
// repeated pooled runs and equal to the serial computation. Run under
// -race this also exercises the completion ordering.
func TestRunDeterministicOrdering(t *testing.T) {
	const n = 500
	p := New(4)
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for rep := 0; rep < 20; rep++ {
		got := make([]int, n)
		p.Run(n, func(c *Ctx, i int) { got[i] = i * i })
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("rep %d: got[%d] = %d, want %d", rep, i, got[i], want[i])
			}
		}
	}
}

// TestPanicContainment: a panicking task must not kill a pool worker, the
// rest of the batch must still run, Run must re-panic with a *TaskPanic,
// and the pool must remain fully usable afterwards.
func TestPanicContainment(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		const n = 64
		var ran atomic.Int32
		func() {
			defer func() {
				r := recover()
				tp, ok := r.(*TaskPanic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T (%v), want *TaskPanic", workers, r, r)
				}
				if tp.Value != "boom" || tp.Task != 13 {
					t.Fatalf("workers=%d: TaskPanic = {Task:%d Value:%v}", workers, tp.Task, tp.Value)
				}
				if !strings.Contains(tp.Error(), "boom") {
					t.Fatalf("workers=%d: Error() lacks panic value: %s", workers, tp.Error())
				}
			}()
			p.Run(n, func(c *Ctx, i int) {
				if i == 13 {
					panic("boom")
				}
				ran.Add(1)
			})
			t.Fatalf("workers=%d: Run did not panic", workers)
		}()
		if got := ran.Load(); got != n-1 {
			t.Fatalf("workers=%d: %d non-panicking tasks ran, want %d", workers, got, n-1)
		}
		// The pool survives: a follow-up batch completes normally.
		var after atomic.Int32
		p.Run(n, func(c *Ctx, i int) { after.Add(1) })
		if after.Load() != n {
			t.Fatalf("workers=%d: pool unusable after panic: %d/%d tasks ran", workers, after.Load(), n)
		}
	}
}

// TestNestedRunCompletes guards the deadlock-freedom property: tasks that
// themselves submit batches to the same pool must complete even when the
// outer batch occupies every worker, because submitters participate in
// their own batches.
func TestNestedRunCompletes(t *testing.T) {
	p := New(2)
	var total atomic.Int32
	p.Run(8, func(c *Ctx, i int) {
		p.Run(8, func(c *Ctx, j int) { total.Add(1) })
	})
	if total.Load() != 64 {
		t.Fatalf("nested runs executed %d tasks, want 64", total.Load())
	}
}

// TestScratchSlots checks that slot values stick to their context and are
// reused across batches — the property the closure scratch relies on.
func TestScratchSlots(t *testing.T) {
	id := NewSlotID()
	other := NewSlotID()
	p := New(4)
	var reused atomic.Int32
	for rep := 0; rep < 50; rep++ {
		p.Run(32, func(c *Ctx, i int) {
			if v := c.Get(id); v != nil {
				reused.Add(1)
				if _, ok := v.(*[]int); !ok {
					t.Errorf("slot holds %T, want *[]int", v)
				}
			} else {
				buf := make([]int, 8)
				c.Set(id, &buf)
			}
			if c.Get(other) != nil {
				t.Error("unset slot returned non-nil")
			}
		})
	}
	if reused.Load() == 0 {
		t.Fatal("scratch slots were never reused across batches")
	}
}

// TestAcquireRelease checks the inline-context contract: an acquired
// context round-trips slot values and survives release/reacquire cycles.
// Recycling itself goes through sync.Pool and is deliberately best-effort
// (the race detector randomizes it), so persistence across uses is only
// asserted for pool-worker contexts (TestScratchSlots), never here.
func TestAcquireRelease(t *testing.T) {
	id := NewSlotID()
	p := New(4)
	for rep := 0; rep < 100; rep++ {
		c := p.Acquire()
		if c == nil {
			t.Fatal("Acquire returned nil context")
		}
		if v := c.Get(id); v != nil && v != 42 {
			t.Fatalf("slot holds unexpected value %v", v)
		}
		c.Set(id, 42)
		if c.Get(id) != 42 {
			t.Fatal("slot value did not round-trip")
		}
		p.Release(c)
	}
}

// TestConcurrentSubmitters checks that many goroutines can share one pool.
func TestConcurrentSubmitters(t *testing.T) {
	p := New(4)
	var total atomic.Int64
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for rep := 0; rep < 50; rep++ {
				p.Run(17, func(c *Ctx, i int) { total.Add(1) })
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if want := int64(8 * 50 * 17); total.Load() != want {
		t.Fatalf("executed %d tasks, want %d", total.Load(), want)
	}
}

// TestCloseDrainsWorkers: Close must tear down every spawned worker
// goroutine (the seed behaviour was "workers are never torn down"), be
// idempotent, and leave the pool usable for serial fallback Runs.
func TestCloseDrainsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	p := New(4)
	var total atomic.Int32
	p.Run(256, func(c *Ctx, i int) { total.Add(1) })
	if total.Load() != 256 {
		t.Fatalf("ran %d tasks, want 256", total.Load())
	}
	p.Close()
	if !p.Closed() {
		t.Fatal("Closed() false after Close")
	}
	p.Close() // idempotent

	// All worker goroutines must be gone. Give the runtime a few
	// scheduling rounds to reap them before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines leaked after Close: %d, started with %d", got, before)
	}

	// A Run after Close still completes correctly (serially, on the caller).
	var after atomic.Int32
	p.Run(64, func(c *Ctx, i int) { after.Add(1) })
	if after.Load() != 64 {
		t.Fatalf("post-Close Run executed %d tasks, want 64", after.Load())
	}
}

// TestCloseConcurrentWithRun races Close against active submitters: every
// submitted batch must still execute all of its tasks exactly once (the
// caller participates, so closed-pool batches complete serially), and no
// Run may panic on the closed announcement queue.
func TestCloseConcurrentWithRun(t *testing.T) {
	for rep := 0; rep < 20; rep++ {
		p := New(4)
		const gs, reps, n = 4, 10, 53
		var total atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < gs; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < reps; r++ {
					p.Run(n, func(c *Ctx, i int) { total.Add(1) })
				}
			}()
		}
		p.Close()
		wg.Wait()
		if want := int64(gs * reps * n); total.Load() != want {
			t.Fatalf("rep %d: executed %d tasks, want %d", rep, total.Load(), want)
		}
	}
}

func TestDefaultPool(t *testing.T) {
	if Default() == nil || Default().Workers() < 1 {
		t.Fatal("default pool missing or empty")
	}
	if p := New(0); p.Workers() < 1 {
		t.Fatal("New(0) should size to GOMAXPROCS")
	}
}
