// Package exec provides the persistent worker pool shared by every
// parallel layer of the library: closure fan-out in partition, event
// broadcast in sim, and the sensor-network replay in experiments.
//
// Before this package each of those layers spun up its own goroutine set
// per call. The pool replaces that with long-lived workers (the
// service-pipeline architecture of bgpipe: stages persist, work flows
// through them): a call shards its tasks over the workers through an
// atomic cursor, the calling goroutine participates in the work, and the
// workers keep per-worker scratch slots alive across calls so hot paths
// recycle their buffers without a sync.Pool round trip per task.
//
// Properties relied on by the callers:
//
//   - Determinism: tasks are identified by index; callers write results
//     into index-addressed slots, so the outcome is independent of which
//     worker ran which task.
//   - Deadlock freedom: the submitting goroutine always works on its own
//     batch, so nested Run calls (a task that itself submits a batch)
//     complete even when every worker is busy.
//   - Panic containment: a panicking task never kills a pool worker.
//     The remaining tasks of the batch still run; Run re-panics with a
//     *TaskPanic carrying the first recovered value and its stack.
package exec

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// SlotID names a per-worker scratch slot. Packages register their slots
// once at init time with NewSlotID and then access them through Ctx.Get
// and Ctx.Set from inside tasks; each worker keeps its own value per slot
// alive across batches, which is what lets closure scratch (union-find
// forests, propagation stacks, the seeded-closure working set of the
// incremental descent engine) be reused instead of reallocated per task.
type SlotID int

var slotCount atomic.Int32

// NewSlotID registers a new scratch slot. Call from package init.
func NewSlotID() SlotID { return SlotID(slotCount.Add(1) - 1) }

// Ctx is the per-worker context handed to every task. A Ctx is only ever
// used by one goroutine at a time; its scratch slots need no locking.
type Ctx struct {
	slots []any
}

// Get returns the worker's value for the slot, or nil if unset.
func (c *Ctx) Get(id SlotID) any {
	if int(id) >= len(c.slots) {
		return nil
	}
	return c.slots[id]
}

// Set stores the worker's value for the slot.
func (c *Ctx) Set(id SlotID, v any) {
	for int(id) >= len(c.slots) {
		c.slots = append(c.slots, nil)
	}
	c.slots[id] = v
}

// TaskPanic is the value Run re-panics with when a task panicked: the
// first recovered value plus the stack of the panicking task.
type TaskPanic struct {
	Task  int    // index of the panicking task
	Value any    // the recovered panic value
	Stack []byte // stack captured at recovery
}

func (t *TaskPanic) Error() string {
	return fmt.Sprintf("exec: task %d panicked: %v\n%s", t.Task, t.Value, t.Stack)
}

// batch is one Run invocation in flight: a task count, the task body,
// the work-stealing cursor, and completion tracking.
type batch struct {
	n       int64
	fn      func(c *Ctx, i int)
	cursor  atomic.Int64
	pending atomic.Int64
	done    chan struct{}
	failed  atomic.Pointer[TaskPanic] // first panic wins
}

// work drains tasks from the batch cursor until exhaustion.
func (b *batch) work(c *Ctx) {
	for {
		i := b.cursor.Add(1) - 1
		if i >= b.n {
			return
		}
		b.exec(c, int(i))
	}
}

// exec runs one task with panic containment and completion accounting.
func (b *batch) exec(c *Ctx, i int) {
	defer func() {
		if r := recover(); r != nil {
			b.failed.CompareAndSwap(nil, &TaskPanic{Task: i, Value: r, Stack: debug.Stack()})
		}
		if b.pending.Add(-1) == 0 {
			close(b.done)
		}
	}()
	b.fn(c, i)
}

// Pool is a persistent sharded worker pool. Construct with New or use the
// package-level Default; a Pool must not be copied after first use.
type Pool struct {
	// adaptive pools (New(0)) track runtime.GOMAXPROCS at every Run, so a
	// `go test -cpu 1,4` sweep or a live GOMAXPROCS change resizes their
	// effective parallelism; fixed pools keep the worker count they were
	// constructed with.
	adaptive bool
	fixed    int
	queue    chan *batch

	mu      sync.Mutex // guards worker spawning
	spawned int32      // workers started so far (atomically readable)

	// closeMu serializes batch announcements against Close: announcers hold
	// the read side, Close holds the write side while it marks the pool
	// closed and closes the queue, so no announcement ever races the close.
	closeMu sync.RWMutex
	closed  bool
	workers sync.WaitGroup // live worker goroutines, for Close to drain

	// spare recycles contexts for submitting goroutines (which participate
	// in their own batches but are not pool workers) and for Do.
	spare sync.Pool
}

// New returns a pool with the given number of workers; workers <= 0 means
// "follow runtime.GOMAXPROCS". Worker goroutines start lazily as parallel
// Runs demand them and then live until Close tears them down.
func New(workers int) *Pool {
	p := &Pool{
		adaptive: workers <= 0,
		fixed:    workers,
		// The queue only carries batch announcements; a fixed modest
		// capacity suffices even when GOMAXPROCS grows later, because
		// dropped announcements are always safe (callers participate).
		queue: make(chan *batch, 256),
	}
	p.spare.New = func() any { return &Ctx{} }
	return p
}

var defaultPool = New(0)

// Default returns the package-level shared pool, which follows
// GOMAXPROCS. All facade entry points that take no explicit Engine run on
// this pool.
func Default() *Pool { return defaultPool }

// Workers returns the pool's current worker target.
func (p *Pool) Workers() int {
	if p.adaptive {
		return runtime.GOMAXPROCS(0)
	}
	return p.fixed
}

// ensureWorkers lazily spawns persistent workers up to want. Callers must
// hold closeMu (read side) so spawning never races Close's drain.
func (p *Pool) ensureWorkers(want int) {
	if int(atomic.LoadInt32(&p.spawned)) >= want {
		return
	}
	p.mu.Lock()
	for int(p.spawned) < want {
		p.workers.Add(1)
		go func() {
			defer p.workers.Done()
			c := &Ctx{}
			for b := range p.queue {
				b.work(c)
			}
		}()
		atomic.AddInt32(&p.spawned, 1)
	}
	p.mu.Unlock()
}

// Close shuts the pool down: no new batch announcements are accepted, the
// worker goroutines drain any already-announced batches and exit, and
// Close returns once every worker is gone. Close is idempotent and safe
// to call concurrently with Run: a Run that races or follows Close still
// executes its full batch correctly on the calling goroutine (callers
// always participate in their own batches), it just loses parallelism.
// Closing the package-level Default pool is not supported.
func (p *Pool) Close() {
	p.closeMu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.closeMu.Unlock()
	p.workers.Wait()
}

// Closed reports whether Close has been called.
func (p *Pool) Closed() bool {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	return p.closed
}

// Run executes fn(c, i) for every i in [0, n), distributing tasks over
// the pool workers through an atomic cursor, and returns when all n tasks
// have finished. The calling goroutine participates in the work, so Run
// makes progress — and nested Runs complete — even when every worker is
// busy. If any task panicked, Run panics with a *TaskPanic after the
// whole batch has drained.
func (p *Pool) Run(n int, fn func(c *Ctx, i int)) {
	if n <= 0 {
		return
	}
	c := p.spare.Get().(*Ctx)
	defer p.spare.Put(c)

	workers := p.Workers()
	if n == 1 || workers <= 1 {
		// Serial fast path: no goroutine handoff for single tasks or
		// single-worker pools, with the same run-all-then-panic semantics.
		var first *TaskPanic
		for i := 0; i < n; i++ {
			if tp := runContained(c, fn, i); tp != nil && first == nil {
				first = tp
			}
		}
		if first != nil {
			panic(first)
		}
		return
	}

	b := &batch{n: int64(n), fn: fn, done: make(chan struct{})}
	b.pending.Store(int64(n))

	// Announce the batch to at most n-1 helpers (the caller takes a
	// share). Dropping announcements when the queue is full — or skipping
	// them entirely on a closed pool — is safe: the caller's own work loop
	// guarantees the batch completes.
	helpers := workers
	if n-1 < helpers {
		helpers = n - 1
	}
	p.closeMu.RLock()
	if !p.closed {
		p.ensureWorkers(helpers)
	announce:
		for k := 0; k < helpers; k++ {
			select {
			case p.queue <- b:
			default:
				break announce // queue full; caller and enqueued helpers suffice
			}
		}
	}
	p.closeMu.RUnlock()

	b.work(c)
	<-b.done
	if tp := b.failed.Load(); tp != nil {
		panic(tp)
	}
}

// runContained executes one task serially with the same panic capture as
// the pooled path.
func runContained(c *Ctx, fn func(c *Ctx, i int), i int) (tp *TaskPanic) {
	defer func() {
		if r := recover(); r != nil {
			tp = &TaskPanic{Task: i, Value: r, Stack: debug.Stack()}
		}
	}()
	fn(c, i)
	return nil
}

// Acquire returns a recycled context for inline use on the calling
// goroutine, so serial entry points (a single closure, a tiny event
// batch) share the same scratch-slot recycling as pooled tasks without
// any handoff — and without the closure allocation a callback API would
// force on hot paths. Pair with Release, typically via defer.
func (p *Pool) Acquire() *Ctx { return p.spare.Get().(*Ctx) }

// Release returns an Acquired context to the pool.
func (p *Pool) Release(c *Ctx) { p.spare.Put(c) }
