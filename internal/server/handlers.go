package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	fusion "repro"
	"repro/internal/core"
	"repro/internal/dfsm"
	"repro/internal/fcache"
	"repro/internal/sim"
	"repro/internal/trace"
)

// headerCache reports how a generate request was satisfied: "hit",
// "miss", "coalesced", or "bypass" (cache disabled or noCache set).
const headerCache = "X-Fusion-Cache"

// resolveMachines turns a request's machine-set description (zoo names or
// an inline .fsm spec, exactly one of the two) into machines.
func resolveMachines(req MachineSetRequest) ([]*fusion.Machine, error) {
	switch {
	case len(req.Zoo) > 0 && req.Spec != "":
		return nil, fmt.Errorf("give either zoo names or an inline spec, not both")
	case len(req.Zoo) > 0:
		ms := make([]*fusion.Machine, len(req.Zoo))
		for i, name := range req.Zoo {
			m, err := fusion.ZooMachine(strings.TrimSpace(name))
			if err != nil {
				return nil, err
			}
			ms[i] = m
		}
		return ms, nil
	case req.Spec != "":
		ms, err := fusion.ParseSpec(strings.NewReader(req.Spec))
		if err != nil {
			return nil, err
		}
		if len(ms) == 0 {
			return nil, fmt.Errorf("spec defines no machines")
		}
		return ms, nil
	default:
		return nil, fmt.Errorf("no machines: set \"zoo\" or \"spec\"")
	}
}

// httpError carries a specific HTTP status out of the generate compute
// callback, so cache-coalesced waiters report the leader's failure with
// the right code instead of a generic 500.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

// handleGenerate runs Algorithm 2 for the requested machine set and fault
// budget on the tenant's engine, routed through the shared fusion cache.
// Unlike the cluster routes it is not wrapped in admitted(): the admission
// slot is taken inside the cache's singleflight compute, so N concurrent
// identical requests hold one slot (the flight leader's), not N.
func (s *Server) handleGenerate(t *tenant, w http.ResponseWriter, r *http.Request) {
	if !s.readBody(w, r) {
		return
	}
	var req GenerateRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.F < 0 {
		writeErr(w, http.StatusBadRequest, "f must be >= 0")
		return
	}
	ms, err := resolveMachines(req.MachineSetRequest)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	s.generateVia(t.engine, t, w, r, req, ms)
}

// handleGenerateFollower serves POST /v1/generate on a follower: fusion
// generation is a pure function of the request, so a replica answers it
// locally — on its own engine with the daemon's admission limits, through
// the same shared cache — instead of shedding 503. The response body is
// byte-identical to the leader's for the same request; the staleness
// headers only mark which node answered.
func (s *Server) handleGenerateFollower(w http.ResponseWriter, r *http.Request) {
	st := s.follower.Status()
	w.Header().Set(headerRole, RoleFollower)
	w.Header().Set(headerApplied, strconv.FormatUint(st.Applied, 10))
	w.Header().Set(headerLag, strconv.FormatUint(st.Lag(), 10))
	if !s.readBody(w, r) {
		return
	}
	var req GenerateRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.F < 0 {
		writeErr(w, http.StatusBadRequest, "f must be >= 0")
		return
	}
	ms, err := resolveMachines(req.MachineSetRequest)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	s.generateVia(s.genFollower, nil, w, r, req, ms)
}

// generateVia answers one generate request on eng. With the cache enabled
// and the request cacheable, the result is looked up by content address —
// a canonical digest of the machine tables, f, and the semantics-affecting
// options — and concurrent identical requests coalesce onto one Algorithm 2
// run. t attributes the hit/miss to a tenant (nil on followers, which run
// no tenant state).
func (s *Server) generateVia(eng *fusion.Engine, t *tenant, w http.ResponseWriter, r *http.Request, req GenerateRequest, ms []*fusion.Machine) {
	compute := func() (fcache.Entry, error) {
		if err := eng.Acquire(r.Context()); err != nil {
			return fcache.Entry{}, err
		}
		defer eng.Release()
		sys, err := fusion.NewSystem(ms)
		if err != nil {
			return fcache.Entry{}, &httpError{http.StatusBadRequest, err.Error()}
		}
		parts, err := eng.Generate(sys, req.F)
		if err != nil {
			return fcache.Entry{}, &httpError{http.StatusUnprocessableEntity, err.Error()}
		}
		return fcache.Entry{N: sys.N(), Parts: parts}, nil
	}

	var ent fcache.Entry
	var err error
	outcome := "bypass"
	if s.fcache != nil && !req.NoCache {
		// The digest must match what the engine/library layer would compute
		// for the same call, so a daemon cache warmed by the pre-warmer and
		// one warmed by requests agree: default GenerateOptions, Pool
		// excluded by construction.
		key := core.RequestDigest(ms, req.F, core.GenerateOptions{})
		var out fcache.Outcome
		ent, out, err = s.fcache.Do(key, compute)
		outcome = out.String()
	} else {
		ent, err = compute()
	}
	if err != nil {
		var he *httpError
		if errors.As(err, &he) {
			writeErr(w, he.code, he.msg)
		} else {
			s.writeAdmissionErr(w, err)
		}
		return
	}
	w.Header().Set(headerCache, outcome)
	if t != nil {
		if outcome == "hit" || outcome == "coalesced" {
			t.cacheHits.Add(1)
		} else {
			t.cacheMisses.Add(1)
		}
	}
	resp := GenerateResponse{N: ent.N, F: req.F, Machines: make([]string, len(ms))}
	for i, m := range ms {
		resp.Machines[i] = m.Name()
	}
	resp.Backups = make([]BackupResponse, len(ent.Parts))
	for i, p := range ent.Parts {
		resp.Backups[i] = BackupResponse{States: p.NumBlocks(), Blocks: p.Blocks()}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleClusterCreate builds a simulated deployment on the tenant's
// engine and registers a handle for it.
func (s *Server) handleClusterCreate(t *tenant, w http.ResponseWriter, r *http.Request) {
	var req ClusterCreateRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.F < 1 {
		writeErr(w, http.StatusBadRequest, "f must be >= 1")
		return
	}
	ms, err := resolveMachines(req.MachineSetRequest)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	// Refuse before the expensive build: fusion generation for a cluster
	// that the registry would only reject is wasted pool time. Add below
	// stays the authoritative gate for the race between this check and
	// registration, via the typed sim.ErrRegistryFull.
	if t.clusters.Full() {
		w.Header().Set("Retry-After", s.retryAfter())
		writeErr(w, http.StatusTooManyRequests, "cluster capacity reached; delete one first")
		return
	}
	c, err := t.engine.NewCluster(ms, req.F, req.Seed)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	// Snapshot the response before Add makes the cluster reachable by
	// concurrent requests, then stamp the id in.
	resp := clusterResponse("", c, ms)
	resp.ID, err = t.clusters.Add(c)
	switch {
	case errors.Is(err, sim.ErrRegistryFull):
		// The advisory Full() pre-check raced a concurrent create; the
		// authoritative rejection gets the same capacity answer.
		w.Header().Set("Retry-After", s.retryAfter())
		writeErr(w, http.StatusTooManyRequests, err.Error())
		return
	case err != nil:
		// Store-backed registries can also fail to persist the spec; the
		// cluster was not registered.
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func clusterResponse(id string, c *sim.Cluster, ms []*fusion.Machine) ClusterResponse {
	if ms == nil {
		ms = c.System().Machines
	}
	names := c.ServerNames()
	return ClusterResponse{
		ID:       id,
		Servers:  names,
		Backups:  len(names) - len(ms),
		Top:      c.System().N(),
		Alphabet: dfsm.UnionAlphabet(ms),
		Step:     c.Step(),
		States:   c.States(),
	}
}

// cluster resolves the {id} path value against the tenant's registry,
// writing the 404 itself when the handle is unknown.
func (t *tenant) cluster(w http.ResponseWriter, r *http.Request) (*sim.Handle, string, bool) {
	id := r.PathValue("id")
	h, ok := t.clusters.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no cluster %q for tenant %q", id, t.name))
		return nil, id, false
	}
	return h, id, true
}

func (s *Server) handleClusterGet(t *tenant, w http.ResponseWriter, r *http.Request) {
	h, id, ok := t.cluster(w, r)
	if !ok {
		return
	}
	h.Do(func(c *sim.Cluster) {
		writeJSON(w, http.StatusOK, clusterResponse(id, c, nil))
	})
}

func (s *Server) handleClusterDelete(t *tenant, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ok, err := t.clusters.Remove(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no cluster %q for tenant %q", id, t.name))
		return
	}
	if err != nil {
		// Dropped from the live table but the durable record survived; a
		// restart would resurrect it, so the client must know.
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleClusterEvents broadcasts an event window, then injects faults at
// the cut — the paper's execution model, over HTTP. The whole
// apply-inject-respond sequence runs under the cluster handle's lock, so
// concurrent requests to the same cluster cannot interleave: each
// request's faults strike at its own cut and its response describes its
// own mutations.
func (s *Server) handleClusterEvents(t *tenant, w http.ResponseWriter, r *http.Request) {
	h, id, ok := t.cluster(w, r)
	if !ok {
		return
	}
	var req EventsRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.Random != nil && (req.Random.Count < 0 || req.Random.Count > 1_000_000) {
		writeErr(w, http.StatusBadRequest, "random.count must be in [0, 1000000]")
		return
	}
	faults := make([]trace.Fault, 0, len(req.Faults))
	for _, fr := range req.Faults {
		var kind trace.FaultKind
		switch strings.ToLower(fr.Kind) {
		case "crash":
			kind = trace.Crash
		case "byzantine":
			kind = trace.Byzantine
		default:
			writeErr(w, http.StatusBadRequest,
				fmt.Sprintf("unknown fault kind %q: use \"crash\" or \"byzantine\"", fr.Kind))
			return
		}
		faults = append(faults, trace.Fault{Server: fr.Server, Kind: kind})
	}

	// The sequence runs under the handle's Update so it is serialized
	// against concurrent requests AND journaled: on a store-backed
	// registry the response below is written only after the mutations are
	// durable, so an acknowledged window is never lost to a crash.
	// Handler-level rejections are carried out of the callback and
	// written after, because a journal failure must override a buffered
	// success response.
	var resp EventsResponse
	var failCode int
	var failMsg string
	err := h.Update(func(tx *sim.Tx) error {
		c := tx.Cluster()
		// Validate every fault target before any mutation: a typo'd
		// server name must not leave the cluster half-advanced (a client
		// treating 400 as "nothing happened" would double-apply its
		// window on retry). With names and kinds pre-checked, injection
		// below cannot fail.
		known := make(map[string]bool)
		for _, name := range c.ServerNames() {
			known[name] = true
		}
		for _, f := range faults {
			if !known[f.Server] {
				failCode, failMsg = http.StatusBadRequest, fmt.Sprintf("sim: no server %q", f.Server)
				return nil
			}
		}
		events := req.Events
		if req.Random != nil {
			gen := trace.NewGenerator(req.Random.Seed, c.System().Machines)
			events = append(append([]string(nil), events...), gen.Take(req.Random.Count)...)
		}
		tx.ApplyAll(events)
		for i, f := range faults {
			if err := tx.Inject(f); err != nil {
				failCode, failMsg = http.StatusInternalServerError,
					fmt.Sprintf("fault %d of %d: %s", i+1, len(faults), err)
				return nil
			}
		}
		resp = EventsResponse{
			ID:       id,
			Applied:  len(events),
			Step:     c.Step(),
			Servers:  c.ServerNames(),
			States:   c.States(),
			Injected: req.Faults,
		}
		return nil
	})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "persisting cluster mutation: "+err.Error())
		return
	}
	if failCode != 0 {
		writeErr(w, failCode, failMsg)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleClusterRecover runs one recovery round (Algorithm 3) and restores
// every server, with the vote and the response snapshot under the same
// handle lock.
func (s *Server) handleClusterRecover(t *tenant, w http.ResponseWriter, r *http.Request) {
	h, id, ok := t.cluster(w, r)
	if !ok {
		return
	}
	var resp RecoverResponse
	var failMsg string
	err := h.Update(func(tx *sim.Tx) error {
		c := tx.Cluster()
		out, err := tx.Recover()
		if err != nil {
			// The faults exceeded what the fusion tolerates: the vote is
			// ambiguous. That is a state of the experiment, not of the
			// server; no server state changes, but the failed round is
			// journaled so its counter survives a restart.
			failMsg = err.Error()
			return nil
		}
		restored := out.Restored
		if restored == nil {
			restored = []string{}
		}
		liars := out.Liars
		if liars == nil {
			liars = []string{}
		}
		resp = RecoverResponse{
			ID:         id,
			TopState:   out.TopState,
			Restored:   restored,
			Liars:      liars,
			Consistent: len(c.Verify()) == 0,
			Servers:    c.ServerNames(),
			States:     c.States(),
		}
		return nil
	})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "persisting cluster mutation: "+err.Error())
		return
	}
	if failMsg != "" {
		writeErr(w, http.StatusUnprocessableEntity, failMsg)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
