package server

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/obsv"
	"repro/internal/store"
)

// storeObs aggregates group-commit flush observations across every
// tenant store of the daemon: how long each batch's write+fsync took and
// how many staged appends it coalesced. One instance serves the whole
// server — the batches of different tenants are the same phenomenon
// (disk flushes) and /metrics reports them as one family; per-tenant
// fsync/record counters come from each Dir's own WALStats.
type storeObs struct {
	flushSync obsv.Histogram
	batch     batchHist
}

// onFlush is the store.DirOptions.OnFlush hook; it runs on the flushing
// goroutine, so it only touches atomics.
func (so *storeObs) onFlush(fs store.FlushStats) {
	so.flushSync.Record(fs.Sync)
	so.batch.record(fs.Appends)
}

// batchHist is a tiny power-of-two histogram of appends-per-batch —
// obsv.Histogram is time-bucketed, and batch size needs count buckets.
// Writers are lock-free; the renderer tolerates racing writers because
// record bumps total BEFORE its bucket, so a cumulative read (buckets
// first, total last) never shows +Inf below a finite bucket.
type batchHist struct {
	counts [11]atomic.Uint64 // le 1, 2, 4, ... 1024
	total  atomic.Uint64
	sum    atomic.Uint64
}

func (h *batchHist) record(n int) {
	h.total.Add(1)
	h.sum.Add(uint64(n))
	b, le := 0, 1
	for b < len(h.counts) && n > le {
		b++
		le <<= 1
	}
	if b < len(h.counts) {
		h.counts[b].Add(1)
	} // else: beyond the largest finite bound, counted by +Inf alone
}

// write renders the histogram in the Prometheus text format.
func (h *batchHist) write(b *strings.Builder, name, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	le := 1
	for i := range h.counts {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=\"%d\"} %d\n", name, le, cum)
		le <<= 1
	}
	total := h.total.Load()
	if total < cum {
		total = cum // racing writer bumped a bucket after we read total
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
	fmt.Fprintf(b, "%s_sum %d\n", name, h.sum.Load())
	fmt.Fprintf(b, "%s_count %d\n", name, total)
}
