package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obsv"
)

// This file tests the observability plane as wired through the real
// server: request ids on every response path (the shed paths above
// all), the per-route latency histograms behind /metrics (verified by
// the strict exposition parser), the /debug/log tail, and the process
// fields in /healthz.

// TestRequestIDOnEveryPath: every response the daemon writes carries
// X-Fusion-Request-Id and X-Fusion-Role — success, 404, and both shed
// flavors (429 admission, 503 follower write).
func TestRequestIDOnEveryPath(t *testing.T) {
	s := mustNew(t, Options{MaxTenants: 1, MaxInFlight: 1})
	defer s.Close()

	// Success path generates an id.
	w := do(t, s, "GET", "/healthz", "", "", nil)
	if w.Header().Get(obsv.HeaderRequestID) == "" {
		t.Fatal("healthz response has no request id")
	}
	if got := w.Header().Get("X-Fusion-Role"); got != roleSingle {
		t.Fatalf("role header = %q, want %q", got, roleSingle)
	}

	// Unmatched route: the middleware wraps the whole mux, so even the
	// mux's own 404 is stamped.
	w = do(t, s, "GET", "/no/such/route", "", "", nil)
	if w.Code != http.StatusNotFound || w.Header().Get(obsv.HeaderRequestID) == "" {
		t.Fatalf("404 path: status %d, id %q", w.Code, w.Header().Get(obsv.HeaderRequestID))
	}

	// Tenant-capacity shed (429): MaxTenants=1, so a second tenant name
	// is refused — deterministically, before any engine work.
	if w = do(t, s, "POST", "/v1/clusters", "first", `{"zoo":["0-Counter","1-Counter"],"f":1}`, nil); w.Code != http.StatusCreated {
		t.Fatalf("minting first tenant: %d %s", w.Code, w.Body.String())
	}
	w = do(t, s, "POST", "/v1/clusters", "second", `{"zoo":["0-Counter","1-Counter"],"f":1}`, nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("second tenant: status %d, want 429", w.Code)
	}
	if w.Header().Get(obsv.HeaderRequestID) == "" {
		t.Fatal("tenant shed (429) lost the request id")
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("tenant shed (429) lost Retry-After")
	}
	if w.Header().Get("X-Fusion-Role") != roleSingle {
		t.Fatal("tenant shed (429) lost the role header")
	}

	// Engine-saturation shed (429): hold tenant "first"'s only slot
	// directly, then ask for admitted work.
	s.mu.Lock()
	eng := s.tenants["first"].engine
	s.mu.Unlock()
	if err := eng.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	w = do(t, s, "POST", "/v1/clusters", "first", `{"zoo":["0-Counter","1-Counter"],"f":1}`, nil)
	eng.Release()
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated engine: status %d, want 429", w.Code)
	}
	if w.Header().Get(obsv.HeaderRequestID) == "" || w.Header().Get("Retry-After") == "" {
		t.Fatalf("admission shed (429) lost tracing headers: id=%q retry=%q",
			w.Header().Get(obsv.HeaderRequestID), w.Header().Get("Retry-After"))
	}
}

// TestFollowerShedCarriesRequestID: a write on a follower sheds 503
// with the leader's address — and still carries the request id (here a
// propagated one) and the follower role.
func TestFollowerShedCarriesRequestID(t *testing.T) {
	f := mustNew(t, Options{Role: RoleFollower, DataDir: t.TempDir(), LeaderURL: "http://primary:8080"})
	defer f.Close()

	r := httptest.NewRequest("POST", "/v1/clusters", strings.NewReader(`{"zoo":["0-Counter"],"f":1}`))
	r.Header.Set(obsv.HeaderRequestID, "soak-42")
	w := httptest.NewRecorder()
	f.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("follower write: status %d, want 503", w.Code)
	}
	if got := w.Header().Get(obsv.HeaderRequestID); got != "soak-42" {
		t.Fatalf("follower shed id = %q, want propagated soak-42", got)
	}
	if got := w.Header().Get(headerRole); got != RoleFollower {
		t.Fatalf("follower shed role = %q, want %q", got, RoleFollower)
	}
	if got := w.Header().Get(headerLeader); got != "http://primary:8080" {
		t.Fatalf("follower shed Leader = %q", got)
	}
}

// TestMetricsExposition drives every v1 route plus the operational
// endpoints, then holds /metrics to the strict parser: well-formed
// families, a latency series for each driven route, and tenant + cache
// labels on the generate series.
func TestMetricsExposition(t *testing.T) {
	s := mustNew(t, Options{FusionCache: 16})
	defer s.Close()

	gen := `{"zoo":["0-Counter","1-Counter"],"f":1}`
	if w := do(t, s, "POST", "/v1/generate", "acme", gen, nil); w.Code != http.StatusOK {
		t.Fatalf("generate: %d %s", w.Code, w.Body.String())
	}
	// Second identical request: a cache hit, a distinct cache label.
	if w := do(t, s, "POST", "/v1/generate", "acme", gen, nil); w.Header().Get(headerCache) != "hit" {
		t.Fatalf("second generate cache = %q, want hit", w.Header().Get(headerCache))
	}
	var cl ClusterResponse
	if w := do(t, s, "POST", "/v1/clusters", "acme", `{"zoo":["0-Counter","1-Counter"],"f":1}`, &cl); w.Code != http.StatusCreated {
		t.Fatalf("cluster create: %d %s", w.Code, w.Body.String())
	}
	do(t, s, "GET", "/v1/clusters/"+cl.ID, "acme", "", nil)
	do(t, s, "POST", "/v1/clusters/"+cl.ID+"/events", "acme", `{"random":{"count":4,"seed":7}}`, nil)
	do(t, s, "POST", "/v1/clusters/"+cl.ID+"/recover", "acme", `{}`, nil)
	do(t, s, "DELETE", "/v1/clusters/"+cl.ID, "acme", "", nil)
	do(t, s, "GET", "/healthz", "", "", nil)
	do(t, s, "GET", "/readyz", "", "", nil)
	do(t, s, "GET", "/repl/status", "", "", nil)
	do(t, s, "GET", "/debug/log", "", "", nil)
	do(t, s, "GET", "/nowhere", "", "", nil) // the unmatched bucket

	w := do(t, s, "GET", "/metrics", "", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", w.Code)
	}
	exp, err := obsv.ParseText(w.Body)
	if err != nil {
		t.Fatalf("/metrics fails its own strict parser: %v", err)
	}

	hf := exp.Family(obsv.MetricRequestDuration)
	if hf == nil || hf.Type != "histogram" {
		t.Fatalf("latency histogram family missing: %+v", hf)
	}
	routes := make(map[string]bool)
	for _, sm := range hf.Samples {
		routes[sm.Label("route")] = true
	}
	for _, want := range []string{
		"/v1/generate", "/v1/clusters", "/v1/clusters/{id}",
		"/v1/clusters/{id}/events", "/v1/clusters/{id}/recover",
		"/healthz", "/readyz", "/repl/status", "/debug/log", "unmatched",
	} {
		if !routes[want] {
			t.Errorf("no latency series for route %q (have %v)", want, routes)
		}
	}
	// /metrics itself is recorded on the next scrape, not its own — the
	// histogram is read before the request finishes.
	var miss, hit bool
	for _, sm := range hf.Samples {
		if sm.Label("route") != "/v1/generate" || sm.Label("tenant") != "acme" {
			continue
		}
		switch sm.Label("cache") {
		case "miss":
			miss = true
		case "hit":
			hit = true
		}
	}
	if !miss || !hit {
		t.Fatalf("generate series lack cache labels (miss=%v hit=%v)", miss, hit)
	}

	// The pre-existing handwritten families still parse alongside.
	for _, name := range []string{"fusiond_tenant_in_flight", "fusiond_repl_role", "fusiond_generate_runs_total",
		obsv.MetricBuildInfo, obsv.MetricGoroutines, "fusiond_process_rss_bytes"} {
		if exp.Family(name) == nil {
			t.Errorf("family %q missing from /metrics", name)
		}
	}

	// Determinism: an idle second scrape keeps family order.
	w2 := do(t, s, "GET", "/metrics", "", "", nil)
	exp2, err := obsv.ParseText(w2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Order) != len(exp2.Order) {
		t.Fatalf("family count changed between scrapes: %d vs %d", len(exp.Order), len(exp2.Order))
	}
	for i := range exp.Order {
		if exp.Order[i] != exp2.Order[i] {
			t.Fatalf("family order changed at %d: %q vs %q", i, exp.Order[i], exp2.Order[i])
		}
	}
}

// TestCascadeCountersExposition: the within-level pair-implication
// counters reach /metrics as well-formed counter families and /healthz
// as the generation block, and a memoized generation (36-state MESI×TCP
// top, above the descent engine's gate) visibly moves the implied
// cascades. The sharing split always accounts for every cold closure:
// implied + seeded + cold == cold_closures, process-wide.
func TestCascadeCountersExposition(t *testing.T) {
	s := mustNew(t, Options{FusionCache: 0})
	defer s.Close()

	before := do(t, s, "GET", "/healthz", "", "", nil)
	var hb HealthResponse
	if err := json.Unmarshal(before.Body.Bytes(), &hb); err != nil {
		t.Fatal(err)
	}

	gen := `{"zoo":["MESI","TCP"],"f":2}`
	if w := do(t, s, "POST", "/v1/generate", "acme", gen, nil); w.Code != http.StatusOK {
		t.Fatalf("generate: %d %s", w.Code, w.Body.String())
	}

	w := do(t, s, "GET", "/metrics", "", "", nil)
	exp, err := obsv.ParseText(w.Body)
	if err != nil {
		t.Fatalf("/metrics fails its own strict parser: %v", err)
	}
	vals := make(map[string]float64)
	for _, name := range []string{
		"fusiond_generate_implied_cascades_total",
		"fusiond_generate_seeded_cascades_total",
		"fusiond_generate_cold_cascades_total",
		"fusiond_generate_cold_closures_total",
	} {
		f := exp.Family(name)
		if f == nil {
			t.Fatalf("family %q missing from /metrics", name)
		}
		if f.Type != "counter" {
			t.Fatalf("family %q is a %s, want counter", name, f.Type)
		}
		if len(f.Samples) != 1 {
			t.Fatalf("family %q has %d samples, want 1", name, len(f.Samples))
		}
		vals[name] = f.Samples[0].Value
	}
	sum := vals["fusiond_generate_implied_cascades_total"] +
		vals["fusiond_generate_seeded_cascades_total"] +
		vals["fusiond_generate_cold_cascades_total"]
	if sum != vals["fusiond_generate_cold_closures_total"] {
		t.Errorf("cascade split %v does not sum to cold closures %v",
			sum, vals["fusiond_generate_cold_closures_total"])
	}

	after := do(t, s, "GET", "/healthz", "", "", nil)
	var ha HealthResponse
	if err := json.Unmarshal(after.Body.Bytes(), &ha); err != nil {
		t.Fatal(err)
	}
	if ha.Generation.ImpliedCascades <= hb.Generation.ImpliedCascades {
		t.Errorf("healthz impliedCascades did not advance over the generation: %d -> %d",
			hb.Generation.ImpliedCascades, ha.Generation.ImpliedCascades)
	}
	if float64(ha.Generation.ImpliedCascades) != vals["fusiond_generate_implied_cascades_total"] {
		t.Errorf("healthz impliedCascades %d != /metrics %v (no generation ran in between)",
			ha.Generation.ImpliedCascades, vals["fusiond_generate_implied_cascades_total"])
	}
}

// TestDebugLogTail: the access-log ring serves the most recent requests
// with the same ids the responses carried.
func TestDebugLogTail(t *testing.T) {
	s := mustNew(t, Options{AccessLog: 8})
	defer s.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		w := do(t, s, "GET", "/healthz", "", "", nil)
		ids = append(ids, w.Header().Get(obsv.HeaderRequestID))
	}
	var resp obsv.DebugLogResponse
	if w := do(t, s, "GET", "/debug/log?n=2", "", "", &resp); w.Code != http.StatusOK {
		t.Fatalf("/debug/log: %d", w.Code)
	}
	if len(resp.Records) != 2 {
		t.Fatalf("tail returned %d records, want 2", len(resp.Records))
	}
	for i, rec := range resp.Records {
		if want := ids[i+1]; rec.ID != want {
			t.Fatalf("tail[%d].ID = %q, want %q", i, rec.ID, want)
		}
		if rec.Route != "/healthz" || rec.Status != http.StatusOK {
			t.Fatalf("tail[%d] = %+v, want healthz record", i, rec)
		}
	}
}

// TestNoObserve: the measurement knob removes the whole plane — no
// request ids, no /debug/log — without touching the API routes.
func TestNoObserve(t *testing.T) {
	s := mustNew(t, Options{NoObserve: true})
	defer s.Close()
	w := do(t, s, "GET", "/healthz", "", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
	if got := w.Header().Get(obsv.HeaderRequestID); got != "" {
		t.Fatalf("NoObserve still stamps request ids: %q", got)
	}
	if w = do(t, s, "GET", "/debug/log", "", "", nil); w.Code != http.StatusNotFound {
		t.Fatalf("/debug/log under NoObserve: %d, want 404", w.Code)
	}
}

// TestHealthzProcessFields: /healthz reports uptime and goroutines.
func TestHealthzProcessFields(t *testing.T) {
	s := mustNew(t, Options{})
	defer s.Close()
	var h HealthResponse
	if w := do(t, s, "GET", "/healthz", "", "", &h); w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
	if h.UptimeSeconds < 0 {
		t.Fatalf("uptime %g < 0", h.UptimeSeconds)
	}
	if h.Goroutines <= 0 {
		t.Fatalf("goroutines = %d, want > 0", h.Goroutines)
	}
}

// TestPprofGate: /debug/pprof is absent by default and mounts under
// Options.Pprof.
func TestPprofGate(t *testing.T) {
	s := mustNew(t, Options{})
	defer s.Close()
	if w := do(t, s, "GET", "/debug/pprof/", "", "", nil); w.Code != http.StatusNotFound {
		t.Fatalf("pprof without the flag: %d, want 404", w.Code)
	}
	p := mustNew(t, Options{Pprof: true})
	defer p.Close()
	w := do(t, p, "GET", "/debug/pprof/", "", "", nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "goroutine") {
		t.Fatalf("pprof index with the flag: %d", w.Code)
	}
}

// TestRequestIDUnique: ids differ across requests (the generator is an
// atomic counter behind a per-process prefix).
func TestRequestIDUnique(t *testing.T) {
	s := mustNew(t, Options{})
	defer s.Close()
	seen := make(map[string]bool)
	for i := 0; i < 20; i++ {
		w := do(t, s, "GET", "/healthz", "", "", nil)
		id := w.Header().Get(obsv.HeaderRequestID)
		if seen[id] {
			t.Fatalf("duplicate request id %q at iteration %d", id, i)
		}
		seen[id] = true
	}
}
