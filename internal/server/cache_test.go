package server

import (
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

const cacheGenBody = `{"zoo":["0-Counter","1-Counter"],"f":1}`

// TestGenerateCacheFlow: miss → hit → cross-tenant hit → explicit bypass,
// with the X-Fusion-Cache header, /healthz hit rates, and the /metrics
// series all telling the same story.
func TestGenerateCacheFlow(t *testing.T) {
	s := mustNew(t, Options{FusionCache: 64})
	defer s.Close() //nolint:errcheck // in-memory

	var first GenerateResponse
	w := do(t, s, "POST", "/v1/generate", "alpha", cacheGenBody, &first)
	if w.Code != http.StatusOK {
		t.Fatalf("cold generate: %d %s", w.Code, w.Body)
	}
	if got := w.Header().Get(headerCache); got != "miss" {
		t.Fatalf("cold generate %s = %q, want miss", headerCache, got)
	}
	firstBody := w.Body.String()

	w = do(t, s, "POST", "/v1/generate", "alpha", cacheGenBody, nil)
	if got := w.Header().Get(headerCache); got != "hit" {
		t.Fatalf("repeat generate %s = %q, want hit", headerCache, got)
	}
	if w.Body.String() != firstBody {
		t.Fatalf("cached response differs from computed:\ncold: %s\nwarm: %s", firstBody, w.Body)
	}

	// The cache is content-addressed, not tenant-scoped: another tenant's
	// identical request is a hit too.
	w = do(t, s, "POST", "/v1/generate", "beta", cacheGenBody, nil)
	if got := w.Header().Get(headerCache); got != "hit" {
		t.Fatalf("cross-tenant generate %s = %q, want hit", headerCache, got)
	}
	if w.Body.String() != firstBody {
		t.Fatal("cross-tenant cached response differs")
	}

	// noCache forces a fresh computation — same bytes, marked bypass.
	w = do(t, s, "POST", "/v1/generate", "alpha", `{"zoo":["0-Counter","1-Counter"],"f":1,"noCache":true}`, nil)
	if got := w.Header().Get(headerCache); got != "bypass" {
		t.Fatalf("noCache generate %s = %q, want bypass", headerCache, got)
	}
	if w.Body.String() != firstBody {
		t.Fatal("bypass response differs from cached")
	}

	var h HealthResponse
	do(t, s, "GET", "/healthz", "", "", &h)
	alpha, beta := h.Tenants["alpha"], h.Tenants["beta"]
	if alpha.FusionCacheHits != 1 || alpha.FusionCacheMisses != 2 {
		t.Fatalf("alpha cache counters = %d hits / %d misses, want 1/2", alpha.FusionCacheHits, alpha.FusionCacheMisses)
	}
	if alpha.FusionCacheHitRate == nil || *alpha.FusionCacheHitRate != 1.0/3 {
		t.Fatalf("alpha hit rate = %v, want 1/3", alpha.FusionCacheHitRate)
	}
	if beta.FusionCacheHits != 1 || beta.FusionCacheMisses != 0 {
		t.Fatalf("beta cache counters = %d hits / %d misses, want 1/0", beta.FusionCacheHits, beta.FusionCacheMisses)
	}
	if beta.FusionCacheHitRate == nil || *beta.FusionCacheHitRate != 1 {
		t.Fatalf("beta hit rate = %v, want 1", beta.FusionCacheHitRate)
	}

	m := do(t, s, "GET", "/metrics", "", "", nil).Body.String()
	for _, want := range []string{
		"fusiond_fcache_hits 2",
		"fusiond_fcache_misses 1",
		"fusiond_fcache_evictions 0",
		"fusiond_fcache_coalesced 0",
		"fusiond_fcache_entries 1",
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, m)
		}
	}
	if !strings.Contains(m, "fusiond_fcache_bytes ") {
		t.Fatal("/metrics missing fusiond_fcache_bytes")
	}
}

// TestGenerateCacheDisabled: the zero-value daemon keeps the historical
// behavior — every request computes, the header says bypass, no fcache
// series appear, and /healthz carries no cache fields.
func TestGenerateCacheDisabled(t *testing.T) {
	s := mustNew(t, Options{})
	defer s.Close() //nolint:errcheck // in-memory

	for i := 0; i < 2; i++ {
		w := do(t, s, "POST", "/v1/generate", "", cacheGenBody, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("generate: %d %s", w.Code, w.Body)
		}
		if got := w.Header().Get(headerCache); got != "bypass" {
			t.Fatalf("%s = %q on uncached daemon, want bypass", headerCache, got)
		}
	}
	if m := do(t, s, "GET", "/metrics", "", "", nil).Body.String(); strings.Contains(m, "fusiond_fcache_") {
		t.Fatal("uncached daemon emits fcache series")
	}
	var h HealthResponse
	do(t, s, "GET", "/healthz", "", "", &h)
	if th := h.Tenants["default"]; th.FusionCacheHitRate != nil {
		t.Fatalf("uncached daemon reports a hit rate: %v", *th.FusionCacheHitRate)
	}
}

// TestGenerateCachePersistence: a durable daemon's cache survives an
// unclean restart — the warm entry is served without re-running
// Algorithm 2, and the miss counter stays untouched.
func TestGenerateCachePersistence(t *testing.T) {
	dir := t.TempDir()
	s := mustNew(t, Options{FusionCache: 64, DataDir: dir})
	if w := do(t, s, "POST", "/v1/generate", "", cacheGenBody, nil); w.Code != http.StatusOK {
		t.Fatalf("generate: %d %s", w.Code, w.Body)
	}
	firstBody := do(t, s, "POST", "/v1/generate", "", cacheGenBody, nil).Body.String()
	s.Close() //nolint:errcheck // durable state under dir

	s2 := mustNew(t, Options{FusionCache: 64, DataDir: dir})
	defer s2.Close() //nolint:errcheck // durable state under dir
	before := core.GenerationCounters().Runs
	w := do(t, s2, "POST", "/v1/generate", "", cacheGenBody, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("post-restart generate: %d %s", w.Code, w.Body)
	}
	if got := w.Header().Get(headerCache); got != "hit" {
		t.Fatalf("post-restart %s = %q, want hit (rehydrated entry)", headerCache, got)
	}
	if w.Body.String() != firstBody {
		t.Fatal("rehydrated response differs from the pre-restart one")
	}
	if delta := core.GenerationCounters().Runs - before; delta != 0 {
		t.Fatalf("post-restart warm hit ran Algorithm 2 %d times", delta)
	}
	if st := s2.fcache.Stats(); st.Misses != 0 {
		t.Fatalf("post-restart miss counter = %d, want 0", st.Misses)
	}
}

// TestServerGenerateSingleflight: a flood of identical HTTP requests runs
// Algorithm 2 exactly once — and only the flight leader holds an
// admission slot, so a MaxInFlight-1 daemon still answers all of them.
func TestServerGenerateSingleflight(t *testing.T) {
	s := mustNew(t, Options{FusionCache: 64, MaxInFlight: 1, QueueDepth: 1})
	defer s.Close() //nolint:errcheck // in-memory

	// Use a request no other test (or the prewarmer) shares, so the runs
	// delta below is attributable to this flood alone.
	const body = `{"zoo":["MESI","ShiftRegister","0-Counter"],"f":2}`
	before := core.GenerationCounters().Runs
	const flood = 12
	bodies := make([]string, flood)
	outcomes := make([]string, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := do(t, s, "POST", "/v1/generate", "", body, nil)
			if w.Code != http.StatusOK {
				t.Errorf("flood request %d: %d %s", i, w.Code, w.Body)
				return
			}
			bodies[i] = w.Body.String()
			outcomes[i] = w.Header().Get(headerCache)
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if delta := core.GenerationCounters().Runs - before; delta != 1 {
		t.Fatalf("flood of %d identical requests ran Algorithm 2 %d times, want 1", flood, delta)
	}
	misses := 0
	for i := 0; i < flood; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("request %d body differs", i)
		}
		if outcomes[i] == "miss" {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d flight leaders, want exactly 1 (rest hit/coalesced)", misses)
	}
}
