// Package server is fusiond's HTTP/JSON front-end over fusion.Engine: a
// long-running service exposing the paper's three workloads — fusion
// generation (Algorithm 2), simulated deployments with event broadcast
// and fault injection, and fused-state recovery (Algorithm 3) — as
// endpoints on one persistent process, so the engine's worker pool is
// finally exercised the way it was built for: many concurrent requests on
// a bounded goroutine set.
//
// Routes (all request/response bodies in api.go):
//
//	GET    /healthz                  liveness + per-tenant engine stats
//	POST   /v1/generate              Algorithm 2 fusion generation
//	POST   /v1/clusters              create a simulated deployment
//	GET    /v1/clusters/{id}         inspect a deployment
//	DELETE /v1/clusters/{id}         drop a deployment
//	POST   /v1/clusters/{id}/events  broadcast events, then inject faults
//	POST   /v1/clusters/{id}/recover run a recovery round
//
// Tenancy: requests carry a tenant name in a header (X-Fusion-Tenant by
// default; absent means "default"). Each tenant lazily gets its own
// fusion.Engine — its own admission limits, optionally its own worker
// pool — and its own cluster registry, so one tenant's flood or cluster
// handles never touch another's. Tenant names are client-controlled, so
// the daemon caps how many it materializes (MaxTenants); past the cap,
// requests for new names are shed with 429.
//
// Admission: every workload request brackets its engine use with
// Engine.Acquire/Release. When a tenant is saturated (MaxInFlight running
// and QueueDepth waiting) further requests are shed immediately with
// HTTP 429 and a Retry-After hint instead of stacking goroutines onto the
// pool — overload degrades into fast rejections, never unbounded memory.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	fusion "repro"
	"repro/internal/fcache"
	"repro/internal/obsv"
	"repro/internal/repl"
	"repro/internal/sim"
	"repro/internal/store"
)

// Options configures a Server. The zero value serves with no admission
// limits on the process-wide default engine.
type Options struct {
	// TenantHeader names the header carrying the tenant id; default
	// "X-Fusion-Tenant". An absent or empty header means tenant "default".
	TenantHeader string

	// Workers sizes each tenant's dedicated worker pool. 0 means tenants
	// share the process-wide default pool (still with per-tenant admission
	// when MaxInFlight is set).
	Workers int

	// MaxInFlight / QueueDepth / QueueTimeout are per-tenant admission
	// limits, passed through to fusion.EngineOptions. MaxInFlight 0
	// disables admission control.
	MaxInFlight  int
	QueueDepth   int
	QueueTimeout time.Duration

	// MaxClusters bounds each tenant's live cluster handles; default 64,
	// negative means unbounded.
	MaxClusters int

	// MaxTenants bounds how many distinct tenants the daemon will lazily
	// materialize; default 64, negative means unbounded. Tenant names come
	// from a client header and each tenant carries an engine (admission
	// state, optionally a dedicated pool) plus a cluster registry, so
	// without a cap a client minting fresh names would grow server memory
	// without bound and hand itself fresh admission quotas.
	MaxTenants int

	// MaxBodyBytes bounds request bodies; default 1 MiB.
	MaxBodyBytes int64

	// DataDir selects the durable file backend: each tenant's cluster
	// registry persists under DataDir/<tenant>, and New recovers every
	// tenant found there — same handle ids, same per-server states —
	// before serving. Empty means in-memory registries (state dies with
	// the process), the historical behavior and the hot-path default.
	DataDir string

	// CompactEvery is the per-cluster WAL length at which the journal is
	// compacted into a snapshot; 0 means sim.DefaultCompactEvery. Only
	// meaningful with DataDir set.
	CompactEvery int

	// GroupCommit batches concurrent WAL appends across each tenant's
	// clusters into shared preallocated segments with one fsync per
	// commit tick (store.DirOptions.GroupCommit). Acknowledgement
	// semantics are unchanged — a request completes only after the fsync
	// covering its records — but under concurrency many requests share
	// that fsync. Only meaningful with DataDir set.
	GroupCommit bool

	// GroupBatchBytes / GroupBatchDelay tune the group-commit batcher
	// (early-flush size and optional linger); 0 means the store defaults
	// (1 MiB, no linger). Only meaningful with GroupCommit.
	GroupBatchBytes int
	GroupBatchDelay time.Duration

	// Role selects the replication role: empty/"single" (no replication),
	// RoleLeader (ship every store mutation to Replicas), or RoleFollower
	// (apply a leader's feed, serve reads only). Both replicated roles
	// require DataDir.
	Role string

	// Replicas lists follower base URLs a leader ships to.
	Replicas []string

	// LeaderURL is the leader's base URL, advertised by a follower in the
	// Leader header when shedding mutating requests.
	LeaderURL string

	// QuorumAck makes mutations wait (bounded by AckTimeout) until a
	// majority of the replication group — this leader plus Replicas —
	// holds their ops before responding; the X-Fusion-Ack response header
	// reports the achieved guarantee. Default is leader-ack: respond once
	// locally durable.
	QuorumAck bool

	// AckTimeout bounds the quorum wait per request; 0 means 2s. Clients
	// may lower (never raise) it per request via X-Fusion-Ack-Timeout.
	AckTimeout time.Duration

	// LagThreshold is the feed lag (records) past which a follower stops
	// reporting ready; 0 means repl.DefaultLagThreshold.
	LagThreshold uint64

	// FusionCache sizes the content-addressed fusion cache (entries):
	// generate requests are keyed by a canonical digest of (machines, f,
	// options) and exact repeats are served from the cache instead of
	// re-running Algorithm 2, with concurrent identical requests
	// coalescing onto one run. The cache is shared across tenants —
	// fusion output is a pure function of the input machines, and the
	// keys carry no tenant identity — and, with DataDir set, persists hot
	// entries under DataDir/.fcache so a restarted daemon serves popular
	// fusions without recomputation. 0 disables the cache (the historical
	// behavior and the zero-value default; fusiond passes -fusion-cache,
	// default 4096).
	FusionCache int

	// PrewarmZoo walks the built-in machine-zoo catalog through the cache
	// in the background after boot (on the shared pool), so first-hit
	// latency for catalog requests disappears. Ignored without
	// FusionCache > 0.
	PrewarmZoo bool

	// Pprof mounts net/http/pprof's handlers under /debug/pprof/. Off by
	// default: profiling endpoints expose heap contents and must be an
	// operator's explicit choice (fusiond passes -pprof).
	Pprof bool

	// AccessLog bounds the in-memory access-log ring served at
	// GET /debug/log (records); 0 means 1024, negative disables the ring
	// (the endpoint then answers 404).
	AccessLog int

	// SlowRequest logs any request slower than this threshold and counts
	// it in fusiond_http_slow_requests_total; 0 disables slow logging.
	SlowRequest time.Duration

	// NoObserve disables the observability middleware entirely: no
	// request ids, no latency histograms, no access log, no /debug/log.
	// A measurement knob — the benchmark suite uses it to price the
	// middleware — not an operating mode.
	NoObserve bool

	// ReplClient overrides the shipping HTTP client (tests).
	ReplClient *http.Client

	// Rand supplies jitter in [0,1) for Retry-After hints and shipping
	// backoff; nil means math/rand/v2. Tests pin it.
	Rand func() float64
}

func (o Options) withDefaults() Options {
	if o.TenantHeader == "" {
		o.TenantHeader = "X-Fusion-Tenant"
	}
	if o.MaxClusters == 0 {
		o.MaxClusters = 64
	} else if o.MaxClusters < 0 {
		o.MaxClusters = 0 // sim.Registry convention: 0 = unbounded
	}
	if o.MaxTenants == 0 {
		o.MaxTenants = 64
	} else if o.MaxTenants < 0 {
		o.MaxTenants = 0 // 0 = unbounded past this point
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.AckTimeout <= 0 {
		o.AckTimeout = 2 * time.Second
	}
	if o.Rand == nil {
		o.Rand = rand.Float64
	}
	return o
}

// tenant is one tenant's isolated slice of the daemon: an engine (its
// admission state and possibly its own pool) plus its cluster handles.
// store is the durable backend behind clusters (nil when the daemon is
// in-memory); the server owns its lifecycle — Close releases its open
// WAL handles after the final drain snapshots.
type tenant struct {
	name     string
	engine   *fusion.Engine
	clusters *sim.Registry
	store    *store.Dir

	// cacheHits counts this tenant's generate requests served without
	// running Algorithm 2 (cache hit or coalesced onto another's run);
	// cacheMisses counts the ones that computed (including cache-bypass
	// requests). Together they give the per-tenant hit rate in /healthz.
	cacheHits, cacheMisses atomic.Int64
}

// Server routes the v1 API onto per-tenant engines. Construct with New,
// mount Handler on an http.Server, and Close on the way out.
type Server struct {
	opts Options
	mux  *http.ServeMux

	// obs is the observability plane (nil under Options.NoObserve);
	// handler is the mux wrapped in its middleware — every route,
	// including sheds and 404s, records through it. started anchors the
	// uptime reported by /healthz and /metrics.
	obs     *obsv.Obs
	handler http.Handler
	started time.Time

	mu      sync.Mutex
	tenants map[string]*tenant
	closed  bool

	// fcache is the cross-tenant content-addressed fusion cache (nil when
	// Options.FusionCache is 0); cacheStore is its durable backend when
	// DataDir is set (a Dir used only for the .fcache namespace).
	// genFollower is the engine a follower answers /v1/generate on —
	// generation is pure, so followers need no tenant state for it.
	// prewarm tracks the background zoo pre-warmer for Close.
	fcache      *fcache.Cache
	cacheStore  *store.Dir
	genFollower *fusion.Engine
	prewarm     sync.WaitGroup

	// storeObs aggregates WAL flush observations (batch sizes, fsync
	// latency) across all tenant stores; nil on in-memory daemons.
	storeObs *storeObs

	// Replication state (see repl.go). role transitions leader ←
	// follower → promoting → leader; log and repLeader exist on leaders,
	// follower on followers. replMu orders role transitions against
	// request dispatch.
	replMu    sync.Mutex
	role      string
	epoch     uint64
	log       *store.Log
	repLeader *repl.Leader
	follower  *repl.Follower
}

// New returns a ready-to-serve Server. With Options.DataDir set it first
// recovers every tenant persisted there — rebuilding clusters from their
// specs, restoring snapshots, replaying WAL tails — and an error means
// the durable state could not be brought back (serving without it would
// silently shadow it).
func New(opts Options) (*Server, error) {
	s := &Server{
		opts:    opts.withDefaults(),
		mux:     http.NewServeMux(),
		tenants: make(map[string]*tenant),
		started: time.Now(),
	}
	if s.opts.DataDir != "" {
		s.storeObs = &storeObs{}
	}
	if err := s.initReplication(); err != nil {
		return nil, err
	}
	if err := s.initCache(); err != nil {
		s.Close()
		return nil, err
	}
	if s.role == RoleFollower {
		// Generation is pure (and now content-address cached), so a
		// follower answers /v1/generate locally instead of shedding 503 —
		// on its own engine with the daemon's admission limits, since
		// followers run no tenant engines.
		s.genFollower = s.mintEngine()
	}
	if !s.opts.NoObserve {
		s.obs = obsv.New(obsv.Options{
			LogSize:       s.opts.AccessLog,
			SlowThreshold: s.opts.SlowRequest,
			TenantHeader:  s.opts.TenantHeader,
			RoleFn:        s.currentRole,
		})
		s.mux.HandleFunc("GET /debug/log", s.obs.HandleDebugLog)
	}
	if s.opts.Pprof {
		obsv.RegisterPprof(s.mux)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /repl/status", s.handleReplStatus)
	s.mux.HandleFunc("GET /repl/feed", s.handleReplFeed)
	s.mux.HandleFunc("POST /repl/apply", s.handleReplApply)
	s.mux.HandleFunc("POST /repl/sync", s.handleReplSync)
	s.mux.HandleFunc("POST /repl/promote", s.handleReplPromote)
	s.mux.HandleFunc("POST /v1/generate", s.routed(s.withTenant(true, s.handleGenerate), s.handleGenerateFollower))
	s.mux.HandleFunc("POST /v1/clusters", s.routed(s.admitted(s.handleClusterCreate), nil))
	s.mux.HandleFunc("GET /v1/clusters/{id}", s.routed(s.withTenant(false, s.handleClusterGet), s.followerClusterGet))
	s.mux.HandleFunc("DELETE /v1/clusters/{id}", s.routed(s.withTenant(false, s.handleClusterDelete), nil))
	s.mux.HandleFunc("POST /v1/clusters/{id}/events", s.routed(s.admitted(s.handleClusterEvents), nil))
	s.mux.HandleFunc("POST /v1/clusters/{id}/recover", s.routed(s.admitted(s.handleClusterRecover), nil))
	if s.role != RoleFollower {
		// Followers do not recover tenants themselves — their data dir
		// belongs to the replication plane, which already rebuilt warm
		// mirrors in initReplication.
		if err := s.recoverTenants(); err != nil {
			s.Close()
			return nil, err
		}
	}
	s.handler = http.Handler(s.mux)
	if s.obs != nil {
		s.handler = s.obs.Middleware(s.mux)
	}
	s.startShipping()
	s.startPrewarm()
	return s, nil
}

// initCache builds the shared fusion cache and, on a durable daemon,
// rehydrates it from DataDir/.fcache. Rehydration is tolerant by design —
// every entry is digest- and checksum-verified, the unverifiable are
// skipped — so only a broken data dir itself is fatal here.
func (s *Server) initCache() error {
	if s.opts.FusionCache <= 0 {
		return nil
	}
	fo := fcache.Options{MaxEntries: s.opts.FusionCache}
	if s.opts.DataDir != "" {
		cs, err := store.NewDir(s.opts.DataDir)
		if err != nil {
			return fmt.Errorf("server: fusion cache store: %w", err)
		}
		s.cacheStore = cs
		fo.Store = cs
	}
	s.fcache = fcache.New(fo)
	if _, err := s.fcache.LoadStore(); err != nil {
		return fmt.Errorf("server: loading fusion cache: %w", err)
	}
	return nil
}

// startPrewarm launches the background zoo pre-warmer. It runs on the
// shared pool and goes through the cache's singleflight, so it coalesces
// with (never duplicates) early live traffic, skips entries a restart
// already rehydrated, and stops between sets once Close begins.
func (s *Server) startPrewarm() {
	if s.fcache == nil || !s.opts.PrewarmZoo {
		return
	}
	s.prewarm.Add(1)
	go func() {
		defer s.prewarm.Done()
		s.fcache.PrewarmZoo(nil, func() bool {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.closed
		})
	}()
}

// recoverTenants rematerializes every tenant found under DataDir.
// Recovered tenants are admitted even past MaxTenants — they exist
// durably; the cap gates new names only.
func (s *Server) recoverTenants() error {
	if s.opts.DataDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.opts.DataDir, 0o755); err != nil {
		return fmt.Errorf("server: data dir: %w", err)
	}
	entries, err := os.ReadDir(s.opts.DataDir)
	if err != nil {
		return fmt.Errorf("server: data dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || validTenantName(e.Name()) != nil {
			continue
		}
		s.mu.Lock()
		_, err := s.mintTenant(e.Name())
		s.mu.Unlock()
		if err != nil {
			return fmt.Errorf("server: recovering tenant %q: %w", e.Name(), err)
		}
	}
	return nil
}

// Handler returns the HTTP handler serving the API: the route table
// behind the observability middleware, so every response — success,
// shed, or 404 — carries a request id and lands in the per-route
// latency histograms.
func (s *Server) Handler() http.Handler { return s.handler }

// Close drains the daemon for shutdown: new requests are refused with
// 503, queued requests fail over to 503, and Close blocks until every
// admitted request has finished and each tenant's dedicated pool is torn
// down. On a persistent server every cluster with a non-empty journal is
// then compacted into a final snapshot, so the next boot restores from
// snapshots instead of replaying WAL tails; the first snapshot failure
// is returned (restart still recovers — via replay — even then).
// Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.Unlock()
	// The pre-warmer checks closed between catalog sets; wait it out so
	// shutdown never races a background generation onto the shared pool.
	s.prewarm.Wait()
	s.replMu.Lock()
	repLeader, follower := s.repLeader, s.follower
	s.replMu.Unlock()
	if repLeader != nil {
		repLeader.Close()
	}
	if follower != nil {
		follower.Close() //nolint:errcheck // follower fds; data is fsync'd
	}
	if s.genFollower != nil {
		s.genFollower.Close()
	}
	for _, t := range ts {
		t.engine.Close()
	}
	// Engines are drained: no request is mid-Update, so the snapshots
	// capture settled state. The store's open WAL handles are released
	// after — everything in them is already fsync'd, this is fd hygiene
	// for embedders that outlive their Servers (reopening lazily repairs
	// and resumes, so a late write would still be safe).
	var first error
	for _, t := range ts {
		if err := t.clusters.SnapshotAll(); err != nil && first == nil {
			first = err
		}
		if t.store != nil {
			t.store.Close() //nolint:errcheck // handles only; data is fsync'd
		}
	}
	if s.cacheStore != nil {
		s.cacheStore.Close() //nolint:errcheck // handles only; entries are fsync'd
	}
	return first
}

// validTenantName vets a client-supplied (or disk-found) tenant name.
// The charset keeps names header- and filesystem-safe; the leading-dot
// rule additionally rules out ".", "..", and hidden directories — tenant
// names become directories under DataDir, and a ".." name must never
// walk out of it.
func validTenantName(name string) error {
	if len(name) > 64 {
		return fmt.Errorf("tenant name longer than 64 bytes")
	}
	if name == "" || name[0] == '.' {
		return fmt.Errorf("tenant name %q must not start with '.'", name)
	}
	for _, c := range name {
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.' {
			continue
		}
		return fmt.Errorf("tenant name contains %q; use [A-Za-z0-9._-]", c)
	}
	return nil
}

// tenant resolves the tenant a request addresses, lazily creating it
// only when create is set — read-only routes must not let probing
// headers mint tenants (each one holds an engine and a registry and
// lives until shutdown, so minting consumes MaxTenants slots
// permanently). A closed server resolves nothing.
func (s *Server) tenant(r *http.Request, create bool) (*tenant, error) {
	name := r.Header.Get(s.opts.TenantHeader)
	if name == "" {
		name = "default"
	}
	if err := validTenantName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errShutdown
	}
	t, ok := s.tenants[name]
	if !ok {
		if !create {
			return nil, errUnknownTenant
		}
		if s.opts.MaxTenants > 0 && len(s.tenants) >= s.opts.MaxTenants {
			return nil, errTenantsFull
		}
		var err error
		if t, err = s.mintTenant(name); err != nil {
			return nil, fmt.Errorf("%w: %v", errTenantStore, err)
		}
	}
	return t, nil
}

// dirOptions assembles the store options every tenant Dir (leader or
// follower side) opens with, wiring the flush hook into the shared
// store-observability aggregate.
func (s *Server) dirOptions() store.DirOptions {
	o := store.DirOptions{
		GroupCommit:   s.opts.GroupCommit,
		MaxBatchBytes: s.opts.GroupBatchBytes,
		MaxBatchDelay: s.opts.GroupBatchDelay,
	}
	if s.storeObs != nil {
		o.OnFlush = s.storeObs.onFlush
	}
	return o
}

// mintTenant builds a tenant and inserts it; the caller holds s.mu.
// With DataDir set, the tenant's registry is store-backed and loaded
// from disk (a fresh tenant just gets an empty directory) — which is why
// minting can fail.
func (s *Server) mintTenant(name string) (*tenant, error) {
	// Dedicated: every tenant gets its own engine — its own admission
	// state, truthful per-tenant /healthz numbers, and a drain that
	// Server.Close can actually wait on — while the pool stays shared
	// (one bounded goroutine set) unless Workers asks for per-tenant
	// capacity.
	engine := s.mintEngine()
	var reg *sim.Registry
	var st *store.Dir
	if s.opts.DataDir != "" {
		var err error
		st, err = store.NewDirWith(filepath.Join(s.opts.DataDir, name), s.dirOptions())
		if err == nil {
			// On a replicating leader the registry journals through a Tee,
			// so every mutation it persists is also published to the op
			// feed. The Load inside LoadRegistry seeds the Tee's WAL
			// anchors as a side effect.
			var backend sim.Store = st
			if s.log != nil {
				backend = store.NewTee(name, st, s.log)
			}
			reg, err = engine.LoadRegistry(s.opts.MaxClusters, backend, s.opts.CompactEvery)
		}
		if err != nil {
			if st != nil {
				st.Close() //nolint:errcheck // releasing handles on the failure path
			}
			engine.Close()
			return nil, err
		}
	} else {
		reg = sim.NewRegistry(s.opts.MaxClusters)
	}
	t := &tenant{name: name, engine: engine, clusters: reg, store: st}
	s.tenants[name] = t
	return t, nil
}

var (
	errShutdown      = errors.New("server shutting down")
	errTenantsFull   = errors.New("tenant capacity reached")
	errUnknownTenant = errors.New("unknown tenant")
	errTenantStore   = errors.New("tenant storage failed")
)

// bufferedResponse captures a handler's response in memory so the
// network write happens only after every lock and admission slot has
// been released — a slow-reading client must never pin in-flight
// capacity or freeze a cluster's Handle lock on TCP backpressure.
type bufferedResponse struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header {
	if b.header == nil {
		b.header = make(http.Header)
	}
	return b.header
}

func (b *bufferedResponse) WriteHeader(code int) {
	if b.code == 0 {
		b.code = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.code == 0 {
		b.code = http.StatusOK
	}
	return b.body.Write(p)
}

func (b *bufferedResponse) flush(w http.ResponseWriter) {
	for k, vs := range b.header {
		w.Header()[k] = vs
	}
	code := b.code
	if code == 0 {
		code = http.StatusOK
	}
	w.WriteHeader(code)
	w.Write(b.body.Bytes()) //nolint:errcheck // client gone; nothing left to do
}

// withTenant adapts a tenant-scoped handler, resolving (creating when
// create is set) the tenant and mapping resolution failures to HTTP
// statuses. The handler writes into a memory buffer; the real connection
// write happens after the handler (and any locks it held) has finished.
func (s *Server) withTenant(create bool, h func(t *tenant, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var pre uint64
		if s.log != nil {
			pre = s.log.Seq()
		}
		buf := &bufferedResponse{}
		s.serveTenant(create, h, buf, r)
		// If the request produced replicated ops, honor the configured
		// acknowledgement mode before the buffered response leaves —
		// headers are still mutable here.
		s.ackWait(buf, r, pre)
		buf.flush(w)
	}
}

func (s *Server) serveTenant(create bool, h func(t *tenant, w http.ResponseWriter, r *http.Request), w http.ResponseWriter, r *http.Request) {
	t, err := s.tenant(r, create)
	if err != nil {
		switch {
		case errors.Is(err, errShutdown):
			writeErr(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, errTenantsFull):
			w.Header().Set("Retry-After", s.retryAfter())
			writeErr(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, errUnknownTenant):
			// Read-only route for a tenant that was never created:
			// whatever cluster it names does not exist.
			msg := err.Error()
			if id := r.PathValue("id"); id != "" {
				msg = fmt.Sprintf("no cluster %q: tenant has no state", id)
			}
			writeErr(w, http.StatusNotFound, msg)
		case errors.Is(err, errTenantStore):
			// The durable backend refused; that is the server's fault,
			// not the request's.
			writeErr(w, http.StatusInternalServerError, err.Error())
		default:
			writeErr(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	h(t, w, r)
}

// readBody buffers the request body in full under MaxBodyBytes, replacing
// r.Body with the in-memory copy. A false return means the error response
// was already written. Reading before any admission slot is taken means a
// client stalling its upload can never pin MaxInFlight capacity or block
// the shutdown drain — slots cover compute, not network.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			// The buffered writer hides MaxBytesReader's internal
			// close signal from net/http; say it explicitly so the
			// server aborts instead of draining the oversized body
			// for keep-alive reuse.
			w.Header().Set("Connection", "close")
			writeErr(w, http.StatusRequestEntityTooLarge, err.Error())
		} else {
			writeErr(w, http.StatusBadRequest, "reading request body: "+err.Error())
		}
		return false
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	return true
}

// writeAdmissionErr maps an Engine.Acquire failure to its HTTP status:
// saturation sheds 429 + Retry-After, a draining engine 503.
func (s *Server) writeAdmissionErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, fusion.ErrQueueFull), errors.Is(err, fusion.ErrQueueTimeout):
		w.Header().Set("Retry-After", s.retryAfter())
		writeErr(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, fusion.ErrEngineClosed):
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	default:
		// The client went away while queued; nobody is listening,
		// but close the exchange coherently anyway.
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	}
}

// admitted is withTenant plus the admission bracket: the handler only
// runs while holding one of the tenant engine's in-flight slots, and
// saturation is shed as 429 + Retry-After before any engine work starts.
// The request body is read in full before the slot is taken (readBody).
func (s *Server) admitted(h func(t *tenant, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return s.withTenant(true, func(t *tenant, w http.ResponseWriter, r *http.Request) {
		if !s.readBody(w, r) {
			return
		}
		if err := t.engine.Acquire(r.Context()); err != nil {
			s.writeAdmissionErr(w, err)
			return
		}
		defer t.engine.Release()
		h(t, w, r)
	})
}

// retryAfter hints how long a shed client should back off: the queue
// timeout rounded up when one is configured, else one second — then
// jittered uniformly up to double. Every 429/503 of one overload wave
// carries the same base, and well-behaved clients honor the hint
// exactly, so an unjittered value marches the whole herd back through
// the door in the same second; spreading the hint spreads the retries.
func (s *Server) retryAfter() string {
	secs := int64(1)
	if t := s.opts.QueueTimeout; t > 0 {
		secs = int64((t + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
	}
	add := int64(s.opts.Rand() * float64(secs+1))
	if add > secs {
		add = secs
	}
	return strconv.FormatInt(secs+add, 10)
}

// Health snapshots per-tenant engine statistics (also served at
// /healthz).
func (s *Server) Health() HealthResponse {
	s.mu.Lock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	closed := s.closed
	s.mu.Unlock()

	s.replMu.Lock()
	role, log, follower := s.role, s.log, s.follower
	s.replMu.Unlock()

	gen := fusion.GenerationCounters()
	h := HealthResponse{
		Status:        "ok",
		Role:          role,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
		Generation: GenerationHealth{
			Runs:         gen.Runs,
			Descents:     gen.Descents,
			Levels:       gen.Levels,
			ColdClosures: gen.ColdClosures,
			SeededJoins:  gen.SeededJoins,
			PrunedSkips:  gen.PrunedSkips,
			TopCacheHits: gen.TopCacheHits,

			ImpliedCascades: gen.ImpliedCascades,
			SeededCascades:  gen.SeededCascades,
			ColdCascades:    gen.ColdCascades,
		},
		Tenants: make(map[string]TenantHealth, len(ts)),
	}
	if closed {
		h.Status = "draining"
	}
	if log != nil {
		h.Epoch = log.Epoch()
		h.Applied = log.Seq()
	}
	if role == RoleFollower {
		st := follower.Status()
		h.Epoch, h.Applied = st.Epoch, st.Applied
		for _, name := range follower.TenantNames() {
			reg, ok := follower.Registry(name)
			if !ok {
				continue
			}
			th := TenantHealth{Clusters: reg.Len()}
			if metrics := reg.Metrics(); len(metrics) > 0 {
				th.ClusterMetrics = make(map[string]ClusterMetrics, len(metrics))
				for id, m := range metrics {
					th.ClusterMetrics[id] = ClusterMetrics{
						EventsApplied:    m.EventsApplied,
						FaultsInjected:   m.FaultsInjected,
						Recoveries:       m.Recoveries,
						FailedRecoveries: m.FailedRecoveries,
						ServersRestored:  m.ServersRestored,
						LiarsCaught:      m.LiarsCaught,
					}
				}
			}
			h.Tenants[name] = th
		}
		return h
	}
	for _, t := range ts {
		th := TenantHealth{
			Workers:  t.engine.Workers(),
			InFlight: t.engine.InFlight(),
			Queued:   t.engine.Queued(),
			Clusters: t.clusters.Len(),
		}
		if s.fcache != nil {
			th.FusionCacheHits = t.cacheHits.Load()
			th.FusionCacheMisses = t.cacheMisses.Load()
			if total := th.FusionCacheHits + th.FusionCacheMisses; total > 0 {
				rate := float64(th.FusionCacheHits) / float64(total)
				th.FusionCacheHitRate = &rate
			}
		}
		if metrics := t.clusters.Metrics(); len(metrics) > 0 {
			th.ClusterMetrics = make(map[string]ClusterMetrics, len(metrics))
			for id, m := range metrics {
				th.ClusterMetrics[id] = ClusterMetrics{
					EventsApplied:    m.EventsApplied,
					FaultsInjected:   m.FaultsInjected,
					Recoveries:       m.Recoveries,
					FailedRecoveries: m.FailedRecoveries,
					ServersRestored:  m.ServersRestored,
					LiarsCaught:      m.LiarsCaught,
				}
			}
		}
		h.Tenants[t.name] = th
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}

// --- JSON plumbing --------------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing left to do
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg})
}

// readJSON decodes the request body into dst, rejecting unknown fields
// and trailing data. Size limits were already enforced by admitted()'s
// buffered read — every caller sits behind it, so the body here is an
// in-memory slice of at most MaxBodyBytes. A false return means the 400
// has already been written.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeErr(w, http.StatusBadRequest, "malformed request body: "+err.Error())
		return false
	}
	if dec.More() {
		writeErr(w, http.StatusBadRequest, "malformed request body: trailing data")
		return false
	}
	return true
}
