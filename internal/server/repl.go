package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	fusion "repro"
	"repro/internal/repl"
	"repro/internal/sim"
	"repro/internal/store"
)

// This file is the serving side of the replication plane: the role state
// machine (leader / follower / promoting), the /repl/* endpoints, the
// follower's read-only request paths, and promotion — which turns a
// follower's warm mirrors into this daemon's serving tenants without
// rebuilding a single cluster.

// Role names for Options.Role and the role state machine. roleSingle is
// the non-replicated daemon — the historical behavior, zero replication
// overhead.
const (
	roleSingle    = "single"
	RoleLeader    = "leader"
	RoleFollower  = "follower"
	rolePromoting = "promoting"
)

// Staleness headers stamped on every follower-served read: the client
// asked a replica, and the reply says exactly how far behind it might
// be.
const (
	headerRole    = "X-Fusion-Role"
	headerApplied = "X-Fusion-Applied-Seq"
	headerLag     = "X-Fusion-Replication-Lag"
	headerAck     = "X-Fusion-Ack"
	headerAckWait = "X-Fusion-Ack-Timeout"
	headerLeader  = "Leader"
)

// currentRole reads the role under the replication lock.
func (s *Server) currentRole() string {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return s.role
}

// initReplication wires the replication plane during New, before any
// route can fire. Leader mode mints (and persists) a fresh epoch and
// opens the op feed — mintTenant then tees every store mutation into it.
// Follower mode opens the replica state instead of recovering tenants.
func (s *Server) initReplication() error {
	switch s.opts.Role {
	case "", roleSingle:
		if len(s.opts.Replicas) > 0 {
			return fmt.Errorf("server: replicas configured without Role=leader")
		}
		s.role = roleSingle
		return nil
	case RoleLeader:
		if s.opts.DataDir == "" {
			return fmt.Errorf("server: leader replication requires DataDir (epochs must be durable)")
		}
		epoch, err := repl.NextLeaderEpoch(s.opts.DataDir)
		if err != nil {
			return err
		}
		s.role = RoleLeader
		s.epoch = epoch
		s.log = store.NewLog(epoch, 0)
		return nil
	case RoleFollower:
		if s.opts.DataDir == "" {
			return fmt.Errorf("server: follower replication requires DataDir")
		}
		f, err := repl.OpenFollower(repl.FollowerOptions{
			DataDir:      s.opts.DataDir,
			LagThreshold: s.opts.LagThreshold,
			Dir:          s.dirOptions(),
		})
		if err != nil {
			return err
		}
		s.role = RoleFollower
		s.follower = f
		s.epoch = f.Status().Epoch
		return nil
	default:
		return fmt.Errorf("server: unknown role %q (use %q or %q)", s.opts.Role, RoleLeader, RoleFollower)
	}
}

// startShipping launches the leader's shippers; a separate step from
// initReplication so tenant recovery (which replays into the feed's
// backing stores) finishes first.
func (s *Server) startShipping() {
	if s.role != RoleLeader || len(s.opts.Replicas) == 0 {
		return
	}
	s.repLeader = repl.NewLeader(s.log, s.leaderOpts())
	s.repLeader.Start()
}

func (s *Server) leaderOpts() repl.LeaderOptions {
	return repl.LeaderOptions{
		Replicas: s.opts.Replicas,
		StateFn:  s.replState,
		Client:   s.opts.ReplClient,
		Rand:     s.opts.Rand,
	}
}

// replState builds a full state transfer. The feed Seq is captured
// BEFORE the tenant stores are read: any op committed while we read is
// either already visible in the snapshot or will be re-shipped with a
// seq above the capture point, where the follower's idempotent apply
// deduplicates it — so the transfer needs no write freeze.
func (s *Server) replState() (repl.FullState, error) {
	seq := s.log.Seq()
	s.mu.Lock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.Unlock()
	state := repl.FullState{Seq: seq}
	for _, t := range ts {
		if t.store == nil {
			continue
		}
		recs, err := t.store.Load()
		if err != nil {
			return repl.FullState{}, fmt.Errorf("server: reading tenant %q for sync: %w", t.name, err)
		}
		state.Tenants = append(state.Tenants, repl.TenantState{Name: t.name, Clusters: recs})
	}
	return state, nil
}

// routed dispatches a request by role: leaders (and non-replicated
// daemons) serve leaderH; followers serve followerH when the route has a
// read-only replica path, and otherwise shed with 503 plus a Leader
// location hint — mutations belong on the leader. During the brief
// promoting window everything v1 sheds with Retry-After; the tenant
// state is mid-handoff.
func (s *Server) routed(leaderH, followerH http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		switch s.currentRole() {
		case roleSingle, RoleLeader:
			leaderH(w, r)
		case rolePromoting:
			w.Header().Set("Retry-After", s.retryAfter())
			writeErr(w, http.StatusServiceUnavailable, "promotion in progress; retry shortly")
		case RoleFollower:
			if followerH != nil {
				followerH(w, r)
				return
			}
			if s.opts.LeaderURL != "" {
				w.Header().Set(headerLeader, s.opts.LeaderURL)
			}
			w.Header().Set("Retry-After", s.retryAfter())
			writeErr(w, http.StatusServiceUnavailable,
				"read-only follower: send mutations to the leader")
		}
	}
}

// followerRegistry resolves the tenant header against the follower's
// mirrors and stamps the staleness headers; a nil return means the
// response was already written.
func (s *Server) followerRegistry(w http.ResponseWriter, r *http.Request) *sim.Registry {
	name := r.Header.Get(s.opts.TenantHeader)
	if name == "" {
		name = "default"
	}
	if err := validTenantName(name); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return nil
	}
	st := s.follower.Status()
	w.Header().Set(headerRole, RoleFollower)
	w.Header().Set(headerApplied, strconv.FormatUint(st.Applied, 10))
	w.Header().Set(headerLag, strconv.FormatUint(st.Lag(), 10))
	reg, ok := s.follower.Registry(name)
	if !ok {
		msg := errUnknownTenant.Error()
		if id := r.PathValue("id"); id != "" {
			msg = fmt.Sprintf("no cluster %q: tenant has no replicated state", id)
		}
		writeErr(w, http.StatusNotFound, msg)
		return nil
	}
	return reg
}

// followerClusterGet serves GET /v1/clusters/{id} from the warm mirror.
// The body is byte-identical to the leader's answer for the same applied
// state — staleness is visible in headers only — which is what makes
// failover verifiable by diffing responses.
func (s *Server) followerClusterGet(w http.ResponseWriter, r *http.Request) {
	reg := s.followerRegistry(w, r)
	if reg == nil {
		return
	}
	id := r.PathValue("id")
	h, ok := reg.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no cluster %q on this replica", id))
		return
	}
	h.Do(func(c *sim.Cluster) {
		writeJSON(w, http.StatusOK, clusterResponse(id, c, nil))
	})
}

// --- /repl/* endpoints ----------------------------------------------------

// replStatus answers GET /repl/status for any role; the shipping client
// uses it to find a follower's resume point, and operators use it to see
// where a node stands.
func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	s.replMu.Lock()
	role, log, follower := s.role, s.log, s.follower
	s.replMu.Unlock()
	switch role {
	case RoleFollower:
		writeJSON(w, http.StatusOK, follower.Status())
	case rolePromoting:
		writeJSON(w, http.StatusOK, repl.NodeStatus{Role: rolePromoting})
	default:
		st := repl.NodeStatus{Role: role}
		if log != nil {
			st.Epoch = log.Epoch()
			st.Applied = log.Seq()
			st.LogSeq = log.Seq()
		}
		writeJSON(w, http.StatusOK, st)
	}
}

// replBody decodes a replication request body under the replication
// size limit (batches and full syncs legitimately dwarf API bodies).
func (s *Server) replBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, replMaxBody)
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		writeErr(w, http.StatusBadRequest, "malformed replication body: "+err.Error())
		return false
	}
	return true
}

// replMaxBody bounds /repl/apply and /repl/sync bodies: a full state
// transfer carries entire tenant stores.
const replMaxBody = 256 << 20

// handleReplApply ingests a leader batch (follower only).
func (s *Server) handleReplApply(w http.ResponseWriter, r *http.Request) {
	s.replMu.Lock()
	role, follower := s.role, s.follower
	s.replMu.Unlock()
	if role != RoleFollower {
		writeJSON(w, http.StatusConflict, repl.NodeStatus{Role: role, Epoch: s.nodeEpoch()})
		return
	}
	var b repl.Batch
	if !s.replBody(w, r, &b) {
		return
	}
	st, err := follower.Apply(b)
	writeReplResult(w, st, err)
}

// handleReplSync ingests a full state transfer (follower only).
func (s *Server) handleReplSync(w http.ResponseWriter, r *http.Request) {
	s.replMu.Lock()
	role, follower := s.role, s.follower
	s.replMu.Unlock()
	if role != RoleFollower {
		writeJSON(w, http.StatusConflict, repl.NodeStatus{Role: role, Epoch: s.nodeEpoch()})
		return
	}
	var state repl.FullState
	if !s.replBody(w, r, &state) {
		return
	}
	st, err := follower.FullSync(state)
	writeReplResult(w, st, err)
}

func writeReplResult(w http.ResponseWriter, st repl.NodeStatus, err error) {
	switch {
	case err == repl.ErrFenced:
		writeJSON(w, http.StatusConflict, st)
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err.Error())
	default:
		writeJSON(w, http.StatusOK, st)
	}
}

// handleReplFeed serves GET /repl/feed?after=N&max=M from the leader's
// op feed — a pull-based catch-up and debugging window. 410 Gone means
// the feed no longer retains after+1 and the caller must full-sync.
func (s *Server) handleReplFeed(w http.ResponseWriter, r *http.Request) {
	s.replMu.Lock()
	log := s.log
	s.replMu.Unlock()
	if log == nil {
		writeErr(w, http.StatusNotFound, "no replication feed on this node")
		return
	}
	after, _ := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64) //nolint:errcheck // absent = 0
	max, _ := strconv.Atoi(r.URL.Query().Get("max"))                  //nolint:errcheck // absent = 0
	if max <= 0 || max > 1024 {
		max = 1024
	}
	ops, ok := log.Since(after, max)
	if !ok {
		writeErr(w, http.StatusGone, fmt.Sprintf("feed trimmed past seq %d; full sync required", after))
		return
	}
	writeJSON(w, http.StatusOK, repl.Batch{Epoch: log.Epoch(), LogSeq: log.Seq(), Ops: ops})
}

// handleReplPromote turns this follower into a leader (POST
// /repl/promote, also reachable via fusiond -promote). Idempotent-ish:
// promoting an existing leader answers 409 with its status rather than
// minting another epoch.
func (s *Server) handleReplPromote(w http.ResponseWriter, r *http.Request) {
	epoch, err := s.promote()
	if err != nil {
		writeErr(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, repl.NodeStatus{Role: RoleLeader, Epoch: epoch, Applied: s.log.Seq(), LogSeq: s.log.Seq()})
}

func (s *Server) nodeEpoch() uint64 {
	if s.log != nil {
		return s.log.Epoch()
	}
	return s.epoch
}

// promote executes the failover handoff. The follower fences itself and
// surrenders its tenants (stores, warm registries, WAL anchors); each
// becomes a serving tenant with a fresh engine and a store re-teed into
// a brand-new op feed under the bumped epoch. Cost is O(tenants): no
// spec regeneration, no snapshot restore, no WAL replay — the mirrors
// were kept warm for exactly this moment.
func (s *Server) promote() (uint64, error) {
	s.replMu.Lock()
	if s.role != RoleFollower {
		s.replMu.Unlock()
		return 0, fmt.Errorf("cannot promote: node is %s, not a follower", s.role)
	}
	follower := s.follower
	s.role = rolePromoting
	s.replMu.Unlock()

	epoch, tens, err := follower.Promote()
	if err != nil {
		s.replMu.Lock()
		s.role = RoleFollower
		s.replMu.Unlock()
		return 0, err
	}
	log := store.NewLog(epoch, 0)
	adopted := make(map[string]*tenant, len(tens))
	for _, pt := range tens {
		tee := store.NewTee(pt.Name, pt.Store, log)
		tee.SeedAnchors(pt.WalLens)
		pt.Reg.SetCapacity(s.opts.MaxClusters)
		pt.Reg.Bind(tee, s.opts.CompactEvery, pt.WalLens)
		adopted[pt.Name] = &tenant{
			name:     pt.Name,
			engine:   s.mintEngine(),
			clusters: pt.Reg,
			store:    pt.Store,
		}
	}
	s.mu.Lock()
	s.tenants = adopted
	s.mu.Unlock()

	s.replMu.Lock()
	s.log = log
	s.epoch = epoch
	s.role = RoleLeader
	if len(s.opts.Replicas) > 0 {
		s.repLeader = repl.NewLeader(log, s.leaderOpts())
		s.repLeader.Start()
	}
	s.replMu.Unlock()
	return epoch, nil
}

// mintEngine builds a tenant engine with the daemon's admission limits
// (shared with mintTenant and promotion).
func (s *Server) mintEngine() *fusion.Engine {
	return fusion.NewEngine(fusion.EngineOptions{
		Workers:      s.opts.Workers,
		Dedicated:    true,
		MaxInFlight:  s.opts.MaxInFlight,
		QueueDepth:   s.opts.QueueDepth,
		QueueTimeout: s.opts.QueueTimeout,
	})
}

// --- readiness ------------------------------------------------------------

// ReadyResponse is the GET /readyz body (see api.go for the rest of the
// wire types; this one lives with the role logic that fills it).
type ReadyResponse struct {
	Ready   bool   `json:"ready"`
	Role    string `json:"role"`
	Reason  string `json:"reason,omitempty"`
	Epoch   uint64 `json:"epoch,omitempty"`
	Applied uint64 `json:"applied"`
	LogSeq  uint64 `json:"logSeq"`
	Lag     uint64 `json:"lag"`
}

// handleReadyz is readiness, distinct from /healthz liveness: a node
// answers ready only when it can serve its role's traffic — a leader
// past boot recovery and not draining, a follower in contact with its
// leader and within the lag threshold. Load balancers route on this; a
// live-but-lagging follower keeps answering /healthz 200 while /readyz
// says 503.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.replMu.Lock()
	role, log, follower := s.role, s.log, s.follower
	s.replMu.Unlock()
	resp := ReadyResponse{Role: role}
	switch role {
	case RoleFollower:
		ok, reason := follower.Ready()
		st := follower.Status()
		resp.Ready, resp.Reason = ok, reason
		resp.Epoch, resp.Applied, resp.LogSeq, resp.Lag = st.Epoch, st.Applied, st.LogSeq, st.Lag()
	case rolePromoting:
		resp.Reason = "promotion in progress"
	default:
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			resp.Reason = "draining"
		} else {
			resp.Ready = true
		}
		if log != nil {
			resp.Epoch = log.Epoch()
			resp.Applied = log.Seq()
			resp.LogSeq = log.Seq()
		}
	}
	code := http.StatusOK
	if !resp.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// --- write acknowledgement ------------------------------------------------

// ackWait implements the leader's write-acknowledgement mode. Under
// leader-ack (the default) a mutation returns once it is durable
// locally; under quorum-ack the response additionally waits — up to the
// configured or per-request timeout — until a majority of the
// replication group (this leader plus its followers) holds the ops the
// request produced. The response always says which guarantee it carries
// in X-Fusion-Ack; a quorum that timed out degrades the header to
// "leader" instead of failing the request, because the mutation IS
// durable here and already queued for every follower.
func (s *Server) ackWait(w http.ResponseWriter, r *http.Request, pre uint64) {
	s.replMu.Lock()
	log, leader := s.log, s.repLeader
	s.replMu.Unlock()
	if log == nil || leader == nil {
		return
	}
	post := log.Seq()
	if post == pre {
		return // request produced no replicated ops
	}
	if !s.opts.QuorumAck {
		w.Header().Set(headerAck, "leader")
		return
	}
	timeout := s.opts.AckTimeout
	if hdr := r.Header.Get(headerAckWait); hdr != "" {
		if d, err := time.ParseDuration(hdr); err == nil && d > 0 && d < timeout {
			timeout = d
		}
	}
	need := (1 + len(s.opts.Replicas)) / 2 // follower acks for a group majority incl. this leader
	if leader.WaitAcked(post, need, timeout) {
		w.Header().Set(headerAck, "quorum")
	} else {
		w.Header().Set(headerAck, "leader")
	}
}
