package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	fusion "repro"
)

// mustNew builds a server, failing the test on boot-recovery errors.
func mustNew(t testing.TB, opts Options) *Server {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// do runs one in-process request against the server and decodes the JSON
// response into out (skipped when out is nil or the body is empty).
func do(t *testing.T, s *Server, method, path, tenant, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	if tenant != "" {
		r.Header.Set("X-Fusion-Tenant", tenant)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if out != nil && w.Body.Len() > 0 {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad response JSON: %v\n%s", method, path, err, w.Body.String())
		}
	}
	return w
}

// wantBackups runs the library path the server must agree with.
func wantBackups(t *testing.T, zoo []string, f int) ([]BackupResponse, int) {
	t.Helper()
	ms := make([]*fusion.Machine, len(zoo))
	for i, n := range zoo {
		m, err := fusion.ZooMachine(n)
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}
	sys, err := fusion.NewSystem(ms)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := fusion.Generate(sys, f)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]BackupResponse, len(parts))
	for i, p := range parts {
		out[i] = BackupResponse{States: p.NumBlocks(), Blocks: p.Blocks()}
	}
	return out, sys.N()
}

// TestGenerateEndpoint: the service's generate answer is bit-identical to
// the library's fusion.Generate — the engine only redistributes work.
func TestGenerateEndpoint(t *testing.T) {
	s := mustNew(t, Options{})
	defer s.Close()
	var resp GenerateResponse
	w := do(t, s, "POST", "/v1/generate", "", `{"zoo":["MESI","1-Counter","0-Counter"],"f":2}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	want, n := wantBackups(t, []string{"MESI", "1-Counter", "0-Counter"}, 2)
	if resp.N != n || resp.F != 2 {
		t.Fatalf("resp header = {n:%d f:%d}, want {n:%d f:2}", resp.N, resp.F, n)
	}
	if !reflect.DeepEqual(resp.Backups, want) {
		t.Fatalf("backups diverge from fusion.Generate:\ngot  %v\nwant %v", resp.Backups, want)
	}
}

// TestGenerateSpec: the inline .fsm path round-trips through the same
// parser the CLIs use.
func TestGenerateSpec(t *testing.T) {
	a, err := fusion.ZooMachine("0-Counter")
	if err != nil {
		t.Fatal(err)
	}
	b, err := fusion.ZooMachine("1-Counter")
	if err != nil {
		t.Fatal(err)
	}
	spec := fusion.FormatSpec([]*fusion.Machine{a, b})
	s := mustNew(t, Options{})
	defer s.Close()
	body, err := json.Marshal(GenerateRequest{MachineSetRequest: MachineSetRequest{Spec: spec}, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	var resp GenerateResponse
	w := do(t, s, "POST", "/v1/generate", "", string(body), &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	want, _ := wantBackups(t, []string{"0-Counter", "1-Counter"}, 1)
	if !reflect.DeepEqual(resp.Backups, want) {
		t.Fatalf("spec-path backups diverge:\ngot  %v\nwant %v", resp.Backups, want)
	}
}

// TestGenerateRejections: malformed and invalid requests come back as
// structured 400s, never 500s.
func TestGenerateRejections(t *testing.T) {
	s := mustNew(t, Options{})
	defer s.Close()
	for _, tc := range []struct {
		name, body string
		code       int
	}{
		{"malformed JSON", `{"zoo":`, http.StatusBadRequest},
		{"trailing data", `{"zoo":["MESI"],"f":1} extra`, http.StatusBadRequest},
		{"unknown field", `{"zoo":["MESI"],"f":1,"bogus":true}`, http.StatusBadRequest},
		{"no machines", `{"f":1}`, http.StatusBadRequest},
		{"zoo and spec", `{"zoo":["MESI"],"spec":"x","f":1}`, http.StatusBadRequest},
		{"unknown zoo name", `{"zoo":["NoSuchMachine"],"f":1}`, http.StatusBadRequest},
		{"negative f", `{"zoo":["MESI"],"f":-1}`, http.StatusBadRequest},
		{"bad spec", `{"spec":"not an fsm","f":1}`, http.StatusBadRequest},
	} {
		var e ErrorResponse
		w := do(t, s, "POST", "/v1/generate", "", tc.body, &e)
		if w.Code != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, w.Code, tc.code, w.Body.String())
		}
		if e.Error == "" {
			t.Errorf("%s: no error message in body %q", tc.name, w.Body.String())
		}
	}
	// Wrong method on a known path: the mux answers 405.
	if w := do(t, s, "GET", "/v1/generate", "", "", nil); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/generate: status %d, want 405", w.Code)
	}
	// Invalid tenant names are rejected before any engine work.
	r := httptest.NewRequest("POST", "/v1/generate", strings.NewReader(`{"zoo":["MESI"],"f":1}`))
	r.Header.Set("X-Fusion-Tenant", "bad tenant!")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusBadRequest {
		t.Errorf("invalid tenant: status %d, want 400", w.Code)
	}
}

// TestClusterLifecycle walks the full workload end to end in-process:
// create → inspect → events+crash → recover → delete.
func TestClusterLifecycle(t *testing.T) {
	s := mustNew(t, Options{})
	defer s.Close()

	var cl ClusterResponse
	w := do(t, s, "POST", "/v1/clusters", "", `{"zoo":["0-Counter","1-Counter"],"f":1,"seed":42}`, &cl)
	if w.Code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", w.Code, w.Body.String())
	}
	if cl.ID != "c1" || cl.Backups != 1 || len(cl.Servers) != 3 || cl.Step != 0 {
		t.Fatalf("create response: %+v", cl)
	}

	var got ClusterResponse
	if w := do(t, s, "GET", "/v1/clusters/c1", "", "", &got); w.Code != http.StatusOK {
		t.Fatalf("get: status %d", w.Code)
	}
	if !reflect.DeepEqual(got, cl) {
		t.Fatalf("GET diverges from create:\ngot  %+v\nwant %+v", got, cl)
	}

	var ev EventsResponse
	w = do(t, s, "POST", "/v1/clusters/c1/events", "",
		`{"random":{"count":30,"seed":7},"faults":[{"server":"F1","kind":"crash"}]}`, &ev)
	if w.Code != http.StatusOK {
		t.Fatalf("events: status %d: %s", w.Code, w.Body.String())
	}
	if ev.Applied != 30 || ev.Step != 30 {
		t.Fatalf("events applied/step = %d/%d, want 30/30", ev.Applied, ev.Step)
	}
	if ev.States[2] != -1 {
		t.Fatalf("crashed server state = %d, want -1", ev.States[2])
	}

	var rec RecoverResponse
	w = do(t, s, "POST", "/v1/clusters/c1/recover", "", "", &rec)
	if w.Code != http.StatusOK {
		t.Fatalf("recover: status %d: %s", w.Code, w.Body.String())
	}
	if !rec.Consistent {
		t.Fatalf("recovery left the cluster inconsistent: %+v", rec)
	}
	if len(rec.Restored) != 1 || rec.Restored[0] != "F1" {
		t.Fatalf("restored = %v, want [F1]", rec.Restored)
	}
	if rec.States[2] == -1 {
		t.Fatal("crashed server not restored")
	}

	if w := do(t, s, "DELETE", "/v1/clusters/c1", "", "", nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete: status %d", w.Code)
	}
	if w := do(t, s, "GET", "/v1/clusters/c1", "", "", nil); w.Code != http.StatusNotFound {
		t.Fatalf("get after delete: status %d, want 404", w.Code)
	}
}

// TestHealthzClusterMetrics: /healthz surfaces each cluster's simulation
// counters (events applied, faults, recoveries, restorations) next to the
// tenant's engine stats, and drops the section with the cluster.
func TestHealthzClusterMetrics(t *testing.T) {
	s := mustNew(t, Options{})
	defer s.Close()

	var cl ClusterResponse
	if w := do(t, s, "POST", "/v1/clusters", "", `{"zoo":["0-Counter","1-Counter"],"f":1,"seed":42}`, &cl); w.Code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", w.Code, w.Body.String())
	}
	if w := do(t, s, "POST", "/v1/clusters/"+cl.ID+"/events", "",
		`{"random":{"count":25,"seed":7},"faults":[{"server":"F1","kind":"crash"}]}`, nil); w.Code != http.StatusOK {
		t.Fatalf("events: status %d", w.Code)
	}
	if w := do(t, s, "POST", "/v1/clusters/"+cl.ID+"/recover", "", "", nil); w.Code != http.StatusOK {
		t.Fatalf("recover: status %d", w.Code)
	}

	var h HealthResponse
	if w := do(t, s, "GET", "/healthz", "", "", &h); w.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", w.Code)
	}
	m, ok := h.Tenants["default"].ClusterMetrics[cl.ID]
	if !ok {
		t.Fatalf("healthz has no metrics for cluster %s: %+v", cl.ID, h.Tenants["default"])
	}
	want := ClusterMetrics{EventsApplied: 25, FaultsInjected: 1, Recoveries: 1, ServersRestored: 1}
	if m != want {
		t.Fatalf("cluster metrics = %+v, want %+v", m, want)
	}

	if w := do(t, s, "DELETE", "/v1/clusters/"+cl.ID, "", "", nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete: status %d", w.Code)
	}
	if w := do(t, s, "GET", "/healthz", "", "", &h); w.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", w.Code)
	}
	if len(h.Tenants["default"].ClusterMetrics) != 0 {
		t.Fatalf("metrics survived cluster deletion: %+v", h.Tenants["default"].ClusterMetrics)
	}
}

// TestClusterUnknownID: every {id} route 404s cleanly on a handle that
// never existed.
func TestClusterUnknownID(t *testing.T) {
	s := mustNew(t, Options{})
	defer s.Close()
	for _, tc := range []struct{ method, path, body string }{
		{"GET", "/v1/clusters/c99", ""},
		{"DELETE", "/v1/clusters/c99", ""},
		{"POST", "/v1/clusters/c99/events", `{"events":["0"]}`},
		{"POST", "/v1/clusters/c99/recover", ""},
	} {
		var e ErrorResponse
		w := do(t, s, tc.method, tc.path, "", tc.body, &e)
		if w.Code != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404", tc.method, tc.path, w.Code)
		}
		if !strings.Contains(e.Error, "c99") {
			t.Errorf("%s %s: error %q does not name the id", tc.method, tc.path, e.Error)
		}
	}
}

// TestClusterEventsRejections: bad fault kinds and malformed bodies 400;
// recovery beyond the fault budget is a 422, not a 500.
func TestClusterEventsRejections(t *testing.T) {
	s := mustNew(t, Options{})
	defer s.Close()
	do(t, s, "POST", "/v1/clusters", "", `{"zoo":["0-Counter","1-Counter"],"f":1,"seed":1}`, nil)

	if w := do(t, s, "POST", "/v1/clusters/c1/events", "", `{"events":`, nil); w.Code != http.StatusBadRequest {
		t.Errorf("malformed events body: status %d, want 400", w.Code)
	}
	if w := do(t, s, "POST", "/v1/clusters/c1/events", "",
		`{"faults":[{"server":"F1","kind":"meltdown"}]}`, nil); w.Code != http.StatusBadRequest {
		t.Errorf("unknown fault kind: status %d, want 400", w.Code)
	}
	if w := do(t, s, "POST", "/v1/clusters/c1/events", "",
		`{"faults":[{"server":"NoSuchServer","kind":"crash"}]}`, nil); w.Code != http.StatusBadRequest {
		t.Errorf("unknown fault server: status %d, want 400", w.Code)
	}
	// Crash everything: the vote is ambiguous, which is the experiment's
	// outcome, reported as 422.
	w := do(t, s, "POST", "/v1/clusters/c1/events", "",
		`{"faults":[{"server":"0-Counter","kind":"crash"},{"server":"1-Counter","kind":"crash"},{"server":"F1","kind":"crash"}]}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("crash-all events: status %d: %s", w.Code, w.Body.String())
	}
	if w := do(t, s, "POST", "/v1/clusters/c1/recover", "", "", nil); w.Code != http.StatusUnprocessableEntity {
		t.Errorf("over-budget recover: status %d, want 422", w.Code)
	}
}

// TestTenantIsolation: handles and engines are per tenant — one tenant's
// cluster ids mean nothing to another, and health reports them apart.
func TestTenantIsolation(t *testing.T) {
	s := mustNew(t, Options{})
	defer s.Close()
	var cl ClusterResponse
	if w := do(t, s, "POST", "/v1/clusters", "alice", `{"zoo":["0-Counter","1-Counter"],"f":1,"seed":1}`, &cl); w.Code != http.StatusCreated {
		t.Fatalf("alice create: %d", w.Code)
	}
	if w := do(t, s, "GET", "/v1/clusters/"+cl.ID, "bob", "", nil); w.Code != http.StatusNotFound {
		t.Fatalf("bob sees alice's cluster: status %d, want 404", w.Code)
	}
	if w := do(t, s, "GET", "/v1/clusters/"+cl.ID, "alice", "", nil); w.Code != http.StatusOK {
		t.Fatalf("alice lost her cluster: status %d", w.Code)
	}
	var h HealthResponse
	if w := do(t, s, "GET", "/healthz", "", "", &h); w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
	if h.Status != "ok" {
		t.Fatalf("health status %q", h.Status)
	}
	if h.Tenants["alice"].Clusters != 1 || h.Tenants["bob"].Clusters != 0 {
		t.Fatalf("tenant health wrong: %+v", h.Tenants)
	}
}

// TestMaxClusters: the per-tenant registry cap turns into 429 (capacity,
// not conflict — retrying after a delete succeeds) with a Retry-After
// hint, and deleting frees capacity.
func TestMaxClusters(t *testing.T) {
	s := mustNew(t, Options{MaxClusters: 1})
	defer s.Close()
	body := `{"zoo":["0-Counter","1-Counter"],"f":1,"seed":1}`
	if w := do(t, s, "POST", "/v1/clusters", "", body, nil); w.Code != http.StatusCreated {
		t.Fatalf("first create: %d", w.Code)
	}
	w := do(t, s, "POST", "/v1/clusters", "", body, nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-cap create: status %d, want 429", w.Code)
	}
	if w.Result().Header.Get("Retry-After") == "" {
		t.Fatal("cluster-cap 429 without Retry-After")
	}
	if w := do(t, s, "DELETE", "/v1/clusters/c1", "", "", nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", w.Code)
	}
	if w := do(t, s, "POST", "/v1/clusters", "", body, nil); w.Code != http.StatusCreated {
		t.Fatalf("create after delete: %d", w.Code)
	}
}

// TestMaxTenants: tenant creation is bounded — a client minting fresh
// header values is shed with 429 once the cap is reached, while existing
// tenants keep working.
func TestMaxTenants(t *testing.T) {
	s := mustNew(t, Options{MaxTenants: 2})
	defer s.Close()
	body := `{"zoo":["0-Counter","1-Counter"],"f":1}`
	for _, tenant := range []string{"alice", "bob"} {
		if w := do(t, s, "POST", "/v1/generate", tenant, body, nil); w.Code != http.StatusOK {
			t.Fatalf("tenant %s: status %d", tenant, w.Code)
		}
	}
	w := do(t, s, "POST", "/v1/generate", "mallory", body, nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("tenant beyond cap: status %d, want 429 (%s)", w.Code, w.Body.String())
	}
	if w.Result().Header.Get("Retry-After") == "" {
		t.Fatal("tenant-cap 429 without Retry-After")
	}
	// Known tenants are unaffected.
	if w := do(t, s, "POST", "/v1/generate", "alice", body, nil); w.Code != http.StatusOK {
		t.Fatalf("existing tenant after cap: status %d", w.Code)
	}
}

// TestEventsRequestsDoNotInterleave: concurrent events requests to one
// cluster serialize — each response's step advance equals that request's
// own window, so no response ever describes another request's events.
func TestEventsRequestsDoNotInterleave(t *testing.T) {
	s := mustNew(t, Options{})
	defer s.Close()
	do(t, s, "POST", "/v1/clusters", "", `{"zoo":["0-Counter","1-Counter"],"f":1,"seed":1}`, nil)

	const gs, per, window = 4, 8, 5
	var wg sync.WaitGroup
	steps := make(chan [2]int, gs*per) // {applied, step-after}
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				var ev EventsResponse
				w := do(t, s, "POST", "/v1/clusters/c1/events", "",
					`{"random":{"count":5,"seed":3}}`, &ev)
				if w.Code != http.StatusOK {
					t.Errorf("events: status %d", w.Code)
					return
				}
				steps <- [2]int{ev.Applied, ev.Step}
			}
		}()
	}
	wg.Wait()
	close(steps)
	seen := make(map[int]bool)
	for st := range steps {
		if st[0] != window {
			t.Fatalf("response applied %d, want %d", st[0], window)
		}
		// Every response's post-step must be a distinct multiple of the
		// window: requests fully serialized, each seeing its own cut.
		if st[1]%window != 0 || seen[st[1]] {
			t.Fatalf("interleaved or duplicated step %d", st[1])
		}
		seen[st[1]] = true
	}
	var got ClusterResponse
	do(t, s, "GET", "/v1/clusters/c1", "", "", &got)
	if got.Step != gs*per*window {
		t.Fatalf("final step %d, want %d", got.Step, gs*per*window)
	}
}

// TestServerClosed: a closed server refuses everything with 503 and stays
// refused (Close is terminal and idempotent).
func TestServerClosed(t *testing.T) {
	s := mustNew(t, Options{})
	do(t, s, "POST", "/v1/clusters", "", `{"zoo":["0-Counter","1-Counter"],"f":1,"seed":1}`, nil)
	s.Close()
	s.Close()
	for _, tc := range []struct{ method, path, body string }{
		{"POST", "/v1/generate", `{"zoo":["MESI"],"f":1}`},
		{"POST", "/v1/clusters", `{"zoo":["MESI"],"f":1}`},
		{"GET", "/v1/clusters/c1", ""},
	} {
		if w := do(t, s, tc.method, tc.path, "", tc.body, nil); w.Code != http.StatusServiceUnavailable {
			t.Errorf("%s %s on closed server: status %d, want 503", tc.method, tc.path, w.Code)
		}
	}
	var h HealthResponse
	if w := do(t, s, "GET", "/healthz", "", "", &h); w.Code != http.StatusOK || h.Status != "draining" {
		t.Errorf("healthz on closed server: %d %q, want 200 \"draining\"", w.Code, h.Status)
	}
}

// TestSeededClustersDiverge guards the seed plumbing: different seeds
// must be allowed to produce different Byzantine corruption.
func TestSeededClustersDiverge(t *testing.T) {
	s := mustNew(t, Options{})
	defer s.Close()
	states := make([][]int, 2)
	for i, seed := range []int64{3, 4} {
		var cl ClusterResponse
		body := fmt.Sprintf(`{"zoo":["MESI","TCP"],"f":2,"seed":%d}`, seed)
		if w := do(t, s, "POST", "/v1/clusters", "", body, &cl); w.Code != http.StatusCreated {
			t.Fatalf("create %d: %d", seed, w.Code)
		}
		var ev EventsResponse
		w := do(t, s, "POST", "/v1/clusters/"+cl.ID+"/events", "",
			`{"random":{"count":50,"seed":9},"faults":[{"server":"TCP","kind":"byzantine"}]}`, &ev)
		if w.Code != http.StatusOK {
			t.Fatalf("events %d: %d %s", seed, w.Code, w.Body.String())
		}
		states[i] = ev.States
	}
	// Same event stream, same machines: the healthy servers agree; only
	// the Byzantine corruption draws on the cluster seed. (Equality of the
	// corrupted entry is possible but the healthy ones must match.)
	if states[0][0] != states[1][0] {
		t.Fatalf("healthy server states diverged across seeds: %v vs %v", states[0], states[1])
	}
}
